// Solver microbenchmark: incremental (component-scoped) rate recomputation
// vs the full progressive-filling pass, under flow churn at 1k-10k
// concurrent flows over the paper's 4-server topology (14 cores + DRAM +
// fabric port per server).
//
// Every arrival and completion triggers a re-solve.  The full pass re-rates
// every active flow each time (O(flows x resources), fresh allocations);
// the incremental solver re-rates only the connected component sharing a
// resource with the change, reusing persistent scratch.  Both modes are
// bit-identical in simulated results — checked here — so the speedup is
// pure solver wall-clock.
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/trace.h"
#include "common/units.h"
#include "sim/fluid.h"
#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

constexpr int kServers = 4;
constexpr int kCoresPerServer = 14;

struct Topology {
  std::vector<sim::ResourceId> cores;  // kServers * kCoresPerServer
  std::vector<sim::ResourceId> dram;   // per server
  std::vector<sim::ResourceId> port;   // per server
};

Topology BuildTopology(sim::FluidSimulator& sim) {
  Topology topo;
  for (int s = 0; s < kServers; ++s) {
    for (int c = 0; c < kCoresPerServer; ++c) {
      topo.cores.push_back(
          sim.AddResource("core" + std::to_string(s * kCoresPerServer + c),
                          GBps(12)));
    }
    topo.dram.push_back(sim.AddResource("dram" + std::to_string(s),
                                        GBps(97)));
    topo.port.push_back(sim.AddResource("port" + std::to_string(s),
                                        GBps(34.5)));
  }
  return topo;
}

struct ChurnResult {
  double wall_ms = 0;
  SimTime sim_end = 0;
  double bytes_served = 0;  // cross-mode determinism checksum
  sim::SolverStats stats;
};

// Keeps `concurrency` flows in flight: each completion starts a replacement
// until `total` flows have been issued.  The Rng draw sequence is identical
// across modes because completions fire in the same (deterministic) order.
ChurnResult RunChurn(bool incremental, double remote_fraction,
                     int concurrency, int total, std::uint64_t seed,
                     trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  sim.set_incremental(incremental);
  sim.set_solver_timing(true);
  sim.set_record_retention(sim::RecordRetention::kDropCompleted);
  if (trace != nullptr) {
    trace->BeginProcess(std::string(incremental ? "inc" : "full") +
                        "/remote" + std::to_string(remote_fraction) +
                        "/c" + std::to_string(concurrency));
    sim.set_trace(trace);
  }
  Topology topo = BuildTopology(sim);

  Rng rng(seed);
  int issued = 0;
  std::function<void()> launch = [&] {
    ++issued;
    const int s = static_cast<int>(rng.NextBounded(kServers));
    const int c = static_cast<int>(rng.NextBounded(kCoresPerServer));
    const double bytes =
        static_cast<double>(rng.NextInRange(1, 100)) * 1e6;
    std::vector<sim::ResourceId> path;
    if (remote_fraction > 0 && rng.NextBernoulli(remote_fraction)) {
      const int d = static_cast<int>(rng.NextBounded(kServers));
      path = {topo.cores[s * kCoresPerServer + c], topo.port[s],
              topo.port[d], topo.dram[d]};
    } else {
      path = {topo.cores[s * kCoresPerServer + c], topo.dram[s]};
    }
    sim.StartFlow(bytes, path, [&](sim::FlowId, SimTime) {
      if (issued < total) launch();
    });
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < concurrency; ++i) launch();
  sim.Run();
  const auto t1 = std::chrono::steady_clock::now();

  ChurnResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.sim_end = sim.now();
  for (int s = 0; s < kServers; ++s) {
    r.bytes_served += sim.BytesServed(topo.dram[s]);
  }
  r.stats = sim.solver_stats();
  sim.ExportSolverMetrics(MetricsRegistry::Global());
  return r;
}

}  // namespace

void RunSweep(double remote_fraction,
              lmp::trace::TraceCollector* trace = nullptr) {
  std::printf(
      "== Solver: incremental vs full recompute (%d-server topology, "
      "%.0f%% remote flows) ==\n",
      kServers, remote_fraction * 100);
  TablePrinter table({"Concurrent flows", "Full solver ms", "Inc solver ms",
                      "Solver speedup", "Run speedup",
                      "Touched/solve (full)", "Touched/solve (inc)"});
  for (const int concurrency : {1000, 4000, 10000}) {
    const int total = concurrency + 4000;  // 4000 churn events after fill
    const ChurnResult full = RunChurn(/*incremental=*/false, remote_fraction,
                                      concurrency, total, 42, trace);
    const ChurnResult inc = RunChurn(/*incremental=*/true, remote_fraction,
                                     concurrency, total, 42, trace);
    LMP_CHECK(full.sim_end == inc.sim_end)
        << "modes diverged: " << full.sim_end << " vs " << inc.sim_end;
    LMP_CHECK(full.bytes_served == inc.bytes_served)
        << "modes diverged on bytes served";
    const double full_solver_ms =
        static_cast<double>(full.stats.solve_ns) / 1e6;
    const double inc_solver_ms =
        static_cast<double>(inc.stats.solve_ns) / 1e6;
    table.AddRow(
        {std::to_string(concurrency), TablePrinter::Num(full_solver_ms),
         TablePrinter::Num(inc_solver_ms),
         TablePrinter::Num(full_solver_ms / inc_solver_ms, 2) + "x",
         TablePrinter::Num(full.wall_ms / inc.wall_ms, 2) + "x",
         TablePrinter::Num(
             static_cast<double>(full.stats.flows_touched) /
             static_cast<double>(full.stats.recompute_calls), 1),
         TablePrinter::Num(
             static_cast<double>(inc.stats.flows_touched) /
             static_cast<double>(inc.stats.recompute_calls), 1)});
  }
  table.Print();
  std::printf("\n");
}

int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  // Local-dominant churn (the paper's shipped/local pattern): flows cluster
  // per server, so the incremental solver re-rates ~1/4 of the flows.
  RunSweep(/*remote_fraction=*/0.0, sidecar.collector());
  // Bridged churn: 5% remote flows keep all servers in one connected
  // component, so incrementality degenerates to a full (but allocation-free
  // and sort-free) pass — the floor, not the headline.
  RunSweep(/*remote_fraction=*/0.05, sidecar.collector());
  std::printf(
      "Simulated results are bit-identical in both modes (checked); the\n"
      "speedup is solver wall-clock only.  Solver counters:\n%s",
      MetricsRegistry::Global().Report().c_str());
  sidecar.Flush();
  return 0;
}
