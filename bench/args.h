// Shared command-line parsing for the bench binaries, so every bench
// understands the same sidecar flags:
//
//   --trace-out=PATH    Chrome trace_event JSON of the run
//   --metrics-out=PATH  JSON dump of every MetricsRegistry counter
//   --seed=N            deterministic seed for benches that randomize
//   --threads=N         solver worker threads (results are byte-identical
//                       for any value; only wall-clock changes)
//   --fault-plan=PATH   lmp::chaos fault plan replayed during the run
//                       (see src/chaos/fault_plan.h for the syntax)
//   --series-out=PATH   time-series JSON sidecar (lmp::obs sampled probes)
//   --slo-out=PATH      per-tenant SLO attainment JSON (ctrl::SloLedger)
//   --postmortem-out=PATH
//                       chaos flight-recorder postmortems (crash snapshots)
//
// Unknown arguments are ignored: benches with their own flags parse argv
// themselves after (or before) Args::Parse.  Benches must print identical
// stdout when none of these flags are given — status notes about written
// files go to stderr.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lmp::bench {

struct Args {
  std::string trace_out;
  std::string metrics_out;
  std::string fault_plan;
  std::string series_out;
  std::string slo_out;
  std::string postmortem_out;
  std::uint64_t seed = 42;
  int threads = 1;

  bool has_fault_plan() const { return !fault_plan.empty(); }

  static Args Parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      constexpr std::string_view kTrace = "--trace-out=";
      constexpr std::string_view kMetrics = "--metrics-out=";
      constexpr std::string_view kPlan = "--fault-plan=";
      constexpr std::string_view kSeries = "--series-out=";
      constexpr std::string_view kSlo = "--slo-out=";
      constexpr std::string_view kPostmortem = "--postmortem-out=";
      constexpr std::string_view kSeed = "--seed=";
      constexpr std::string_view kThreads = "--threads=";
      if (arg.substr(0, kTrace.size()) == kTrace) {
        args.trace_out = std::string(arg.substr(kTrace.size()));
      } else if (arg.substr(0, kMetrics.size()) == kMetrics) {
        args.metrics_out = std::string(arg.substr(kMetrics.size()));
      } else if (arg.substr(0, kPlan.size()) == kPlan) {
        args.fault_plan = std::string(arg.substr(kPlan.size()));
      } else if (arg.substr(0, kSeries.size()) == kSeries) {
        args.series_out = std::string(arg.substr(kSeries.size()));
      } else if (arg.substr(0, kSlo.size()) == kSlo) {
        args.slo_out = std::string(arg.substr(kSlo.size()));
      } else if (arg.substr(0, kPostmortem.size()) == kPostmortem) {
        args.postmortem_out = std::string(arg.substr(kPostmortem.size()));
      } else if (arg.substr(0, kSeed.size()) == kSeed) {
        const std::string_view value = arg.substr(kSeed.size());
        std::uint64_t seed = 0;
        auto [ptr, ec] =
            std::from_chars(value.data(), value.data() + value.size(), seed);
        if (ec == std::errc() && ptr == value.data() + value.size()) {
          args.seed = seed;
        }
      } else if (arg.substr(0, kThreads.size()) == kThreads) {
        const std::string_view value = arg.substr(kThreads.size());
        int threads = 0;
        auto [ptr, ec] =
            std::from_chars(value.data(), value.data() + value.size(),
                            threads);
        if (ec == std::errc() && ptr == value.data() + value.size() &&
            threads >= 1) {
          args.threads = threads;
        }
      }
    }
    return args;
  }

  // argv with the sidecar flags removed (argv[0] kept), for benches whose
  // own parser rejects unknown flags (google-benchmark binaries).  The
  // returned pointers alias `argv`, which must stay alive.
  static std::vector<char*> Strip(int argc, char** argv) {
    std::vector<char*> kept;
    if (argc > 0) kept.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const bool ours = arg.rfind("--trace-out=", 0) == 0 ||
                        arg.rfind("--metrics-out=", 0) == 0 ||
                        arg.rfind("--fault-plan=", 0) == 0 ||
                        arg.rfind("--series-out=", 0) == 0 ||
                        arg.rfind("--slo-out=", 0) == 0 ||
                        arg.rfind("--postmortem-out=", 0) == 0 ||
                        arg.rfind("--seed=", 0) == 0 ||
                        arg.rfind("--threads=", 0) == 0;
      if (!ours) kept.push_back(argv[i]);
    }
    return kept;
  }
};

}  // namespace lmp::bench
