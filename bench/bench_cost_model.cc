// §4.2 "Lower Entry Barrier": component inventories and modelled cost for
// logical vs physical deployments, under the paper's two memory scenarios
// (equal disaggregated memory, equal total memory), plus the incast-driven
// multi-link pool variant (Figure 1a's thick orange line).
#include <cstdio>

#include "cluster/cost_model.h"
#include "common/table.h"

#include "args.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  using namespace lmp;
  using cluster::DeploymentCost;

  auto row = [](const char* name, const DeploymentCost& c) {
    return std::vector<std::string>{
        name,
        std::to_string(c.inventory.switch_ports),
        std::to_string(c.inventory.pool_chassis),
        std::to_string(c.inventory.rack_units),
        std::to_string(c.inventory.dimms),
        std::to_string(c.inventory.total_memory / kGiB) + " GiB",
        std::to_string(c.inventory.disaggregated_memory / kGiB) + " GiB",
        "$" + TablePrinter::Num(c.total_usd, 0)};
  };
  const std::vector<std::string> header{
      "Deployment", "Ports", "PoolChassis", "RackU", "DIMMs", "TotalMem",
      "PooledMem", "Cost"};

  std::printf(
      "== Scenario 1: equal DISAGGREGATED memory (64 GiB pooled) ==\n");
  {
    TablePrinter table(header);
    table.AddRow(row("Logical (4 x 16 GiB shared)",
                     cluster::LogicalDeploymentCost(4, GiB(16), GiB(16))));
    table.AddRow(row("Physical (8 GiB local + 64 GiB pool)",
                     cluster::PhysicalDeploymentCost(4, GiB(8), GiB(64))));
    table.Print();
    std::printf(
        "-> physical needs extra DIMMs for server-local memory plus the\n"
        "   pool chassis: the logical pool is cheaper (economics).\n\n");
  }

  std::printf("== Scenario 2: equal TOTAL memory (96 GiB) ==\n");
  {
    TablePrinter table(header);
    table.AddRow(row("Logical (4 x 24 GiB, all shared)",
                     cluster::LogicalDeploymentCost(4, GiB(24), GiB(24))));
    table.AddRow(row("Physical (8 GiB local + 64 GiB pool)",
                     cluster::PhysicalDeploymentCost(4, GiB(8), GiB(64))));
    table.Print();
    std::printf(
        "-> equal DIMM count, but physical still pays for the chassis,\n"
        "   rack space, and the extra switch port; and its servers end up\n"
        "   with only 8 GiB local (operations).\n\n");
  }

  std::printf(
      "== Incast mitigation: physical pool with multiple links ==\n");
  {
    TablePrinter table(header);
    for (int links = 1; links <= 4; links *= 2) {
      const std::string name =
          "Physical, " + std::to_string(links) + " pool link(s)";
      table.AddRow(row(name.c_str(), cluster::PhysicalDeploymentCost(
                                         4, GiB(8), GiB(64), links)));
    }
    table.Print();
    std::printf(
        "-> provisioning the pool against incast multiplies ports and\n"
        "   adapters; logical pools avoid the incast point entirely via\n"
        "   placement, migration, and compute shipping (Section 4.2).\n");
  }
  sidecar.Flush();
  return 0;
}
