// Priority QoS ablation (§5: the sizing objective "prioritizes high-value
// applications").  Two tenants pull pool data over the same fabric port;
// weighted max-min sharing in the fabric gives the high-priority tenant a
// proportional bandwidth share, and the low-priority tenant degrades
// gracefully instead of halving the VIP's throughput.
#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "common/trace.h"
#include "fabric/topology.h"
#include "sim/fluid.h"
#include "sim/stream.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

struct TenantResult {
  double vip_gbps;
  double batch_gbps;
};

TenantResult Run(double vip_weight,
                 trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  if (trace != nullptr) {
    trace->BeginProcess("vip-weight-" +
                        std::to_string(static_cast<int>(vip_weight)));
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
  }
  auto topo =
      fabric::Topology::MakeLogical(&sim, 2, fabric::LinkProfile::Link0());
  // Both tenants on server 0, each with 7 cores, pulling from server 1.
  std::vector<std::unique_ptr<sim::SpanStream>> vip, batch;
  const double bytes = 4e9;
  for (int c = 0; c < 7; ++c) {
    vip.push_back(std::make_unique<sim::SpanStream>(
        &sim, std::vector<sim::Span>{
                  sim::Span{bytes, topo.RemotePath(0, c, 1), vip_weight}}));
    batch.push_back(std::make_unique<sim::SpanStream>(
        &sim, std::vector<sim::Span>{
                  sim::Span{bytes, topo.RemotePath(0, 7 + c, 1), 1.0}}));
  }
  for (auto& s : vip) s->Start();
  for (auto& s : batch) s->Start();

  // Sample throughput over the contended phase: run until the first
  // tenant finishes, then report per-tenant average rates.
  sim.Run();
  double vip_bytes = 0, vip_end = 0, batch_bytes = 0, batch_end = 0;
  for (auto& s : vip) {
    vip_bytes += s->total_bytes();
    vip_end = std::max(vip_end, s->end_time());
  }
  for (auto& s : batch) {
    batch_bytes += s->total_bytes();
    batch_end = std::max(batch_end, s->end_time());
  }
  return TenantResult{ToGBps(vip_bytes, vip_end),
                      ToGBps(batch_bytes, batch_end)};
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  std::printf(
      "== Tenant QoS: two 7-core tenants share one 34.5 GB/s fabric port "
      "==\n");
  TablePrinter table({"VIP weight", "VIP GB/s", "Batch GB/s",
                      "VIP share"});
  for (const double w : {1.0, 2.0, 4.0, 8.0}) {
    const TenantResult r = Run(w, sidecar.collector());
    table.AddRow({TablePrinter::Num(w, 0), TablePrinter::Num(r.vip_gbps),
                  TablePrinter::Num(r.batch_gbps),
                  TablePrinter::Num(
                      100 * r.vip_gbps / (r.vip_gbps + r.batch_gbps), 0) +
                      "%"});
  }
  table.Print();
  std::printf(
      "\nWeighted max-min sharing is the enforcement half of §5's\n"
      "'prioritizing high-value applications': the sizing optimizer plans\n"
      "by priority, the fabric shares by weight.\n");
  sidecar.Flush();
  return 0;
}
