// bench_alloc: frame-allocator microbenchmark at pool scale.
//
// The seed allocator kept a per-frame bitmap and satisfied every request
// with a next-fit scan; at 1.5M frames (96 GiB of 64 KiB frames) and high
// occupancy each allocation walks thousands of bits, and the sizing
// controller's HighestAllocatedEnd / AllocatedFramesFrom queries walk the
// whole bitmap.  This bench keeps a faithful replica of that bitmap
// allocator as the baseline and races it against the run-indexed
// FrameAllocator driven through the AllocRequest API
// (prefer_contiguous best-fit — the intended use of the redesign).
//
// Three fragmentation levels: the heap is filled to ~99.5% with random
// objects, then 10% / 50% / 90% of them are freed and re-allocated at new
// sizes to shear the free space, then a timed loop of free+allocate pairs
// measures steady-state alloc/free cost on the churned heap.
//
// Everything on stdout is simulated/deterministic (op counts, placement
// checksums, fragmentation, sizing-query answers); wall-clock throughput
// and the speedup ratio go to stderr so the determinism canary can diff
// stdout byte-for-byte.  A separate equivalence phase re-runs a churn
// sequence through the run-indexed allocator's *default* policy and checks
// its placement checksum against the bitmap replica — the drop-in
// compatibility claim, executed at scale on every run.
//
// Flags (besides the sidecar flags in args.h):
//   --frames=N   region size in frames (default 1500000)
//   --ops=N      cap on timed ops per level (default 0 = one per churned
//                object)
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "args.h"
#include "trace_sidecar.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "mem/frame_allocator.h"

namespace {

using namespace lmp;

// ---------------------------------------------------------------------------
// Baseline: the seed bitmap allocator, replicated verbatim (next-fit scan
// with a wrapping hint, per-frame Free, O(n) sizing queries).

class BitmapAllocator {
 public:
  explicit BitmapAllocator(std::uint64_t num_frames)
      : bitmap_(num_frames, false), free_frames_(num_frames) {}

  std::optional<std::vector<mem::FrameRun>> Allocate(std::uint64_t frames) {
    if (frames == 0) return std::vector<mem::FrameRun>{};
    if (frames > free_frames_) return std::nullopt;
    std::vector<mem::FrameRun> runs;
    std::uint64_t remaining = frames;
    const std::uint64_t n = bitmap_.size();
    std::uint64_t scanned = 0;
    mem::FrameNumber pos = hint_;
    while (remaining > 0 && scanned < n) {
      if (!bitmap_[pos]) {
        if (!runs.empty() && runs.back().end() == pos) {
          ++runs.back().count;
        } else {
          runs.push_back(mem::FrameRun{pos, 1});
        }
        bitmap_[pos] = true;
        --free_frames_;
        --remaining;
      }
      pos = (pos + 1) % n;
      ++scanned;
    }
    LMP_CHECK(remaining == 0) << "free count disagreed with bitmap";
    hint_ = pos;
    return runs;
  }

  void Free(const std::vector<mem::FrameRun>& runs) {
    for (const mem::FrameRun& r : runs) {
      for (mem::FrameNumber f = r.first; f < r.end(); ++f) {
        LMP_CHECK(bitmap_[f]) << "double free of frame " << f;
        bitmap_[f] = false;
        ++free_frames_;
      }
    }
  }

  std::uint64_t free_frames() const { return free_frames_; }

  std::uint64_t FreeRunCount() const {
    std::uint64_t runs = 0;
    bool in_run = false;
    for (std::size_t f = 0; f < bitmap_.size(); ++f) {
      if (!bitmap_[f] && !in_run) ++runs;
      in_run = !bitmap_[f];
    }
    return runs;
  }

  mem::FrameNumber HighestAllocatedEnd() const {
    for (mem::FrameNumber f = bitmap_.size(); f > 0; --f) {
      if (bitmap_[f - 1]) return f;
    }
    return 0;
  }

  std::uint64_t AllocatedFramesFrom(mem::FrameNumber from) const {
    std::uint64_t count = 0;
    for (mem::FrameNumber f = from; f < bitmap_.size(); ++f) {
      if (bitmap_[f]) ++count;
    }
    return count;
  }

 private:
  std::vector<bool> bitmap_;
  std::uint64_t free_frames_;
  mem::FrameNumber hint_ = 0;
};

// ---------------------------------------------------------------------------
// Adapters so one driver runs both implementations.

struct BitmapSide {
  explicit BitmapSide(std::uint64_t frames) : alloc(frames) {}
  std::optional<std::vector<mem::FrameRun>> TryAlloc(std::uint64_t frames) {
    return alloc.Allocate(frames);
  }
  void Free(const std::vector<mem::FrameRun>& runs) { alloc.Free(runs); }
  std::uint64_t free_frames() const { return alloc.free_frames(); }
  std::uint64_t FreeRunCount() const { return alloc.FreeRunCount(); }
  mem::FrameNumber HighestAllocatedEnd() const {
    return alloc.HighestAllocatedEnd();
  }
  std::uint64_t AllocatedFramesFrom(mem::FrameNumber f) const {
    return alloc.AllocatedFramesFrom(f);
  }
  BitmapAllocator alloc;
};

struct RunIndexSide {
  // `contiguous` selects the redesigned placement (best-fit via the size
  // buckets); false replays the legacy next-fit policy for the equivalence
  // check.
  RunIndexSide(std::uint64_t frames, bool contiguous, bool metrics)
      : alloc(frames, mem::kDefaultFrameSize), contiguous_(contiguous) {
    if (metrics) alloc.set_metrics(&MetricsRegistry::Global());
  }
  std::optional<std::vector<mem::FrameRun>> TryAlloc(std::uint64_t frames) {
    mem::AllocRequest request;
    request.frames = frames;
    request.prefer_contiguous = contiguous_;
    auto runs = alloc.Allocate(request);
    if (!runs.ok()) return std::nullopt;
    return std::move(runs).value();
  }
  void Free(const std::vector<mem::FrameRun>& runs) {
    LMP_CHECK_OK(alloc.Free(runs));
  }
  std::uint64_t free_frames() const { return alloc.free_frames(); }
  std::uint64_t FreeRunCount() const { return alloc.free_run_count(); }
  mem::FrameNumber HighestAllocatedEnd() const {
    return alloc.HighestAllocatedEnd();
  }
  std::uint64_t AllocatedFramesFrom(mem::FrameNumber f) const {
    return alloc.AllocatedFramesFrom(f);
  }
  mem::FrameAllocator alloc;
  bool contiguous_;
};

// ---------------------------------------------------------------------------
// Workload driver.  All randomness is seeded; the same (seed, frames, churn)
// triple produces the same op sequence on every run and both sides.

constexpr std::uint64_t kMinObj = 16;   // frames per object, inclusive
constexpr std::uint64_t kMaxObj = 64;
constexpr std::uint64_t kFillPermille = 995;  // target occupancy at fill

std::uint64_t NextSize(Rng& rng) {
  return kMinObj + rng.NextBounded(kMaxObj - kMinObj + 1);
}

void Mix(std::uint64_t& h, std::uint64_t v) {  // FNV-1a over 64-bit words
  h = (h ^ v) * 0x100000001B3ull;
}

struct LevelResult {
  std::uint64_t objects = 0;      // live objects after fill
  std::uint64_t churn_ops = 0;    // free+realloc pairs that sheared the heap
  std::uint64_t timed_ops = 0;
  std::uint64_t oom_skips = 0;    // timed allocs refused (both sides agree)
  std::uint64_t checksum = 0xcbf29ce484222325ull;  // placement, all phases
  std::uint64_t free_runs = 0;    // external fragmentation after timed loop
  mem::FrameNumber highest_end = 0;
  std::uint64_t tail_frames = 0;  // AllocatedFramesFrom(frames/2)
  double timed_ns_per_op = 0;
  double query_ns = 0;            // one HighestAllocatedEnd+AllocatedFramesFrom
};

template <typename Side>
LevelResult RunLevel(Side& side, std::uint64_t frames, int churn_pct,
                     std::uint64_t ops_cap, std::uint64_t seed) {
  Rng rng(seed);
  LevelResult out;
  std::vector<std::vector<mem::FrameRun>> objs;

  auto checksum_runs = [&](const std::vector<mem::FrameRun>& runs) {
    for (const mem::FrameRun& r : runs) {
      Mix(out.checksum, r.first);
      Mix(out.checksum, r.count);
    }
  };

  // Fill to the occupancy target.
  const std::uint64_t target_used = frames * kFillPermille / 1000;
  while (frames - side.free_frames() + kMaxObj <= target_used) {
    const std::uint64_t size = NextSize(rng);
    auto runs = side.TryAlloc(size);
    LMP_CHECK(runs.has_value());
    checksum_runs(*runs);
    objs.push_back(std::move(*runs));
  }
  out.objects = objs.size();

  // Churn: free `churn_pct` of the objects at random, then re-allocate the
  // same count at fresh sizes.  This shears the freed space into the
  // fragmented steady state the timed loop runs against.
  out.churn_ops = objs.size() * static_cast<std::uint64_t>(churn_pct) / 100;
  for (std::uint64_t i = 0; i < out.churn_ops; ++i) {
    const std::uint64_t pick = rng.NextBounded(objs.size());
    side.Free(objs[pick]);
    objs[pick] = std::move(objs.back());
    objs.pop_back();
  }
  for (std::uint64_t i = 0; i < out.churn_ops; ++i) {
    const std::uint64_t size = NextSize(rng);
    auto runs = side.TryAlloc(size);
    if (!runs.has_value()) continue;  // deterministic: both sides skip alike
    checksum_runs(*runs);
    objs.push_back(std::move(*runs));
  }

  // Timed steady-state loop: one free + one allocate per op.
  out.timed_ops = ops_cap == 0 ? out.churn_ops : std::min(ops_cap,
                                                          out.churn_ops);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < out.timed_ops; ++i) {
    const std::uint64_t pick = rng.NextBounded(objs.size());
    side.Free(objs[pick]);
    objs[pick] = std::move(objs.back());
    objs.pop_back();
    const std::uint64_t size = NextSize(rng);
    auto runs = side.TryAlloc(size);
    if (!runs.has_value()) {
      ++out.oom_skips;
      continue;
    }
    checksum_runs(*runs);
    objs.push_back(std::move(*runs));
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.timed_ns_per_op =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      static_cast<double>(out.timed_ops);

  // Sizing queries on the churned heap (the controller runs these every
  // epoch): answers go to stdout, their cost to stderr.
  out.free_runs = side.FreeRunCount();
  const auto q0 = std::chrono::steady_clock::now();
  constexpr int kQueryReps = 8;
  std::uint64_t sink = 0;
  for (int i = 0; i < kQueryReps; ++i) {
    sink += side.HighestAllocatedEnd();
    sink += side.AllocatedFramesFrom(frames / 2);
  }
  const auto q1 = std::chrono::steady_clock::now();
  out.query_ns = std::chrono::duration<double, std::nano>(q1 - q0).count() /
                 kQueryReps;
  LMP_CHECK(sink > 0);
  out.highest_end = side.HighestAllocatedEnd();
  out.tail_frames = side.AllocatedFramesFrom(frames / 2);
  return out;
}

std::string Hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

// Drop-in equivalence: the run-indexed allocator's default policy must
// place byte-identically to the bitmap next-fit on the same op sequence.
void RunEquivalence(std::uint64_t frames) {
  BitmapSide bitmap(frames);
  RunIndexSide runidx(frames, /*contiguous=*/false, /*metrics=*/false);
  const LevelResult a = RunLevel(bitmap, frames, 50, 2000, 0xE95EED);
  const LevelResult b = RunLevel(runidx, frames, 50, 2000, 0xE95EED);
  LMP_CHECK(a.checksum == b.checksum) << "default policy diverged";
  LMP_CHECK(a.free_runs == b.free_runs);
  LMP_CHECK(a.highest_end == b.highest_end);
  LMP_CHECK(a.tail_frames == b.tail_frames);
  std::printf(
      "drop-in equivalence (default policy, %" PRIu64
      " frames, 50%% churn): checksum %s, %" PRIu64 " free runs -- ok\n",
      frames, Hex(a.checksum).c_str(), a.free_runs);
}

// Locus packing demo: two cohorts on one allocator; mobile frames pack
// low, pinned frames pack high, the buffered locus serves small grabs
// contiguously.
void RunLociDemo() {
  mem::FrameAllocator alloc(4096, mem::kDefaultFrameSize);
  const mem::LocusId mobile = alloc.RegisterLocus(
      mem::LocusSpec{"tenant/mobile", mem::Mobility::kMobile, 64});
  const mem::LocusId pinned = alloc.RegisterLocus(
      mem::LocusSpec{"tenant/pinned", mem::Mobility::kPinned, 64});
  Rng rng(0x10C1);
  std::vector<std::vector<mem::FrameRun>> held[2];
  for (int round = 0; round < 400; ++round) {
    const mem::LocusId locus = (round & 1) ? pinned : mobile;
    const int side = round & 1;
    mem::AllocRequest request;
    request.frames = 1 + rng.NextBounded(16);
    request.locus = locus;
    auto runs = alloc.Allocate(request);
    LMP_CHECK(runs.ok());
    held[side].push_back(std::move(runs).value());
    if (held[side].size() > 4 && rng.NextBernoulli(0.3)) {
      const std::uint64_t pick = rng.NextBounded(held[side].size());
      LMP_CHECK_OK(alloc.Free(held[side][pick]));
      held[side][pick] = std::move(held[side].back());
      held[side].pop_back();
    }
  }
  mem::FrameNumber mobile_max = 0;
  mem::FrameNumber pinned_min = alloc.num_frames();
  for (const auto& obj : held[0]) {
    for (const auto& r : obj) mobile_max = std::max(mobile_max, r.end());
  }
  for (const auto& obj : held[1]) {
    for (const auto& r : obj) pinned_min = std::min(pinned_min, r.first);
  }
  const mem::LocusStats& ms = alloc.locus_stats(mobile);
  const mem::LocusStats& ps = alloc.locus_stats(pinned);
  std::printf(
      "locus packing (4096 frames, 400 interleaved grabs, 30%% churn):\n"
      "  mobile: %" PRIu64 " allocs / %" PRIu64 " frames / %" PRIu64
      " refills, max frame end %" PRIu64 "\n"
      "  pinned: %" PRIu64 " allocs / %" PRIu64 " frames / %" PRIu64
      " refills, min frame %" PRIu64 "\n"
      "  cohorts disjoint (mobile below pinned): %s, buffered frames %"
      PRIu64 "\n",
      ms.allocs, ms.frames, ms.buffer_refills, mobile_max, ps.allocs,
      ps.frames, ps.buffer_refills, pinned_min,
      mobile_max <= pinned_min ? "yes" : "NO", alloc.buffered_frames());
  LMP_CHECK(mobile_max <= pinned_min);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::Parse(argc, argv);
  bench::TraceSidecar sidecar(args);

  std::uint64_t frames = 1'500'000;  // 96 GiB pool box at 64 KiB frames
  std::uint64_t ops_cap = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--frames=", 9) == 0) {
      frames = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--ops=", 6) == 0) {
      ops_cap = std::strtoull(arg + 6, nullptr, 10);
    }
  }
  LMP_CHECK(frames >= 4096) << "--frames too small";

  std::printf("== bench_alloc: %" PRIu64
              " frames (%.0f GiB at 64 KiB), objects %" PRIu64 "-%" PRIu64
              " frames, fill %.1f%% ==\n",
              frames,
              static_cast<double>(frames * mem::kDefaultFrameSize) / kGiB,
              kMinObj, kMaxObj, kFillPermille / 10.0);

  TablePrinter table({"Churn", "Impl", "Objects", "Timed ops", "Skips",
                      "Free runs", "Highest end", "Tail frames",
                      "Placement"});
  double min_speedup = 1e300;
  for (const int churn : {10, 50, 90}) {
    const std::uint64_t seed = 0xA110C000 + static_cast<std::uint64_t>(churn);
    BitmapSide bitmap(frames);
    const LevelResult bm = RunLevel(bitmap, frames, churn, ops_cap, seed);
    RunIndexSide runidx(frames, /*contiguous=*/true, /*metrics=*/true);
    const LevelResult ri = RunLevel(runidx, frames, churn, ops_cap, seed);
    LMP_CHECK(bm.objects == ri.objects && bm.timed_ops == ri.timed_ops);
    LMP_CHECK(bm.oom_skips == ri.oom_skips)
        << "capacity accounting diverged between implementations";
    table.AddRow({std::to_string(churn) + "%", "bitmap-scan",
                  std::to_string(bm.objects), std::to_string(bm.timed_ops),
                  std::to_string(bm.oom_skips), std::to_string(bm.free_runs),
                  std::to_string(bm.highest_end),
                  std::to_string(bm.tail_frames), Hex(bm.checksum)});
    table.AddRow({std::to_string(churn) + "%", "run-index",
                  std::to_string(ri.objects), std::to_string(ri.timed_ops),
                  std::to_string(ri.oom_skips), std::to_string(ri.free_runs),
                  std::to_string(ri.highest_end),
                  std::to_string(ri.tail_frames), Hex(ri.checksum)});
    const double speedup = bm.timed_ns_per_op / ri.timed_ns_per_op;
    min_speedup = std::min(min_speedup, speedup);
    std::fprintf(stderr,
                 "churn=%d%%: alloc+free bitmap %.0f ns/op, run-index %.0f "
                 "ns/op (speedup %.1fx); sizing queries %.0f ns vs %.0f ns "
                 "(%.0fx)\n",
                 churn, bm.timed_ns_per_op, ri.timed_ns_per_op, speedup,
                 bm.query_ns, ri.query_ns, bm.query_ns / ri.query_ns);
  }
  table.Print();
  std::fprintf(stderr, "minimum alloc+free speedup across levels: %.1fx\n",
               min_speedup);

  std::printf("\n");
  RunEquivalence(std::max<std::uint64_t>(frames / 8, 4096));
  RunLociDemo();
  std::printf(
      "\nThe table is fully deterministic: placement checksums cover every\n"
      "run handed out, the run-index rows show the best-fit policy's lower\n"
      "external fragmentation, and the equivalence line proves the default\n"
      "policy is a drop-in for the bitmap scan.  Wall-clock throughput and\n"
      "the speedup ratios are on stderr.\n");
  sidecar.Flush();
  return 0;
}
