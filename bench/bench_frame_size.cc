// Frame-size ablation: the metadata/granularity trade behind §5's
// "fine grained and can be resolved locally" translation argument.
// Smaller frames mean finer migration/caching units but more frames to
// track; larger frames shrink the maps but waste capacity to internal
// fragmentation on small allocations.
#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/pool_manager.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

struct FrameOutcome {
  double map_entries_per_gib;    // frames to track per GiB
  double frag_overhead_percent;  // capacity lost to rounding, small allocs
  double alloc_us;               // avg allocation+free cost (wall)
};

FrameOutcome Measure(Bytes frame_size) {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = GiB(24);
  config.server_shared_memory = GiB(24);
  config.frame_size = frame_size;
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);

  FrameOutcome out;
  out.map_entries_per_gib =
      static_cast<double>(kGiB) / static_cast<double>(frame_size);

  // Fragmentation: many small, odd-sized allocations.
  Rng rng(3);
  Bytes requested = 0;
  std::vector<core::BufferId> buffers;
  for (int i = 0; i < 2000; ++i) {
    const Bytes size = KiB(1) * rng.NextInRange(1, 96);  // 1-96 KiB
    auto buf = manager.Allocate(size, 0);
    if (!buf.ok()) break;
    requested += size;
    buffers.push_back(*buf);
  }
  const Bytes used =
      cluster.PooledCapacityBytes() - cluster.PooledFreeBytes();
  out.frag_overhead_percent =
      100.0 * (static_cast<double>(used) - static_cast<double>(requested)) /
      static_cast<double>(requested);

  // Allocation cost at this granularity (wall clock, coarse).
  const auto start = std::chrono::steady_clock::now();
  constexpr int kOps = 300;
  for (int i = 0; i < kOps; ++i) {
    auto buf = manager.Allocate(MiB(64), 1);
    LMP_CHECK(buf.ok());
    LMP_CHECK_OK(manager.Free(*buf));
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  out.alloc_us =
      static_cast<double>(elapsed.count()) / kOps / 1000.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  std::printf(
      "== Frame-size ablation: metadata vs fragmentation vs alloc cost "
      "==\n");
  TablePrinter table({"Frame size", "Map entries/GiB", "Frag overhead",
                      "64MiB alloc+free (us)"});
  for (const Bytes frame : {KiB(4), KiB(64), MiB(2)}) {
    const FrameOutcome out = Measure(frame);
    const std::string label =
        frame >= kMiB ? std::to_string(frame / kMiB) + " MiB"
                      : std::to_string(frame / kKiB) + " KiB";
    table.AddRow({label, TablePrinter::Num(out.map_entries_per_gib, 0),
                  TablePrinter::Num(out.frag_overhead_percent, 1) + "%",
                  TablePrinter::Num(out.alloc_us, 1)});
  }
  table.Print();
  std::printf(
      "\n4 KiB frames track 262144 entries per GiB — fine for a per-server\n"
      "map resolved locally (the point of two-step translation) but far\n"
      "too many to replicate globally; 2 MiB frames cut metadata 512x at\n"
      "a few percent fragmentation on small-object workloads (Section 5).\n");
  sidecar.Flush();
  return 0;
}
