// Chaos sweep (§5 "Failure domains"): the same fault plans — crash count x
// link-degradation severity — replayed against the logical pool (with one
// extra replica per segment) and the physical pool box, through the unified
// MemoryDeployment::RunWorkload API.
//
// The contrast this makes visible:
//  * Logical: a server crash loses the segments it hosted; replication
//    fails them over instantly but re-replication traffic competes with
//    the workload, and time-to-redundancy stretches when the fabric is
//    degraded (transfers retry with backoff through a dead-slow link).
//  * Physical: pooled data lives on the pool box, so server crashes cost
//    nothing — but degrading the runner's link throttles EVERY access,
//    because all of them cross the fabric.
//
// Deterministic: same plan + seed => byte-identical stdout, trace, and
// metrics (the determinism test in tests/chaos_test.cc holds benches to
// this).  --fault-plan=PATH replaces the built-in plans with one file
// applied to every deployment (the sweep collapses to that single cell).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "args.h"
#include "baselines/logical.h"
#include "baselines/physical.h"
#include "chaos/fault_plan.h"
#include "common/table.h"
#include "core/placement.h"
#include "ctrl/slo_ledger.h"
#include "obs/time_series.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

// 16 GiB striped round-robin in 1 GiB segments: 4 GiB (+4 GiB replica) per
// server, so every crash hits real segments AND the survivors always have
// capacity to re-replicate into — local-first would pack the runner full
// and leave re-replication nowhere to go.
constexpr Bytes kVector = GiB(16);
constexpr Bytes kStripe = GiB(1);
constexpr int kReps = 5;

// Built-in plan for one sweep cell.  Faults land inside the workload
// window: degrade the runner's link at 50ms (restored at 2s), crash s1 at
// 100ms and s2 at 200ms — inside the degradation window, so their recovery
// transfers race it.
chaos::FaultPlan PlanFor(int crashes, double severity) {
  chaos::FaultPlan plan;
  if (severity < 1.0) {
    plan.DegradeLinkAt(Milliseconds(50), 0, severity, /*latency_mult=*/2.0);
    plan.RestoreLinkAt(Milliseconds(2000), 0);
  }
  if (crashes >= 1) plan.CrashAt(Milliseconds(100), 1);
  if (crashes >= 2) plan.CrashAt(Milliseconds(200), 2);
  return plan;
}

struct Cell {
  std::string label;
  chaos::FaultPlan plan;
};

// Per-cell SLOs for the --slo-out ledger: a chaos cell "meets SLO" when the
// workload held 4 GB/s and buffers were never unprotected for more than a
// millisecond.  Crash-free cells meet both trivially; the sweep shows which
// fault mixes break which deployment.
constexpr double kSloMinGbps = 4.0;
constexpr SimTime kSloMaxUnavail = Milliseconds(1);

void RunSweep(std::string_view deployment_name, bool logical,
              const std::vector<Cell>& cells,
              lmp::bench::TraceSidecar* sidecar,
              std::vector<std::unique_ptr<obs::TimeSeriesRecorder>>* keep) {
  trace::TraceCollector* trace = sidecar->collector();
  std::printf("== %s: %d GiB vector, %d reps ==\n",
              std::string(deployment_name).c_str(),
              static_cast<int>(kVector / GiB(1)), kReps);
  TablePrinter table({"Plan", "GB/s", "TTR (ms)", "Unavail (ms)",
                      "Re-repl (GiB)", "Retries", "Lost", "Reps skipped"});
  for (const Cell& cell : cells) {
    baselines::WorkloadSpec spec;
    spec.vector.vector_bytes = kVector;
    spec.vector.repetitions = kReps;
    spec.faults = cell.plan;
    spec.replication_factor = logical ? 1 : 0;
    // With --postmortem-out, every crash in this cell freezes the flight
    // recorder's ring into a postmortem snapshot.
    spec.flight_recorder = sidecar->flight_recorder();

    // A fresh deployment per cell: plans must not see each other's state.
    std::unique_ptr<baselines::MemoryDeployment> deployment;
    sim::FluidSimulator* cell_sim = nullptr;
    if (logical) {
      auto d = std::make_unique<baselines::LogicalDeployment>(
          fabric::LinkProfile::Link0(),
          cluster::ClusterConfig::PaperLogical(),
          std::make_unique<core::RoundRobinPlacement>(kStripe));
      cell_sim = &d->simulator();
      deployment = std::move(d);
    } else {
      auto d = std::make_unique<baselines::PhysicalDeployment>(
          fabric::LinkProfile::Link0(), /*use_cache=*/false);
      cell_sim = &d->simulator();
      deployment = std::move(d);
    }

    // With --series-out, sample fabric pressure through the fault window:
    // the flow count spikes while recovery transfers race the workload.
    if (sidecar->wants_series()) {
      obs::TimeSeriesRecorder::Config rc;
      rc.interval = Milliseconds(10);
      rc.horizon = Milliseconds(2500);
      rc.prefix =
          std::string(deployment_name) + "/" + cell.label + "/";
      auto recorder =
          std::make_unique<obs::TimeSeriesRecorder>(cell_sim, rc);
      recorder->AddGauge("active_flows", [cell_sim] {
        return static_cast<double>(cell_sim->active_flow_count());
      });
      recorder->AddCounter("solver.recompute_calls", [cell_sim] {
        return cell_sim->solver_stats().recompute_calls;
      });
      recorder->Start();
      sidecar->AddSeriesRecorder(recorder.get());
      keep->push_back(std::move(recorder));
    }

    auto result_or = deployment->RunWorkload(spec);
    LMP_CHECK(result_or.ok()) << result_or.status().ToString();
    const baselines::WorkloadResult& r = *result_or;
    if (trace != nullptr) {
      // The run's chaos events live in each deployment's own collector-less
      // sim; export the SLO summary as counters on the shared timeline.
      trace->Counter(trace::Category::kChaos,
                     std::string(deployment_name) + "." + cell.label + ".ttr_ms",
                     0, r.chaos.max_time_to_redundancy / kNsPerMs);
    }
    if (ctrl::SloLedger* slo = sidecar->slo_ledger(); slo != nullptr) {
      const std::string tenant =
          std::string(deployment_name) + "/" + cell.label;
      ctrl::SloTargets targets;
      targets.min_bandwidth_gbps = kSloMinGbps;
      targets.max_unavailability = kSloMaxUnavail;
      slo->Register(tenant, targets);
      slo->RecordBandwidth(tenant, r.vector.avg_bandwidth_gbps);
      if (r.chaos.total_unavailability > 0) {
        slo->AddUnavailability(tenant, r.chaos.total_unavailability);
      }
    }
    table.AddRow(
        {cell.label, TablePrinter::Num(r.vector.avg_bandwidth_gbps, 2),
         TablePrinter::Num(r.chaos.max_time_to_redundancy / kNsPerMs, 2),
         TablePrinter::Num(r.chaos.total_unavailability / kNsPerMs, 2),
         TablePrinter::Num(
             static_cast<double>(r.chaos.bytes_rereplicated) / GiB(1), 2),
         std::to_string(r.chaos.transfer_retries),
         std::to_string(r.chaos.segments_lost),
         std::to_string(r.reps_unavailable)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);

  std::vector<Cell> cells;
  if (args.has_fault_plan()) {
    auto plan = chaos::FaultPlan::ParseFile(args.fault_plan);
    LMP_CHECK(plan.ok()) << plan.status().ToString();
    cells.push_back(Cell{"file plan", *plan});
  } else {
    for (const int crashes : {0, 1, 2}) {
      for (const double severity : {1.0, 0.5, 0.05}) {
        std::string label = std::to_string(crashes) + " crash";
        if (crashes != 1) label += "es";
        if (severity < 1.0) {
          label += ", link x" + TablePrinter::Num(severity, 2);
        }
        cells.push_back(Cell{label, PlanFor(crashes, severity)});
      }
    }
  }

  std::vector<std::unique_ptr<obs::TimeSeriesRecorder>> recorders;
  RunSweep("Logical (replication=1)", /*logical=*/true, cells, &sidecar,
           &recorders);
  RunSweep("Physical no-cache", /*logical=*/false, cells, &sidecar,
           &recorders);
  std::printf(
      "Same plans, same fabric: the logical pool pays recovery traffic for\n"
      "crashes but keeps serving from replicas; the physical box shrugs off\n"
      "server crashes and instead collapses when its access link degrades.\n");
  sidecar.Flush();
  return 0;
}
