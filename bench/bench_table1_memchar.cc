// Reproduces Table 1: latency and bandwidth for local memory vs CXL remote
// memory (Pond and FPGA numbers).  Unloaded latency comes from the profile;
// bandwidth is *measured* by saturating the simulated device with 14
// streaming cores and reporting the achieved aggregate.
#include <cstdio>

#include "common/table.h"
#include "fabric/link.h"
#include "fabric/topology.h"
#include "sim/fluid.h"
#include "sim/stream.h"

#include "common/trace.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

// Saturating 14-core stream against one device behind `device_bw`, reached
// through a per-direction port of `port_bw` (0 = direct local access).
double MeasureBandwidth(BytesPerSec device_bw, BytesPerSec port_bw,
                        trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  if (trace != nullptr) {
    trace->BeginProcess("bw-" + std::to_string(static_cast<int>(device_bw)));
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
  }
  const auto device = sim.AddResource("device", device_bw);
  std::vector<sim::ResourceId> path_tail{device};
  if (port_bw > 0) {
    path_tail.insert(path_tail.begin(), sim.AddResource("port", port_bw));
  }
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int c = 0; c < 14; ++c) {
    std::vector<sim::ResourceId> path{sim.AddResource("core", GBps(12))};
    path.insert(path.end(), path_tail.begin(), path_tail.end());
    streams.push_back(std::make_unique<sim::SpanStream>(
        &sim, std::vector<sim::Span>{sim::Span{8e9, path}}));
  }
  return sim::RunStreams(&sim, std::move(streams)).gbps;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  std::printf(
      "== Table 1: latency and bandwidth for different memory types ==\n");
  TablePrinter table({"Memory type", "Latency (ns)", "Bandwidth (GB/s)",
                      "Paper latency", "Paper bandwidth"});

  const auto local = fabric::LinkProfile::LocalDram();
  table.AddRow({"Local memory",
                TablePrinter::Num(local.LoadedLatency(0), 0),
                TablePrinter::Num(MeasureBandwidth(local.bandwidth, 0, sidecar.collector()), 0),
                "82", "97"});

  const auto pond = fabric::LinkProfile::PondCxl();
  table.AddRow({"CXL remote (Pond)",
                TablePrinter::Num(pond.LoadedLatency(0), 0),
                TablePrinter::Num(
                    MeasureBandwidth(local.bandwidth, pond.bandwidth, sidecar.collector()), 0),
                "280", "31"});

  const auto fpga = fabric::LinkProfile::FpgaCxl();
  table.AddRow({"CXL remote (FPGA)",
                TablePrinter::Num(fpga.LoadedLatency(0), 0),
                TablePrinter::Num(
                    MeasureBandwidth(local.bandwidth, fpga.bandwidth, sidecar.collector()), 0),
                "303", "20"});
  table.Print();

  std::printf(
      "\nCXL remote is %.1f-%.1fx slower in bandwidth and %.1f-%.1fx higher "
      "in latency than local memory, matching the paper's 4-10x / 3-5x "
      "framing (Section 2.1).\n",
      local.bandwidth / pond.bandwidth, local.bandwidth / fpga.bandwidth,
      pond.LoadedLatency(0) / local.LoadedLatency(0),
      fpga.LoadedLatency(0) / local.LoadedLatency(0));
  sidecar.Flush();
  return 0;
}
