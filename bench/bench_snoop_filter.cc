// Snoop-filter occupancy ablation (§3.2): why the coherent region must be
// SMALL.  Four hosts cycle a shared working set through CXL hardware
// coherence; once the set outgrows the inclusive snoop filter, every new
// line evicts a tracked one and back-invalidates its holders — coherence
// traffic explodes.  "Limiting the amount of coherent memory lessens the
// likelihood of filling CXL's Inclusive Snoop Filter."
#include <cstdio>

#include "common/table.h"
#include "fabric/cxl.h"

#include "args.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  using namespace lmp;
  constexpr std::uint64_t kFilterLines = 32 * 1024;  // 2 MiB of 64B lines
  constexpr int kHosts = 4;
  constexpr int kRounds = 4;

  std::printf(
      "== Inclusive snoop filter: working-set sweep (filter tracks %llu "
      "lines = %llu MiB) ==\n",
      static_cast<unsigned long long>(kFilterLines),
      static_cast<unsigned long long>(kFilterLines * 64 / kMiB));
  TablePrinter table({"Coherent working set", "Filter occupancy",
                      "Back-invalidations", "BI per access"});

  for (const double ratio : {0.25, 0.5, 0.9, 1.1, 2.0, 4.0}) {
    const auto lines =
        static_cast<std::uint64_t>(ratio * kFilterLines);
    fabric::SnoopFilter filter(kFilterLines);
    std::uint64_t accesses = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (std::uint64_t line = 0; line < lines; ++line) {
        (void)filter.OnRead(static_cast<int>(line % kHosts), line);
        ++accesses;
      }
    }
    table.AddRow(
        {TablePrinter::Num(static_cast<double>(lines) * 64 / kMiB, 1) +
             " MiB (" + TablePrinter::Num(ratio, 2) + "x filter)",
         TablePrinter::Num(100.0 * filter.tracked_lines() / kFilterLines,
                           0) +
             "%",
         std::to_string(filter.total_back_invalidations()),
         TablePrinter::Num(
             static_cast<double>(filter.total_back_invalidations()) /
                 static_cast<double>(accesses),
             3)});
  }
  table.Print();
  std::printf(
      "\nBelow the filter size: zero back-invalidations. Beyond it, nearly\n"
      "every access evicts a tracked line — hardware coherence stops\n"
      "scaling, which is why LMPs keep the coherent region to a few GBs\n"
      "and run the bulk of the pool non-coherent (Section 3.2).\n");
  sidecar.Flush();
  return 0;
}
