// Rack-scale extension: a logical pool spanning two racks over a PBR
// fabric (§2.2's Global FAM / Port Based Routing).  Compares pulling a
// working set from same-rack peers vs cross-rack peers at two trunk
// provisioning levels — the locality hierarchy an at-scale LMP would have
// to manage (and one more reason placement/migration matter).
#include <cstdio>

#include "common/table.h"
#include "common/logging.h"
#include "common/trace.h"
#include "fabric/pbr_switch.h"
#include "sim/stream.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

double PullBandwidth(int servers_per_rack, BytesPerSec trunk,
                     bool cross_rack,
                     trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  if (trace != nullptr) {
    trace->BeginProcess(std::string(cross_rack ? "cross-rack" : "same-rack") +
                        "-trunk" + std::to_string(static_cast<int>(trunk)));
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
  }
  auto topo = fabric::MakeDualRack(&sim, servers_per_rack, GBps(34.5),
                                   trunk);
  // Every rack-0 server pulls 8 GB from a distinct peer.
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int s = 0; s < servers_per_rack; ++s) {
    const fabric::NodeId src =
        cross_rack ? topo.rack1[s]
                   : topo.rack0[(s + 1) % servers_per_rack];
    auto route = topo.fabric->Route(src, topo.rack0[s]);
    LMP_CHECK(route.ok());
    streams.push_back(std::make_unique<sim::SpanStream>(
        &sim, std::vector<sim::Span>{sim::Span{8e9, *route}}));
  }
  return sim::RunStreams(&sim, std::move(streams)).gbps;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  std::printf(
      "== Dual-rack logical pool: 4 pullers per rack, PBR fabric ==\n");
  TablePrinter table({"Traffic pattern", "Trunk", "Aggregate GB/s"});
  for (const double trunk_gbps : {34.5, 138.0}) {
    table.AddRow({"same-rack peers", TablePrinter::Num(trunk_gbps) + " GB/s",
                  TablePrinter::Num(
                      PullBandwidth(4, GBps(trunk_gbps), false,
                                    sidecar.collector()))});
    table.AddRow({"cross-rack peers",
                  TablePrinter::Num(trunk_gbps) + " GB/s",
                  TablePrinter::Num(
                      PullBandwidth(4, GBps(trunk_gbps), true,
                                    sidecar.collector()))});
  }
  table.Print();
  std::printf(
      "\nSame-rack traffic scales with per-server ports; cross-rack traffic\n"
      "funnels through the trunk unless it is provisioned ~Nx — so a\n"
      "rack-scale LMP's sizing/migration policies should treat rack\n"
      "locality as a second tier (Sections 2.2, 5).\n");
  sidecar.Flush();
  return 0;
}
