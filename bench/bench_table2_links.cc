// Reproduces Table 2: minimum and maximum latency under load, and
// bandwidth, for the two emulated CXL links (Link0 = default UPI, Link1 =
// slowed-uncore UPI), plus the §4.3 loaded-latency ratio claims.
//
// Bandwidth is measured by driving the link to saturation in the fluid
// simulator; loaded latency is sampled from the topology's latency model
// at the smoothed utilization the traffic actually produced.
#include <cstdio>

#include "common/table.h"
#include "fabric/link.h"
#include "fabric/topology.h"
#include "sim/fluid.h"
#include "sim/stream.h"

#include "common/trace.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

struct LinkMeasurement {
  double min_latency_ns;
  double max_latency_ns;
  double bandwidth_gbps;
};

LinkMeasurement Measure(const fabric::LinkProfile& link,
                        trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  if (trace != nullptr) {
    trace->BeginProcess(std::string(link.name));
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
  }
  auto topo = fabric::Topology::MakeLogical(&sim, 2, link);

  LinkMeasurement m{};
  // Unloaded: no traffic at all.
  m.min_latency_ns = topo.RemoteLoadedLatency(0, 1);

  // Loaded: all 14 cores of server 0 stream from server 1 long enough for
  // the smoothed utilization to converge; sample latency mid-flight.
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int c = 0; c < 14; ++c) {
    streams.push_back(std::make_unique<sim::SpanStream>(
        &sim, std::vector<sim::Span>{
                  sim::Span{4e9, topo.RemotePath(0, c, 1)}}));
  }
  double loaded_latency = 0;
  sim.ScheduleAt(Milliseconds(500), [&](SimTime) {
    loaded_latency = topo.RemoteLoadedLatency(0, 1);
  });
  const auto result = sim::RunStreams(&sim, std::move(streams));
  m.max_latency_ns = loaded_latency;
  m.bandwidth_gbps = result.gbps;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  std::printf("== Table 2: emulated CXL link characterization ==\n");
  TablePrinter table({"Remote link", "Min lat", "Max lat", "Bandwidth",
                      "Paper min/max/bw"});
  double max_loaded[2] = {0, 0};
  int idx = 0;
  for (const auto& link :
       {fabric::LinkProfile::Link0(), fabric::LinkProfile::Link1()}) {
    const LinkMeasurement m = Measure(link, sidecar.collector());
    max_loaded[idx++] = m.max_latency_ns;
    const std::string paper =
        link.name == "Link0" ? "163ns / 418ns / 34.5GB/s"
                             : "261ns / 527ns / 21.0GB/s";
    table.AddRow({link.name, TablePrinter::Num(m.min_latency_ns, 0) + "ns",
                  TablePrinter::Num(m.max_latency_ns, 0) + "ns",
                  TablePrinter::Num(m.bandwidth_gbps, 1) + "GB/s", paper});
  }
  table.Print();

  // §4.3: "the maximum remote loaded latency is 2.8x and 3.6x higher than
  // maximum loaded local latency, when using Link0 and Link1".
  sim::FluidSimulator sim;
  auto topo = fabric::Topology::MakeLogical(&sim,
                                            2, fabric::LinkProfile::Link0());
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int c = 0; c < 14; ++c) {
    streams.push_back(std::make_unique<sim::SpanStream>(
        &sim, std::vector<sim::Span>{sim::Span{8e9, topo.LocalPath(0, c)}}));
  }
  double local_loaded = 0;
  sim.ScheduleAt(Milliseconds(500), [&](SimTime) {
    local_loaded = topo.LocalLoadedLatency(0);
  });
  (void)sim::RunStreams(&sim, std::move(streams));

  std::printf(
      "\nMax loaded local latency: %.0f ns\n"
      "Remote/local loaded-latency ratio: Link0 %.1fx (paper 2.8x), "
      "Link1 %.1fx (paper 3.6x)\n",
      local_loaded, max_loaded[0] / local_loaded,
      max_loaded[1] / local_loaded);
  sidecar.Flush();
  return 0;
}
