// Server-count scaling: how the logical pool's aggregate near-memory
// bandwidth and its all-remote worst case grow with deployment size
// (toward the paper's "10-100 TB of shared memory" vision, §3.2).
// Distributed (shipped) sums scale with servers x local DRAM; the
// all-remote pattern scales with servers x link — both linear, neither
// bottlenecked on a pool box.
//
// The second section exercises the parallel sharded solver: racks of 128
// servers are solver shards, waves of rack-local flows arrive in batches,
// and independent racks re-rate concurrently on --threads=N workers.
// Simulated results (this table, traces, metrics) are byte-identical for
// every thread count; only the wall-clock — reported on stderr — changes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/table.h"
#include "fabric/topology.h"
#include "obs/time_series.h"
#include "sim/stream.h"

#include "common/trace.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

double DistributedLocalSum(int servers, trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  if (trace != nullptr) {
    trace->BeginProcess("shipped-local-" + std::to_string(servers));
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
  }
  auto topo = fabric::Topology::MakeLogical(&sim, servers,
                                            fabric::LinkProfile::Link1());
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int s = 0; s < servers; ++s) {
    for (int c = 0; c < 14; ++c) {
      streams.push_back(std::make_unique<sim::SpanStream>(
          &sim,
          std::vector<sim::Span>{sim::Span{
              8e9 / 14, topo.LocalPath(static_cast<fabric::ServerIndex>(s),
                                       c)}}));
    }
  }
  return sim::RunStreams(&sim, std::move(streams)).gbps;
}

double AllRemoteRing(int servers, trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  if (trace != nullptr) {
    trace->BeginProcess("all-remote-ring-" + std::to_string(servers));
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
  }
  auto topo = fabric::Topology::MakeLogical(&sim, servers,
                                            fabric::LinkProfile::Link1());
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int s = 0; s < servers; ++s) {
    for (int c = 0; c < 14; ++c) {
      streams.push_back(std::make_unique<sim::SpanStream>(
          &sim, std::vector<sim::Span>{sim::Span{
                    8e9 / 14,
                    topo.RemotePath(static_cast<fabric::ServerIndex>(s), c,
                                    static_cast<fabric::ServerIndex>(
                                        (s + 1) % servers))}}));
    }
  }
  return sim::RunStreams(&sim, std::move(streams)).gbps;
}

struct WaveResult {
  std::uint64_t flows = 0;
  std::uint64_t solves = 0;
  std::uint64_t flows_touched = 0;
  std::uint64_t parallel_solves = 0;
  int racks = 0;
  double gbps = 0;
  double wall_ms = 0;
};

// Waves of rack-local traffic at cluster scale.  Racks are sized so each
// per-rack solve is a meaty unit of work for a pool thread (the fill cost
// grows with the square of rack size, the task count shrinks only
// linearly).  Every server streams ten equal flows per wave (two per core)
// to its successor in an in-rack ring,
// so each rack is one genuinely coupled component — every port carries its
// server's outgoing and its predecessor's incoming flows — while all racks
// stay symmetric, keeping rates uniform and completions synchronized
// cluster-wide.  Server 0 sends one cross-rack flow instead, holding racks
// 0 and 1 open so the sequential spill path stays exercised.  Waves
// overlap, so at the largest size 100k+ flows are concurrently active, and
// arrival/completion sweeps re-rate the whole cluster at once — the solves
// that partition into one task per closed rack.
// With `keep` non-null, a time-series recorder samples the solver counters
// and the live flow count every 100us of sim time — the probes read solver
// totals that are identical for every --threads= value, so the series
// sidecar doubles as a thread-count determinism check.
WaveResult RackLocalWaves(int servers, int threads,
                          trace::TraceCollector* trace = nullptr,
                          std::vector<std::unique_ptr<
                              obs::TimeSeriesRecorder>>* keep = nullptr) {
  constexpr int kServersPerRack = 128;
  constexpr int kWaves = 4;
  constexpr int kFlowsPerServer = 10;
  constexpr double kBytesPerFlow = 2e6;
  const SimTime wave_interval = Microseconds(250);

  const auto wall0 = std::chrono::steady_clock::now();
  sim::FluidSimulator sim;
  sim.set_record_retention(sim::RecordRetention::kDropCompleted);
  sim.set_threads(threads);
  if (trace != nullptr) {
    trace->BeginProcess("rack-waves-" + std::to_string(servers));
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
  }
  auto topo = fabric::Topology::MakeLogical(&sim, servers,
                                            fabric::LinkProfile::Link1());
  topo.AssignRackShards(kServersPerRack);

  std::unique_ptr<obs::TimeSeriesRecorder> recorder;
  if (keep != nullptr) {
    obs::TimeSeriesRecorder::Config rc;
    rc.interval = Microseconds(100);
    rc.horizon = Milliseconds(3);  // past the last wave's completion
    rc.prefix = "rack-waves-" + std::to_string(servers) + "/";
    recorder = std::make_unique<obs::TimeSeriesRecorder>(&sim, rc);
    recorder->AddGauge("active_flows", [&sim] {
      return static_cast<double>(sim.active_flow_count());
    });
    recorder->AddCounter("solver.recompute_calls", [&sim] {
      return sim.solver_stats().recompute_calls;
    });
    recorder->AddCounter("solver.shard_tasks", [&sim] {
      return sim.solver_stats().shard_tasks;
    });
    recorder->AddCounter("solver.flows_touched", [&sim] {
      return sim.solver_stats().flows_touched;
    });
    recorder->Start();
  }

  // The recorder's sampling horizon outlives the last completion, so with
  // series wired the workload's elapsed time is taken from the completion
  // callbacks rather than the (recorder-extended) final sim clock.
  SimTime last_done = 0;
  std::uint64_t flows = 0;
  for (int w = 0; w < kWaves; ++w) {
    sim.ScheduleAt(w * wave_interval, [&](SimTime) {
      sim.BeginBatch();
      for (int s = 0; s < servers; ++s) {
        const auto src = static_cast<fabric::ServerIndex>(s);
        const int rack_base = (s / kServersPerRack) * kServersPerRack;
        const int rack_size =
            std::min(kServersPerRack, servers - rack_base);
        const auto ring_next = static_cast<fabric::ServerIndex>(
            rack_base + (s - rack_base + 1) % rack_size);
        for (int i = 0; i < kFlowsPerServer; ++i) {
          const int core = i / 2;
          const bool cross_rack =
              i == 0 && s == 0 && kServersPerRack < servers;
          const auto dst =
              cross_rack
                  ? static_cast<fabric::ServerIndex>(kServersPerRack)
                  : ring_next;
          if (recorder != nullptr) {
            sim.StartFlow(kBytesPerFlow, topo.RemotePath(src, core, dst),
                          [&last_done](sim::FlowId, SimTime t) {
                            last_done = t;
                          });
          } else {
            sim.StartFlow(kBytesPerFlow, topo.RemotePath(src, core, dst));
          }
          ++flows;
        }
      }
      sim.EndBatch();
    });
  }
  sim.Run();

  WaveResult out;
  out.flows = flows;
  out.racks = topo.num_racks();
  const sim::SolverStats& st = sim.solver_stats();
  out.solves = st.recompute_calls;
  out.flows_touched = st.flows_touched;
  out.parallel_solves = st.parallel_solves;
  const SimTime elapsed = recorder != nullptr ? last_done : sim.now();
  out.gbps =
      static_cast<double>(flows) * kBytesPerFlow / (elapsed / kNsPerSec) /
      1e9;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();
  sim.ExportSolverMetrics(MetricsRegistry::Global());
  if (recorder != nullptr) keep->push_back(std::move(recorder));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  std::printf(
      "== Scaling: aggregate bandwidth vs server count (Link1) ==\n");
  TablePrinter table({"Servers", "Pooled memory", "Shipped-local GB/s",
                      "All-remote ring GB/s"});
  for (const int servers : {2, 4, 8, 16}) {
    table.AddRow({std::to_string(servers),
                  std::to_string(servers * 24) + " GiB",
                  TablePrinter::Num(DistributedLocalSum(servers, sidecar.collector())),
                  TablePrinter::Num(AllRemoteRing(servers, sidecar.collector()))});
  }
  table.Print();
  std::printf(
      "\nBoth patterns scale linearly with servers — there is no central\n"
      "pool box to saturate.  A physical pool's aggregate is pinned at its\n"
      "port provisioning regardless of server count (cf. bench_incast).\n");

  std::printf(
      "\n== Parallel sharded solver: rack-local waves (racks of 128) ==\n");
  TablePrinter ptable({"Servers", "Racks", "Flows", "Solves", "Flows touched",
                       "GB/s"});
  std::vector<std::unique_ptr<lmp::obs::TimeSeriesRecorder>> recorders;
  for (const int servers : {1000, 2000, 5000, 10000}) {
    // Tracing and series sampling are wired only at the smallest size: they
    // prove thread-count determinism of the emitted sidecars without
    // buffering millions of per-flow events at the 10k-server point.
    const bool wired = servers == 1000;
    const WaveResult r = RackLocalWaves(
        servers, args.threads, wired ? sidecar.collector() : nullptr,
        wired && sidecar.wants_series() ? &recorders : nullptr);
    ptable.AddRow({std::to_string(servers), std::to_string(r.racks),
                   std::to_string(r.flows), std::to_string(r.solves),
                   std::to_string(r.flows_touched), TablePrinter::Num(r.gbps)});
    std::fprintf(stderr, "rack-waves: %d servers, threads=%d: %.1f ms\n",
                 servers, args.threads, r.wall_ms);
  }
  for (const auto& rec : recorders) sidecar.AddSeriesRecorder(rec.get());
  ptable.Print();
  std::printf(
      "\nEach rack is a solver shard: cluster-wide arrival and completion\n"
      "sweeps re-rate closed racks as independent tasks on the worker pool\n"
      "(--threads=N), while cross-rack flows pin their racks to the\n"
      "sequential spill path.  Simulated output is byte-identical for any\n"
      "thread count; wall-clock per size is reported on stderr.\n");
  sidecar.Flush();
  return 0;
}
