// Server-count scaling: how the logical pool's aggregate near-memory
// bandwidth and its all-remote worst case grow with deployment size
// (toward the paper's "10-100 TB of shared memory" vision, §3.2).
// Distributed (shipped) sums scale with servers x local DRAM; the
// all-remote pattern scales with servers x link — both linear, neither
// bottlenecked on a pool box.
#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "fabric/topology.h"
#include "sim/stream.h"

#include "common/trace.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

double DistributedLocalSum(int servers, trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  if (trace != nullptr) {
    trace->BeginProcess("shipped-local-" + std::to_string(servers));
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
  }
  auto topo = fabric::Topology::MakeLogical(&sim, servers,
                                            fabric::LinkProfile::Link1());
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int s = 0; s < servers; ++s) {
    for (int c = 0; c < 14; ++c) {
      streams.push_back(std::make_unique<sim::SpanStream>(
          &sim,
          std::vector<sim::Span>{sim::Span{
              8e9 / 14, topo.LocalPath(static_cast<fabric::ServerIndex>(s),
                                       c)}}));
    }
  }
  return sim::RunStreams(&sim, std::move(streams)).gbps;
}

double AllRemoteRing(int servers, trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  if (trace != nullptr) {
    trace->BeginProcess("all-remote-ring-" + std::to_string(servers));
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
  }
  auto topo = fabric::Topology::MakeLogical(&sim, servers,
                                            fabric::LinkProfile::Link1());
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int s = 0; s < servers; ++s) {
    for (int c = 0; c < 14; ++c) {
      streams.push_back(std::make_unique<sim::SpanStream>(
          &sim, std::vector<sim::Span>{sim::Span{
                    8e9 / 14,
                    topo.RemotePath(static_cast<fabric::ServerIndex>(s), c,
                                    static_cast<fabric::ServerIndex>(
                                        (s + 1) % servers))}}));
    }
  }
  return sim::RunStreams(&sim, std::move(streams)).gbps;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  std::printf(
      "== Scaling: aggregate bandwidth vs server count (Link1) ==\n");
  TablePrinter table({"Servers", "Pooled memory", "Shipped-local GB/s",
                      "All-remote ring GB/s"});
  for (const int servers : {2, 4, 8, 16}) {
    table.AddRow({std::to_string(servers),
                  std::to_string(servers * 24) + " GiB",
                  TablePrinter::Num(DistributedLocalSum(servers, sidecar.collector())),
                  TablePrinter::Num(AllRemoteRing(servers, sidecar.collector()))});
  }
  table.Print();
  std::printf(
      "\nBoth patterns scale linearly with servers — there is no central\n"
      "pool box to saturate.  A physical pool's aggregate is pinned at its\n"
      "port provisioning regardless of server count (cf. bench_incast).\n");
  sidecar.Flush();
  return 0;
}
