// GUPS (random dependent access) across deployments — the latency-bound
// complement to the paper's bandwidth figures (§4.3's "a similar analysis
// applies for latency").  One outstanding access per core; throughput is
// cores / average loaded latency, with locality mixes measured from the
// actual placements.
#include <cstdio>

#include "baselines/logical.h"
#include "common/table.h"
#include "workloads/gups.h"

#include "args.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  using namespace lmp;
  using workloads::GupsThroughputModel;

  std::printf(
      "== GUPS: dependent 64B random updates, 14 cores, loaded latencies "
      "==\n");
  TablePrinter table({"Table size", "Link", "Logical MUPS",
                      "Physical pool MUPS", "Software swap MUPS",
                      "Logical advantage"});
  for (const auto& link :
       {fabric::LinkProfile::Link0(), fabric::LinkProfile::Link1()}) {
    for (const Bytes gib : {8ull, 24ull, 64ull}) {
      // Locality mix from the actual local-first placement.
      baselines::LogicalDeployment logical(link);
      baselines::VectorSumParams params;
      params.vector_bytes = GiB(gib);
      params.repetitions = 1;
      auto r = logical.RunVectorSum(params);
      LMP_CHECK(r.ok());

      GupsThroughputModel lmp_model{
          .cores = 14, .local_fraction = r->local_fraction, .link = link};
      GupsThroughputModel pool_model{
          .cores = 14, .local_fraction = 0.0, .link = link};
      GupsThroughputModel swap_model{.cores = 14,
                                     .local_fraction = r->local_fraction,
                                     .link = link,
                                     .software_overhead_ns =
                                         Microseconds(4)};
      table.AddRow(
          {std::to_string(gib) + " GiB", link.name,
           TablePrinter::Num(lmp_model.Mups()),
           TablePrinter::Num(pool_model.Mups()),
           TablePrinter::Num(swap_model.Mups()),
           TablePrinter::Num(lmp_model.Mups() / pool_model.Mups(), 2) +
               "x"});
    }
  }
  table.Print();
  std::printf(
      "\nLatency-bound workloads amplify the locality advantage: at full\n"
      "locality the gap equals the loaded-latency ratio itself (2.8x /\n"
      "3.6x), and software paging is an order of magnitude behind both\n"
      "(Sections 2.1, 4.3).\n");
  sidecar.Flush();
  return 0;
}
