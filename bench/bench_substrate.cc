// Substrate microbenchmarks (google-benchmark): the per-operation CPU
// costs of the runtime's building blocks — the overheads a real LMP
// deployment would pay per allocation/lookup, independent of fabric
// timing.
#include <benchmark/benchmark.h>

#include "args.h"
#include "trace_sidecar.h"

#include "common/logging.h"
#include "common/rng.h"
#include "core/pool_manager.h"
#include "mem/frame_allocator.h"
#include "mem/lru_cache.h"

namespace {

using namespace lmp;

void BM_FrameAllocator_AllocFree(benchmark::State& state) {
  const auto frames_per_alloc = static_cast<std::uint64_t>(state.range(0));
  mem::FrameAllocator alloc(1 << 20, KiB(64));  // 64 GiB worth of frames
  for (auto _ : state) {
    auto runs = alloc.Allocate(mem::AllocRequest::Of(frames_per_alloc));
    benchmark::DoNotOptimize(runs);
    LMP_CHECK_OK(alloc.Free(runs.value()));
  }
  state.counters["frames"] = static_cast<double>(frames_per_alloc);
}
BENCHMARK(BM_FrameAllocator_AllocFree)->Arg(1)->Arg(64)->Arg(4096);

void BM_FrameAllocator_FragmentedAlloc(benchmark::State& state) {
  // Checkerboard the bitmap, then time scattered allocations.
  mem::FrameAllocator alloc(1 << 16, KiB(64));
  std::vector<std::vector<mem::FrameRun>> held;
  for (int i = 0; i < (1 << 15); ++i) {
    auto a = alloc.Allocate(mem::AllocRequest::Of(1));
    auto b = alloc.Allocate(mem::AllocRequest::Of(1));
    LMP_CHECK(a.ok() && b.ok());
    held.push_back(std::move(a).value());  // keep odd ones
    LMP_CHECK_OK(alloc.Free(b.value()));
  }
  for (auto _ : state) {
    auto runs = alloc.Allocate(mem::AllocRequest::Of(256));
    benchmark::DoNotOptimize(runs);
    LMP_CHECK_OK(alloc.Free(runs.value()));
  }
}
BENCHMARK(BM_FrameAllocator_FragmentedAlloc);

void BM_LruCache_HitPath(benchmark::State& state) {
  mem::LruCache cache(1 << 16);
  for (mem::PageId p = 0; p < (1 << 16); ++p) cache.Access(p);
  mem::PageId p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(p));
    p = (p + 1) & 0xFFFF;
  }
}
BENCHMARK(BM_LruCache_HitPath);

void BM_LruCache_MissEvict(benchmark::State& state) {
  mem::LruCache cache(1 << 10);
  mem::PageId p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(p++));  // always a miss
    benchmark::DoNotOptimize(cache.TakeEvicted());
  }
}
BENCHMARK(BM_LruCache_MissEvict);

void BM_PoolManager_AllocateFree(benchmark::State& state) {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = GiB(24);
  config.server_shared_memory = GiB(24);
  config.frame_size = KiB(64);
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  for (auto _ : state) {
    auto buf = manager.Allocate(MiB(64), 0);
    benchmark::DoNotOptimize(buf);
    LMP_CHECK_OK(manager.Free(buf.value()));
  }
}
BENCHMARK(BM_PoolManager_AllocateFree);

void BM_PoolManager_SpanResolution(benchmark::State& state) {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = GiB(24);
  config.server_shared_memory = GiB(24);
  config.frame_size = KiB(64);
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  auto buf = manager.Allocate(GiB(64), 0);  // spans several servers
  LMP_CHECK(buf.ok());
  Rng rng(5);
  for (auto _ : state) {
    const Bytes off = rng.NextBounded(GiB(63));
    benchmark::DoNotOptimize(manager.Spans(*buf, off, MiB(1)));
  }
}
BENCHMARK(BM_PoolManager_SpanResolution);

void BM_PoolManager_TouchHotness(benchmark::State& state) {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = GiB(24);
  config.server_shared_memory = GiB(24);
  config.frame_size = KiB(64);
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  auto buf = manager.Allocate(GiB(4), 0);
  LMP_CHECK(buf.ok());
  SimTime now = 0;
  for (auto _ : state) {
    LMP_CHECK_OK(manager.Touch(1, *buf, 0, MiB(1), now));
    now += 100.0;
  }
}
BENCHMARK(BM_PoolManager_TouchHotness);

}  // namespace

// Sidecar flags (--trace-out=/--metrics-out=) are stripped before
// google-benchmark sees argv, so its strict parser does not reject them.
int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  std::vector<char*> kept = lmp::bench::Args::Strip(argc, argv);
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sidecar.Flush();
  return 0;
}
