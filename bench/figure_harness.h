// Shared harness for the Figure 2–5 reproductions.
//
// Each figure is one vector size run across the three §4.1 deployments
// (Logical, Physical cache, Physical no-cache) and the two emulated links
// (Link0, Link1).  The harness prints the bandwidth series the paper plots
// plus the headline ratios quoted in §4.3/§4.5.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/deployment.h"
#include "baselines/logical.h"
#include "baselines/physical.h"
#include "common/table.h"
#include "common/trace.h"
#include "common/units.h"
#include "fabric/link.h"

namespace lmp::bench {

struct FigureRow {
  std::string deployment;
  std::string link;
  baselines::VectorSumResult result;
};

// With a collector, each deployment/link run becomes its own trace process
// (its simulator restarts at t=0) carrying flow spans and a harness marker.
inline std::vector<FigureRow> RunFigure(
    Bytes vector_bytes, int repetitions = 10,
    trace::TraceCollector* trace = nullptr) {
  std::vector<FigureRow> rows;
  for (const auto& link :
       {fabric::LinkProfile::Link0(), fabric::LinkProfile::Link1()}) {
    baselines::VectorSumParams params;
    params.vector_bytes = vector_bytes;
    params.repetitions = repetitions;

    const auto attach = [&](sim::FluidSimulator& sim, std::string name) {
      if (trace == nullptr) return;
      trace->BeginProcess(name + "/" + link.name);
      trace->set_clock([&sim] { return sim.now(); });
      sim.set_trace(trace);
      trace->Instant(trace::Category::kHarness, "run_start", sim.now(),
                     {trace::Arg("vector_bytes", vector_bytes),
                      trace::Arg("repetitions", repetitions)});
    };
    const auto detach = [&] {
      if (trace != nullptr) trace->set_clock({});
    };

    {
      baselines::LogicalDeployment logical(link);
      attach(logical.simulator(), "Logical");
      if (trace != nullptr) logical.manager().set_trace(trace);
      auto r = logical.RunVectorSum(params);
      detach();
      LMP_CHECK(r.ok()) << r.status();
      rows.push_back(FigureRow{"Logical", link.name, r.value()});
    }
    {
      baselines::PhysicalDeployment cache(link, /*use_cache=*/true);
      attach(cache.simulator(), "Physical cache");
      auto r = cache.RunVectorSum(params);
      detach();
      LMP_CHECK(r.ok()) << r.status();
      rows.push_back(FigureRow{"Physical cache", link.name, r.value()});
    }
    {
      baselines::PhysicalDeployment nocache(link, /*use_cache=*/false);
      attach(nocache.simulator(), "Physical no-cache");
      auto r = nocache.RunVectorSum(params);
      detach();
      LMP_CHECK(r.ok()) << r.status();
      rows.push_back(FigureRow{"Physical no-cache", link.name, r.value()});
    }
  }
  return rows;
}

inline void PrintFigure(const char* title, Bytes vector_bytes,
                        const std::vector<FigureRow>& rows) {
  std::printf("== %s: %llu GiB vector, 14 cores, 10 repetitions ==\n", title,
              static_cast<unsigned long long>(vector_bytes / kGiB));
  TablePrinter table({"Deployment", "Link", "Avg GB/s", "Rep1 GB/s",
                      "Steady GB/s", "Local frac", "Feasible"});
  for (const FigureRow& row : rows) {
    const auto& r = row.result;
    table.AddRow({row.deployment, row.link,
                  r.feasible ? TablePrinter::Num(r.avg_bandwidth_gbps) : "-",
                  r.feasible ? TablePrinter::Num(r.first_rep_gbps) : "-",
                  r.feasible ? TablePrinter::Num(r.steady_rep_gbps) : "-",
                  TablePrinter::Num(r.local_fraction, 3),
                  r.feasible ? "yes" : "NO"});
  }
  table.Print();

  // Headline ratios (per link): Logical vs each physical baseline.
  for (const char* link : {"Link0", "Link1"}) {
    double logical = 0, cache = 0, nocache = 0;
    bool logical_ok = false, cache_ok = false, nocache_ok = false;
    for (const FigureRow& row : rows) {
      if (row.link != link) continue;
      if (row.deployment == "Logical") {
        logical = row.result.avg_bandwidth_gbps;
        logical_ok = row.result.feasible;
      } else if (row.deployment == "Physical cache") {
        cache = row.result.avg_bandwidth_gbps;
        cache_ok = row.result.feasible;
      } else {
        nocache = row.result.avg_bandwidth_gbps;
        nocache_ok = row.result.feasible;
      }
    }
    if (logical_ok && nocache_ok && nocache > 0) {
      std::printf("%s: Logical vs Physical no-cache: %.2fx\n", link,
                  logical / nocache);
    }
    if (logical_ok && cache_ok && cache > 0) {
      std::printf("%s: Logical vs Physical cache:    %.2fx\n", link,
                  logical / cache);
    }
    if (logical_ok && (!cache_ok || !nocache_ok)) {
      std::printf("%s: physical pool INFEASIBLE; Logical runs at %.1f GB/s\n",
                  link, logical);
    }
  }
  std::printf("\n");
}

}  // namespace lmp::bench
