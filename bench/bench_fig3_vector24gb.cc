// Reproduces Figure 3 of the paper: 24 GiB vector-sum bandwidth on
// Logical vs Physical cache vs Physical no-cache, over Link0 and Link1.
#include "figure_harness.h"
#include "args.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  const lmp::Bytes size = lmp::GiB(24);
  auto rows = lmp::bench::RunFigure(size, 10, sidecar.collector());
  lmp::bench::PrintFigure("Figure 3", size, rows);
  sidecar.Flush();
  return 0;
}
