// Coherence microbenchmarks (§3.2 / §5 "Cache coherence"), google-benchmark.
//
// Measures the directory's cost per operation and, more importantly, the
// coherence-message counts under contention: the granularity sweep shows
// sub-line tracking eliminating false-sharing invalidations, which is the
// design §3.2 motivates ("tracking coherence at a granularity finer than a
// cache line to avoid false sharing").
#include <benchmark/benchmark.h>

#include "args.h"
#include "trace_sidecar.h"

#include "common/logging.h"
#include "core/coherence.h"
#include "core/coherent_region.h"

namespace {

using namespace lmp;
using core::CoherenceDirectory;
using core::CoherentBarrier;
using core::CoherentRegion;
using core::DistributedLock;

void BM_Directory_ReadHit(benchmark::State& state) {
  CoherenceDirectory dir(MiB(1), 64, 4);
  LMP_CHECK(dir.AcquireShared(0, 0, 8).ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.AcquireShared(0, 0, 8));
  }
  state.counters["MsgsPerOp"] = 0;
}
BENCHMARK(BM_Directory_ReadHit);

// Two hosts write ADJACENT 8-byte counters forever.  With 64-byte blocks
// they share a block and invalidate each other every time (false sharing);
// with 8-byte blocks they never interact.
void BM_Directory_FalseSharing(benchmark::State& state) {
  const Bytes granularity = static_cast<Bytes>(state.range(0));
  CoherenceDirectory dir(MiB(1), granularity, 4);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.AcquireExclusive(0, 0, 8));
    benchmark::DoNotOptimize(dir.AcquireExclusive(1, 8, 8));
    ops += 2;
  }
  state.counters["InvalidationsPerOp"] = benchmark::Counter(
      static_cast<double>(dir.stats().invalidation_msgs) /
      static_cast<double>(ops));
}
BENCHMARK(BM_Directory_FalseSharing)->Arg(64)->Arg(16)->Arg(8);

// True sharing for contrast: both hosts hammer the SAME word.  Finer
// granularity cannot help here — the ping-pong is inherent.
void BM_Directory_TrueSharing(benchmark::State& state) {
  const Bytes granularity = static_cast<Bytes>(state.range(0));
  CoherenceDirectory dir(MiB(1), granularity, 4);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dir.AcquireExclusive(0, 0, 8));
    benchmark::DoNotOptimize(dir.AcquireExclusive(1, 0, 8));
    ops += 2;
  }
  state.counters["InvalidationsPerOp"] = benchmark::Counter(
      static_cast<double>(dir.stats().invalidation_msgs) /
      static_cast<double>(ops));
}
BENCHMARK(BM_Directory_TrueSharing)->Arg(64)->Arg(8);

// Read-mostly sharing: N hosts read one block, one host occasionally
// writes.  Messages per op stay low — the coordination pattern the small
// coherent region is meant for.
void BM_Directory_ReadMostly(benchmark::State& state) {
  CoherenceDirectory dir(MiB(1), 64, 8);
  std::uint64_t ops = 0;
  int i = 0;
  for (auto _ : state) {
    if ((i++ & 63) == 0) {
      benchmark::DoNotOptimize(dir.AcquireExclusive(0, 0, 8));
    } else {
      benchmark::DoNotOptimize(dir.AcquireShared(i & 7, 0, 8));
    }
    ++ops;
  }
  state.counters["MsgsPerOp"] = benchmark::Counter(
      static_cast<double>(dir.stats().TotalMessages()) /
      static_cast<double>(ops));
}
BENCHMARK(BM_Directory_ReadMostly);

void BM_Lock_UncontendedAcquireRelease(benchmark::State& state) {
  CoherentRegion region(KiB(4), 16, 4);
  DistributedLock lock(&region, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.TryLock(0));
    benchmark::DoNotOptimize(lock.Unlock(0));
  }
}
BENCHMARK(BM_Lock_UncontendedAcquireRelease);

void BM_Lock_ContendedHandoff(benchmark::State& state) {
  CoherentRegion region(KiB(4), 16, 4);
  DistributedLock lock(&region, 0);
  int host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.TryLock(host));
    benchmark::DoNotOptimize(lock.Unlock(host));
    host = (host + 1) & 3;  // ownership migrates every acquisition
  }
  state.counters["MsgsTotal"] = benchmark::Counter(
      static_cast<double>(region.directory().stats().TotalMessages()));
}
BENCHMARK(BM_Lock_ContendedHandoff);

void BM_Barrier_FullRound(benchmark::State& state) {
  CoherentRegion region(KiB(4), 16, 4);
  CoherentBarrier barrier(&region, 0, 4);
  for (auto _ : state) {
    for (int host = 0; host < 4; ++host) {
      benchmark::DoNotOptimize(barrier.Arrive(host));
    }
  }
}
BENCHMARK(BM_Barrier_FullRound);

}  // namespace

// Sidecar flags (--trace-out=/--metrics-out=) are stripped before
// google-benchmark sees argv, so its strict parser does not reject them.
int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  std::vector<char*> kept = lmp::bench::Args::Strip(argc, argv);
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sidecar.Flush();
  return 0;
}
