// Colocation capstone: the full runtime loop under a multi-tenant,
// phase-shifting workload — sizing (§5), migration (§5), and priority
// weights (§5's "high-value applications") acting together.
//
// Phases (each with its own demand declarations and traffic):
//   1. day    — interactive service on every server (private-heavy),
//               small shared pool;
//   2. night  — a batch analytics job on server 0 wants a pool bigger
//               than any single server; the sizer flexes everyone's
//               shared region and placement spills across peers;
//   3. shift  — the analytics consumer moves to server 2; the migrator
//               chases the data.
// After each phase we report the private/shared split, the analytics
// job's locality, and its effective bandwidth on Link1.
#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "core/runtime.h"
#include "fabric/topology.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

double EffectiveGbps(double local_fraction,
                     const fabric::LinkProfile& link) {
  const double local = 97.0;
  const double remote = link.bandwidth / 1e9;
  if (local_fraction >= 1.0) return local;
  // Harmonic mix: time-weighted over local and remote portions.
  return 1.0 /
         (local_fraction / local + (1.0 - local_fraction) / remote);
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.cores_per_server = 14;
  config.server_total_memory = GiB(24);
  config.server_shared_memory = 0;  // the sizer decides
  config.frame_size = MiB(64);
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  manager.access_tracker().set_half_life(Seconds(50));
  core::RuntimeConfig rt;
  rt.migration.max_migrations_per_round = 16;
  core::LmpRuntime runtime(&manager, rt);
  const auto link = fabric::LinkProfile::Link1();

  TablePrinter table({"Phase", "Server0 priv/shared (GiB)",
                      "Analytics local%", "Analytics GB/s"});
  auto report = [&](const char* phase, double local_fraction) {
    const auto& s0 = cluster.server(0);
    table.AddRow(
        {phase,
         std::to_string(s0.private_bytes() / kGiB) + " / " +
             std::to_string(s0.shared_bytes() / kGiB),
         local_fraction < 0
             ? "-"
             : TablePrinter::Num(100 * local_fraction, 0) + "%",
         local_fraction < 0
             ? "-"
             : TablePrinter::Num(EffectiveGbps(local_fraction, link))});
  };

  // --- Phase 1: daytime ----------------------------------------------------
  for (int s = 0; s < 4; ++s) {
    runtime.SetDemand(core::ServerDemand{
        static_cast<cluster::ServerId>(s), GiB(20), GiB(2), 1.0});
  }
  runtime.RunAllNow(Seconds(1));
  report("day (interactive)", -1);

  // --- Phase 2: night analytics on server 0 -------------------------------
  runtime.SetDemand(core::ServerDemand{0, GiB(2), GiB(40), 2.0});
  for (int s = 1; s < 4; ++s) {
    runtime.SetDemand(core::ServerDemand{
        static_cast<cluster::ServerId>(s), GiB(2), 0, 1.0});
  }
  runtime.RunAllNow(Seconds(2));
  auto dataset = manager.Allocate(GiB(40), 0);
  LMP_CHECK(dataset.ok());
  // Split into 4 GiB migration units: without this, the 22 GiB placement
  // chunks are bigger than any peer's headroom and the balancer is stuck
  // (the reason PoolManager::SplitSegmentAt exists).
  for (Bytes off = GiB(4); off < GiB(40); off += GiB(4)) {
    LMP_CHECK_OK(manager.SplitSegmentAt(*dataset, off));
  }
  double local = manager.LocalFraction(*dataset, 0).value_or(0);
  report("night (analytics @0)", local);

  // --- Phase 3: consumer shifts to server 2 -------------------------------
  // The demand declaration follows the consumer (otherwise the sizer
  // reclaims server 2's shared region and the balancer has nowhere to
  // put the data); server 2's traffic then dominates and balancing
  // rounds chase it.
  runtime.SetDemand(core::ServerDemand{0, GiB(2), 0, 1.0});
  runtime.SetDemand(core::ServerDemand{2, GiB(2), GiB(40), 2.0});
  for (int round = 0; round < 12; ++round) {
    LMP_CHECK_OK(manager.Touch(2, *dataset, 0, GiB(40),
                               Seconds(3) + round * Milliseconds(100)));
    runtime.RunAllNow(Seconds(3) + round * Milliseconds(100) + 1);
  }
  local = manager.LocalFraction(*dataset, 2).value_or(0);
  report("shift (analytics @2)", local);

  table.Print();
  std::printf("\nRuntime totals:\n%s",
              manager.metrics().Report().c_str());
  std::printf(
      "\nOne deployment, three regimes: the private/shared knob and the\n"
      "balancer absorb workload shifts that would each require re-racking\n"
      "DIMMs in a physical-pool design (Sections 4.5, 5).\n");
  sidecar.Flush();
  return 0;
}
