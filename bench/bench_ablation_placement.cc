// Placement ablation: how the allocation policy affects single-server
// vector-sum bandwidth.  Local-first (the paper's implicit choice) keeps
// the runner's share maximal; round-robin and capacity-weighted trade the
// runner's locality for balance.
#include <cstdio>

#include "baselines/logical.h"
#include "common/table.h"

#include "args.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  using namespace lmp;
  std::printf(
      "== Placement policy ablation: 24 and 64 GiB vector sums, Link1 ==\n");
  TablePrinter table(
      {"Policy", "Vector", "Local fraction", "Avg GB/s"});
  for (const char* policy :
       {"local-first", "round-robin", "capacity-weighted"}) {
    for (const Bytes gib : {24ull, 64ull}) {
      baselines::LogicalDeployment deployment(
          fabric::LinkProfile::Link1(),
          cluster::ClusterConfig::PaperLogical(),
          core::MakePlacementPolicy(policy));
      baselines::VectorSumParams params;
      params.vector_bytes = GiB(gib);
      params.repetitions = 5;
      auto r = deployment.RunVectorSum(params);
      LMP_CHECK(r.ok());
      table.AddRow({policy, std::to_string(gib) + " GiB",
                    TablePrinter::Num(r->local_fraction, 3),
                    TablePrinter::Num(r->avg_bandwidth_gbps)});
    }
  }
  table.Print();
  std::printf(
      "\nLocal-first wins for a single consumer because locality is the\n"
      "whole advantage (Section 4.3); spreading policies only pay off when\n"
      "many servers consume the data (see bench_nearmem_shipping).\n");
  sidecar.Flush();
  return 0;
}
