// §4.4 "Near-memory Computing": the distributed (shipped) sum vs the
// single-server pull, across vector sizes and links.  The paper states the
// shipped result is "an even larger performance improvement than reported
// above (not shown)" — this bench shows it.
#include <cstdio>

#include "baselines/logical.h"
#include "common/table.h"

#include "args.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  using namespace lmp;
  std::printf(
      "== Section 4.4: computation shipping on the logical pool ==\n");
  TablePrinter table({"Vector", "Link", "Pull GB/s", "Shipped GB/s",
                      "Speedup"});
  for (const auto& link :
       {fabric::LinkProfile::Link0(), fabric::LinkProfile::Link1()}) {
    for (const Bytes gib : {24ull, 64ull, 96ull}) {
      baselines::VectorSumParams params;
      params.vector_bytes = GiB(gib);
      params.repetitions = 5;

      baselines::LogicalDeployment pull(link);
      baselines::LogicalDeployment ship(link);
      auto pulled = pull.RunVectorSum(params);
      auto shipped = ship.RunDistributedSum(params);
      LMP_CHECK(pulled.ok() && shipped.ok());
      table.AddRow({std::to_string(gib) + " GiB", link.name,
                    TablePrinter::Num(pulled->avg_bandwidth_gbps),
                    TablePrinter::Num(shipped->avg_bandwidth_gbps),
                    TablePrinter::Num(shipped->avg_bandwidth_gbps /
                                          pulled->avg_bandwidth_gbps,
                                      2) +
                        "x"});
    }
  }
  table.Print();
  std::printf(
      "\nShipping turns every access local: the aggregate approaches\n"
      "num_servers x 97 GB/s regardless of link speed, while the pull is\n"
      "bottlenecked by the runner's fabric port. Physical pools cannot do\n"
      "this without adding compute hardware to the pool box (Section 4.4).\n");
  sidecar.Flush();
  return 0;
}
