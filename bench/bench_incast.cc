// Incast ablation (§4.2 / Figure 1a): all four servers stream pool data
// concurrently.  In a physical pool every stream funnels through the pool
// box's link(s); in a logical pool each server pulls from a different peer,
// so the fabric load spreads across ports.  Sweeps the number of pool
// links to show what it takes for the physical pool to catch up.
#include <cstdio>
#include <string>

#include "common/table.h"
#include "fabric/topology.h"
#include "sim/fluid.h"
#include "sim/stream.h"

#include "common/trace.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

// Every server streams `bytes` with all cores via `path_of(server, core)`.
template <typename PathFn>
double AggregateBandwidth(sim::FluidSimulator* sim, int servers, int cores,
                          double bytes, PathFn path_of) {
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int s = 0; s < servers; ++s) {
    for (int c = 0; c < cores; ++c) {
      streams.push_back(std::make_unique<sim::SpanStream>(
          sim, std::vector<sim::Span>{
                   sim::Span{bytes / cores, path_of(s, c)}}));
    }
  }
  return sim::RunStreams(sim, std::move(streams)).gbps;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  const auto link = lmp::fabric::LinkProfile::Link0();
  std::printf(
      "== Incast: 4 servers x 14 cores concurrently reading 8 GiB of pool "
      "data each (Link0) ==\n");
  lmp::TablePrinter table({"Deployment", "Aggregate GB/s", "Per-server GB/s"});

  // Logical: server s reads from peer (s+1) % 4 — worst case, all remote.
  {
    lmp::sim::FluidSimulator sim;
    if (auto* tc = sidecar.collector()) {
      tc->BeginProcess("logical");
      tc->set_clock([&sim] { return sim.now(); });
      sim.set_trace(tc);
    }
    auto topo = lmp::fabric::Topology::MakeLogical(&sim, 4, link);
    const double gbps = AggregateBandwidth(
        &sim, 4, 14, 8e9, [&](int s, int c) {
          return topo.RemotePath(s, c, (s + 1) % 4);
        });
    table.AddRow({"Logical (all-remote worst case)",
                  lmp::TablePrinter::Num(gbps),
                  lmp::TablePrinter::Num(gbps / 4)});
  }

  // Physical with 1, 2, 4 pool links.
  for (int links = 1; links <= 4; links *= 2) {
    lmp::sim::FluidSimulator sim;
    if (auto* tc = sidecar.collector()) {
      tc->BeginProcess("physical-" + std::to_string(links) + "-links");
      tc->set_clock([&sim] { return sim.now(); });
      sim.set_trace(tc);
    }
    auto topo =
        lmp::fabric::Topology::MakePhysical(&sim, 4, link, {}, links);
    const double gbps = AggregateBandwidth(
        &sim, 4, 14, 8e9,
        [&](int s, int c) { return topo.PoolPath(s, c); });
    table.AddRow({"Physical, " + std::to_string(links) + " pool link(s)",
                  lmp::TablePrinter::Num(gbps),
                  lmp::TablePrinter::Num(gbps / 4)});
  }
  table.Print();
  std::printf(
      "\nA single-link physical pool serializes every server behind "
      "%.1f GB/s\n(the thick orange line in Figure 1a); the logical pool "
      "spreads the same\ntraffic across per-server ports, and placement / "
      "migration / shipping can\nremove the remote hop entirely.\n",
      link.bandwidth / 1e9);
  sidecar.Flush();
  return 0;
}
