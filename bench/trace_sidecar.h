// Command-line plumbing for the tracing/metrics layer, shared by the bench
// binaries:
//
//   --trace-out=PATH    write a Chrome trace_event JSON (chrome://tracing,
//                       https://ui.perfetto.dev) of the run
//   --metrics-out=PATH  write a JSON dump of every MetricsRegistry counter
//
// Without either flag the sidecar hands out a null collector and the
// binaries' stdout is byte-identical to a build without tracing at all.
// Status notes about written files go to stderr so stdout stays clean for
// diffing.
#pragma once

#include <cstdio>
#include <string>

#include "args.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace lmp::bench {

class TraceSidecar {
 public:
  explicit TraceSidecar(const Args& args)
      : trace_path_(args.trace_out), metrics_path_(args.metrics_out) {}

  // Legacy form; new benches parse Args once and share it.
  TraceSidecar(int argc, char** argv)
      : TraceSidecar(Args::Parse(argc, argv)) {}

  // Null when --trace-out was not given: emitters skip all work.
  trace::TraceCollector* collector() {
    return trace_path_.empty() ? nullptr : &collector_;
  }

  // Writes the requested files (call once, after the run).
  void Flush() {
    if (!trace_path_.empty()) {
      const Status st = collector_.WriteChromeJson(trace_path_);
      if (st.ok()) {
        std::fprintf(stderr, "trace: %zu events -> %s\n",
                     collector_.event_count(), trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: write failed: %s\n",
                     st.ToString().c_str());
      }
    }
    if (!metrics_path_.empty()) {
      const Status st =
          trace::WriteMetricsJson(MetricsRegistry::Global(), metrics_path_);
      if (st.ok()) {
        std::fprintf(stderr, "metrics -> %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "metrics: write failed: %s\n",
                     st.ToString().c_str());
      }
    }
  }

 private:
  trace::TraceCollector collector_;
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace lmp::bench
