// Command-line plumbing for the tracing/metrics layer, shared by the bench
// binaries:
//
//   --trace-out=PATH       write a Chrome trace_event JSON (chrome://tracing,
//                          https://ui.perfetto.dev) of the run
//   --metrics-out=PATH     write a JSON dump of every MetricsRegistry counter
//   --series-out=PATH      write the lmp::obs time-series sampled during the
//                          run (benches wire the recorders)
//   --slo-out=PATH         write the per-tenant SLO ledger, and print its
//                          attainment table on stdout
//   --postmortem-out=PATH  write the chaos flight recorder's postmortems
//
// Without any flag the sidecar hands out a null collector and the
// binaries' stdout is byte-identical to a build without tracing at all.
// Status notes about written files go to stderr so stdout stays clean for
// diffing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "args.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "ctrl/slo_ledger.h"
#include "obs/flight_recorder.h"
#include "obs/time_series.h"

namespace lmp::bench {

class TraceSidecar {
 public:
  explicit TraceSidecar(const Args& args)
      : trace_path_(args.trace_out),
        metrics_path_(args.metrics_out),
        series_path_(args.series_out),
        slo_path_(args.slo_out),
        postmortem_path_(args.postmortem_out) {}

  // Legacy form; new benches parse Args once and share it.
  TraceSidecar(int argc, char** argv)
      : TraceSidecar(Args::Parse(argc, argv)) {}

  // Null when --trace-out was not given: emitters skip all work.
  trace::TraceCollector* collector() {
    return trace_path_.empty() ? nullptr : &collector_;
  }

  bool wants_series() const { return !series_path_.empty(); }

  // Null when --slo-out was not given, so benches wire SLO accounting
  // only when asked (stdout stays byte-identical otherwise).
  ctrl::SloLedger* slo_ledger() {
    return slo_path_.empty() ? nullptr : &slo_ledger_;
  }

  // Null when --postmortem-out was not given.
  obs::FlightRecorder* flight_recorder() {
    return postmortem_path_.empty() ? nullptr : &flight_;
  }

  // Registers a recorder for the --series-out export.  The recorder must
  // stay alive until Flush (its backing simulator need not).
  void AddSeriesRecorder(const obs::TimeSeriesRecorder* recorder) {
    series_.push_back(recorder);
  }

  // Writes the requested files (call once, after the run).  With --slo-out
  // the attainment table also prints on stdout — an opted-in addition, so
  // flag-off stdout is unchanged.
  void Flush() {
    if (!trace_path_.empty()) {
      const Status st = collector_.WriteChromeJson(trace_path_);
      if (st.ok()) {
        std::fprintf(stderr, "trace: %zu events -> %s\n",
                     collector_.event_count(), trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: write failed: %s\n",
                     st.ToString().c_str());
      }
    }
    if (!metrics_path_.empty()) {
      const Status st =
          trace::WriteMetricsJson(MetricsRegistry::Global(), metrics_path_);
      if (st.ok()) {
        std::fprintf(stderr, "metrics -> %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "metrics: write failed: %s\n",
                     st.ToString().c_str());
      }
    }
    if (!series_path_.empty()) {
      const Status st = obs::WriteSeriesJson(series_, series_path_);
      if (st.ok()) {
        std::fprintf(stderr, "series: %zu recorders -> %s\n",
                     series_.size(), series_path_.c_str());
      } else {
        std::fprintf(stderr, "series: write failed: %s\n",
                     st.ToString().c_str());
      }
    }
    if (!slo_path_.empty()) {
      std::printf("\n== SLO attainment (%zu tenants) ==\n%s",
                  slo_ledger_.tenant_count(),
                  slo_ledger_.ReportTable().c_str());
      const Status st = slo_ledger_.WriteJson(slo_path_);
      if (st.ok()) {
        std::fprintf(stderr, "slo -> %s\n", slo_path_.c_str());
      } else {
        std::fprintf(stderr, "slo: write failed: %s\n",
                     st.ToString().c_str());
      }
    }
    if (!postmortem_path_.empty()) {
      const Status st = flight_.WritePostmortem(postmortem_path_);
      if (st.ok()) {
        std::fprintf(stderr, "postmortem: %zu snapshots -> %s\n",
                     flight_.postmortem_count(), postmortem_path_.c_str());
      } else {
        std::fprintf(stderr, "postmortem: write failed: %s\n",
                     st.ToString().c_str());
      }
    }
  }

 private:
  trace::TraceCollector collector_;
  ctrl::SloLedger slo_ledger_;
  obs::FlightRecorder flight_;
  std::vector<const obs::TimeSeriesRecorder*> series_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string series_path_;
  std::string slo_path_;
  std::string postmortem_path_;
};

}  // namespace lmp::bench
