// Compute-intensity sweep for shipped execution (§4.4).  A 96 GiB
// reduction is shipped across 4 servers and executed by the TaskScheduler
// (14 slots/server, input streamed from local DRAM, then CPU time).  As
// per-byte compute cost rises, the makespan shifts from memory-bound
// (DRAM-limited, where shipping's 4x aggregate bandwidth shines) to
// compute-bound (where only the extra CPUs matter — which physical pools
// do not have at all).
#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "common/trace.h"
#include "core/task_scheduler.h"
#include "fabric/topology.h"

#include "args.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  using namespace lmp;
  std::printf(
      "== Shipped execution: 96 GiB reduction, 4 servers x 14 slots ==\n");
  TablePrinter table({"Compute ns/byte", "Makespan (ms)",
                      "Effective GB/s", "Regime"});

  for (const double ns_per_byte : {0.0, 0.005, 0.02, 0.1, 0.5}) {
    sim::FluidSimulator sim;
    if (auto* tc = sidecar.collector()) {
      tc->BeginProcess("ns-per-byte-" + std::to_string(ns_per_byte));
      tc->set_clock([&sim] { return sim.now(); });
      sim.set_trace(tc);
    }
    auto topo = fabric::Topology::MakeLogical(
        &sim, 4, fabric::LinkProfile::Link1());
    core::TaskScheduler scheduler(&sim, &topo);

    // One sub-task per (server, slot): 96 GiB split 4 ways, then 14 ways.
    const double bytes_per_task =
        static_cast<double>(GiB(96)) / (4.0 * 14.0);
    for (int s = 0; s < 4; ++s) {
      for (int c = 0; c < 14; ++c) {
        LMP_CHECK_OK(scheduler.Submit(core::ComputeTask{
            static_cast<cluster::ServerId>(s), bytes_per_task,
            ns_per_byte * bytes_per_task}));
      }
    }
    scheduler.Drain();
    const double makespan = scheduler.stats().makespan;
    const double gbps = ToGBps(static_cast<double>(GiB(96)), makespan);
    // Memory-bound when DRAM (97 GB/s x 4) is the limit; compute-bound
    // when per-core CPU time dominates.
    const char* regime = gbps > 300 ? "memory-bound"
                        : gbps > 100 ? "mixed"
                                     : "compute-bound";
    table.AddRow({TablePrinter::Num(ns_per_byte, 3),
                  TablePrinter::Num(makespan / kNsPerMs, 0),
                  TablePrinter::Num(gbps), regime});
  }
  table.Print();
  std::printf(
      "\nAt low compute intensity, shipping delivers the full aggregate\n"
      "DRAM bandwidth (the §4.4 result); at high intensity the win is the\n"
      "56 CPUs themselves — hardware a physical pool box would have to\n"
      "add, 'exacerbating its cost' (Section 4.4).\n");
  sidecar.Flush();
  return 0;
}
