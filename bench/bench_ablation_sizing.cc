// Sizing ablation (§5 "Sizing the shared regions"): a static private/shared
// split vs the periodic optimizer, over a set of demand scenarios.  The
// static split either strands capacity (oversized shared) or rejects
// workloads (undersized); the optimizer adapts per scenario.
#include <cstdio>

#include "cluster/cluster.h"
#include "common/table.h"
#include "core/sizing.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;
using core::ServerDemand;
using core::SizingOptimizer;
using core::SizingPlan;

struct Scenario {
  const char* name;
  std::vector<ServerDemand> demands;
};

struct Outcome {
  bool feasible;
  double local_fraction;
  Bytes unmet;
};

// Evaluates a FIXED shared size per server against the demands.
Outcome EvaluateStatic(const cluster::Cluster& cluster, Bytes shared_each,
                       const std::vector<ServerDemand>& demands) {
  Outcome out{true, 0, 0};
  const Bytes total = cluster.server(0).total_memory();
  // Private feasibility: demand must fit in what's left.
  Bytes pool_capacity = 0;
  for (const auto& d : demands) {
    if (d.private_demand > total - shared_each) out.feasible = false;
    pool_capacity += shared_each;
  }
  // Pool demand served FIFO out of the static pool; self-share is the
  // fraction that happens to land on the demander's own region (1/N of a
  // striped static pool).
  Bytes pool_demand = 0;
  for (const auto& d : demands) pool_demand += d.pool_demand;
  if (pool_demand > pool_capacity) {
    out.unmet = pool_demand - pool_capacity;
  }
  double local = 0, served = 0;
  for (const auto& d : demands) {
    const double share =
        pool_demand == 0 ? 0
                         : static_cast<double>(d.pool_demand) *
                               static_cast<double>(pool_capacity) /
                               static_cast<double>(
                                   std::max(pool_demand, pool_capacity));
    // Striped static pool: 1/N of served bytes are self-local.
    local += share / cluster.num_servers();
    served += share;
  }
  out.local_fraction = served == 0 ? 1.0 : local / served;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  cluster::ClusterConfig config = cluster::ClusterConfig::PaperLogical();
  config.server_shared_memory = 0;
  cluster::Cluster cluster(config);

  const std::vector<Scenario> scenarios{
      {"balanced (each wants 10 GiB pool)",
       {{0, GiB(8), GiB(10), 1}, {1, GiB(8), GiB(10), 1},
        {2, GiB(8), GiB(10), 1}, {3, GiB(8), GiB(10), 1}}},
      {"one big analytics job (60 GiB)",
       {{0, GiB(4), GiB(60), 2}, {1, GiB(4), 0, 1},
        {2, GiB(4), 0, 1}, {3, GiB(4), 0, 1}}},
      {"private-heavy day (20 GiB private each)",
       {{0, GiB(20), GiB(4), 1}, {1, GiB(20), GiB(4), 1},
        {2, GiB(20), 0, 1}, {3, GiB(20), 0, 1}}},
      {"mixed priorities under pressure",
       {{0, GiB(12), GiB(30), 2}, {1, GiB(12), GiB(30), 1},
        {2, GiB(12), GiB(10), 1}, {3, GiB(12), 0, 1}}},
  };

  std::printf(
      "== Sizing ablation: static 12 GiB shared split vs optimizer ==\n");
  TablePrinter table({"Scenario", "Static feasible", "Static local%",
                      "Optimizer local%", "Optimizer unmet"});
  for (const Scenario& s : scenarios) {
    const Outcome fixed = EvaluateStatic(cluster, GiB(12), s.demands);
    const SizingPlan plan = SizingOptimizer::Solve(cluster, s.demands);
    table.AddRow({s.name, fixed.feasible ? "yes" : "NO",
                  TablePrinter::Num(100 * fixed.local_fraction, 0) + "%",
                  TablePrinter::Num(100 * plan.LocalFraction(), 0) + "%",
                  std::to_string(plan.unmet_demand / kGiB) + " GiB"});
  }
  table.Print();
  std::printf(
      "\nThe optimizer self-serves each server's pool demand first, so its\n"
      "local-access fraction dominates a striped static split, and it only\n"
      "sheds demand when the deployment is physically too small.\n");
  sidecar.Flush();
  return 0;
}
