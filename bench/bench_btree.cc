// B+tree tenant on the request/op engine: per-op latency distributions
// under a local-fraction x churn sweep.
//
// A PoolBtree arena (nodes in pool buffers) is preloaded with a keyspace,
// then closed-loop clients on server 0 drive Zipf-distributed get/put/scan
// ops through ops::BtreeOpDriver.  Every pointer chase is a priced pool
// access: root-to-leaf descents, record reads, lock acquisitions, and the
// chained node writes of a put all ride the fluid simulator, so the
// latency histograms move when placement does.
//
//   * local fraction: before the run, a fraction of the arena's segments
//     is migrated away from the client server — the p99 gap between rows
//     is the remote-hop cost the paper's sizing lever controls (§4.5).
//   * churn: a background migrator re-homes one arena segment every
//     200us while ops are in flight, exercising span re-resolution and
//     generation-based retranslation under load.
//
// Deterministic: all randomness flows from --seed through lmp::Rng /
// ZipfGenerator on the sim clock; stdout, --metrics-out and --series-out
// are byte-identical across runs and --threads values.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/logical.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/pool_manager.h"
#include "obs/time_series.h"
#include "ops/btree_ops.h"
#include "ops/op_engine.h"
#include "workloads/pool_btree.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

constexpr int kServers = 4;
constexpr Bytes kServerMem = MiB(64);
// Sized so the preload fills ~80% of the arena: empty slices would make
// the local-fraction lever a no-op (migrating unused nodes moves nothing
// the ops touch).
constexpr std::uint32_t kArenaNodes = 1024;  // 512 KiB of 512-byte nodes
constexpr std::uint64_t kKeys = 12000;
constexpr std::uint64_t kKeyStride = 7;
constexpr int kOpsPerScenario = 2000;
constexpr int kWindow = 64;           // closed-loop outstanding ops
constexpr SimTime kChurnPeriod = Microseconds(10);
constexpr int kChurnEvents = 64;

struct Scenario {
  std::string label;     // also the metrics prefix for this run's ops
  double local_fraction; // target fraction of arena segments on server 0
  bool churn;
};

struct Outcome {
  double observed_local = 0;  // arena segments homed on server 0 at the end
};

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config;
  config.num_servers = kServers;
  config.cores_per_server = 4;
  config.server_total_memory = kServerMem;
  config.server_shared_memory = kServerMem;
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

double ArenaLocalFraction(core::PoolManager& manager, core::BufferId buffer) {
  auto info = manager.Describe(buffer);
  if (!info.ok() || info->segments.empty()) return 0;
  std::size_t local = 0;
  for (const core::SegmentId seg : info->segments) {
    const core::SegmentInfo* si = manager.segment_map().Find(seg);
    if (si != nullptr && !si->home.is_pool() && si->home.server == 0) ++local;
  }
  return static_cast<double>(local) / static_cast<double>(info->segments.size());
}

Outcome Run(const Scenario& scenario, const lmp::bench::Args& args,
            bool want_series,
            std::vector<std::unique_ptr<obs::TimeSeriesRecorder>>* keep) {
  baselines::LogicalDeployment deploy(fabric::LinkProfile::Link0(), Config());
  deploy.simulator().set_threads(args.threads);
  core::PoolManager& manager = deploy.manager();

  ops::OpEngine::Options opts;
  opts.metrics = &MetricsRegistry::Global();
  opts.metrics_prefix = scenario.label;
  ops::OpEngine engine(&deploy.simulator(), &deploy.topology(), &manager,
                       opts);
  auto tree_or = workloads::PoolBtree::Create(&manager, kArenaNodes, 0);
  LMP_CHECK(tree_or.ok());
  workloads::PoolBtree& tree = *tree_or;
  ops::BtreeOpDriver driver(&engine, &tree, kServers);

  for (std::uint64_t k = 0; k < kKeys; ++k) {
    LMP_CHECK(tree.Insert(0, k * kKeyStride, k).ok());
  }

  // Slice the arena so the placement lever has granularity: a 4 MiB
  // allocation lands as one segment, and a one-segment arena can only be
  // all-local or all-remote.
  const Bytes arena_bytes = static_cast<Bytes>(kArenaNodes) *
                            workloads::PoolBtree::kNodeBytes;
  constexpr int kArenaSlices = 16;
  for (int i = 1; i < kArenaSlices; ++i) {
    LMP_CHECK_OK(manager.SplitSegmentAt(
        tree.buffer(), arena_bytes / kArenaSlices * static_cast<Bytes>(i)));
  }

  // Establish the target local fraction: the arena starts fully homed on
  // the client server; migrate the tail of its segment list away,
  // round-robin over the peers.
  auto arena = manager.Describe(tree.buffer());
  LMP_CHECK(arena.ok());
  const std::size_t total_segs = arena->segments.size();
  const std::size_t keep_local = static_cast<std::size_t>(
      scenario.local_fraction * static_cast<double>(total_segs) + 0.5);
  for (std::size_t i = keep_local; i < total_segs; ++i) {
    const auto dst = static_cast<cluster::ServerId>(1 + (i % (kServers - 1)));
    LMP_CHECK(manager.MigrateSegment(arena->segments[i], dst).ok());
  }

  // Background migrator: every period, re-home one arena segment.  The
  // schedule is fixed up front (a self-rearming timer would never let the
  // wheel drain); ops that outlive the last event just stop seeing churn.
  auto churn_rng = std::make_shared<Rng>(args.seed ^ 0xc0ffee);
  if (scenario.churn) {
    for (int i = 1; i <= kChurnEvents; ++i) {
      deploy.simulator().ScheduleAt(
          static_cast<SimTime>(i) * kChurnPeriod, [&, churn_rng](SimTime) {
            auto info = manager.Describe(tree.buffer());
            if (!info.ok() || info->segments.empty()) return;
            const auto seg =
                info->segments[churn_rng->NextBounded(info->segments.size())];
            const auto dst = static_cast<cluster::ServerId>(
                churn_rng->NextBounded(kServers));
            (void)manager.MigrateSegment(seg, dst);  // may legally fail
          });
    }
  }

  std::unique_ptr<obs::TimeSeriesRecorder> recorder;
  if (want_series) {
    obs::TimeSeriesRecorder::Config rc;
    rc.interval = Microseconds(100);
    rc.horizon = Milliseconds(60);
    rc.prefix = scenario.label + "/";
    recorder = std::make_unique<obs::TimeSeriesRecorder>(&deploy.simulator(),
                                                         rc);
    recorder->AddCounter("completed", [&engine] { return engine.completed(); });
    recorder->AddGauge("in_flight", [&engine] {
      return static_cast<double>(engine.in_flight());
    });
    recorder->Start();
  }

  // Closed-loop clients: a fixed window of outstanding ops, each
  // completion submitting the next, keys Zipf-skewed over the preload.
  ZipfGenerator zipf(kKeys, 0.99, args.seed);
  Rng mix_rng(args.seed + 1);
  int submitted = 0;
  std::function<void()> submit_one = [&] {
    const std::uint64_t key = zipf.Next() * kKeyStride;
    const int mix = static_cast<int>(mix_rng.NextBounded(100));
    ++submitted;
    if (mix < 50) {
      driver.SubmitGet(0, 0, key);
    } else if (mix < 85) {
      driver.SubmitPut(0, 0, key, mix_rng.NextBounded(1u << 30));
    } else {
      driver.SubmitScan(0, 0, key, 16);
    }
  };
  engine.set_on_complete([&](const ops::OpResult&) {
    if (submitted < kOpsPerScenario) submit_one();
  });
  for (int i = 0; i < kWindow && submitted < kOpsPerScenario; ++i) {
    submit_one();
  }
  LMP_CHECK_OK(engine.Drain());
  LMP_CHECK(engine.completed() ==
            static_cast<std::uint64_t>(kOpsPerScenario));

  if (recorder != nullptr) keep->push_back(std::move(recorder));
  Outcome out;
  out.observed_local = ArenaLocalFraction(manager, tree.buffer());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  std::vector<std::unique_ptr<obs::TimeSeriesRecorder>> recorders;

  std::printf(
      "== B+tree on the op engine: %d closed-loop ops per cell "
      "(window %d, Zipf 0.99, %llu keys) ==\n",
      kOpsPerScenario, kWindow,
      static_cast<unsigned long long>(kKeys));
  lmp::TablePrinter table({"Cell", "Local frac", "Op", "Count", "p50 ns",
                           "p99 ns", "p999 ns"});
  const std::vector<Scenario> scenarios = {
      {"ops.l100.c0", 1.0, false}, {"ops.l100.c1", 1.0, true},
      {"ops.l050.c0", 0.5, false}, {"ops.l050.c1", 0.5, true},
      {"ops.l000.c0", 0.0, false}, {"ops.l000.c1", 0.0, true},
  };
  for (const Scenario& s : scenarios) {
    const Outcome out = Run(s, args, sidecar.wants_series(), &recorders);
    for (const char* kind : {"get", "put", "scan"}) {
      const lmp::Histogram* h = MetricsRegistry::Global().FindHistogram(
          s.label + "." + kind);
      if (h == nullptr || h->count() == 0) continue;
      table.AddRow({s.label + (s.churn ? " (churn)" : ""),
                    lmp::TablePrinter::Num(out.observed_local, 2), kind,
                    std::to_string(h->count()), std::to_string(h->p50()),
                    std::to_string(h->p99()), std::to_string(h->p999())});
    }
  }
  table.Print();
  std::printf(
      "\nEvery row is the same tree and the same Zipf stream; only node\n"
      "placement differs.  Fully-local descents bottom out at DRAM-side\n"
      "latency, remote arenas pay one fabric round trip per pointer chase\n"
      "(heights compound it), and churn adds retranslation stalls on top —\n"
      "the op engine prices each hop individually, so the p99/p999 split\n"
      "shows which ops crossed a migration mid-descent.\n");
  sidecar.Flush();
  return 0;
}
