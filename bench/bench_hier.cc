// Hierarchical control plane bench: two racks of three servers behind an
// oversubscribed spine, comparing three control planes on two scenarios.
//
// Scenario "rack hotspot": the tenant working set lives on server 0
// (rack 0) with a pile of cold buffers beside it; at t=80ms the consumer
// moves to server 1 (same rack) while server 0's own application grows
// and wants most of its DRAM back.  Everything needed to react — room on
// server 1, the new consumer there too — is inside rack 0.  But rack 0's
// peers carry private floors and ballast while rack 1 sits idle, so the
// flat solver's cluster-wide overflow placement sizes up a rack 1 region
// and the displaced bytes drain across the spine toward it.  The
// hierarchical plane's rack controller solves and places within the rack
// by construction, so the same shift converges with strictly fewer
// control-plane bytes on the spine at an equal-or-better local fraction.
//
// Scenario "rack failure": rack 0 dies at t=80ms.  Replicated tenant
// buffers fail over to rack 1; the chaos listener forces an out-of-band
// spine round whose pull grants localize the survivors' hot segments.
//
//   * hierarchical — per-rack scoped sizing + GlobalCoordinator grants.
//   * hier (access bits) — same, but demand attribution comes from the
//     shared AccessBitSampler scan instead of exact hotness counters
//     (hotspot scenario only; shows the lossy source converging too).
//   * flat — one cluster-wide SizingController (PR 5's loop).
//   * static — the t=0 layout frozen.
//
// Reported per run: final observed local fraction, control-plane bytes
// moved across the spine, total spine uplink bytes (tenant + control),
// and epochs from the disturbance until the observed local fraction
// reaches within 2% of its final value.
//
// Deterministic: pure sim time, no RNG — stdout and every sidecar are
// byte-identical across runs and --threads= values (cross-rack flows pin
// their racks' solves to the sequential spill path).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/table.h"
#include "common/trace.h"
#include "core/access_bits.h"
#include "core/pool_manager.h"
#include "core/replication.h"
#include "ctrl/controller.h"
#include "ctrl/hier/hier_controller.h"
#include "ctrl/slo_ledger.h"
#include "fabric/topology.h"
#include "obs/time_series.h"
#include "sim/fluid.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

constexpr int kRacks = 2;
constexpr int kPerRack = 3;
constexpr int kServers = kRacks * kPerRack;
constexpr Bytes kServerMem = MiB(64);
constexpr Bytes kFrame = KiB(64);
constexpr int kHotBuffers = 8;
constexpr int kColdBuffers = 6;
constexpr int kBallastBuffers = 12;
constexpr Bytes kBufferBytes = MiB(2);

constexpr SimTime kTick = Milliseconds(2);
constexpr SimTime kShift = Milliseconds(80);
constexpr SimTime kEnd = Milliseconds(300);

enum class Plane { kHier, kHierAccessBits, kFlat, kStatic };
enum class Shape { kHotspot, kRackFail };

struct Scenario {
  std::string label;
  Plane plane = Plane::kHier;
  Shape shape = Shape::kHotspot;
};

struct Outcome {
  double local_fraction = 0;  // observed at kEnd, traffic-weighted
  Bytes ctrl_spine_bytes = 0;  // control-plane bytes priced cross-rack
  double spine_total = 0;      // uplink bytes served (tenant + control)
  int convergence_epochs = -1;  // ticks from kShift to within 2% of final
  std::uint64_t pulls = 0, pushes = 0, oob = 0;
  std::uint64_t p99_breaches = 0;
};

// One tick of tenant traffic from `accessor`: touch every buffer (feeding
// the exact tracker AND the access-bit sampler) and price remote spans as
// DMA flows.
void Touch(sim::FluidSimulator& sim, fabric::Topology& topo,
           core::PoolManager& manager, core::AccessBitSampler& bits,
           const std::vector<core::BufferId>& buffers,
           cluster::ServerId accessor) {
  for (const core::BufferId buf : buffers) {
    auto spans = manager.Spans(buf, 0, kBufferBytes);
    if (!spans.ok()) continue;  // crashed home: tenant skips this tick
    for (const core::LocatedSpan& span : *spans) {
      manager.access_tracker().RecordAccess(
          span.segment, accessor, static_cast<double>(span.bytes),
          sim.now());
      bits.OnAccess(span.segment, accessor, 0, span.bytes);
      if (!span.location.is_pool() && span.location.server != accessor) {
        sim.StartFlow(static_cast<double>(span.bytes),
                      topo.DmaRemotePath(accessor, span.location.server),
                      [&sim](sim::FlowId f, SimTime) {
                        (void)sim.ReleaseRecord(f);
                      });
      }
    }
  }
}

Outcome Run(const Scenario& scenario, int threads,
            trace::TraceCollector* trace, bool want_series,
            std::vector<std::unique_ptr<obs::TimeSeriesRecorder>>* keep) {
  sim::FluidSimulator sim;
  sim.set_metrics(&MetricsRegistry::Global());
  sim.set_threads(threads);
  cluster::ClusterConfig config;
  config.num_servers = kServers;
  config.server_total_memory = kServerMem;
  config.server_shared_memory = kServerMem;
  config.frame_size = kFrame;
  config.with_backing = true;
  auto topo = fabric::Topology::MakeLogical(&sim, kServers,
                                            fabric::LinkProfile::Link1());
  topo.AssignRackShards(kPerRack);
  // A quarter of the edge link rate: cross-rack moves are priced like the
  // oversubscribed spine they would cross in a real deployment.
  topo.ProvisionSpine(topo.link().bandwidth / 4);
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  manager.access_tracker().set_half_life(Milliseconds(50));
  core::AccessBitSampler bits(kFrame);

  if (trace != nullptr) {
    trace->BeginProcess(scenario.label);
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
    manager.set_trace(trace);
  }

  chaos::FaultInjector injector(chaos::FaultInjector::Bindings{
      .sim = &sim, .topology = &topo, .manager = &manager});
  if (trace != nullptr) injector.set_trace(trace);
  if (scenario.shape == Shape::kRackFail) {
    chaos::FaultPlan plan;
    plan.RackFailAt(kShift, {0, 1, 2});
    LMP_CHECK_OK(injector.SchedulePlan(plan));
  }

  // The hot tenant working set, produced on server 0 (rack 0)...
  std::vector<core::BufferId> hot;
  for (int i = 0; i < kHotBuffers; ++i) {
    auto buf = manager.Allocate(kBufferBytes, 0);
    LMP_CHECK(buf.ok());
    hot.push_back(*buf);
  }
  // ...cold archival buffers beside it (allocated, never touched again)...
  for (int i = 0; i < kColdBuffers; ++i) {
    LMP_CHECK(manager.Allocate(kBufferBytes, 0).ok());
  }
  // ...and ballast on server 2, keeping it busy enough that the overflow
  // from server 0's reclaim cannot simply hide there: rack 0 still has
  // room (server 1), but rack 1's idle servers offer strictly more slack,
  // and that asymmetry is what pulls the flat solver across the spine.
  for (int i = 0; i < kBallastBuffers; ++i) {
    LMP_CHECK(manager.Allocate(kBufferBytes, 2).ok());
  }

  // Rack failure needs something to fail over to: protect the hot set
  // with one extra replica each (lands on peers, some in rack 1).
  core::ReplicationManager replication(&manager, /*replication_factor=*/2);
  if (scenario.shape == Shape::kRackFail) {
    for (const core::BufferId buf : hot) {
      LMP_CHECK_OK(replication.ProtectBuffer(buf));
    }
  }

  ctrl::ControllerConfig loop;
  loop.period = Milliseconds(5);
  loop.min_step = MiB(1);
  loop.cooldown = Milliseconds(10);
  loop.estimator.time_constant = Milliseconds(10);
  loop.estimator.headroom_factor = 1.25;

  const bool hier_plane = scenario.plane == Plane::kHier ||
                          scenario.plane == Plane::kHierAccessBits;
  std::unique_ptr<ctrl::hier::HierController> hier;
  std::unique_ptr<ctrl::SizingController> flat;
  if (hier_plane) {
    ctrl::hier::HierConfig hc;
    hc.period = Milliseconds(5);
    hc.horizon = kEnd;
    hc.global_every = 2;
    hc.rack = loop;
    if (scenario.plane == Plane::kHierAccessBits) {
      hc.rack.estimator.source = ctrl::DemandSource::kAccessBits;
    }
    hier = std::make_unique<ctrl::hier::HierController>(
        ctrl::hier::HierController::Bindings{.sim = &sim,
                                             .manager = &manager,
                                             .topology = &topo,
                                             .injector = &injector},
        hc);
    if (scenario.plane == Plane::kHierAccessBits) {
      hier->set_access_bits(&bits);
    }
    // Rack 0's servers run their own applications; rack 1 is an idle
    // expansion rack (no floors), leaving it strictly more slack than any
    // rack-0 peer — the bait the flat solver's overflow placement takes.
    for (int s = 0; s < kPerRack; ++s) {
      hier->rack_of(static_cast<cluster::ServerId>(s))
          .sizing()
          .estimator()
          .SetPrivateFloor(static_cast<cluster::ServerId>(s), MiB(8));
    }
    if (trace != nullptr) hier->set_trace(trace);
    hier->Start();
  } else if (scenario.plane == Plane::kFlat) {
    ctrl::ControllerConfig fc = loop;
    fc.horizon = kEnd;
    flat = std::make_unique<ctrl::SizingController>(
        ctrl::SizingController::Bindings{.sim = &sim,
                                         .manager = &manager,
                                         .topology = &topo,
                                         .injector = &injector},
        fc);
    for (int s = 0; s < kPerRack; ++s) {
      flat->estimator().SetPrivateFloor(static_cast<cluster::ServerId>(s),
                                        MiB(8));
    }
    if (trace != nullptr) flat->set_trace(trace);
    flat->Start();
  }

  // Plane-independent locality measurement (full-cluster scope).
  ctrl::DemandEstimator meter(&manager);

  std::unique_ptr<obs::TimeSeriesRecorder> recorder;
  if (want_series) {
    obs::TimeSeriesRecorder::Config rc;
    rc.interval = kTick;
    rc.horizon = kEnd;
    rc.prefix = scenario.label + "/";
    recorder = std::make_unique<obs::TimeSeriesRecorder>(&sim, rc);
    recorder->AddGauge("local_fraction", [&meter, &sim] {
      return meter.ObservedLocalFraction(sim.now());
    });
    recorder->AddGauge("spine_bytes_served",
                       [&topo] { return topo.SpineBytesServed(); });
    if (hier_plane) {
      recorder->AddCounter("hier.epochs",
                           [&hier] { return hier->stats().epochs; });
      recorder->AddCounter("hier.granted_bytes", [&hier] {
        return hier->stats().granted_bytes;
      });
    }
    recorder->Start();
  }

  // Per-tick locality samples feed the convergence-epoch count.
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(kEnd / kTick) + 1);

  // Tenant ticks: server 0 until the shift, server 1 after (rack failure
  // moves the consumer to rack 1's server 4 — the failover reader).
  for (SimTime t = 0; t < kEnd; t += kTick) {
    sim.ScheduleAt(t, [&](SimTime now) {
      cluster::ServerId accessor = 0;
      if (now >= kShift) {
        accessor = scenario.shape == Shape::kRackFail ? 4 : 1;
      }
      Touch(sim, topo, manager, bits, hot, accessor);
      samples.push_back(meter.ObservedLocalFraction(now));
    });
  }
  if (scenario.shape == Shape::kHotspot) {
    // The hotspot: server 0's own application grows and wants its DRAM
    // back, forcing a shrink whose drains reveal each plane's placement.
    sim.ScheduleAt(kShift, [&](SimTime) {
      if (hier != nullptr) {
        hier->rack_of(0).sizing().estimator().SetPrivateFloor(0, MiB(48));
      }
      if (flat != nullptr) flat->estimator().SetPrivateFloor(0, MiB(48));
    });
  }

  sim.Run();

  if (recorder != nullptr) keep->push_back(std::move(recorder));

  Outcome out;
  out.local_fraction = meter.ObservedLocalFraction(kEnd);
  out.spine_total = topo.SpineBytesServed();
  // Epochs (ticks) from the disturbance until the observed local fraction
  // first comes within 2% of its final value and stays converged.
  const auto shift_idx = static_cast<std::size_t>(kShift / kTick);
  out.convergence_epochs = -1;
  for (std::size_t i = samples.size(); i-- > shift_idx;) {
    if (samples[i] < out.local_fraction - 0.02) {
      out.convergence_epochs = static_cast<int>(i + 1 - shift_idx);
      break;
    }
  }
  if (out.convergence_epochs < 0) out.convergence_epochs = 0;
  if (hier != nullptr) {
    out.ctrl_spine_bytes = hier->SpineBytesMoved();
    out.pulls = hier->stats().pull_grants;
    out.pushes = hier->stats().push_grants;
    out.oob = hier->stats().oob_resolves;
  } else if (flat != nullptr) {
    out.ctrl_spine_bytes = flat->stats().spine_bytes;
    out.oob = flat->stats().oob_resolves;
    out.p99_breaches = flat->stats().p99_breaches;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  ctrl::SloLedger* slo = sidecar.slo_ledger();
  std::vector<std::unique_ptr<obs::TimeSeriesRecorder>> recorders;
  std::printf(
      "== Hierarchical control plane: 2 racks x 3 servers, spine at 1/4 "
      "edge rate ==\n");
  lmp::TablePrinter table({"Scenario", "Plane", "Local frac",
                           "Ctrl spine MiB", "Spine total MiB", "Conv ticks",
                           "Pulls", "Pushes", "OOB"});
  const std::vector<Scenario> scenarios = {
      {"rack hotspot", Plane::kHier, Shape::kHotspot},
      {"rack hotspot", Plane::kHierAccessBits, Shape::kHotspot},
      {"rack hotspot", Plane::kFlat, Shape::kHotspot},
      {"rack hotspot", Plane::kStatic, Shape::kHotspot},
      {"rack failure", Plane::kHier, Shape::kRackFail},
      {"rack failure", Plane::kFlat, Shape::kRackFail},
      {"rack failure", Plane::kStatic, Shape::kRackFail},
  };
  const auto plane_name = [](Plane p) {
    switch (p) {
      case Plane::kHier: return "hierarchical";
      case Plane::kHierAccessBits: return "hier (access bits)";
      case Plane::kFlat: return "flat";
      case Plane::kStatic: return "static";
    }
    return "?";
  };
  for (const Scenario& s : scenarios) {
    Scenario labeled = s;
    labeled.label = s.label + " / " + plane_name(s.plane);
    const Outcome out = Run(labeled, args.threads, sidecar.collector(),
                            sidecar.wants_series(), &recorders);
    if (slo != nullptr) {
      ctrl::SloTargets targets;
      targets.local_fraction_floor = 0.5;
      slo->Register(labeled.label, targets);
      slo->RecordLocalFraction(labeled.label, out.local_fraction);
    }
    table.AddRow(
        {s.label, plane_name(s.plane),
         lmp::TablePrinter::Num(out.local_fraction, 3),
         lmp::TablePrinter::Num(
             static_cast<double>(out.ctrl_spine_bytes) / lmp::kMiB, 2),
         lmp::TablePrinter::Num(out.spine_total / lmp::kMiB, 1),
         std::to_string(out.convergence_epochs), std::to_string(out.pulls),
         std::to_string(out.pushes), std::to_string(out.oob)});
  }
  for (const auto& rec : recorders) sidecar.AddSeriesRecorder(rec.get());
  table.Print();
  std::printf(
      "\nThe hotspot is rack-local and the hierarchy treats it that way:\n"
      "rack 0's controller drains onto its own servers, so the spine sees\n"
      "none of the control plane's bytes, while the flat controller's\n"
      "cluster-wide most-free placement hauls the cold set across the\n"
      "oversubscribed uplinks for the same final locality.  Under rack\n"
      "failure the coordinator's out-of-band pull grants localize the\n"
      "failed-over replicas without waiting for the periodic cadence.\n");
  sidecar.Flush();
  return 0;
}
