// Flexibility sweep — Figure 5 generalized.  For a single job's working
// set swept from 8 to 96 GiB, which deployments can run it at all, and at
// what locality?
//
//   * Physical pool (fixed 64 GiB box): feasible iff <= 64 GiB.
//   * Static logical split (shared fixed at deployment): feasible iff
//     <= 4 x shared.
//   * Flexible LMP (the paper's proposal): the sizing optimizer flexes
//     every server's split; feasible up to the full 96 GiB.
#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "core/sizing.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

const char* StaticVerdict(Bytes working_set, Bytes shared_per_server) {
  return working_set <= 4 * shared_per_server ? "ok" : "INFEASIBLE";
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = GiB(24);
  config.server_shared_memory = 0;
  config.frame_size = MiB(64);

  std::printf(
      "== Feasibility sweep: one job's working set vs deployment shape "
      "==\n");
  TablePrinter table({"Working set", "Physical 64G pool",
                      "Static 8G/srv", "Static 16G/srv",
                      "Flexible LMP", "LMP local%"});
  for (const Bytes gib : {8ull, 24ull, 48ull, 64ull, 80ull, 96ull}) {
    const Bytes ws = GiB(gib);
    // Flexible: solve the sizing problem with the job on server 0 and a
    // small private floor everywhere.
    cluster::Cluster cluster(config);
    std::vector<core::ServerDemand> demands{
        {0, GiB(1), ws, 2.0}, {1, GiB(1), 0, 1.0},
        {2, GiB(1), 0, 1.0}, {3, GiB(1), 0, 1.0}};
    const auto plan = core::SizingOptimizer::Solve(cluster, demands);
    const bool flexible_ok = plan.unmet_demand == 0;

    table.AddRow({std::to_string(gib) + " GiB",
                  ws <= GiB(64) ? "ok" : "INFEASIBLE",
                  StaticVerdict(ws, GiB(8)), StaticVerdict(ws, GiB(16)),
                  flexible_ok ? "ok" : "INFEASIBLE",
                  flexible_ok
                      ? TablePrinter::Num(100 * plan.LocalFraction(), 0) +
                            "%"
                      : "-"});
  }
  table.Print();
  std::printf(
      "\nEvery fixed shape has a cliff: the physical pool at its box size,\n"
      "a static split at 4x its shared slice.  The flexible LMP serves the\n"
      "whole range (up to total memory minus private floors) and keeps as\n"
      "much of the working set local as the job's own server can hold —\n"
      "the generalization of Figure 5's single data point (Section 4.5).\n");
  sidecar.Flush();
  return 0;
}
