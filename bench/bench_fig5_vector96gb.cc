// Reproduces Figure 5 of the paper: 96 GiB vector-sum bandwidth on
// Logical vs Physical cache vs Physical no-cache, over Link0 and Link1.
#include "figure_harness.h"

int main() {
  const lmp::Bytes size = lmp::GiB(96);
  auto rows = lmp::bench::RunFigure(size);
  lmp::bench::PrintFigure("Figure 5", size, rows);
  return 0;
}
