// §4.3's latency analysis ("a similar analysis applies for latency, where
// LMPs would outperform the physical pool").  Reports the loaded read
// latency mix each deployment sees for the paper's vector sizes: accesses
// that resolve locally cost loaded-local latency, remote/pool accesses
// cost loaded-link latency; the average is weighted by the locality
// fraction the placement actually achieved.
#include <cstdio>

#include "baselines/logical.h"
#include "baselines/physical.h"
#include "common/table.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

// Loaded latencies at saturation (the paper quotes max-loaded numbers).
double MixedLatency(double local_fraction, const fabric::LinkProfile& link) {
  const double local = fabric::LinkProfile::LocalDram().LoadedLatency(1.0);
  const double remote = link.LoadedLatency(1.0);
  return local_fraction * local + (1.0 - local_fraction) * remote;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  std::printf(
      "== Average loaded read latency by deployment (weighted by measured "
      "locality) ==\n");
  TablePrinter table({"Vector", "Link", "Logical ns", "Phys cache ns",
                      "Phys no-cache ns", "Logical advantage"});
  for (const auto& link :
       {fabric::LinkProfile::Link0(), fabric::LinkProfile::Link1()}) {
    for (const Bytes gib : {8ull, 24ull, 64ull}) {
      baselines::VectorSumParams params;
      params.vector_bytes = GiB(gib);
      params.repetitions = 3;

      baselines::LogicalDeployment logical(link);
      baselines::PhysicalDeployment cache(link, true);
      auto rl = logical.RunVectorSum(params);
      auto rc = cache.RunVectorSum(params);
      LMP_CHECK(rl.ok() && rc.ok());

      const double logical_ns = MixedLatency(rl->local_fraction, link);
      // The cache baseline's "local" accesses are its hits.
      const double cache_ns = MixedLatency(rc->cache_hit_rate, link);
      const double nocache_ns = MixedLatency(0.0, link);
      table.AddRow({std::to_string(gib) + " GiB", link.name,
                    TablePrinter::Num(logical_ns, 0),
                    TablePrinter::Num(cache_ns, 0),
                    TablePrinter::Num(nocache_ns, 0),
                    TablePrinter::Num(nocache_ns / logical_ns, 2) + "x"});
    }
  }
  table.Print();
  std::printf(
      "\nAt full locality the gap equals the paper's loaded-latency ratios\n"
      "(2.8x on Link0, 3.6x on Link1, Section 4.3); it narrows as the\n"
      "working set outgrows the runner's shared region.\n");
  sidecar.Flush();
  return 0;
}
