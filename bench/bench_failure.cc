// Failure-handling ablation (§5 "Failure domains"): replication vs XOR
// erasure coding.  Compares capacity overhead, data surviving a crash, and
// recovery traffic/time (rebuild transfers priced on the simulated fabric
// at Link0 speed).
#include <cstdio>
#include <vector>

#include "args.h"
#include "chaos/fault_plan.h"
#include "common/table.h"
#include "common/trace.h"
#include "core/erasure.h"
#include "core/pool_manager.h"
#include "core/replication.h"
#include "fabric/topology.h"
#include "sim/fluid.h"
#include "sim/stream.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

struct FailureOutcome {
  double capacity_overhead = 1.0;
  Bytes protected_bytes = 0;
  Bytes lost_bytes = 0;       // after recovery
  Bytes recovery_traffic = 0; // bytes moved to restore data + redundancy
  SimTime recovery_time = 0;  // simulated
};

constexpr int kSegments = 8;
constexpr Bytes kSegmentSize = GiB(2);

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config = cluster::ClusterConfig::PaperLogical();
  return config;
}

// Prices `bytes` of rebuild traffic converging on one server.
SimTime PriceRecovery(Bytes bytes) {
  sim::FluidSimulator sim;
  auto topo =
      fabric::Topology::MakeLogical(&sim, 4, fabric::LinkProfile::Link0());
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  streams.push_back(std::make_unique<sim::SpanStream>(
      &sim, std::vector<sim::Span>{sim::Span{
                static_cast<double>(bytes), topo.DmaRemotePath(1, 2)}}));
  const auto r = sim::RunStreams(&sim, std::move(streams));
  return r.end - r.start;
}

FailureOutcome RunReplication(const std::vector<cluster::ServerId>& victims,
                              trace::TraceCollector* trace = nullptr) {
  cluster::Cluster cluster(Config());
  core::PoolManager manager(&cluster);
  core::ReplicationManager repl(&manager, 1);
  if (trace != nullptr) {
    // The functional layer alone carries no sim clock; crash/failover/
    // replica events land at t=0 of this scheme's own process.
    trace->BeginProcess("replication");
    manager.set_trace(trace);
  }

  std::vector<core::BufferId> buffers;
  for (int i = 0; i < kSegments; ++i) {
    auto buf = manager.Allocate(kSegmentSize,
                                static_cast<cluster::ServerId>(i % 4));
    LMP_CHECK(buf.ok());
    LMP_CHECK_OK(repl.ProtectBuffer(*buf));
    buffers.push_back(*buf);
  }

  FailureOutcome out;
  out.capacity_overhead = repl.CapacityOverhead();
  out.protected_bytes = kSegments * kSegmentSize;
  Bytes lost_segments = 0;
  for (const cluster::ServerId victim : victims) {
    const auto lost = manager.OnServerCrash(victim);
    LMP_CHECK(lost.ok());
    lost_segments += lost->size();
  }
  out.lost_bytes = lost_segments * kSegmentSize;
  // Failover is instant (replica already holds the data); the recovery
  // traffic is re-establishing redundancy for the failed-over segments.
  auto created = repl.RestoreRedundancy();
  LMP_CHECK(created.ok());
  out.recovery_traffic = static_cast<Bytes>(*created) * kSegmentSize;
  out.recovery_time = PriceRecovery(out.recovery_traffic);
  return out;
}

FailureOutcome RunErasure(int group_size,
                          const std::vector<cluster::ServerId>& victims,
                          trace::TraceCollector* trace = nullptr) {
  cluster::Cluster cluster(Config());
  core::PoolManager manager(&cluster);
  core::XorErasureManager erasure(&manager, group_size);
  if (trace != nullptr) {
    trace->BeginProcess("erasure-k" + std::to_string(group_size));
    manager.set_trace(trace);
  }

  std::vector<core::SegmentId> segments;
  for (int i = 0; i < kSegments; ++i) {
    auto buf = manager.Allocate(kSegmentSize,
                                static_cast<cluster::ServerId>(i % 4));
    LMP_CHECK(buf.ok());
    segments.push_back(manager.Describe(*buf)->segments[0]);
  }
  LMP_CHECK_OK(erasure.ProtectSegments(segments));

  FailureOutcome out;
  out.capacity_overhead = erasure.CapacityOverhead();
  out.protected_bytes = kSegments * kSegmentSize;
  Bytes lost_segments = 0;
  for (const cluster::ServerId victim : victims) {
    const auto lost = manager.OnServerCrash(victim);
    LMP_CHECK(lost.ok());
    lost_segments += lost->size();
  }
  auto recovered = erasure.RecoverAllLost();
  LMP_CHECK(recovered.ok());
  // Rebuilding one segment reads group_size survivors' worth of data.
  out.recovery_traffic = static_cast<Bytes>(*recovered) * kSegmentSize *
                         static_cast<Bytes>(group_size);
  out.recovery_time = PriceRecovery(out.recovery_traffic);
  out.lost_bytes = (lost_segments - static_cast<Bytes>(*recovered)) *
                   kSegmentSize;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  // Without --fault-plan= the victim is server 0 (the historical default,
  // stdout byte-identical); with a plan, the crash/rack events pick them.
  std::vector<cluster::ServerId> victims{0};
  if (args.has_fault_plan()) {
    auto plan = chaos::FaultPlan::ParseFile(args.fault_plan);
    LMP_CHECK(plan.ok()) << plan.status().ToString();
    if (!plan->CrashVictims().empty()) victims = plan->CrashVictims();
  }
  std::string who = "server";
  if (victims.size() > 1) who += "s";
  for (std::size_t i = 0; i < victims.size(); ++i) {
    who += (i == 0 ? " " : "+") + std::to_string(victims[i]);
  }
  std::printf(
      "== Failure handling: 8 x 2 GiB segments, crash of %s ==\n",
      who.c_str());
  TablePrinter table({"Scheme", "Capacity overhead", "Data lost",
                      "Recovery traffic", "Recovery time"});
  auto add = [&](const char* name, const FailureOutcome& out) {
    table.AddRow({name,
                  TablePrinter::Num(out.capacity_overhead, 2) + "x",
                  std::to_string(out.lost_bytes / kGiB) + " GiB",
                  std::to_string(out.recovery_traffic / kGiB) + " GiB",
                  TablePrinter::Num(out.recovery_time / kNsPerMs, 0) +
                      " ms"});
  };
  add("Replication (1 extra copy)",
      RunReplication(victims, sidecar.collector()));
  add("XOR erasure (k=2)", RunErasure(2, victims, sidecar.collector()));
  add("XOR erasure (k=3)", RunErasure(3, victims, sidecar.collector()));
  table.Print();
  std::printf(
      "\nReplication recovers instantly (failover) but costs 2x capacity;\n"
      "erasure cuts the overhead to 1+1/k at the price of reading k\n"
      "survivor segments per rebuild — the classic trade the paper points\n"
      "to via Carbink (Section 5).\n");
  sidecar.Flush();
  return 0;
}
