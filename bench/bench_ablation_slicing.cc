// Slicing ablation: contiguous vs balanced core-work assignment for the
// 64 GiB logical vector sum.
//
// With contiguous 1/14th slices (the paper's natural reading), cores over
// the local prefix finish early and the makespan is set by the all-remote
// cores — the logical advantage is then link-independent.  With balanced
// slices every core sees the same 3/8-local mix, and the advantage grows
// as the link slows ("the slower the remote link, the better the
// performance of LMPs relative to physical pools", §4.3).
#include <cstdio>

#include "baselines/logical.h"
#include "baselines/physical.h"
#include "common/table.h"

#include "args.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  using namespace lmp;
  std::printf(
      "== Core-slicing ablation: 64 GiB logical vector sum ==\n");
  TablePrinter table({"Slicing", "Link", "Logical GB/s", "No-cache GB/s",
                      "Advantage"});
  for (const bool balanced : {false, true}) {
    for (const auto& link :
         {fabric::LinkProfile::Link0(), fabric::LinkProfile::Link1()}) {
      baselines::VectorSumParams params;
      params.vector_bytes = GiB(64);
      params.repetitions = 5;
      params.balanced_slices = balanced;

      baselines::LogicalDeployment logical(link);
      baselines::PhysicalDeployment nocache(link, false);
      auto rl = logical.RunVectorSum(params);
      auto rn = nocache.RunVectorSum(params);
      LMP_CHECK(rl.ok() && rn.ok());
      table.AddRow({balanced ? "balanced" : "contiguous", link.name,
                    TablePrinter::Num(rl->avg_bandwidth_gbps),
                    TablePrinter::Num(rn->avg_bandwidth_gbps),
                    TablePrinter::Num(rl->avg_bandwidth_gbps /
                                          rn->avg_bandwidth_gbps,
                                      2) +
                        "x"});
    }
  }
  table.Print();
  std::printf(
      "\nBalanced slicing makes the logical advantage grow from Link0 to\n"
      "Link1 — the monotonicity the paper asserts — at the cost of a lower\n"
      "absolute number (no core finishes early on purely local data).\n");
  sidecar.Flush();
  return 0;
}
