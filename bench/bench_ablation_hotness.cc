// Hotness-source ablation (§5 "Locality balancing"): exact per-byte
// counters (performance-counter profiling) vs access-bit sampling driving
// the same migration decisions.
//
// The workload mixes two buffer populations so the two signals disagree:
//   * "scan" buffers — read fully, once (footprint 2 GiB, traffic 2 GiB);
//   * "hot"  buffers — a 256 MiB window re-read 16x (footprint 256 MiB,
//     traffic 4 GiB).
// Exact counters rank the hot buffers first (true traffic); access bits
// see only touched pages and rank the scans first.  With a bounded
// migration budget, the bits-driven policy converts less remote traffic.
#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "core/access_bits.h"
#include "core/pool_manager.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

constexpr int kBuffers = 12;           // 0-5 scans, 6-11 hot
constexpr Bytes kBufferSize = GiB(2);
constexpr Bytes kHotWindow = MiB(256);
constexpr int kHotReps = 16;
constexpr int kMigrationBudget = 4;

struct Outcome {
  double traffic_local = 0;  // fraction of true traffic made local
  int migrations = 0;
};

Outcome Drive(bool use_access_bits) {
  cluster::ClusterConfig config = cluster::ClusterConfig::PaperLogical();
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  manager.access_tracker().set_half_life(Seconds(100));
  core::AccessBitSampler sampler(config.frame_size);

  std::vector<core::BufferId> buffers;
  std::vector<core::SegmentId> segments;
  for (int i = 0; i < kBuffers; ++i) {
    auto buf = manager.Allocate(
        kBufferSize, static_cast<cluster::ServerId>((i % 3) + 1));
    LMP_CHECK(buf.ok());
    buffers.push_back(*buf);
    segments.push_back(manager.Describe(*buf)->segments[0]);
  }

  std::vector<double> true_traffic(kBuffers, 0);
  for (int i = 0; i < kBuffers; ++i) {
    if (i < kBuffers / 2) {
      LMP_CHECK_OK(manager.Touch(0, buffers[i], 0, kBufferSize, Seconds(1)));
      sampler.OnAccess(segments[i], 0, 0, kBufferSize);
      true_traffic[i] = static_cast<double>(kBufferSize);
    } else {
      for (int rep = 0; rep < kHotReps; ++rep) {
        LMP_CHECK_OK(manager.Touch(0, buffers[i], 0, kHotWindow,
                                   Seconds(1)));
        sampler.OnAccess(segments[i], 0, 0, kHotWindow);
      }
      true_traffic[i] = static_cast<double>(kHotWindow) * kHotReps;
    }
  }
  (void)sampler.ScanAndClear();

  // Rank by the chosen signal; migrate the top `kMigrationBudget`.
  std::vector<std::pair<double, int>> ranked;
  for (int i = 0; i < kBuffers; ++i) {
    const double score =
        use_access_bits
            ? sampler.EstimatedBytes(segments[i], 0)
            : manager.access_tracker().AccessedBytes(segments[i], 0,
                                                     Seconds(1));
    ranked.push_back({score, i});
  }
  std::sort(ranked.rbegin(), ranked.rend());

  Outcome out;
  for (const auto& [score, i] : ranked) {
    if (out.migrations >= kMigrationBudget || score <= 0) break;
    if (manager.MigrateSegment(segments[i], 0).ok()) ++out.migrations;
  }

  double local = 0, total = 0;
  for (int i = 0; i < kBuffers; ++i) {
    total += true_traffic[i];
    const core::SegmentInfo* info =
        manager.segment_map().Find(segments[i]);
    if (!info->home.is_pool() && info->home.server == 0) {
      local += true_traffic[i];
    }
  }
  out.traffic_local = total == 0 ? 0 : local / total;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  std::printf(
      "== Hotness-source ablation: %d-buffer mixed workload, budget of %d "
      "migrations ==\n",
      kBuffers, kMigrationBudget);
  TablePrinter table({"Source", "Migrations", "True traffic made local"});
  const Outcome exact = Drive(false);
  const Outcome bits = Drive(true);
  table.AddRow({"exact counters", std::to_string(exact.migrations),
                TablePrinter::Num(100 * exact.traffic_local, 0) + "%"});
  table.AddRow({"access bits", std::to_string(bits.migrations),
                TablePrinter::Num(100 * bits.traffic_local, 0) + "%"});
  table.Print();
  std::printf(
      "\nAccess bits see footprint, not reuse: they spend the migration\n"
      "budget on broad scans instead of intensely re-read windows.  The\n"
      "cheap mechanism the paper suggests works when reuse and footprint\n"
      "correlate; performance counters are worth their overhead when they\n"
      "do not (Section 5).\n");
  sidecar.Flush();
  return 0;
}
