// Reproduces Figure 2 of the paper: 8 GiB vector-sum bandwidth on
// Logical vs Physical cache vs Physical no-cache, over Link0 and Link1.
#include "figure_harness.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(argc, argv);
  const lmp::Bytes size = lmp::GiB(8);
  auto rows = lmp::bench::RunFigure(size, 10, sidecar.collector());
  lmp::bench::PrintFigure("Figure 2", size, rows);
  sidecar.Flush();
  return 0;
}
