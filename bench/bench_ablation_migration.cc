// Migration ablation (§5 "Locality balancing"): a skewed (Zipf) read
// workload from one server against data spread across the pool, with the
// hotness-driven migrator ON vs OFF.  With migration on, hot buffers move
// next to the consumer and per-epoch bandwidth climbs toward local speed;
// off, it stays fabric-bound.  Migration transfer time is charged through
// the simulator's DMA paths, so the payback is honest.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "common/trace.h"
#include "core/migration.h"
#include "core/pool_manager.h"
#include "fabric/topology.h"
#include "sim/fluid.h"
#include "sim/stream.h"
#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

struct EpochSeries {
  std::vector<double> gbps;
  double final_local_fraction = 0;
  int migrations = 0;
};

EpochSeries RunWorkload(bool migration_on,
                        trace::TraceCollector* trace = nullptr) {
  sim::FluidSimulator sim;
  auto topo =
      fabric::Topology::MakeLogical(&sim, 4, fabric::LinkProfile::Link1());
  cluster::ClusterConfig config = cluster::ClusterConfig::PaperLogical();
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  if (trace != nullptr) {
    trace->BeginProcess(migration_on ? "migration-on" : "migration-off");
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
    manager.set_trace(trace);
  }
  // Epochs span seconds of simulated time; the hotness half-life must
  // cover several epochs or all traffic decays before the balancer looks.
  manager.access_tracker().set_half_life(Seconds(20));
  core::MigrationEngine engine(&manager, core::MigrationConfig{
                                             .dominance_threshold = 0.5,
                                             .benefit_factor = 1.0,
                                             .max_migrations_per_round = 4,
                                         });

  // 16 buffers x 4 GiB, all initially homed on servers 1-3 (e.g. produced
  // there by other jobs): the consumer on server 0 starts with ZERO local
  // data and 24 GiB of headroom for the balancer to exploit.
  constexpr int kBuffers = 16;
  std::vector<core::BufferId> buffers;
  for (int i = 0; i < kBuffers; ++i) {
    auto buf = manager.Allocate(
        GiB(4), static_cast<cluster::ServerId>((i % 3) + 1));
    LMP_CHECK(buf.ok());
    buffers.push_back(*buf);
  }

  ZipfGenerator zipf(kBuffers, 0.9, /*seed=*/17);
  EpochSeries series;
  constexpr int kEpochs = 10;
  constexpr int kReadsPerEpoch = 16;
  const fabric::ServerIndex hot_server = 0;

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const SimTime epoch_start = sim.now();
    double epoch_bytes = 0;
    for (int read = 0; read < kReadsPerEpoch; ++read) {
      const core::BufferId buf = buffers[zipf.Next()];
      auto spans = manager.Spans(buf, 0, GiB(4));
      LMP_CHECK(spans.ok());
      // 14 cores stream this buffer concurrently (contiguous slices).
      std::vector<std::unique_ptr<sim::SpanStream>> streams;
      for (int c = 0; c < 14; ++c) {
        std::vector<sim::Span> core_spans;
        for (const auto& ls : *spans) {
          const double share = static_cast<double>(ls.bytes) / 14;
          core_spans.push_back(sim::Span{
              share, ls.location.server == hot_server
                         ? topo.LocalPath(hot_server, c)
                         : topo.RemotePath(hot_server, c,
                                           ls.location.server)});
        }
        streams.push_back(std::make_unique<sim::SpanStream>(
            &sim, std::move(core_spans)));
      }
      (void)sim::RunStreams(&sim, std::move(streams));
      epoch_bytes += static_cast<double>(GiB(4));
      LMP_CHECK_OK(manager.Touch(hot_server, buf, 0, GiB(4), sim.now()));
    }
    series.gbps.push_back(ToGBps(epoch_bytes, sim.now() - epoch_start));
    if (trace != nullptr) {
      topo.SampleUtilization(trace);
      trace->Instant(trace::Category::kHarness, "epoch_end", sim.now(),
                     {trace::Arg("epoch", epoch),
                      trace::Arg("gbps", series.gbps.back())});
    }

    if (migration_on) {
      std::vector<core::MigrationRecord> records;
      LMP_CHECK(engine.RunOnce(sim.now(), &records).ok());
      series.migrations += static_cast<int>(records.size());
      // Charge the copies: DMA flows from old to new home.
      std::vector<std::unique_ptr<sim::SpanStream>> copies;
      for (const auto& rec : records) {
        copies.push_back(std::make_unique<sim::SpanStream>(
            &sim, std::vector<sim::Span>{sim::Span{
                      static_cast<double>(rec.bytes),
                      topo.DmaRemotePath(rec.from.server,
                                         rec.to.server)}}));
      }
      if (!copies.empty()) (void)sim::RunStreams(&sim, std::move(copies));
    }
  }

  double local_bytes = 0, total_bytes = 0;
  for (core::BufferId buf : buffers) {
    auto frac = manager.LocalFraction(buf, hot_server);
    LMP_CHECK(frac.ok());
    local_bytes += *frac * static_cast<double>(GiB(4));
    total_bytes += static_cast<double>(GiB(4));
  }
  series.final_local_fraction = local_bytes / total_bytes;
  if (trace != nullptr) trace->set_clock({});
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  std::printf(
      "== Migration ablation: Zipf(0.9) reads from server 0, Link1 ==\n");
  const EpochSeries off = RunWorkload(false, sidecar.collector());
  const EpochSeries on = RunWorkload(true, sidecar.collector());

  TablePrinter table({"Epoch", "Migration OFF GB/s", "Migration ON GB/s"});
  for (std::size_t e = 0; e < off.gbps.size(); ++e) {
    table.AddRow({std::to_string(e), TablePrinter::Num(off.gbps[e]),
                  TablePrinter::Num(on.gbps[e])});
  }
  table.Print();
  std::printf(
      "\nmigrations executed: %d (on) vs %d (off)\n"
      "final data local to the hot server: %.0f%% (on) vs %.0f%% (off)\n"
      "steady-state speedup: %.2fx\n",
      on.migrations, off.migrations, 100 * on.final_local_fraction,
      100 * off.final_local_fraction,
      on.gbps.back() / off.gbps.back());
  sidecar.Flush();
  return 0;
}
