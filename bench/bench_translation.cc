// Address-translation microbenchmarks (§5 "Address translation"),
// google-benchmark.
//
// Measures the real CPU cost of the two-step path (cached hit, cold miss,
// post-migration stale refresh) and contrasts with a *modelled* flat
// directory, where every translation would pay a remote fabric access —
// the design §5 rejects.  The FabricNs counter on each benchmark reports
// the simulated fabric latency the scheme adds per translation.
#include <benchmark/benchmark.h>

#include "args.h"
#include "trace_sidecar.h"

#include "core/segment_map.h"
#include "core/translation.h"
#include "fabric/link.h"

namespace {

using namespace lmp;
using core::AddressTranslator;
using core::Location;
using core::SegmentId;
using core::SegmentInfo;
using core::SegmentMap;

SegmentMap MakeMap(int segments) {
  SegmentMap map;
  for (int i = 0; i < segments; ++i) {
    SegmentInfo info;
    info.id = static_cast<SegmentId>(i);
    info.size = GiB(1);
    info.home = Location::OnServer(i % 4);
    LMP_CHECK_OK(map.Insert(info));
  }
  return map;
}

void BM_TwoStep_CacheHit(benchmark::State& state) {
  SegmentMap map = MakeMap(1024);
  AddressTranslator translator(&map, 4096);
  // Warm the cache.
  for (SegmentId s = 0; s < 1024; ++s) {
    (void)translator.TranslateHome(s);
  }
  SegmentId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(translator.TranslateHome(s));
    s = (s + 1) & 1023;
  }
  // Two-step with a hot cache: zero fabric traffic.
  state.counters["FabricNs"] = 0;
}
BENCHMARK(BM_TwoStep_CacheHit);

void BM_TwoStep_CacheMiss(benchmark::State& state) {
  SegmentMap map = MakeMap(65536);
  // Cache far smaller than the segment population: every lookup misses.
  AddressTranslator translator(&map, 64);
  SegmentId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(translator.TranslateHome(s));
    s = (s + 9973) % 65536;
  }
  // A miss still resolves against the LOCAL replica of the coarse map.
  state.counters["FabricNs"] = 0;
}
BENCHMARK(BM_TwoStep_CacheMiss);

void BM_TwoStep_StaleAfterMigration(benchmark::State& state) {
  SegmentMap map = MakeMap(16);
  AddressTranslator translator(&map, 4096);
  for (SegmentId s = 0; s < 16; ++s) (void)translator.TranslateHome(s);
  int flip = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Migrate segment 3 so the cached entry is stale by generation.
    LMP_CHECK_OK(map.UpdateHome(3, Location::OnServer(flip++ & 3)));
    state.ResumeTiming();
    benchmark::DoNotOptimize(translator.TranslateHome(SegmentId{3}));
  }
  state.counters["FabricNs"] = 0;
}
BENCHMARK(BM_TwoStep_StaleAfterMigration);

// The rejected design: a single flat directory homed on one server.  The
// lookup itself is as cheap as ours — but 3 of 4 servers pay a remote
// fabric round-trip per translation.  We charge the Link0 unloaded latency
// as a counter (the simulated fabric is not the CPU being benchmarked).
void BM_FlatDirectory_RemoteLookup(benchmark::State& state) {
  SegmentMap map = MakeMap(1024);
  const auto link = fabric::LinkProfile::Link0();
  SegmentId s = 0;
  double fabric_ns = 0;
  std::int64_t lookups = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Lookup(s));
    fabric_ns += link.LoadedLatency(0);  // remote round-trip per lookup
    ++lookups;
    s = (s + 1) & 1023;
  }
  state.counters["FabricNs"] =
      benchmark::Counter(fabric_ns / static_cast<double>(lookups));
}
BENCHMARK(BM_FlatDirectory_RemoteLookup);

// Hit-rate sweep: cache capacity as a fraction of the working set.
void BM_TwoStep_HitRateSweep(benchmark::State& state) {
  const int segments = 4096;
  const int capacity = static_cast<int>(state.range(0));
  SegmentMap map = MakeMap(segments);
  AddressTranslator translator(&map, capacity);
  SegmentId s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(translator.TranslateHome(s));
    s = (s + 1) % segments;
  }
  state.counters["HitRate"] = translator.stats().HitRate();
}
BENCHMARK(BM_TwoStep_HitRateSweep)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

// Sidecar flags (--trace-out=/--metrics-out=) are stripped before
// google-benchmark sees argv, so its strict parser does not reject them.
int main(int argc, char** argv) {
  const lmp::bench::Args args = lmp::bench::Args::Parse(argc, argv);
  lmp::bench::TraceSidecar sidecar(args);
  std::vector<char*> kept = lmp::bench::Args::Strip(argc, argv);
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sidecar.Flush();
  return 0;
}
