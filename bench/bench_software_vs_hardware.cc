// §2.1: software vs hardware memory disaggregation.  The same vector-sum
// workload on (a) kernel-swap-over-RDMA-style software far memory and
// (b) the CXL logical pool, plus the dependent-read latency gap.
#include <cstdio>

#include "baselines/logical.h"
#include "baselines/software_swap.h"
#include "common/table.h"

#include "args.h"
#include "trace_sidecar.h"

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  using namespace lmp;
  std::printf(
      "== Software (paging) vs hardware (CXL load/store) disaggregation "
      "==\n");
  TablePrinter table({"Vector", "Link", "Software GB/s", "Logical GB/s",
                      "Hardware gain"});
  for (const auto& link :
       {fabric::LinkProfile::Link0(), fabric::LinkProfile::Link1()}) {
    for (const Bytes gib : {24ull, 64ull, 96ull}) {
      baselines::VectorSumParams params;
      params.vector_bytes = GiB(gib);
      params.repetitions = 5;
      baselines::SoftwareSwapDeployment swap(link);
      baselines::LogicalDeployment logical(link);
      auto sw = swap.RunVectorSum(params);
      auto hw = logical.RunVectorSum(params);
      LMP_CHECK(sw.ok() && hw.ok());
      table.AddRow({std::to_string(gib) + " GiB", link.name,
                    TablePrinter::Num(sw->avg_bandwidth_gbps),
                    TablePrinter::Num(hw->avg_bandwidth_gbps),
                    TablePrinter::Num(hw->avg_bandwidth_gbps /
                                          sw->avg_bandwidth_gbps,
                                      2) +
                        "x"});
    }
  }
  table.Print();

  baselines::SoftwareSwapDeployment swap(fabric::LinkProfile::Link0());
  std::printf(
      "\nDependent 64B read latency: resident %.0f ns, swapped %.0f ns "
      "(%.0fx)\n"
      "CXL turns the fault path into a load: remote reads cost %.0f ns\n"
      "instead — the paper's case for hardware disaggregation (Section "
      "2.1).\n",
      swap.ResidentReadLatency(), swap.SwappedReadLatency(),
      swap.SwappedReadLatency() / swap.ResidentReadLatency(),
      fabric::LinkProfile::Link0().LoadedLatency(0));
  sidecar.Flush();
  return 0;
}
