// Control-plane bench (§5 "Sizing the shared regions", closed-loop): a
// demand shift mid-run — the tenant traffic moves from server 0 to server
// 1 while server 0's own application grows and wants its memory back.
//
//   * closed-loop: lmp::ctrl re-estimates demand every 5ms, re-solves the
//     sizing optimization, drains server 0's stranded frames to peers
//     (priced as DMA flows), lands the deferred shrink, and the migrator
//     moves the hot working set next to the new consumer.  The observed
//     local fraction recovers to within a small tolerance of what a fresh
//     offline solve of the *final* demand achieves.
//   * static: the t=0 layout is frozen (the paper's one-shot sizing);
//     after the shift every tenant access is remote and server 0's grown
//     application is stuck behind pool frames it cannot reclaim.
//   * physical pool: nothing to control — pooled data lives on the box, so
//     the local fraction is 0 before and after the shift by construction
//     (reported analytically; there is no sizing lever to simulate).
//
// The crash variants replay the same shift with server 3 crashing
// mid-epoch and recovering 40ms later; the chaos listener triggers
// out-of-band re-solves so capacity leaves and rejoins the plan without
// waiting for the next period.
//
// Deterministic: pure sim time, no RNG — stdout, --trace-out and
// --metrics-out are byte-identical across runs.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/table.h"
#include "common/trace.h"
#include "core/pool_manager.h"
#include "ctrl/controller.h"
#include "ctrl/slo_ledger.h"
#include "fabric/topology.h"
#include "obs/time_series.h"
#include "sim/fluid.h"

#include "args.h"
#include "trace_sidecar.h"

namespace {

using namespace lmp;

constexpr int kServers = 4;
constexpr Bytes kServerMem = MiB(64);
constexpr Bytes kFrame = KiB(64);
constexpr int kBuffers = 12;
constexpr Bytes kBufferBytes = MiB(2);

constexpr SimTime kTick = Milliseconds(2);
constexpr SimTime kShift = Milliseconds(80);
constexpr SimTime kEnd = Milliseconds(300);

struct Scenario {
  std::string label;
  bool closed_loop = true;
  bool crash = false;
};

struct Outcome {
  double local_fraction = 0;   // observed at kEnd, traffic-weighted
  double fresh_optimum = 0;    // LocalFraction of a fresh solve at kEnd
  ctrl::ControllerStats stats; // zero-initialised when no controller ran
};

// One tick of tenant traffic from `accessor`: touch every buffer (feeding
// the hotness tracker) and price any remote span as a DMA flow.
void Touch(sim::FluidSimulator& sim, fabric::Topology& topo,
           core::PoolManager& manager,
           const std::vector<core::BufferId>& buffers,
           cluster::ServerId accessor) {
  for (const core::BufferId buf : buffers) {
    auto spans = manager.Spans(buf, 0, kBufferBytes);
    if (!spans.ok()) continue;  // crashed home: tenant skips this tick
    for (const core::LocatedSpan& span : *spans) {
      manager.access_tracker().RecordAccess(
          span.segment, accessor, static_cast<double>(span.bytes),
          sim.now());
      if (span.location.is_pool()) {
        sim.StartFlow(static_cast<double>(span.bytes),
                      topo.DmaPoolPath(accessor),
                      [&sim](sim::FlowId f, SimTime) {
                        (void)sim.ReleaseRecord(f);
                      });
      } else if (span.location.server != accessor) {
        sim.StartFlow(static_cast<double>(span.bytes),
                      topo.DmaRemotePath(accessor, span.location.server),
                      [&sim](sim::FlowId f, SimTime) {
                        (void)sim.ReleaseRecord(f);
                      });
      }
    }
  }
}

// `keep` receives the scenario's time-series recorder (when requested) so
// its samples survive this function's simulator.
Outcome Run(const Scenario& scenario, trace::TraceCollector* trace,
            bool want_series,
            std::vector<std::unique_ptr<obs::TimeSeriesRecorder>>* keep) {
  sim::FluidSimulator sim;
  // Flow durations (tenant DMA + drains) land in the global registry's
  // "fluid.flow_duration_ns" histogram — visible only via --metrics-out.
  sim.set_metrics(&MetricsRegistry::Global());
  cluster::ClusterConfig config;
  config.num_servers = kServers;
  config.server_total_memory = kServerMem;
  config.server_shared_memory = kServerMem;
  config.frame_size = kFrame;
  config.with_backing = true;
  auto topo = fabric::Topology::MakeLogical(&sim, kServers,
                                            fabric::LinkProfile::Link1());
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  // Phase traffic must outlive a few ticks but clear within a phase, so
  // the dominant accessor follows the shift.
  manager.access_tracker().set_half_life(Milliseconds(50));

  if (trace != nullptr) {
    trace->BeginProcess(scenario.label);
    trace->set_clock([&sim] { return sim.now(); });
    sim.set_trace(trace);
    manager.set_trace(trace);
  }

  chaos::FaultInjector injector(chaos::FaultInjector::Bindings{
      .sim = &sim, .topology = &topo, .manager = &manager});
  if (trace != nullptr) injector.set_trace(trace);
  if (scenario.crash) {
    chaos::FaultPlan plan;
    plan.CrashAt(Milliseconds(120), 3).RecoverAt(Milliseconds(160), 3);
    LMP_CHECK_OK(injector.SchedulePlan(plan));
  }

  // The tenant working set, produced on server 0.
  std::vector<core::BufferId> buffers;
  for (int i = 0; i < kBuffers; ++i) {
    auto buf = manager.Allocate(kBufferBytes, 0);
    LMP_CHECK(buf.ok());
    buffers.push_back(*buf);
  }

  ctrl::ControllerConfig ctrl_config;
  ctrl_config.period = Milliseconds(5);
  ctrl_config.min_step = MiB(1);
  ctrl_config.cooldown = Milliseconds(10);
  ctrl_config.horizon = kEnd;
  ctrl_config.estimator.time_constant = Milliseconds(10);
  // Size regions 25% above measured demand: the slack is what lets the
  // last stranded segment land next to its consumer instead of ping-
  // ponging through a packed region.
  ctrl_config.estimator.headroom_factor = 1.25;
  ctrl::SizingController controller(
      ctrl::SizingController::Bindings{.sim = &sim,
                                       .manager = &manager,
                                       .topology = &topo,
                                       .injector = &injector},
      ctrl_config);
  for (int s = 0; s < kServers; ++s) {
    controller.estimator().SetPrivateFloor(static_cast<cluster::ServerId>(s),
                                           MiB(8));
  }
  if (trace != nullptr) controller.set_trace(trace);
  if (scenario.closed_loop) controller.Start();

  // Opt-in telemetry sampling (--series-out=): snapshot controller and
  // fabric state every tick on the sim's own timer wheel.  The probes read
  // simulation state only, so the sidecar is byte-identical across runs.
  std::unique_ptr<obs::TimeSeriesRecorder> recorder;
  if (want_series) {
    obs::TimeSeriesRecorder::Config rc;
    rc.interval = kTick;
    rc.horizon = kEnd;
    rc.prefix = scenario.label + "/";
    recorder = std::make_unique<obs::TimeSeriesRecorder>(&sim, rc);
    recorder->AddGauge("local_fraction", [&controller, &sim] {
      return controller.estimator().ObservedLocalFraction(sim.now());
    });
    recorder->AddGauge("pending_drains", [&controller] {
      return static_cast<double>(controller.pending_drains());
    });
    recorder->AddCounter("ctrl.epochs", [&controller] {
      return controller.stats().epochs;
    });
    recorder->AddCounter("ctrl.resize_bytes", [&controller] {
      return controller.stats().resize_bytes;
    });
    for (int s = 0; s < kServers; ++s) {
      recorder->AddGauge("util.s" + std::to_string(s) + ".port",
                         [&sim, &topo, s] {
                           return sim.Utilization(topo.port(
                               static_cast<fabric::ServerIndex>(s)));
                         });
    }
    recorder->Start();
  }

  // Tenant ticks: server 0 until the shift, server 1 after.
  for (SimTime t = 0; t < kEnd; t += kTick) {
    sim.ScheduleAt(t, [&, t](SimTime now) {
      const cluster::ServerId accessor = now < kShift ? 0 : 1;
      Touch(sim, topo, manager, buffers, accessor);
      (void)t;
    });
  }
  // The shift: server 0's own application grows and wants its DRAM back.
  sim.ScheduleAt(kShift, [&](SimTime) {
    controller.estimator().SetPrivateFloor(0, MiB(48));
  });

  sim.Run();

  if (recorder != nullptr) keep->push_back(std::move(recorder));

  Outcome out;
  out.local_fraction = controller.estimator().ObservedLocalFraction(kEnd);
  out.fresh_optimum =
      core::SizingOptimizer::Solve(cluster,
                                   controller.estimator().Estimate(kEnd))
          .LocalFraction();
  if (scenario.closed_loop) out.stats = controller.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  lmp::bench::TraceSidecar sidecar(lmp::bench::Args::Parse(argc, argv));
  ctrl::SloLedger* slo = sidecar.slo_ledger();
  std::vector<std::unique_ptr<obs::TimeSeriesRecorder>> recorders;
  std::printf(
      "== Control plane: demand shift (tenant 0 -> 1, app 0 grows) at "
      "t=80ms ==\n");
  lmp::TablePrinter table({"Scenario", "Local frac", "Fresh solve",
                           "Epochs", "Grows", "Shrinks", "Drains",
                           "Drained MiB", "OOB solves"});
  const std::vector<Scenario> scenarios = {
      {"logical closed-loop", true, false},
      {"logical closed-loop + crash", true, true},
      {"logical static", false, false},
      {"logical static + crash", false, true},
  };
  for (const Scenario& s : scenarios) {
    const Outcome out =
        Run(s, sidecar.collector(), sidecar.wants_series(), &recorders);
    if (slo != nullptr) {
      // Each scenario is one tenant: the SLO is holding half the traffic
      // local through the shift, which only the closed loop manages.
      ctrl::SloTargets targets;
      targets.local_fraction_floor = 0.5;
      slo->Register(s.label, targets);
      slo->RecordLocalFraction(s.label, out.local_fraction);
    }
    table.AddRow(
        {s.label, lmp::TablePrinter::Num(out.local_fraction, 3),
         lmp::TablePrinter::Num(out.fresh_optimum, 3),
         std::to_string(out.stats.epochs), std::to_string(out.stats.grows),
         std::to_string(out.stats.shrinks),
         std::to_string(out.stats.drains_completed),
         lmp::TablePrinter::Num(
             static_cast<double>(out.stats.drain_bytes) / lmp::kMiB, 1),
         std::to_string(out.stats.oob_resolves)});
  }
  // Physical pool, for contrast: pooled data lives on the box, every
  // tenant access crosses the fabric before AND after the shift, and there
  // is no per-server sizing lever for a controller to actuate — the local
  // fraction is 0 by construction (Section 4.1).
  table.AddRow({"physical pool (fixed)", lmp::TablePrinter::Num(0.0, 3),
                "-", "-", "-", "-", "-", "-", "-"});
  if (slo != nullptr) {
    ctrl::SloTargets targets;
    targets.local_fraction_floor = 0.5;
    slo->Register("physical pool (fixed)", targets);
    slo->RecordLocalFraction("physical pool (fixed)", 0.0);
  }
  for (const auto& rec : recorders) sidecar.AddSeriesRecorder(rec.get());
  table.Print();
  std::printf(
      "\nClosed-loop sizing follows the shift: the estimator re-attributes\n"
      "demand to server 1, the solver shrinks server 0 (drained, priced as\n"
      "DMA flows) and grows server 1, and migration moves the hot set next\n"
      "to its consumer — so the observed local fraction lands near the\n"
      "fresh-solve optimum.  The static layout strands the working set\n"
      "remotely; the physical pool has no sizing lever at all (Section 5).\n");
  sidecar.Flush();
  return 0;
}
