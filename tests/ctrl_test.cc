// Tests for the lmp::ctrl control plane: demand estimation (attribution +
// EWMA smoothing), closed-loop sizing convergence to a fixed point,
// drain-backed shrinks that land after their priced flows retire, and the
// admission controller's admit/queue/reject/preempt/promote lifecycle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/pool_manager.h"
#include "core/sizing.h"
#include "ctrl/admission.h"
#include "ctrl/controller.h"
#include "ctrl/demand_estimator.h"
#include "sim/fluid.h"

namespace lmp::ctrl {
namespace {

cluster::ClusterConfig Config(Bytes per_server = MiB(8)) {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = per_server;
  config.server_shared_memory = per_server;
  config.frame_size = KiB(64);
  config.with_backing = true;
  return config;
}

// ---------------------------------------------------------- DemandEstimator

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() : cluster_(Config()), manager_(&cluster_) {
    manager_.access_tracker().set_half_life(Milliseconds(50));
  }
  cluster::Cluster cluster_;
  core::PoolManager manager_;
};

TEST_F(EstimatorTest, UntouchedSegmentsAttributeToHome) {
  ASSERT_TRUE(manager_.Allocate(MiB(2), 1).ok());
  DemandEstimator est(&manager_);
  const auto demands = est.Estimate(0);
  ASSERT_EQ(demands.size(), 4u);
  EXPECT_EQ(demands[0].pool_demand, 0u);
  EXPECT_EQ(demands[1].pool_demand, MiB(2));
  EXPECT_EQ(demands[1].server, 1u);
}

TEST_F(EstimatorTest, AttributionFollowsDominantAccessor) {
  auto buf = manager_.Allocate(MiB(2), 1);
  ASSERT_TRUE(buf.ok());
  const std::vector<core::SegmentId> segments =
      manager_.Describe(*buf)->segments;
  for (const core::SegmentId seg : segments) {
    manager_.access_tracker().RecordAccess(seg, 2, double(MiB(16)), 0);
  }
  DemandEstimator est(&manager_);
  const auto demands = est.Estimate(0);
  EXPECT_EQ(demands[1].pool_demand, 0u);
  EXPECT_EQ(demands[2].pool_demand, MiB(2));
}

TEST_F(EstimatorTest, EwmaSmoothsDemandSteps) {
  EstimatorConfig config;
  config.time_constant = Milliseconds(10);
  DemandEstimator est(&manager_, config);
  ASSERT_TRUE(manager_.Allocate(MiB(2), 0).ok());
  // First observation seeds the EWMA directly.
  EXPECT_EQ(est.Estimate(0)[0].pool_demand, MiB(2));
  // Demand doubles; one time-constant later the estimate sits strictly
  // between the old and new raw values.
  ASSERT_TRUE(manager_.Allocate(MiB(2), 0).ok());
  const Bytes mid = est.Estimate(Milliseconds(10))[0].pool_demand;
  EXPECT_GT(mid, MiB(2));
  EXPECT_LT(mid, MiB(4));
  // Far in the future the estimate has converged to the new level.
  EXPECT_EQ(est.Estimate(Milliseconds(500))[0].pool_demand, MiB(4));
}

TEST_F(EstimatorTest, HeadroomFactorOverprovisions) {
  ASSERT_TRUE(manager_.Allocate(MiB(2), 0).ok());
  EstimatorConfig config;
  config.headroom_factor = 1.5;
  DemandEstimator est(&manager_, config);
  EXPECT_EQ(est.Estimate(0)[0].pool_demand, MiB(3));
}

TEST_F(EstimatorTest, LeaseDemandRidesOnTopAndClears) {
  DemandEstimator est(&manager_);
  est.SetLeaseDemand(2, MiB(1));
  EXPECT_EQ(est.Estimate(0)[2].pool_demand, MiB(1));
  est.ClearLeaseDemands();
  EXPECT_EQ(est.Estimate(Milliseconds(1000))[2].pool_demand, 0u);
}

TEST_F(EstimatorTest, ObservedLocalFractionWeighsTraffic) {
  DemandEstimator est(&manager_);
  EXPECT_DOUBLE_EQ(est.ObservedLocalFraction(0), 1.0);  // no traffic yet
  auto buf = manager_.Allocate(MiB(1), 0);
  ASSERT_TRUE(buf.ok());
  const auto seg = manager_.Describe(*buf)->segments[0];
  manager_.access_tracker().RecordAccess(seg, 0, 300.0, 0);  // local
  manager_.access_tracker().RecordAccess(seg, 1, 100.0, 0);  // remote
  EXPECT_DOUBLE_EQ(est.ObservedLocalFraction(0), 0.75);
}

// --------------------------------------------------------- SizingController

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : cluster_(Config()), manager_(&cluster_) {
    manager_.access_tracker().set_half_life(Milliseconds(50));
    manager_.set_metrics(&metrics_);
  }

  // Heap-built: the controller registers `this`-capturing callbacks at
  // construction, so it must never move.
  std::unique_ptr<SizingController> MakeController(ControllerConfig config) {
    auto controller = std::make_unique<SizingController>(
        SizingController::Bindings{.sim = &sim_, .manager = &manager_},
        config);
    controller->set_metrics(&metrics_);
    return controller;
  }

  sim::FluidSimulator sim_;
  cluster::Cluster cluster_;
  core::PoolManager manager_;
  MetricsRegistry metrics_;
};

TEST_F(ControllerTest, SteadyDemandConvergesToFixedPoint) {
  // Static demand: 4 MiB homed on server 0, 2 MiB on server 1.  The loop
  // must reach the solved sizes and then stop issuing resizes entirely.
  ASSERT_TRUE(manager_.Allocate(MiB(4), 0).ok());
  ASSERT_TRUE(manager_.Allocate(MiB(2), 1).ok());

  ControllerConfig config;
  config.period = Milliseconds(1);
  config.cooldown = Milliseconds(2);
  config.min_step = KiB(64);
  config.horizon = Milliseconds(20);
  config.estimator.time_constant = Milliseconds(2);
  auto controller = MakeController(config);
  controller->Start();
  sim_.Run();

  EXPECT_GE(controller->stats().epochs, 10u);
  EXPECT_EQ(cluster_.server(0).shared_bytes(), MiB(4));
  EXPECT_EQ(cluster_.server(1).shared_bytes(), MiB(2));
  EXPECT_EQ(cluster_.server(2).shared_bytes(), 0u);  // idle: no provision
  EXPECT_EQ(controller->stats().last_unmet_demand, 0u);
  EXPECT_EQ(controller->pending_drains(), 0);

  // Total actuation is bounded by the one-way distance from the initial
  // layout (4×8 MiB shared) to the fixed point — no oscillation allowed.
  EXPECT_LE(controller->stats().resize_bytes, MiB(32));

  // Fixed point: further epochs change nothing.
  const std::uint64_t grows = controller->stats().grows;
  const std::uint64_t shrinks = controller->stats().shrinks;
  const Bytes moved = controller->stats().resize_bytes;
  for (int i = 0; i < 3; ++i) controller->RunEpochNow();
  EXPECT_EQ(controller->stats().grows, grows);
  EXPECT_EQ(controller->stats().shrinks, shrinks);
  EXPECT_EQ(controller->stats().resize_bytes, moved);
}

TEST_F(ControllerTest, BlockedShrinkDrainsAndLands) {
  // 6 MiB lives on server 0 but every byte is wanted by server 1: the
  // solver zeroes server 0's region, the resident frames block the shrink,
  // and the drain must move them out and then land the deferred resize.
  std::vector<core::BufferId> buffers;
  for (int i = 0; i < 3; ++i) {
    auto buf = manager_.Allocate(MiB(2), 0);
    ASSERT_TRUE(buf.ok());
    buffers.push_back(*buf);
    std::vector<std::byte> data(MiB(2), std::byte{static_cast<unsigned char>(
                                            0x10 + i)});
    ASSERT_TRUE(manager_.Write(0, *buf, 0, data).ok());
    const std::vector<core::SegmentId> segments =
        manager_.Describe(*buf)->segments;
    for (const core::SegmentId seg : segments) {
      manager_.access_tracker().RecordAccess(seg, 1, double(MiB(32)), 0);
    }
  }

  ControllerConfig config;
  config.period = Milliseconds(1);
  config.cooldown = Milliseconds(2);
  config.min_step = KiB(64);
  config.horizon = Milliseconds(20);
  config.run_migration = false;  // only the drain may move segments
  config.estimator.time_constant = Milliseconds(1);
  auto controller = MakeController(config);
  controller->Start();
  sim_.Run();

  const ControllerStats& stats = controller->stats();
  EXPECT_GE(stats.shrinks_deferred, 1u);
  EXPECT_GE(stats.drains_started, 1u);
  EXPECT_GE(stats.drains_completed, 1u);
  EXPECT_EQ(stats.drains_failed, 0u);
  EXPECT_GE(stats.drain_bytes, MiB(6));
  EXPECT_EQ(controller->pending_drains(), 0);

  // The shrink landed and the working set now sits on its consumer.
  EXPECT_EQ(cluster_.server(0).shared_bytes(), 0u);
  EXPECT_EQ(cluster_.server(1).shared_bytes(), MiB(6));
  for (int i = 0; i < 3; ++i) {
    std::vector<std::byte> out(MiB(2));
    ASSERT_TRUE(manager_.Read(1, buffers[i], 0, out).ok());
    EXPECT_EQ(out[0], std::byte{static_cast<unsigned char>(0x10 + i)});
    auto frac = manager_.LocalFraction(buffers[i], 1);
    ASSERT_TRUE(frac.ok());
    EXPECT_DOUBLE_EQ(*frac, 1.0);
  }
  EXPECT_EQ(metrics_.Counter("ctrl.drains_completed"), stats.drains_completed);
}

TEST_F(ControllerTest, HysteresisIgnoresSubStepJitter) {
  ASSERT_TRUE(manager_.Allocate(MiB(4), 0).ok());
  ControllerConfig config;
  config.min_step = MiB(16);  // larger than any delta in this cluster
  auto controller = MakeController(config);
  controller->RunEpochNow();
  EXPECT_EQ(controller->stats().grows, 0u);
  EXPECT_EQ(controller->stats().shrinks, 0u);
  EXPECT_GE(controller->stats().skipped_small, 1u);
  EXPECT_EQ(cluster_.server(0).shared_bytes(), MiB(8));  // untouched
}

TEST_F(ControllerTest, CooldownDampsBackToBackResizes) {
  auto buf = manager_.Allocate(MiB(4), 0);
  ASSERT_TRUE(buf.ok());
  ControllerConfig config;
  config.cooldown = Milliseconds(1000);
  config.min_step = KiB(64);
  config.run_migration = false;
  auto controller = MakeController(config);
  controller->RunEpochNow();  // first epoch resizes freely
  const std::uint64_t first = controller->stats().grows +
                              controller->stats().shrinks;
  EXPECT_GE(first, 1u);
  // A millisecond later demand moves to server 1 — but every server is
  // still resting, so the epoch must not actuate.
  sim_.ScheduleAt(Milliseconds(1), [&](SimTime now) {
    const std::vector<core::SegmentId> segments =
        manager_.Describe(*buf)->segments;
    for (const core::SegmentId seg : segments) {
      manager_.access_tracker().RecordAccess(seg, 1, double(MiB(32)), now);
    }
    controller->RunEpochNow();
  });
  sim_.Run();
  EXPECT_EQ(controller->stats().grows + controller->stats().shrinks, first);
  EXPECT_GE(controller->stats().skipped_cooldown, 1u);
}

// ------------------------------------------------------ AdmissionController

TEST(AdmissionTest, AdmitQueueRejectLifecycle) {
  MetricsRegistry metrics;
  AdmissionController adm(MiB(10));
  adm.set_metrics(&metrics);

  EXPECT_FALSE(adm.RequestAdmission({"zero", 0, 1.0, {}}).ok());
  // Larger than the deployment can ever serve: rejected outright.
  EXPECT_TRUE(IsOutOfMemory(
      adm.RequestAdmission({"whale", MiB(11), 1.0, {}}).status()));
  EXPECT_EQ(adm.stats().rejected, 1u);

  auto a = adm.RequestAdmission({"a", MiB(4), 1.0, 0});
  auto b = adm.RequestAdmission({"b", MiB(5), 1.0, 1});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->state, LeaseState::kActive);
  EXPECT_EQ(b->state, LeaseState::kActive);
  EXPECT_EQ(adm.active_bytes(), MiB(9));
  EXPECT_EQ(adm.headroom(), MiB(1));

  // Fits the deployment but not the current headroom: parked.
  auto c = adm.RequestAdmission({"c", MiB(2), 1.0, 2});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->state, LeaseState::kQueued);
  EXPECT_EQ(adm.queued_bytes(), MiB(2));

  // Demand is attributed to each lease's preferred server.
  const auto by_server = adm.DemandByServer();
  ASSERT_EQ(by_server.size(), 2u);
  EXPECT_EQ(by_server[0], (std::pair<cluster::ServerId, Bytes>{0, MiB(4)}));
  EXPECT_EQ(by_server[1], (std::pair<cluster::ServerId, Bytes>{1, MiB(5)}));

  EXPECT_TRUE(IsNotFound(adm.Release(999)));
  ASSERT_TRUE(adm.Release(a->id).ok());
  // The freed 4 MiB promotes the queued lease.
  EXPECT_EQ(adm.Get(c->id)->state, LeaseState::kActive);
  EXPECT_EQ(adm.stats().promoted, 1u);
  EXPECT_TRUE(IsFailedPrecondition(adm.Release(a->id)));  // double release
}

TEST(AdmissionTest, AllocOptionsCarryTenantIdentity) {
  MetricsRegistry metrics;
  AdmissionController adm(MiB(10));
  adm.set_metrics(&metrics);

  TenantSpec spec;
  spec.name = "latency";
  spec.bytes = MiB(6);
  spec.priority = 2.0;
  spec.preferred = cluster::ServerId{3};
  spec.mobility = mem::Mobility::kPinned;
  auto lease = adm.RequestAdmission(spec);
  ASSERT_TRUE(lease.ok());
  ASSERT_EQ(lease->state, LeaseState::kActive);

  // Active lease: the attribution server, the per-tenant locus, and the
  // spec's mobility/priority flow into frame placement.
  const core::AllocOptions options = adm.AllocOptionsFor(*lease);
  EXPECT_EQ(options.preferred, std::optional<cluster::ServerId>(3));
  EXPECT_EQ(options.locus, "tenant/latency");
  EXPECT_EQ(options.mobility, mem::Mobility::kPinned);
  EXPECT_EQ(options.priority, 2.0);

  // Queued lease: no attribution point yet, the spec's preference stands.
  auto parked = adm.RequestAdmission({"batch", MiB(8), 1.0, {}});
  ASSERT_TRUE(parked.ok());
  ASSERT_EQ(parked->state, LeaseState::kQueued);
  const core::AllocOptions queued = adm.AllocOptionsFor(*parked);
  EXPECT_EQ(queued.preferred, std::nullopt);
  EXPECT_EQ(queued.locus, "tenant/batch");
  EXPECT_EQ(queued.mobility, mem::Mobility::kMobile);
}

TEST(AdmissionTest, HigherPriorityPreemptsCheapestActive) {
  MetricsRegistry metrics;
  AdmissionController adm(MiB(10));
  adm.set_metrics(&metrics);
  auto low_old = adm.RequestAdmission({"low-old", MiB(4), 1.0, {}});
  auto low_new = adm.RequestAdmission({"low-new", MiB(5), 1.0, {}});
  ASSERT_TRUE(low_old.ok() && low_new.ok());

  // 4 MiB at priority 5 needs 3 MiB beyond headroom; the most recently
  // admitted low-priority lease is the cheapest victim.
  auto high = adm.RequestAdmission({"high", MiB(4), 5.0, {}});
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high->state, LeaseState::kActive);
  EXPECT_EQ(adm.Get(low_new->id)->state, LeaseState::kQueued);
  EXPECT_EQ(adm.Get(low_old->id)->state, LeaseState::kActive);
  EXPECT_EQ(adm.stats().preempted, 1u);

  // Another priority-5 request may evict the remaining priority-1 lease
  // (still strictly lower) but never its priority-5 peer.
  auto peer = adm.RequestAdmission({"peer", MiB(4), 5.0, {}});
  ASSERT_TRUE(peer.ok());
  EXPECT_EQ(peer->state, LeaseState::kActive);
  EXPECT_EQ(adm.Get(low_old->id)->state, LeaseState::kQueued);
  EXPECT_EQ(adm.Get(high->id)->state, LeaseState::kActive);
  EXPECT_EQ(adm.stats().preempted, 2u);

  // With only priority-5 leases left active, an equal-priority request has
  // nothing to preempt: it queues.
  auto third = adm.RequestAdmission({"third", MiB(4), 5.0, {}});
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->state, LeaseState::kQueued);
  EXPECT_EQ(adm.stats().preempted, 2u);
}

TEST(AdmissionTest, CapacityShrinkShedsThenRegrowthPromotes) {
  MetricsRegistry metrics;
  AdmissionController adm(MiB(10));
  adm.set_metrics(&metrics);
  auto a = adm.RequestAdmission({"a", MiB(4), 2.0, {}});
  auto b = adm.RequestAdmission({"b", MiB(5), 1.0, {}});
  ASSERT_TRUE(a.ok() && b.ok());

  // A crash (or organic growth) shrinks lease capacity under the active
  // set: the lowest-priority lease is shed.
  adm.UpdateHeadroom(MiB(6), 0);
  EXPECT_EQ(adm.Get(a->id)->state, LeaseState::kActive);
  EXPECT_EQ(adm.Get(b->id)->state, LeaseState::kQueued);

  // Organic demand eats into headroom the same way.
  adm.UpdateHeadroom(MiB(10), MiB(7));
  EXPECT_EQ(adm.Get(a->id)->state, LeaseState::kQueued);

  // Capacity returns: both come back, highest priority first.
  adm.UpdateHeadroom(MiB(10), 0);
  EXPECT_EQ(adm.Get(a->id)->state, LeaseState::kActive);
  EXPECT_EQ(adm.Get(b->id)->state, LeaseState::kActive);
  EXPECT_GE(adm.stats().promoted, 2u);
}

TEST_F(ControllerTest, AdmissionLeasesFeedTheSizingLoop) {
  // A lease admitted through the controller's admission front door becomes
  // demand the next epoch actuates: the lease's server grows a region.
  ControllerConfig config;
  config.min_step = KiB(64);
  config.cooldown = 0;  // every epoch in this test runs at t=0
  auto controller = MakeController(config);
  // Fresh cluster: every region starts at 8 MiB, first epoch shrinks the
  // idle ones to zero.
  controller->RunEpochNow();
  EXPECT_EQ(cluster_.server(2).shared_bytes(), 0u);

  auto lease = controller->admission().RequestAdmission(
      {"tenant", MiB(3), 1.0, cluster::ServerId{2}});
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(lease->state, LeaseState::kActive);
  EXPECT_EQ(lease->server, 2u);
  controller->RunEpochNow();
  EXPECT_EQ(cluster_.server(2).shared_bytes(), MiB(3));

  // Release: the demand evaporates and the region is reclaimed.
  ASSERT_TRUE(controller->admission().Release(lease->id).ok());
  controller->RunEpochNow();
  EXPECT_EQ(cluster_.server(2).shared_bytes(), 0u);
}

}  // namespace
}  // namespace lmp::ctrl
