// Tests for the key=value Config parser and typed getters.
#include <gtest/gtest.h>

#include "common/config.h"

namespace lmp {
namespace {

TEST(ConfigTest, ParsesPairs) {
  auto config = Config::Parse("a=1 b=hello  c=2.5");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->size(), 3u);
  EXPECT_EQ(*config->GetInt("a"), 1);
  EXPECT_EQ(*config->GetString("b"), "hello");
  EXPECT_DOUBLE_EQ(*config->GetDouble("c"), 2.5);
}

TEST(ConfigTest, CommentsAndNewlines) {
  auto config = Config::Parse(
      "# header comment\n"
      "x=1  # trailing comment\n"
      "y=2\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(*config->GetInt("x"), 1);
  EXPECT_EQ(*config->GetInt("y"), 2);
  EXPECT_EQ(config->size(), 2u);
}

TEST(ConfigTest, MalformedTokenRejected) {
  EXPECT_FALSE(Config::Parse("novalue").ok());
  EXPECT_FALSE(Config::Parse("=5").ok());
}

TEST(ConfigTest, FromArgsSkipsArgv0) {
  const char* argv[] = {"prog", "k=v", "n=7"};
  auto config = Config::FromArgs(3, argv);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(*config->GetString("k"), "v");
  EXPECT_EQ(*config->GetInt("n"), 7);
}

TEST(ConfigTest, FallbacksWhenAbsent) {
  Config config;
  EXPECT_EQ(*config.GetInt("missing", 42), 42);
  EXPECT_EQ(*config.GetString("missing", "dflt"), "dflt");
  EXPECT_TRUE(*config.GetBool("missing", true));
  EXPECT_EQ(*config.GetBytes("missing", MiB(3)), MiB(3));
}

TEST(ConfigTest, MalformedValuesError) {
  auto config = Config::Parse("n=abc d=1.2.3 b=perhaps s=9q");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->GetInt("n").ok());
  EXPECT_FALSE(config->GetDouble("d").ok());
  EXPECT_FALSE(config->GetBool("b").ok());
  EXPECT_FALSE(config->GetBytes("s").ok());
}

TEST(ConfigTest, BoolSpellings) {
  auto config = Config::Parse("a=true b=0 c=YES d=off");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(*config->GetBool("a"));
  EXPECT_FALSE(*config->GetBool("b"));
  EXPECT_TRUE(*config->GetBool("c"));
  EXPECT_FALSE(*config->GetBool("d"));
}

TEST(ConfigTest, ByteSuffixes) {
  auto config = Config::Parse("a=64 b=4k c=16m d=2g");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(*config->GetBytes("a"), 64u);
  EXPECT_EQ(*config->GetBytes("b"), KiB(4));
  EXPECT_EQ(*config->GetBytes("c"), MiB(16));
  EXPECT_EQ(*config->GetBytes("d"), GiB(2));
}

TEST(ConfigTest, LaterSetWins) {
  auto config = Config::Parse("k=1 k=2");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(*config->GetInt("k"), 2);
}

TEST(ConfigTest, ToStringRoundTrips) {
  auto config = Config::Parse("b=2 a=1");
  ASSERT_TRUE(config.ok());
  auto reparsed = Config::Parse(config->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed->GetInt("a"), 1);
  EXPECT_EQ(*reparsed->GetInt("b"), 2);
}

}  // namespace
}  // namespace lmp
