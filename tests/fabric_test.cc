// Tests for fabric/: link profiles calibrated from Tables 1–2, the
// load-latency curve, and topology resource paths.
#include <gtest/gtest.h>

#include "fabric/link.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::fabric {
namespace {

// --- LinkProfile calibration (paper Tables 1 and 2) -------------------------

TEST(LinkProfileTest, Link0MatchesTable2) {
  const LinkProfile link = LinkProfile::Link0();
  EXPECT_DOUBLE_EQ(link.min_latency_ns, 163.0);
  EXPECT_DOUBLE_EQ(link.max_latency_ns, 418.0);
  EXPECT_DOUBLE_EQ(link.bandwidth, GBps(34.5));
}

TEST(LinkProfileTest, Link1MatchesTable2) {
  const LinkProfile link = LinkProfile::Link1();
  EXPECT_DOUBLE_EQ(link.min_latency_ns, 261.0);
  EXPECT_DOUBLE_EQ(link.max_latency_ns, 527.0);
  EXPECT_DOUBLE_EQ(link.bandwidth, GBps(21.0));
}

TEST(LinkProfileTest, CxlProfilesMatchTable1) {
  EXPECT_DOUBLE_EQ(LinkProfile::PondCxl().min_latency_ns, 280.0);
  EXPECT_DOUBLE_EQ(LinkProfile::PondCxl().bandwidth, GBps(31.0));
  EXPECT_DOUBLE_EQ(LinkProfile::FpgaCxl().min_latency_ns, 303.0);
  EXPECT_DOUBLE_EQ(LinkProfile::FpgaCxl().bandwidth, GBps(20.0));
  EXPECT_DOUBLE_EQ(LinkProfile::LocalDram().min_latency_ns, 82.0);
  EXPECT_DOUBLE_EQ(LinkProfile::LocalDram().bandwidth, GBps(97.0));
}

TEST(LinkProfileTest, LoadedLatencyEndpoints) {
  const LinkProfile link = LinkProfile::Link0();
  EXPECT_DOUBLE_EQ(link.LoadedLatency(0.0), 163.0);
  EXPECT_DOUBLE_EQ(link.LoadedLatency(1.0), 418.0);
}

TEST(LinkProfileTest, LoadedLatencyMonotoneAndConvex) {
  const LinkProfile link = LinkProfile::Link1();
  double prev = 0, prev_slope = 0;
  for (int i = 0; i <= 10; ++i) {
    const double u = i / 10.0;
    const double lat = link.LoadedLatency(u);
    EXPECT_GE(lat, prev);
    if (i >= 2) {
      const double slope = lat - prev;
      EXPECT_GE(slope, prev_slope - 1e-9);  // convex: slope non-decreasing
      prev_slope = slope;
    } else if (i == 1) {
      prev_slope = lat - prev;
    }
    prev = lat;
  }
}

TEST(LinkProfileTest, LoadedLatencyClampsOutOfRange) {
  const LinkProfile link = LinkProfile::Link0();
  EXPECT_DOUBLE_EQ(link.LoadedLatency(-1.0), 163.0);
  EXPECT_DOUBLE_EQ(link.LoadedLatency(2.0), 418.0);
}

// §4.3: the paper quotes max loaded remote latency as 2.8x (Link0) and
// 3.6x (Link1) max loaded local latency.  Check the derived local max is
// consistent with both quotes.
TEST(LinkProfileTest, LoadedLatencyRatiosMatchSection43) {
  const double local_max = LinkProfile::LocalDram().max_latency_ns;
  EXPECT_NEAR(LinkProfile::Link0().max_latency_ns / local_max, 2.8, 0.05);
  EXPECT_NEAR(LinkProfile::Link1().max_latency_ns / local_max, 3.6, 0.07);
}

// --- Topology -----------------------------------------------------------------

class TopologyTest : public ::testing::Test {
 protected:
  sim::FluidSimulator sim_;
};

TEST_F(TopologyTest, LogicalHasNoPool) {
  Topology t = Topology::MakeLogical(&sim_, 4, LinkProfile::Link0());
  EXPECT_EQ(t.kind(), TopologyKind::kLogical);
  EXPECT_EQ(t.num_servers(), 4);
  EXPECT_FALSE(t.has_pool());
}

TEST_F(TopologyTest, PhysicalHasPool) {
  Topology t = Topology::MakePhysical(&sim_, 4, LinkProfile::Link0());
  EXPECT_TRUE(t.has_pool());
  EXPECT_EQ(t.pool_port_count(), 1);
}

TEST_F(TopologyTest, LocalPathTouchesCoreAndDram) {
  Topology t = Topology::MakeLogical(&sim_, 2, LinkProfile::Link0());
  const auto path = t.LocalPath(0, 3);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], t.core(0, 3));
  EXPECT_EQ(path[1], t.dram(0));
}

TEST_F(TopologyTest, RemotePathCrossesBothPorts) {
  Topology t = Topology::MakeLogical(&sim_, 2, LinkProfile::Link0());
  const auto path = t.RemotePath(0, 1, 1);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], t.core(0, 1));
  EXPECT_EQ(path[1], t.port(0));
  EXPECT_EQ(path[2], t.port(1));
  EXPECT_EQ(path[3], t.dram(1));
}

TEST_F(TopologyTest, PoolPathUsesPoolResources) {
  Topology t = Topology::MakePhysical(&sim_, 4, LinkProfile::Link1());
  const auto path = t.PoolPath(2, 0);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], t.core(2, 0));
  EXPECT_EQ(path[1], t.port(2));
  EXPECT_EQ(path[2], t.pool_port(2));
  EXPECT_EQ(path[3], t.pool_dram());
}

TEST_F(TopologyTest, MultiPortPoolSpreadsByServer) {
  Topology t = Topology::MakePhysical(&sim_, 4, LinkProfile::Link0(), {}, 2);
  EXPECT_EQ(t.pool_port_count(), 2);
  EXPECT_EQ(t.pool_port(0), t.pool_port(2));  // wraps modulo port count
  EXPECT_NE(t.pool_port(0), t.pool_port(1));
}

TEST_F(TopologyTest, PortCapacityMatchesLink) {
  Topology t = Topology::MakeLogical(&sim_, 2, LinkProfile::Link1());
  EXPECT_DOUBLE_EQ(sim_.capacity(t.port(0)), GBps(21.0));
  EXPECT_DOUBLE_EQ(sim_.capacity(t.dram(0)), GBps(97.0));
}

TEST_F(TopologyTest, DmaPathsHaveNoCore) {
  Topology t = Topology::MakeLogical(&sim_, 2, LinkProfile::Link0());
  const auto path = t.DmaRemotePath(0, 1);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], t.port(0));
}

TEST_F(TopologyTest, UnloadedLatencyIsMinimum) {
  Topology t = Topology::MakeLogical(&sim_, 2, LinkProfile::Link0());
  EXPECT_NEAR(t.RemoteLoadedLatency(0, 1), 163.0, 1.0);
  EXPECT_NEAR(t.LocalLoadedLatency(0), 82.0, 1.0);
}

TEST_F(TopologyTest, LoadedLatencyRisesUnderTraffic) {
  Topology t = Topology::MakeLogical(&sim_, 2, LinkProfile::Link0());
  // Saturate the remote path for a while.
  for (int c = 0; c < 14; ++c) {
    sim_.StartFlow(1e9, t.RemotePath(0, c, 1));
  }
  sim_.Run();
  EXPECT_GT(t.RemoteLoadedLatency(0, 1), 300.0);  // near max under load
}

}  // namespace
}  // namespace lmp::fabric
