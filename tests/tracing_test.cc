// Tests for lmp::trace: Chrome trace_event JSON schema validity, per-track
// timestamp monotonicity, byte-determinism across identical runs, the
// null-collector fast path, and the metrics-export JSON.
//
// A minimal recursive-descent JSON parser (below) validates the output the
// way a consumer (chrome://tracing, Perfetto) would: the file must parse,
// and each event must carry the required fields with the right types.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "common/units.h"
#include "core/migration.h"
#include "core/pool_manager.h"
#include "core/replication.h"
#include "core/task_scheduler.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::trace {
namespace {

// --- Mini JSON parser ---------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  // Parses the full document; sets ok=false on any syntax error.
  JsonValue Parse(bool* ok) {
    JsonValue v = ParseValue();
    SkipWs();
    *ok = !failed_ && pos_ == s_.size();
    return v;
  }

 private:
  void Fail() { failed_ = true; }
  char Peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char Next() { return pos_ < s_.size() ? s_[pos_++] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (Peek() != c) {
      Fail();
      return false;
    }
    ++pos_;
    return true;
  }

  JsonValue ParseValue() {
    SkipWs();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue{ParseString()};
      case 't':
        return ParseLiteral("true", JsonValue{true});
      case 'f':
        return ParseLiteral("false", JsonValue{false});
      case 'n':
        return ParseLiteral("null", JsonValue{nullptr});
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseLiteral(std::string_view lit, JsonValue v) {
    if (s_.substr(pos_, lit.size()) != lit) {
      Fail();
      return JsonValue{nullptr};
    }
    pos_ += lit.size();
    return v;
  }

  std::string ParseString() {
    std::string out;
    if (!Consume('"')) return out;
    while (true) {
      const char c = Next();
      if (c == '\0') {
        Fail();
        return out;
      }
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = Next();
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = Next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                Fail();
                return out;
              }
            }
            out += static_cast<char>(code);  // BMP-below-0x80 is enough here
            break;
          }
          default:
            Fail();
            return out;
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (pos_ == start) {
      Fail();
      return JsonValue{nullptr};
    }
    return JsonValue{std::stod(std::string(s_.substr(start, pos_ - start)))};
  }

  JsonValue ParseObject() {
    JsonObject obj;
    if (!Consume('{')) return JsonValue{std::move(obj)};
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      if (failed_ || !Consume(':')) return JsonValue{std::move(obj)};
      obj.emplace(std::move(key), ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Consume('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue ParseArray() {
    JsonArray arr;
    if (!Consume('[')) return JsonValue{std::move(arr)};
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    while (true) {
      arr.push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Consume(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// --- Scenario: a small traced simulation ----------------------------------------

// Runs a migration workload with tracing attached and returns the trace
// JSON.  Deterministic: same calls, same sim time, every run.
std::string TracedMigrationRun() {
  TraceCollector collector;
  sim::FluidSimulator sim;
  auto topo =
      fabric::Topology::MakeLogical(&sim, 4, fabric::LinkProfile::Link1());
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(8);
  config.server_shared_memory = MiB(8);
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);

  collector.BeginProcess("tracing_test");
  collector.set_clock([&sim] { return sim.now(); });
  sim.set_trace(&collector);
  manager.set_trace(&collector);

  // A few flows with known paths.
  sim.StartFlow(1e6, {topo.core(0, 0), topo.dram(0)});
  sim.StartFlow(2e6, {topo.core(0, 1), topo.port(0), topo.port(1),
                      topo.dram(1)});
  sim.Run();

  // An allocation and a migration.
  auto buf = manager.Allocate(MiB(1), 1);
  EXPECT_TRUE(buf.ok());
  const auto seg = manager.Describe(*buf)->segments[0];
  manager.access_tracker().RecordAccess(seg, 0, MiB(4), sim.now());
  core::MigrationEngine engine(
      &manager, core::MigrationConfig{.dominance_threshold = 0.5,
                                      .benefit_factor = 0.0,
                                      .max_migrations_per_round = 4});
  EXPECT_TRUE(engine.RunOnce(sim.now(), nullptr).ok());

  // Link samples and shipped-task spans.
  topo.SampleUtilization(&collector);
  core::TaskScheduler sched(&sim, &topo, /*slots_per_server=*/2);
  sched.set_trace(&collector);
  EXPECT_TRUE(sched.Submit(core::ComputeTask{0, 1e6, 1000}).ok());
  EXPECT_TRUE(sched.Submit(core::ComputeTask{1, 0, 500}).ok());
  sched.Drain();

  return collector.ToChromeJson();
}

// --- Tests ----------------------------------------------------------------------

TEST(TracingTest, ChromeJsonParsesAndHasRequiredFields) {
  const std::string json = TracedMigrationRun();
  bool ok = false;
  JsonValue doc = JsonParser(json).Parse(&ok);
  ASSERT_TRUE(ok) << "trace JSON failed to parse";
  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.object().contains("traceEvents"));
  ASSERT_TRUE(doc.object().contains("displayTimeUnit"));

  const JsonArray& events = doc.object().at("traceEvents").array();
  ASSERT_GT(events.size(), 5u);
  for (const JsonValue& ev : events) {
    ASSERT_TRUE(ev.is_object());
    const JsonObject& obj = ev.object();
    ASSERT_TRUE(obj.contains("name"));
    ASSERT_TRUE(obj.contains("cat"));
    ASSERT_TRUE(obj.contains("ph"));
    ASSERT_TRUE(obj.contains("ts"));
    ASSERT_TRUE(obj.contains("pid"));
    ASSERT_TRUE(obj.contains("tid"));
    EXPECT_TRUE(obj.at("name").is_string());
    EXPECT_TRUE(obj.at("cat").is_string());
    EXPECT_TRUE(obj.at("ts").is_number());
    const std::string& ph = obj.at("ph").str();
    ASSERT_EQ(ph.size(), 1u);
    EXPECT_NE(std::string("BEiCM").find(ph[0]), std::string::npos)
        << "unexpected phase " << ph;
    if (ph == "i") {
      // Instant events need an explicit scope to render.
      ASSERT_TRUE(obj.contains("s"));
      EXPECT_EQ(obj.at("s").str(), "t");
    }
  }
}

TEST(TracingTest, TimestampsMonotonicPerTrack) {
  const std::string json = TracedMigrationRun();
  bool ok = false;
  JsonValue doc = JsonParser(json).Parse(&ok);
  ASSERT_TRUE(ok);
  std::map<std::pair<double, double>, double> last_ts;
  for (const JsonValue& ev : doc.object().at("traceEvents").array()) {
    const JsonObject& obj = ev.object();
    if (obj.at("ph").str() == "M") continue;  // metadata carries no time
    const auto key = std::make_pair(obj.at("pid").number(),
                                    obj.at("tid").number());
    const double ts = obj.at("ts").number();
    auto [it, inserted] = last_ts.emplace(key, ts);
    if (!inserted) {
      EXPECT_GE(ts, it->second)
          << "track (" << key.first << "," << key.second
          << ") went backwards";
      it->second = ts;
    }
    EXPECT_GE(ts, 0.0) << "sim timestamps are never negative";
  }
}

TEST(TracingTest, SpanBeginsAndEndsPairPerTrack) {
  const std::string json = TracedMigrationRun();
  bool ok = false;
  JsonValue doc = JsonParser(json).Parse(&ok);
  ASSERT_TRUE(ok);
  std::map<std::pair<double, double>, int> depth;
  bool saw_span = false;
  for (const JsonValue& ev : doc.object().at("traceEvents").array()) {
    const JsonObject& obj = ev.object();
    const std::string& ph = obj.at("ph").str();
    if (ph != "B" && ph != "E") continue;
    saw_span = true;
    const auto key = std::make_pair(obj.at("pid").number(),
                                    obj.at("tid").number());
    depth[key] += ph == "B" ? 1 : -1;
    EXPECT_GE(depth[key], 0) << "E before B on a track";
  }
  EXPECT_TRUE(saw_span);
  for (const auto& [key, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on track (" << key.first << ","
                    << key.second << ")";
  }
}

TEST(TracingTest, OutputIsByteDeterministic) {
  EXPECT_EQ(TracedMigrationRun(), TracedMigrationRun());
}

TEST(TracingTest, DisabledCollectorIsInert) {
  // No set_trace calls: same simulation, no events, identical sim results.
  auto run = [](TraceCollector* collector) {
    sim::FluidSimulator sim;
    auto topo = fabric::Topology::MakeLogical(&sim, 2,
                                              fabric::LinkProfile::Link1());
    if (collector != nullptr) sim.set_trace(collector);
    sim.StartFlow(1e6, {topo.core(0, 0), topo.dram(0)});
    sim.StartFlow(3e6, {topo.core(0, 1), topo.dram(0)});
    sim.Run();
    return sim.now();
  };
  TraceCollector collector;
  const SimTime traced = run(&collector);
  const SimTime untraced = run(nullptr);
  EXPECT_EQ(traced, untraced) << "tracing must not perturb simulation";
  EXPECT_GT(collector.event_count(), 0u);
}

TEST(TracingTest, ClockDrivesFunctionalLayerTimestamps) {
  TraceCollector collector;
  EXPECT_EQ(collector.now(), 0);  // no clock: harmless zero
  SimTime t = 42;
  collector.set_clock([&t] { return t; });
  EXPECT_EQ(collector.now(), 42);
  t = 43;
  EXPECT_EQ(collector.now(), 43);
  collector.set_clock({});
  EXPECT_EQ(collector.now(), 0);
}

TEST(TracingTest, ProcessesSeparateIndependentTimelines) {
  TraceCollector collector;
  collector.BeginProcess("first");
  collector.Instant(Category::kHarness, "a", 100);
  collector.BeginProcess("second");
  collector.Instant(Category::kHarness, "a", 5);  // restarts at earlier time

  bool ok = false;
  JsonValue doc = JsonParser(collector.ToChromeJson()).Parse(&ok);
  ASSERT_TRUE(ok);
  const JsonArray& events = doc.object().at("traceEvents").array();
  ASSERT_EQ(events.size(), 4u);
  // Two metadata events naming the processes, with distinct pids.
  EXPECT_EQ(events[0].object().at("ph").str(), "M");
  EXPECT_EQ(events[2].object().at("ph").str(), "M");
  EXPECT_NE(events[0].object().at("pid").number(),
            events[2].object().at("pid").number());
  // The instants inherit their process pid, so t=5 after t=100 is fine.
  EXPECT_EQ(events[1].object().at("pid").number(),
            events[0].object().at("pid").number());
  EXPECT_EQ(events[3].object().at("pid").number(),
            events[2].object().at("pid").number());
}

TEST(TracingTest, ArgStringsAreEscaped) {
  TraceCollector collector;
  collector.Instant(Category::kHarness, "weird \"name\"\n", 0,
                    {Arg("key\twith\ttabs", "value\\with\"stuff\n")});
  bool ok = false;
  JsonValue doc = JsonParser(collector.ToChromeJson()).Parse(&ok);
  ASSERT_TRUE(ok) << "escaping must keep the document parseable";
  const JsonObject& ev = doc.object().at("traceEvents").array()[0].object();
  EXPECT_EQ(ev.at("name").str(), "weird \"name\"\n");
  EXPECT_EQ(ev.at("args").object().at("key\twith\ttabs").str(),
            "value\\with\"stuff\n");
}

TEST(TracingTest, MetricsJsonContainsEveryRegisteredMetric) {
  MetricsRegistry registry;
  registry.Increment("lmp.alloc.count", 3);
  registry.Increment("lmp.migrate.bytes", 1024);
  registry.SetGauge("lmp.util", 0.375);
  registry.SetGauge("lmp.big", 1.5e300);

  bool ok = false;
  JsonValue doc = JsonParser(MetricsJson(registry)).Parse(&ok);
  ASSERT_TRUE(ok);
  const JsonObject& counters = doc.object().at("counters").object();
  const JsonObject& gauges = doc.object().at("gauges").object();
  ASSERT_EQ(counters.size(), 2u);
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(counters.at("lmp.alloc.count").number(), 3);
  EXPECT_EQ(counters.at("lmp.migrate.bytes").number(), 1024);
  EXPECT_DOUBLE_EQ(gauges.at("lmp.util").number(), 0.375);
  EXPECT_DOUBLE_EQ(gauges.at("lmp.big").number(), 1.5e300);
}

TEST(TracingTest, MetricsJsonFromTracedRunCoversPoolCounters) {
  // End-to-end: a PoolManager run against a private registry exports every
  // counter it incremented.
  MetricsRegistry registry;
  cluster::ClusterConfig config;
  config.num_servers = 2;
  config.server_total_memory = MiB(8);
  config.server_shared_memory = MiB(8);
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  manager.set_metrics(&registry);
  auto buf = manager.Allocate(MiB(1), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(manager.Free(*buf).ok());

  bool ok = false;
  JsonValue doc = JsonParser(MetricsJson(registry)).Parse(&ok);
  ASSERT_TRUE(ok);
  const JsonObject& counters = doc.object().at("counters").object();
  EXPECT_EQ(counters.size(), registry.counters().size());
  for (const auto& [name, value] : registry.counters()) {
    ASSERT_TRUE(counters.contains(name)) << name << " missing from export";
    EXPECT_EQ(counters.at(name).number(), static_cast<double>(value));
  }
}

TEST(TracingTest, WriteFilesRoundTrip) {
  TraceCollector collector;
  collector.BeginProcess("files");
  collector.Instant(Category::kHarness, "mark", 1000);
  const std::string trace_path =
      testing::TempDir() + "/tracing_test_trace.json";
  ASSERT_TRUE(collector.WriteChromeJson(trace_path).ok());

  MetricsRegistry registry;
  registry.Increment("c", 7);
  const std::string metrics_path =
      testing::TempDir() + "/tracing_test_metrics.json";
  ASSERT_TRUE(WriteMetricsJson(registry, metrics_path).ok());

  std::FILE* f = std::fopen(trace_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 16, '\0');
  const std::size_t n = std::fread(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  contents.resize(n);
  EXPECT_EQ(contents, collector.ToChromeJson());

  EXPECT_FALSE(collector.WriteChromeJson("/nonexistent-dir/x.json").ok());
}

}  // namespace
}  // namespace lmp::trace
