// Tests for MigrationEngine: candidate selection, benefit gating, caps,
// and end-to-end hot-data locality improvement.
#include <gtest/gtest.h>

#include "core/migration.h"
#include "core/pool_manager.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : cluster_(Config()), manager_(&cluster_) {}

  SegmentId AllocOn(cluster::ServerId server, Bytes size = KiB(64)) {
    auto buf = manager_.Allocate(size, server);
    EXPECT_TRUE(buf.ok());
    return manager_.Describe(*buf)->segments[0];
  }

  cluster::Cluster cluster_;
  PoolManager manager_;
};

TEST_F(MigrationTest, MigratesSegmentTowardDominantRemoteAccessor) {
  const SegmentId seg = AllocOn(0);
  // Server 2 hammers it remotely, far beyond the copy cost.
  manager_.access_tracker().RecordAccess(seg, 2, double(MiB(2)), 0);
  MigrationEngine engine(&manager_);
  std::vector<MigrationRecord> records;
  const auto stats = engine.RunOnce(0, &records);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->migrated, 1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].segment, seg);
  EXPECT_EQ(records[0].to.server, 2u);
  EXPECT_EQ(manager_.segment_map().Find(seg)->home.server, 2u);
}

TEST_F(MigrationTest, LocalDominantAccessorIsNotACandidate) {
  const SegmentId seg = AllocOn(1);
  manager_.access_tracker().RecordAccess(seg, 1, double(MiB(2)), 0);
  MigrationEngine engine(&manager_);
  const auto stats = engine.RunOnce(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->candidates, 0);
  EXPECT_EQ(manager_.segment_map().Find(seg)->home.server, 1u);
}

TEST_F(MigrationTest, InsufficientTrafficDoesNotPayCopyCost) {
  const SegmentId seg = AllocOn(0, KiB(64));
  // Remote traffic below benefit_factor * size.
  manager_.access_tracker().RecordAccess(seg, 2, double(KiB(32)), 0);
  MigrationEngine engine(&manager_);
  EXPECT_EQ(engine.RunOnce(0)->candidates, 0);
}

TEST_F(MigrationTest, NonDominantSharesDoNotTrigger) {
  const SegmentId seg = AllocOn(0);
  // Three servers split traffic evenly: nobody dominates.
  for (cluster::ServerId s : {1u, 2u, 3u}) {
    manager_.access_tracker().RecordAccess(seg, s, double(MiB(1)), 0);
  }
  MigrationConfig config;
  config.dominance_threshold = 0.55;
  MigrationEngine engine(&manager_, config);
  EXPECT_EQ(engine.RunOnce(0)->candidates, 0);
}

TEST_F(MigrationTest, RoundCapLimitsMigrations) {
  MigrationConfig config;
  config.max_migrations_per_round = 2;
  MigrationEngine engine(&manager_, config);
  for (int i = 0; i < 5; ++i) {
    const SegmentId seg = AllocOn(0, KiB(16));
    manager_.access_tracker().RecordAccess(seg, 1, double(MiB(1)), 0);
  }
  const auto stats = engine.RunOnce(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->candidates, 5);
  EXPECT_EQ(stats->migrated, 2);
}

TEST_F(MigrationTest, HighestNetBenefitMovesFirst) {
  MigrationConfig config;
  config.max_migrations_per_round = 1;
  MigrationEngine engine(&manager_, config);
  const SegmentId cool = AllocOn(0, KiB(16));
  const SegmentId hot = AllocOn(0, KiB(16));
  manager_.access_tracker().RecordAccess(cool, 1, double(KiB(64)), 0);
  manager_.access_tracker().RecordAccess(hot, 1, double(MiB(1)), 0);
  std::vector<MigrationRecord> records;
  ASSERT_TRUE(engine.RunOnce(0, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].segment, hot);
}

TEST_F(MigrationTest, SkipsWhenDestinationFull) {
  // Fill server 1 completely.
  ASSERT_TRUE(manager_.Allocate(MiB(4), 1).ok());
  const SegmentId seg = AllocOn(0);
  manager_.access_tracker().RecordAccess(seg, 1, double(MiB(2)), 0);
  MigrationEngine engine(&manager_);
  const auto stats = engine.RunOnce(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->migrated, 0);
  EXPECT_EQ(stats->skipped_capacity, 1);
}

TEST_F(MigrationTest, MigrationPreservesDataEndToEnd) {
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  std::vector<std::byte> in(KiB(32), std::byte{0x5A});
  ASSERT_TRUE(manager_.Write(0, *buf, 0, in).ok());
  const SegmentId seg = manager_.Describe(*buf)->segments[0];
  manager_.access_tracker().RecordAccess(seg, 3, double(MiB(2)), 0);
  MigrationEngine engine(&manager_);
  ASSERT_EQ(engine.RunOnce(0)->migrated, 1);
  std::vector<std::byte> out(KiB(32));
  ASSERT_TRUE(manager_.Read(3, *buf, 0, out).ok());
  EXPECT_EQ(in, out);
}

TEST_F(MigrationTest, RepeatedRoundsConverge) {
  const SegmentId seg = AllocOn(0);
  manager_.access_tracker().RecordAccess(seg, 2, double(MiB(2)), 0);
  MigrationEngine engine(&manager_);
  EXPECT_EQ(engine.RunOnce(0)->migrated, 1);
  // Traffic profile unchanged; segment already at its dominant accessor.
  EXPECT_EQ(engine.RunOnce(0)->migrated, 0);
}

}  // namespace
}  // namespace lmp::core
