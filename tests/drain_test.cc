// Tests for LmpRuntime::DrainServer — the migrate-then-shrink path that
// makes blocked sizing shrinks eventually land.
#include <gtest/gtest.h>

#include "core/runtime.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

class DrainTest : public ::testing::Test {
 protected:
  DrainTest()
      : cluster_(Config()), manager_(&cluster_), runtime_(&manager_) {}
  cluster::Cluster cluster_;
  PoolManager manager_;
  LmpRuntime runtime_;
};

TEST_F(DrainTest, EmptyServerShrinksWithoutMigration) {
  auto records = runtime_.DrainServer(1, MiB(1), 0);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  EXPECT_EQ(cluster_.server(1).shared_bytes(), MiB(1));
}

TEST_F(DrainTest, ResidentSegmentsMigrateOutThenShrink) {
  // Fill server 0's region so frames reach the tail.
  auto buf = manager_.Allocate(MiB(3), 0);
  ASSERT_TRUE(buf.ok());
  std::vector<std::byte> data(MiB(3), std::byte{0x42});
  ASSERT_TRUE(manager_.Write(0, *buf, 0, data).ok());

  auto records = runtime_.DrainServer(0, MiB(1), 0);
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_FALSE(records->empty());
  EXPECT_EQ(cluster_.server(0).shared_bytes(), MiB(1));

  // Data intact at its new home; same buffer id.
  std::vector<std::byte> out(MiB(3));
  ASSERT_TRUE(manager_.Read(1, *buf, 0, out).ok());
  EXPECT_EQ(out, data);
  auto frac = manager_.LocalFraction(*buf, 0);
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(*frac, 0.0);  // fully evicted
}

TEST_F(DrainTest, ColdSegmentsLeaveBeforeHotOnes) {
  // Two segments on server 0; make the second hot.
  auto cold = manager_.Allocate(MiB(1), 0);
  auto hot = manager_.Allocate(MiB(1), 0);
  ASSERT_TRUE(cold.ok() && hot.ok());
  const auto hot_seg = manager_.Describe(*hot)->segments[0];
  manager_.access_tracker().RecordAccess(hot_seg, 0, double(MiB(8)), 0);

  // Target still fits one of them: only the blocked tail must leave; the
  // hot segment occupies the tail (allocated second), but among evicted
  // candidates cold-first ordering governs when both block.
  auto records = runtime_.DrainServer(0, MiB(1), 0);
  ASSERT_TRUE(records.ok());
  // The hot segment sat in the tail, so it had to go regardless; verify
  // capacity met and everything still readable.
  EXPECT_EQ(cluster_.server(0).shared_bytes(), MiB(1));
  std::vector<std::byte> out(16);
  EXPECT_TRUE(manager_.Read(0, *cold, 0, out).ok());
  EXPECT_TRUE(manager_.Read(0, *hot, 0, out).ok());
}

TEST_F(DrainTest, PinnedResidentsBlockTheDrain) {
  AllocOptions pinned;
  pinned.preferred = cluster::ServerId{0};
  pinned.locus = "tenant/latency";
  pinned.mobility = mem::Mobility::kPinned;
  auto buf = manager_.Allocate(MiB(2), pinned);
  ASSERT_TRUE(buf.ok());
  // The pinned resident must not be selected as a drain victim, and with
  // nothing else to move the drain cannot reach its target.
  auto records = runtime_.DrainServer(0, MiB(1), 0);
  EXPECT_TRUE(IsFailedPrecondition(records.status()));
}

TEST_F(DrainTest, FailsWhenPeersFull) {
  // Fill every peer completely.
  for (int s = 1; s < 4; ++s) {
    ASSERT_TRUE(manager_.Allocate(MiB(4),
                                  static_cast<cluster::ServerId>(s)).ok());
  }
  auto buf = manager_.Allocate(MiB(3), 0);
  ASSERT_TRUE(buf.ok());
  auto records = runtime_.DrainServer(0, MiB(1), 0);
  EXPECT_FALSE(records.ok());
  EXPECT_TRUE(IsOutOfMemory(records.status()));
  // Server keeps its old size; data untouched.
  EXPECT_EQ(cluster_.server(0).shared_bytes(), MiB(4));
}

TEST_F(DrainTest, SizingDeferThenDrainConverges) {
  // The full loop: optimizer shrinks a loaded server, Apply defers, the
  // drain completes it.
  auto buf = manager_.Allocate(MiB(3), 2);
  ASSERT_TRUE(buf.ok());
  SizingPlan plan;
  plan.entries.push_back({2, MiB(1), 0, 0});
  const SizingApplyResult deferred = SizingOptimizer::Apply(cluster_, plan);
  EXPECT_EQ(deferred.deferred_count(), 1);
  EXPECT_EQ(deferred.deferred[0].server, 2u);
  EXPECT_GT(deferred.deferred[0].stranded_bytes, 0u);
  EXPECT_EQ(cluster_.server(2).shared_bytes(), MiB(4));

  ASSERT_TRUE(runtime_.DrainServer(2, MiB(1), 0).ok());
  EXPECT_EQ(cluster_.server(2).shared_bytes(), MiB(1));
  EXPECT_EQ(SizingOptimizer::Apply(cluster_, plan).deferred_count(), 0);
}

}  // namespace
}  // namespace lmp::core
