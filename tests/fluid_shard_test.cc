// Determinism tests for the sharded parallel solver.  The contract is
// strict: shard hints and worker threads are a pure wall-clock
// optimization, so the same seeded scenario run at 1, 2, and 8 worker
// threads must produce byte-identical trace JSON, byte-identical metrics
// JSON, and bit-identical final simulated state.  A second test pins the
// partitioning semantics themselves (closed shards become independent
// tasks; a cross-shard flow funnels its shards to the spill path).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "common/units.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::sim {
namespace {

constexpr int kServers = 48;
constexpr int kServersPerRack = 16;
constexpr int kWaves = 3;

struct RunOutput {
  std::string trace_json;
  std::string metrics_json;
  SimTime end_time = 0;
  std::vector<double> bytes_served;
  std::vector<SimTime> flow_ends;
  std::uint64_t parallel_solves = 0;
};

// Three waves of mostly rack-local flows (batched arrivals), a sprinkle of
// cross-rack traffic to keep the spill path hot, and a mid-run capacity
// change.  Everything is driven by a fixed-seed Rng, so two invocations
// see the same schedule and only `threads` differs.
RunOutput RunScenario(int threads) {
  trace::TraceCollector trace;
  FluidSimulator sim;
  sim.set_threads(threads);
  // Every incremental solve is additionally checked bit-exactly against a
  // full progressive-filling pass, sharded or not.
  sim.set_solver_crosscheck(true);
  trace.BeginProcess("shard-determinism");
  trace.set_clock([&sim] { return sim.now(); });
  sim.set_trace(&trace);

  auto topo = fabric::Topology::MakeLogical(&sim, kServers,
                                            fabric::LinkProfile::Link1());
  topo.AssignRackShards(kServersPerRack);

  Rng rng(2024);
  std::vector<FlowId> flows;
  for (int w = 0; w < kWaves; ++w) {
    sim.ScheduleAt(w * Microseconds(200), [&](SimTime) {
      sim.BeginBatch();
      for (int s = 0; s < kServers; ++s) {
        const auto src = static_cast<fabric::ServerIndex>(s);
        for (int i = 0; i < 3; ++i) {
          const double bytes =
              static_cast<double>(rng.NextInRange(1, 50)) * 1e5;
          const double weight = static_cast<double>(rng.NextInRange(1, 4));
          // ~1 in 8 flows crosses racks and opens both endpoints' shards.
          const auto dst = static_cast<fabric::ServerIndex>(
              rng.NextBernoulli(0.125)
                  ? (s + kServersPerRack) % kServers
                  : (s / kServersPerRack) * kServersPerRack +
                        (s + 1) % kServersPerRack);
          if (dst == src) continue;
          flows.push_back(sim.StartFlow(
              bytes, topo.RemotePath(src, i, dst), nullptr, weight));
        }
      }
      sim.EndBatch();
    });
  }
  sim.ScheduleAt(Microseconds(300), [&](SimTime) {
    ASSERT_TRUE(sim.SetCapacity(topo.port(7), GBps(4)).ok());
  });
  sim.Run();

  RunOutput out;
  out.end_time = sim.now();
  out.parallel_solves = sim.solver_stats().parallel_solves;
  for (int s = 0; s < kServers; ++s) {
    const auto idx = static_cast<fabric::ServerIndex>(s);
    out.bytes_served.push_back(sim.BytesServed(topo.port(idx)));
    out.bytes_served.push_back(sim.BytesServed(topo.dram(idx)));
  }
  for (FlowId f : flows) {
    out.flow_ends.push_back(sim.record(f)->end);
  }
  out.trace_json = trace.ToChromeJson();
  MetricsRegistry registry;
  sim.ExportSolverMetrics(registry);
  out.metrics_json = trace::MetricsJson(registry);
  return out;
}

TEST(FluidShardTest, OutputIsByteIdenticalAcrossThreadCounts) {
  const RunOutput t1 = RunScenario(1);
  // The scenario must actually exercise the parallel partition, or this
  // test proves nothing.
  EXPECT_GT(t1.parallel_solves, 0u);
  for (const int threads : {2, 8}) {
    const RunOutput tn = RunScenario(threads);
    EXPECT_EQ(t1.trace_json, tn.trace_json) << "threads=" << threads;
    EXPECT_EQ(t1.metrics_json, tn.metrics_json) << "threads=" << threads;
    EXPECT_EQ(t1.end_time, tn.end_time) << "threads=" << threads;
    EXPECT_EQ(t1.bytes_served, tn.bytes_served) << "threads=" << threads;
    EXPECT_EQ(t1.flow_ends, tn.flow_ends) << "threads=" << threads;
    EXPECT_EQ(t1.parallel_solves, tn.parallel_solves)
        << "threads=" << threads;
  }
}

TEST(FluidShardTest, ClosedShardsSolveAsIndependentTasks) {
  FluidSimulator sim;
  sim.set_threads(2);
  sim.set_solver_crosscheck(true);
  const ResourceId a0 = sim.AddResource("a0", GBps(10));
  const ResourceId a1 = sim.AddResource("a1", GBps(10));
  const ResourceId b0 = sim.AddResource("b0", GBps(10));
  const ResourceId b1 = sim.AddResource("b1", GBps(10));
  sim.SetResourceShard(a0, 0);
  sim.SetResourceShard(a1, 0);
  sim.SetResourceShard(b0, 1);
  sim.SetResourceShard(b1, 1);

  // One intra-shard flow per shard: both shards are closed, so the solve
  // partitions into two independent tasks.
  sim.BeginBatch();
  const FlowId fa = sim.StartFlow(1e12, {a0, a1});
  const FlowId fb = sim.StartFlow(1e12, {b0, b1});
  sim.EndBatch();
  const SolverStats after_closed = sim.solver_stats();
  EXPECT_EQ(after_closed.recompute_calls, 1u);
  EXPECT_EQ(after_closed.shard_tasks, 2u);
  EXPECT_EQ(after_closed.parallel_solves, 1u);
  EXPECT_NEAR(sim.FlowRate(fa), GBps(10), 1);
  EXPECT_NEAR(sim.FlowRate(fb), GBps(10), 1);

  // A cross-shard flow opens both shards: everything funnels into the one
  // sequential spill task and the solve is no longer parallel.
  const FlowId fx = sim.StartFlow(1e12, {a1, b0});
  const SolverStats after_cross = sim.solver_stats();
  EXPECT_EQ(after_cross.recompute_calls, 2u);
  EXPECT_EQ(after_cross.shard_tasks - after_closed.shard_tasks, 1u);
  EXPECT_EQ(after_cross.parallel_solves, after_closed.parallel_solves);
  EXPECT_NEAR(sim.FlowRate(fa), GBps(5), 1);
  EXPECT_NEAR(sim.FlowRate(fx), GBps(5), 1);
  sim.Run();
  EXPECT_EQ(sim.active_flow_count(), 0u);
}

}  // namespace
}  // namespace lmp::sim
