// Tests for PoolManager: allocation/free, span resolution, real-data
// read/write, hotness recording, migration (address stability + data
// integrity), and crash handling.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "core/hotness.h"
#include "core/pool_manager.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig BackedConfig() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

class PoolManagerTest : public ::testing::Test {
 protected:
  PoolManagerTest() : cluster_(BackedConfig()), manager_(&cluster_) {}

  std::vector<std::byte> Pattern(std::size_t n, int seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>((i * 31 + seed) & 0xFF);
    }
    return v;
  }

  cluster::Cluster cluster_;
  PoolManager manager_;
};

TEST_F(PoolManagerTest, AllocateSingleSegmentLocal) {
  auto buf = manager_.Allocate(KiB(64), 1);
  ASSERT_TRUE(buf.ok());
  auto info = manager_.Describe(*buf);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, KiB(64));
  EXPECT_EQ(info->segments.size(), 1u);
  auto frac = manager_.LocalFraction(*buf, 1);
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(*frac, 1.0);
}

TEST_F(PoolManagerTest, ZeroByteAllocationRejected) {
  EXPECT_FALSE(manager_.Allocate(0, 0).ok());
}

TEST_F(PoolManagerTest, LargeAllocationSpansServers) {
  auto buf = manager_.Allocate(MiB(10), 0);
  ASSERT_TRUE(buf.ok());
  auto info = manager_.Describe(*buf);
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->segments.size(), 3u);  // 4 MiB per server
  auto frac = manager_.LocalFraction(*buf, 0);
  ASSERT_TRUE(frac.ok());
  EXPECT_NEAR(*frac, 0.4, 0.01);  // 4 of 10 MiB local
}

TEST_F(PoolManagerTest, PoolExhaustionIsOutOfMemory) {
  auto buf = manager_.Allocate(MiB(17), 0);  // pool holds 16
  EXPECT_FALSE(buf.ok());
  EXPECT_TRUE(IsOutOfMemory(buf.status()));
  // Failure must not leak: full capacity still allocatable.
  EXPECT_TRUE(manager_.Allocate(MiB(16), 0).ok());
}

TEST_F(PoolManagerTest, FreeReturnsCapacity) {
  const Bytes before = cluster_.PooledFreeBytes();
  auto buf = manager_.Allocate(MiB(2), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_LT(cluster_.PooledFreeBytes(), before);
  ASSERT_TRUE(manager_.Free(*buf).ok());
  EXPECT_EQ(cluster_.PooledFreeBytes(), before);
  EXPECT_FALSE(manager_.Free(*buf).ok());  // double free
}

TEST_F(PoolManagerTest, SpansCoverRangeInOrder) {
  auto buf = manager_.Allocate(MiB(10), 0);
  ASSERT_TRUE(buf.ok());
  auto spans = manager_.Spans(*buf, 0, MiB(10));
  ASSERT_TRUE(spans.ok());
  Bytes total = 0;
  for (const auto& s : *spans) total += s.bytes;
  EXPECT_EQ(total, MiB(10));
  // First span is the local (preferred) chunk.
  EXPECT_EQ((*spans)[0].location.server, 0u);
}

TEST_F(PoolManagerTest, SubRangeSpansRespectOffsets) {
  auto buf = manager_.Allocate(MiB(8), 0);  // 4 MiB on server0 + 4 elsewhere
  ASSERT_TRUE(buf.ok());
  auto spans = manager_.Spans(*buf, MiB(3), MiB(2));
  ASSERT_TRUE(spans.ok());
  ASSERT_EQ(spans->size(), 2u);  // crosses the segment boundary at 4 MiB
  EXPECT_EQ((*spans)[0].bytes, MiB(1));
  EXPECT_EQ((*spans)[1].bytes, MiB(1));
}

TEST_F(PoolManagerTest, SpansRangeValidation) {
  auto buf = manager_.Allocate(KiB(8), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_FALSE(manager_.Spans(*buf, KiB(4), KiB(8)).ok());
  EXPECT_FALSE(manager_.Spans(999, 0, 1).ok());
}

TEST_F(PoolManagerTest, ReadWriteRoundTrip) {
  auto buf = manager_.Allocate(KiB(64), 2);
  ASSERT_TRUE(buf.ok());
  const auto in = Pattern(KiB(64), 7);
  ASSERT_TRUE(manager_.Write(2, *buf, 0, in).ok());
  std::vector<std::byte> out(KiB(64));
  ASSERT_TRUE(manager_.Read(2, *buf, 0, out).ok());
  EXPECT_EQ(in, out);
}

TEST_F(PoolManagerTest, ReadWriteAcrossSegmentBoundary) {
  auto buf = manager_.Allocate(MiB(8), 0);  // spans two servers
  ASSERT_TRUE(buf.ok());
  const auto in = Pattern(KiB(16), 9);
  const Bytes offset = MiB(4) - KiB(8);  // straddles the boundary
  ASSERT_TRUE(manager_.Write(0, *buf, offset, in).ok());
  std::vector<std::byte> out(KiB(16));
  ASSERT_TRUE(manager_.Read(0, *buf, offset, out).ok());
  EXPECT_EQ(in, out);
}

TEST_F(PoolManagerTest, AccessesRecordedInHotnessProfile) {
  auto buf = manager_.Allocate(KiB(16), 3);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(manager_.Touch(1, *buf, 0, KiB(16), Seconds(1)).ok());
  auto info = manager_.Describe(*buf);
  ASSERT_TRUE(info.ok());
  const SegmentId seg = info->segments[0];
  EXPECT_NEAR(manager_.access_tracker().AccessedBytes(seg, 1, Seconds(1)),
              double(KiB(16)), 1.0);
  EXPECT_EQ(manager_.access_tracker().AccessedBytes(seg, 2, Seconds(1)), 0);
}

TEST_F(PoolManagerTest, MigrationPreservesDataAndAddress) {
  auto buf = manager_.Allocate(KiB(64), 0);
  ASSERT_TRUE(buf.ok());
  const auto in = Pattern(KiB(64), 3);
  ASSERT_TRUE(manager_.Write(0, *buf, 0, in).ok());

  auto info = manager_.Describe(*buf);
  ASSERT_TRUE(info.ok());
  const SegmentId seg = info->segments[0];
  const std::uint64_t gen_before =
      manager_.segment_map().Find(seg)->generation;

  auto rec = manager_.MigrateSegment(seg, 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->from.server, 0u);
  EXPECT_EQ(rec->to.server, 2u);
  EXPECT_EQ(rec->bytes, KiB(64));

  // Same buffer id, same logical layout, new home, bumped generation.
  EXPECT_EQ(manager_.segment_map().Find(seg)->home.server, 2u);
  EXPECT_EQ(manager_.segment_map().Find(seg)->generation, gen_before + 1);
  auto frac = manager_.LocalFraction(*buf, 2);
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(*frac, 1.0);

  // Data survived the move byte-for-byte.
  std::vector<std::byte> out(KiB(64));
  ASSERT_TRUE(manager_.Read(1, *buf, 0, out).ok());
  EXPECT_EQ(in, out);
}

TEST_F(PoolManagerTest, MigrationFreesSourceCapacity) {
  auto buf = manager_.Allocate(MiB(2), 0);
  ASSERT_TRUE(buf.ok());
  const Bytes free0_before =
      cluster_.server(0).shared_allocator().free_bytes();
  auto info = manager_.Describe(*buf);
  ASSERT_TRUE(manager_.MigrateSegment(info->segments[0], 1).ok());
  EXPECT_EQ(cluster_.server(0).shared_allocator().free_bytes(),
            free0_before + MiB(2));
}

TEST_F(PoolManagerTest, MigrationToSelfRejected) {
  auto buf = manager_.Allocate(KiB(4), 0);
  ASSERT_TRUE(buf.ok());
  auto info = manager_.Describe(*buf);
  EXPECT_FALSE(manager_.MigrateSegment(info->segments[0], 0).ok());
}

TEST_F(PoolManagerTest, MigrationToFullServerFails) {
  auto filler = manager_.Allocate(MiB(4), 1);  // server 1 now full
  ASSERT_TRUE(filler.ok());
  auto buf = manager_.Allocate(MiB(1), 0);
  ASSERT_TRUE(buf.ok());
  auto info = manager_.Describe(*buf);
  auto rec = manager_.MigrateSegment(info->segments[0], 1);
  EXPECT_FALSE(rec.ok());
  EXPECT_TRUE(IsOutOfMemory(rec.status()));
  // Source unharmed.
  auto frac = manager_.LocalFraction(*buf, 0);
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(*frac, 1.0);
}

TEST_F(PoolManagerTest, MigrationToCrashedServerRejected) {
  auto buf = manager_.Allocate(KiB(4), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(cluster_.server(3).Crash().ok());
  auto info = manager_.Describe(*buf);
  EXPECT_TRUE(IsUnavailable(
      manager_.MigrateSegment(info->segments[0], 3).status()));
}

TEST_F(PoolManagerTest, CrashLosesUnreplicatedSegments) {
  auto buf = manager_.Allocate(MiB(1), 2);
  ASSERT_TRUE(buf.ok());
  auto info = manager_.Describe(*buf);
  const auto lost = manager_.OnServerCrash(2);
  ASSERT_TRUE(lost.ok());
  ASSERT_EQ(lost->size(), 1u);
  EXPECT_EQ((*lost)[0], info->segments[0]);
  // Reads now surface data loss.
  std::vector<std::byte> out(16);
  EXPECT_EQ(manager_.Read(0, *buf, 0, out).code(), StatusCode::kDataLoss);
  EXPECT_EQ(manager_.Spans(*buf, 0, MiB(1)).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(PoolManagerTest, CrashSparesOtherServersSegments) {
  auto safe = manager_.Allocate(MiB(1), 0);
  auto doomed = manager_.Allocate(MiB(1), 2);
  ASSERT_TRUE(safe.ok() && doomed.ok());
  ASSERT_TRUE(manager_.OnServerCrash(2).ok());
  std::vector<std::byte> out(16);
  EXPECT_TRUE(manager_.Read(0, *safe, 0, out).ok());
}

TEST_F(PoolManagerTest, FreeLostBufferStillReleasesMetadata) {
  auto buf = manager_.Allocate(MiB(1), 2);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(manager_.OnServerCrash(2).ok());
  EXPECT_TRUE(manager_.Free(*buf).ok());
  EXPECT_FALSE(manager_.Describe(*buf).ok());
}

TEST_F(PoolManagerTest, TranslatorsPerServerShareTheMap) {
  auto buf = manager_.Allocate(KiB(4), 1);
  ASSERT_TRUE(buf.ok());
  auto info = manager_.Describe(*buf);
  auto& tr0 = manager_.translator(0);
  auto& tr1 = manager_.translator(1);
  ASSERT_TRUE(tr0.TranslateHome(info->segments[0]).ok());
  EXPECT_EQ(tr0.stats().misses, 1u);
  EXPECT_EQ(tr1.stats().misses, 0u);  // independent caches
  EXPECT_EQ(&manager_.translator(0), &tr0);  // stable identity
}

TEST_F(PoolManagerTest, TouchWithoutBackingStillTracksHotness) {
  cluster::ClusterConfig config = BackedConfig();
  config.with_backing = false;
  cluster::Cluster bare(config);
  PoolManager manager(&bare);
  auto buf = manager.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(manager.Touch(3, *buf, 0, KiB(16), 0).ok());
  // Read requires backing.
  std::vector<std::byte> out(16);
  EXPECT_EQ(manager.Read(3, *buf, 0, out).code(),
            StatusCode::kFailedPrecondition);
}


TEST_F(PoolManagerTest, CompactSegmentRehomesBelowTheCut) {
  // Two 1 MiB buffers; freeing the first leaves a hole at the bottom and
  // the second stranded above the 1 MiB shrink cut.
  auto hole = manager_.Allocate(MiB(1), 0);
  auto buf = manager_.Allocate(MiB(1), 0);
  ASSERT_TRUE(hole.ok() && buf.ok());
  const auto data = Pattern(MiB(1), 7);
  ASSERT_TRUE(manager_.Write(0, *buf, 0, data).ok());
  ASSERT_TRUE(manager_.Free(*hole).ok());

  const SegmentId seg = manager_.Describe(*buf)->segments[0];
  // The shrink is blocked while frames sit above the cut...
  EXPECT_TRUE(IsFailedPrecondition(cluster_.server(0).ResizeShared(MiB(1))));
  auto rec = manager_.CompactSegment(seg, MiB(1));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_GT(rec->bytes, 0u);
  EXPECT_EQ(rec->from.server, 0u);
  EXPECT_EQ(rec->to.server, 0u);
  // ...and lands afterwards, data intact at the same buffer address.
  ASSERT_TRUE(cluster_.server(0).ResizeShared(MiB(1)).ok());
  std::vector<std::byte> out(MiB(1));
  ASSERT_TRUE(manager_.Read(0, *buf, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(PoolManagerTest, AllocOptionsPlaceTenantCohorts) {
  AllocOptions mobile_opts;
  mobile_opts.preferred = cluster::ServerId{1};
  mobile_opts.locus = "tenant/a";
  AllocOptions pinned_opts;
  pinned_opts.preferred = cluster::ServerId{1};
  pinned_opts.locus = "tenant/b";
  pinned_opts.mobility = mem::Mobility::kPinned;
  pinned_opts.priority = 2.0;

  auto a = manager_.Allocate(MiB(1), mobile_opts);
  auto b = manager_.Allocate(MiB(1), pinned_opts);
  ASSERT_TRUE(a.ok() && b.ok());
  const SegmentInfo* sa =
      manager_.segment_map().Find(manager_.Describe(*a)->segments[0]);
  const SegmentInfo* sb =
      manager_.segment_map().Find(manager_.Describe(*b)->segments[0]);
  ASSERT_TRUE(sa != nullptr && sb != nullptr);
  EXPECT_EQ(sa->locus, "tenant/a");
  EXPECT_EQ(sa->mobility, mem::Mobility::kMobile);
  EXPECT_EQ(sb->locus, "tenant/b");
  EXPECT_EQ(sb->mobility, mem::Mobility::kPinned);
  EXPECT_EQ(sb->priority, 2.0);
  EXPECT_EQ(sa->home.server, 1u);
  EXPECT_EQ(sb->home.server, 1u);

  // The cohorts pack outward on the home allocator: 4 MiB shared at 4 KiB
  // frames = 1024 frames; the mobile MiB sits at the bottom, the pinned
  // MiB at the top, nothing in the middle.
  const auto& alloc = cluster_.server(1).shared_allocator();
  EXPECT_TRUE(alloc.IsAllocated(0));
  EXPECT_TRUE(alloc.IsAllocated(255));
  EXPECT_FALSE(alloc.IsAllocated(512));
  EXPECT_TRUE(alloc.IsAllocated(768));
  EXPECT_TRUE(alloc.IsAllocated(1023));

  // Compaction is for mobile data; a pinned cohort refuses to move.
  auto rec = manager_.CompactSegment(sb->id, MiB(4));
  EXPECT_TRUE(IsFailedPrecondition(rec.status()));
}

TEST_F(PoolManagerTest, CompactSegmentIsNoOpWhenAlreadyBelow) {
  auto buf = manager_.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  auto rec =
      manager_.CompactSegment(manager_.Describe(*buf)->segments[0], MiB(1));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->bytes, 0u);
}

TEST_F(PoolManagerTest, CompactSegmentFailsWithoutRoomBelow) {
  auto a = manager_.Allocate(MiB(2), 0);  // packs 0..2 MiB solid
  auto b = manager_.Allocate(MiB(1), 0);  // 2..3 MiB
  ASSERT_TRUE(a.ok() && b.ok());
  auto rec =
      manager_.CompactSegment(manager_.Describe(*b)->segments[0], MiB(2));
  EXPECT_TRUE(IsOutOfMemory(rec.status()));
}

}  // namespace
}  // namespace lmp::core
