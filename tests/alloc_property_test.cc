// Property/fuzz tests for the run-indexed FrameAllocator: random
// Allocate/Free/Resize/bounded-allocation sequences are cross-checked
// against a reference bitmap model (the pre-run-index implementation's
// semantics, kept here as the executable spec), and locus placement is
// checked against per-frame first-fit models plus the packing invariant
// (mobile cohorts stay below pinned cohorts).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "mem/frame_allocator.h"

namespace lmp::mem {
namespace {

// Request builders the tests use; keeps call sites one-liners without
// tripping -Wmissing-field-initializers on the skipped optional fields.
AllocRequest InLocus(std::uint64_t frames, LocusId locus) {
  AllocRequest request;
  request.frames = frames;
  request.locus = locus;
  return request;
}

// The executable spec: a per-frame bitmap with the exact semantics of the
// original FrameAllocator (next-fit scan with a wrapping hint, first-fit
// below a bound) plus per-frame models of the locus policies (first-fit
// ascending for mobile, descending-from-the-top for pinned).
class ReferenceBitmap {
 public:
  ReferenceBitmap(std::uint64_t num_frames)
      : bitmap_(num_frames, false), free_frames_(num_frames) {}

  std::optional<std::vector<FrameRun>> NextFit(std::uint64_t frames) {
    if (frames == 0) return std::vector<FrameRun>{};
    if (frames > free_frames_) return std::nullopt;
    std::vector<FrameRun> runs;
    std::uint64_t remaining = frames;
    const std::uint64_t n = bitmap_.size();
    std::uint64_t scanned = 0;
    FrameNumber pos = hint_;
    while (remaining > 0 && scanned < n) {
      if (!bitmap_[pos]) {
        Grab(runs, pos);
        --remaining;
      }
      pos = (pos + 1) % n;
      ++scanned;
    }
    hint_ = pos;
    return runs;
  }

  std::optional<std::vector<FrameRun>> FitBelow(std::uint64_t frames,
                                                FrameNumber bound) {
    if (frames == 0) return std::vector<FrameRun>{};
    const FrameNumber limit = std::min<FrameNumber>(bound, bitmap_.size());
    std::uint64_t below = 0;
    for (FrameNumber f = 0; f < limit; ++f) below += bitmap_[f] ? 0 : 1;
    if (below < frames) return std::nullopt;
    std::vector<FrameRun> runs;
    std::uint64_t remaining = frames;
    for (FrameNumber pos = 0; pos < limit && remaining > 0; ++pos) {
      if (bitmap_[pos]) continue;
      Grab(runs, pos);
      --remaining;
    }
    return runs;
  }

  // Mobile-locus model: the lowest `frames` free frames.
  std::optional<std::vector<FrameRun>> FitLow(std::uint64_t frames) {
    return FitBelow(frames, bitmap_.size());
  }

  // Pinned-locus model: the highest `frames` free frames, taken in
  // descending order (runs coalesce downward).
  std::optional<std::vector<FrameRun>> FitHigh(std::uint64_t frames) {
    if (frames == 0) return std::vector<FrameRun>{};
    if (frames > free_frames_) return std::nullopt;
    std::vector<FrameRun> runs;
    std::uint64_t remaining = frames;
    for (FrameNumber pos = bitmap_.size(); pos > 0 && remaining > 0; --pos) {
      const FrameNumber f = pos - 1;
      if (bitmap_[f]) continue;
      if (!runs.empty() && runs.back().first == f + 1) {
        --runs.back().first;
        ++runs.back().count;
      } else {
        runs.push_back(FrameRun{f, 1});
      }
      bitmap_[f] = true;
      --free_frames_;
      --remaining;
    }
    return runs;
  }

  bool Free(const std::vector<FrameRun>& runs) {
    for (const FrameRun& r : runs) {
      if (r.end() > bitmap_.size()) return false;
      for (FrameNumber f = r.first; f < r.end(); ++f) {
        if (!bitmap_[f]) return false;
      }
    }
    // Overlap within the request: count frames twice.
    std::vector<FrameRun> sorted = runs;
    std::sort(sorted.begin(), sorted.end(),
              [](const FrameRun& a, const FrameRun& b) {
                return a.first < b.first;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i].count > 0 && sorted[i - 1].count > 0 &&
          sorted[i].first < sorted[i - 1].end()) {
        return false;
      }
    }
    for (const FrameRun& r : runs) {
      for (FrameNumber f = r.first; f < r.end(); ++f) {
        bitmap_[f] = false;
        ++free_frames_;
      }
    }
    return true;
  }

  bool Resize(std::uint64_t new_num_frames) {
    const std::uint64_t old = bitmap_.size();
    if (new_num_frames >= old) {
      bitmap_.resize(new_num_frames, false);
      free_frames_ += new_num_frames - old;
      return true;
    }
    for (FrameNumber f = new_num_frames; f < old; ++f) {
      if (bitmap_[f]) return false;
    }
    bitmap_.resize(new_num_frames);
    free_frames_ -= old - new_num_frames;
    if (hint_ >= new_num_frames) hint_ = 0;
    return true;
  }

  std::uint64_t free_frames() const { return free_frames_; }
  bool IsAllocated(FrameNumber f) const {
    return f < bitmap_.size() && bitmap_[f];
  }
  FrameNumber HighestAllocatedEnd() const {
    for (FrameNumber f = bitmap_.size(); f > 0; --f) {
      if (bitmap_[f - 1]) return f;
    }
    return 0;
  }
  std::uint64_t AllocatedFramesFrom(FrameNumber from) const {
    std::uint64_t count = 0;
    for (FrameNumber f = from; f < bitmap_.size(); ++f) {
      if (bitmap_[f]) ++count;
    }
    return count;
  }
  std::uint64_t num_frames() const { return bitmap_.size(); }

 private:
  void Grab(std::vector<FrameRun>& runs, FrameNumber pos) {
    if (!runs.empty() && runs.back().end() == pos) {
      ++runs.back().count;
    } else {
      runs.push_back(FrameRun{pos, 1});
    }
    bitmap_[pos] = true;
    --free_frames_;
  }

  std::vector<bool> bitmap_;
  std::uint64_t free_frames_;
  FrameNumber hint_ = 0;
};

// Canonical form for comparisons where take order is policy-internal
// (pinned returns descending runs): sorted by start frame.
std::vector<FrameRun> Sorted(std::vector<FrameRun> runs) {
  std::sort(runs.begin(), runs.end(),
            [](const FrameRun& a, const FrameRun& b) {
              return a.first < b.first;
            });
  return runs;
}

void CheckAgreement(const FrameAllocator& alloc, const ReferenceBitmap& model,
                    Rng& rng) {
  ASSERT_EQ(alloc.num_frames(), model.num_frames());
  ASSERT_EQ(alloc.free_frames(), model.free_frames());
  ASSERT_EQ(alloc.HighestAllocatedEnd(), model.HighestAllocatedEnd());
  const FrameNumber probe =
      model.num_frames() == 0 ? 0 : rng.NextBounded(model.num_frames() + 4);
  ASSERT_EQ(alloc.IsAllocated(probe), model.IsAllocated(probe));
  ASSERT_EQ(alloc.AllocatedFramesFrom(probe),
            model.AllocatedFramesFrom(probe));
}

// Random Allocate/Free/Resize/bounded sequences on the default locus: the
// new allocator must be frame-for-frame identical to the bitmap spec,
// including run order and the next-fit hint trajectory.
TEST(AllocPropertyTest, DefaultLocusMatchesBitmapSpecExactly) {
  Rng rng(0xA110C8);
  FrameAllocator alloc(512, KiB(4));
  ReferenceBitmap model(512);
  std::vector<std::vector<FrameRun>> live;

  for (int step = 0; step < 6000; ++step) {
    const std::uint64_t dice = rng.NextBounded(10);
    if (dice < 4) {  // plain allocation
      const std::uint64_t frames = rng.NextBounded(48) + 1;
      auto got = alloc.Allocate(AllocRequest::Of(frames));
      auto want = model.NextFit(frames);
      ASSERT_EQ(got.ok(), want.has_value()) << "step " << step;
      if (got.ok()) {
        ASSERT_EQ(*got, *want) << "step " << step;
        live.push_back(*got);
      }
    } else if (dice < 6) {  // bounded allocation
      const std::uint64_t frames = rng.NextBounded(24) + 1;
      const FrameNumber bound = rng.NextBounded(alloc.num_frames() + 8);
      auto got = alloc.Allocate(AllocRequest::Below(frames, bound));
      auto want = model.FitBelow(frames, bound);
      ASSERT_EQ(got.ok(), want.has_value()) << "step " << step;
      if (got.ok()) {
        ASSERT_EQ(*got, *want) << "step " << step;
        live.push_back(*got);
      }
    } else if (dice < 9) {  // free a random live allocation
      if (live.empty()) continue;
      const std::size_t pick = rng.NextBounded(live.size());
      ASSERT_TRUE(alloc.Free(live[pick]).ok()) << "step " << step;
      ASSERT_TRUE(model.Free(live[pick])) << "step " << step;
      live[pick] = live.back();
      live.pop_back();
    } else {  // resize (grow or shrink attempt)
      const std::uint64_t target = rng.NextBounded(768) + 1;
      const bool got = alloc.Resize(target).ok();
      const bool want = model.Resize(target);
      ASSERT_EQ(got, want) << "step " << step << " resize " << target;
    }
    CheckAgreement(alloc, model, rng);
  }
}

// Unbuffered loci against the per-frame models: mobile takes the lowest
// free frames, pinned the highest.
TEST(AllocPropertyTest, LocusPlacementMatchesFirstFitModels) {
  Rng rng(0x10C05);
  FrameAllocator alloc(512, KiB(4));
  ReferenceBitmap model(512);
  const LocusId mobile = alloc.RegisterLocus({"m", Mobility::kMobile});
  const LocusId pinned = alloc.RegisterLocus({"p", Mobility::kPinned});
  std::vector<std::vector<FrameRun>> live;

  for (int step = 0; step < 6000; ++step) {
    const std::uint64_t dice = rng.NextBounded(10);
    if (dice < 5) {
      const bool low = rng.NextBernoulli(0.5);
      const std::uint64_t frames = rng.NextBounded(32) + 1;
      auto got = alloc.Allocate(
          InLocus(frames, low ? mobile : pinned));
      auto want = low ? model.FitLow(frames) : model.FitHigh(frames);
      ASSERT_EQ(got.ok(), want.has_value()) << "step " << step;
      if (got.ok()) {
        ASSERT_EQ(Sorted(*got), Sorted(*want)) << "step " << step;
        live.push_back(*got);
      }
    } else if (dice < 9) {
      if (live.empty()) continue;
      const std::size_t pick = rng.NextBounded(live.size());
      ASSERT_TRUE(alloc.Free(live[pick]).ok()) << "step " << step;
      ASSERT_TRUE(model.Free(live[pick])) << "step " << step;
      live[pick] = live.back();
      live.pop_back();
    } else {
      const std::uint64_t target = rng.NextBounded(768) + 1;
      ASSERT_EQ(alloc.Resize(target).ok(), model.Resize(target))
          << "step " << step;
    }
    CheckAgreement(alloc, model, rng);
  }
}

// The packing invariant: while the two cohorts' footprints stay clear of
// the midpoint, every mobile frame sits below every pinned frame — under
// churn, not just on a fresh allocator.  Buffered loci included: the
// reservations bump outward exactly like the unbuffered policies.
TEST(AllocPropertyTest, MobileStaysBelowPinnedUnderChurn) {
  Rng rng(0xB0D1);
  FrameAllocator alloc(1024, KiB(4));
  const LocusId mobile =
      alloc.RegisterLocus({"m", Mobility::kMobile, /*buffer_frames=*/16});
  const LocusId pinned =
      alloc.RegisterLocus({"p", Mobility::kPinned, /*buffer_frames=*/16});
  struct Held {
    std::vector<FrameRun> runs;
    std::uint64_t frames = 0;
    bool is_mobile = false;
  };
  std::vector<Held> live;
  std::uint64_t mobile_frames = 0;
  std::uint64_t pinned_frames = 0;
  const std::uint64_t kBudget = 300;  // per cohort, buffers included

  for (int step = 0; step < 8000; ++step) {
    const bool is_mobile = rng.NextBernoulli(0.5);
    std::uint64_t& held = is_mobile ? mobile_frames : pinned_frames;
    if (rng.NextBernoulli(0.6)) {
      const std::uint64_t frames = rng.NextBounded(24) + 1;
      if (held + frames + 16 > kBudget) continue;  // +16: a buffer refill
      auto runs = alloc.Allocate(
          InLocus(frames, is_mobile ? mobile : pinned));
      ASSERT_TRUE(runs.ok()) << "step " << step;
      live.push_back(Held{*runs, frames, is_mobile});
      held += frames;
    } else {
      // Free a random allocation of this cohort, if any.
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].is_mobile == is_mobile) candidates.push_back(i);
      }
      if (candidates.empty()) continue;
      const std::size_t pick = candidates[rng.NextBounded(candidates.size())];
      ASSERT_TRUE(alloc.Free(live[pick].runs).ok()) << "step " << step;
      held -= live[pick].frames;
      live[pick] = live.back();
      live.pop_back();
    }
    // Invariant: max mobile frame < min pinned frame.
    FrameNumber mobile_max = 0;
    FrameNumber pinned_min = alloc.num_frames();
    bool any_mobile = false, any_pinned = false;
    for (const Held& h : live) {
      for (const FrameRun& r : h.runs) {
        if (h.is_mobile) {
          any_mobile = true;
          mobile_max = std::max(mobile_max, r.end() - 1);
        } else {
          any_pinned = true;
          pinned_min = std::min(pinned_min, r.first);
        }
      }
    }
    if (any_mobile && any_pinned) {
      ASSERT_LT(mobile_max, pinned_min) << "step " << step;
    }
  }
}

// Buffered allocation accounting: free/used/buffered always reconcile,
// and every handed-out frame reads as allocated.
TEST(AllocPropertyTest, BufferedAccountingReconciles) {
  Rng rng(0xBF01);
  FrameAllocator alloc(256, KiB(4));
  const LocusId id =
      alloc.RegisterLocus({"b", Mobility::kMobile, /*buffer_frames=*/8});
  std::vector<std::vector<FrameRun>> live;
  std::uint64_t handed_out = 0;

  for (int step = 0; step < 4000; ++step) {
    if (rng.NextBernoulli(0.55) && handed_out + 8 < 200) {
      const std::uint64_t frames = rng.NextBounded(6) + 1;
      auto runs = alloc.Allocate(InLocus(frames, id));
      ASSERT_TRUE(runs.ok()) << "step " << step;
      for (const FrameRun& r : *runs) {
        for (FrameNumber f = r.first; f < r.end(); ++f) {
          ASSERT_TRUE(alloc.IsAllocated(f)) << "step " << step;
        }
      }
      live.push_back(*runs);
      handed_out += frames;
    } else if (!live.empty()) {
      const std::size_t pick = rng.NextBounded(live.size());
      std::uint64_t freed = 0;
      for (const FrameRun& r : live[pick]) freed += r.count;
      ASSERT_TRUE(alloc.Free(live[pick]).ok()) << "step " << step;
      handed_out -= freed;
      live[pick] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(alloc.free_frames() + alloc.buffered_frames() + handed_out,
              alloc.num_frames())
        << "step " << step;
  }
  alloc.FlushLocusBuffers();
  ASSERT_EQ(alloc.free_frames() + handed_out, alloc.num_frames());
}

}  // namespace
}  // namespace lmp::mem
