// Randomized reference-model tests for PoolBtree, and the determinism
// contract for the async op engine on top of it.
//
// The fuzz leg interleaves random insert/erase/lookup/scan with structural
// churn — segment migrations, drain-backed compaction, and one injected
// crash masked by replication — and must match a std::map reference
// exactly throughout.  The determinism leg runs the same async workload at
// --threads=1 and --threads=8 and requires byte-identical metrics and
// time-series exports.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "baselines/logical.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/pool_manager.h"
#include "core/replication.h"
#include "obs/time_series.h"
#include "ops/btree_ops.h"
#include "ops/op_engine.h"
#include "workloads/pool_btree.h"

namespace lmp::workloads {
namespace {

cluster::ClusterConfig SmallConfig() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.cores_per_server = 4;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

class BtreeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BtreeFuzzTest, MatchesReferenceUnderChurnAndCrash) {
  cluster::Cluster cluster(SmallConfig());
  core::PoolManager manager(&cluster);
  core::ReplicationManager repl(&manager, 1);
  auto tree_or = PoolBtree::Create(&manager, 1024, 0);
  ASSERT_TRUE(tree_or.ok());
  PoolBtree& tree = *tree_or;

  Rng rng(GetParam());
  std::map<std::uint64_t, std::uint64_t> reference;
  const std::uint64_t key_space = 2000;
  bool crashed = false;

  auto churn_step = [&](int step) {
    const auto from = static_cast<cluster::ServerId>(rng.NextBounded(4));
    const std::uint64_t key = rng.NextBounded(key_space);
    const int op = static_cast<int>(rng.NextBounded(100));
    if (op < 40) {
      const std::uint64_t value = key * 1000 + static_cast<std::uint64_t>(step);
      const Status st = tree.Insert(from, key, value);
      if (st.ok()) {
        reference[key] = value;
      } else {
        ASSERT_TRUE(IsOutOfMemory(st)) << st;
      }
    } else if (op < 70) {
      auto got = tree.Lookup(from, key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(IsNotFound(got.status())) << "key " << key;
      } else {
        ASSERT_TRUE(got.ok()) << "key " << key;
        EXPECT_EQ(*got, it->second);
      }
    } else if (op < 85) {
      const Status st = tree.Erase(from, key);
      if (reference.erase(key) > 0) {
        EXPECT_TRUE(st.ok()) << st;
      } else {
        EXPECT_TRUE(IsNotFound(st));
      }
    } else if (op < 93) {
      // Ordered scan must agree with the reference's ordered iteration.
      auto rows = tree.Scan(from, key, 20);
      ASSERT_TRUE(rows.ok());
      auto it = reference.lower_bound(key);
      std::size_t i = 0;
      for (; i < rows->size(); ++i, ++it) {
        ASSERT_NE(it, reference.end());
        EXPECT_EQ((*rows)[i].first, it->first);
        EXPECT_EQ((*rows)[i].second, it->second);
      }
      EXPECT_TRUE(i == 20 || it == reference.end());
    } else if (op < 97) {
      // Migrate a random segment of the node arena.
      auto info = manager.Describe(tree.buffer());
      ASSERT_TRUE(info.ok());
      const auto seg = info->segments[rng.NextBounded(info->segments.size())];
      const auto dst = static_cast<cluster::ServerId>(rng.NextBounded(4));
      (void)manager.MigrateSegment(seg, dst);  // may legally fail
    } else {
      // Drain-backed shrink: compact a random segment below a byte bound
      // on its own home.  kOutOfMemory/kFailedPrecondition are legal;
      // data corruption is not (the audit below catches it).
      auto info = manager.Describe(tree.buffer());
      ASSERT_TRUE(info.ok());
      const auto seg = info->segments[rng.NextBounded(info->segments.size())];
      (void)manager.CompactSegment(seg, MiB(2));
    }
    ASSERT_EQ(tree.size(), reference.size()) << "step " << step;
  };

  for (int step = 0; step < 1200; ++step) {
    churn_step(step);
    if (step == 600 && !crashed) {
      // One injected crash, masked by replication: protect the arena (the
      // copies are taken now, so nothing mutates between protect and
      // crash), kill a server holding tree nodes, and keep going on the
      // promoted replicas.
      crashed = true;
      ASSERT_TRUE(repl.ProtectBuffer(tree.buffer()).ok());
      const auto victim = static_cast<cluster::ServerId>(rng.NextBounded(4));
      auto lost = manager.OnServerCrash(victim);
      ASSERT_TRUE(lost.ok());
      EXPECT_TRUE(lost->empty()) << "replicated arena lost segments";
    }
  }
  ASSERT_TRUE(crashed);

  // Full final audit: every reference entry readable, in order, via scan.
  auto all = tree.Scan(0, 0, reference.size() + 10);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), reference.size());
  auto it = reference.begin();
  for (std::size_t i = 0; i < all->size(); ++i, ++it) {
    EXPECT_EQ((*all)[i].first, it->first);
    EXPECT_EQ((*all)[i].second, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BtreeFuzzTest,
                         ::testing::Values(11, 22, 33));

// The determinism contract (ROADMAP tier 1): the async op workload —
// latency histograms, op counters, and time-series samples — must be
// byte-identical for any solver thread count.
struct DeterminismArtifacts {
  std::string metrics_json;
  std::string series_json;
};

DeterminismArtifacts RunAsyncWorkload(int threads) {
  cluster::ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.cores_per_server = 4;
  cfg.server_total_memory = MiB(16);
  cfg.server_shared_memory = MiB(16);
  cfg.with_backing = true;
  baselines::LogicalDeployment deploy(fabric::LinkProfile::Link0(), cfg);
  deploy.simulator().set_threads(threads);

  MetricsRegistry metrics;
  ops::OpEngine::Options opts;
  opts.metrics = &metrics;
  ops::OpEngine engine(&deploy.simulator(), &deploy.topology(),
                       &deploy.manager(), opts);
  auto tree_or = PoolBtree::Create(&deploy.manager(), 2048, 0);
  LMP_CHECK(tree_or.ok());
  PoolBtree& tree = *tree_or;
  ops::BtreeOpDriver driver(&engine, &tree, cfg.num_servers);

  for (std::uint64_t k = 0; k < 500; ++k) {
    LMP_CHECK(tree.Insert(0, k * 5, k).ok());
  }

  obs::TimeSeriesRecorder recorder(
      &deploy.simulator(),
      {.interval = Microseconds(50), .horizon = Milliseconds(5),
       .prefix = "btree/"});
  recorder.AddCounter("ops_completed", [&] { return engine.completed(); });
  recorder.AddGauge("in_flight",
                    [&] { return static_cast<double>(engine.in_flight()); });
  recorder.Start();

  // Mid-run structural churn, on the sim clock: migrate one arena segment
  // at a fixed instant so hop pricing changes under the in-flight ops.
  deploy.simulator().ScheduleAt(Microseconds(200), [&](SimTime) {
    auto info = deploy.manager().Describe(tree.buffer());
    if (info.ok() && !info->segments.empty()) {
      (void)deploy.manager().MigrateSegment(info->segments[0], 2);
    }
  });

  Rng rng(42);
  const int kTotal = 400;
  int submitted = 0;
  std::function<void()> submit_one = [&] {
    const auto server = static_cast<cluster::ServerId>(rng.NextBounded(4));
    const std::uint64_t key = rng.NextBounded(500) * 5;
    const int mix = static_cast<int>(rng.NextBounded(100));
    ++submitted;
    if (mix < 50) {
      driver.SubmitGet(server, 0, key);
    } else if (mix < 85) {
      driver.SubmitPut(server, 0, key, rng.NextBounded(1u << 30));
    } else {
      driver.SubmitScan(server, 0, key, 10);
    }
  };
  engine.set_on_complete([&](const ops::OpResult&) {
    if (submitted < kTotal) submit_one();
  });
  for (int i = 0; i < 32; ++i) submit_one();
  LMP_CHECK(engine.Drain().ok());
  LMP_CHECK(engine.completed() == static_cast<std::uint64_t>(kTotal));

  return DeterminismArtifacts{trace::MetricsJson(metrics),
                              obs::SeriesJson({&recorder})};
}

TEST(BtreeDeterminismTest, MetricsAndSeriesByteIdenticalAcrossThreads) {
  const DeterminismArtifacts t1 = RunAsyncWorkload(1);
  const DeterminismArtifacts t8 = RunAsyncWorkload(8);
  EXPECT_EQ(t1.metrics_json, t8.metrics_json);
  EXPECT_EQ(t1.series_json, t8.series_json);
  // And the histograms actually carry data: this is a latency test, not a
  // vacuous comparison of empty registries.
  EXPECT_NE(t1.metrics_json.find("ops.get"), std::string::npos);
  EXPECT_NE(t1.metrics_json.find("ops.put"), std::string::npos);
  EXPECT_NE(t1.metrics_json.find("ops.scan"), std::string::npos);
}

}  // namespace
}  // namespace lmp::workloads
