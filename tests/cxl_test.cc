// Tests for the CXL.mem transaction model: flit costs, channel efficiency,
// Type-3 device regions, and the inclusive snoop filter with
// back-invalidation (§2.2 / §3.2).
#include <gtest/gtest.h>

#include "fabric/cxl.h"

namespace lmp::fabric {
namespace {

// --- FlitCost ----------------------------------------------------------------

TEST(FlitCostTest, CacheLineRead) {
  const FlitCost cost = CostOf({CxlOpcode::kMemRd, 0, kCacheLine});
  EXPECT_EQ(cost.request_flits, 1u);   // M2S Req
  EXPECT_EQ(cost.response_flits, 1u);  // one data flit
  EXPECT_EQ(cost.TotalBytes(), 2 * kFlitBytes);
}

TEST(FlitCostTest, CacheLineWrite) {
  const FlitCost cost = CostOf({CxlOpcode::kMemWr, 0, kCacheLine});
  EXPECT_EQ(cost.request_flits, 1u);   // RwD carries the data
  EXPECT_EQ(cost.response_flits, 1u);  // NDR completion
}

TEST(FlitCostTest, LargeReadScalesDataFlits) {
  const FlitCost cost = CostOf({CxlOpcode::kMemRd, 0, KiB(4)});
  EXPECT_EQ(cost.request_flits, 1u);
  EXPECT_EQ(cost.response_flits, 64u);  // 4096 / 64
}

TEST(FlitCostTest, SubLineRoundsUpToOneFlit) {
  const FlitCost cost = CostOf({CxlOpcode::kMemRd, 0, 8});
  EXPECT_EQ(cost.response_flits, 1u);
}

TEST(FlitCostTest, BackInvalidationIsControlOnly) {
  const FlitCost cost = CostOf({CxlOpcode::kMemInv, 0, kCacheLine});
  EXPECT_EQ(cost.request_flits, 1u);
  EXPECT_EQ(cost.response_flits, 1u);
}

// --- FlitChannel -----------------------------------------------------------------

TEST(FlitChannelTest, SerializationDelayMatchesWireBytes) {
  FlitChannel channel(GBps(34.5));
  const SimTime delay = channel.Transfer({CxlOpcode::kMemRd, 0, kCacheLine});
  // 2 flits x 68 B at 34.5 GB/s.
  EXPECT_NEAR(delay, 2.0 * kFlitBytes / 34.5, 0.01);
}

TEST(FlitChannelTest, EfficiencyBelowOneForSmallReads) {
  FlitChannel channel(GBps(34.5));
  for (int i = 0; i < 100; ++i) {
    channel.Transfer({CxlOpcode::kMemRd, 0, kCacheLine});
  }
  // 64 payload bytes ride 136 wire bytes per read.
  EXPECT_NEAR(channel.Efficiency(), 64.0 / 136.0, 1e-9);
  EXPECT_LT(channel.EffectiveBandwidth(), GBps(34.5));
}

TEST(FlitChannelTest, LargeTransfersAmortizeHeaders) {
  FlitChannel small(GBps(10)), large(GBps(10));
  small.Transfer({CxlOpcode::kMemRd, 0, kCacheLine});
  large.Transfer({CxlOpcode::kMemRd, 0, MiB(1)});
  EXPECT_GT(large.Efficiency(), small.Efficiency());
  EXPECT_GT(large.Efficiency(), 0.9);
}

// --- Type3Device --------------------------------------------------------------------

TEST(Type3DeviceTest, RegionsAreDisjoint) {
  Type3Device device(GiB(64));
  auto r0 = device.AddRegion(GiB(16));
  auto r1 = device.AddRegion(GiB(16));
  ASSERT_TRUE(r0.ok() && r1.ok());
  EXPECT_EQ(device.region_base(*r0), 0u);
  EXPECT_EQ(device.region_base(*r1), GiB(16));
  EXPECT_EQ(device.region_count(), 2);
}

TEST(Type3DeviceTest, CapacityEnforced) {
  Type3Device device(GiB(8));
  ASSERT_TRUE(device.AddRegion(GiB(8)).ok());
  EXPECT_TRUE(IsOutOfMemory(device.AddRegion(1).status()));
}

TEST(Type3DeviceTest, AssignedRegionRejectsOtherHosts) {
  Type3Device device(GiB(8));
  auto r = device.AddRegion(GiB(4));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(device.AssignRegion(*r, /*host=*/1).ok());
  EXPECT_TRUE(device.Access(1, 0, kCacheLine).ok());
  EXPECT_EQ(device.Access(2, 0, kCacheLine).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Type3DeviceTest, UnassignedRegionIsShared) {
  Type3Device device(GiB(8));
  ASSERT_TRUE(device.AddRegion(GiB(4)).ok());
  EXPECT_TRUE(device.Access(0, 0, kCacheLine).ok());
  EXPECT_TRUE(device.Access(3, GiB(2), kCacheLine).ok());
}

TEST(Type3DeviceTest, AccessOutsideRegionsRejected) {
  Type3Device device(GiB(8));
  ASSERT_TRUE(device.AddRegion(GiB(4)).ok());
  EXPECT_TRUE(IsNotFound(device.Access(0, GiB(5), kCacheLine).status()));
  // Straddling the region end is also rejected.
  EXPECT_TRUE(IsNotFound(
      device.Access(0, GiB(4) - 8, kCacheLine).status()));
}

// --- SnoopFilter ----------------------------------------------------------------------

TEST(SnoopFilterTest, TracksReadersAndWriters) {
  SnoopFilter filter(16);
  EXPECT_EQ(filter.OnRead(0, 1).back_invalidations, 0);
  EXPECT_EQ(filter.OnRead(1, 1).back_invalidations, 0);
  EXPECT_TRUE(filter.IsTracked(1));
  // A write invalidates the other sharer.
  EXPECT_EQ(filter.OnWrite(2, 1).invalidations, 2);
}

TEST(SnoopFilterTest, WriterRewriteIsQuiet) {
  SnoopFilter filter(16);
  filter.OnWrite(0, 5);
  EXPECT_EQ(filter.OnWrite(0, 5).invalidations, 0);
}

TEST(SnoopFilterTest, CapacityEvictionBackInvalidates) {
  SnoopFilter filter(2);
  filter.OnRead(0, 1);
  filter.OnRead(0, 2);
  const auto result = filter.OnRead(0, 3);  // evicts line 1 (LRU)
  EXPECT_EQ(result.back_invalidations, 1);
  EXPECT_FALSE(filter.IsTracked(1));
  EXPECT_TRUE(filter.IsTracked(3));
}

TEST(SnoopFilterTest, EvictionInvalidatesEverySharer) {
  SnoopFilter filter(1);
  filter.OnRead(0, 7);
  filter.OnRead(1, 7);
  filter.OnRead(2, 7);
  const auto result = filter.OnRead(0, 8);  // evicts line 7
  EXPECT_EQ(result.back_invalidations, 3);
  EXPECT_EQ(filter.total_back_invalidations(), 3u);
}

TEST(SnoopFilterTest, RecencyProtectsHotLines) {
  SnoopFilter filter(2);
  filter.OnRead(0, 1);
  filter.OnRead(0, 2);
  filter.OnRead(0, 1);  // 1 is now MRU
  filter.OnRead(0, 3);  // must evict 2, not 1
  EXPECT_TRUE(filter.IsTracked(1));
  EXPECT_FALSE(filter.IsTracked(2));
}

// The §3.2 design point: a working set within the filter capacity causes
// ZERO back-invalidations; exceed it and every new line thrashes.
TEST(SnoopFilterTest, SmallCoherentRegionAvoidsThrash) {
  SnoopFilter filter(1024);
  // Working set of 512 lines, cycled 10x: fits.
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t line = 0; line < 512; ++line) {
      filter.OnRead(line % 4, line);
    }
  }
  EXPECT_EQ(filter.total_back_invalidations(), 0u);

  SnoopFilter small(256);
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t line = 0; line < 512; ++line) {
      small.OnRead(line % 4, line);
    }
  }
  EXPECT_GT(small.total_back_invalidations(), 4000u);  // thrashing
}

}  // namespace
}  // namespace lmp::fabric
