// Tests for ComputeShipper: planning by home server and functional
// map-reduce locality.
#include <gtest/gtest.h>

#include "core/compute_ship.h"
#include "core/pool_manager.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

class ComputeShipTest : public ::testing::Test {
 protected:
  ComputeShipTest()
      : cluster_(Config()), manager_(&cluster_), shipper_(&manager_) {}
  cluster::Cluster cluster_;
  PoolManager manager_;
  ComputeShipper shipper_;
};

TEST_F(ComputeShipTest, SingleServerBufferHasOneSubtask) {
  auto buf = manager_.Allocate(MiB(1), 2);
  ASSERT_TRUE(buf.ok());
  auto plan = shipper_.Plan(*buf, 0, MiB(1), 0);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->subtasks.size(), 1u);
  EXPECT_EQ(plan->subtasks[0].server, 2u);
  EXPECT_EQ(plan->subtasks[0].bytes, MiB(1));
  // Requester 0 would have pulled everything remotely.
  EXPECT_EQ(plan->remote_bytes_unshipped, MiB(1));
}

TEST_F(ComputeShipTest, SpanningBufferSplitsByHome) {
  auto buf = manager_.Allocate(MiB(10), 0);  // 4 + 4 + 2 across servers
  ASSERT_TRUE(buf.ok());
  auto plan = shipper_.Plan(*buf, 0, MiB(10), 0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->subtasks.size(), 3u);
  Bytes total = 0;
  for (const auto& t : plan->subtasks) total += t.bytes;
  EXPECT_EQ(total, MiB(10));
  // 6 MiB live on peers from the requester's perspective.
  EXPECT_EQ(plan->remote_bytes_unshipped, MiB(6));
}

TEST_F(ComputeShipTest, RequesterPerspectiveChangesRemoteBytes) {
  auto buf = manager_.Allocate(MiB(8), 1);  // 4 on server1 + 4 elsewhere
  ASSERT_TRUE(buf.ok());
  auto from_owner = shipper_.Plan(*buf, 0, MiB(8), 1);
  auto from_peer = shipper_.Plan(*buf, 0, MiB(8), 3);
  ASSERT_TRUE(from_owner.ok() && from_peer.ok());
  EXPECT_LT(from_owner->remote_bytes_unshipped,
            from_peer->remote_bytes_unshipped);
}

TEST_F(ComputeShipTest, ShipAndReduceSumsCorrectly) {
  auto buf = manager_.Allocate(MiB(8), 0);  // spans two servers
  ASSERT_TRUE(buf.ok());
  // Write a run of 1.0 doubles through the front and back.
  const std::size_t count = MiB(8) / sizeof(double);
  std::vector<double> ones(64 * 1024, 1.0);
  for (std::size_t start = 0; start < count; start += ones.size()) {
    const std::size_t n = std::min(ones.size(), count - start);
    ASSERT_TRUE(manager_
                    .Write(0, *buf, start * sizeof(double),
                           std::as_bytes(std::span<const double>(
                               ones.data(), n)))
                    .ok());
  }
  auto sum = shipper_.ShipAndReduce(
      *buf, 0, MiB(8),
      [](cluster::ServerId, Bytes, std::span<const std::byte> chunk) {
        double acc = 0;
        const auto* v = reinterpret_cast<const double*>(chunk.data());
        for (std::size_t i = 0; i < chunk.size() / sizeof(double); ++i) {
          acc += v[i];
        }
        return acc;
      });
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, static_cast<double>(count));
}

TEST_F(ComputeShipTest, ShippedAccessesAreLocalInHotnessProfile) {
  auto buf = manager_.Allocate(MiB(8), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(shipper_
                  .ShipAndReduce(*buf, 0, MiB(8),
                                 [](cluster::ServerId, Bytes,
                                    std::span<const std::byte>) {
                                   return 0.0;
                                 })
                  .ok());
  // Every segment's dominant accessor must be its own home server.  (Bind
  // the StatusOr first: range-for over a temporary's member dangles.)
  const auto info = manager_.Describe(*buf);
  ASSERT_TRUE(info.ok());
  for (SegmentId seg : info->segments) {
    AccessTracker::DominantAccessor dom;
    ASSERT_TRUE(manager_.access_tracker().Dominant(seg, 0, &dom));
    const SegmentInfo* seg_info = manager_.segment_map().Find(seg);
    EXPECT_EQ(dom.server, seg_info->home.server);
    EXPECT_DOUBLE_EQ(dom.share, 1.0);
  }
}

TEST_F(ComputeShipTest, SubRangePlansOnlyThatRange) {
  auto buf = manager_.Allocate(MiB(8), 0);
  ASSERT_TRUE(buf.ok());
  auto plan = shipper_.Plan(*buf, MiB(5), MiB(2), 0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->total_bytes, MiB(2));
  ASSERT_EQ(plan->subtasks.size(), 1u);  // fully inside the second chunk
  EXPECT_NE(plan->subtasks[0].server, 0u);
}

TEST_F(ComputeShipTest, UnknownBufferRejected) {
  EXPECT_FALSE(shipper_.Plan(999, 0, 1, 0).ok());
}

}  // namespace
}  // namespace lmp::core
