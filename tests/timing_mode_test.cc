// Tests for timing-only (no backing store) operation: the mode the
// paper-scale benches run in.  Every control-plane operation must work on
// pure accounting; only data-plane Read/Write require real bytes.
#include <gtest/gtest.h>

#include "baselines/logical.h"
#include "core/erasure.h"
#include "core/replication.h"
#include "core/runtime.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig BarePaperConfig() {
  // The real paper-scale config: 96 GiB of accounting, zero real bytes.
  return cluster::ClusterConfig::PaperLogical();
}

TEST(TimingModeTest, PaperScaleAllocationIsPureAccounting) {
  cluster::Cluster cluster(BarePaperConfig());
  PoolManager manager(&cluster);
  auto buf = manager.Allocate(GiB(96), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(cluster.PooledFreeBytes(), 0u);
  ASSERT_TRUE(manager.Free(*buf).ok());
  EXPECT_EQ(cluster.PooledFreeBytes(), GiB(96));
}

TEST(TimingModeTest, MigrationWorksWithoutBacking) {
  cluster::Cluster cluster(BarePaperConfig());
  PoolManager manager(&cluster);
  auto buf = manager.Allocate(GiB(4), 0);
  ASSERT_TRUE(buf.ok());
  const auto seg = manager.Describe(*buf)->segments[0];
  auto rec = manager.MigrateSegment(seg, 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->bytes, GiB(4));
  EXPECT_DOUBLE_EQ(manager.LocalFraction(*buf, 2).value_or(0), 1.0);
}

TEST(TimingModeTest, ReplicationFailoverWithoutBacking) {
  cluster::Cluster cluster(BarePaperConfig());
  PoolManager manager(&cluster);
  ReplicationManager repl(&manager, 1);
  auto buf = manager.Allocate(GiB(2), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());
  const auto lost = manager.OnServerCrash(0);
  ASSERT_TRUE(lost.ok());
  EXPECT_TRUE(lost->empty());
  // Spans still resolve (to the promoted replica's home).
  EXPECT_TRUE(manager.Spans(*buf, 0, GiB(2)).ok());
}

TEST(TimingModeTest, ErasureRecoveryWithoutBacking) {
  cluster::Cluster cluster(BarePaperConfig());
  PoolManager manager(&cluster);
  XorErasureManager erasure(&manager, 2);
  std::vector<SegmentId> segments;
  std::vector<BufferId> buffers;
  for (int s = 0; s < 2; ++s) {
    auto buf = manager.Allocate(GiB(2),
                                static_cast<cluster::ServerId>(s));
    ASSERT_TRUE(buf.ok());
    buffers.push_back(*buf);
    segments.push_back(manager.Describe(*buf)->segments[0]);
  }
  ASSERT_TRUE(erasure.ProtectSegments(segments).ok());
  ASSERT_TRUE(manager.OnServerCrash(0).ok());
  auto recovered = erasure.RecoverAllLost();
  ASSERT_TRUE(recovered.ok());
  EXPECT_GE(*recovered, 1);
  EXPECT_TRUE(manager.Spans(buffers[0], 0, GiB(2)).ok());
}

TEST(TimingModeTest, SplitGrowShrinkWithoutBacking) {
  cluster::Cluster cluster(BarePaperConfig());
  PoolManager manager(&cluster);
  auto buf = manager.Allocate(GiB(8), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(manager.SplitSegmentAt(*buf, GiB(4)).ok());
  ASSERT_TRUE(manager.Grow(*buf, GiB(8), 1).ok());
  ASSERT_TRUE(manager.Shrink(*buf, GiB(4)).ok());
  EXPECT_EQ(manager.Describe(*buf)->size, GiB(4));
}

TEST(TimingModeTest, ReadRequiresBackingButTouchDoesNot) {
  cluster::Cluster cluster(BarePaperConfig());
  PoolManager manager(&cluster);
  auto buf = manager.Allocate(GiB(1), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_TRUE(manager.Touch(1, *buf, 0, GiB(1), 0).ok());
  std::vector<std::byte> out(64);
  EXPECT_EQ(manager.Read(1, *buf, 0, out).code(),
            StatusCode::kFailedPrecondition);
}

// The deployment abstraction generalizes to the Table-1 CXL profiles.
TEST(TimingModeTest, PondAndFpgaProfilesRunFigures) {
  for (const auto& link :
       {fabric::LinkProfile::PondCxl(), fabric::LinkProfile::FpgaCxl()}) {
    baselines::LogicalDeployment logical(link);
    baselines::VectorSumParams params;
    params.vector_bytes = GiB(64);
    params.repetitions = 2;
    auto r = logical.RunVectorSum(params);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->feasible);
    // Remote portion bound by the profile's bandwidth; local still 97.
    EXPECT_GT(r->avg_bandwidth_gbps, link.bandwidth / 1e9);
    EXPECT_LT(r->avg_bandwidth_gbps, 97.0);
  }
}

}  // namespace
}  // namespace lmp::core
