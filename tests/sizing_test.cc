// Tests for the shared-region sizing optimizer (§5).
#include <gtest/gtest.h>

#include "core/sizing.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig Config(Bytes per_server = GiB(24)) {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = per_server;
  config.server_shared_memory = 0;  // sizing decides
  config.frame_size = MiB(1);
  return config;
}

ServerDemand Demand(cluster::ServerId s, Bytes priv, Bytes pool,
                    double priority = 1.0) {
  return ServerDemand{s, priv, pool, priority};
}

TEST(SizingTest, SelfServeWhenEverythingFits) {
  cluster::Cluster cluster(Config());
  auto plan = SizingOptimizer::Solve(
      cluster, {Demand(0, GiB(8), GiB(10)), Demand(1, GiB(8), GiB(10)),
                Demand(2, GiB(8), GiB(10)), Demand(3, GiB(8), GiB(10))});
  EXPECT_EQ(plan.unmet_demand, 0u);
  EXPECT_DOUBLE_EQ(plan.LocalFraction(), 1.0);
  for (const auto& e : plan.entries) {
    EXPECT_EQ(e.shared_bytes, GiB(10));
    EXPECT_EQ(e.expected_local, GiB(10));
    EXPECT_EQ(e.expected_remote, 0u);
  }
}

TEST(SizingTest, PrivateFloorIsRespected) {
  cluster::Cluster cluster(Config());
  // Server 0 wants more pool memory than its slack allows.
  auto plan = SizingOptimizer::Solve(
      cluster, {Demand(0, GiB(20), GiB(10)), Demand(1, GiB(4), 0),
                Demand(2, GiB(4), 0), Demand(3, GiB(4), 0)});
  // Own slack is 4 GiB; the remaining 6 GiB must land on peers.
  const auto& e0 = plan.entries[0];
  EXPECT_EQ(e0.expected_local, GiB(4));
  EXPECT_EQ(e0.expected_remote, GiB(6));
  EXPECT_EQ(plan.unmet_demand, 0u);
  // No peer's shared region may eat into its private floor.
  for (std::size_t i = 1; i < plan.entries.size(); ++i) {
    EXPECT_LE(plan.entries[i].shared_bytes, GiB(20));
  }
}

TEST(SizingTest, OverflowGoesToPeerWithMostSlack) {
  cluster::Cluster cluster(Config());
  auto plan = SizingOptimizer::Solve(
      cluster, {Demand(0, GiB(24), GiB(8)),   // no slack at all
                Demand(1, GiB(20), 0),        // 4 slack
                Demand(2, GiB(8), 0),         // 16 slack
                Demand(3, GiB(16), 0)});      // 8 slack
  EXPECT_EQ(plan.entries[0].expected_remote, GiB(8));
  EXPECT_EQ(plan.entries[2].shared_bytes, GiB(8));  // most slack took it
}

TEST(SizingTest, ShedsLowestPriorityUnderPressure) {
  cluster::Cluster cluster(Config(GiB(8)));
  // Total slack: 4 servers x 8 = 32; demands total 40 => 8 shed.
  auto plan = SizingOptimizer::Solve(
      cluster, {Demand(0, 0, GiB(20), /*priority=*/2.0),
                Demand(1, 0, GiB(20), /*priority=*/1.0),
                Demand(2, 0, 0), Demand(3, 0, 0)});
  EXPECT_EQ(plan.unmet_demand, GiB(8));
  // High-priority demand fully served.
  EXPECT_EQ(plan.entries[0].expected_local +
            plan.entries[0].expected_remote, GiB(20));
  EXPECT_EQ(plan.entries[1].expected_local +
            plan.entries[1].expected_remote, GiB(12));
}

TEST(SizingTest, LocalFractionReflectsPlacement) {
  cluster::Cluster cluster(Config());
  auto plan = SizingOptimizer::Solve(
      cluster, {Demand(0, GiB(20), GiB(8)), Demand(1, GiB(4), 0),
                Demand(2, GiB(4), 0), Demand(3, GiB(4), 0)});
  // 4 of 8 local.
  EXPECT_NEAR(plan.LocalFraction(), 0.5, 1e-9);
}

TEST(SizingTest, ApplyResizesServers) {
  cluster::Cluster cluster(Config());
  auto plan = SizingOptimizer::Solve(
      cluster, {Demand(0, GiB(8), GiB(10)), Demand(1, GiB(8), GiB(4)),
                Demand(2, GiB(8), 0), Demand(3, GiB(8), 0)});
  const SizingApplyResult result = SizingOptimizer::Apply(cluster, plan);
  EXPECT_EQ(result.deferred_count(), 0);
  EXPECT_EQ(result.applied, 4);
  EXPECT_EQ(cluster.server(0).shared_bytes(), GiB(10));
  EXPECT_EQ(cluster.server(1).shared_bytes(), GiB(4));
  EXPECT_EQ(cluster.server(2).shared_bytes(), 0u);
}

TEST(SizingTest, ApplyDefersBlockedShrink) {
  cluster::ClusterConfig config = Config();
  config.server_shared_memory = GiB(24);
  cluster::Cluster cluster(config);
  // Live frames occupy the region; shrinking to zero must be deferred.
  ASSERT_TRUE(cluster.server(1)
                  .shared_allocator()
                  .Allocate(mem::AllocRequest::Of(10))
                  .ok());
  SizingPlan plan;
  plan.entries.push_back({0, 0, 0, 0});
  plan.entries.push_back({1, 0, 0, 0});
  const SizingApplyResult result = SizingOptimizer::Apply(cluster, plan);
  EXPECT_EQ(result.deferred_count(), 1);
  EXPECT_EQ(cluster.server(0).shared_bytes(), 0u);
  EXPECT_EQ(cluster.server(1).shared_bytes(), GiB(24));
}

// Regression: a deferred shrink must say WHICH server it skipped and how
// many bytes of live frames blocked it, not just bump a counter.
TEST(SizingTest, ApplyReportsDeferredShrinkStructurally) {
  cluster::ClusterConfig config = Config();
  config.server_shared_memory = GiB(24);
  cluster::Cluster cluster(config);
  // 10 frames x 1 MiB live on server 1; shrinking to 4 MiB strands the
  // 6 frames above the new boundary (first-fit packs from frame 0).
  ASSERT_TRUE(cluster.server(1)
                  .shared_allocator()
                  .Allocate(mem::AllocRequest::Of(10))
                  .ok());
  SizingPlan plan;
  plan.entries.push_back({1, MiB(4), 0, 0});
  const SizingApplyResult result = SizingOptimizer::Apply(cluster, plan);
  ASSERT_EQ(result.deferred_count(), 1);
  EXPECT_EQ(result.applied, 0);
  const auto& d = result.deferred[0];
  EXPECT_EQ(d.server, 1u);
  EXPECT_EQ(d.current_bytes, GiB(24));
  EXPECT_EQ(d.target_bytes, MiB(4));
  EXPECT_EQ(d.stranded_bytes, MiB(6));
  EXPECT_FALSE(d.crashed);
}

TEST(SizingTest, ApplySkipsCrashedServers) {
  cluster::Cluster cluster(Config());
  ASSERT_TRUE(cluster.server(2).Crash().ok());
  SizingPlan plan;
  plan.entries.push_back({2, GiB(4), 0, 0});
  const SizingApplyResult result = SizingOptimizer::Apply(cluster, plan);
  ASSERT_EQ(result.deferred_count(), 1);
  EXPECT_TRUE(result.deferred[0].crashed);
  EXPECT_EQ(result.deferred[0].server, 2u);
}

TEST(SizingTest, EmptyDemandsYieldEmptyPlan) {
  cluster::Cluster cluster(Config());
  auto plan = SizingOptimizer::Solve(cluster, {});
  EXPECT_TRUE(plan.entries.empty());
  EXPECT_DOUBLE_EQ(plan.LocalFraction(), 1.0);
}

// The §4.5 flexibility story as a sizing problem: a 96 GiB working set
// fits only if every server contributes its whole DRAM.
TEST(SizingTest, FlexibilityEnablesFullPooling) {
  cluster::Cluster cluster(Config());
  auto plan = SizingOptimizer::Solve(
      cluster, {Demand(0, 0, GiB(96)), Demand(1, 0, 0), Demand(2, 0, 0),
                Demand(3, 0, 0)});
  EXPECT_EQ(plan.unmet_demand, 0u);
  Bytes total_shared = 0;
  for (const auto& e : plan.entries) total_shared += e.shared_bytes;
  EXPECT_EQ(total_shared, GiB(96));
}

}  // namespace
}  // namespace lmp::core
