// Tests for the addressing stack: LogicalAddress, SegmentMap (step 1),
// LocalFrameMap (step 2), and AddressTranslator with its TLB-style cache.
#include <gtest/gtest.h>

#include "core/local_map.h"
#include "core/logical_address.h"
#include "core/segment_map.h"
#include "core/translation.h"

namespace lmp::core {
namespace {

// --- LogicalAddress ------------------------------------------------------------

TEST(LogicalAddressTest, PacksSegmentAndOffset) {
  const LogicalAddress a(7, 1234);
  EXPECT_EQ(a.segment(), 7u);
  EXPECT_EQ(a.offset(), 1234u);
}

TEST(LogicalAddressTest, MaxOffsetPreserved) {
  const LogicalAddress a(1, kMaxSegmentSize - 1);
  EXPECT_EQ(a.offset(), kMaxSegmentSize - 1);
  EXPECT_EQ(a.segment(), 1u);
}

TEST(LogicalAddressTest, ArithmeticStaysInSegment) {
  const LogicalAddress a(3, 100);
  const LogicalAddress b = a + 28;
  EXPECT_EQ(b.segment(), 3u);
  EXPECT_EQ(b.offset(), 128u);
}

TEST(LogicalAddressTest, OrderingBySegmentThenOffset) {
  EXPECT_LT(LogicalAddress(1, 999), LogicalAddress(2, 0));
  EXPECT_LT(LogicalAddress(2, 1), LogicalAddress(2, 2));
  EXPECT_EQ(LogicalAddress(4, 4), LogicalAddress(4, 4));
}

TEST(LogicalAddressTest, RawRoundTrip) {
  const LogicalAddress a(42, 4242);
  EXPECT_EQ(LogicalAddress::FromRaw(a.raw()), a);
}

TEST(LogicalAddressTest, HashUsable) {
  std::hash<LogicalAddress> h;
  EXPECT_NE(h(LogicalAddress(1, 2)), h(LogicalAddress(2, 1)));
}

// --- SegmentMap ---------------------------------------------------------------

SegmentInfo MakeSegment(SegmentId id, Bytes size, cluster::ServerId home) {
  SegmentInfo info;
  info.id = id;
  info.size = size;
  info.home = Location::OnServer(home);
  return info;
}

TEST(SegmentMapTest, InsertLookup) {
  SegmentMap map;
  ASSERT_TRUE(map.Insert(MakeSegment(1, KiB(4), 2)).ok());
  auto loc = map.Lookup(1);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->server, 2u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(SegmentMapTest, DuplicateInsertRejected) {
  SegmentMap map;
  ASSERT_TRUE(map.Insert(MakeSegment(1, KiB(4), 0)).ok());
  EXPECT_EQ(map.Insert(MakeSegment(1, KiB(4), 1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(SegmentMapTest, InvalidSegmentsRejected) {
  SegmentMap map;
  EXPECT_FALSE(map.Insert(MakeSegment(kInvalidSegment, KiB(4), 0)).ok());
  EXPECT_FALSE(map.Insert(MakeSegment(1, 0, 0)).ok());
  EXPECT_FALSE(map.Insert(MakeSegment(1, kMaxSegmentSize + 1, 0)).ok());
}

TEST(SegmentMapTest, LookupMissingIsNotFound) {
  SegmentMap map;
  EXPECT_TRUE(IsNotFound(map.Lookup(9).status()));
  EXPECT_EQ(map.Find(9), nullptr);
}

TEST(SegmentMapTest, UpdateHomeBumpsGeneration) {
  SegmentMap map;
  ASSERT_TRUE(map.Insert(MakeSegment(1, KiB(4), 0)).ok());
  const std::uint64_t gen0 = map.Find(1)->generation;
  ASSERT_TRUE(map.UpdateHome(1, Location::OnServer(3)).ok());
  EXPECT_EQ(map.Find(1)->home.server, 3u);
  EXPECT_EQ(map.Find(1)->generation, gen0 + 1);
}

TEST(SegmentMapTest, RemoveDeletes) {
  SegmentMap map;
  ASSERT_TRUE(map.Insert(MakeSegment(1, KiB(4), 0)).ok());
  ASSERT_TRUE(map.Remove(1).ok());
  EXPECT_FALSE(map.Remove(1).ok());
  EXPECT_EQ(map.size(), 0u);
}

TEST(SegmentMapTest, SegmentsAtFiltersByLocation) {
  SegmentMap map;
  ASSERT_TRUE(map.Insert(MakeSegment(1, KiB(4), 0)).ok());
  ASSERT_TRUE(map.Insert(MakeSegment(2, KiB(4), 1)).ok());
  ASSERT_TRUE(map.Insert(MakeSegment(3, KiB(4), 0)).ok());
  auto at0 = map.SegmentsAt(Location::OnServer(0));
  std::sort(at0.begin(), at0.end());
  EXPECT_EQ(at0, (std::vector<SegmentId>{1, 3}));
  EXPECT_TRUE(map.SegmentsAt(Location::OnPool()).empty());
}

TEST(SegmentMapTest, SetStateTransitions) {
  SegmentMap map;
  ASSERT_TRUE(map.Insert(MakeSegment(1, KiB(4), 0)).ok());
  ASSERT_TRUE(map.SetState(1, SegmentState::kLost).ok());
  EXPECT_EQ(map.Find(1)->state, SegmentState::kLost);
  EXPECT_FALSE(map.SetState(9, SegmentState::kActive).ok());
}

// --- LocalFrameMap ---------------------------------------------------------------

TEST(LocalFrameMapTest, BindAndResolveSingleRun) {
  LocalFrameMap map(KiB(4));
  ASSERT_TRUE(map.Bind(1, KiB(8), {mem::FrameRun{10, 2}}).ok());
  auto extents = map.Resolve(1, 0, KiB(8));
  ASSERT_TRUE(extents.ok());
  ASSERT_EQ(extents->size(), 1u);
  EXPECT_EQ((*extents)[0].frame, 10u);
  EXPECT_EQ((*extents)[0].length, KiB(8));
}

TEST(LocalFrameMapTest, ResolveMidRange) {
  LocalFrameMap map(KiB(4));
  ASSERT_TRUE(map.Bind(1, KiB(16), {mem::FrameRun{0, 4}}).ok());
  auto extents = map.Resolve(1, KiB(6), KiB(4));
  ASSERT_TRUE(extents.ok());
  ASSERT_EQ(extents->size(), 1u);
  EXPECT_EQ((*extents)[0].frame, 1u);           // KiB(6) is in frame 1
  EXPECT_EQ((*extents)[0].offset_in_frame, KiB(2));
  EXPECT_EQ((*extents)[0].length, KiB(4));
}

TEST(LocalFrameMapTest, ResolveAcrossScatteredRuns) {
  LocalFrameMap map(KiB(4));
  ASSERT_TRUE(
      map.Bind(1, KiB(12), {mem::FrameRun{0, 1}, mem::FrameRun{8, 2}}).ok());
  auto extents = map.Resolve(1, KiB(2), KiB(8));
  ASSERT_TRUE(extents.ok());
  ASSERT_EQ(extents->size(), 2u);  // tail of run 0, head of run 1
  EXPECT_EQ((*extents)[0].frame, 0u);
  EXPECT_EQ((*extents)[0].length, KiB(2));
  EXPECT_EQ((*extents)[1].frame, 8u);
  EXPECT_EQ((*extents)[1].length, KiB(6));
}

TEST(LocalFrameMapTest, BindRequiresCoverage) {
  LocalFrameMap map(KiB(4));
  EXPECT_FALSE(map.Bind(1, KiB(12), {mem::FrameRun{0, 2}}).ok());
}

TEST(LocalFrameMapTest, DuplicateBindRejected) {
  LocalFrameMap map(KiB(4));
  ASSERT_TRUE(map.Bind(1, KiB(4), {mem::FrameRun{0, 1}}).ok());
  EXPECT_FALSE(map.Bind(1, KiB(4), {mem::FrameRun{1, 1}}).ok());
}

TEST(LocalFrameMapTest, ResolveOutOfRangeRejected) {
  LocalFrameMap map(KiB(4));
  ASSERT_TRUE(map.Bind(1, KiB(8), {mem::FrameRun{0, 2}}).ok());
  EXPECT_FALSE(map.Resolve(1, KiB(4), KiB(8)).ok());
  EXPECT_TRUE(IsNotFound(map.Resolve(2, 0, 1).status()));
}

TEST(LocalFrameMapTest, UnbindForgets) {
  LocalFrameMap map(KiB(4));
  ASSERT_TRUE(map.Bind(1, KiB(4), {mem::FrameRun{0, 1}}).ok());
  ASSERT_TRUE(map.Unbind(1).ok());
  EXPECT_FALSE(map.Contains(1));
  EXPECT_FALSE(map.Unbind(1).ok());
}

TEST(LocalFrameMapTest, RunsOfReturnsBinding) {
  LocalFrameMap map(KiB(4));
  const std::vector<mem::FrameRun> runs{{3, 2}, {9, 1}};
  ASSERT_TRUE(map.Bind(1, KiB(12), runs).ok());
  auto got = map.RunsOf(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 2u);
  EXPECT_EQ((*got)[0].first, 3u);
}

// --- TranslationCache / AddressTranslator -------------------------------------------

TEST(TranslationCacheTest, InsertLookupInvalidate) {
  TranslationCache cache(4);
  cache.Insert(1, {Location::OnServer(2), 0});
  auto hit = cache.Lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->home.server, 2u);
  cache.Invalidate(1);
  EXPECT_FALSE(cache.Lookup(1).has_value());
}

TEST(TranslationCacheTest, EvictsLruAtCapacity) {
  TranslationCache cache(2);
  cache.Insert(1, {Location::OnServer(0), 0});
  cache.Insert(2, {Location::OnServer(0), 0});
  (void)cache.Lookup(1);  // promote 1
  cache.Insert(3, {Location::OnServer(0), 0});
  EXPECT_TRUE(cache.Lookup(1).has_value());
  EXPECT_FALSE(cache.Lookup(2).has_value());
}

class TranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(map_.Insert(MakeSegment(1, KiB(4), 0)).ok());
    ASSERT_TRUE(map_.Insert(MakeSegment(2, KiB(4), 1)).ok());
  }
  SegmentMap map_;
};

TEST_F(TranslatorTest, FirstLookupMissesThenHits) {
  AddressTranslator tr(&map_);
  auto home = tr.TranslateHome(SegmentId{1});
  ASSERT_TRUE(home.ok());
  EXPECT_EQ(home->server, 0u);
  EXPECT_EQ(tr.stats().misses, 1u);
  ASSERT_TRUE(tr.TranslateHome(SegmentId{1}).ok());
  EXPECT_EQ(tr.stats().hits, 1u);
}

TEST_F(TranslatorTest, MigrationInvalidatesByGeneration) {
  AddressTranslator tr(&map_);
  ASSERT_TRUE(tr.TranslateHome(SegmentId{1}).ok());
  ASSERT_TRUE(map_.UpdateHome(1, Location::OnServer(3)).ok());
  auto home = tr.TranslateHome(SegmentId{1});
  ASSERT_TRUE(home.ok());
  EXPECT_EQ(home->server, 3u);          // fresh, not the stale cached home
  EXPECT_EQ(tr.stats().stale_hits, 1u);
  // And the refreshed entry hits again.
  ASSERT_TRUE(tr.TranslateHome(SegmentId{1}).ok());
  EXPECT_EQ(tr.stats().hits, 1u);
}

TEST_F(TranslatorTest, UnknownSegmentIsNotFound) {
  AddressTranslator tr(&map_);
  EXPECT_TRUE(IsNotFound(tr.TranslateHome(SegmentId{77}).status()));
}

TEST_F(TranslatorTest, AddressOverloadUsesSegment) {
  AddressTranslator tr(&map_);
  auto home = tr.TranslateHome(LogicalAddress(2, 123));
  ASSERT_TRUE(home.ok());
  EXPECT_EQ(home->server, 1u);
}

TEST_F(TranslatorTest, HitRateComputed) {
  AddressTranslator tr(&map_);
  ASSERT_TRUE(tr.TranslateHome(SegmentId{1}).ok());
  ASSERT_TRUE(tr.TranslateHome(SegmentId{1}).ok());
  ASSERT_TRUE(tr.TranslateHome(SegmentId{1}).ok());
  EXPECT_NEAR(tr.stats().HitRate(), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace lmp::core
