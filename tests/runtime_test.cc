// Tests for LmpRuntime's background tasks (§3.2) and the lmp::Pool facade.
#include <gtest/gtest.h>

#include "core/lmp.h"
#include "core/runtime.h"

namespace lmp {
namespace {

using core::ServerDemand;

cluster::ClusterConfig SmallCluster() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

TEST(RuntimeTest, MigrationRunsOnPeriod) {
  cluster::Cluster cluster(SmallCluster());
  core::PoolManager manager(&cluster);
  core::RuntimeConfig config;
  config.migration_period = Milliseconds(10);
  config.enable_sizing = false;
  core::LmpRuntime runtime(&manager, config);

  auto buf = manager.Allocate(KiB(64), 0);
  ASSERT_TRUE(buf.ok());
  const auto seg = manager.Describe(*buf)->segments[0];
  manager.access_tracker().RecordAccess(seg, 2, double(MiB(2)), 0);

  // First tick runs immediately; the segment moves.
  auto records = runtime.Tick(0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].to.server, 2u);
  EXPECT_EQ(runtime.stats().migrations, 1u);

  // Within the period: no new round.
  manager.access_tracker().RecordAccess(seg, 3, double(MiB(4)), 0);
  EXPECT_TRUE(runtime.Tick(Milliseconds(5)).empty());
  // After the period: the new dominant accessor wins.
  EXPECT_EQ(runtime.Tick(Milliseconds(20)).size(), 1u);
}

TEST(RuntimeTest, SizingAppliesDemands) {
  cluster::ClusterConfig config = SmallCluster();
  config.server_shared_memory = 0;
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  core::RuntimeConfig rt_config;
  rt_config.enable_migration = false;
  core::LmpRuntime runtime(&manager, rt_config);

  runtime.SetDemand(ServerDemand{0, MiB(1), MiB(2), 1.0});
  runtime.SetDemand(ServerDemand{1, MiB(1), 0, 1.0});
  runtime.SetDemand(ServerDemand{2, MiB(1), 0, 1.0});
  runtime.SetDemand(ServerDemand{3, MiB(1), 0, 1.0});
  runtime.Tick(0);
  EXPECT_EQ(runtime.stats().sizing_rounds, 1u);
  EXPECT_EQ(cluster.server(0).shared_bytes(), MiB(2));
}

TEST(RuntimeTest, RunAllNowForcesBothTasks) {
  cluster::Cluster cluster(SmallCluster());
  core::PoolManager manager(&cluster);
  core::LmpRuntime runtime(&manager);
  runtime.SetDemand(ServerDemand{0, 0, MiB(1), 1.0});
  runtime.RunAllNow(0);
  EXPECT_EQ(runtime.stats().migration_rounds, 1u);
  EXPECT_EQ(runtime.stats().sizing_rounds, 1u);
}

TEST(RuntimeTest, DisabledTasksDoNotRun) {
  cluster::Cluster cluster(SmallCluster());
  core::PoolManager manager(&cluster);
  core::RuntimeConfig config;
  config.enable_migration = false;
  config.enable_sizing = false;
  core::LmpRuntime runtime(&manager, config);
  runtime.SetDemand(ServerDemand{0, 0, MiB(1), 1.0});
  runtime.Tick(0);
  runtime.Tick(Seconds(10));
  EXPECT_EQ(runtime.stats().migration_rounds, 0u);
  EXPECT_EQ(runtime.stats().sizing_rounds, 0u);
}

// --- lmp::Pool facade -------------------------------------------------------

TEST(PoolFacadeTest, CreateSmallAndRoundTrip) {
  auto pool_or = Pool::Create(PoolOptions::Small());
  ASSERT_TRUE(pool_or.ok());
  Pool& pool = **pool_or;
  auto buf = pool.Allocate(KiB(64), 0);
  ASSERT_TRUE(buf.ok());
  std::vector<double> in(100, 2.5);
  ASSERT_TRUE(pool.WriteArray<double>(0, *buf, 0,
                                      std::span<const double>(in)).ok());
  std::vector<double> out(100);
  ASSERT_TRUE(pool.ReadArray<double>(1, *buf, 0,
                                     std::span<double>(out)).ok());
  EXPECT_EQ(in, out);
  EXPECT_TRUE(pool.Free(*buf).ok());
}

TEST(PoolFacadeTest, RejectsBadOptions) {
  PoolOptions opts = PoolOptions::Small();
  opts.cluster.num_servers = 0;
  EXPECT_FALSE(Pool::Create(opts).ok());
  opts = PoolOptions::Small();
  opts.cluster.num_servers = 100;
  EXPECT_FALSE(Pool::Create(opts).ok());
  opts = PoolOptions::Small();
  opts.coherent_bytes = 100;  // not a granularity multiple
  opts.coherence_granularity = 64;
  EXPECT_FALSE(Pool::Create(opts).ok());
}

TEST(PoolFacadeTest, PaperOptionsMatchSection41) {
  const PoolOptions opts = PoolOptions::Paper();
  EXPECT_EQ(opts.cluster.num_servers, 4);
  EXPECT_EQ(opts.cluster.server_total_memory, GiB(24));
  EXPECT_EQ(opts.cluster.server_shared_memory, GiB(24));
  EXPECT_FALSE(opts.cluster.physical_pool);
}

TEST(PoolFacadeTest, TickDrivesMigration) {
  PoolOptions opts = PoolOptions::Small();
  opts.runtime.migration_period = 0;
  auto pool_or = Pool::Create(opts);
  ASSERT_TRUE(pool_or.ok());
  Pool& pool = **pool_or;
  auto buf = pool.Allocate(KiB(64), 0);
  ASSERT_TRUE(buf.ok());
  const auto seg = pool.manager().Describe(*buf)->segments[0];
  pool.manager().access_tracker().RecordAccess(seg, 3, double(MiB(1)), 0);
  const auto records = pool.Tick(0);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].to.server, 3u);
}

TEST(PoolFacadeTest, ComponentsAccessible) {
  auto pool_or = Pool::Create(PoolOptions::Small());
  ASSERT_TRUE(pool_or.ok());
  Pool& pool = **pool_or;
  EXPECT_EQ(pool.cluster().num_servers(), 4);
  EXPECT_EQ(pool.coherent().num_hosts(), 4);
  EXPECT_EQ(pool.replication().replication_factor(), 1);
}

}  // namespace
}  // namespace lmp
