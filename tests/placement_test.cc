// Tests for placement policies, including a parameterized sweep asserting
// invariants every policy must satisfy.
#include <gtest/gtest.h>

#include <numeric>

#include "cluster/cluster.h"
#include "core/placement.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig SmallConfig() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(16);
  config.server_shared_memory = MiB(16);
  config.frame_size = KiB(4);
  return config;
}

Bytes TotalPlaced(const std::vector<PlacementChunk>& chunks) {
  return std::accumulate(chunks.begin(), chunks.end(), Bytes{0},
                         [](Bytes acc, const PlacementChunk& c) {
                           return acc + c.bytes;
                         });
}

// --- Shared invariants over all policies --------------------------------------

class PlacementPolicyParamTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PlacementPolicyParamTest, PlacesExactlyRequestedBytes) {
  cluster::Cluster cluster(SmallConfig());
  auto policy = MakePlacementPolicy(GetParam());
  ASSERT_NE(policy, nullptr);
  auto chunks = policy->Place(cluster, MiB(10), 0);
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(TotalPlaced(*chunks), MiB(10));
}

TEST_P(PlacementPolicyParamTest, NeverExceedsServerCapacity) {
  cluster::Cluster cluster(SmallConfig());
  auto policy = MakePlacementPolicy(GetParam());
  auto chunks = policy->Place(cluster, MiB(60), 0);
  ASSERT_TRUE(chunks.ok());
  std::vector<Bytes> per_server(4, 0);
  for (const auto& c : *chunks) per_server[c.server] += c.bytes;
  for (int s = 0; s < 4; ++s) {
    EXPECT_LE(per_server[s], MiB(16)) << "server " << s;
  }
}

TEST_P(PlacementPolicyParamTest, OverCapacityIsOutOfMemory) {
  cluster::Cluster cluster(SmallConfig());
  auto policy = MakePlacementPolicy(GetParam());
  auto chunks = policy->Place(cluster, MiB(65), 0);  // pool holds 64
  EXPECT_FALSE(chunks.ok());
  EXPECT_TRUE(IsOutOfMemory(chunks.status()));
}

TEST_P(PlacementPolicyParamTest, SkipsCrashedServers) {
  cluster::Cluster cluster(SmallConfig());
  ASSERT_TRUE(cluster.server(2).Crash().ok());
  auto policy = MakePlacementPolicy(GetParam());
  auto chunks = policy->Place(cluster, MiB(40), 0);
  ASSERT_TRUE(chunks.ok());
  for (const auto& c : *chunks) EXPECT_NE(c.server, 2u);
}

TEST_P(PlacementPolicyParamTest, AllServersCrashedIsUnavailable) {
  cluster::Cluster cluster(SmallConfig());
  for (int s = 0; s < 4; ++s) ASSERT_TRUE(cluster.server(s).Crash().ok());
  auto policy = MakePlacementPolicy(GetParam());
  EXPECT_TRUE(IsUnavailable(policy->Place(cluster, MiB(1), 0).status()));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacementPolicyParamTest,
                         ::testing::Values("local-first", "round-robin",
                                           "capacity-weighted"));

// --- Policy-specific behaviour ---------------------------------------------------

TEST(LocalFirstTest, PrefersRequestingServer) {
  cluster::Cluster cluster(SmallConfig());
  LocalFirstPlacement policy;
  auto chunks = policy.Place(cluster, MiB(8), 2);
  ASSERT_TRUE(chunks.ok());
  ASSERT_EQ(chunks->size(), 1u);
  EXPECT_EQ((*chunks)[0].server, 2u);
}

TEST(LocalFirstTest, SpillsToEmptiestPeerAfterFillingLocal) {
  cluster::Cluster cluster(SmallConfig());
  // Pre-consume most of server 1 so the spill should pick 0 or 3.
  auto pre = cluster.server(1).shared_allocator().Allocate(
      mem::AllocRequest::Of(mem::FramesForBytes(MiB(12), KiB(4))));
  ASSERT_TRUE(pre.ok());
  LocalFirstPlacement policy;
  auto chunks = policy.Place(cluster, MiB(24), 2);
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ((*chunks)[0].server, 2u);
  EXPECT_EQ((*chunks)[0].bytes, MiB(16));  // local filled completely
  EXPECT_NE((*chunks)[1].server, 1u);      // fullest peer not chosen next
}

TEST(LocalFirstTest, ReproducesPaperLayouts) {
  // The §4.3/§4.5 layouts on the 4x24 GB logical deployment.
  cluster::ClusterConfig config = cluster::ClusterConfig::PaperLogical();
  cluster::Cluster cluster(config);
  LocalFirstPlacement policy;
  // 24 GB fits entirely on the runner.
  auto c24 = policy.Place(cluster, GiB(24), 0);
  ASSERT_TRUE(c24.ok());
  EXPECT_EQ(c24->size(), 1u);
  // 64 GB: 24 local (3/8 of the vector), 40 spread on peers.
  auto c64 = policy.Place(cluster, GiB(64), 0);
  ASSERT_TRUE(c64.ok());
  EXPECT_EQ((*c64)[0].server, 0u);
  EXPECT_EQ((*c64)[0].bytes, GiB(24));
  // 96 GB fills every server.
  auto c96 = policy.Place(cluster, GiB(96), 0);
  ASSERT_TRUE(c96.ok());
  EXPECT_EQ(c96->size(), 4u);
  for (const auto& c : *c96) EXPECT_EQ(c.bytes, GiB(24));
}

TEST(RoundRobinTest, SpreadsAcrossServers) {
  cluster::Cluster cluster(SmallConfig());
  RoundRobinPlacement policy(MiB(1));
  auto chunks = policy.Place(cluster, MiB(8), 0);
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(chunks->size(), 4u);  // 2 MiB each
  for (const auto& c : *chunks) EXPECT_EQ(c.bytes, MiB(2));
}

TEST(RoundRobinTest, CursorAdvancesBetweenCalls) {
  cluster::Cluster cluster(SmallConfig());
  RoundRobinPlacement policy(MiB(1));
  auto first = policy.Place(cluster, MiB(1), 0);
  auto second = policy.Place(cluster, MiB(1), 0);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_NE((*first)[0].server, (*second)[0].server);
}

TEST(CapacityWeightedTest, ProportionalToFreeSpace) {
  cluster::Cluster cluster(SmallConfig());
  // Make server 0 half-full: free = 8,16,16,16.
  auto pre = cluster.server(0).shared_allocator().Allocate(
      mem::AllocRequest::Of(mem::FramesForBytes(MiB(8), KiB(4))));
  ASSERT_TRUE(pre.ok());
  CapacityWeightedPlacement policy;
  auto chunks = policy.Place(cluster, MiB(28), 0);  // half of 56 free
  ASSERT_TRUE(chunks.ok());
  std::vector<Bytes> per_server(4, 0);
  for (const auto& c : *chunks) per_server[c.server] += c.bytes;
  // Server 0 gets about half what the others do.
  EXPECT_NEAR(static_cast<double>(per_server[0]),
              static_cast<double>(per_server[1]) / 2, double(MiB(1)));
}

TEST(MakePlacementPolicyTest, UnknownNameIsNull) {
  EXPECT_EQ(MakePlacementPolicy("nope"), nullptr);
  EXPECT_NE(MakePlacementPolicy("local-first"), nullptr);
}

}  // namespace
}  // namespace lmp::core
