// Integration: ComputeShipper plans from real placement; TaskScheduler
// executes the plan on the timing layer.  Also property checks for the
// balanced-slicing mode of the logical deployment.
#include <gtest/gtest.h>

#include "baselines/logical.h"
#include "core/lmp.h"
#include "sim/stream.h"
#include "core/task_scheduler.h"

namespace lmp {
namespace {

TEST(ShipIntegrationTest, PlanFromRealPlacementExecutesOnScheduler) {
  // Functional pool decides WHERE (by real placement)...
  auto pool_or = Pool::Create(PoolOptions::Small());
  ASSERT_TRUE(pool_or.ok());
  Pool& pool = **pool_or;
  auto buf = pool.Allocate(MiB(150), 0);  // spans 3 servers (64 MiB each)
  ASSERT_TRUE(buf.ok());
  auto plan = pool.shipper().Plan(*buf, 0, MiB(150), 0);
  ASSERT_TRUE(plan.ok());
  ASSERT_GE(plan->subtasks.size(), 3u);

  // ...the scheduler decides WHEN, on the timing layer.
  sim::FluidSimulator sim;
  auto topo = fabric::Topology::MakeLogical(&sim, 4,
                                            fabric::LinkProfile::Link0());
  core::TaskScheduler scheduler(&sim, &topo);
  ASSERT_TRUE(scheduler.SubmitPlan(*plan, /*compute_ns_per_byte=*/0.1)
                  .ok());
  scheduler.Drain();
  EXPECT_EQ(scheduler.stats().completed, plan->subtasks.size());
  EXPECT_GT(scheduler.stats().makespan, 0);
}

TEST(ShipIntegrationTest, ShippedBeatsPulledInSimulatedTime) {
  // The §4.4 comparison at the scheduler level: pulling 8 GiB remotely vs
  // shipping 2 GiB sub-tasks to each of 4 servers.
  sim::FluidSimulator pull_sim;
  auto pull_topo = fabric::Topology::MakeLogical(
      &pull_sim, 4, fabric::LinkProfile::Link1());
  std::vector<std::unique_ptr<sim::SpanStream>> pulls;
  for (int c = 0; c < 14; ++c) {
    pulls.push_back(std::make_unique<sim::SpanStream>(
        &pull_sim, std::vector<sim::Span>{sim::Span{
                       8e9 / 14, pull_topo.RemotePath(0, c, 1)}}));
  }
  const auto pulled = sim::RunStreams(&pull_sim, std::move(pulls));

  sim::FluidSimulator ship_sim;
  auto ship_topo = fabric::Topology::MakeLogical(
      &ship_sim, 4, fabric::LinkProfile::Link1());
  core::TaskScheduler scheduler(&ship_sim, &ship_topo);
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(scheduler
                    .Submit(core::ComputeTask{
                        static_cast<cluster::ServerId>(s), 2e9, 0})
                    .ok());
  }
  scheduler.Drain();
  EXPECT_LT(scheduler.stats().makespan, pulled.end - pulled.start);
}

// --- Balanced-slicing properties -------------------------------------------

TEST(BalancedSlicingTest, SameTotalBytesEitherWay) {
  for (const bool balanced : {false, true}) {
    baselines::LogicalDeployment logical(fabric::LinkProfile::Link0());
    baselines::VectorSumParams params;
    params.vector_bytes = GiB(64);
    params.repetitions = 2;
    params.balanced_slices = balanced;
    auto r = logical.RunVectorSum(params);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->local_fraction, 0.375);
    EXPECT_TRUE(r->feasible);
  }
}

TEST(BalancedSlicingTest, AdvantageGrowsWithSlowerLink) {
  // The §4.3 monotonicity claim holds under balanced slicing.
  auto ratio = [](const fabric::LinkProfile& link) {
    baselines::LogicalDeployment logical(link);
    baselines::VectorSumParams params;
    params.vector_bytes = GiB(64);
    params.repetitions = 3;
    params.balanced_slices = true;
    auto r = logical.RunVectorSum(params);
    EXPECT_TRUE(r.ok());
    return r->avg_bandwidth_gbps / (link.bandwidth / 1e9);
  };
  EXPECT_GT(ratio(fabric::LinkProfile::Link1()),
            ratio(fabric::LinkProfile::Link0()));
}

TEST(BalancedSlicingTest, FullyLocalVectorUnaffected) {
  for (const bool balanced : {false, true}) {
    baselines::LogicalDeployment logical(fabric::LinkProfile::Link1());
    baselines::VectorSumParams params;
    params.vector_bytes = GiB(8);
    params.repetitions = 2;
    params.balanced_slices = balanced;
    auto r = logical.RunVectorSum(params);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r->avg_bandwidth_gbps, 97.0, 0.5);
  }
}

}  // namespace
}  // namespace lmp
