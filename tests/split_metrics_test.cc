// Tests for segment splitting and the metrics registry.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/pool_manager.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

class SplitTest : public ::testing::Test {
 protected:
  SplitTest() : cluster_(Config()), manager_(&cluster_) {
    manager_.set_metrics(&metrics_);
  }

  std::vector<std::byte> Pattern(std::size_t n) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>((i * 7) & 0xFF);
    }
    return v;
  }

  MetricsRegistry metrics_;
  cluster::Cluster cluster_;
  PoolManager manager_;
};

TEST_F(SplitTest, SplitPreservesDataAndSpans) {
  auto buf = manager_.Allocate(KiB(64), 0);
  ASSERT_TRUE(buf.ok());
  const auto data = Pattern(KiB(64));
  ASSERT_TRUE(manager_.Write(0, *buf, 0, data).ok());

  ASSERT_TRUE(manager_.SplitSegmentAt(*buf, KiB(24)).ok());
  auto info = manager_.Describe(*buf);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->segments.size(), 2u);
  EXPECT_EQ(info->size, KiB(64));
  EXPECT_EQ(manager_.segment_map().Find(info->segments[0])->size, KiB(24));
  EXPECT_EQ(manager_.segment_map().Find(info->segments[1])->size, KiB(40));

  std::vector<std::byte> out(KiB(64));
  ASSERT_TRUE(manager_.Read(2, *buf, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(SplitTest, SplitEnablesPartialMigration) {
  auto buf = manager_.Allocate(KiB(64), 0);
  ASSERT_TRUE(buf.ok());
  const auto data = Pattern(KiB(64));
  ASSERT_TRUE(manager_.Write(0, *buf, 0, data).ok());

  ASSERT_TRUE(manager_.SplitSegmentAt(*buf, KiB(32)).ok());
  const auto tail = manager_.Describe(*buf)->segments[1];
  ASSERT_TRUE(manager_.MigrateSegment(tail, 2).ok());

  // Half local to 0, half local to 2; data intact end to end.
  auto frac0 = manager_.LocalFraction(*buf, 0);
  auto frac2 = manager_.LocalFraction(*buf, 2);
  ASSERT_TRUE(frac0.ok() && frac2.ok());
  EXPECT_DOUBLE_EQ(*frac0, 0.5);
  EXPECT_DOUBLE_EQ(*frac2, 0.5);
  std::vector<std::byte> out(KiB(64));
  ASSERT_TRUE(manager_.Read(1, *buf, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(SplitTest, BoundaryOffsetsAreNoOps) {
  auto buf = manager_.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(manager_.SplitSegmentAt(*buf, KiB(8)).ok());
  const auto before = manager_.Describe(*buf)->segments.size();
  // Splitting at an existing boundary changes nothing.
  ASSERT_TRUE(manager_.SplitSegmentAt(*buf, KiB(8)).ok());
  EXPECT_EQ(manager_.Describe(*buf)->segments.size(), before);
}

TEST_F(SplitTest, InvalidOffsetsRejected) {
  auto buf = manager_.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_FALSE(manager_.SplitSegmentAt(*buf, 0).ok());
  EXPECT_FALSE(manager_.SplitSegmentAt(*buf, KiB(16)).ok());
  EXPECT_FALSE(manager_.SplitSegmentAt(*buf, 100).ok());  // unaligned
  EXPECT_FALSE(manager_.SplitSegmentAt(999, KiB(4)).ok());
}

TEST_F(SplitTest, FreeAfterSplitReleasesEverything) {
  const Bytes before = cluster_.PooledFreeBytes();
  auto buf = manager_.Allocate(KiB(64), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(manager_.SplitSegmentAt(*buf, KiB(16)).ok());
  ASSERT_TRUE(manager_.SplitSegmentAt(*buf, KiB(48)).ok());
  ASSERT_TRUE(manager_.Free(*buf).ok());
  EXPECT_EQ(cluster_.PooledFreeBytes(), before);
}

TEST_F(SplitTest, MetricsTrackOperations) {
  auto buf = manager_.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(metrics_.Counter("lmp.alloc.buffers"), 1u);
  EXPECT_EQ(metrics_.Counter("lmp.alloc.bytes"), KiB(16));
  ASSERT_TRUE(manager_.SplitSegmentAt(*buf, KiB(8)).ok());
  EXPECT_EQ(metrics_.Counter("lmp.segment.splits"), 1u);
  const auto seg = manager_.Describe(*buf)->segments[1];
  ASSERT_TRUE(manager_.MigrateSegment(seg, 1).ok());
  EXPECT_EQ(metrics_.Counter("lmp.migrate.segments"), 1u);
  EXPECT_EQ(metrics_.Counter("lmp.migrate.bytes"), KiB(8));
  ASSERT_TRUE(manager_.Free(*buf).ok());
  EXPECT_EQ(metrics_.Counter("lmp.free.buffers"), 1u);
}

}  // namespace
}  // namespace lmp::core

namespace lmp {
namespace {

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.Increment("x");
  registry.Increment("x", 4);
  EXPECT_EQ(registry.Counter("x"), 5u);
  EXPECT_EQ(registry.Counter("absent"), 0u);
}

TEST(MetricsTest, GaugesOverwrite) {
  MetricsRegistry registry;
  registry.SetGauge("g", 1.5);
  registry.SetGauge("g", 2.5);
  EXPECT_DOUBLE_EQ(registry.Gauge("g"), 2.5);
}

TEST(MetricsTest, HasAndReset) {
  MetricsRegistry registry;
  registry.Increment("a");
  registry.SetGauge("b", 1);
  EXPECT_TRUE(registry.Has("a"));
  EXPECT_TRUE(registry.Has("b"));
  EXPECT_EQ(registry.size(), 2u);
  registry.Reset();
  EXPECT_FALSE(registry.Has("a"));
  EXPECT_EQ(registry.size(), 0u);
}

TEST(MetricsTest, ReportListsAll) {
  MetricsRegistry registry;
  registry.Increment("lmp.ops", 3);
  registry.SetGauge("lmp.util", 0.5);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("lmp.ops"), std::string::npos);
  EXPECT_NE(report.find("counter"), std::string::npos);
  EXPECT_NE(report.find("gauge"), std::string::npos);
}

TEST(MetricsTest, ScopedTimerSetsWallPrefixedGauge) {
  MetricsRegistry registry;
  { ScopedTimer timer(&registry, "elapsed"); }
  // ScopedTimer reads the host clock, so its gauge lands in the "wall."
  // namespace that the deterministic JSON export excludes.
  EXPECT_FALSE(registry.Has("elapsed"));
  EXPECT_TRUE(registry.Has("wall.elapsed"));
  EXPECT_GE(registry.Gauge("wall.elapsed"), 0.0);
}

TEST(MetricsTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace lmp
