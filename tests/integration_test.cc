// Cross-module integration and randomized property tests.
//
// The randomized sweep drives the pool manager with arbitrary interleaved
// operations (allocate, free, write, read-verify, migrate, crash, restore)
// and asserts global invariants after every step:
//   I1  capacity conservation: used + free == shared capacity, per server;
//   I2  every live buffer's spans cover exactly its size;
//   I3  written data reads back intact, across migrations and failovers;
//   I4  frees return the pool to its exact prior free-byte count.
// Seeds are parameterized so the sweep explores distinct interleavings.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/erasure.h"
#include "core/lmp.h"
#include "core/replication.h"
#include "workloads/trace.h"

namespace lmp {
namespace {

cluster::ClusterConfig FuzzConfig() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(2);
  config.server_shared_memory = MiB(2);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

class RandomOpsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomOpsTest, InvariantsHoldUnderRandomOperations) {
  cluster::Cluster cluster(FuzzConfig());
  core::PoolManager manager(&cluster);
  core::ReplicationManager replication(&manager, 1);
  Rng rng(GetParam());

  struct LiveBuffer {
    core::BufferId id;
    Bytes size;
    std::vector<std::byte> expected;  // mirror of written contents
    bool replicated = false;
  };
  std::vector<LiveBuffer> live;
  int crashed_server = -1;  // at most one down at a time

  auto check_invariants = [&] {
    // I1: allocator accounting per server.
    for (int s = 0; s < cluster.num_servers(); ++s) {
      const auto& alloc = cluster.server(s).shared_allocator();
      ASSERT_EQ(alloc.used_frames() + alloc.free_frames(),
                alloc.num_frames());
    }
    // I2: span coverage for every live buffer.
    for (const LiveBuffer& buf : live) {
      auto spans = manager.Spans(buf.id, 0, buf.size);
      if (!spans.ok()) {
        // Only acceptable failure: data lost to the crash (unreplicated).
        ASSERT_EQ(spans.status().code(), StatusCode::kDataLoss);
        continue;
      }
      Bytes covered = 0;
      for (const auto& s : *spans) covered += s.bytes;
      ASSERT_EQ(covered, buf.size);
    }
  };

  for (int step = 0; step < 300; ++step) {
    const int op = static_cast<int>(rng.NextBounded(100));
    if (op < 30) {
      // Allocate 4-64 KiB and fill with a pattern.
      const Bytes size = KiB(4) * rng.NextInRange(1, 16);
      auto buf = manager.Allocate(
          size, static_cast<cluster::ServerId>(rng.NextBounded(4)));
      if (!buf.ok()) {
        ASSERT_TRUE(IsOutOfMemory(buf.status()) ||
                    IsUnavailable(buf.status()))
            << buf.status();
        continue;
      }
      LiveBuffer lb;
      lb.id = *buf;
      lb.size = size;
      lb.expected.resize(size);
      for (auto& b : lb.expected) {
        b = static_cast<std::byte>(rng.NextBounded(256));
      }
      ASSERT_TRUE(manager.Write(0, lb.id, 0, lb.expected).ok());
      live.push_back(std::move(lb));
    } else if (op < 45 && !live.empty()) {
      // Free a random buffer; capacity must return exactly (I4) unless
      // part of it died with a crashed server.
      const std::size_t idx = rng.NextBounded(live.size());
      ASSERT_TRUE(manager.Free(live[idx].id).ok());
      live.erase(live.begin() + idx);
    } else if (op < 65 && !live.empty()) {
      // Read-verify a random buffer (I3).
      const LiveBuffer& buf = live[rng.NextBounded(live.size())];
      std::vector<std::byte> out(buf.size);
      const Status st = manager.Read(
          static_cast<cluster::ServerId>(rng.NextBounded(4)), buf.id, 0,
          out);
      if (st.ok()) {
        ASSERT_EQ(out, buf.expected);
      } else {
        ASSERT_EQ(st.code(), StatusCode::kDataLoss);
      }
    } else if (op < 80 && !live.empty()) {
      // Migrate one segment of a random buffer.
      const LiveBuffer& buf = live[rng.NextBounded(live.size())];
      auto info = manager.Describe(buf.id);
      ASSERT_TRUE(info.ok());
      const auto seg =
          info->segments[rng.NextBounded(info->segments.size())];
      const auto dst =
          static_cast<cluster::ServerId>(rng.NextBounded(4));
      auto rec = manager.MigrateSegment(seg, dst);
      if (!rec.ok()) {
        ASSERT_TRUE(IsOutOfMemory(rec.status()) ||
                    IsUnavailable(rec.status()) ||
                    rec.status().code() ==
                        StatusCode::kFailedPrecondition ||
                    IsNotFound(rec.status()))
            << rec.status();
      }
    } else if (op < 88 && !live.empty()) {
      // Replicate a random buffer (best effort under capacity pressure).
      LiveBuffer& buf = live[rng.NextBounded(live.size())];
      if (replication.ProtectBuffer(buf.id).ok()) buf.replicated = true;
    } else if (op < 94 && crashed_server < 0) {
      // Crash a random server.
      crashed_server = static_cast<int>(rng.NextBounded(4));
      (void)manager.OnServerCrash(
          static_cast<cluster::ServerId>(crashed_server));
    } else if (crashed_server >= 0) {
      // Recover the crashed server; drop bookkeeping for buffers whose
      // data was lost (they now read as DATA_LOSS forever).
      (void)cluster.server(static_cast<cluster::ServerId>(crashed_server))
          .Recover();
      crashed_server = -1;
      (void)replication.RestoreRedundancy();
    }
    check_invariants();
  }

  // Drain: free everything and verify the pool returns to fully free.
  for (const LiveBuffer& buf : live) {
    ASSERT_TRUE(manager.Free(buf.id).ok());
  }
  for (int s = 0; s < cluster.num_servers(); ++s) {
    if (s == crashed_server) continue;
    const auto& alloc = cluster.server(s).shared_allocator();
    EXPECT_EQ(alloc.used_frames(), 0u) << "server " << s << " leaked";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpsTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Scenario: the full runtime loop against a shifting workload ----------

TEST(EndToEndTest, RuntimeAdaptsToWorkloadShift) {
  PoolOptions opts = PoolOptions::Small();
  opts.runtime.migration_period = 0;
  opts.runtime.sizing_period = 0;
  auto pool_or = Pool::Create(opts);
  ASSERT_TRUE(pool_or.ok());
  Pool& pool = **pool_or;
  auto& manager = pool.manager();
  manager.access_tracker().set_half_life(Seconds(5));

  // Data born on server 1.
  auto buf = pool.Allocate(MiB(4), 1);
  ASSERT_TRUE(buf.ok());

  // Phase 1: server 1 is the consumer; nothing should move.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        manager.Touch(1, *buf, 0, MiB(4), Milliseconds(i * 10)).ok());
  }
  EXPECT_TRUE(pool.Tick(Milliseconds(200)).empty());

  // Phase 2: consumption shifts to server 3.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(manager
                    .Touch(3, *buf, 0, MiB(4),
                           Milliseconds(300 + i * 10))
                    .ok());
  }
  const auto moves = pool.Tick(Milliseconds(800));
  ASSERT_FALSE(moves.empty());
  auto frac = manager.LocalFraction(*buf, 3);
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(*frac, 1.0);
}

// --- Scenario: trace-driven balancing with the replayer --------------------

TEST(EndToEndTest, ZipfTraceBalancingImprovesLocality) {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(8);
  config.server_shared_memory = MiB(8);
  config.frame_size = KiB(4);
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  manager.access_tracker().set_half_life(Seconds(100));
  core::MigrationEngine engine(&manager);

  std::vector<core::BufferId> buffers;
  for (int i = 0; i < 8; ++i) {
    auto buf = manager.Allocate(
        MiB(1), static_cast<cluster::ServerId>((i % 3) + 1));
    ASSERT_TRUE(buf.ok());
    buffers.push_back(*buf);
  }
  workloads::TraceReplayer replayer(&manager, buffers);
  const workloads::Trace trace = workloads::TraceGenerator::ZipfOverBuffers(
      0, 8, MiB(1), KiB(64), 0.9, 2000, 11);

  auto before = replayer.Replay(trace, Seconds(1));
  ASSERT_TRUE(before.ok());
  EXPECT_DOUBLE_EQ(before->LocalFraction(), 0.0);

  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(engine.RunOnce(Seconds(2)).ok());
  }
  auto after = replayer.Replay(trace, Seconds(3));
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->LocalFraction(), 0.5);
}

// --- Scenario: erasure + migration interplay -------------------------------

TEST(EndToEndTest, MigrationOfErasureMemberKeepsGroupRecoverable) {
  cluster::ClusterConfig config = FuzzConfig();
  config.num_servers = 5;
  cluster::Cluster cluster(config);
  core::PoolManager manager(&cluster);
  core::XorErasureManager erasure(&manager, 2);

  std::vector<core::BufferId> buffers;
  std::vector<core::SegmentId> segments;
  std::vector<std::vector<std::byte>> data;
  for (int s = 0; s < 2; ++s) {
    auto buf = manager.Allocate(KiB(32),
                                static_cast<cluster::ServerId>(s));
    ASSERT_TRUE(buf.ok());
    buffers.push_back(*buf);
    segments.push_back(manager.Describe(*buf)->segments[0]);
    data.emplace_back(KiB(32), std::byte{static_cast<unsigned char>(s + 1)});
    ASSERT_TRUE(manager.Write(0, *buf, 0, data.back()).ok());
  }
  ASSERT_TRUE(erasure.ProtectSegments(segments).ok());

  // Migrate member 0 somewhere else, then crash its new home.
  ASSERT_TRUE(manager.MigrateSegment(segments[0], 4).ok());
  ASSERT_TRUE(manager.OnServerCrash(4).ok());
  ASSERT_EQ(manager.segment_map().Find(segments[0])->state,
            core::SegmentState::kLost);

  // NOTE: parity was computed before the migration; the bytes are
  // unchanged by the move, so recovery still reconstructs correctly.
  ASSERT_TRUE(erasure.RecoverSegment(segments[0]).ok());
  std::vector<std::byte> out(KiB(32));
  ASSERT_TRUE(manager.Read(1, buffers[0], 0, out).ok());
  EXPECT_EQ(out, data[0]);
}

}  // namespace
}  // namespace lmp
