// Tests for trace generation and replay.
#include <gtest/gtest.h>

#include <set>

#include "workloads/trace.h"

namespace lmp::workloads {
namespace {

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(8);
  config.server_shared_memory = MiB(8);
  config.frame_size = KiB(4);
  return config;
}

TEST(TraceGeneratorTest, SequentialCoversBufferExactly) {
  const Trace trace = TraceGenerator::Sequential(0, 0, KiB(10), KiB(4));
  ASSERT_EQ(trace.size(), 3u);
  Bytes total = 0;
  Bytes expected_off = 0;
  for (const TraceOp& op : trace) {
    EXPECT_EQ(op.offset, expected_off);
    expected_off += op.length;
    total += op.length;
  }
  EXPECT_EQ(total, KiB(10));  // tail op is the 2 KiB remainder
}

TEST(TraceGeneratorTest, StridedSkips) {
  const Trace trace = TraceGenerator::Strided(0, 0, KiB(64), KiB(4), 4);
  ASSERT_EQ(trace.size(), 4u);  // offsets 0, 16K, 32K, 48K
  EXPECT_EQ(trace[1].offset, KiB(16));
}

TEST(TraceGeneratorTest, UniformRandomInBoundsAndDeterministic) {
  const Trace a = TraceGenerator::UniformRandom(1, 0, KiB(64), KiB(4), 100,
                                                7);
  const Trace b = TraceGenerator::UniformRandom(1, 0, KiB(64), KiB(4), 100,
                                                7);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(a[i].offset + a[i].length, KiB(64) + 1);
    EXPECT_EQ(a[i].offset % KiB(4), 0u);
    EXPECT_EQ(a[i].offset, b[i].offset);  // same seed, same trace
  }
}

TEST(TraceGeneratorTest, ZipfConcentratesOnFewBuffers) {
  const Trace trace = TraceGenerator::ZipfOverBuffers(
      0, 64, KiB(64), KiB(4), 0.99, 5000, 3);
  std::vector<int> counts(64, 0);
  for (const TraceOp& op : trace) ++counts[op.buffer_index];
  // The hottest buffer should dwarf the median.
  std::vector<int> sorted = counts;
  std::sort(sorted.rbegin(), sorted.rend());
  EXPECT_GT(sorted[0], 10 * std::max(sorted[32], 1));
}

TEST(TraceGeneratorTest, InterleaveRoundRobins) {
  const Trace a = TraceGenerator::Sequential(0, 0, KiB(8), KiB(4));
  const Trace b = TraceGenerator::Sequential(1, 1, KiB(8), KiB(4));
  const Trace mixed = TraceGenerator::Interleave({a, b});
  ASSERT_EQ(mixed.size(), 4u);
  EXPECT_EQ(mixed[0].from, 0u);
  EXPECT_EQ(mixed[1].from, 1u);
  EXPECT_EQ(mixed[2].from, 0u);
}

class TraceReplayTest : public ::testing::Test {
 protected:
  TraceReplayTest() : cluster_(Config()), manager_(&cluster_) {}
  cluster::Cluster cluster_;
  core::PoolManager manager_;
};

TEST_F(TraceReplayTest, LocalityAccountingMatchesPlacement) {
  auto local = manager_.Allocate(MiB(1), 0);
  auto remote = manager_.Allocate(MiB(1), 2);
  ASSERT_TRUE(local.ok() && remote.ok());
  TraceReplayer replayer(&manager_, {*local, *remote});

  Trace trace;
  // Server 0 reads both buffers fully.
  for (const Trace& t :
       {TraceGenerator::Sequential(0, 0, MiB(1), KiB(64)),
        TraceGenerator::Sequential(0, 1, MiB(1), KiB(64))}) {
    trace.insert(trace.end(), t.begin(), t.end());
  }
  auto stats = replayer.Replay(trace);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->local_bytes, double(MiB(1)));
  EXPECT_DOUBLE_EQ(stats->remote_bytes, double(MiB(1)));
  EXPECT_DOUBLE_EQ(stats->LocalFraction(), 0.5);
  EXPECT_EQ(stats->ops, 32u);
}

TEST_F(TraceReplayTest, ReplayFeedsHotnessProfile) {
  auto buf = manager_.Allocate(MiB(1), 1);
  ASSERT_TRUE(buf.ok());
  TraceReplayer replayer(&manager_, {*buf});
  auto stats = replayer.Replay(
      TraceGenerator::Sequential(3, 0, MiB(1), KiB(64)), Seconds(1));
  ASSERT_TRUE(stats.ok());
  const auto seg = manager_.Describe(*buf)->segments[0];
  core::AccessTracker::DominantAccessor dom;
  ASSERT_TRUE(manager_.access_tracker().Dominant(seg, Seconds(1), &dom));
  EXPECT_EQ(dom.server, 3u);
}

TEST_F(TraceReplayTest, BadBufferIndexRejected) {
  auto buf = manager_.Allocate(MiB(1), 0);
  ASSERT_TRUE(buf.ok());
  TraceReplayer replayer(&manager_, {*buf});
  Trace trace{TraceOp{0, 5, 0, KiB(4), false}};
  EXPECT_FALSE(replayer.Replay(trace).ok());
}

TEST_F(TraceReplayTest, ReplayBeforeAndAfterMigrationShowsImprovement) {
  auto buf = manager_.Allocate(MiB(1), 2);
  ASSERT_TRUE(buf.ok());
  TraceReplayer replayer(&manager_, {*buf});
  const Trace trace = TraceGenerator::Sequential(0, 0, MiB(1), KiB(64));

  auto before = replayer.Replay(trace, Seconds(1));
  ASSERT_TRUE(before.ok());
  EXPECT_DOUBLE_EQ(before->LocalFraction(), 0.0);

  const auto seg = manager_.Describe(*buf)->segments[0];
  ASSERT_TRUE(manager_.MigrateSegment(seg, 0).ok());

  auto after = replayer.Replay(trace, Seconds(2));
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->LocalFraction(), 1.0);
}

}  // namespace
}  // namespace lmp::workloads
