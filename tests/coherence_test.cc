// Tests for the coherence directory (MSI, message counting, granularity)
// and the coherent-region primitives (lock, barrier, fetch-add).
#include <gtest/gtest.h>

#include "core/coherence.h"
#include "core/coherent_region.h"

namespace lmp::core {
namespace {

// --- CoherenceDirectory --------------------------------------------------------

TEST(CoherenceTest, ColdReadFills) {
  CoherenceDirectory dir(1024, 64, 4);
  auto msgs = dir.AcquireShared(0, 0, 8);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, 1);  // one fill
  EXPECT_EQ(dir.StateOf(0, 0), BlockState::kShared);
}

TEST(CoherenceTest, RepeatReadHits) {
  CoherenceDirectory dir(1024, 64, 4);
  ASSERT_TRUE(dir.AcquireShared(0, 0, 8).ok());
  auto msgs = dir.AcquireShared(0, 0, 8);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, 0);
  EXPECT_EQ(dir.stats().hits, 1u);
}

TEST(CoherenceTest, MultipleSharersCoexist) {
  CoherenceDirectory dir(1024, 64, 4);
  ASSERT_TRUE(dir.AcquireShared(0, 0, 8).ok());
  ASSERT_TRUE(dir.AcquireShared(1, 0, 8).ok());
  ASSERT_TRUE(dir.AcquireShared(2, 0, 8).ok());
  EXPECT_EQ(dir.SharerCount(0), 3);
  EXPECT_EQ(dir.StateOf(1, 0), BlockState::kShared);
}

TEST(CoherenceTest, WriteInvalidatesAllSharers) {
  CoherenceDirectory dir(1024, 64, 4);
  ASSERT_TRUE(dir.AcquireShared(0, 0, 8).ok());
  ASSERT_TRUE(dir.AcquireShared(1, 0, 8).ok());
  auto msgs = dir.AcquireExclusive(2, 0, 8);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, 3);  // 2 invalidations + 1 fill
  EXPECT_EQ(dir.stats().invalidation_msgs, 2u);
  EXPECT_EQ(dir.StateOf(2, 0), BlockState::kModified);
  EXPECT_EQ(dir.StateOf(0, 0), BlockState::kInvalid);
}

TEST(CoherenceTest, WriterUpgradesInPlace) {
  CoherenceDirectory dir(1024, 64, 4);
  ASSERT_TRUE(dir.AcquireShared(0, 0, 8).ok());
  auto msgs = dir.AcquireExclusive(0, 0, 8);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, 0);  // sole sharer upgrades silently
  EXPECT_EQ(dir.StateOf(0, 0), BlockState::kModified);
}

TEST(CoherenceTest, ReadOfModifiedDowngradesOwner) {
  CoherenceDirectory dir(1024, 64, 4);
  ASSERT_TRUE(dir.AcquireExclusive(0, 0, 8).ok());
  auto msgs = dir.AcquireShared(1, 0, 8);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, 2);  // downgrade + fill
  EXPECT_EQ(dir.stats().downgrade_msgs, 1u);
  EXPECT_EQ(dir.StateOf(0, 0), BlockState::kShared);
  EXPECT_EQ(dir.StateOf(1, 0), BlockState::kShared);
}

TEST(CoherenceTest, OwnerRereadsOwnDirtyCopy) {
  CoherenceDirectory dir(1024, 64, 4);
  ASSERT_TRUE(dir.AcquireExclusive(0, 0, 8).ok());
  auto msgs = dir.AcquireShared(0, 0, 8);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, 0);
  EXPECT_EQ(dir.StateOf(0, 0), BlockState::kModified);
}

TEST(CoherenceTest, WriteStealsModifiedBlock) {
  CoherenceDirectory dir(1024, 64, 4);
  ASSERT_TRUE(dir.AcquireExclusive(0, 0, 8).ok());
  auto msgs = dir.AcquireExclusive(1, 0, 8);
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, 2);  // invalidate owner + fill
  EXPECT_EQ(dir.StateOf(1, 0), BlockState::kModified);
  EXPECT_EQ(dir.StateOf(0, 0), BlockState::kInvalid);
}

TEST(CoherenceTest, RangeSpanningBlocksTouchesEach) {
  CoherenceDirectory dir(1024, 64, 4);
  auto msgs = dir.AcquireShared(0, 60, 8);  // straddles blocks 0 and 1
  ASSERT_TRUE(msgs.ok());
  EXPECT_EQ(*msgs, 2);
}

TEST(CoherenceTest, FalseSharingAtLineGranularity) {
  // Two hosts write adjacent 8-byte counters within one 64-byte line:
  // line-granularity tracking ping-pongs; 8-byte tracking does not.
  CoherenceDirectory line(1024, 64, 2);
  CoherenceDirectory sub(1024, 8, 2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(line.AcquireExclusive(0, 0, 8).ok());
    ASSERT_TRUE(line.AcquireExclusive(1, 8, 8).ok());
    ASSERT_TRUE(sub.AcquireExclusive(0, 0, 8).ok());
    ASSERT_TRUE(sub.AcquireExclusive(1, 8, 8).ok());
  }
  EXPECT_GT(line.stats().invalidation_msgs, 15u);  // ping-pong every round
  EXPECT_EQ(sub.stats().invalidation_msgs, 0u);    // disjoint blocks
}

TEST(CoherenceTest, ReleaseHostDropsItsCopies) {
  CoherenceDirectory dir(1024, 64, 4);
  ASSERT_TRUE(dir.AcquireExclusive(0, 0, 8).ok());
  ASSERT_TRUE(dir.AcquireShared(1, 128, 8).ok());
  dir.ReleaseHost(0);
  EXPECT_EQ(dir.StateOf(0, 0), BlockState::kInvalid);
  EXPECT_EQ(dir.SharerCount(0), 0);
  EXPECT_EQ(dir.StateOf(1, 128), BlockState::kShared);  // others untouched
}

TEST(CoherenceTest, RangeValidation) {
  CoherenceDirectory dir(1024, 64, 4);
  EXPECT_FALSE(dir.AcquireShared(0, 1020, 8).ok());   // beyond region
  EXPECT_FALSE(dir.AcquireShared(9, 0, 8).ok());      // bad host
  EXPECT_FALSE(dir.AcquireShared(0, 0, 0).ok());      // empty
}

// --- CoherentRegion --------------------------------------------------------------

TEST(CoherentRegionTest, LoadStoreRoundTrip) {
  CoherentRegion region(1024, 16, 4);
  ASSERT_TRUE(region.Store(0, 64, 0xDEADBEEF).ok());
  auto v = region.Load(1, 64);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xDEADBEEFu);
}

TEST(CoherentRegionTest, FetchAddReturnsPrevious) {
  CoherentRegion region(1024, 16, 4);
  auto p0 = region.FetchAdd(0, 0, 5);
  auto p1 = region.FetchAdd(1, 0, 3);
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 5u);
  EXPECT_EQ(*region.Load(2, 0), 8u);
}

TEST(CoherentRegionTest, CompareExchangeSemantics) {
  CoherentRegion region(1024, 16, 4);
  bool ok = false;
  ASSERT_TRUE(region.CompareExchange(0, 0, 0, 42, &ok).ok());
  EXPECT_TRUE(ok);
  auto prev = region.CompareExchange(1, 0, 0, 99, &ok);
  ASSERT_TRUE(prev.ok());
  EXPECT_FALSE(ok);
  EXPECT_EQ(*prev, 42u);
  EXPECT_EQ(*region.Load(0, 0), 42u);
}

TEST(CoherentRegionTest, MisalignedCellRejected) {
  CoherentRegion region(1024, 16, 4);
  EXPECT_FALSE(region.Load(0, 3).ok());
  EXPECT_FALSE(region.Store(0, 1020, 1).ok());
}

TEST(CoherentRegionTest, AccessesDriveCoherenceTraffic) {
  CoherentRegion region(1024, 16, 4);
  ASSERT_TRUE(region.Store(0, 0, 1).ok());
  ASSERT_TRUE(region.Load(1, 0).ok());  // downgrade + fill
  EXPECT_GT(region.directory().stats().TotalMessages(), 1u);
}

// --- DistributedLock ------------------------------------------------------------

TEST(DistributedLockTest, MutualExclusion) {
  CoherentRegion region(1024, 16, 4);
  DistributedLock lock(&region, 0);
  auto got0 = lock.TryLock(0);
  ASSERT_TRUE(got0.ok());
  EXPECT_TRUE(*got0);
  auto got1 = lock.TryLock(1);
  ASSERT_TRUE(got1.ok());
  EXPECT_FALSE(*got1);
  EXPECT_EQ(lock.holder(), 0);
  ASSERT_TRUE(lock.Unlock(0).ok());
  auto got1b = lock.TryLock(1);
  ASSERT_TRUE(got1b.ok());
  EXPECT_TRUE(*got1b);
}

TEST(DistributedLockTest, UnlockByNonHolderRejected) {
  CoherentRegion region(1024, 16, 4);
  DistributedLock lock(&region, 0);
  ASSERT_TRUE(*lock.TryLock(2));
  EXPECT_FALSE(lock.Unlock(1).ok());
  EXPECT_TRUE(lock.Unlock(2).ok());
}

TEST(DistributedLockTest, StatsCountContention) {
  CoherentRegion region(1024, 16, 4);
  DistributedLock lock(&region, 0);
  ASSERT_TRUE(*lock.TryLock(0));
  ASSERT_FALSE(*lock.TryLock(1));
  ASSERT_FALSE(*lock.TryLock(2));
  EXPECT_EQ(lock.acquisitions(), 1u);
  EXPECT_EQ(lock.failed_attempts(), 2u);
}

// --- CoherentBarrier --------------------------------------------------------------

TEST(CoherentBarrierTest, ReleasesOnLastArrival) {
  CoherentRegion region(1024, 16, 4);
  CoherentBarrier barrier(&region, 0, 3);
  EXPECT_FALSE(*barrier.Arrive(0));
  EXPECT_FALSE(*barrier.Arrive(1));
  EXPECT_TRUE(*barrier.Arrive(2));  // releasing arrival
  EXPECT_EQ(*barrier.Generation(0), 1u);
}

TEST(CoherentBarrierTest, ReusableAcrossGenerations) {
  CoherentRegion region(1024, 16, 2);
  CoherentBarrier barrier(&region, 0, 2);
  for (int round = 1; round <= 3; ++round) {
    EXPECT_FALSE(*barrier.Arrive(0));
    EXPECT_TRUE(*barrier.Arrive(1));
    EXPECT_EQ(*barrier.Generation(0),
              static_cast<std::uint64_t>(round));
  }
}

}  // namespace
}  // namespace lmp::core
