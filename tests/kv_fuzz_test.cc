// Randomized reference-model test for PoolKvStore: random interleavings of
// Put/Get/Delete (from random servers, with occasional shard migrations)
// must match a std::map reference exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.h"
#include "workloads/kv_store.h"

namespace lmp::workloads {
namespace {

class KvFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvFuzzTest, MatchesReferenceModelUnderRandomOps) {
  auto pool_or = Pool::Create(PoolOptions::Small());
  ASSERT_TRUE(pool_or.ok());
  Pool& pool = **pool_or;
  auto kv = PoolKvStore::Create(&pool, 256, 0);
  ASSERT_TRUE(kv.ok());

  Rng rng(GetParam());
  std::map<std::uint64_t, std::string> reference;
  const std::uint64_t key_space = 300;  // denser than capacity: collisions

  for (int step = 0; step < 2000; ++step) {
    const auto from =
        static_cast<cluster::ServerId>(rng.NextBounded(4));
    const std::uint64_t key = rng.NextBounded(key_space);
    const int op = static_cast<int>(rng.NextBounded(100));

    if (op < 45) {
      // Put (may fail with kOutOfMemory when the table is truly full).
      const std::string value =
          "v" + std::to_string(key) + "-" + std::to_string(step);
      const Status st = kv->Put(
          from, key,
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(value.data()),
              value.size()));
      if (st.ok()) {
        reference[key] = value;
      } else {
        ASSERT_TRUE(IsOutOfMemory(st)) << st;
      }
    } else if (op < 80) {
      // Get must agree with the reference.
      auto got = kv->Get(from, key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(IsNotFound(got.status())) << "key " << key;
      } else {
        ASSERT_TRUE(got.ok()) << "key " << key;
        const char* p = reinterpret_cast<const char*>(got->data());
        EXPECT_EQ(std::string(p, it->second.size()), it->second);
      }
    } else if (op < 95) {
      // Delete.
      const Status st = kv->Delete(from, key);
      if (reference.erase(key) > 0) {
        EXPECT_TRUE(st.ok());
      } else {
        EXPECT_TRUE(IsNotFound(st));
      }
    } else {
      // Migrate one of the table's segments — Get/Put must be oblivious.
      auto info = pool.manager().Describe(kv->buffer());
      ASSERT_TRUE(info.ok());
      const auto seg =
          info->segments[rng.NextBounded(info->segments.size())];
      const auto dst =
          static_cast<cluster::ServerId>(rng.NextBounded(4));
      (void)pool.manager().MigrateSegment(seg, dst);  // may legally fail
    }
    ASSERT_EQ(kv->size(), reference.size()) << "step " << step;
  }

  // Full final audit.
  for (const auto& [key, value] : reference) {
    auto got = kv->Get(0, key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    const char* p = reinterpret_cast<const char*>(got->data());
    EXPECT_EQ(std::string(p, value.size()), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace lmp::workloads
