// Randomized reference-model test for PoolKvStore: random interleavings of
// Put/Get/Delete (from random servers, with occasional shard migrations)
// must match a std::map reference exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.h"
#include "workloads/kv_store.h"

namespace lmp::workloads {
namespace {

class KvFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvFuzzTest, MatchesReferenceModelUnderRandomOps) {
  auto pool_or = Pool::Create(PoolOptions::Small());
  ASSERT_TRUE(pool_or.ok());
  Pool& pool = **pool_or;
  auto kv = PoolKvStore::Create(&pool, 256, 0);
  ASSERT_TRUE(kv.ok());

  Rng rng(GetParam());
  std::map<std::uint64_t, std::string> reference;
  const std::uint64_t key_space = 300;  // denser than capacity: collisions

  for (int step = 0; step < 2000; ++step) {
    const auto from =
        static_cast<cluster::ServerId>(rng.NextBounded(4));
    const std::uint64_t key = rng.NextBounded(key_space);
    const int op = static_cast<int>(rng.NextBounded(100));

    if (op < 45) {
      // Put (may fail with kOutOfMemory when the table is truly full).
      const std::string value =
          "v" + std::to_string(key) + "-" + std::to_string(step);
      const Status st = kv->Put(
          from, key,
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(value.data()),
              value.size()));
      if (st.ok()) {
        reference[key] = value;
      } else {
        ASSERT_TRUE(IsOutOfMemory(st)) << st;
      }
    } else if (op < 80) {
      // Get must agree with the reference.
      auto got = kv->Get(from, key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_TRUE(IsNotFound(got.status())) << "key " << key;
      } else {
        ASSERT_TRUE(got.ok()) << "key " << key;
        const char* p = reinterpret_cast<const char*>(got->data());
        EXPECT_EQ(std::string(p, it->second.size()), it->second);
      }
    } else if (op < 95) {
      // Delete.
      const Status st = kv->Delete(from, key);
      if (reference.erase(key) > 0) {
        EXPECT_TRUE(st.ok());
      } else {
        EXPECT_TRUE(IsNotFound(st));
      }
    } else {
      // Migrate one of the table's segments — Get/Put must be oblivious.
      auto info = pool.manager().Describe(kv->buffer());
      ASSERT_TRUE(info.ok());
      const auto seg =
          info->segments[rng.NextBounded(info->segments.size())];
      const auto dst =
          static_cast<cluster::ServerId>(rng.NextBounded(4));
      (void)pool.manager().MigrateSegment(seg, dst);  // may legally fail
    }
    ASSERT_EQ(kv->size(), reference.size()) << "step " << step;
  }

  // Full final audit.
  for (const auto& [key, value] : reference) {
    auto got = kv->Get(0, key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    const char* p = reinterpret_cast<const char*>(got->data());
    EXPECT_EQ(std::string(p, value.size()), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505));

std::span<const std::byte> AsBytes(const std::string& s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size());
}

// Delete/reinsert churn grows tombstones without bound; probe chains must
// keep terminating, reuse tombstone slots instead of reporting a full
// table, and never double-count size.  (Regression for the linear-probing
// termination audit.)
TEST(KvTombstoneChurnTest, DeleteReinsertChurnStaysConsistent) {
  auto pool_or = Pool::Create(PoolOptions::Small());
  ASSERT_TRUE(pool_or.ok());
  auto kv = PoolKvStore::Create(pool_or->get(), 16, 0);  // 32 buckets
  ASSERT_TRUE(kv.ok());

  // Fill half the table, then churn every key through delete+reinsert far
  // more times than there are buckets: every cycle turns a live slot into
  // a tombstone and consumes a (possibly different) slot on reinsert.
  const std::uint64_t kKeys = 16;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(kv->Put(0, k, AsBytes("seed" + std::to_string(k))).ok());
  }
  for (int round = 0; round < 64; ++round) {
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(kv->Delete(0, k).ok()) << "round " << round << " key " << k;
      const std::string v = "r" + std::to_string(round);
      ASSERT_TRUE(kv->Put(0, k, AsBytes(v)).ok())
          << "round " << round << " key " << k;
      ASSERT_EQ(kv->size(), kKeys);
    }
  }
  // Every key readable with its final value; absent keys still terminate.
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    auto got = kv->Get(0, k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(got->data()), 3),
              "r63");
  }
  EXPECT_TRUE(IsNotFound(kv->Get(0, 999).status()));
}

// Keys above kMaxKey would wrap tag = key + 2 onto the empty/tombstone
// sentinels: a live record stored as tag 0 terminates every probe chain
// through it, and one stored as tag 1 gets clobbered by the next colliding
// insert.  All entry points must reject them instead.
TEST(KvSentinelKeyTest, TopTwoKeysAreRejectedEverywhere) {
  auto pool_or = Pool::Create(PoolOptions::Small());
  ASSERT_TRUE(pool_or.ok());
  auto kv = PoolKvStore::Create(pool_or->get(), 16, 0);
  ASSERT_TRUE(kv.ok());

  const std::string v = "x";
  for (const std::uint64_t bad : {~0ull, ~0ull - 1}) {
    EXPECT_TRUE(IsInvalidArgument(kv->Put(0, bad, AsBytes(v)))) << bad;
    EXPECT_TRUE(IsInvalidArgument(kv->Get(0, bad).status())) << bad;
    EXPECT_TRUE(IsInvalidArgument(kv->Delete(0, bad))) << bad;
    core::DistributedLock lock(&(*pool_or)->coherent(), 0);
    EXPECT_TRUE(IsInvalidArgument(
        kv->PutLocked(&lock, 0, bad, AsBytes(v))))
        << bad;
    EXPECT_FALSE(lock.IsHeld());  // the reject path still releases
  }
  // The largest representable key is fine end to end.
  ASSERT_TRUE(kv->Put(0, PoolKvStore::kMaxKey, AsBytes(v)).ok());
  EXPECT_TRUE(kv->Get(0, PoolKvStore::kMaxKey).ok());
  ASSERT_TRUE(kv->Delete(0, PoolKvStore::kMaxKey).ok());
  EXPECT_EQ(kv->size(), 0u);
}

// PutLocked's time model: every TryLock CAS and the final unlock cost one
// coherent round trip, so two writers hitting the same lock serialize with
// nonzero measured latency — and a wedged lock burns max_spins * rtt, not
// zero time.
TEST(KvLockedPutTimingTest, SpinsAndUnlockAdvanceSimTime) {
  auto pool_or = Pool::Create(PoolOptions::Small());
  ASSERT_TRUE(pool_or.ok());
  auto kv = PoolKvStore::Create(pool_or->get(), 64, 0);
  ASSERT_TRUE(kv.ok());
  core::DistributedLock lock(&(*pool_or)->coherent(), 0);
  const SimTime rtt = 100.0;
  const std::string v = "timed";

  // Uncontended writer: one winning CAS + unlock = 2 round trips.
  SimTime done_a = 0;
  ASSERT_TRUE(kv->PutLocked(&lock, 1, 7, AsBytes(v), /*now=*/0,
                            /*max_spins=*/10, rtt, &done_a)
                  .ok());
  EXPECT_DOUBLE_EQ(done_a, 2 * rtt);

  // Second writer starts where the first finished: it serializes strictly
  // after, with its own nonzero latency.
  SimTime done_b = 0;
  ASSERT_TRUE(kv->PutLocked(&lock, 2, 7, AsBytes(v), done_a,
                            /*max_spins=*/10, rtt, &done_b)
                  .ok());
  EXPECT_DOUBLE_EQ(done_b, done_a + 2 * rtt);
  EXPECT_GT(done_b, done_a);

  // A wedged holder: the timeout is measured, not instantaneous.
  ASSERT_TRUE(*lock.TryLock(3));
  SimTime done_c = 0;
  const Status st = kv->PutLocked(&lock, 1, 8, AsBytes(v), done_b,
                                  /*max_spins=*/5, rtt, &done_c);
  EXPECT_TRUE(IsUnavailable(st));
  EXPECT_DOUBLE_EQ(done_c, done_b + 5 * rtt);
}

}  // namespace
}  // namespace lmp::workloads
