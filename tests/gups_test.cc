// Tests for the GUPS workload and its throughput model.
#include <gtest/gtest.h>

#include "workloads/gups.h"
#include "workloads/kv_store.h"

namespace lmp::workloads {
namespace {

std::unique_ptr<Pool> MakePool() {
  auto pool = Pool::Create(PoolOptions::Small());
  EXPECT_TRUE(pool.ok());
  return std::move(pool).value();
}

TEST(GupsTest, UpdatesVerifyAgainstReplay) {
  auto pool = MakePool();
  auto gups = Gups::Create(pool.get(), 4096, 0);
  ASSERT_TRUE(gups.ok());
  ASSERT_TRUE(gups->Run(1, 10000, /*seed=*/99).ok());
  auto ok = gups->Verify(1, 10000, 99);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST(GupsTest, DifferentSeedsDiverge) {
  auto pool = MakePool();
  auto gups = Gups::Create(pool.get(), 4096, 0);
  ASSERT_TRUE(gups.ok());
  ASSERT_TRUE(gups->Run(0, 5000, 1).ok());
  auto ok = gups->Verify(0, 5000, /*wrong seed=*/2);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

TEST(GupsTest, DigestIsDeterministic) {
  auto pool_a = MakePool();
  auto pool_b = MakePool();
  auto a = Gups::Create(pool_a.get(), 1024, 0);
  auto b = Gups::Create(pool_b.get(), 1024, 0);
  ASSERT_TRUE(a.ok() && b.ok());
  auto da = a->Run(0, 2000, 7);
  auto db = b->Run(0, 2000, 7);
  ASSERT_TRUE(da.ok() && db.ok());
  EXPECT_EQ(*da, *db);
}

TEST(GupsTest, UpdatesFeedHotnessProfile) {
  auto pool = MakePool();
  auto gups = Gups::Create(pool.get(), 8192, 1);
  ASSERT_TRUE(gups.ok());
  ASSERT_TRUE(gups->Run(3, 2000, 5, Seconds(1)).ok());
  const auto seg =
      pool->manager().Describe(gups->table().id())->segments[0];
  core::AccessTracker::DominantAccessor dom;
  ASSERT_TRUE(pool->manager().access_tracker().Dominant(seg, Seconds(1),
                                                        &dom));
  EXPECT_EQ(dom.server, 3u);
}

// --- Throughput model -------------------------------------------------------

TEST(GupsModelTest, FullLocalityMatchesLoadedLatencyRatio) {
  GupsThroughputModel local{.cores = 14, .local_fraction = 1.0,
                            .link = fabric::LinkProfile::Link0()};
  GupsThroughputModel remote{.cores = 14, .local_fraction = 0.0,
                             .link = fabric::LinkProfile::Link0()};
  // 418 / 148 = 2.8x (§4.3's Link0 ratio).
  EXPECT_NEAR(local.Mups() / remote.Mups(), 2.8, 0.05);
}

TEST(GupsModelTest, Link1RatioIsLarger) {
  GupsThroughputModel local{.cores = 14, .local_fraction = 1.0,
                            .link = fabric::LinkProfile::Link1()};
  GupsThroughputModel remote{.cores = 14, .local_fraction = 0.0,
                             .link = fabric::LinkProfile::Link1()};
  EXPECT_NEAR(local.Mups() / remote.Mups(), 3.6, 0.07);
}

TEST(GupsModelTest, SoftwareOverheadDominates) {
  GupsThroughputModel cxl{.cores = 14, .local_fraction = 0.0,
                          .link = fabric::LinkProfile::Link0()};
  GupsThroughputModel swap{.cores = 14, .local_fraction = 0.0,
                           .link = fabric::LinkProfile::Link0(),
                           .software_overhead_ns = Microseconds(4)};
  EXPECT_GT(cxl.Mups() / swap.Mups(), 9.0);
}

TEST(GupsModelTest, ThroughputScalesWithCores) {
  GupsThroughputModel one{.cores = 1, .local_fraction = 0.5};
  GupsThroughputModel many{.cores = 14, .local_fraction = 0.5};
  EXPECT_NEAR(many.Mups() / one.Mups(), 14.0, 1e-9);
}

// --- KV locked put (coherent-region coordination) -------------------------

TEST(KvLockedPutTest, SerializesAndSucceeds) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 64, 0);
  ASSERT_TRUE(kv.ok());
  core::DistributedLock lock(&pool->coherent(), 0);
  const char v[] = "locked";
  ASSERT_TRUE(kv->PutLocked(&lock, 2, 9,
                            std::span<const std::byte>(
                                reinterpret_cast<const std::byte*>(v),
                                sizeof(v) - 1))
                  .ok());
  EXPECT_FALSE(lock.IsHeld());  // released afterwards
  EXPECT_TRUE(kv->Get(0, 9).ok());
  EXPECT_GE(lock.acquisitions(), 1u);
}

TEST(KvLockedPutTest, HeldLockTimesOut) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 64, 0);
  ASSERT_TRUE(kv.ok());
  core::DistributedLock lock(&pool->coherent(), 0);
  ASSERT_TRUE(*lock.TryLock(3));  // a wedged peer holds the lock
  const char v[] = "x";
  const Status st = kv->PutLocked(
      &lock, 1, 1,
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(v), 1),
      0, /*max_spins=*/5);
  EXPECT_TRUE(IsUnavailable(st));
  EXPECT_TRUE(IsNotFound(kv->Get(0, 1).status()));  // nothing written
}

}  // namespace
}  // namespace lmp::workloads
