// Randomized property tests for the fluid solver — the substrate every
// timing result rests on.  For random topologies and flow sets:
//   P1  capacity: at every event, the rate sum on each resource never
//       exceeds its capacity;
//   P2  conservation: every flow's bytes are fully served on every
//       resource of its path by completion;
//   P3  termination: the simulation always drains;
//   P4  work conservation (single bottleneck): if all flows cross one
//       shared resource, the makespan equals total bytes / capacity;
//   P5  max-min fairness: equal-demand flows over one resource finish
//       together.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/fluid.h"
#include "sim/stream.h"

namespace lmp::sim {
namespace {

class FluidPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidPropertyTest, CapacityAndConservationUnderRandomLoad) {
  Rng rng(GetParam());
  FluidSimulator sim;
  // Every incremental solve is checked bit-exactly against a full pass.
  sim.set_solver_crosscheck(true);

  const int num_resources = static_cast<int>(rng.NextInRange(2, 8));
  std::vector<ResourceId> resources;
  std::vector<double> capacities;
  for (int r = 0; r < num_resources; ++r) {
    const double cap = GBps(static_cast<double>(rng.NextInRange(1, 100)));
    resources.push_back(sim.AddResource("r" + std::to_string(r), cap));
    capacities.push_back(cap);
  }

  const int num_flows = static_cast<int>(rng.NextInRange(3, 24));
  struct FlowSpec {
    FlowId id;
    double bytes;
    std::vector<ResourceId> path;
  };
  std::vector<FlowSpec> flows;
  for (int f = 0; f < num_flows; ++f) {
    FlowSpec spec;
    spec.bytes = static_cast<double>(rng.NextInRange(1, 1000)) * 1e6;
    const int path_len =
        static_cast<int>(rng.NextInRange(1, num_resources));
    std::vector<int> idx(num_resources);
    for (int i = 0; i < num_resources; ++i) idx[i] = i;
    rng.Shuffle(idx);
    for (int i = 0; i < path_len; ++i) {
      spec.path.push_back(resources[idx[i]]);
    }
    spec.id = sim.StartFlow(spec.bytes, spec.path);
    flows.push_back(std::move(spec));
  }

  // P1 checked at every step via instantaneous utilization.
  int steps = 0;
  do {
    for (int r = 0; r < num_resources; ++r) {
      ASSERT_LE(sim.Utilization(resources[r]), 1.0 + 1e-9)
          << "resource " << r << " over capacity";
    }
    ASSERT_LT(++steps, 100000) << "P3 violated: no termination";
  } while (sim.Step());

  // P2: bytes served per resource equal the sum of crossing flows.
  std::vector<double> expected(num_resources, 0.0);
  for (const FlowSpec& f : flows) {
    ASSERT_TRUE(sim.record(f.id)->done);
    for (ResourceId r : f.path) {
      expected[r] += f.bytes;
    }
  }
  for (int r = 0; r < num_resources; ++r) {
    EXPECT_NEAR(sim.BytesServed(resources[r]), expected[r],
                expected[r] * 1e-6 + 1.0)
        << "resource " << r;
  }
}

TEST_P(FluidPropertyTest, SingleBottleneckIsWorkConserving) {
  Rng rng(GetParam() ^ 0xABCD);
  FluidSimulator sim;
  const double cap = GBps(static_cast<double>(rng.NextInRange(5, 50)));
  const ResourceId shared = sim.AddResource("shared", cap);

  double total_bytes = 0;
  const int num_flows = static_cast<int>(rng.NextInRange(2, 16));
  for (int f = 0; f < num_flows; ++f) {
    const double bytes =
        static_cast<double>(rng.NextInRange(10, 500)) * 1e6;
    total_bytes += bytes;
    // Optional private leg that never binds (10x the shared capacity).
    std::vector<ResourceId> path{shared};
    if (rng.NextBernoulli(0.5)) {
      path.insert(path.begin(),
                  sim.AddResource("private" + std::to_string(f), cap * 10));
    }
    sim.StartFlow(bytes, path);
  }
  sim.Run();
  EXPECT_NEAR(sim.now(), total_bytes / cap * kNsPerSec,
              sim.now() * 1e-9 + 1.0);
}

TEST_P(FluidPropertyTest, EqualFlowsFinishTogether) {
  Rng rng(GetParam() ^ 0x5555);
  FluidSimulator sim;
  const ResourceId shared = sim.AddResource("shared", GBps(10));
  const double bytes = static_cast<double>(rng.NextInRange(1, 100)) * 1e6;
  std::vector<FlowId> ids;
  const int n = static_cast<int>(rng.NextInRange(2, 12));
  for (int f = 0; f < n; ++f) {
    ids.push_back(sim.StartFlow(bytes, {shared}));
  }
  sim.Run();
  const SimTime first_end = sim.record(ids[0])->end;
  for (FlowId id : ids) {
    EXPECT_NEAR(sim.record(id)->end, first_end, 1e-3);
  }
}

// P6  incremental == full: the component-scoped solver must be bit-exact
//     with a full progressive-filling recompute on every event.  Two
//     simulators run the same randomized schedule (staggered arrivals,
//     weights, mid-run capacity changes, degenerate flows) in lockstep; all
//     completion times and per-resource byte counters must match exactly,
//     and the incremental sim additionally self-checks every solve.
TEST_P(FluidPropertyTest, IncrementalSolveMatchesFullRecompute) {
  const std::uint64_t seed = GetParam() ^ 0x1CEB00DA;
  FluidSimulator inc;
  inc.set_solver_crosscheck(true);
  FluidSimulator full;
  full.set_incremental(false);

  Rng rng(seed);
  const int num_resources = static_cast<int>(rng.NextInRange(3, 10));
  std::vector<ResourceId> inc_res, full_res;
  for (int r = 0; r < num_resources; ++r) {
    const double cap = GBps(static_cast<double>(rng.NextInRange(1, 100)));
    inc_res.push_back(inc.AddResource("r" + std::to_string(r), cap));
    full_res.push_back(full.AddResource("r" + std::to_string(r), cap));
  }

  std::vector<FlowId> inc_ids, full_ids;
  const int num_flows = static_cast<int>(rng.NextInRange(8, 40));
  for (int f = 0; f < num_flows; ++f) {
    // ~1 in 10 flows is degenerate (zero bytes) to cover the deferred path.
    const double bytes =
        rng.NextBernoulli(0.1)
            ? 0.0
            : static_cast<double>(rng.NextInRange(1, 500)) * 1e6;
    const double weight = static_cast<double>(rng.NextInRange(1, 4));
    const int path_len = static_cast<int>(rng.NextInRange(1, num_resources));
    std::vector<int> idx(num_resources);
    for (int i = 0; i < num_resources; ++i) idx[i] = i;
    rng.Shuffle(idx);
    std::vector<ResourceId> path(idx.begin(), idx.begin() + path_len);
    const SimTime at = static_cast<SimTime>(rng.NextInRange(0, 50)) * 1e6;
    inc.ScheduleAt(at, [&inc, &inc_ids, bytes, path, weight](SimTime) {
      inc_ids.push_back(inc.StartFlow(bytes, path, nullptr, weight));
    });
    full.ScheduleAt(at, [&full, &full_ids, bytes, path, weight](SimTime) {
      full_ids.push_back(full.StartFlow(bytes, path, nullptr, weight));
    });
  }
  // A couple of mid-run capacity changes exercise the SetCapacity seed.
  for (int c = 0; c < 3; ++c) {
    const int r = static_cast<int>(rng.NextInRange(0, num_resources - 1));
    const double cap = GBps(static_cast<double>(rng.NextInRange(1, 100)));
    const SimTime at = static_cast<SimTime>(rng.NextInRange(1, 40)) * 1e6;
    inc.ScheduleAt(at, [&inc, &inc_res, r, cap](SimTime) {
      ASSERT_TRUE(inc.SetCapacity(inc_res[r], cap).ok());
    });
    full.ScheduleAt(at, [&full, &full_res, r, cap](SimTime) {
      ASSERT_TRUE(full.SetCapacity(full_res[r], cap).ok());
    });
  }

  // Lockstep: after every step the two simulators must agree exactly.
  while (true) {
    const bool inc_more = inc.Step();
    const bool full_more = full.Step();
    ASSERT_EQ(inc_more, full_more);
    ASSERT_EQ(inc.now(), full.now());  // bit-exact, no tolerance
    if (!inc_more) break;
  }

  ASSERT_EQ(inc_ids.size(), full_ids.size());
  for (std::size_t i = 0; i < inc_ids.size(); ++i) {
    const FlowRecord* a = inc.record(inc_ids[i]);
    const FlowRecord* b = full.record(full_ids[i]);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(a->done);
    EXPECT_TRUE(b->done);
    EXPECT_EQ(a->end, b->end) << "flow " << i << " completion diverged";
  }
  for (int r = 0; r < num_resources; ++r) {
    EXPECT_EQ(inc.BytesServed(inc_res[r]), full.BytesServed(full_res[r]))
        << "resource " << r << " byte counter diverged";
  }
  // The incremental run should not have done a full re-rate on every event
  // (the whole point), yet produced identical results.
  EXPECT_LE(inc.solver_stats().flows_touched,
            full.solver_stats().flows_touched);
}

// P7  sharded == flat: arbitrary shard hints plus a worker pool must not
//     change a single bit of simulated output.  The sharded sim gets a
//     random shard assignment (some resources deliberately left
//     unsharded), four worker threads, and the full-solve crosscheck; the
//     flat sim runs the plain incremental solver with no hints.  Shard
//     hints only partition when the cross-flow counters prove it safe, so
//     even an adversarial assignment may cost parallelism but never
//     correctness.
TEST_P(FluidPropertyTest, ShardedSolveMatchesFlatIncremental) {
  const std::uint64_t seed = GetParam() ^ 0x5AADD;
  FluidSimulator sharded;
  sharded.set_solver_crosscheck(true);
  sharded.set_threads(4);
  FluidSimulator flat;

  Rng rng(seed);
  const int num_resources = static_cast<int>(rng.NextInRange(4, 12));
  std::vector<ResourceId> shard_res, flat_res;
  for (int r = 0; r < num_resources; ++r) {
    const double cap = GBps(static_cast<double>(rng.NextInRange(1, 100)));
    shard_res.push_back(sharded.AddResource("r" + std::to_string(r), cap));
    flat_res.push_back(flat.AddResource("r" + std::to_string(r), cap));
    if (rng.NextBernoulli(0.75)) {
      sharded.SetResourceShard(shard_res.back(),
                               static_cast<ShardId>(rng.NextInRange(0, 3)));
    }
  }

  std::vector<FlowId> shard_ids, flat_ids;
  const int num_flows = static_cast<int>(rng.NextInRange(8, 40));
  for (int f = 0; f < num_flows; ++f) {
    const double bytes =
        rng.NextBernoulli(0.1)
            ? 0.0
            : static_cast<double>(rng.NextInRange(1, 500)) * 1e6;
    const double weight = static_cast<double>(rng.NextInRange(1, 4));
    const int path_len = static_cast<int>(rng.NextInRange(1, num_resources));
    std::vector<int> idx(num_resources);
    for (int i = 0; i < num_resources; ++i) idx[i] = i;
    rng.Shuffle(idx);
    std::vector<ResourceId> path(idx.begin(), idx.begin() + path_len);
    const SimTime at = static_cast<SimTime>(rng.NextInRange(0, 50)) * 1e6;
    sharded.ScheduleAt(at, [&sharded, &shard_ids, bytes, path,
                            weight](SimTime) {
      shard_ids.push_back(sharded.StartFlow(bytes, path, nullptr, weight));
    });
    flat.ScheduleAt(at, [&flat, &flat_ids, bytes, path, weight](SimTime) {
      flat_ids.push_back(flat.StartFlow(bytes, path, nullptr, weight));
    });
  }
  for (int c = 0; c < 3; ++c) {
    const int r = static_cast<int>(rng.NextInRange(0, num_resources - 1));
    const double cap = GBps(static_cast<double>(rng.NextInRange(1, 100)));
    const SimTime at = static_cast<SimTime>(rng.NextInRange(1, 40)) * 1e6;
    sharded.ScheduleAt(at, [&sharded, &shard_res, r, cap](SimTime) {
      ASSERT_TRUE(sharded.SetCapacity(shard_res[r], cap).ok());
    });
    flat.ScheduleAt(at, [&flat, &flat_res, r, cap](SimTime) {
      ASSERT_TRUE(flat.SetCapacity(flat_res[r], cap).ok());
    });
  }

  while (true) {
    const bool sharded_more = sharded.Step();
    const bool flat_more = flat.Step();
    ASSERT_EQ(sharded_more, flat_more);
    ASSERT_EQ(sharded.now(), flat.now());  // bit-exact, no tolerance
    if (!sharded_more) break;
  }

  ASSERT_EQ(shard_ids.size(), flat_ids.size());
  for (std::size_t i = 0; i < shard_ids.size(); ++i) {
    const FlowRecord* a = sharded.record(shard_ids[i]);
    const FlowRecord* b = flat.record(flat_ids[i]);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(a->done);
    EXPECT_TRUE(b->done);
    EXPECT_EQ(a->end, b->end) << "flow " << i << " completion diverged";
  }
  for (int r = 0; r < num_resources; ++r) {
    EXPECT_EQ(sharded.BytesServed(shard_res[r]),
              flat.BytesServed(flat_res[r]))
        << "resource " << r << " byte counter diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 1010));

}  // namespace
}  // namespace lmp::sim

namespace lmp::sim {
namespace {

// --- Weighted max-min fairness ------------------------------------------------

TEST(WeightedFairnessTest, WeightTwoGetsDoubleShare) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(30));
  const FlowId heavy = sim.StartFlow(1e12, {r}, nullptr, 2.0);
  const FlowId light = sim.StartFlow(1e12, {r}, nullptr, 1.0);
  EXPECT_NEAR(sim.FlowRate(heavy), GBps(20), 1);
  EXPECT_NEAR(sim.FlowRate(light), GBps(10), 1);
}

TEST(WeightedFairnessTest, WeightsRespectOtherBottlenecks) {
  // The heavy flow is clamped by its private slow leg; the light flow
  // absorbs the slack (weighted max-min, not strict proportional).
  FluidSimulator sim;
  const ResourceId shared = sim.AddResource("shared", GBps(30));
  const ResourceId slow = sim.AddResource("slow", GBps(5));
  const FlowId heavy = sim.StartFlow(1e12, {shared, slow}, nullptr, 10.0);
  const FlowId light = sim.StartFlow(1e12, {shared}, nullptr, 1.0);
  EXPECT_NEAR(sim.FlowRate(heavy), GBps(5), 1);
  EXPECT_NEAR(sim.FlowRate(light), GBps(25), 1);
}

TEST(WeightedFairnessTest, EqualWeightsReduceToPlainMaxMin) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(12));
  const FlowId a = sim.StartFlow(1e12, {r}, nullptr, 3.0);
  const FlowId b = sim.StartFlow(1e12, {r}, nullptr, 3.0);
  EXPECT_NEAR(sim.FlowRate(a), GBps(6), 1);
  EXPECT_NEAR(sim.FlowRate(b), GBps(6), 1);
}

TEST(WeightedFairnessTest, CompletionOrderFollowsWeights) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(10));
  const FlowId heavy = sim.StartFlow(10e9, {r}, nullptr, 4.0);
  const FlowId light = sim.StartFlow(10e9, {r}, nullptr, 1.0);
  sim.Run();
  EXPECT_LT(sim.record(heavy)->end, sim.record(light)->end);
}

TEST(WeightedFairnessTest, SpanStreamCarriesWeight) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(30));
  SpanStream heavy(&sim, {Span{20e9, {r}, 2.0}});
  SpanStream light(&sim, {Span{10e9, {r}, 1.0}});
  heavy.Start();
  light.Start();
  sim.Run();
  // 20 GB at 20 GB/s and 10 GB at 10 GB/s: both finish at t=1s.
  EXPECT_NEAR(heavy.end_time(), Seconds(1), 1e3);
  EXPECT_NEAR(light.end_time(), Seconds(1), 1e3);
}

}  // namespace
}  // namespace lmp::sim
