// Tests for the hierarchical control plane (ctrl/hier): scoped demand
// estimation (rack attribution, pull candidates, access-bit sourcing),
// the GlobalCoordinator's pure rack-level solve, RackController grant
// execution, the assembled HierController's cross-rack locality repair,
// lockstep determinism across simulator thread counts, and the op-p99
// SLO probes that feed tail latency back into sizing priority.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/access_bits.h"
#include "core/pool_manager.h"
#include "ctrl/controller.h"
#include "ctrl/demand_estimator.h"
#include "ctrl/hier/global_coordinator.h"
#include "ctrl/hier/hier_controller.h"
#include "ctrl/slo_ledger.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::ctrl::hier {
namespace {

constexpr int kPerRack = 3;
constexpr int kServers = 2 * kPerRack;  // rack 0: {0,1,2}, rack 1: {3,4,5}

cluster::ClusterConfig Config(Bytes per_server = MiB(32)) {
  cluster::ClusterConfig config;
  config.num_servers = kServers;
  config.server_total_memory = per_server;
  config.server_shared_memory = per_server;
  config.frame_size = KiB(64);
  config.with_backing = true;
  return config;
}

// Copies the id list out of Describe's temporary StatusOr — iterating
// `Describe(buf)->segments` directly would range-for over a dangling
// member in C++20.
std::vector<core::SegmentId> SegmentsOf(const core::PoolManager& manager,
                                        core::BufferId buf) {
  return manager.Describe(buf)->segments;
}

// ---------------------------------------------------- scoped DemandEstimator

class ScopedEstimatorTest : public ::testing::Test {
 protected:
  ScopedEstimatorTest() : cluster_(Config()), manager_(&cluster_) {
    manager_.access_tracker().set_half_life(Milliseconds(50));
  }

  std::vector<core::SegmentId> AllocateOn(cluster::ServerId home,
                                          Bytes bytes = MiB(2)) {
    auto buf = manager_.Allocate(bytes, home);
    EXPECT_TRUE(buf.ok());
    return manager_.Describe(*buf)->segments;
  }

  void TouchFrom(const std::vector<core::SegmentId>& segments,
                 cluster::ServerId accessor, double weight = double(MiB(8))) {
    for (const core::SegmentId seg : segments) {
      manager_.access_tracker().RecordAccess(seg, accessor, weight, 0);
    }
  }

  cluster::Cluster cluster_;
  core::PoolManager manager_;
};

TEST_F(ScopedEstimatorTest, RestrictToNarrowsEntriesAndAttribution) {
  // Homed out of scope (server 4) but dominated by in-scope server 1: the
  // bytes are rack 0's demand, reported at server 1.
  TouchFrom(AllocateOn(4), 1);
  DemandEstimator est(&manager_);
  est.RestrictTo(0, kPerRack);
  const auto demands = est.Estimate(0);
  ASSERT_EQ(demands.size(), static_cast<std::size_t>(kPerRack));
  EXPECT_EQ(demands[1].server, 1u);
  EXPECT_EQ(demands[1].pool_demand, MiB(2));
  EXPECT_EQ(demands[0].pool_demand, 0u);
  EXPECT_TRUE(est.InScope(2));
  EXPECT_FALSE(est.InScope(3));
}

TEST_F(ScopedEstimatorTest, OutOfScopeDominantIsAnotherRacksDemand) {
  // Homed in scope (server 1) but dominated by rack 1's server 4: the
  // scoped estimator must NOT fall back to the home — the peer rack's
  // estimator claims these bytes, and a home fallback would double-count
  // them across the hierarchy.
  TouchFrom(AllocateOn(1), 4);
  DemandEstimator rack0(&manager_);
  rack0.RestrictTo(0, kPerRack);
  for (const core::ServerDemand& d : rack0.Estimate(0)) {
    EXPECT_EQ(d.pool_demand, 0u);
  }
  DemandEstimator rack1(&manager_);
  rack1.RestrictTo(kPerRack, kServers);
  EXPECT_EQ(rack1.Estimate(0)[4 - kPerRack].pool_demand, MiB(2));
}

TEST_F(ScopedEstimatorTest, PullCandidatesAreRemoteHomedInRackDominated) {
  const auto remote_hot = AllocateOn(4);   // homed off-rack, pulled by 1
  const auto local_hot = AllocateOn(1);    // homed in-rack: not a candidate
  const auto remote_cold = AllocateOn(5);  // untouched: no dominant
  TouchFrom(remote_hot, 1);
  TouchFrom(local_hot, 1);
  (void)remote_cold;

  DemandEstimator est(&manager_);
  est.RestrictTo(0, kPerRack);
  const auto candidates = est.PullCandidates(0);
  Bytes total = 0;
  double prev_heat = -1;
  for (const auto& c : candidates) {
    EXPECT_EQ(c.dst, 1u);
    EXPECT_EQ(manager_.segment_map().Find(c.seg)->home.server, 4u);
    if (prev_heat >= 0) EXPECT_LE(c.heat, prev_heat);  // hottest first
    prev_heat = c.heat;
    total += c.size;
  }
  EXPECT_EQ(total, MiB(2));
  EXPECT_EQ(est.RemoteHotBytes(0), MiB(2));
}

TEST_F(ScopedEstimatorTest, AccessBitsSourceAttributesFromSampledBits) {
  const auto segments = AllocateOn(1);
  core::AccessBitSampler bits(KiB(64));
  EstimatorConfig config;
  config.source = DemandSource::kAccessBits;
  // Tight smoothing: the EWMA's home-attributed tail must have decayed
  // below one byte by the second estimate, or frame-ceil rounding keeps
  // reporting a phantom frame at the home server.
  config.time_constant = Milliseconds(5);
  DemandEstimator est(&manager_, config);
  est.set_access_bits(&bits);
  ASSERT_TRUE(est.uses_access_bits());

  // No completed scan interval yet: attribution falls back to the home.
  EXPECT_EQ(est.Estimate(0)[1].pool_demand, MiB(2));

  // Server 2 touches every page; after the owner's scan-and-clear the
  // sampled dominant moves attribution to server 2.
  for (const core::SegmentId seg : segments) {
    bits.OnAccess(seg, 2, 0, MiB(2));
  }
  (void)bits.ScanAndClear();
  const auto demands = est.Estimate(Milliseconds(500));
  EXPECT_EQ(demands[2].pool_demand, MiB(2));
  EXPECT_EQ(demands[1].pool_demand, 0u);
}

TEST_F(ScopedEstimatorTest, AccessBitsConvergeToExactAttribution) {
  // Steady traffic from server 2: the lossy page-bit source must settle on
  // the same attribution (segment bytes at server 2) the exact hotness
  // counters report, epoch for epoch once the first scan completes.
  const auto segments = AllocateOn(1);
  core::AccessBitSampler bits(KiB(64));
  EstimatorConfig exact_config;
  exact_config.time_constant = Milliseconds(5);
  DemandEstimator exact(&manager_, exact_config);
  EstimatorConfig bits_config = exact_config;
  bits_config.source = DemandSource::kAccessBits;
  DemandEstimator sampled(&manager_, bits_config);
  sampled.set_access_bits(&bits);

  Bytes exact_demand = 0;
  Bytes sampled_demand = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    const SimTime now = epoch * Milliseconds(1);
    for (const core::SegmentId seg : segments) {
      manager_.access_tracker().RecordAccess(seg, 2, double(MiB(4)), now);
      bits.OnAccess(seg, 2, 0, MiB(2));
    }
    (void)bits.ScanAndClear();  // the owner scans once per epoch
    exact_demand = exact.Estimate(now)[2].pool_demand;
    sampled_demand = sampled.Estimate(now)[2].pool_demand;
  }
  EXPECT_EQ(exact_demand, MiB(2));
  EXPECT_EQ(sampled_demand, exact_demand);
}

// -------------------------------------------------------- GlobalCoordinator

RackSummary Rack(int rack, Bytes residual, Bytes headroom, Bytes remote_hot,
                 bool alive = true) {
  RackSummary s;
  s.rack = rack;
  s.residual_demand = residual;
  s.headroom = headroom;
  s.remote_hot_bytes = remote_hot;
  s.alive = alive;
  return s;
}

TEST(GlobalCoordinatorTest, PullGrantsCappedByBudgetAndReservedHeadroom) {
  CoordinatorConfig config;
  config.spine_budget = MiB(4);
  config.headroom_reserve = 0.25;
  config.min_grant = KiB(64);
  GlobalCoordinator coord(config);
  // Rack 0 wants MiB(8) home but only MiB(6) of its headroom is grantable
  // and the round budget is MiB(4); rack 1's want hits an exhausted budget.
  const SpinePlan plan = coord.Solve({Rack(0, 0, MiB(8), MiB(8)),
                                      Rack(1, 0, MiB(8), MiB(2))});
  ASSERT_EQ(plan.pulls.size(), 1u);
  EXPECT_EQ(plan.pulls[0].rack, 0);
  EXPECT_EQ(plan.pulls[0].budget, MiB(4));
  EXPECT_TRUE(plan.pushes.empty());
  EXPECT_EQ(plan.granted, MiB(4));
}

TEST(GlobalCoordinatorTest, MinGrantFloorDropsNoise) {
  CoordinatorConfig config;
  config.min_grant = KiB(64);
  config.headroom_reserve = 0;
  GlobalCoordinator coord(config);
  const SpinePlan plan = coord.Solve({Rack(0, KiB(32), MiB(8), KiB(32)),
                                      Rack(1, 0, MiB(8), 0)});
  EXPECT_TRUE(plan.pulls.empty());
  EXPECT_TRUE(plan.pushes.empty());
  EXPECT_EQ(plan.granted, 0u);
}

TEST(GlobalCoordinatorTest, DeadRacksNeitherGiveNorReceive) {
  CoordinatorConfig config;
  config.headroom_reserve = 0;
  GlobalCoordinator coord(config);
  // Rack 0 is dead with tempting headroom and remote-hot bytes; rack 1's
  // residual must be pushed into rack 2, the only live peer.
  const SpinePlan plan =
      coord.Solve({Rack(0, MiB(4), MiB(16), MiB(8), /*alive=*/false),
                   Rack(1, MiB(2), 0, 0), Rack(2, 0, MiB(8), 0)});
  EXPECT_TRUE(plan.pulls.empty());
  ASSERT_EQ(plan.pushes.size(), 1u);
  EXPECT_EQ(plan.pushes[0].src_rack, 1);
  EXPECT_EQ(plan.pushes[0].dst_rack, 2);
  EXPECT_EQ(plan.pushes[0].budget, MiB(2));
}

TEST(GlobalCoordinatorTest, PushesSpreadResidualOverSurplusRacksInOrder) {
  CoordinatorConfig config;
  config.headroom_reserve = 0;
  GlobalCoordinator coord(config);
  const SpinePlan plan = coord.Solve({Rack(0, MiB(3), 0, 0),
                                      Rack(1, 0, MiB(2), 0),
                                      Rack(2, 0, MiB(8), 0)});
  ASSERT_EQ(plan.pushes.size(), 2u);
  EXPECT_EQ(plan.pushes[0].dst_rack, 1);
  EXPECT_EQ(plan.pushes[0].budget, MiB(2));
  EXPECT_EQ(plan.pushes[1].dst_rack, 2);
  EXPECT_EQ(plan.pushes[1].budget, MiB(1));
  EXPECT_EQ(plan.granted, MiB(3));
}

TEST(GlobalCoordinatorTest, PullsOutrankPushesForTheSharedBudget) {
  CoordinatorConfig config;
  config.spine_budget = MiB(2);
  config.headroom_reserve = 0;
  GlobalCoordinator coord(config);
  const SpinePlan plan = coord.Solve({Rack(0, 0, MiB(8), MiB(2)),
                                      Rack(1, MiB(2), MiB(8), 0)});
  ASSERT_EQ(plan.pulls.size(), 1u);
  EXPECT_EQ(plan.pulls[0].budget, MiB(2));
  EXPECT_TRUE(plan.pushes.empty());  // the pull consumed the round budget
}

// ----------------------------------------------------------- RackController

class RackControllerTest : public ::testing::Test {
 protected:
  RackControllerTest() : cluster_(Config()), manager_(&cluster_) {
    manager_.access_tracker().set_half_life(Milliseconds(50));
    manager_.set_metrics(&metrics_);
  }

  // Heap-built: the embedded SizingController registers `this`-capturing
  // callbacks at construction, so the rack controller must never move.
  std::unique_ptr<RackController> MakeRack(int rack, cluster::ServerId first,
                                           cluster::ServerId limit) {
    ControllerConfig config;
    config.period = Milliseconds(5);
    config.estimator.time_constant = Milliseconds(5);
    auto r = std::make_unique<RackController>(
        SizingController::Bindings{.sim = &sim_, .manager = &manager_},
        rack, first, limit, config);
    r->set_metrics(&metrics_);
    return r;
  }

  cluster::ServerId HomeOf(core::SegmentId seg) const {
    return manager_.segment_map().Find(seg)->home.server;
  }

  sim::FluidSimulator sim_;
  cluster::Cluster cluster_;
  core::PoolManager manager_;
  MetricsRegistry metrics_;
};

TEST_F(RackControllerTest, SummaryDigestsRackStateForTheSpine) {
  // MiB(2) homed in rack 0 but dominated by rack 1's server 4.
  auto buf = manager_.Allocate(MiB(2), 0);
  ASSERT_TRUE(buf.ok());
  for (const core::SegmentId seg : SegmentsOf(manager_, *buf)) {
    manager_.access_tracker().RecordAccess(seg, 4, double(MiB(8)), 0);
  }
  auto rack1 = MakeRack(1, kPerRack, kServers);
  const RackSummary s = rack1->Summary(0);
  EXPECT_EQ(s.rack, 1);
  EXPECT_TRUE(s.alive);
  EXPECT_EQ(s.remote_hot_bytes, MiB(2));  // a pull grant would localize it
  EXPECT_EQ(s.headroom, 3 * MiB(32));     // rack 1's servers are untouched
  EXPECT_EQ(s.residual_demand, 0u);
}

TEST_F(RackControllerTest, ExecutePullsLocalizesHottestFirstWithinBudget) {
  auto hot = manager_.Allocate(MiB(2), 0);
  auto warm = manager_.Allocate(MiB(2), 0);
  ASSERT_TRUE(hot.ok() && warm.ok());
  for (const core::SegmentId seg : SegmentsOf(manager_, *hot)) {
    manager_.access_tracker().RecordAccess(seg, 4, double(MiB(16)), 0);
  }
  for (const core::SegmentId seg : SegmentsOf(manager_, *warm)) {
    manager_.access_tracker().RecordAccess(seg, 4, double(MiB(4)), 0);
  }
  auto rack1 = MakeRack(1, kPerRack, kServers);
  // Budget admits only the hotter buffer; the warm one stays put.
  EXPECT_EQ(rack1->ExecutePulls(0, MiB(3)), MiB(2));
  EXPECT_EQ(rack1->stats().pulled_bytes, MiB(2));
  EXPECT_GE(rack1->stats().pulls, 1u);
  for (const core::SegmentId seg : SegmentsOf(manager_, *hot)) {
    EXPECT_EQ(HomeOf(seg), 4u);  // pulled to its dominant accessor
  }
  for (const core::SegmentId seg : SegmentsOf(manager_, *warm)) {
    EXPECT_EQ(HomeOf(seg), 0u);
  }
}

TEST_F(RackControllerTest, ExecutePushesExileColdestIntoDestinationRack) {
  auto cold = manager_.Allocate(MiB(2), 0);
  auto hot = manager_.Allocate(MiB(2), 0);
  ASSERT_TRUE(cold.ok() && hot.ok());
  for (const core::SegmentId seg : SegmentsOf(manager_, *hot)) {
    manager_.access_tracker().RecordAccess(seg, 0, double(MiB(16)), 0);
  }
  auto rack0 = MakeRack(0, 0, kPerRack);
  // The grant covers one buffer: the cold one goes, the hot one stays.
  EXPECT_EQ(rack0->ExecutePushes(0, MiB(2), kPerRack, kServers), MiB(2));
  EXPECT_EQ(rack0->stats().pushed_bytes, MiB(2));
  for (const core::SegmentId seg : SegmentsOf(manager_, *cold)) {
    EXPECT_GE(HomeOf(seg), static_cast<cluster::ServerId>(kPerRack));
  }
  for (const core::SegmentId seg : SegmentsOf(manager_, *hot)) {
    EXPECT_EQ(HomeOf(seg), 0u);
  }
}

// ------------------------------------------- HierController (end to end)

struct HierRun {
  std::string metrics_json;
  std::string trace_json;
  double local_fraction = 0;
  HierStats stats;
  Bytes rack_sizing_spine = 0;  // cross-rack bytes from the rack tiers
  int hot_segments_in_rack0 = 0;
  int hot_segments_total = 0;
};

// Four MiB(2) buffers homed on rack 1's server 3 while the only consumer
// is rack 0's server 0: pure cross-rack locality debt that only a spine
// pull grant may repair.  Remote touches are priced as DMA flows so the
// run also exercises the uplink spill path under `threads`.
HierRun RunPullScenario(int threads) {
  sim::FluidSimulator sim;
  MetricsRegistry metrics;
  sim.set_metrics(&metrics);
  sim.set_threads(threads);
  trace::TraceCollector collector;
  collector.set_clock([&sim] { return sim.now(); });
  sim.set_trace(&collector);
  auto topo = fabric::Topology::MakeLogical(&sim, kServers,
                                            fabric::LinkProfile::Link1());
  topo.AssignRackShards(kPerRack);
  topo.ProvisionSpine(topo.link().bandwidth / 4);
  cluster::Cluster cluster(Config());
  core::PoolManager manager(&cluster);
  manager.access_tracker().set_half_life(Milliseconds(20));
  manager.set_metrics(&metrics);
  manager.set_trace(&collector);

  std::vector<core::BufferId> buffers;
  for (int i = 0; i < 4; ++i) {
    auto buf = manager.Allocate(MiB(2), 3);
    EXPECT_TRUE(buf.ok());
    buffers.push_back(*buf);
  }

  HierConfig hc;
  hc.period = Milliseconds(2);
  hc.horizon = Milliseconds(60);
  hc.global_every = 2;
  hc.rack.min_step = MiB(1);
  hc.rack.cooldown = Milliseconds(4);
  hc.rack.estimator.time_constant = Milliseconds(5);
  // Provisioning slack matters doubly here: the coordinator caps pull
  // grants at 75% of the destination rack's free bytes, so a region
  // packed exactly to demand strands the last segment remote forever.
  hc.rack.estimator.headroom_factor = 1.25;
  auto hier = std::make_unique<HierController>(
      HierController::Bindings{.sim = &sim, .manager = &manager,
                               .topology = &topo},
      hc);
  hier->set_metrics(&metrics);
  hier->set_trace(&collector);
  hier->Start();

  DemandEstimator meter(&manager);
  for (SimTime t = 0; t < Milliseconds(60); t += Milliseconds(1)) {
    sim.ScheduleAt(t, [&](SimTime now) {
      for (const core::BufferId buf : buffers) {
        auto spans = manager.Spans(buf, 0, MiB(2));
        if (!spans.ok()) continue;
        for (const core::LocatedSpan& span : *spans) {
          manager.access_tracker().RecordAccess(
              span.segment, 0, static_cast<double>(span.bytes), now);
          if (!span.location.is_pool() && span.location.server != 0) {
            sim.StartFlow(static_cast<double>(span.bytes),
                          topo.DmaRemotePath(0, span.location.server),
                          [&sim](sim::FlowId f, SimTime) {
                            (void)sim.ReleaseRecord(f);
                          });
          }
        }
      }
    });
  }
  sim.Run();

  HierRun run;
  run.local_fraction = meter.ObservedLocalFraction(Milliseconds(60));
  run.stats = hier->stats();
  for (int r = 0; r < hier->num_racks(); ++r) {
    run.rack_sizing_spine += hier->rack(r).sizing().stats().spine_bytes;
  }
  for (const core::BufferId buf : buffers) {
    for (const core::SegmentId seg : SegmentsOf(manager, buf)) {
      ++run.hot_segments_total;
      if (manager.segment_map().Find(seg)->home.server <
          static_cast<cluster::ServerId>(kPerRack)) {
        ++run.hot_segments_in_rack0;
      }
    }
  }
  run.metrics_json = trace::MetricsJson(metrics);
  run.trace_json = collector.ToChromeJson();
  return run;
}

TEST(HierControllerTest, PullGrantsRepairCrossRackLocality) {
  const HierRun run = RunPullScenario(1);
  // The spine issued pull grants and the rack executed them: every hot
  // segment ends up homed next to its consumer in rack 0.
  EXPECT_GE(run.stats.global_rounds, 1u);
  EXPECT_GE(run.stats.pull_grants, 1u);
  EXPECT_EQ(run.stats.pulled_bytes, MiB(8));
  EXPECT_EQ(run.hot_segments_in_rack0, run.hot_segments_total);
  // The rack tiers themselves never crossed the spine — all cross-rack
  // bytes were explicit grants.
  EXPECT_EQ(run.rack_sizing_spine, 0u);
  EXPECT_GE(run.stats.last_local_fraction, 0.0);
  EXPECT_GT(run.local_fraction, 0.8);
}

TEST(HierControllerTest, LockstepAcrossRunsAndThreadCounts) {
  const HierRun once = RunPullScenario(1);
  const HierRun again = RunPullScenario(1);
  const HierRun wide = RunPullScenario(8);
  EXPECT_FALSE(once.metrics_json.empty());
  // Replay: byte-identical.
  EXPECT_EQ(once.metrics_json, again.metrics_json);
  EXPECT_EQ(once.trace_json, again.trace_json);
  // Thread-count sweep: cross-rack flows route through the sequential
  // uplink spill path, so 8 worker threads reproduce the single-threaded
  // run byte for byte.
  EXPECT_EQ(once.metrics_json, wide.metrics_json);
  EXPECT_EQ(once.trace_json, wide.trace_json);
  EXPECT_DOUBLE_EQ(once.local_fraction, wide.local_fraction);
  EXPECT_EQ(once.stats.pulled_bytes, wide.stats.pulled_bytes);
  EXPECT_EQ(once.stats.epochs, wide.stats.epochs);
}

// A rack-local hotspot, hier vs flat.  Hot and cold buffers live on
// server 0, self-local until t=31ms; then the consumer moves to server 1
// while server 0's own application reclaims most of its DRAM.  Rack 0
// has room for the displaced bytes (server 1), but rack 0's peers carry
// private floors and ballast while rack 1 sits idle — so the flat
// solver's cluster-wide overflow placement sizes up a rack 1 region and
// the drains follow it across the spine.  The scoped rack tier places
// the same overflow on server 1 and never touches the spine.
Bytes RunHotspot(bool hierarchical) {
  sim::FluidSimulator sim;
  MetricsRegistry metrics;
  sim.set_metrics(&metrics);
  auto topo = fabric::Topology::MakeLogical(&sim, kServers,
                                            fabric::LinkProfile::Link1());
  topo.AssignRackShards(kPerRack);
  topo.ProvisionSpine(topo.link().bandwidth / 4);
  cluster::Cluster cluster(Config());
  core::PoolManager manager(&cluster);
  manager.access_tracker().set_half_life(Milliseconds(20));
  manager.set_metrics(&metrics);

  std::vector<core::BufferId> hot;
  for (int i = 0; i < 4; ++i) {
    auto buf = manager.Allocate(MiB(2), 0);
    EXPECT_TRUE(buf.ok());
    hot.push_back(*buf);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(manager.Allocate(MiB(2), 0).ok());  // cold, never touched
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(manager.Allocate(MiB(2), 2).ok());  // ballast on server 2
  }

  ControllerConfig loop;
  loop.period = Milliseconds(2);
  loop.min_step = MiB(1);
  loop.cooldown = Milliseconds(4);
  loop.estimator.time_constant = Milliseconds(5);

  std::unique_ptr<HierController> hier;
  std::unique_ptr<SizingController> flat;
  // Rack 0's peers run their own applications (private floors); rack 1 is
  // an idle expansion rack with strictly more slack than any rack-0 peer —
  // the bait the flat solver's cluster-wide overflow placement takes.
  const auto set_floor = [&](cluster::ServerId s, Bytes floor) {
    if (hier != nullptr) {
      hier->rack_of(s).sizing().estimator().SetPrivateFloor(s, floor);
    }
    if (flat != nullptr) flat->estimator().SetPrivateFloor(s, floor);
  };
  if (hierarchical) {
    HierConfig hc;
    hc.period = Milliseconds(2);
    hc.horizon = Milliseconds(80);
    hc.rack = loop;
    hier = std::make_unique<HierController>(
        HierController::Bindings{.sim = &sim, .manager = &manager,
                                 .topology = &topo},
        hc);
    hier->set_metrics(&metrics);
    hier->Start();
  } else {
    ControllerConfig fc = loop;
    fc.horizon = Milliseconds(80);
    flat = std::make_unique<SizingController>(
        SizingController::Bindings{.sim = &sim, .manager = &manager,
                                   .topology = &topo},
        fc);
    flat->set_metrics(&metrics);
    flat->Start();
  }
  set_floor(1, MiB(8));
  set_floor(2, MiB(8));

  constexpr SimTime kShift = Milliseconds(31);  // between controller epochs
  for (SimTime t = 0; t < Milliseconds(80); t += Milliseconds(1)) {
    sim.ScheduleAt(t, [&](SimTime now) {
      const cluster::ServerId accessor = now < kShift ? 0 : 1;
      for (const core::BufferId buf : hot) {
        auto spans = manager.Spans(buf, 0, MiB(2));
        if (!spans.ok()) continue;
        for (const core::LocatedSpan& span : *spans) {
          manager.access_tracker().RecordAccess(
              span.segment, accessor, static_cast<double>(span.bytes), now);
        }
      }
    });
  }
  // The hotspot: server 0's own application wants most of its DRAM back,
  // forcing a shrink whose drains reveal each plane's placement policy.
  sim.ScheduleAt(kShift, [&](SimTime) { set_floor(0, MiB(28)); });
  sim.Run();

  return hier != nullptr ? hier->SpineBytesMoved() : flat->stats().spine_bytes;
}

TEST(HierControllerTest, RackTierHandlesRackLocalHotspotWithoutTheSpine) {
  EXPECT_EQ(RunHotspot(/*hierarchical=*/true), 0u);
}

TEST(HierControllerTest, FlatControllerCrossesTheSpineOnTheSameHotspot) {
  EXPECT_GT(RunHotspot(/*hierarchical=*/false), 0u);
}

// ------------------------------------------------------------ op-SLO probes

class OpSloProbeTest : public ::testing::Test {
 protected:
  OpSloProbeTest() : cluster_(Config()), manager_(&cluster_) {
    manager_.access_tracker().set_half_life(Milliseconds(50));
    manager_.set_metrics(&metrics_);
  }

  std::unique_ptr<SizingController> MakeController() {
    ControllerConfig config;
    config.period = Milliseconds(5);
    auto controller = std::make_unique<SizingController>(
        SizingController::Bindings{.sim = &sim_, .manager = &manager_},
        config);
    controller->set_metrics(&metrics_);
    return controller;
  }

  sim::FluidSimulator sim_;
  cluster::Cluster cluster_;
  core::PoolManager manager_;
  MetricsRegistry metrics_;
};

TEST_F(OpSloProbeTest, BreachBoostsPriorityAndRecoveryRestoresIt) {
  SloLedger ledger;
  SloTargets targets;
  targets.max_op_p99 = Milliseconds(1);
  ledger.Register("tenant-a", targets);

  auto controller = MakeController();
  controller->set_slo_ledger(&ledger);
  OpSloProbe probe;
  probe.tenant = "tenant-a";
  probe.registry = &metrics_;
  probe.histogram = "tenant-a.get";
  probe.p99_ceiling = Milliseconds(1);
  probe.server = 1;
  probe.base_priority = 1.0;
  probe.boost_priority = 4.0;
  controller->AddOpSloProbe(probe);

  // Ten slow ops: the sampled p99 (~2ms) breaches the 1ms ceiling, the
  // probe boosts server 1's sizing priority, and the ledger records a
  // missed sample.
  metrics_.GetHistogram("tenant-a.get").RecordMany(Milliseconds(2), 10);
  controller->RunEpochNow();
  EXPECT_EQ(controller->stats().p99_breaches, 1u);
  EXPECT_DOUBLE_EQ(controller->estimator().Estimate(0)[1].priority, 4.0);
  const SloAttainment* a = ledger.Find("tenant-a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->op_p99_samples, 1u);
  EXPECT_EQ(a->op_p99_met, 0u);
  EXPECT_GE(a->op_p99_worst, Milliseconds(2) * 9 / 10);
  EXPECT_FALSE(a->Met());

  // The tail recovers (the slow ops drown in fast ones): the next epoch's
  // sample meets the target, the boost is withdrawn, and the breach count
  // does not grow.
  metrics_.GetHistogram("tenant-a.get").RecordMany(Microseconds(100), 5000);
  controller->RunEpochNow();
  EXPECT_EQ(controller->stats().p99_breaches, 1u);
  EXPECT_DOUBLE_EQ(controller->estimator().Estimate(0)[1].priority, 1.0);
  EXPECT_EQ(a->op_p99_samples, 2u);
  EXPECT_EQ(a->op_p99_met, 1u);
  EXPECT_DOUBLE_EQ(a->OpP99Attainment(), 0.5);
}

TEST_F(OpSloProbeTest, ProbeWithoutTrafficTakesNoSamples) {
  SloLedger ledger;
  auto controller = MakeController();
  controller->set_slo_ledger(&ledger);
  OpSloProbe probe;
  probe.tenant = "tenant-idle";
  probe.registry = &metrics_;
  probe.histogram = "tenant-idle.get";  // never recorded
  probe.p99_ceiling = Milliseconds(1);
  controller->AddOpSloProbe(probe);
  controller->RunEpochNow();
  EXPECT_EQ(controller->stats().p99_breaches, 0u);
  const SloAttainment* a = ledger.Find("tenant-idle");
  EXPECT_TRUE(a == nullptr || a->op_p99_samples == 0u);
}

TEST_F(OpSloProbeTest, HierRoutesProbeToTheOwningRack) {
  auto topo = fabric::Topology::MakeLogical(&sim_, kServers,
                                            fabric::LinkProfile::Link1());
  topo.AssignRackShards(kPerRack);
  SloLedger ledger;
  SloTargets targets;
  targets.max_op_p99 = Milliseconds(1);
  ledger.Register("tenant-b", targets);
  HierConfig hc;
  hc.period = Milliseconds(5);
  auto hier = std::make_unique<HierController>(
      HierController::Bindings{.sim = &sim_, .manager = &manager_,
                               .topology = &topo},
      hc);
  hier->set_metrics(&metrics_);
  hier->set_slo_ledger(&ledger);
  OpSloProbe probe;
  probe.tenant = "tenant-b";
  probe.registry = &metrics_;
  probe.histogram = "tenant-b.get";
  probe.p99_ceiling = Milliseconds(1);
  probe.server = 4;  // rack 1
  probe.boost_priority = 3.0;
  hier->AddOpSloProbe(probe);

  metrics_.GetHistogram("tenant-b.get").RecordMany(Milliseconds(2), 10);
  hier->RunEpochNow();
  // The breach registered on rack 1's scoped controller (and only there),
  // boosting server 4's priority in its rack-local demand vector.
  EXPECT_EQ(hier->rack(1).sizing().stats().p99_breaches, 1u);
  EXPECT_EQ(hier->rack(0).sizing().stats().p99_breaches, 0u);
  const auto demands = hier->rack(1).sizing().estimator().Estimate(0);
  EXPECT_DOUBLE_EQ(demands[4 - kPerRack].priority, 3.0);
  const SloAttainment* a = ledger.Find("tenant-b");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->op_p99_samples, 1u);
}

}  // namespace
}  // namespace lmp::ctrl::hier
