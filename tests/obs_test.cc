// Tests for the observability layer: lmp::obs time-series recording and
// flight-recorder postmortems, the ctrl::SloLedger attainment math, and
// the determinism contracts they share — byte-identical series JSON
// across replays and thread counts, and wall-clock metrics excluded from
// the deterministic metrics export.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "ctrl/slo_ledger.h"
#include "fabric/topology.h"
#include "obs/flight_recorder.h"
#include "obs/time_series.h"
#include "sim/fluid.h"

namespace lmp::obs {
namespace {

// --- TimeSeriesRecorder -----------------------------------------------------

TEST(TimeSeriesTest, SamplesAtFixedIntervalUntilHorizon) {
  sim::FluidSimulator sim;
  TimeSeriesRecorder::Config rc;
  rc.interval = Microseconds(10);
  rc.horizon = Microseconds(100);
  TimeSeriesRecorder rec(&sim, rc);
  rec.AddGauge("now_us", [&sim] { return sim.now() / 1000.0; });
  rec.AddCounter("const", [] { return std::uint64_t{7}; });
  rec.Start();
  sim.Run();
  // One sample at Start() (t=0), then every 10us through 100us inclusive.
  EXPECT_EQ(rec.sample_count(), 11u);
  EXPECT_EQ(rec.probe_count(), 2u);
  EXPECT_FALSE(rec.running());  // horizon reached
}

TEST(TimeSeriesTest, HorizonZeroTakesOnlyTheStartSample) {
  sim::FluidSimulator sim;
  TimeSeriesRecorder::Config rc;
  rc.interval = Microseconds(10);
  rc.horizon = 0;
  TimeSeriesRecorder rec(&sim, rc);
  rec.AddGauge("g", [] { return 1.0; });
  rec.Start();
  sim.Run();
  EXPECT_EQ(rec.sample_count(), 1u);
}

TEST(TimeSeriesTest, StopHaltsSampling) {
  sim::FluidSimulator sim;
  TimeSeriesRecorder::Config rc;
  rc.interval = Microseconds(10);
  rc.horizon = Microseconds(100);
  TimeSeriesRecorder rec(&sim, rc);
  rec.AddGauge("g", [] { return 1.0; });
  rec.Start();
  sim.ScheduleAt(Microseconds(55), [&rec](SimTime) { rec.Stop(); });
  sim.Run();
  // Samples at 0, 10, ..., 50; the 60us tick sees the stop and bails.
  EXPECT_EQ(rec.sample_count(), 6u);
  EXPECT_FALSE(rec.running());
}

TEST(TimeSeriesTest, SampleNowWorksWithoutStart) {
  sim::FluidSimulator sim;
  TimeSeriesRecorder rec(&sim, {});
  rec.AddCounter("c", [] { return std::uint64_t{3}; });
  rec.SampleNow();
  rec.SampleNow();
  EXPECT_EQ(rec.sample_count(), 2u);
  EXPECT_FALSE(rec.running());
}

TEST(SeriesJsonTest, SortedKeysKindsAndPrefixes) {
  sim::FluidSimulator sim;
  TimeSeriesRecorder::Config ra;
  ra.prefix = "b/";
  TimeSeriesRecorder rec_b(&sim, ra);
  rec_b.AddGauge("x", [] { return 2.5; });
  rec_b.SampleNow();
  TimeSeriesRecorder::Config rb;
  rb.prefix = "a/";
  TimeSeriesRecorder rec_a(&sim, rb);
  rec_a.AddCounter("x", [] { return std::uint64_t{9}; });
  rec_a.SampleNow();

  const std::string json = SeriesJson({&rec_b, &rec_a});
  const auto pos_a = json.find("\"a/x\"");
  const auto pos_b = json.find("\"b/x\"");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);  // sorted regardless of registration order
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("[[0,9]]"), std::string::npos);
  EXPECT_NE(json.find("[[0,2.5]]"), std::string::npos);
}

// A small sharded workload: ring flows inside racks of 16, sampled every
// 50us.  Returns the rendered series JSON.
std::string ShardedRunSeries(int threads) {
  constexpr int kServers = 64;
  constexpr int kRack = 16;
  sim::FluidSimulator sim;
  sim.set_threads(threads);
  auto topo = fabric::Topology::MakeLogical(&sim, kServers,
                                            fabric::LinkProfile::Link1());
  topo.AssignRackShards(kRack);

  TimeSeriesRecorder::Config rc;
  rc.interval = Microseconds(50);
  rc.horizon = Milliseconds(1);
  TimeSeriesRecorder rec(&sim, rc);
  rec.AddGauge("active_flows", [&sim] {
    return static_cast<double>(sim.active_flow_count());
  });
  rec.AddCounter("solver.recompute_calls",
                 [&sim] { return sim.solver_stats().recompute_calls; });
  rec.AddCounter("solver.shard_tasks",
                 [&sim] { return sim.solver_stats().shard_tasks; });
  rec.AddCounter("solver.flows_touched",
                 [&sim] { return sim.solver_stats().flows_touched; });
  rec.Start();

  for (int wave = 0; wave < 2; ++wave) {
    sim.ScheduleAt(wave * Microseconds(200), [&](SimTime) {
      sim.BeginBatch();
      for (int s = 0; s < kServers; ++s) {
        const int rack_base = (s / kRack) * kRack;
        const auto next = static_cast<fabric::ServerIndex>(
            rack_base + (s - rack_base + 1) % kRack);
        sim.StartFlow(1e5,
                      topo.RemotePath(static_cast<fabric::ServerIndex>(s),
                                      0, next));
      }
      sim.EndBatch();
    });
  }
  sim.Run();
  return SeriesJson({&rec});
}

TEST(SeriesJsonTest, ReplayIsByteIdentical) {
  const std::string a = ShardedRunSeries(1);
  const std::string b = ShardedRunSeries(1);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(SeriesJsonTest, ThreadCountInvariant) {
  // The sampled probes read simulation state only; the parallel sharded
  // solver produces identical rates and counters for any worker count, so
  // the series file is byte-identical too.
  const std::string one = ShardedRunSeries(1);
  const std::string four = ShardedRunSeries(4);
  EXPECT_EQ(one, four);
}

// --- FlightRecorder ---------------------------------------------------------

TEST(FlightRecorderTest, RingDropsOldestBeyondCapacity) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.Record(Microseconds(i), "tick", "event " + std::to_string(i));
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.event_count(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
}

TEST(FlightRecorderTest, PostmortemFreezesTheRing) {
  FlightRecorder rec(8);
  rec.Record(Microseconds(1), "fault.crash", "server s1");
  rec.Record(Microseconds(2), "recovery.start", "segment 7");
  rec.SnapshotPostmortem("server_crash:s1", Microseconds(2));
  // Later events do not leak into the frozen snapshot.
  rec.Record(Microseconds(3), "recovery.done", "segment 7");
  rec.SnapshotPostmortem("server_crash:s2", Microseconds(3));
  EXPECT_EQ(rec.postmortem_count(), 2u);

  const std::string json = rec.PostmortemJson();
  const auto first = json.find("server_crash:s1");
  ASSERT_NE(first, std::string::npos);
  // The first snapshot (rendered before the second) has no recovery.done.
  const auto second = json.find("server_crash:s2");
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  const auto done = json.find("recovery.done");
  ASSERT_NE(done, std::string::npos);
  EXPECT_GT(done, second);
}

TEST(FlightRecorderTest, SequenceNumbersAreGlobal) {
  FlightRecorder rec(2);
  rec.Record(0, "a", "");
  rec.Record(0, "b", "");
  rec.Record(0, "c", "");  // drops "a"
  rec.SnapshotPostmortem("end", 0);
  const std::string json = rec.PostmortemJson();
  // Ring holds seq 1 and 2; seq 0 fell off.
  EXPECT_EQ(json.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":2"), std::string::npos);
}

TEST(FlightRecorderTest, JsonIsDeterministic) {
  auto build = [] {
    FlightRecorder rec(16);
    rec.Record(Microseconds(5), "fault.crash", "server s\"3\"");
    rec.SnapshotPostmortem("server_crash:s3", Microseconds(5));
    return rec.PostmortemJson();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace lmp::obs

namespace lmp::ctrl {
namespace {

// --- SloLedger --------------------------------------------------------------

TEST(SloLedgerTest, LocalFloorAttainment) {
  SloLedger ledger;
  SloTargets targets;
  targets.local_fraction_floor = 0.5;
  ledger.Register("t", targets);
  ledger.RecordLocalFraction("t", 0.9);
  ledger.RecordLocalFraction("t", 0.6);
  ledger.RecordLocalFraction("t", 0.2);  // miss
  ledger.RecordLocalFraction("t", 0.5);  // floor counts as met
  const SloAttainment* a = ledger.Find("t");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->local_samples, 4u);
  EXPECT_EQ(a->local_met, 3u);
  EXPECT_DOUBLE_EQ(a->LocalAttainment(), 0.75);
  EXPECT_DOUBLE_EQ(a->local_min, 0.2);
  EXPECT_FALSE(a->Met());  // one sample missed the floor
}

TEST(SloLedgerTest, BandwidthAndUnavailabilityBudgets) {
  SloLedger ledger;
  SloTargets targets;
  targets.min_bandwidth_gbps = 4.0;
  targets.max_unavailability = Milliseconds(1);
  ledger.Register("t", targets);
  ledger.RecordBandwidth("t", 6.0);
  ledger.AddUnavailability("t", Microseconds(400));
  ledger.AddUnavailability("t", Microseconds(500));
  const SloAttainment* a = ledger.Find("t");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->BandwidthAttainment(), 1.0);
  EXPECT_EQ(a->unavailability_windows, 2u);
  EXPECT_TRUE(a->UnavailabilityMet());
  EXPECT_TRUE(a->Met());
  // Blow the budget: 0.9ms + another 0.2ms > 1ms.
  ledger.AddUnavailability("t", Microseconds(200));
  EXPECT_FALSE(ledger.Find("t")->UnavailabilityMet());
  EXPECT_FALSE(ledger.Find("t")->Met());
}

TEST(SloLedgerTest, UnobservedTargetsAreVacuouslyMet) {
  SloLedger ledger;
  SloTargets targets;
  targets.local_fraction_floor = 0.99;
  ledger.Register("idle", targets);
  const SloAttainment* a = ledger.Find("idle");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->LocalAttainment(), 1.0);
  EXPECT_TRUE(a->Met());
}

TEST(SloLedgerTest, ObservationsAutoRegister) {
  SloLedger ledger;
  ledger.RecordBandwidth("walk-in", 2.0);
  EXPECT_EQ(ledger.tenant_count(), 1u);
  const SloAttainment* a = ledger.Find("walk-in");
  ASSERT_NE(a, nullptr);
  // Default targets are no-ops, so the walk-in tenant meets trivially.
  EXPECT_TRUE(a->Met());
}

TEST(SloLedgerTest, ReportSortsByNameAndJsonIsStable) {
  auto build = [] {
    SloLedger ledger;
    ledger.RecordBandwidth("zeta", 1.0);
    ledger.RecordLocalFraction("alpha", 0.5);
    return ledger;
  };
  const SloLedger ledger = build();
  const auto report = ledger.Report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].tenant, "alpha");
  EXPECT_EQ(report[1].tenant, "zeta");
  EXPECT_EQ(ledger.Json(), build().Json());
  EXPECT_NE(ledger.ReportTable().find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace lmp::ctrl

namespace lmp {
namespace {

// --- Wall-clock segregation -------------------------------------------------

// Regression for the ScopedTimer determinism leak: wall-clock readings go
// to the "wall." namespace and the deterministic metrics export must not
// contain them — two identical runs that also took ScopedTimer readings
// still produce byte-identical metrics JSON.
TEST(WallMetricsTest, DeterministicExportExcludesWallNamespace) {
  auto build = [] {
    MetricsRegistry registry;
    registry.Increment("lmp.ops", 3);
    registry.SetGauge("lmp.util", 0.25);
    registry.RecordValue("lmp.latency_ns", 1200);
    { ScopedTimer timer(&registry, "solve"); }  // lands at wall.solve
    registry.SetGauge("wall.explicit_ns", 123456.0);
    return trace::MetricsJson(registry);
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("wall."), std::string::npos);
  EXPECT_NE(a.find("lmp.ops"), std::string::npos);
  EXPECT_NE(a.find("lmp.latency_ns"), std::string::npos);
}

TEST(WallMetricsTest, ReportStillShowsWallMetrics) {
  MetricsRegistry registry;
  { ScopedTimer timer(&registry, "solve"); }
  EXPECT_NE(registry.Report().find("wall.solve"), std::string::npos);
}

}  // namespace
}  // namespace lmp
