// Tests for the lmp::chaos fault-injection subsystem: plan parsing,
// deterministic replay (identical plan + seed => byte-identical trace and
// metrics), crash-during-rebuild recovery, retry/backoff bounds, and link
// flaps racing an active migration.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/logical.h"
#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/trace.h"
#include "core/erasure.h"
#include "core/migration.h"
#include "core/placement.h"
#include "core/pool_manager.h"
#include "core/replication.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::chaos {
namespace {

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, ParsesEveryKindAndSortsByTime) {
  const auto plan = FaultPlan::Parse(
      "e0=500us:recover:s1 "
      "e1=100us:crash:s1 "
      "e2=150us:degrade:s2:bw=0.25,lat=2.0 "
      "e3=300us:restore:s2 "
      "e4=400us:degrade:pool:bw=0.5 "
      "e5=600us:flap:s3:down=10us,count=3,period=50us,bw=0.05,lat=4.0 "
      "e6=900us:rack:s0+s1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->size(), 7u);
  const auto& events = plan->events();
  EXPECT_EQ(events[0].kind, FaultKind::kServerCrash);
  EXPECT_DOUBLE_EQ(events[0].at, 100e3);
  EXPECT_EQ(events[1].kind, FaultKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(events[1].bandwidth_mult, 0.25);
  EXPECT_DOUBLE_EQ(events[1].latency_mult, 2.0);
  EXPECT_EQ(events[2].kind, FaultKind::kLinkRestore);
  EXPECT_TRUE(events[3].pool_link);
  EXPECT_EQ(events[4].kind, FaultKind::kServerRecover);
  EXPECT_EQ(events[5].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(events[5].flap_count, 3);
  EXPECT_DOUBLE_EQ(events[5].down_ns, 10e3);
  EXPECT_DOUBLE_EQ(events[5].period_ns, 50e3);
  ASSERT_EQ(events[6].servers.size(), 2u);
  EXPECT_EQ(events[6].servers[1], 1u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("e0=abc:crash:s1").ok());
  EXPECT_FALSE(FaultPlan::Parse("e0=100ms:explode:s1").ok());
  EXPECT_FALSE(FaultPlan::Parse("e0=100ms:crash").ok());
  EXPECT_FALSE(FaultPlan::Parse("e0=100ms:crash:pool").ok());
  EXPECT_FALSE(FaultPlan::Parse("e0=100ms:degrade:s1:bw=1.5").ok());
  EXPECT_FALSE(FaultPlan::Parse("e0=100ms:degrade:s1:bw=0.5,lat=0.5").ok());
  // Flap needs period > down and count > 0.
  EXPECT_FALSE(
      FaultPlan::Parse("e0=1ms:flap:s1:down=50us,count=2,period=20us").ok());
  EXPECT_FALSE(FaultPlan::Parse("e0=1ms:crash:s1:bw=0.5:extra").ok());
  // Error messages carry the offending key.
  const auto bad = FaultPlan::Parse("e0=1ms:crash:s1 e1=zzz:crash:s2");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("e1"), std::string::npos);
}

TEST(FaultPlanTest, EventNumberingStopsAtFirstGap) {
  const auto plan = FaultPlan::Parse("e0=1ms:crash:s1 e2=2ms:crash:s2");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->size(), 1u);  // e2 unreachable without e1
}

TEST(FaultPlanTest, CrashVictimsDedupsInFirstCrashOrder) {
  FaultPlan plan;
  plan.CrashAt(Milliseconds(2), 3)
      .RackFailAt(Milliseconds(5), {3, 1})
      .CrashAt(Milliseconds(1), 2)
      .DegradeLinkAt(Milliseconds(3), 0, 0.5);
  const auto victims = plan.CrashVictims();
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_EQ(victims[0], 2u);
  EXPECT_EQ(victims[1], 3u);
  EXPECT_EQ(victims[2], 1u);
}

// ------------------------------------------------------------- determinism

cluster::ClusterConfig SmallConfig() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  return config;
}

struct DeterminismRun {
  std::string trace_json;
  std::string metrics_json;
  baselines::WorkloadResult result;
};

DeterminismRun RunChaosWorkloadOnce() {
  baselines::LogicalDeployment dep(
      fabric::LinkProfile::Link0(), SmallConfig(),
      std::make_unique<core::RoundRobinPlacement>(KiB(512)));
  EXPECT_TRUE(dep.EnableReplication(1).ok());

  DeterminismRun run;
  trace::TraceCollector collector;
  MetricsRegistry metrics;
  dep.injector().set_trace(&collector);
  dep.injector().set_metrics(&metrics);

  baselines::WorkloadSpec spec;
  spec.vector.vector_bytes = MiB(2);
  spec.vector.repetitions = 4;
  spec.replication_factor = 1;
  spec.faults.DegradeLinkAt(Microseconds(10), 0, 0.5, 2.0)
      .CrashAt(Microseconds(30), 1)
      .RestoreLinkAt(Microseconds(120), 0);

  auto result = dep.RunWorkload(spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) run.result = *result;
  run.trace_json = collector.ToChromeJson();
  run.metrics_json = trace::MetricsJson(metrics);
  return run;
}

TEST(ChaosDeterminismTest, IdenticalPlanProducesByteIdenticalTraceAndMetrics) {
  const DeterminismRun a = RunChaosWorkloadOnce();
  const DeterminismRun b = RunChaosWorkloadOnce();
  EXPECT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.result.chaos.crashes, 1);
  EXPECT_GT(a.result.chaos.replicas_recreated, 0);
  EXPECT_GT(a.result.chaos.bytes_rereplicated, 0u);
  EXPECT_DOUBLE_EQ(a.result.chaos.max_time_to_redundancy,
                   b.result.chaos.max_time_to_redundancy);
  EXPECT_EQ(a.result.vector.total_time_ns, b.result.vector.total_time_ns);
}

// ------------------------------------------------------- injector recovery

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest()
      : topology_(fabric::Topology::MakeLogical(
            &sim_, 4, fabric::LinkProfile::Link0())),
        cluster_(SmallConfig()),
        manager_(&cluster_) {}

  FaultInjector::Bindings Bind(core::ReplicationManager* repl = nullptr,
                               core::XorErasureManager* erasure = nullptr) {
    FaultInjector::Bindings b;
    b.sim = &sim_;
    b.topology = &topology_;
    b.manager = &manager_;
    b.replication = repl;
    b.erasure = erasure;
    return b;
  }

  sim::FluidSimulator sim_;
  fabric::Topology topology_;
  cluster::Cluster cluster_;
  core::PoolManager manager_;
  MetricsRegistry metrics_;
};

TEST_F(InjectorTest, ErasureRebuildTransfersCompleteAndCloseWindows) {
  core::XorErasureManager erasure(&manager_, 2);
  auto buf = manager_.Allocate(KiB(256), 1);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(
      erasure.ProtectSegments(manager_.Describe(*buf)->segments).ok());

  FaultInjector injector(Bind(nullptr, &erasure));
  injector.set_metrics(&metrics_);
  ASSERT_TRUE(injector.WatchBuffer(*buf).ok());
  FaultPlan plan;
  plan.CrashAt(Microseconds(10), 1);
  ASSERT_TRUE(injector.SchedulePlan(plan).ok());
  sim_.Run();

  ASSERT_TRUE(injector.ApplyError().ok());
  const ChaosReport report = injector.report();
  EXPECT_EQ(report.crashes, 1);
  EXPECT_GT(report.segments_lost, 0);
  EXPECT_EQ(report.segments_rebuilt, report.segments_lost);
  EXPECT_EQ(report.rebuilds_abandoned, 0);
  EXPECT_GT(report.max_time_to_redundancy, 0.0);
  // The buffer was unavailable from crash to last rebuild completion, and
  // is available again now.
  EXPECT_GT(report.total_unavailability, 0.0);
  EXPECT_EQ(report.buffers_affected, 1);
  EXPECT_EQ(injector.pending_recoveries(), 0);
  // Re-querying later does not extend closed windows.
  EXPECT_DOUBLE_EQ(injector.report().total_unavailability,
                   report.total_unavailability);
}

TEST_F(InjectorTest, CrashDuringRebuildExtendsOneRecoveryWindow) {
  core::XorErasureManager erasure(&manager_, 2);
  auto buf1 = manager_.Allocate(KiB(128), 1);
  auto buf2 = manager_.Allocate(KiB(128), 2);
  ASSERT_TRUE(buf1.ok() && buf2.ok());
  ASSERT_TRUE(
      erasure.ProtectSegments(manager_.Describe(*buf1)->segments).ok());
  ASSERT_TRUE(
      erasure.ProtectSegments(manager_.Describe(*buf2)->segments).ok());

  FaultInjector injector(Bind(nullptr, &erasure));
  injector.set_metrics(&metrics_);
  // The second crash lands while the first rebuild's transfer is still in
  // flight (128 KiB over Link0 takes ~4us).
  FaultPlan plan;
  plan.CrashAt(Microseconds(10), 1).CrashAt(Microseconds(12), 2);
  ASSERT_TRUE(injector.SchedulePlan(plan).ok());
  sim_.Run();

  ASSERT_TRUE(injector.ApplyError().ok());
  const ChaosReport report = injector.report();
  EXPECT_EQ(report.crashes, 2);
  // Every lost segment is accounted for: rebuilt, or abandoned because the
  // second crash took a survivor its XOR group needed (double loss).
  EXPECT_GT(report.segments_rebuilt, 0);
  EXPECT_EQ(report.segments_rebuilt + report.rebuilds_abandoned,
            report.segments_lost);
  EXPECT_EQ(injector.pending_recoveries(), 0);
  // One merged redundancy window spans both crashes: TTR is measured from
  // the FIRST crash to the LAST rebuild completion.
  EXPECT_GE(report.max_time_to_redundancy,
            sim_.now() - Microseconds(10) - 1.0);
}

TEST_F(InjectorTest, RetryBackoffIsBoundedAndAbandons) {
  core::XorErasureManager erasure(&manager_, 2);
  auto buf = manager_.Allocate(KiB(128), 1);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(
      erasure.ProtectSegments(manager_.Describe(*buf)->segments).ok());

  InjectorOptions options;
  options.max_transfer_retries = 3;
  options.retry_backoff = Microseconds(5);
  FaultInjector injector(Bind(nullptr, &erasure), options);
  injector.set_metrics(&metrics_);
  ASSERT_TRUE(injector.WatchBuffer(*buf).ok());

  // Every surviving link is effectively down for the whole run, so each
  // rebuild transfer retries exactly max_transfer_retries times and is
  // then abandoned — never an unbounded spin.
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(topology_.SetLinkHealth(s, 0.01, 1.0).ok());
  }
  FaultPlan plan;
  plan.CrashAt(Microseconds(10), 1);
  ASSERT_TRUE(injector.SchedulePlan(plan).ok());
  sim_.Run();

  ASSERT_TRUE(injector.ApplyError().ok());
  const ChaosReport report = injector.report();
  ASSERT_GT(report.segments_lost, 0);
  EXPECT_EQ(report.transfer_retries,
            report.segments_lost * options.max_transfer_retries);
  EXPECT_EQ(report.rebuilds_abandoned, report.segments_lost);
  EXPECT_EQ(report.segments_rebuilt, 0);
  EXPECT_EQ(injector.pending_recoveries(), 0);
  // No redundancy was ever reached, so no TTR is reported; the watched
  // buffer's unavailability window stays open to the report's query time.
  EXPECT_DOUBLE_EQ(report.max_time_to_redundancy, 0.0);
  EXPECT_GT(report.total_unavailability, 0.0);
  // The abandoned state is terminal, not a timer leak: sim has drained.
  EXPECT_FALSE(sim_.Step());
}

TEST_F(InjectorTest, DoubleCrashAndDoubleRecoverAreErrors) {
  FaultInjector injector(Bind());
  injector.set_metrics(&metrics_);
  FaultEvent crash;
  crash.kind = FaultKind::kServerCrash;
  crash.servers = {1};
  ASSERT_TRUE(injector.Apply(crash).ok());
  EXPECT_TRUE(IsFailedPrecondition(injector.Apply(crash)));
  FaultEvent recover;
  recover.kind = FaultKind::kServerRecover;
  recover.servers = {1};
  ASSERT_TRUE(injector.Apply(recover).ok());
  EXPECT_TRUE(IsFailedPrecondition(injector.Apply(recover)));
  // Scheduled-plan errors surface through ApplyError, not silently.
  FaultPlan plan;
  plan.RecoverAt(Microseconds(5), 2);  // server 2 is not crashed
  ASSERT_TRUE(injector.SchedulePlan(plan).ok());
  sim_.Run();
  EXPECT_TRUE(IsFailedPrecondition(injector.ApplyError()));
}

TEST_F(InjectorTest, DegradedBytesServedAccountsDegradeWindows) {
  FaultInjector injector(Bind());
  injector.set_metrics(&metrics_);
  FaultEvent degrade;
  degrade.kind = FaultKind::kLinkDegrade;
  degrade.servers = {0};
  degrade.bandwidth_mult = 0.5;
  ASSERT_TRUE(injector.Apply(degrade).ok());

  // Push 64 KiB through the degraded port.
  sim_.StartFlow(KiB(64), topology_.DmaRemotePath(0, 1));
  sim_.Run();

  FaultEvent restore;
  restore.kind = FaultKind::kLinkRestore;
  restore.servers = {0};
  ASSERT_TRUE(injector.Apply(restore).ok());
  const ChaosReport report = injector.report();
  EXPECT_EQ(report.link_degrades, 1);
  EXPECT_EQ(report.link_restores, 1);
  EXPECT_DOUBLE_EQ(report.degraded_bytes_served, double(KiB(64)));
  // Traffic after the restore is not charged to the degraded window.
  sim_.StartFlow(KiB(64), topology_.DmaRemotePath(0, 1));
  sim_.Run();
  EXPECT_DOUBLE_EQ(injector.report().degraded_bytes_served,
                   double(KiB(64)));
}

// ----------------------------------------------- link flap during migration

TEST_F(InjectorTest, LinkFlapDuringMigrationRoundCompletesCleanly) {
  // A segment on server 0 is hammered remotely by server 2, so a migration
  // round moves it 0 -> 2 while server 2's link flaps.
  auto buf = manager_.Allocate(KiB(64), 0);
  ASSERT_TRUE(buf.ok());
  const core::SegmentId seg = manager_.Describe(*buf)->segments[0];
  manager_.access_tracker().RecordAccess(seg, 2, double(MiB(2)), 0);

  FaultInjector injector(Bind());
  injector.set_metrics(&metrics_);
  FaultPlan plan;
  plan.FlapLinkAt(0, 2, /*down=*/Microseconds(2), /*count=*/3,
                  /*period=*/Microseconds(5), /*bandwidth_mult=*/0.04);
  ASSERT_TRUE(injector.SchedulePlan(plan).ok());

  core::MigrationEngine engine(&manager_);
  std::vector<core::MigrationRecord> records;
  const auto stats = engine.RunOnce(sim_.now(), &records);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->migrated, 1);
  ASSERT_EQ(records.size(), 1u);

  // Price the migration copy while the flap plays out underneath it.
  sim_.StartFlow(static_cast<double>(records[0].bytes),
                 topology_.DmaRemotePath(records[0].from.server,
                                         records[0].to.server));
  sim_.Run();

  ASSERT_TRUE(injector.ApplyError().ok());
  const ChaosReport report = injector.report();
  EXPECT_EQ(report.link_degrades, 3);
  EXPECT_EQ(report.link_restores, 3);
  // The link ends healthy and the migrated segment is live at its new home.
  EXPECT_FALSE(topology_.link_degraded(2));
  EXPECT_EQ(manager_.segment_map().Find(seg)->home.server, 2u);
  EXPECT_EQ(manager_.segment_map().Find(seg)->state,
            core::SegmentState::kActive);
  // Bytes pushed through the flapping link while it was down are charged
  // to the degraded windows.
  EXPECT_GT(report.degraded_bytes_served, 0.0);
}

}  // namespace
}  // namespace lmp::chaos
