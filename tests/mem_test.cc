// Tests for mem/: frame allocator, LRU cache, backing store, NUMA matrix.
#include <gtest/gtest.h>

#include "mem/backing_store.h"
#include "mem/frame_allocator.h"
#include "mem/lru_cache.h"
#include "mem/numa.h"

namespace lmp::mem {
namespace {

// Request builders the tests use; keeps call sites one-liners without
// tripping -Wmissing-field-initializers on the skipped optional fields.
AllocRequest InLocus(std::uint64_t frames, LocusId locus) {
  AllocRequest request;
  request.frames = frames;
  request.locus = locus;
  return request;
}

AllocRequest Contiguous(std::uint64_t frames) {
  AllocRequest request;
  request.frames = frames;
  request.prefer_contiguous = true;
  return request;
}

// --- FrameAllocator ---------------------------------------------------------

TEST(FrameAllocatorTest, AllocatesExactCount) {
  FrameAllocator alloc(100, KiB(64));
  auto runs = alloc.Allocate(AllocRequest::Of(10));
  ASSERT_TRUE(runs.ok());
  std::uint64_t total = 0;
  for (const auto& r : *runs) total += r.count;
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(alloc.used_frames(), 10u);
  EXPECT_EQ(alloc.free_frames(), 90u);
}

TEST(FrameAllocatorTest, FreshAllocationIsOneRun) {
  FrameAllocator alloc(100, KiB(4));
  auto runs = alloc.Allocate(AllocRequest::Of(50));
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(runs->size(), 1u);
  EXPECT_EQ((*runs)[0].count, 50u);
}

TEST(FrameAllocatorTest, ZeroFramesIsEmpty) {
  FrameAllocator alloc(10, KiB(4));
  auto runs = alloc.Allocate(AllocRequest::Of(0));
  ASSERT_TRUE(runs.ok());
  EXPECT_TRUE(runs->empty());
}

TEST(FrameAllocatorTest, ExhaustionIsOutOfMemory) {
  FrameAllocator alloc(10, KiB(4));
  ASSERT_TRUE(alloc.Allocate(AllocRequest::Of(10)).ok());
  auto more = alloc.Allocate(AllocRequest::Of(1));
  EXPECT_FALSE(more.ok());
  EXPECT_TRUE(IsOutOfMemory(more.status()));
}

TEST(FrameAllocatorTest, FreeMakesFramesReusable) {
  FrameAllocator alloc(10, KiB(4));
  auto runs = alloc.Allocate(AllocRequest::Of(10));
  ASSERT_TRUE(runs.ok());
  ASSERT_TRUE(alloc.Free(*runs).ok());
  EXPECT_EQ(alloc.free_frames(), 10u);
  EXPECT_TRUE(alloc.Allocate(AllocRequest::Of(10)).ok());
}

TEST(FrameAllocatorTest, DoubleFreeRejectedAtomically) {
  FrameAllocator alloc(10, KiB(4));
  auto runs = alloc.Allocate(AllocRequest::Of(5));
  ASSERT_TRUE(runs.ok());
  ASSERT_TRUE(alloc.Free(*runs).ok());
  EXPECT_FALSE(alloc.Free(*runs).ok());
  EXPECT_EQ(alloc.free_frames(), 10u);  // state unchanged by bad free
}

TEST(FrameAllocatorTest, OutOfRangeFreeRejected) {
  FrameAllocator alloc(10, KiB(4));
  EXPECT_FALSE(alloc.Free({FrameRun{5, 10}}).ok());
}

TEST(FrameAllocatorTest, FragmentedAllocationSpansHoles) {
  FrameAllocator alloc(10, KiB(4));
  auto a = alloc.Allocate(AllocRequest::Of(4));   // frames 0-3
  auto b = alloc.Allocate(AllocRequest::Of(2));   // frames 4-5
  auto c = alloc.Allocate(AllocRequest::Of(4));   // frames 6-9
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  ASSERT_TRUE(alloc.Free(*c).ok());
  // 8 free frames in two disjoint regions; allocation must span both.
  auto d = alloc.Allocate(AllocRequest::Of(8));
  ASSERT_TRUE(d.ok());
  EXPECT_GE(d->size(), 2u);
  EXPECT_EQ(alloc.free_frames(), 0u);
}

TEST(FrameAllocatorTest, GrowAddsFreeFrames) {
  FrameAllocator alloc(10, KiB(4));
  ASSERT_TRUE(alloc.Resize(20).ok());
  EXPECT_EQ(alloc.num_frames(), 20u);
  EXPECT_EQ(alloc.free_frames(), 20u);
}

TEST(FrameAllocatorTest, ShrinkBlockedByLiveFrames) {
  FrameAllocator alloc(10, KiB(4));
  auto runs = alloc.Allocate(AllocRequest::Of(8));
  ASSERT_TRUE(runs.ok());
  EXPECT_FALSE(alloc.Resize(4).ok());  // frames 0-7 live
  ASSERT_TRUE(alloc.Free(*runs).ok());
  EXPECT_TRUE(alloc.Resize(4).ok());
  EXPECT_EQ(alloc.num_frames(), 4u);
}

TEST(FrameAllocatorTest, CapacityArithmetic) {
  FrameAllocator alloc(16, KiB(64));
  EXPECT_EQ(alloc.capacity_bytes(), MiB(1));
  ASSERT_TRUE(alloc.Allocate(AllocRequest::Of(4)).ok());
  EXPECT_EQ(alloc.free_bytes(), KiB(64) * 12);
}

TEST(FrameAllocatorTest, IsAllocatedTracksState) {
  FrameAllocator alloc(4, KiB(4));
  EXPECT_FALSE(alloc.IsAllocated(0));
  auto runs = alloc.Allocate(AllocRequest::Of(1));
  ASSERT_TRUE(runs.ok());
  EXPECT_TRUE(alloc.IsAllocated((*runs)[0].first));
  EXPECT_FALSE(alloc.IsAllocated(99));  // out of range is not allocated
}

TEST(FramesForBytesTest, RoundsUp) {
  EXPECT_EQ(FramesForBytes(1, KiB(4)), 1u);
  EXPECT_EQ(FramesForBytes(KiB(4), KiB(4)), 1u);
  EXPECT_EQ(FramesForBytes(KiB(4) + 1, KiB(4)), 2u);
  EXPECT_EQ(FramesForBytes(0, KiB(4)), 0u);
}

TEST(FrameAllocatorTest, HighestAllocatedEndTracksTail) {
  FrameAllocator alloc(8, KiB(4));
  EXPECT_EQ(alloc.HighestAllocatedEnd(), 0u);
  auto a = alloc.Allocate(AllocRequest::Of(3));  // frames 0..2
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc.HighestAllocatedEnd(), 3u);
  auto b = alloc.Allocate(AllocRequest::Of(2));  // frames 3..4
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  // Low frames freed: the tail is still pinned by the highest live frame.
  EXPECT_EQ(alloc.HighestAllocatedEnd(), 5u);
}

TEST(FrameAllocatorTest, BoundedRequestPacksUnderTheBound) {
  FrameAllocator alloc(8, KiB(4));
  auto a = alloc.Allocate(AllocRequest::Of(2));  // 0..1
  auto b = alloc.Allocate(AllocRequest::Of(2));  // 2..3, next-fit hint now at 4
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  // Default next-fit would continue from the hint; a bounded request must
  // come back for the hole at the bottom.
  auto low = alloc.Allocate(AllocRequest::Below(2, 4));
  ASSERT_TRUE(low.ok());
  ASSERT_EQ(low->size(), 1u);
  EXPECT_EQ((*low)[0].first, 0u);
  EXPECT_EQ((*low)[0].count, 2u);
}

TEST(FrameAllocatorTest, BoundedShortageLeavesStateUntouched) {
  FrameAllocator alloc(8, KiB(4));
  auto a = alloc.Allocate(AllocRequest::Of(3));  // 0..2
  ASSERT_TRUE(a.ok());
  const std::uint64_t free_before = alloc.free_frames();
  // Only frame 3 is free below 4.
  auto low = alloc.Allocate(AllocRequest::Below(3, 4));
  EXPECT_TRUE(IsOutOfMemory(low.status()));
  // Reserve-before-commit: shortage never mutates the free index.
  EXPECT_EQ(alloc.free_frames(), free_before);
  EXPECT_EQ(alloc.free_run_count(), 1u);  // still one coalesced run [3, 8)
}


TEST(FrameAllocatorTest, DefaultPlacementMatchesLegacyNextFit) {
  // The default locus reproduces the bitmap-era next-fit scan exactly:
  // frames are taken in scan order from the hint, wrapping once.
  FrameAllocator alloc(8, KiB(4));
  auto a = alloc.Allocate(AllocRequest::Of(3));  // 0..2
  auto b = alloc.Allocate(AllocRequest::Of(3));  // 3..5
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  // Hint sits at 6: the next grab takes 6..7, then wraps to 0.
  auto c = alloc.Allocate(AllocRequest::Of(4));
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->size(), 2u);
  EXPECT_EQ((*c)[0], (FrameRun{6, 2}));
  EXPECT_EQ((*c)[1], (FrameRun{0, 2}));
}

TEST(FrameAllocatorTest, FreeRunCountTracksFragmentation) {
  FrameAllocator alloc(10, KiB(4));
  EXPECT_EQ(alloc.free_run_count(), 1u);
  auto a = alloc.Allocate(AllocRequest::Of(2));  // 0..1
  auto b = alloc.Allocate(AllocRequest::Of(2));  // 2..3
  auto c = alloc.Allocate(AllocRequest::Of(2));  // 4..5
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(alloc.Free(*b).ok());
  EXPECT_EQ(alloc.free_run_count(), 2u);  // {2..3} and {6..9}
  // Freeing the neighbours coalesces everything back into one run.
  ASSERT_TRUE(alloc.Free(*a).ok());
  ASSERT_TRUE(alloc.Free(*c).ok());
  EXPECT_EQ(alloc.free_run_count(), 1u);
  EXPECT_EQ(alloc.free_frames(), 10u);
}

TEST(FrameAllocatorTest, AllocatedFramesFromCountsTail) {
  FrameAllocator alloc(10, KiB(4));
  auto a = alloc.Allocate(AllocRequest::Of(4));  // 0..3
  auto b = alloc.Allocate(AllocRequest::Of(4));  // 4..7
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  EXPECT_EQ(alloc.AllocatedFramesFrom(0), 4u);
  EXPECT_EQ(alloc.AllocatedFramesFrom(6), 2u);
  EXPECT_EQ(alloc.AllocatedFramesFrom(8), 0u);
  EXPECT_EQ(alloc.AllocatedFramesFrom(99), 0u);
}

TEST(FrameAllocatorTest, OverlappingRunsInOneFreeRejected) {
  FrameAllocator alloc(10, KiB(4));
  auto runs = alloc.Allocate(AllocRequest::Of(6));
  ASSERT_TRUE(runs.ok());
  // The same frames twice in one call must not corrupt the free count
  // (the bitmap implementation double-counted here).
  EXPECT_FALSE(alloc.Free({(*runs)[0], (*runs)[0]}).ok());
  EXPECT_EQ(alloc.free_frames(), 4u);
}

TEST(FrameAllocatorTest, MobileLocusPacksLowPinnedPacksHigh) {
  FrameAllocator alloc(100, KiB(4));
  const LocusId mobile = alloc.RegisterLocus({"tenant/a", Mobility::kMobile});
  const LocusId pinned = alloc.RegisterLocus({"tenant/b", Mobility::kPinned});
  auto lo = alloc.Allocate(InLocus(10, mobile));
  auto hi = alloc.Allocate(InLocus(10, pinned));
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_EQ((*lo)[0], (FrameRun{0, 10}));
  EXPECT_EQ((*hi)[0], (FrameRun{90, 10}));
  // The cohorts keep packing outward on subsequent grabs.
  auto lo2 = alloc.Allocate(InLocus(5, mobile));
  auto hi2 = alloc.Allocate(InLocus(5, pinned));
  ASSERT_TRUE(lo2.ok() && hi2.ok());
  EXPECT_EQ((*lo2)[0], (FrameRun{10, 5}));
  EXPECT_EQ((*hi2)[0], (FrameRun{85, 5}));
}

TEST(FrameAllocatorTest, RegisterLocusIsGetOrCreate) {
  FrameAllocator alloc(100, KiB(4));
  const LocusId a = alloc.RegisterLocus({"tenant/a", Mobility::kPinned});
  const LocusId again = alloc.RegisterLocus({"tenant/a", Mobility::kMobile});
  EXPECT_EQ(a, again);
  EXPECT_EQ(alloc.locus_spec(a).mobility, Mobility::kPinned);  // first wins
  EXPECT_EQ(alloc.RegisterLocus({""}), kDefaultLocus);
}

TEST(FrameAllocatorTest, BufferedLocusServesContiguousSmallGrabs) {
  FrameAllocator alloc(100, KiB(4));
  const LocusId id = alloc.RegisterLocus(
      {"tenant/buf", Mobility::kMobile, /*buffer_frames=*/16});
  auto a = alloc.Allocate(InLocus(3, id));
  auto b = alloc.Allocate(InLocus(3, id));
  ASSERT_TRUE(a.ok() && b.ok());
  // Both grabs bump within one 16-frame reservation: contiguous frames,
  // one refill, and the reservation reads as allocated.
  EXPECT_EQ((*a)[0], (FrameRun{0, 3}));
  EXPECT_EQ((*b)[0], (FrameRun{3, 3}));
  EXPECT_EQ(alloc.locus_stats(id).buffer_refills, 1u);
  EXPECT_EQ(alloc.buffered_frames(), 10u);
  EXPECT_EQ(alloc.free_frames(), 84u);
  EXPECT_TRUE(alloc.IsAllocated(8));  // reserved, not yet handed out
  alloc.FlushLocusBuffers();
  EXPECT_EQ(alloc.buffered_frames(), 0u);
  EXPECT_EQ(alloc.free_frames(), 94u);
  EXPECT_FALSE(alloc.IsAllocated(8));
}

TEST(FrameAllocatorTest, ShrinkFlushesLocusBuffers) {
  FrameAllocator alloc(100, KiB(4));
  const LocusId id = alloc.RegisterLocus(
      {"tenant/buf", Mobility::kPinned, /*buffer_frames=*/16});
  // The pinned buffer reserves the top 16 frames; only 2 are handed out.
  auto runs = alloc.Allocate(InLocus(2, id));
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ((*runs)[0], (FrameRun{98, 2}));
  // A shrink to 50 would be blocked by the reservation alone; the resize
  // flushes it and fails only on the 2 truly live frames.
  auto st = alloc.Resize(50);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(alloc.buffered_frames(), 0u);
  ASSERT_TRUE(alloc.Free(*runs).ok());
  EXPECT_TRUE(alloc.Resize(50).ok());
}

TEST(FrameAllocatorTest, PreferContiguousUsesBestFitBucket) {
  FrameAllocator alloc(64, KiB(4));
  auto a = alloc.Allocate(AllocRequest::Of(8));    // 0..7
  auto b = alloc.Allocate(AllocRequest::Of(40));   // 8..47
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  // Free runs: {0..7} (8 frames) and {48..63} (16 frames).  A contiguous
  // request for 6 takes the snugger 8-frame hole, not the next-fit pick.
  auto c = alloc.Allocate(Contiguous(6));
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->size(), 1u);
  EXPECT_EQ((*c)[0], (FrameRun{0, 6}));
}

TEST(FrameAllocatorTest, LocusStatsAccumulate) {
  FrameAllocator alloc(100, KiB(4));
  const LocusId id = alloc.RegisterLocus({"tenant/a", Mobility::kMobile});
  ASSERT_TRUE(alloc.Allocate(InLocus(4, id)).ok());
  ASSERT_TRUE(alloc.Allocate(InLocus(6, id)).ok());
  EXPECT_EQ(alloc.locus_stats(id).allocs, 2u);
  EXPECT_EQ(alloc.locus_stats(id).frames, 10u);
  EXPECT_EQ(alloc.num_loci(), 2u);  // default + tenant/a
}

TEST(FrameAllocatorTest, UnknownLocusRejected) {
  FrameAllocator alloc(10, KiB(4));
  auto runs = alloc.Allocate(InLocus(1, 7));
  EXPECT_FALSE(runs.ok());
}

// --- LruCache -------------------------------------------------------------------

TEST(LruCacheTest, MissThenHit) {
  LruCache cache(4);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_TRUE(cache.Access(1));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);      // 1 is now MRU
  cache.Access(3);      // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  auto evicted = cache.TakeEvicted();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].page, 2u);
}

TEST(LruCacheTest, DirtyEvictionTracked) {
  LruCache cache(1);
  cache.Access(1, /*write=*/true);
  cache.Access(2);
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
  auto evicted = cache.TakeEvicted();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_TRUE(evicted[0].dirty);
}

TEST(LruCacheTest, SequentialSweepLargerThanCacheNeverHits) {
  // The paper's Physical-cache pathology: a cyclic sequential scan larger
  // than the cache has 0% hit rate under LRU.
  LruCache cache(100);
  for (int rep = 0; rep < 3; ++rep) {
    for (PageId p = 0; p < 150; ++p) cache.Access(p);
  }
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(LruCacheTest, SweepThatFitsAlwaysHitsAfterFirstPass) {
  LruCache cache(200);
  for (PageId p = 0; p < 150; ++p) cache.Access(p);
  cache.ResetStats();
  for (PageId p = 0; p < 150; ++p) cache.Access(p);
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 1.0);
}

TEST(LruCacheTest, InvalidateRemoves) {
  LruCache cache(4);
  cache.Access(7);
  cache.Invalidate(7);
  EXPECT_FALSE(cache.Contains(7));
  cache.Invalidate(99);  // absent: no-op
}

TEST(LruCacheTest, ShrinkEvictsDownToCapacity) {
  LruCache cache(4);
  for (PageId p = 0; p < 4; ++p) cache.Access(p);
  cache.SetCapacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(3));  // most recent survive
  EXPECT_FALSE(cache.Contains(0));
}

TEST(LruCacheTest, MultiPageShrinkQueuesEveryEviction) {
  // Regression: a SetCapacity() shrink that evicts N > 1 pages used to
  // keep only the last victim in a single "last evicted" slot, so callers
  // charging writeback traffic silently dropped N-1 evictions.
  LruCache cache(5);
  for (PageId p = 0; p < 5; ++p) cache.Access(p, /*write=*/true);
  (void)cache.TakeEvicted();  // drain fill-phase noise (none expected)
  cache.SetCapacity(2);
  auto evicted = cache.TakeEvicted();
  ASSERT_EQ(evicted.size(), 3u);  // pages 0, 1, 2 in LRU order
  EXPECT_EQ(evicted[0].page, 0u);
  EXPECT_EQ(evicted[1].page, 1u);
  EXPECT_EQ(evicted[2].page, 2u);
  for (const auto& e : evicted) EXPECT_TRUE(e.dirty);
  EXPECT_EQ(cache.stats().evictions, 3u);
  EXPECT_EQ(cache.stats().dirty_evictions, 3u);
  // The queue is drained by TakeEvicted.
  EXPECT_EQ(cache.pending_evictions(), 0u);
  EXPECT_TRUE(cache.TakeEvicted().empty());
}

TEST(LruCacheTest, EvictionsSurviveSubsequentAccesses) {
  // Regression: Access() used to clear the pending-eviction slot on entry,
  // so an undrained eviction vanished at the next access.
  LruCache cache(2);
  cache.Access(1, /*write=*/true);
  cache.Access(2);
  cache.Access(3);  // evicts 1 (dirty)
  cache.Access(4);  // evicts 2
  auto evicted = cache.TakeEvicted();
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0].page, 1u);
  EXPECT_TRUE(evicted[0].dirty);
  EXPECT_EQ(evicted[1].page, 2u);
  EXPECT_FALSE(evicted[1].dirty);
}

TEST(LruCacheTest, ClearEmpties) {
  LruCache cache(4);
  cache.Access(1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruCacheTest, ContainsDoesNotPerturbRecency) {
  LruCache cache(2);
  cache.Access(1);
  cache.Access(2);
  (void)cache.Contains(1);  // must NOT promote 1
  cache.Access(3);          // evicts 1 (LRU), not 2
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

// --- BackingStore ------------------------------------------------------------------

TEST(BackingStoreTest, FrameRoundTrip) {
  BackingStore store(4, KiB(4));
  auto frame = store.Frame(2);
  frame[0] = std::byte{0xAB};
  EXPECT_EQ(store.Frame(2)[0], std::byte{0xAB});
  EXPECT_EQ(store.num_frames(), 4u);
}

TEST(BackingStoreTest, ByteAddressedReadWriteSpansFrames) {
  BackingStore store(2, 16);
  std::vector<std::byte> in(20);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = std::byte{(uint8_t)i};
  store.Write(10, in);  // crosses the frame boundary at 16
  std::vector<std::byte> out(20);
  store.Read(10, out);
  EXPECT_EQ(in, out);
}

TEST(BackingStoreTest, EnsureFramesGrows) {
  BackingStore store(2, KiB(4));
  store.EnsureFrames(8);
  EXPECT_EQ(store.num_frames(), 8u);
  store.EnsureFrames(4);  // never shrinks
  EXPECT_EQ(store.num_frames(), 8u);
}

// --- NumaDistanceMatrix ----------------------------------------------------------------

TEST(NumaTest, SelfDistanceIsTen) {
  NumaDistanceMatrix m(4);
  EXPECT_EQ(m.Distance(2, 2), NumaDistanceMatrix::kSelfDistance);
  EXPECT_EQ(m.Distance(0, 3), 20);
}

TEST(NumaTest, SetDistanceIsSymmetric) {
  NumaDistanceMatrix m(4);
  m.SetDistance(0, 1, 15);
  EXPECT_EQ(m.Distance(0, 1), 15);
  EXPECT_EQ(m.Distance(1, 0), 15);
}

TEST(NumaTest, NearestPrefersCloser) {
  NumaDistanceMatrix m(4);
  m.SetDistance(0, 2, 12);
  m.SetDistance(0, 3, 40);
  EXPECT_EQ(m.Nearest(0, {3, 2}), 2);
  EXPECT_EQ(m.Nearest(0, {0, 2}), 0);  // self wins
}

}  // namespace
}  // namespace lmp::mem
