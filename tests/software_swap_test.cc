// Tests for the software-disaggregation baseline (§2.1): fault-overhead
// throttling, resident-set behaviour, and the hardware-vs-software gap.
#include <gtest/gtest.h>

#include "baselines/logical.h"
#include "baselines/software_swap.h"

namespace lmp::baselines {
namespace {

using fabric::LinkProfile;

VectorSumResult RunSwap(SoftwareSwapDeployment& d, Bytes bytes) {
  VectorSumParams params;
  params.vector_bytes = bytes;
  params.repetitions = 3;
  auto r = d.RunVectorSum(params);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value_or(VectorSumResult{});
}

TEST(SoftwareSwapTest, ResidentWorkingSetRunsAtDramSpeed) {
  SoftwareSwapDeployment swap(LinkProfile::Link0());
  const auto r = RunSwap(swap, GiB(8));  // fits the 24 GiB resident set
  EXPECT_NEAR(r.avg_bandwidth_gbps, 97.0, 1.0);
  EXPECT_DOUBLE_EQ(r.local_fraction, 1.0);
}

TEST(SoftwareSwapTest, SwappedPortionIsFaultBound) {
  SoftwareSwapDeployment swap(LinkProfile::Link0());
  const auto r = RunSwap(swap, GiB(96));
  // 14 cores x (4 KiB / 4 us) ~ 14.3 GB/s fault ceiling on the swapped
  // 3/4 of the vector; way below the 34.5 GB/s the link could carry.
  EXPECT_LT(r.avg_bandwidth_gbps, 20.0);
  EXPECT_GT(r.avg_bandwidth_gbps, 10.0);
}

TEST(SoftwareSwapTest, HardwareDisaggregationWins) {
  // §2.1: load/store (CXL) beats software paging for the same workload.
  SoftwareSwapDeployment swap(LinkProfile::Link1());
  LogicalDeployment logical(LinkProfile::Link1());
  VectorSumParams params;
  params.vector_bytes = GiB(96);
  params.repetitions = 3;
  auto sw = swap.RunVectorSum(params);
  auto hw = logical.RunVectorSum(params);
  ASSERT_TRUE(sw.ok() && hw.ok());
  EXPECT_GT(hw->avg_bandwidth_gbps, sw->avg_bandwidth_gbps * 1.5);
}

TEST(SoftwareSwapTest, SmallerPagesFaultMore) {
  SoftwareSwapParams big_pages{.page_size = KiB(64),
                               .fault_overhead_ns = Microseconds(4)};
  SoftwareSwapParams small_pages{.page_size = KiB(4),
                                 .fault_overhead_ns = Microseconds(4)};
  SoftwareSwapDeployment big(LinkProfile::Link0(), big_pages);
  SoftwareSwapDeployment small(LinkProfile::Link0(), small_pages);
  EXPECT_GT(RunSwap(big, GiB(96)).avg_bandwidth_gbps,
            RunSwap(small, GiB(96)).avg_bandwidth_gbps);
}

TEST(SoftwareSwapTest, LatencyGapIsOrdersOfMagnitude) {
  SoftwareSwapDeployment swap(LinkProfile::Link0());
  EXPECT_NEAR(swap.ResidentReadLatency(), 82.0, 1.0);
  // Fault path: ~4 us overhead dominates the wire time.
  EXPECT_GT(swap.SwappedReadLatency(), 4000.0);
  EXPECT_GT(swap.SwappedReadLatency() / swap.ResidentReadLatency(), 40.0);
}

TEST(SoftwareSwapTest, OversizedWorkingSetInfeasible) {
  SoftwareSwapDeployment swap(LinkProfile::Link0());
  const auto r = RunSwap(swap, GiB(120));  // 24 resident + 96 > 3x24 far
  EXPECT_FALSE(r.feasible);
}

}  // namespace
}  // namespace lmp::baselines
