// Tests for cluster/: server private/shared split, resize semantics, the
// paper deployment configs, crash/recover, and the §4.2 cost model.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"

namespace lmp::cluster {
namespace {

TEST(ServerTest, SplitAccounting) {
  Server s(0, GiB(24), GiB(16), 14, mem::kDefaultFrameSize, false);
  EXPECT_EQ(s.total_memory(), GiB(24));
  EXPECT_EQ(s.shared_bytes(), GiB(16));
  EXPECT_EQ(s.private_bytes(), GiB(8));
  EXPECT_EQ(s.cores(), 14);
}

TEST(ServerTest, GrowSharedRegion) {
  Server s(0, GiB(24), GiB(8), 14, mem::kDefaultFrameSize, false);
  ASSERT_TRUE(s.ResizeShared(GiB(20)).ok());
  EXPECT_EQ(s.shared_bytes(), GiB(20));
  EXPECT_EQ(s.private_bytes(), GiB(4));
}

TEST(ServerTest, SharedCannotExceedTotal) {
  Server s(0, GiB(24), GiB(8), 14, mem::kDefaultFrameSize, false);
  EXPECT_FALSE(s.ResizeShared(GiB(25)).ok());
  EXPECT_EQ(s.shared_bytes(), GiB(8));
}

TEST(ServerTest, ShrinkBlockedByLiveData) {
  Server s(0, MiB(64), MiB(64), 4, KiB(4), false);
  auto runs = s.shared_allocator().Allocate(mem::AllocRequest::Of(
      mem::FramesForBytes(MiB(48), KiB(4))));
  ASSERT_TRUE(runs.ok());
  EXPECT_FALSE(s.ResizeShared(MiB(16)).ok());  // live frames in the tail
  ASSERT_TRUE(s.shared_allocator().Free(*runs).ok());
  EXPECT_TRUE(s.ResizeShared(MiB(16)).ok());
}

TEST(ServerTest, RecoverClearsAllocations) {
  Server s(0, MiB(4), MiB(4), 4, KiB(4), true);
  ASSERT_TRUE(s.shared_allocator().Allocate(mem::AllocRequest::Of(10)).ok());
  ASSERT_TRUE(s.Crash().ok());
  EXPECT_TRUE(s.crashed());
  // Double crash / double recover are state errors, not silent no-ops.
  EXPECT_EQ(s.Crash().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(s.Recover().ok());
  EXPECT_EQ(s.Recover().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(s.crashed());
  EXPECT_EQ(s.shared_allocator().free_frames(),
            s.shared_allocator().num_frames());
}

TEST(ServerTest, BackingOnlyWhenRequested) {
  Server with(0, MiB(1), MiB(1), 1, KiB(4), true);
  Server without(1, MiB(1), MiB(1), 1, KiB(4), false);
  EXPECT_TRUE(with.has_backing());
  EXPECT_FALSE(without.has_backing());
}

TEST(PoolDeviceTest, CapacityAndCrash) {
  PoolDevice pool(GiB(64), mem::kDefaultFrameSize, false);
  EXPECT_EQ(pool.capacity(), GiB(64));
  EXPECT_FALSE(pool.crashed());
  ASSERT_TRUE(pool.Crash().ok());
  EXPECT_TRUE(pool.crashed());
  EXPECT_EQ(pool.Crash().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pool.Recover().ok());
  EXPECT_FALSE(pool.crashed());
}

// --- Paper configurations (§4.1) ---------------------------------------------

TEST(ClusterConfigTest, PaperDeploymentsHoldTotalMemoryEqual) {
  const auto logical = ClusterConfig::PaperLogical();
  const auto physical = ClusterConfig::PaperPhysical();
  EXPECT_EQ(logical.TotalMemory(), GiB(96));
  EXPECT_EQ(physical.TotalMemory(), GiB(96));
}

TEST(ClusterConfigTest, PaperPoolSizes) {
  EXPECT_EQ(ClusterConfig::PaperLogical().TotalPooledMemory(), GiB(96));
  EXPECT_EQ(ClusterConfig::PaperPhysical().TotalPooledMemory(), GiB(64));
}

TEST(ClusterTest, BuildsLogical) {
  Cluster c(ClusterConfig::PaperLogical());
  EXPECT_EQ(c.num_servers(), 4);
  EXPECT_FALSE(c.has_pool());
  EXPECT_EQ(c.PooledCapacityBytes(), GiB(96));
  EXPECT_EQ(c.PooledFreeBytes(), GiB(96));
}

TEST(ClusterTest, BuildsPhysical) {
  Cluster c(ClusterConfig::PaperPhysical());
  EXPECT_TRUE(c.has_pool());
  EXPECT_EQ(c.pool().capacity(), GiB(64));
  EXPECT_EQ(c.PooledCapacityBytes(), GiB(64));
}

TEST(ClusterTest, CrashReducesPooledCapacity) {
  Cluster c(ClusterConfig::PaperLogical());
  ASSERT_TRUE(c.server(1).Crash().ok());
  EXPECT_EQ(c.LiveServerCount(), 3);
  EXPECT_EQ(c.PooledCapacityBytes(), GiB(72));
}

// --- Cost model (§4.2) -----------------------------------------------------------

TEST(CostModelTest, LogicalNeedsNoPoolChassis) {
  const auto cost = LogicalDeploymentCost(4, GiB(24), GiB(24));
  EXPECT_EQ(cost.inventory.pool_chassis, 0);
  EXPECT_EQ(cost.inventory.switch_ports, 4);
  EXPECT_EQ(cost.inventory.fabric_adapters, 4);
}

TEST(CostModelTest, PhysicalNeedsExtraComponents) {
  const auto cost = PhysicalDeploymentCost(4, GiB(8), GiB(64));
  EXPECT_EQ(cost.inventory.pool_chassis, 1);
  EXPECT_EQ(cost.inventory.switch_ports, 5);     // +1 pool link
  EXPECT_GT(cost.inventory.rack_units, 4);       // pool takes rack space
}

TEST(CostModelTest, EqualTotalMemoryLogicalIsCheaper) {
  // Scenario 2 of §4.2: equal total memory (96 GB each).
  const auto logical = LogicalDeploymentCost(4, GiB(24), GiB(24));
  const auto physical = PhysicalDeploymentCost(4, GiB(8), GiB(64));
  EXPECT_EQ(logical.inventory.total_memory, physical.inventory.total_memory);
  EXPECT_LT(logical.total_usd, physical.total_usd);
}

TEST(CostModelTest, EqualDisaggregatedMemoryPhysicalNeedsMoreDimms) {
  // Scenario 1 of §4.2: equal disaggregated memory (64 GB pooled each);
  // the physical deployment needs extra DIMMs for server-local memory.
  const auto logical = LogicalDeploymentCost(4, GiB(16), GiB(16));
  const auto physical = PhysicalDeploymentCost(4, GiB(8), GiB(64));
  EXPECT_EQ(logical.inventory.disaggregated_memory,
            physical.inventory.disaggregated_memory);
  EXPECT_GT(physical.inventory.dimms, logical.inventory.dimms);
  EXPECT_LT(logical.total_usd, physical.total_usd);
}

TEST(CostModelTest, MultiplePoolLinksRaiseCost) {
  const auto one = PhysicalDeploymentCost(4, GiB(8), GiB(64), 1);
  const auto four = PhysicalDeploymentCost(4, GiB(8), GiB(64), 4);
  EXPECT_GT(four.total_usd, one.total_usd);
  EXPECT_EQ(four.inventory.switch_ports, 8);
}

TEST(CostModelTest, InventoryToStringMentionsKeyFields) {
  const auto cost = PhysicalDeploymentCost(4, GiB(8), GiB(64));
  const std::string s = cost.inventory.ToString();
  EXPECT_NE(s.find("pool_chassis=1"), std::string::npos);
  EXPECT_NE(s.find("servers=4"), std::string::npos);
}

}  // namespace
}  // namespace lmp::cluster
