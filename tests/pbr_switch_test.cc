// Tests for the PBR fabric: routing-table construction, route resolution,
// hop counts, and multi-rack timing composition with the fluid simulator.
#include <gtest/gtest.h>

#include "fabric/pbr_switch.h"
#include "sim/stream.h"

namespace lmp::fabric {
namespace {

TEST(PbrFabricTest, SingleSwitchStar) {
  sim::FluidSimulator sim;
  PbrFabric fabric(&sim);
  const NodeId sw = fabric.AddSwitch("sw");
  auto a = fabric.AddEndpoint("a");
  auto b = fabric.AddEndpoint("b");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(fabric.Link(*a, sw, GBps(34.5)).ok());
  ASSERT_TRUE(fabric.Link(*b, sw, GBps(34.5)).ok());
  ASSERT_TRUE(fabric.Commit().ok());

  auto route = fabric.Route(*a, *b);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->size(), 2u);  // a->sw, sw->b
  EXPECT_EQ(*fabric.HopCount(*a, *b), 2);
  EXPECT_EQ(fabric.switch_count(), 1);
  EXPECT_EQ(fabric.endpoint_count(), 2);
}

TEST(PbrFabricTest, PbrIdsAreSequential) {
  sim::FluidSimulator sim;
  PbrFabric fabric(&sim);
  auto a = fabric.AddEndpoint("a");
  auto b = fabric.AddEndpoint("b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*fabric.PbrIdOf(*a), 0);
  EXPECT_EQ(*fabric.PbrIdOf(*b), 1);
  EXPECT_FALSE(fabric.PbrIdOf(999).ok());
}

TEST(PbrFabricTest, RouteToSelfIsEmpty) {
  sim::FluidSimulator sim;
  PbrFabric fabric(&sim);
  const NodeId sw = fabric.AddSwitch("sw");
  auto a = fabric.AddEndpoint("a");
  auto b = fabric.AddEndpoint("b");
  ASSERT_TRUE(fabric.Link(*a, sw, GBps(1)).ok());
  ASSERT_TRUE(fabric.Link(*b, sw, GBps(1)).ok());
  ASSERT_TRUE(fabric.Commit().ok());
  auto route = fabric.Route(*a, *a);
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route->empty());
}

TEST(PbrFabricTest, UnreachableEndpointFailsCommit) {
  sim::FluidSimulator sim;
  PbrFabric fabric(&sim);
  auto a = fabric.AddEndpoint("a");
  auto b = fabric.AddEndpoint("b");  // no links at all
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(fabric.Commit().ok());
}

TEST(PbrFabricTest, FrozenAfterCommit) {
  sim::FluidSimulator sim;
  PbrFabric fabric(&sim);
  const NodeId sw = fabric.AddSwitch("sw");
  auto a = fabric.AddEndpoint("a");
  auto b = fabric.AddEndpoint("b");
  ASSERT_TRUE(fabric.Link(*a, sw, GBps(1)).ok());
  ASSERT_TRUE(fabric.Link(*b, sw, GBps(1)).ok());
  ASSERT_TRUE(fabric.Commit().ok());
  EXPECT_FALSE(fabric.AddEndpoint("late").ok());
  EXPECT_FALSE(fabric.Link(*a, *b, GBps(1)).ok());
  EXPECT_FALSE(fabric.Commit().ok());  // double commit
}

TEST(PbrFabricTest, RouteBeforeCommitRejected) {
  sim::FluidSimulator sim;
  PbrFabric fabric(&sim);
  auto a = fabric.AddEndpoint("a");
  auto b = fabric.AddEndpoint("b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(fabric.Route(*a, *b).ok());
}

TEST(PbrFabricTest, DualRackCrossTrafficTakesThreeHops) {
  sim::FluidSimulator sim;
  auto topo = MakeDualRack(&sim, 2, GBps(34.5), GBps(34.5));
  // Same rack: endpoint -> leaf -> endpoint.
  EXPECT_EQ(*topo.fabric->HopCount(topo.rack0[0], topo.rack0[1]), 2);
  // Cross rack: endpoint -> leaf0 -> leaf1 -> endpoint.
  EXPECT_EQ(*topo.fabric->HopCount(topo.rack0[0], topo.rack1[0]), 3);
}

TEST(PbrFabricTest, EgressPortsDifferPerDestination) {
  sim::FluidSimulator sim;
  PbrFabric fabric(&sim);
  const NodeId sw = fabric.AddSwitch("sw");
  auto a = fabric.AddEndpoint("a");
  auto b = fabric.AddEndpoint("b");
  auto c = fabric.AddEndpoint("c");
  ASSERT_TRUE(fabric.Link(sw, *a, GBps(1)).ok());
  ASSERT_TRUE(fabric.Link(sw, *b, GBps(1)).ok());
  ASSERT_TRUE(fabric.Link(sw, *c, GBps(1)).ok());
  ASSERT_TRUE(fabric.Commit().ok());
  auto to_b = fabric.EgressPort(sw, *fabric.PbrIdOf(*b));
  auto to_c = fabric.EgressPort(sw, *fabric.PbrIdOf(*c));
  ASSERT_TRUE(to_b.ok() && to_c.ok());
  EXPECT_NE(*to_b, *to_c);
}

// Timing composition: the inter-rack trunk becomes the bottleneck when
// both rack-0 servers pull from rack 1 concurrently.
TEST(PbrFabricTest, TrunkBottleneckUnderCrossRackLoad) {
  sim::FluidSimulator sim;
  auto topo = MakeDualRack(&sim, 2, GBps(34.5), GBps(21.0));
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  for (int s = 0; s < 2; ++s) {
    auto route = topo.fabric->Route(topo.rack1[s], topo.rack0[s]);
    ASSERT_TRUE(route.ok());
    streams.push_back(std::make_unique<sim::SpanStream>(
        &sim, std::vector<sim::Span>{sim::Span{10e9, *route}}));
  }
  const auto result = sim::RunStreams(&sim, std::move(streams));
  // Two flows share the 21 GB/s trunk.
  EXPECT_NEAR(result.gbps, 21.0, 0.1);
}

TEST(PbrFabricTest, SameRackTrafficAvoidsTrunk) {
  sim::FluidSimulator sim;
  auto topo = MakeDualRack(&sim, 2, GBps(34.5), GBps(1.0));  // tiny trunk
  auto route = topo.fabric->Route(topo.rack0[0], topo.rack0[1]);
  ASSERT_TRUE(route.ok());
  std::vector<std::unique_ptr<sim::SpanStream>> streams;
  streams.push_back(std::make_unique<sim::SpanStream>(
      &sim, std::vector<sim::Span>{sim::Span{10e9, *route}}));
  const auto result = sim::RunStreams(&sim, std::move(streams));
  EXPECT_NEAR(result.gbps, 34.5, 0.1);  // full edge speed; trunk untouched
}

}  // namespace
}  // namespace lmp::fabric
