// Tests for the workloads: functional vector sum, pool KV store, graph
// analytics (BFS + PageRank, pulled and shipped).
#include <gtest/gtest.h>

#include <cstring>

#include "workloads/graph.h"
#include "workloads/kv_store.h"
#include "workloads/vector_sum.h"

namespace lmp::workloads {
namespace {

std::unique_ptr<Pool> MakePool() {
  auto pool_or = Pool::Create(PoolOptions::Small());
  EXPECT_TRUE(pool_or.ok());
  return std::move(pool_or).value();
}

// --- VectorSum ----------------------------------------------------------------

TEST(VectorSumTest, SumMatchesClosedForm) {
  auto pool = MakePool();
  auto vs = VectorSum::Create(pool.get(), 10000, 0);
  ASSERT_TRUE(vs.ok());
  ASSERT_TRUE(vs->FillLinear(0, 2.0).ok());
  auto sum = vs->SumFrom(1);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, vs->ExpectedLinearSum(2.0));
}

TEST(VectorSumTest, ShippedSumEqualsPulledSum) {
  auto pool = MakePool();
  // Large enough to span multiple servers (64 MiB per server).
  const std::uint64_t count = (MiB(80)) / sizeof(double);
  auto vs = VectorSum::Create(pool.get(), count, 0);
  ASSERT_TRUE(vs.ok());
  ASSERT_TRUE(vs->FillLinear(0).ok());
  auto pulled = vs->SumFrom(0);
  auto shipped = vs->SumShipped();
  ASSERT_TRUE(pulled.ok() && shipped.ok());
  EXPECT_DOUBLE_EQ(*pulled, *shipped);
  EXPECT_DOUBLE_EQ(*pulled, vs->ExpectedLinearSum());
}

TEST(VectorSumTest, TooLargeVectorIsOutOfMemory) {
  auto pool = MakePool();  // 4 x 64 MiB total
  auto vs = VectorSum::Create(pool.get(), GiB(1) / sizeof(double), 0);
  EXPECT_FALSE(vs.ok());
  EXPECT_TRUE(IsOutOfMemory(vs.status()));
}

TEST(VectorSumTest, ReleaseFreesCapacity) {
  auto pool = MakePool();
  const Bytes before = pool->cluster().PooledFreeBytes();
  auto vs = VectorSum::Create(pool.get(), 1000, 0);
  ASSERT_TRUE(vs.ok());
  ASSERT_TRUE(vs->Release().ok());
  EXPECT_EQ(pool->cluster().PooledFreeBytes(), before);
}

// --- PoolKvStore ------------------------------------------------------------------

std::span<const std::byte> AsBytes(const char* s) {
  return std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s), std::strlen(s));
}

std::string ToString(const PoolKvStore::Value& v) {
  const char* p = reinterpret_cast<const char*>(v.data());
  return std::string(p, strnlen(p, v.size()));
}

TEST(KvStoreTest, PutGetRoundTrip) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 100, 0);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE(kv->Put(0, 42, AsBytes("hello")).ok());
  auto got = kv->Get(1, 42);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(*got), "hello");
  EXPECT_EQ(kv->size(), 1u);
}

TEST(KvStoreTest, OverwriteReplacesValue) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 100, 0);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE(kv->Put(0, 1, AsBytes("old")).ok());
  ASSERT_TRUE(kv->Put(0, 1, AsBytes("new")).ok());
  EXPECT_EQ(ToString(*kv->Get(0, 1)), "new");
  EXPECT_EQ(kv->size(), 1u);
}

TEST(KvStoreTest, MissingKeyIsNotFound) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 100, 0);
  ASSERT_TRUE(kv.ok());
  EXPECT_TRUE(IsNotFound(kv->Get(0, 7).status()));
}

TEST(KvStoreTest, DeleteThenGetIsNotFound) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 100, 0);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE(kv->Put(0, 5, AsBytes("x")).ok());
  ASSERT_TRUE(kv->Delete(0, 5).ok());
  EXPECT_TRUE(IsNotFound(kv->Get(0, 5).status()));
  EXPECT_EQ(kv->size(), 0u);
  EXPECT_TRUE(IsNotFound(kv->Delete(0, 5)));
}

TEST(KvStoreTest, TombstonesDoNotBreakProbeChains) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 4, 0);  // 8 buckets: collisions
  ASSERT_TRUE(kv.ok());
  // Insert several keys, delete one in the middle of a chain, then verify
  // the rest remain reachable.
  for (std::uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(kv->Put(0, k, AsBytes("v")).ok());
  }
  ASSERT_TRUE(kv->Delete(0, 1).ok());
  for (std::uint64_t k : {0u, 2u, 3u}) {
    EXPECT_TRUE(kv->Get(0, k).ok()) << "key " << k;
  }
  // Reinserting reuses the tombstone.
  ASSERT_TRUE(kv->Put(0, 1, AsBytes("back")).ok());
  EXPECT_EQ(ToString(*kv->Get(0, 1)), "back");
}

TEST(KvStoreTest, ManyKeysSurviveChurn) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 512, 0);
  ASSERT_TRUE(kv.ok());
  for (std::uint64_t k = 0; k < 500; ++k) {
    const std::string v = "value-" + std::to_string(k);
    ASSERT_TRUE(kv->Put(k % 4, k, AsBytes(v.c_str())).ok());
  }
  for (std::uint64_t k = 0; k < 500; k += 3) {
    ASSERT_TRUE(kv->Delete(0, k).ok());
  }
  for (std::uint64_t k = 0; k < 500; ++k) {
    auto got = kv->Get(1, k);
    if (k % 3 == 0) {
      EXPECT_TRUE(IsNotFound(got.status()));
    } else {
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(ToString(*got), "value-" + std::to_string(k));
    }
  }
}

TEST(KvStoreTest, OversizeValueRejected) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 16, 0);
  ASSERT_TRUE(kv.ok());
  std::vector<std::byte> big(57);
  EXPECT_FALSE(kv->Put(0, 1, big).ok());
}

TEST(KvStoreTest, AccessesVisibleToMigrationPolicy) {
  auto pool = MakePool();
  auto kv = PoolKvStore::Create(pool.get(), 64, 0);
  ASSERT_TRUE(kv.ok());
  ASSERT_TRUE(kv->Put(0, 1, AsBytes("hot")).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(kv->Get(3, 1, Seconds(1)).ok());
  }
  // Server 3 dominates the table's traffic now.
  const auto seg =
      pool->manager().Describe(kv->buffer())->segments[0];
  core::AccessTracker::DominantAccessor dom;
  ASSERT_TRUE(pool->manager().access_tracker().Dominant(seg, Seconds(1),
                                                        &dom));
  EXPECT_EQ(dom.server, 3u);
}

// --- PoolGraph ---------------------------------------------------------------------

PoolGraph MakeDiamond(Pool* pool) {
  //   0 -> 1 -> 3
  //   0 -> 2 -> 3
  auto g = PoolGraph::FromEdges(pool, 4,
                                {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, 0);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(GraphTest, BfsDepths) {
  auto pool = MakePool();
  PoolGraph g = MakeDiamond(pool.get());
  auto depth = g.Bfs(0, 0);
  ASSERT_TRUE(depth.ok());
  EXPECT_EQ((*depth)[0], 0u);
  EXPECT_EQ((*depth)[1], 1u);
  EXPECT_EQ((*depth)[2], 1u);
  EXPECT_EQ((*depth)[3], 2u);
}

TEST(GraphTest, BfsUnreachableIsMax) {
  auto pool = MakePool();
  auto g = PoolGraph::FromEdges(pool.get(), 3, {{0, 1}}, 0);
  ASSERT_TRUE(g.ok());
  auto depth = g->Bfs(0, 0);
  ASSERT_TRUE(depth.ok());
  EXPECT_EQ((*depth)[2], UINT32_MAX);
}

TEST(GraphTest, InvalidInputsRejected) {
  auto pool = MakePool();
  EXPECT_FALSE(PoolGraph::FromEdges(pool.get(), 0, {}, 0).ok());
  EXPECT_FALSE(PoolGraph::FromEdges(pool.get(), 2, {{0, 5}}, 0).ok());
  auto g = PoolGraph::FromEdges(pool.get(), 2, {{0, 1}}, 0);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->Bfs(0, 7).ok());
}

TEST(GraphTest, PageRankSumsToOne) {
  auto pool = MakePool();
  PoolGraph g = MakeDiamond(pool.get());
  auto rank = g.PageRank(0, 20, 0.85, /*shipped=*/false);
  ASSERT_TRUE(rank.ok());
  double total = 0;
  for (double r : *rank) total += r;
  // Dangling-vertex mass is redistributed, so rank is conserved exactly.
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The double-funnel vertex 3 outranks the source.
  EXPECT_GT((*rank)[3], (*rank)[0]);
}

TEST(GraphTest, ShippedPageRankMatchesPulled) {
  auto pool = MakePool();
  // A larger random-ish graph spanning multiple servers.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::uint32_t n = 2000;
  for (std::uint32_t u = 0; u < n; ++u) {
    edges.push_back({u, (u * 7 + 1) % n});
    edges.push_back({u, (u * 13 + 5) % n});
  }
  auto g = PoolGraph::FromEdges(pool.get(), n, edges, 0);
  ASSERT_TRUE(g.ok());
  auto pulled = g->PageRank(0, 5, 0.85, false);
  auto shipped = g->PageRank(0, 5, 0.85, true);
  ASSERT_TRUE(pulled.ok() && shipped.ok());
  for (std::uint32_t v = 0; v < n; v += 97) {
    EXPECT_NEAR((*pulled)[v], (*shipped)[v], 1e-12) << "vertex " << v;
  }
}

TEST(GraphTest, ReleaseFreesBothBuffers) {
  auto pool = MakePool();
  const Bytes before = pool->cluster().PooledFreeBytes();
  PoolGraph g = MakeDiamond(pool.get());
  ASSERT_TRUE(g.Release().ok());
  EXPECT_EQ(pool->cluster().PooledFreeBytes(), before);
}

}  // namespace
}  // namespace lmp::workloads
