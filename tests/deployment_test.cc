// Integration tests over the timing layer: the paper's Figures 2–5 and the
// §4.3/§4.4/§4.5 headline claims, asserted as test invariants.  A
// parameterized sweep checks the cross-cutting shape properties on every
// (vector size, link) combination.
#include <gtest/gtest.h>

#include "baselines/logical.h"
#include "baselines/physical.h"

namespace lmp::baselines {
namespace {

using fabric::LinkProfile;

VectorSumResult RunSum(MemoryDeployment& deployment, Bytes bytes,
                    int reps = 10) {
  VectorSumParams params;
  params.vector_bytes = bytes;
  params.repetitions = reps;
  auto result = deployment.RunVectorSum(params);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.value_or(VectorSumResult{});
}

// --- SliceForCores ------------------------------------------------------------

TEST(SliceForCoresTest, CoversExactlyOnce) {
  const auto slices = SliceForCores(GiB(8) + 5, 14);
  ASSERT_EQ(slices.size(), 14u);
  Bytes pos = 0;
  for (const auto& s : slices) {
    EXPECT_EQ(s.offset, pos);
    pos += s.length;
  }
  EXPECT_EQ(pos, GiB(8) + 5);
}

TEST(SliceForCoresTest, SingleCoreGetsAll) {
  const auto slices = SliceForCores(1000, 1);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].length, 1000u);
}

// --- Figure 2/3: vectors that fit one LMP server's local memory ---------------

TEST(FigureTest, Fig2LogicalRunsAtLocalSpeed) {
  LogicalDeployment logical(LinkProfile::Link0());
  const auto r = RunSum(logical, GiB(8));
  EXPECT_DOUBLE_EQ(r.local_fraction, 1.0);
  EXPECT_NEAR(r.avg_bandwidth_gbps, 97.0, 0.5);
}

TEST(FigureTest, Fig3HeadlineRatioVsNoCache) {
  // §4.3: "up to 4.7x improved bandwidth compared to Physical no-cache".
  LogicalDeployment logical(LinkProfile::Link1());
  PhysicalDeployment nocache(LinkProfile::Link1(), false);
  const double ratio = RunSum(logical, GiB(24)).avg_bandwidth_gbps /
                       RunSum(nocache, GiB(24)).avg_bandwidth_gbps;
  EXPECT_NEAR(ratio, 4.7, 0.3);
}

TEST(FigureTest, Fig3HeadlineRatioVsCache) {
  // §4.3: "up to 3.4x compared to Physical cache for the 24GB vector".
  LogicalDeployment logical(LinkProfile::Link1());
  PhysicalDeployment cache(LinkProfile::Link1(), true);
  const double ratio = RunSum(logical, GiB(24)).avg_bandwidth_gbps /
                       RunSum(cache, GiB(24)).avg_bandwidth_gbps;
  EXPECT_NEAR(ratio, 3.4, 0.4);
}

TEST(FigureTest, Fig2CacheBeatsNoCacheWhenVectorFits) {
  // 8 GiB fits the 8 GiB local cache: after the fill repetition, reads are
  // local, so the caching baseline clearly wins over no-cache.
  PhysicalDeployment cache(LinkProfile::Link0(), true);
  PhysicalDeployment nocache(LinkProfile::Link0(), false);
  EXPECT_GT(RunSum(cache, GiB(8)).avg_bandwidth_gbps,
            RunSum(nocache, GiB(8)).avg_bandwidth_gbps * 1.5);
}

TEST(FigureTest, Fig2CacheFirstRepIsFillBound) {
  PhysicalDeployment cache(LinkProfile::Link0(), true);
  const auto r = RunSum(cache, GiB(8));
  EXPECT_NEAR(r.first_rep_gbps, 34.5, 1.0);   // upfront memcpy at link speed
  EXPECT_NEAR(r.steady_rep_gbps, 97.0, 1.0);  // subsequent reads local
}

// --- Figure 4: 64 GiB, partial locality -----------------------------------------

TEST(FigureTest, Fig4LocalFractionIsThreeEighths) {
  LogicalDeployment logical(LinkProfile::Link1());
  const auto r = RunSum(logical, GiB(64));
  EXPECT_DOUBLE_EQ(r.local_fraction, 0.375);  // 24/64, §4.3's "3/8"
}

TEST(FigureTest, Fig4LogicalBeatsCacheBy42PercentOnLink1) {
  // §4.3: "Logical providing 42% higher bandwidth than Physical cache on
  // Link1".
  LogicalDeployment logical(LinkProfile::Link1());
  PhysicalDeployment cache(LinkProfile::Link1(), true);
  const double ratio = RunSum(logical, GiB(64)).avg_bandwidth_gbps /
                       RunSum(cache, GiB(64)).avg_bandwidth_gbps;
  EXPECT_NEAR(ratio, 1.42, 0.08);
}

// --- Figure 5: 96 GiB feasibility ------------------------------------------------

TEST(FigureTest, Fig5PhysicalInfeasibleLogicalFeasible) {
  for (const auto& link : {LinkProfile::Link0(), LinkProfile::Link1()}) {
    LogicalDeployment logical(link);
    PhysicalDeployment cache(link, true);
    PhysicalDeployment nocache(link, false);
    EXPECT_TRUE(RunSum(logical, GiB(96)).feasible);
    const auto rc = RunSum(cache, GiB(96));
    EXPECT_FALSE(rc.feasible);
    EXPECT_FALSE(rc.infeasible_reason.empty());
    EXPECT_FALSE(RunSum(nocache, GiB(96)).feasible);
  }
}

TEST(FigureTest, Fig5LogicalUsesWholePool) {
  LogicalDeployment logical(LinkProfile::Link0());
  const auto r = RunSum(logical, GiB(96));
  EXPECT_DOUBLE_EQ(r.local_fraction, 0.25);  // 24 of 96 local
  EXPECT_GT(r.avg_bandwidth_gbps, 34.5);     // still beats pure-remote
}

// --- §4.4 near-memory computing -----------------------------------------------------

TEST(NearMemoryTest, DistributedSumRunsAtAggregateLocalSpeed) {
  LogicalDeployment logical(LinkProfile::Link1());
  VectorSumParams params;
  params.vector_bytes = GiB(96);
  params.repetitions = 3;
  auto shipped = logical.RunDistributedSum(params);
  ASSERT_TRUE(shipped.ok());
  EXPECT_DOUBLE_EQ(shipped->local_fraction, 1.0);
  // All four servers stream locally: ~4 x 97 GB/s aggregate.
  EXPECT_NEAR(shipped->avg_bandwidth_gbps, 4 * 97.0, 5.0);
}

TEST(NearMemoryTest, ShippingBeatsSingleServerPull) {
  VectorSumParams params;
  params.vector_bytes = GiB(64);
  params.repetitions = 3;
  LogicalDeployment pull(LinkProfile::Link1());
  LogicalDeployment ship(LinkProfile::Link1());
  auto pulled = pull.RunVectorSum(params);
  auto shipped = ship.RunDistributedSum(params);
  ASSERT_TRUE(pulled.ok() && shipped.ok());
  EXPECT_GT(shipped->avg_bandwidth_gbps,
            pulled->avg_bandwidth_gbps * 2);
}

// --- Parameterized shape sweep -------------------------------------------------------

struct SweepCase {
  Bytes vector_bytes;
  bool link1;
};

class ShapeSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ShapeSweepTest, LogicalNeverLosesToPhysical) {
  // §4.3: "Accessing disaggregated memory in LMPs is at least as fast as
  // accessing a physical pool in all cases."
  const auto [bytes, link1] = GetParam();
  const LinkProfile link =
      link1 ? LinkProfile::Link1() : LinkProfile::Link0();
  LogicalDeployment logical(link);
  PhysicalDeployment cache(link, true);
  PhysicalDeployment nocache(link, false);
  const auto rl = RunSum(logical, bytes, 5);
  const auto rc = RunSum(cache, bytes, 5);
  const auto rn = RunSum(nocache, bytes, 5);
  ASSERT_TRUE(rl.feasible);
  if (rc.feasible) {
    EXPECT_GE(rl.avg_bandwidth_gbps, rc.avg_bandwidth_gbps * 0.999);
  }
  if (rn.feasible) {
    EXPECT_GE(rl.avg_bandwidth_gbps, rn.avg_bandwidth_gbps * 0.999);
  }
}

TEST_P(ShapeSweepTest, NoCacheIsLinkBound) {
  const auto [bytes, link1] = GetParam();
  const LinkProfile link =
      link1 ? LinkProfile::Link1() : LinkProfile::Link0();
  PhysicalDeployment nocache(link, false);
  const auto r = RunSum(nocache, bytes, 3);
  if (!r.feasible) return;  // 96 GiB case
  EXPECT_NEAR(r.avg_bandwidth_gbps, link.bandwidth / 1e9, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ShapeSweepTest,
    ::testing::Values(SweepCase{GiB(8), false}, SweepCase{GiB(8), true},
                      SweepCase{GiB(24), false}, SweepCase{GiB(24), true},
                      SweepCase{GiB(64), false}, SweepCase{GiB(64), true},
                      SweepCase{GiB(96), false}, SweepCase{GiB(96), true}));

// --- LRU cache-policy ablation ---------------------------------------------------

TEST(CachePolicyAblationTest, LruThrashesOnOversizedSweep) {
  // With classic LRU, a 24 GiB cyclic sweep through an 8 GiB cache never
  // hits; the pinned policy retains an 8/24 hit rate.
  PhysicalDeployment pinned(LinkProfile::Link1(), true, CachePolicy::kPinned);
  PhysicalDeployment lru(LinkProfile::Link1(), true, CachePolicy::kLru);
  const auto rp = RunSum(pinned, GiB(24), 5);
  const auto rl = RunSum(lru, GiB(24), 5);
  EXPECT_GT(rp.cache_hit_rate, 0.3);
  EXPECT_LT(rl.cache_hit_rate, 0.05);
  EXPECT_GT(rp.avg_bandwidth_gbps, rl.avg_bandwidth_gbps);
}

TEST(CachePolicyAblationTest, LruStillWinsWhenVectorFits) {
  PhysicalDeployment lru(LinkProfile::Link0(), true, CachePolicy::kLru);
  PhysicalDeployment nocache(LinkProfile::Link0(), false);
  EXPECT_GT(RunSum(lru, GiB(8), 5).avg_bandwidth_gbps,
            RunSum(nocache, GiB(8), 5).avg_bandwidth_gbps * 1.5);
}

TEST(CachePolicyAblationTest, DirtyEvictionsChargeWritebackTraffic) {
  // Regression: dirty LRU evictions were counted in cache stats but never
  // charged as fabric traffic, so a write workload that thrashes the cache
  // ran exactly as fast as a read workload.  A 24 GiB sweep through the
  // 8 GiB cache evicts (almost) every page; in write mode each of those
  // evictions must flush 64 KiB back to the pool box.
  VectorSumParams write_params;
  write_params.vector_bytes = GiB(24);
  write_params.repetitions = 3;
  write_params.write = true;

  PhysicalDeployment writer(LinkProfile::Link1(), true, CachePolicy::kLru);
  auto w = writer.RunVectorSum(write_params);
  ASSERT_TRUE(w.ok()) << w.status();
  ASSERT_TRUE(w->feasible);
  EXPECT_GT(w->writeback_bytes, 0u);
  // Nearly every page beyond the cache's capacity gets written back: the
  // sweep dirties all 24 GiB and the cache retains at most 8 GiB.
  EXPECT_GE(w->writeback_bytes, GiB(24));

  PhysicalDeployment reader(LinkProfile::Link1(), true, CachePolicy::kLru);
  VectorSumParams read_params = write_params;
  read_params.write = false;
  auto r = reader.RunVectorSum(read_params);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->writeback_bytes, 0u);
  // Writebacks contend for the fabric, so the write run must be slower.
  EXPECT_GT(w->total_time_ns, r->total_time_ns);
}

}  // namespace
}  // namespace lmp::baselines
