// Tests for common/: Status, StatusOr, units, RNG, Zipf, histogram, stats,
// table printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/units.h"

namespace lmp {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = OutOfMemoryError("pool full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(s.message(), "pool full");
  EXPECT_EQ(s.ToString(), "OUT_OF_MEMORY: pool full");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(IsOutOfMemory(OutOfMemoryError("")));
  EXPECT_FALSE(IsOutOfMemory(NotFoundError("")));
  EXPECT_TRUE(IsNotFound(NotFoundError("")));
  EXPECT_TRUE(IsUnavailable(UnavailableError("")));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(0), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 5);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  LMP_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

// --- Units ------------------------------------------------------------------

TEST(UnitsTest, ByteMultiples) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(MiB(1), 1024u * 1024);
  EXPECT_EQ(GiB(96), 96ull * 1024 * 1024 * 1024);
}

TEST(UnitsTest, BandwidthConversionRoundTrips) {
  // 97 GB/s moving 97e9 bytes takes one simulated second.
  EXPECT_DOUBLE_EQ(ToGBps(97e9, Seconds(1)), 97.0);
  EXPECT_DOUBLE_EQ(ToGBps(0, Seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(ToGBps(100, 0), 0.0);
}

TEST(UnitsTest, TimeHelpers) {
  EXPECT_DOUBLE_EQ(Microseconds(1), 1000.0);
  EXPECT_DOUBLE_EQ(Milliseconds(2), 2e6);
  EXPECT_DOUBLE_EQ(Seconds(1), 1e9);
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(456);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(123);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextInRange(-2, 2));
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 hit
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(4);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBernoulli(0.3);
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.NextExponential(10.0);
  EXPECT_NEAR(sum / 20000.0, 10.0, 0.5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// --- Zipf -----------------------------------------------------------------------

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator zipf(100, 0.9, 7);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Next(), 100u);
  }
}

TEST(ZipfTest, SkewConcentratesOnSmallKeys) {
  ZipfGenerator zipf(1000, 0.99, 8);
  int head = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // With theta=0.99, the top-10 of 1000 keys should draw a large share.
  EXPECT_GT(head, kSamples / 4);
}

TEST(ZipfTest, LowThetaIsFlatter) {
  ZipfGenerator skewed(1000, 0.99, 9), flat(1000, 0.2, 9);
  auto head_share = [](ZipfGenerator& g) {
    int head = 0;
    for (int i = 0; i < 10000; ++i) {
      if (g.Next() < 10) ++head;
    }
    return head;
  };
  EXPECT_GT(head_share(skewed), head_share(flat));
}

// --- Histogram ------------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(163);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 163u);
  EXPECT_EQ(h.max(), 163u);
  EXPECT_NEAR(h.Percentile(50), 163, 5);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const auto p50 = h.Percentile(50);
  const auto p90 = h.Percentile(90);
  const auto p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(static_cast<double>(p50), 5000, 200);
  EXPECT_NEAR(static_cast<double>(p99), 9900, 300);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Record(100);
  h.Record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(HistogramTest, RecordManyCounts) {
  Histogram h;
  h.RecordMany(50, 10);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 20.0);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, SingleValueReportsItselfExactly) {
  // Within-bucket interpolation clamps to [min, max], so a lone sample is
  // reported exactly at every percentile — not smeared across its bucket.
  Histogram h;
  h.Record(163);
  for (const double p : {0.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 163u) << "p=" << p;
  }
}

TEST(HistogramTest, RepeatedLargeValueExactViaClamp) {
  // A large value lands in a wide bucket; the [min, max] clamp keeps the
  // report exact even when every sample is identical.
  Histogram h;
  h.RecordMany(1'000'000, 100);
  EXPECT_EQ(h.Percentile(50), 1'000'000u);
  EXPECT_EQ(h.p999(), 1'000'000u);
}

TEST(HistogramTest, P999TracksTheTail) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), h.max());
  EXPECT_NEAR(static_cast<double>(h.p999()), 99900, 2000);
}

TEST(HistogramTest, ValuesAboveMaxClampToMax) {
  Histogram h(1000);
  h.Record(50000);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.Percentile(100), 1000u);
}

TEST(HistogramTest, NonZeroBucketsCoverRecordedValues) {
  Histogram h;
  const std::vector<std::uint64_t> values = {1, 7, 500, 40000, 1ull << 30};
  for (const std::uint64_t v : values) h.Record(v);
  const auto buckets = h.NonZeroBuckets();
  std::uint64_t total = 0;
  std::uint64_t prev_high = 0;
  for (const auto& b : buckets) {
    EXPECT_LE(b.low, b.high);
    if (total > 0) EXPECT_GT(b.low, prev_high);  // ascending, disjoint
    prev_high = b.high;
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
  for (const std::uint64_t v : values) {
    const bool covered =
        std::any_of(buckets.begin(), buckets.end(), [v](const auto& b) {
          return b.low <= v && v <= b.high;
        });
    EXPECT_TRUE(covered) << v;
  }
}

TEST(HistogramTest, LargeValuesBounded) {
  Histogram h(1ull << 40);
  h.Record(1ull << 39);
  const double rel_err =
      std::abs(static_cast<double>(h.Percentile(100)) -
               static_cast<double>(1ull << 39)) /
      static_cast<double>(1ull << 39);
  EXPECT_LT(rel_err, 0.05);
}

// --- RunningStats -----------------------------------------------------------------

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RateMeterTest, ComputesGbps) {
  RateMeter m;
  m.Add(97e9, 0, Seconds(1));
  EXPECT_DOUBLE_EQ(m.gbps(), 97.0);
  m.Add(97e9, Seconds(1), Seconds(2));
  EXPECT_DOUBLE_EQ(m.gbps(), 97.0);
}

// --- TablePrinter --------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"A", "Long header"});
  t.AddRow({"xx", "1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| A  | Long header |"), std::string::npos);
  EXPECT_NE(s.find("| xx | 1           |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(97.0), "97.0");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"A", "B"});
  t.AddRow({"only"});
  EXPECT_NO_FATAL_FAILURE(t.ToString());
}

}  // namespace
}  // namespace lmp
