// Request-level op engine tests: state machines advance only on simulator
// completions, every hop and lock round trip costs simulated time, and the
// async B+tree driver agrees with the tree's synchronous surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "baselines/logical.h"
#include "common/metrics.h"
#include "ops/btree_ops.h"
#include "ops/op_engine.h"
#include "workloads/pool_btree.h"

namespace lmp::ops {
namespace {

using baselines::LogicalDeployment;
using workloads::PoolBtree;

cluster::ClusterConfig SmallBackedConfig() {
  cluster::ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.cores_per_server = 4;
  cfg.server_total_memory = MiB(64);
  cfg.server_shared_memory = MiB(64);
  cfg.with_backing = true;
  return cfg;
}

struct Harness {
  Harness()
      : deploy(fabric::LinkProfile::Link0(), SmallBackedConfig()),
        engine(&deploy.simulator(), &deploy.topology(), &deploy.manager(),
               MakeOptions(&metrics)) {}

  static OpEngine::Options MakeOptions(MetricsRegistry* registry) {
    OpEngine::Options opts;
    opts.metrics = registry;
    return opts;
  }

  MetricsRegistry metrics;
  LogicalDeployment deploy;
  OpEngine engine;
};

TEST(OpEngineTest, ReadOpCostsSimTimeAndRecordsLatency) {
  Harness h;
  auto buf = h.deploy.manager().Allocate(MiB(1), 0);
  ASSERT_TRUE(buf.ok());

  std::vector<OpResult> results;
  h.engine.set_on_complete(
      [&](const OpResult& r) { results.push_back(r); });
  h.engine.Submit(OpKind::kGet, /*server=*/1, /*core=*/0,
                  [&](OpEngine::Op& op) {
                    h.engine.Read(op, *buf, 0, KiB(4), [&](OpEngine::Op& o) {
                      h.engine.Finish(o);
                    });
                  });
  ASSERT_TRUE(h.engine.Drain().ok());

  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[0].hops, 1);
  EXPECT_GT(results[0].finish_time, results[0].submit_time);
  const Histogram* hist = h.metrics.FindHistogram("ops.get");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);
  EXPECT_GT(hist->p50(), 0u);
  EXPECT_EQ(h.metrics.Counter("ops.completed"), 1u);
  EXPECT_EQ(h.metrics.Counter("ops.hops"), 1u);
}

TEST(OpEngineTest, StepsNeverRunInsideSubmit) {
  Harness h;
  bool step_ran = false;
  h.engine.Submit(OpKind::kOther, 0, 0, [&](OpEngine::Op& op) {
    step_ran = true;
    h.engine.Finish(op);
  });
  EXPECT_FALSE(step_ran);  // deferred through the timer wheel
  ASSERT_TRUE(h.engine.Drain().ok());
  EXPECT_TRUE(step_ran);
}

TEST(OpEngineTest, ClosedLoopKeepsThousandsOfOpsInFlight) {
  Harness h;
  auto buf = h.deploy.manager().Allocate(MiB(4), 0);
  ASSERT_TRUE(buf.ok());

  const int kTotal = 1000;
  const int kWindow = 64;
  int submitted = 0;
  auto submit_one = [&] {
    const auto server = static_cast<cluster::ServerId>(submitted % 4);
    const Bytes offset = static_cast<Bytes>(submitted % 512) * KiB(4);
    ++submitted;
    h.engine.Submit(OpKind::kGet, server, 0, [&, offset](OpEngine::Op& op) {
      h.engine.Read(op, *buf, offset, KiB(4), [&](OpEngine::Op& o) {
        h.engine.Finish(o);
      });
    });
  };
  h.engine.set_on_complete([&](const OpResult&) {
    if (submitted < kTotal) submit_one();
  });
  for (int i = 0; i < kWindow; ++i) submit_one();
  ASSERT_TRUE(h.engine.Drain().ok());

  EXPECT_EQ(h.engine.completed(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(h.engine.failed(), 0u);
  EXPECT_EQ(h.engine.in_flight(), 0u);
  const Histogram* hist = h.metrics.FindHistogram("ops.get");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), static_cast<std::uint64_t>(kTotal));
}

TEST(OpEngineTest, UnresolvableAccessFailsTheOp) {
  Harness h;
  std::vector<OpResult> results;
  h.engine.set_on_complete(
      [&](const OpResult& r) { results.push_back(r); });
  h.engine.Submit(OpKind::kGet, 0, 0, [&](OpEngine::Op& op) {
    h.engine.Read(op, core::BufferId{9999}, 0, KiB(4),
                  [&](OpEngine::Op& o) {
                    ADD_FAILURE() << "step ran for unresolvable access";
                    h.engine.Finish(o);
                  });
  });
  ASSERT_TRUE(h.engine.Drain().ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].status.ok());
  EXPECT_EQ(h.engine.failed(), 1u);
}

// Satellite 3's engine-level counterpart: two contending writers serialize,
// and the loser's wait is visible sim time (lock_spins > 0, nonzero
// latency), not a free same-instant spin loop.
TEST(OpEngineTest, ContendingAcquiresSerializeWithMeasuredWait) {
  Harness h;
  core::CoherentRegion region(/*size=*/64, /*granularity=*/8,
                              /*num_hosts=*/4);
  core::DistributedLock lock(&region, 0);
  const SimTime hold = Microseconds(5);

  std::map<OpId, OpResult> results;
  h.engine.set_on_complete(
      [&](const OpResult& r) { results[r.id] = r; });

  auto locked_op = [&](cluster::ServerId server) {
    return h.engine.Submit(
        OpKind::kPut, server, 0, [&](OpEngine::Op& op) {
          h.engine.Acquire(op, &lock, [&](OpEngine::Op& o1) {
            h.engine.Delay(o1, hold, [&](OpEngine::Op& o2) {
              h.engine.Release(o2, &lock, [&](OpEngine::Op& o3) {
                h.engine.Finish(o3);
              });
            });
          });
        });
  };
  const OpId a = locked_op(0);
  const OpId b = locked_op(1);
  ASSERT_TRUE(h.engine.Drain().ok());

  ASSERT_TRUE(results.count(a) && results.count(b));
  EXPECT_TRUE(results[a].status.ok());
  EXPECT_TRUE(results[b].status.ok());
  // Both ops were submitted at the same instant; the winner holds for
  // `hold`, so the loser must spin and finish strictly later.
  const OpResult& first =
      results[a].finish_time < results[b].finish_time ? results[a]
                                                      : results[b];
  const OpResult& second =
      results[a].finish_time < results[b].finish_time ? results[b]
                                                      : results[a];
  EXPECT_GT(second.lock_spins, 0);
  EXPECT_GT(first.finish_time, first.submit_time);
  EXPECT_GE(second.finish_time, first.finish_time + hold);
  EXPECT_GE(h.metrics.Counter("ops.lock_spins"), 1u);
  EXPECT_FALSE(lock.IsHeld());
}

TEST(OpEngineTest, WedgedLockFailsAfterMeasuredSpins) {
  Harness h2;
  core::CoherentRegion region(64, 8, 4);
  core::DistributedLock lock(&region, 0);
  ASSERT_TRUE(*lock.TryLock(3));  // wedged peer

  OpEngine::Options opts;
  opts.metrics = &h2.metrics;
  opts.max_lock_spins = 7;
  OpEngine engine(&h2.deploy.simulator(), &h2.deploy.topology(),
                  &h2.deploy.manager(), opts);
  std::vector<OpResult> results;
  engine.set_on_complete([&](const OpResult& r) { results.push_back(r); });
  engine.Submit(OpKind::kPut, 0, 0, [&](OpEngine::Op& op) {
    engine.Acquire(op, &lock, [&](OpEngine::Op& o) {
      ADD_FAILURE() << "acquired a wedged lock";
      engine.Finish(o);
    });
  });
  ASSERT_TRUE(engine.Drain().ok());

  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(IsUnavailable(results[0].status));
  EXPECT_EQ(results[0].lock_spins, 7);
  // The timeout took max_lock_spins round trips of sim time, not zero.
  EXPECT_GE(results[0].finish_time - results[0].submit_time,
            7 * engine.lock_rtt());
}

// --- BtreeOpDriver ----------------------------------------------------------

TEST(BtreeOpsTest, AsyncGetsMatchSynchronousTree) {
  Harness h;
  auto tree_or = PoolBtree::Create(&h.deploy.manager(), 512, 0);
  ASSERT_TRUE(tree_or.ok());
  PoolBtree& tree = *tree_or;
  for (std::uint64_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(tree.Insert(0, k * 7, k * 7 + 1).ok());
  }
  ASSERT_GT(tree.height(), 1);  // splits happened: real pointer chases

  BtreeOpDriver driver(&h.engine, &tree, /*num_hosts=*/4);
  int checked = 0;
  for (std::uint64_t k = 0; k < 300; k += 17) {
    driver.SubmitGet(static_cast<cluster::ServerId>(k % 4), 0, k * 7,
                     [&, k](StatusOr<std::uint64_t> v) {
                       ASSERT_TRUE(v.ok());
                       EXPECT_EQ(*v, k * 7 + 1);
                       ++checked;
                     });
  }
  driver.SubmitGet(1, 0, 999999,
                   [&](StatusOr<std::uint64_t> v) {
                     EXPECT_TRUE(IsNotFound(v.status()));
                     ++checked;
                   });
  ASSERT_TRUE(h.engine.Drain().ok());
  EXPECT_EQ(checked, 19);

  // Every async get paid one priced hop per tree level.
  const Histogram* hist = h.metrics.FindHistogram("ops.get");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 18u);  // misses are not successes
  EXPECT_GT(hist->p50(), 0u);
  EXPECT_GE(h.metrics.Counter("ops.hops"),
            19u * static_cast<std::uint64_t>(tree.height()));
}

TEST(BtreeOpsTest, AsyncScanMatchesSynchronousScan) {
  Harness h;
  auto tree_or = PoolBtree::Create(&h.deploy.manager(), 512, 0);
  ASSERT_TRUE(tree_or.ok());
  PoolBtree& tree = *tree_or;
  for (std::uint64_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(tree.Insert(0, k * 3, k).ok());
  }
  auto expected = tree.Scan(0, 100, 50);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 50u);

  BtreeOpDriver driver(&h.engine, &tree, 4);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  driver.SubmitScan(2, 0, 100, 50,
                    [&](const auto& rows) { got = rows; });
  ASSERT_TRUE(h.engine.Drain().ok());
  EXPECT_EQ(got, *expected);
  const Histogram* hist = h.metrics.FindHistogram("ops.scan");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);
}

TEST(BtreeOpsTest, AsyncPutsVisibleToSyncLookupAndSerialized) {
  Harness h;
  auto tree_or = PoolBtree::Create(&h.deploy.manager(), 512, 0);
  ASSERT_TRUE(tree_or.ok());
  PoolBtree& tree = *tree_or;

  BtreeOpDriver::Options dopts;
  dopts.lock_stripes = 1;  // force every writer onto one lock
  BtreeOpDriver driver(&h.engine, &tree, 4, dopts);
  std::map<OpId, OpResult> results;
  h.engine.set_on_complete([&](const OpResult& r) { results[r.id] = r; });

  const OpId a = driver.SubmitPut(0, 0, 42, 1000);
  const OpId b = driver.SubmitPut(1, 0, 43, 2000);
  ASSERT_TRUE(h.engine.Drain().ok());

  ASSERT_TRUE(results[a].status.ok());
  ASSERT_TRUE(results[b].status.ok());
  auto v42 = tree.Lookup(0, 42);
  auto v43 = tree.Lookup(0, 43);
  ASSERT_TRUE(v42.ok());
  ASSERT_TRUE(v43.ok());
  EXPECT_EQ(*v42, 1000u);
  EXPECT_EQ(*v43, 2000u);
  // One writer held the single stripe while the other spun: the loser's
  // wait is measured sim time.
  EXPECT_GT(results[a].lock_spins + results[b].lock_spins, 0);
  EXPECT_NE(results[a].finish_time, results[b].finish_time);
  const Histogram* hist = h.metrics.FindHistogram("ops.put");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 2u);
}

TEST(BtreeOpsTest, GetPaysMoreHopsAsTheTreeDeepens) {
  Harness h;
  auto tree_or = PoolBtree::Create(&h.deploy.manager(), 2048, 0);
  ASSERT_TRUE(tree_or.ok());
  PoolBtree& tree = *tree_or;
  BtreeOpDriver driver(&h.engine, &tree, 4);

  ASSERT_TRUE(tree.Insert(0, 1, 1).ok());
  int shallow_hops = 0;
  h.engine.set_on_complete(
      [&](const OpResult& r) { shallow_hops = r.hops; });
  driver.SubmitGet(0, 0, 1);
  ASSERT_TRUE(h.engine.Drain().ok());
  EXPECT_EQ(shallow_hops, 1);  // root-leaf tree: one hop

  for (std::uint64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree.Insert(0, k, k).ok());
  }
  ASSERT_GE(tree.height(), 3);
  int deep_hops = 0;
  h.engine.set_on_complete([&](const OpResult& r) { deep_hops = r.hops; });
  driver.SubmitGet(0, 0, 1);
  ASSERT_TRUE(h.engine.Drain().ok());
  EXPECT_EQ(deep_hops, tree.height());
}

}  // namespace
}  // namespace lmp::ops
