// Tests for the fluid-flow simulator: max-min fairness, event ordering,
// timers, utilization accounting, and the large-simulated-time regression
// (Zeno deadlock) that once hung the Figure benches.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/units.h"
#include "sim/fluid.h"
#include "sim/stream.h"

namespace lmp::sim {
namespace {

TEST(FluidTest, SingleFlowSingleResource) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(10));
  const FlowId f = sim.StartFlow(10e9, {r});
  sim.Run();
  const FlowRecord* rec = sim.record(f);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->done);
  EXPECT_NEAR(rec->end - rec->start, Seconds(1), 1);  // 10 GB at 10 GB/s
}

TEST(FluidTest, RateLimitedByBottleneck) {
  FluidSimulator sim;
  const ResourceId fast = sim.AddResource("fast", GBps(100));
  const ResourceId slow = sim.AddResource("slow", GBps(10));
  const FlowId f = sim.StartFlow(10e9, {fast, slow});
  sim.Run();
  EXPECT_NEAR(sim.record(f)->end, Seconds(1), 1);
}

TEST(FluidTest, TwoFlowsShareFairly) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(10));
  const FlowId a = sim.StartFlow(5e9, {r});
  const FlowId b = sim.StartFlow(5e9, {r});
  sim.Run();
  // Each gets 5 GB/s; both finish at t=1s.
  EXPECT_NEAR(sim.record(a)->end, Seconds(1), 1);
  EXPECT_NEAR(sim.record(b)->end, Seconds(1), 1);
}

TEST(FluidTest, ShortFlowFinishesThenLongSpeedsUp) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(10));
  const FlowId small = sim.StartFlow(1e9, {r});
  const FlowId big = sim.StartFlow(9e9, {r});
  sim.Run();
  // Phase 1: both at 5 GB/s until small done at 0.2s (1GB/5GBps).
  EXPECT_NEAR(sim.record(small)->end, Seconds(0.2), 1e3);
  // Big: 1 GB in phase 1, then 8 GB at full 10 GB/s = 0.8s more.
  EXPECT_NEAR(sim.record(big)->end, Seconds(1.0), 1e3);
}

TEST(FluidTest, MaxMinWithHeterogeneousPaths) {
  // Flow A crosses only the big resource; flow B crosses big and small.
  // B is throttled by small; A picks up the slack on big.
  FluidSimulator sim;
  const ResourceId big = sim.AddResource("big", GBps(10));
  const ResourceId small = sim.AddResource("small", GBps(2));
  const FlowId a = sim.StartFlow(1e9, {big});
  const FlowId b = sim.StartFlow(1e9, {big, small});
  EXPECT_NEAR(sim.FlowRate(b), GBps(2), 1);   // bottlenecked at small
  EXPECT_NEAR(sim.FlowRate(a), GBps(8), 1);   // rest of big
  sim.Run();
  EXPECT_TRUE(sim.record(a)->done);
  EXPECT_TRUE(sim.record(b)->done);
}

TEST(FluidTest, FourteenCoresSaturateDram) {
  // The paper's local configuration: 14 cores, each capped at 12 GB/s,
  // share a 97 GB/s DRAM device -> aggregate is DRAM-bound at 97.
  FluidSimulator sim;
  const ResourceId dram = sim.AddResource("dram", GBps(97));
  std::vector<ResourceId> cores;
  for (int c = 0; c < 14; ++c) {
    cores.push_back(sim.AddResource("core", GBps(12)));
  }
  const double per_core_bytes = 97e9 / 14;
  for (int c = 0; c < 14; ++c) {
    sim.StartFlow(per_core_bytes, {cores[c], dram});
  }
  const double util = sim.Utilization(dram);
  EXPECT_NEAR(util, 1.0, 1e-9);
  sim.Run();
  EXPECT_NEAR(sim.now(), Seconds(1), 1e3);
}

TEST(FluidTest, ZeroByteFlowCompletesImmediately) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  bool fired = false;
  SimTime fired_at = -1;
  const FlowId f = sim.StartFlow(0, {r}, [&](FlowId, SimTime t) {
    fired = true;
    fired_at = t;
  });
  // The record is final immediately; the callback is deferred through a
  // zero-delay timer so it cannot re-enter StartFlow.
  EXPECT_TRUE(sim.record(f)->done);
  EXPECT_EQ(sim.active_flow_count(), 0u);
  EXPECT_FALSE(fired);
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(fired_at, 0);  // zero simulated delay
}

TEST(FluidTest, EmptyPathCompletesImmediately) {
  FluidSimulator sim;
  const FlowId f = sim.StartFlow(100, {});
  EXPECT_TRUE(sim.record(f)->done);
}

// Regression: the degenerate-flow callback used to fire synchronously
// inside StartFlow, so a callback that itself started flows re-entered the
// simulator mid-update (and deep chains recursed without bound).
TEST(FluidTest, DegenerateFlowCallbackDoesNotReenterStartFlow) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  bool start_flow_returned = false;
  bool fired = false;
  sim.StartFlow(0, {r}, [&](FlowId, SimTime) {
    EXPECT_TRUE(start_flow_returned);
    fired = true;
  });
  start_flow_returned = true;
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(FluidTest, DegenerateFlowChainDoesNotRecurse) {
  // 50k zero-byte flows, each started from the previous one's callback.
  // Under the old synchronous dispatch this recursed 50k frames deep.
  FluidSimulator sim;
  sim.set_record_retention(RecordRetention::kDropCompleted);
  int remaining = 50000;
  std::function<void(FlowId, SimTime)> chain = [&](FlowId, SimTime) {
    if (--remaining > 0) sim.StartFlow(0, {}, chain);
  };
  sim.StartFlow(0, {}, chain);
  sim.Run();
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(sim.record_count(), 0u);
}

// A timer scheduled exactly at a flow's completion instant fires first; the
// completion (remaining == 0) sweeps on the next step, at the same
// timestamp.  Pins the intended event ordering.
TEST(FluidTest, TimerAtCompletionInstantFiresBeforeCompletion) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  const FlowId f = sim.StartFlow(1e9, {r});  // completes at exactly 1 s
  bool timer_fired = false;
  bool flow_done_at_timer = true;
  sim.ScheduleAt(Seconds(1), [&](SimTime) {
    timer_fired = true;
    flow_done_at_timer = sim.record(f)->done;
  });
  ASSERT_TRUE(sim.Step());  // the timer wins the tie
  EXPECT_TRUE(timer_fired);
  EXPECT_FALSE(flow_done_at_timer);
  EXPECT_FALSE(sim.record(f)->done);
  EXPECT_EQ(sim.active_flow_count(), 1u);
  ASSERT_TRUE(sim.Step());  // the completion sweep, zero time later
  EXPECT_TRUE(sim.record(f)->done);
  EXPECT_DOUBLE_EQ(sim.record(f)->end, Seconds(1));
  EXPECT_EQ(sim.active_flow_count(), 0u);
}

// --- Records ----------------------------------------------------------------

TEST(FluidTest, ReleaseRecordBoundsMemory) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(10));
  const FlowId f = sim.StartFlow(1e9, {r});
  EXPECT_FALSE(sim.ReleaseRecord(f).ok());  // still active
  sim.Run();
  EXPECT_EQ(sim.record_count(), 1u);
  ASSERT_TRUE(sim.ReleaseRecord(f).ok());
  EXPECT_EQ(sim.record_count(), 0u);
  EXPECT_EQ(sim.record(f), nullptr);
  EXPECT_FALSE(sim.ReleaseRecord(f).ok());     // already gone
  EXPECT_FALSE(sim.ReleaseRecord(9999).ok());  // never existed
}

TEST(FluidTest, DropCompletedRetentionKeepsNoHistory) {
  FluidSimulator sim;
  sim.set_record_retention(RecordRetention::kDropCompleted);
  const ResourceId r = sim.AddResource("link", GBps(10));
  int completions = 0;
  for (int i = 0; i < 100; ++i) {
    sim.StartFlow(1e8, {r}, [&](FlowId, SimTime) { ++completions; });
  }
  sim.Run();
  EXPECT_EQ(completions, 100);
  EXPECT_EQ(sim.record_count(), 0u);
}

TEST(FluidTest, RunUntilFlowDoneWorksWithReleasedRecords) {
  FluidSimulator sim;
  sim.set_record_retention(RecordRetention::kDropCompleted);
  const ResourceId r = sim.AddResource("link", GBps(1));
  const FlowId fast = sim.StartFlow(0.5e9, {r});
  const FlowId slow = sim.StartFlow(10e9, {r});
  ASSERT_TRUE(sim.RunUntilFlowDone(fast).ok());
  EXPECT_EQ(sim.record(fast), nullptr);  // retired ⇒ done
  EXPECT_FALSE(sim.record(slow)->done);
  ASSERT_TRUE(sim.RunUntilFlowDone(slow).ok());
}

// --- Solver introspection ---------------------------------------------------

TEST(FluidTest, SolverTouchesOnlyTheAffectedComponent) {
  FluidSimulator sim;
  const ResourceId a = sim.AddResource("a", GBps(10));
  const ResourceId b = sim.AddResource("b", GBps(10));
  sim.StartFlow(1e12, {a});
  const SolverStats after_first = sim.solver_stats();
  EXPECT_EQ(after_first.recompute_calls, 1u);
  EXPECT_EQ(after_first.flows_touched, 1u);
  // A flow on a disjoint resource re-rates only itself.
  sim.StartFlow(1e12, {b});
  const SolverStats after_second = sim.solver_stats();
  EXPECT_EQ(after_second.recompute_calls, 2u);
  EXPECT_EQ(after_second.flows_touched - after_first.flows_touched, 1u);
  // A flow bridging both components re-rates all three.
  sim.StartFlow(1e12, {a, b});
  const SolverStats after_third = sim.solver_stats();
  EXPECT_EQ(after_third.flows_touched - after_second.flows_touched, 3u);
  EXPECT_GE(after_third.full_solves, 1u);
}

TEST(FluidTest, ExportSolverMetricsReportsDeltas) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(10));
  sim.StartFlow(1e9, {r});
  sim.Run();
  MetricsRegistry registry;
  sim.ExportSolverMetrics(registry);
  const std::uint64_t calls = registry.Counter("fluid.solver.recompute_calls");
  EXPECT_GT(calls, 0u);
  EXPECT_GT(registry.Counter("fluid.solver.flows_touched"), 0u);
  // Re-exporting without new work adds nothing (deltas, not totals).
  sim.ExportSolverMetrics(registry);
  EXPECT_EQ(registry.Counter("fluid.solver.recompute_calls"), calls);
}

TEST(FluidTest, CompletionCallbackCanChainFlows) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  int completions = 0;
  sim.StartFlow(1e9, {r}, [&](FlowId, SimTime) {
    ++completions;
    sim.StartFlow(1e9, {r}, [&](FlowId, SimTime) { ++completions; });
  });
  sim.Run();
  EXPECT_EQ(completions, 2);
  EXPECT_NEAR(sim.now(), Seconds(2), 1e3);
}

TEST(FluidTest, TimersFireInOrder) {
  FluidSimulator sim;
  sim.AddResource("unused", GBps(1));
  std::vector<int> order;
  sim.ScheduleAt(Seconds(2), [&](SimTime) { order.push_back(2); });
  sim.ScheduleAt(Seconds(1), [&](SimTime) { order.push_back(1); });
  sim.ScheduleAfter(Seconds(3), [&](SimTime) { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), Seconds(3));
}

TEST(FluidTest, TimerTiebreakIsFifo) {
  FluidSimulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Seconds(1), [&](SimTime) { order.push_back(1); });
  sim.ScheduleAt(Seconds(1), [&](SimTime) { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(FluidTest, TimerInterleavesWithFlows) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  const FlowId f = sim.StartFlow(2e9, {r});  // completes at 2s
  double flow_rate_at_timer = -1;
  sim.ScheduleAt(Seconds(1), [&](SimTime) {
    flow_rate_at_timer = sim.FlowRate(f);
  });
  sim.Run();
  EXPECT_NEAR(flow_rate_at_timer, GBps(1), 1);
  EXPECT_NEAR(sim.record(f)->end, Seconds(2), 1e3);
}

TEST(FluidTest, SetCapacityChangesRates) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(10));
  const FlowId f = sim.StartFlow(10e9, {r});
  EXPECT_NEAR(sim.FlowRate(f), GBps(10), 1);
  ASSERT_TRUE(sim.SetCapacity(r, GBps(5)).ok());
  EXPECT_NEAR(sim.FlowRate(f), GBps(5), 1);
  EXPECT_FALSE(sim.SetCapacity(999, GBps(1)).ok());
  EXPECT_FALSE(sim.SetCapacity(r, 0).ok());
}

TEST(FluidTest, BytesServedAccumulates) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  sim.StartFlow(3e9, {r});
  sim.Run();
  EXPECT_NEAR(sim.BytesServed(r), 3e9, 1);
}

TEST(FluidTest, UtilizationDropsWhenIdle) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  sim.StartFlow(1e9, {r});
  EXPECT_DOUBLE_EQ(sim.Utilization(r), 1.0);
  sim.Run();
  EXPECT_DOUBLE_EQ(sim.Utilization(r), 0.0);
}

TEST(FluidTest, SmoothedUtilizationLagsInstantaneous) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  sim.StartFlow(0.1e9, {r});  // 100 ms of full load
  EXPECT_LT(sim.SmoothedUtilization(r), 0.5);  // just started
  sim.Run();
  EXPECT_GT(sim.SmoothedUtilization(r), 0.9);  // long past the tau
}

TEST(FluidTest, RunUntilFlowDoneStopsEarly) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  const FlowId fast = sim.StartFlow(0.5e9, {r});
  const FlowId slow = sim.StartFlow(10e9, {r});
  ASSERT_TRUE(sim.RunUntilFlowDone(fast).ok());
  EXPECT_TRUE(sim.record(fast)->done);
  EXPECT_FALSE(sim.record(slow)->done);
  EXPECT_FALSE(sim.RunUntilFlowDone(9999).ok());
}

// Regression: at simulated times beyond ~2^31 ns, absolute-time rounding
// once stranded sub-epsilon residues and the loop never advanced.
TEST(FluidTest, NoZenoDeadlockAtLargeSimTimes) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(34.5));
  // Push now_ far out, then run many equal flows like the no-cache bench.
  sim.ScheduleAt(Seconds(10), [](SimTime) {});
  sim.Run();
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<FlowId> flows;
    for (int c = 0; c < 14; ++c) {
      flows.push_back(sim.StartFlow(8e9 / 14 + c, {r}));
    }
    sim.Run();
    for (FlowId f : flows) EXPECT_TRUE(sim.record(f)->done);
  }
  EXPECT_GT(sim.now(), Seconds(10));
}

// Regression: SetCapacity must fold the elapsed utilization window at the
// OLD capacity before repricing.  It used to mutate `capacity` first, so
// the smoothed-utilization EWMA charged the whole elapsed window at the
// new capacity — here that would halve a saturated reading.
TEST(FluidTest, SetCapacityFoldsUtilizationAtOldCapacity) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  sim.StartFlow(1e9, {r});  // saturates the link for a full second
  double smoothed = -1;
  sim.ScheduleAt(Microseconds(50), [&](SimTime) {
    // Five taus at 100% utilization, then double the capacity.  The window
    // [0, 50us) ran against the old capacity, so the folded EWMA must stay
    // near saturation (1 - e^-5 ~ 0.993); folding it at the doubled
    // capacity would report ~0.5.
    ASSERT_TRUE(sim.SetCapacity(r, GBps(2)).ok());
    smoothed = sim.SmoothedUtilization(r);
  });
  sim.Run();
  EXPECT_GT(smoothed, 0.95);
}

// Regression: completion events used to credit every tied flow with
// rate x dt, dropping the sub-tolerance residue the tie absorbed.  The
// clamp in AdvanceTo plus the tied-residue flush makes BytesServed exact
// per flow: 2e9 + (2e9 + 1) bytes must come out as exactly 4e9 + 1.
TEST(FluidTest, TiedCompletionsCreditExactBytes) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(8));
  // Both run at 4 GB/s; the second is one byte longer, which is within the
  // completion tolerance, so both finish in the same event.
  sim.StartFlow(2e9, {r});
  sim.StartFlow(2e9 + 1.0, {r});
  sim.Run();
  EXPECT_EQ(sim.active_flow_count(), 0u);
  EXPECT_DOUBLE_EQ(sim.BytesServed(r), 4e9 + 1.0);
}

// Batched arrivals defer the solve to EndBatch but must land in exactly
// the state the unbatched sequence produces (no simulated time passes
// inside a batch), with a single recompute instead of one per call.
TEST(FluidTest, BatchedArrivalsMatchUnbatched) {
  FluidSimulator batched, plain;
  const ResourceId rb = batched.AddResource("link", GBps(10));
  const ResourceId rp = plain.AddResource("link", GBps(10));
  batched.BeginBatch();
  EXPECT_TRUE(batched.in_batch());
  std::vector<FlowId> bf, pf;
  for (int i = 0; i < 4; ++i) {
    bf.push_back(batched.StartFlow((i + 1) * 1e9, {rb}));
    EXPECT_DOUBLE_EQ(batched.FlowRate(bf.back()), 0.0);  // not rated yet
  }
  ASSERT_TRUE(batched.SetCapacity(rb, GBps(8)).ok());
  batched.EndBatch();
  EXPECT_EQ(batched.solver_stats().recompute_calls, 1u);
  ASSERT_TRUE(plain.SetCapacity(rp, GBps(8)).ok());
  for (int i = 0; i < 4; ++i) {
    pf.push_back(plain.StartFlow((i + 1) * 1e9, {rp}));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batched.FlowRate(bf[i]), plain.FlowRate(pf[i]));  // bit-exact
  }
  batched.Run();
  plain.Run();
  EXPECT_EQ(batched.now(), plain.now());
  EXPECT_EQ(batched.BytesServed(rb), plain.BytesServed(rp));
}

// Same-instant timers are drained as one batch per Step (one heap drain
// for a whole arrival wave), still in FIFO order; a same-time timer
// scheduled from inside a callback lands in the next batch.
TEST(FluidTest, SameInstantTimersDrainInOneStep) {
  FluidSimulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Seconds(1), [&](SimTime t) {
    order.push_back(1);
    sim.ScheduleAt(t, [&](SimTime) { order.push_back(3); });
  });
  sim.ScheduleAt(Seconds(1), [&](SimTime) { order.push_back(2); });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(sim.Step());  // the nested same-instant timer fires here
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(sim.Step());
  EXPECT_DOUBLE_EQ(sim.now(), Seconds(1));
}

// --- SpanStream -------------------------------------------------------------

TEST(SpanStreamTest, ProcessesSpansSequentially) {
  FluidSimulator sim;
  const ResourceId a = sim.AddResource("a", GBps(1));
  const ResourceId b = sim.AddResource("b", GBps(2));
  SpanStream stream(&sim, {Span{1e9, {a}}, Span{1e9, {b}}});
  stream.Start();
  sim.Run();
  EXPECT_TRUE(stream.done());
  // 1 s on a, then 0.5 s on b.
  EXPECT_NEAR(stream.end_time() - stream.start_time(), Seconds(1.5), 1e3);
  EXPECT_DOUBLE_EQ(stream.total_bytes(), 2e9);
}

TEST(SpanStreamTest, EmptyStreamCompletesInstantly) {
  FluidSimulator sim;
  SpanStream stream(&sim, {});
  stream.Start();
  EXPECT_TRUE(stream.done());
}

TEST(SpanStreamTest, RunStreamsReportsAggregateBandwidth) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(10));
  std::vector<std::unique_ptr<SpanStream>> streams;
  for (int i = 0; i < 2; ++i) {
    streams.push_back(std::make_unique<SpanStream>(
        &sim, std::vector<Span>{Span{5e9, {r}}}));
  }
  const ParallelRunResult res = RunStreams(&sim, std::move(streams));
  EXPECT_NEAR(res.gbps, 10.0, 0.01);  // 10 GB in 1 s
  EXPECT_DOUBLE_EQ(res.bytes, 10e9);
}

TEST(SpanStreamTest, UnequalStreamsMakespanIsSlowest) {
  FluidSimulator sim;
  const ResourceId fast = sim.AddResource("fast", GBps(10));
  const ResourceId slow = sim.AddResource("slow", GBps(1));
  std::vector<std::unique_ptr<SpanStream>> streams;
  streams.push_back(std::make_unique<SpanStream>(
      &sim, std::vector<Span>{Span{1e9, {fast}}}));
  streams.push_back(std::make_unique<SpanStream>(
      &sim, std::vector<Span>{Span{1e9, {slow}}}));
  const ParallelRunResult res = RunStreams(&sim, std::move(streams));
  EXPECT_NEAR(res.end - res.start, Seconds(1), 1e3);  // slow stream
  EXPECT_NEAR(res.gbps, 2.0, 0.01);
}

TEST(SpanStreamTest, CompletionCallbackIsDeferredForEmptyChain) {
  FluidSimulator sim;
  SpanStream stream(&sim, {});
  int fired = 0;
  stream.set_on_complete([&](SpanStream& s) {
    EXPECT_TRUE(s.done());
    ++fired;
  });
  stream.Start();
  // The empty chain is done synchronously, but the callback must arrive
  // from the timer wheel, never from inside Start().
  EXPECT_TRUE(stream.done());
  EXPECT_EQ(fired, 0);
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SpanStreamTest, ZeroByteSpanChainCompletesWithoutRecursion) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  // A long chain of zero-byte spans: every span completes instantly, so a
  // synchronous StartNext loop would recurse chain-deep.  Deferred flow
  // callbacks make it iterative; this overflows the stack if that breaks.
  std::vector<Span> spans(20000, Span{0.0, {r}});
  SpanStream stream(&sim, std::move(spans));
  int fired = 0;
  stream.set_on_complete([&](SpanStream&) { ++fired; });
  stream.Start();
  sim.Run();
  EXPECT_TRUE(stream.done());
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);  // zero bytes cost zero sim time
  EXPECT_DOUBLE_EQ(stream.total_bytes(), 0.0);
}

TEST(SpanStreamTest, SingleAndZeroByteMixedChainFiresCallbackOnce) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  SpanStream stream(&sim, {Span{0.0, {r}}, Span{1e9, {r}}, Span{0.0, {r}}});
  int fired = 0;
  stream.set_on_complete([&](SpanStream& s) {
    ++fired;
    EXPECT_NEAR(s.end_time() - s.start_time(), Seconds(1), 1e3);
  });
  stream.Start();
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SpanStreamTest, CallbackSetAfterCompletionStillFiresDeferred) {
  FluidSimulator sim;
  SpanStream stream(&sim, {});
  stream.Start();
  EXPECT_TRUE(stream.done());
  int fired = 0;
  stream.set_on_complete([&](SpanStream&) { ++fired; });
  EXPECT_EQ(fired, 0);  // still deferred, even though already done
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SpanStreamTest, CompletionCallbackMayDestroyTheStream) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(1));
  auto stream = std::make_unique<SpanStream>(
      &sim, std::vector<Span>{Span{1e6, {r}}});
  bool fired = false;
  stream->set_on_complete([&](SpanStream&) {
    stream.reset();  // the callback owns the stream's lifetime
    fired = true;
  });
  stream->Start();
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(stream, nullptr);
}

TEST(SpanStreamTest, ReleasesRecordsAndReportsSolverWork) {
  FluidSimulator sim;
  const ResourceId r = sim.AddResource("link", GBps(10));
  std::vector<std::unique_ptr<SpanStream>> streams;
  for (int i = 0; i < 4; ++i) {
    streams.push_back(std::make_unique<SpanStream>(
        &sim, std::vector<Span>{Span{1e9, {r}}, Span{1e9, {r}}}));
  }
  const ParallelRunResult res = RunStreams(&sim, std::move(streams));
  EXPECT_EQ(sim.record_count(), 0u);  // every span record retired
  EXPECT_GT(res.solver.recompute_calls, 0u);
  EXPECT_GT(res.solver.flows_touched, 0u);
}

}  // namespace
}  // namespace lmp::sim
