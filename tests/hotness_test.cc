// Tests for AccessTracker: decay semantics, dominance, and forgetting.
#include <gtest/gtest.h>

#include "core/hotness.h"

namespace lmp::core {
namespace {

TEST(AccessTrackerTest, RecordsBytesPerServer) {
  AccessTracker tracker;
  tracker.RecordAccess(1, 0, 1000, 0);
  tracker.RecordAccess(1, 1, 500, 0);
  EXPECT_DOUBLE_EQ(tracker.AccessedBytes(1, 0, 0), 1000);
  EXPECT_DOUBLE_EQ(tracker.AccessedBytes(1, 1, 0), 500);
  EXPECT_DOUBLE_EQ(tracker.TotalBytes(1, 0), 1500);
}

TEST(AccessTrackerTest, UnknownSegmentIsZero) {
  AccessTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.AccessedBytes(9, 0, 0), 0);
  EXPECT_DOUBLE_EQ(tracker.TotalBytes(9, 0), 0);
  AccessTracker::DominantAccessor dom;
  EXPECT_FALSE(tracker.Dominant(9, 0, &dom));
}

TEST(AccessTrackerTest, DecayHalvesAtHalfLife) {
  AccessTracker tracker(Milliseconds(100));
  tracker.RecordAccess(1, 0, 1000, 0);
  EXPECT_NEAR(tracker.AccessedBytes(1, 0, Milliseconds(100)), 500, 1);
  EXPECT_NEAR(tracker.AccessedBytes(1, 0, Milliseconds(200)), 250, 1);
}

TEST(AccessTrackerTest, AccumulationAppliesDecayFirst) {
  AccessTracker tracker(Milliseconds(100));
  tracker.RecordAccess(1, 0, 1000, 0);
  tracker.RecordAccess(1, 0, 1000, Milliseconds(100));
  EXPECT_NEAR(tracker.AccessedBytes(1, 0, Milliseconds(100)), 1500, 1);
}

TEST(AccessTrackerTest, DominantFindsHeaviestAccessor) {
  AccessTracker tracker;
  tracker.RecordAccess(5, 0, 100, 0);
  tracker.RecordAccess(5, 2, 700, 0);
  tracker.RecordAccess(5, 3, 200, 0);
  AccessTracker::DominantAccessor dom;
  ASSERT_TRUE(tracker.Dominant(5, 0, &dom));
  EXPECT_EQ(dom.server, 2u);
  EXPECT_NEAR(dom.share, 0.7, 1e-9);
  EXPECT_NEAR(dom.bytes, 700, 1e-9);
}

TEST(AccessTrackerTest, DominanceShiftsAsOldTrafficDecays) {
  AccessTracker tracker(Milliseconds(10));
  tracker.RecordAccess(1, 0, 1000, 0);  // old traffic from server 0
  tracker.RecordAccess(1, 1, 600, Milliseconds(50));  // recent, server 1
  AccessTracker::DominantAccessor dom;
  ASSERT_TRUE(tracker.Dominant(1, Milliseconds(50), &dom));
  EXPECT_EQ(dom.server, 1u);  // 1000 decayed through 5 half-lives ~ 31
}

TEST(AccessTrackerTest, ForgetDropsSegment) {
  AccessTracker tracker;
  tracker.RecordAccess(1, 0, 100, 0);
  tracker.Forget(1);
  EXPECT_DOUBLE_EQ(tracker.TotalBytes(1, 0), 0);
  EXPECT_EQ(tracker.tracked_segments(), 0u);
}

TEST(AccessTrackerTest, ClearDropsEverything) {
  AccessTracker tracker;
  tracker.RecordAccess(1, 0, 100, 0);
  tracker.RecordAccess(2, 0, 100, 0);
  tracker.Clear();
  EXPECT_EQ(tracker.tracked_segments(), 0u);
}

}  // namespace
}  // namespace lmp::core
