// Tests for the access-bit sampler (§5) and its fidelity vs exact counters.
#include <gtest/gtest.h>

#include "core/access_bits.h"
#include "core/hotness.h"

namespace lmp::core {
namespace {

TEST(AccessBitsTest, ScanReportsTouchedPages) {
  AccessBitSampler sampler(KiB(4));
  sampler.OnAccess(1, 0, 0, KiB(8));        // pages 0,1
  sampler.OnAccess(1, 0, KiB(16), 100);     // page 4
  auto entries = sampler.ScanAndClear();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].segment, 1u);
  EXPECT_EQ(entries[0].touched_pages, 3u);
}

TEST(AccessBitsTest, BitsAreStickyWithinInterval) {
  AccessBitSampler sampler(KiB(4));
  // 100 accesses to the same page count once — the access-bit lossiness.
  for (int i = 0; i < 100; ++i) sampler.OnAccess(1, 0, 0, 64);
  auto entries = sampler.ScanAndClear();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].touched_pages, 1u);
}

TEST(AccessBitsTest, ScanClearsBits) {
  AccessBitSampler sampler(KiB(4));
  sampler.OnAccess(1, 0, 0, KiB(4));
  (void)sampler.ScanAndClear();
  auto entries = sampler.ScanAndClear();  // nothing new touched
  EXPECT_TRUE(entries.empty());
  EXPECT_EQ(sampler.scans(), 2u);
}

TEST(AccessBitsTest, EstimatedBytesFromLastScan) {
  AccessBitSampler sampler(KiB(4));
  sampler.OnAccess(7, 2, 0, KiB(12));
  (void)sampler.ScanAndClear();
  EXPECT_DOUBLE_EQ(sampler.EstimatedBytes(7, 2), double(KiB(12)));
  EXPECT_DOUBLE_EQ(sampler.EstimatedBytes(7, 3), 0);
}

TEST(AccessBitsTest, DominantAccessorByPageFootprint) {
  AccessBitSampler sampler(KiB(4));
  sampler.OnAccess(5, 0, 0, KiB(4));    // 1 page
  sampler.OnAccess(5, 1, 0, KiB(16));   // 4 pages
  (void)sampler.ScanAndClear();
  AccessBitSampler::Dominant dom;
  ASSERT_TRUE(sampler.DominantAccessor(5, &dom));
  EXPECT_EQ(dom.server, 1u);
  EXPECT_NEAR(dom.share, 0.8, 1e-9);
}

TEST(AccessBitsTest, NoTrafficNoDominant) {
  AccessBitSampler sampler(KiB(4));
  AccessBitSampler::Dominant dom;
  EXPECT_FALSE(sampler.DominantAccessor(1, &dom));
}

// Fidelity comparison: for a FOOTPRINT-dominated pattern both mechanisms
// agree on the dominant accessor; for an INTENSITY-dominated pattern
// (small hot region hammered), access bits underestimate — the trade §5
// leaves implicit.
TEST(AccessBitsTest, AgreesWithCountersOnFootprint) {
  AccessBitSampler sampler(KiB(4));
  AccessTracker tracker;
  sampler.OnAccess(1, 0, 0, KiB(64));
  tracker.RecordAccess(1, 0, double(KiB(64)), 0);
  sampler.OnAccess(1, 1, 0, KiB(8));
  tracker.RecordAccess(1, 1, double(KiB(8)), 0);
  (void)sampler.ScanAndClear();

  AccessBitSampler::Dominant bits_dom;
  AccessTracker::DominantAccessor exact_dom;
  ASSERT_TRUE(sampler.DominantAccessor(1, &bits_dom));
  ASSERT_TRUE(tracker.Dominant(1, 0, &exact_dom));
  EXPECT_EQ(bits_dom.server, exact_dom.server);
}

TEST(AccessBitsTest, UnderestimatesIntensity) {
  AccessBitSampler sampler(KiB(4));
  AccessTracker tracker;
  // Server 0 hammers one page 4000x (256 KiB of traffic on one page);
  // server 1 sweeps 16 pages once (64 KiB).
  for (int i = 0; i < 4000; ++i) {
    sampler.OnAccess(1, 0, 0, 64);
    tracker.RecordAccess(1, 0, 64, 0);
  }
  sampler.OnAccess(1, 1, 0, KiB(64));
  tracker.RecordAccess(1, 1, double(KiB(64)), 0);
  (void)sampler.ScanAndClear();

  AccessBitSampler::Dominant bits_dom;
  AccessTracker::DominantAccessor exact_dom;
  ASSERT_TRUE(sampler.DominantAccessor(1, &bits_dom));
  ASSERT_TRUE(tracker.Dominant(1, 0, &exact_dom));
  // Exact counters pick the heavy hammerer (server 0); access bits see
  // only 1 touched page vs 16 and flip to server 1.
  EXPECT_EQ(exact_dom.server, 0u);
  EXPECT_EQ(bits_dom.server, 1u);
}

}  // namespace
}  // namespace lmp::core
