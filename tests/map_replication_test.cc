// Tests for the replicated coarse map (translation step 1, distributed).
#include <gtest/gtest.h>

#include "core/map_replication.h"

namespace lmp::core {
namespace {

SegmentInfo Seg(SegmentId id, cluster::ServerId home) {
  SegmentInfo info;
  info.id = id;
  info.size = MiB(1);
  info.home = Location::OnServer(home);
  return info;
}

TEST(MapReplicationTest, ReplicaConvergesAfterSync) {
  MapAuthority authority;
  MapReplica replica(&authority);
  ASSERT_TRUE(authority.Insert(Seg(1, 0)).ok());
  ASSERT_TRUE(authority.Insert(Seg(2, 1)).ok());

  EXPECT_FALSE(replica.IsCurrent());
  EXPECT_TRUE(IsNotFound(replica.Lookup(1).status()));  // stale: unseen

  auto applied = replica.Sync();
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 2);
  EXPECT_TRUE(replica.IsCurrent());
  EXPECT_EQ(replica.Lookup(1)->server, 0u);
  EXPECT_EQ(replica.Lookup(2)->server, 1u);
}

TEST(MapReplicationTest, RehomePropagatesWithGeneration) {
  MapAuthority authority;
  MapReplica replica(&authority);
  ASSERT_TRUE(authority.Insert(Seg(1, 0)).ok());
  ASSERT_TRUE(replica.Sync().ok());

  ASSERT_TRUE(authority.Rehome(1, Location::OnServer(3)).ok());
  // Stale until sync: the replica still answers the OLD home.
  EXPECT_EQ(replica.Lookup(1)->server, 0u);
  ASSERT_TRUE(replica.Sync().ok());
  EXPECT_EQ(replica.Lookup(1)->server, 3u);
  EXPECT_EQ(replica.Find(1)->generation,
            authority.map().Find(1)->generation);
}

TEST(MapReplicationTest, ValidateDetectsStaleness) {
  MapAuthority authority;
  MapReplica replica(&authority);
  ASSERT_TRUE(authority.Insert(Seg(1, 0)).ok());
  ASSERT_TRUE(replica.Sync().ok());
  const std::uint64_t gen = replica.Find(1)->generation;

  EXPECT_TRUE(replica.Validate(1, gen));
  ASSERT_TRUE(authority.Rehome(1, Location::OnServer(2)).ok());
  EXPECT_FALSE(replica.Validate(1, gen));  // the failed-access signal
  EXPECT_EQ(replica.stale_lookups(), 1u);
  // Recovery protocol: sync and retry.
  ASSERT_TRUE(replica.Sync().ok());
  EXPECT_TRUE(replica.Validate(1, replica.Find(1)->generation));
}

TEST(MapReplicationTest, RemovePropagates) {
  MapAuthority authority;
  MapReplica replica(&authority);
  ASSERT_TRUE(authority.Insert(Seg(1, 0)).ok());
  ASSERT_TRUE(replica.Sync().ok());
  ASSERT_TRUE(authority.Remove(1).ok());
  ASSERT_TRUE(replica.Sync().ok());
  EXPECT_TRUE(IsNotFound(replica.Lookup(1).status()));
}

TEST(MapReplicationTest, MultipleReplicasIndependentCursors) {
  MapAuthority authority;
  MapReplica fast(&authority), slow(&authority);
  ASSERT_TRUE(authority.Insert(Seg(1, 0)).ok());
  ASSERT_TRUE(fast.Sync().ok());
  ASSERT_TRUE(authority.Insert(Seg(2, 1)).ok());
  ASSERT_TRUE(fast.Sync().ok());

  EXPECT_TRUE(fast.IsCurrent());
  EXPECT_FALSE(slow.IsCurrent());
  auto applied = slow.Sync();
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 2);  // both deltas in one pull
  EXPECT_TRUE(slow.IsCurrent());
}

TEST(MapReplicationTest, SyncCostIsPerDeltaNotPerSegment) {
  MapAuthority authority;
  for (SegmentId s = 0; s < 1000; ++s) {
    ASSERT_TRUE(authority.Insert(Seg(s, s % 4)).ok());
  }
  MapReplica replica(&authority);
  ASSERT_TRUE(replica.Sync().ok());
  // After the bootstrap, a single migration costs one delta's bytes —
  // the whole point vs re-shipping the map (or per-access remote lookups).
  ASSERT_TRUE(authority.Rehome(7, Location::OnServer(3)).ok());
  EXPECT_EQ(authority.SyncCost(replica.applied_sequence()),
            MapDelta::kWireBytes);
  EXPECT_EQ(authority.SyncCost(authority.log_head()), 0u);
}

TEST(MapReplicationTest, IdempotentSyncAppliesNothingNew) {
  MapAuthority authority;
  MapReplica replica(&authority);
  ASSERT_TRUE(authority.Insert(Seg(1, 0)).ok());
  ASSERT_TRUE(replica.Sync().ok());
  auto applied = replica.Sync();
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 0);
}

TEST(MapReplicationTest, InterleavedChurnConverges) {
  MapAuthority authority;
  MapReplica replica(&authority);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(
        authority.Insert(Seg(static_cast<SegmentId>(round), round % 4))
            .ok());
    if (round % 3 == 0) {
      ASSERT_TRUE(
          authority
              .Rehome(static_cast<SegmentId>(round),
                      Location::OnServer((round + 1) % 4))
              .ok());
    }
    if (round % 4 == 3) {
      ASSERT_TRUE(
          authority.Remove(static_cast<SegmentId>(round - 1)).ok());
    }
    ASSERT_TRUE(replica.Sync().ok());
    // Replica matches authority exactly after each sync.
    authority.map().ForEach([&](const SegmentInfo& truth) {
      const SegmentInfo* mine = replica.Find(truth.id);
      ASSERT_NE(mine, nullptr);
      EXPECT_EQ(mine->home, truth.home);
      EXPECT_EQ(mine->generation, truth.generation);
    });
  }
}

}  // namespace
}  // namespace lmp::core
