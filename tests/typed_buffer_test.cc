// Tests for TypedBuffer<T> / RemoteRef<T> — the typed application API,
// including migration stability of element handles.
#include <gtest/gtest.h>

#include "core/typed_buffer.h"

namespace lmp {
namespace {

std::unique_ptr<Pool> MakePool() {
  auto pool = Pool::Create(PoolOptions::Small());
  EXPECT_TRUE(pool.ok());
  return std::move(pool).value();
}

TEST(TypedBufferTest, ElementRoundTrip) {
  auto pool = MakePool();
  auto buf = TypedBuffer<double>::Create(pool.get(), 1000, 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(buf->Set(0, 42, 3.25).ok());
  auto v = buf->At(1, 42);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 3.25);
  EXPECT_EQ(buf->size(), 1000u);
}

TEST(TypedBufferTest, RangeRoundTrip) {
  auto pool = MakePool();
  auto buf = TypedBuffer<std::uint32_t>::Create(pool.get(), 4096, 1);
  ASSERT_TRUE(buf.ok());
  std::vector<std::uint32_t> in(256);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint32_t>(i * 3);
  }
  ASSERT_TRUE(buf->WriteRange(1, 100, std::span<const std::uint32_t>(in))
                  .ok());
  std::vector<std::uint32_t> out(256);
  ASSERT_TRUE(buf->ReadRange(2, 100, std::span<std::uint32_t>(out)).ok());
  EXPECT_EQ(in, out);
}

TEST(TypedBufferTest, BoundsChecked) {
  auto pool = MakePool();
  auto buf = TypedBuffer<int>::Create(pool.get(), 10, 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_FALSE(buf->At(0, 10).ok());
  EXPECT_FALSE(buf->Set(0, 99, 1).ok());
  std::vector<int> v(5);
  EXPECT_FALSE(buf->ReadRange(0, 8, std::span<int>(v)).ok());
}

TEST(TypedBufferTest, InvalidInputsRejected) {
  auto pool = MakePool();
  EXPECT_FALSE(TypedBuffer<int>::Create(nullptr, 10).ok());
  EXPECT_FALSE(TypedBuffer<int>::Create(pool.get(), 0).ok());
  TypedBuffer<int> empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.At(0, 0).ok());
}

TEST(TypedBufferTest, StructElements) {
  struct Point {
    double x, y;
  };
  auto pool = MakePool();
  auto buf = TypedBuffer<Point>::Create(pool.get(), 100, 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(buf->Set(0, 7, Point{1.5, -2.5}).ok());
  auto p = buf->At(3, 7);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->x, 1.5);
  EXPECT_DOUBLE_EQ(p->y, -2.5);
}

TEST(TypedBufferTest, RefSurvivesMigration) {
  auto pool = MakePool();
  auto buf = TypedBuffer<std::uint64_t>::Create(pool.get(), 1024, 0);
  ASSERT_TRUE(buf.ok());
  RemoteRef<std::uint64_t> ref = buf->Ref(512);
  ASSERT_TRUE(ref.Store(0, 0xFEEDFACE).ok());

  // Migrate the backing segment to another server.
  const auto seg = pool->manager().Describe(buf->id())->segments[0];
  ASSERT_TRUE(pool->manager().MigrateSegment(seg, 3).ok());
  auto frac = buf->LocalFraction(3);
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(*frac, 1.0);

  // The handle still resolves — the §5 address-stability property.
  auto v = ref.Load(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xFEEDFACEu);
}

TEST(TypedBufferTest, ReleaseFreesAndInvalidates) {
  auto pool = MakePool();
  const Bytes before = pool->cluster().PooledFreeBytes();
  auto buf = TypedBuffer<int>::Create(pool.get(), 1000, 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(buf->Release().ok());
  EXPECT_EQ(pool->cluster().PooledFreeBytes(), before);
  EXPECT_FALSE(buf->valid());
  EXPECT_FALSE(buf->Release().ok());
}

TEST(TypedBufferTest, NullRefRejects) {
  RemoteRef<int> ref;
  EXPECT_FALSE(ref.Load(0).ok());
  EXPECT_FALSE(ref.Store(0, 1).ok());
}

}  // namespace
}  // namespace lmp
