// Chaos × hierarchical control plane: a whole rack fails mid-run, the
// fault listener forces an out-of-band spine round, replica promotion
// re-homes the protected working set onto the surviving rack, and the
// survivor's rack-local loop migrates it next to its new consumer — the
// tenant's local-fraction SLO is fully attained after a short grace
// window.  Replayed (and with 8 worker threads) the scenario produces
// byte-identical metrics, trace, and SLO-ledger JSON.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/trace.h"
#include "core/pool_manager.h"
#include "core/replication.h"
#include "ctrl/demand_estimator.h"
#include "ctrl/hier/hier_controller.h"
#include "ctrl/slo_ledger.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::ctrl::hier {
namespace {

constexpr int kPerRack = 3;
constexpr int kServers = 2 * kPerRack;
constexpr SimTime kFail = Milliseconds(60);   // rack 0 dies here
constexpr SimTime kGrace = Milliseconds(50);  // settle before SLO scoring
constexpr SimTime kEnd = Milliseconds(160);
constexpr Bytes kBufferBytes = MiB(2);

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config;
  config.num_servers = kServers;
  config.server_total_memory = MiB(32);
  config.server_shared_memory = MiB(32);
  config.frame_size = KiB(64);
  config.with_backing = true;
  return config;
}

struct RunResult {
  std::string trace_json;
  std::string metrics_json;
  std::string slo_json;
  HierStats stats;
  SloAttainment tenant_slo;
  bool rack0_alive = true;
  int hot_segments_total = 0;
  int hot_segments_in_rack1 = 0;
};

// Rack 0 hosts the tenant: four replicated MiB(2) hot buffers on server 0,
// consumed locally until the whole rack fails at kFail, when the consumer
// resumes from rack 1's server 4.  Ballast on servers 1 and 2 keeps them
// strictly less free than rack 1's servers, so the most-free replica
// placement puts every copy across the spine — the failure is survivable
// by construction, and the test asserts the control plane actually
// delivers on that: an out-of-band spine round fires, the promoted
// primaries migrate next to server 4, and the tenant's local-fraction SLO
// (floor 0.6) is met on every post-grace sample.
RunResult RunRackFailScenario(int threads) {
  sim::FluidSimulator sim;
  MetricsRegistry metrics;
  sim.set_metrics(&metrics);
  sim.set_threads(threads);
  trace::TraceCollector collector;
  collector.set_clock([&sim] { return sim.now(); });
  sim.set_trace(&collector);
  auto topo = fabric::Topology::MakeLogical(&sim, kServers,
                                            fabric::LinkProfile::Link1());
  topo.AssignRackShards(kPerRack);
  topo.ProvisionSpine(topo.link().bandwidth / 4);
  cluster::Cluster cluster(Config());
  core::PoolManager manager(&cluster);
  manager.access_tracker().set_half_life(Milliseconds(20));
  manager.set_metrics(&metrics);
  manager.set_trace(&collector);

  // Ballast first: replica placement is most-free-first, and rack 1 must
  // stay strictly freer than servers 1 and 2 through all eight placements
  // or a copy lands inside the failure domain it exists to escape.
  EXPECT_TRUE(manager.Allocate(MiB(8), 1).ok());
  EXPECT_TRUE(manager.Allocate(MiB(8), 2).ok());

  std::vector<core::BufferId> buffers;
  for (int i = 0; i < 4; ++i) {
    auto buf = manager.Allocate(kBufferBytes, 0);
    EXPECT_TRUE(buf.ok());
    buffers.push_back(*buf);
  }
  core::ReplicationManager replication(&manager, /*replication_factor=*/2);
  for (const core::BufferId buf : buffers) {
    EXPECT_TRUE(replication.ProtectBuffer(buf).ok());
  }

  chaos::FaultInjector injector(chaos::FaultInjector::Bindings{
      .sim = &sim, .topology = &topo, .manager = &manager});
  injector.set_trace(&collector);
  injector.set_metrics(&metrics);
  chaos::FaultPlan plan;
  plan.RackFailAt(kFail, {0, 1, 2});
  EXPECT_TRUE(injector.SchedulePlan(plan).ok());

  HierConfig hc;
  hc.period = Milliseconds(2);
  hc.horizon = kEnd;
  hc.global_every = 2;
  hc.rack.min_step = MiB(1);
  hc.rack.cooldown = Milliseconds(4);
  hc.rack.estimator.time_constant = Milliseconds(5);
  auto hier = std::make_unique<HierController>(
      HierController::Bindings{.sim = &sim,
                               .manager = &manager,
                               .topology = &topo,
                               .injector = &injector},
      hc);
  hier->set_metrics(&metrics);
  hier->set_trace(&collector);

  SloLedger ledger;
  SloTargets targets;
  targets.local_fraction_floor = 0.6;
  ledger.Register("tenant-a", targets);
  hier->set_slo_ledger(&ledger);
  hier->Start();

  // The tenant's locality experience is its consumer's: score server 4's
  // own traffic once the post-failure grace window has elapsed.
  DemandEstimator meter(&manager);
  for (SimTime t = 0; t < kEnd; t += Milliseconds(1)) {
    sim.ScheduleAt(t, [&](SimTime now) {
      const cluster::ServerId accessor = now < kFail ? 0 : 4;
      for (const core::BufferId buf : buffers) {
        auto spans = manager.Spans(buf, 0, kBufferBytes);
        if (!spans.ok()) continue;  // mid-failover: skip this tick
        for (const core::LocatedSpan& span : *spans) {
          manager.access_tracker().RecordAccess(
              span.segment, accessor, static_cast<double>(span.bytes), now);
        }
      }
      if (now >= kFail + kGrace) {
        ledger.RecordLocalFraction("tenant-a",
                                   meter.ObservedLocalFraction(now, 4));
      }
    });
  }
  sim.Run();

  RunResult run;
  run.stats = hier->stats();
  run.rack0_alive = hier->rack(0).Summary(kEnd).alive;
  for (const core::BufferId buf : buffers) {
    // Copy the id list: range-for over the temporary StatusOr's member
    // would dangle in C++20.
    const std::vector<core::SegmentId> segs = manager.Describe(buf)->segments;
    for (const core::SegmentId seg : segs) {
      ++run.hot_segments_total;
      if (manager.segment_map().Find(seg)->home.server >=
          static_cast<cluster::ServerId>(kPerRack)) {
        ++run.hot_segments_in_rack1;
      }
    }
  }
  if (const SloAttainment* a = ledger.Find("tenant-a"); a != nullptr) {
    run.tenant_slo = *a;
  }
  run.trace_json = collector.ToChromeJson();
  run.metrics_json = trace::MetricsJson(metrics);
  run.slo_json = ledger.Json();
  return run;
}

TEST(HierChaosTest, RackFailureForcesSpineResolveAndRestoresSlo) {
  const RunResult run = RunRackFailScenario(1);
  // The rack-fail event reached the listener: at least one out-of-band
  // spine round ran on top of the periodic cadence.
  EXPECT_GE(run.stats.oob_resolves, 1u);
  EXPECT_GT(run.stats.epochs, run.stats.oob_resolves);
  EXPECT_FALSE(run.rack0_alive);
  // Replica promotion saved the whole protected set — every hot segment
  // is homed on the surviving rack.
  EXPECT_GT(run.hot_segments_total, 0);
  EXPECT_EQ(run.hot_segments_in_rack1, run.hot_segments_total);
  // After the grace window the tenant's SLO is not just recovering but
  // attained: every sampled local fraction cleared the 0.6 floor.
  EXPECT_GT(run.tenant_slo.local_samples, 0u);
  EXPECT_DOUBLE_EQ(run.tenant_slo.LocalAttainment(), 1.0);
  EXPECT_TRUE(run.tenant_slo.Met());
}

TEST(HierChaosTest, ReplayAndThreadSweepAreByteIdentical) {
  const RunResult a = RunRackFailScenario(1);
  const RunResult b = RunRackFailScenario(1);
  const RunResult wide = RunRackFailScenario(8);
  EXPECT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.slo_json, b.slo_json);
  EXPECT_EQ(a.trace_json, wide.trace_json);
  EXPECT_EQ(a.metrics_json, wide.metrics_json);
  EXPECT_EQ(a.slo_json, wide.slo_json);
  EXPECT_EQ(a.stats.epochs, wide.stats.epochs);
  EXPECT_EQ(a.stats.oob_resolves, wide.stats.oob_resolves);
}

}  // namespace
}  // namespace lmp::ctrl::hier
