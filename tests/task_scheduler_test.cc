// Tests for the compute-shipping TaskScheduler (§4.4's execution runtime).
#include <gtest/gtest.h>

#include "core/task_scheduler.h"

namespace lmp::core {
namespace {

class TaskSchedulerTest : public ::testing::Test {
 protected:
  TaskSchedulerTest()
      : topology_(fabric::Topology::MakeLogical(
            &sim_, 4, fabric::LinkProfile::Link0())) {}
  sim::FluidSimulator sim_;
  fabric::Topology topology_;
};

TEST_F(TaskSchedulerTest, SingleTaskStreamsAndComputes) {
  TaskScheduler scheduler(&sim_, &topology_);
  SimTime done_at = -1;
  ASSERT_TRUE(scheduler
                  .Submit(ComputeTask{0, 12e9, Milliseconds(100)},
                          [&](const ComputeTask&, SimTime t) {
                            done_at = t;
                          })
                  .ok());
  scheduler.Drain();
  // 12 GB at the 12 GB/s per-core cap = 1 s, plus 100 ms compute.
  EXPECT_NEAR(done_at, Seconds(1.1), 1e4);
  EXPECT_EQ(scheduler.stats().completed, 1u);
}

TEST_F(TaskSchedulerTest, PureComputeTaskNeedsNoFlow) {
  TaskScheduler scheduler(&sim_, &topology_);
  ASSERT_TRUE(scheduler.Submit(ComputeTask{1, 0, Milliseconds(5)}).ok());
  scheduler.Drain();
  EXPECT_NEAR(sim_.now(), Milliseconds(5), 1.0);
}

TEST_F(TaskSchedulerTest, TasksQueueBeyondSlots) {
  TaskScheduler scheduler(&sim_, &topology_, /*slots_per_server=*/2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        scheduler.Submit(ComputeTask{0, 0, Milliseconds(10)}).ok());
  }
  EXPECT_EQ(scheduler.BusySlots(0), 2);
  EXPECT_EQ(scheduler.QueuedTasks(0), 3u);
  scheduler.Drain();
  // 5 tasks / 2 slots -> 3 sequential waves of 10 ms.
  EXPECT_NEAR(sim_.now(), Milliseconds(30), 1.0);
  EXPECT_EQ(scheduler.stats().completed, 5u);
}

TEST_F(TaskSchedulerTest, ServersRunIndependently) {
  TaskScheduler scheduler(&sim_, &topology_, 1);
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(scheduler
                    .Submit(ComputeTask{static_cast<cluster::ServerId>(s),
                                        0, Milliseconds(20)})
                    .ok());
  }
  scheduler.Drain();
  // All four run in parallel on their own servers.
  EXPECT_NEAR(sim_.now(), Milliseconds(20), 1.0);
}

TEST_F(TaskSchedulerTest, StreamingTasksShareDram) {
  // 14 streaming tasks saturate the server's 97 GB/s DRAM rather than
  // running at 14 x 12 GB/s.
  TaskScheduler scheduler(&sim_, &topology_);
  const double bytes = 97e9 / 14;
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(scheduler.Submit(ComputeTask{2, bytes, 0}).ok());
  }
  scheduler.Drain();
  EXPECT_NEAR(sim_.now(), Seconds(1), 1e4);
}

TEST_F(TaskSchedulerTest, SubmitPlanFansOutByHome) {
  ShipPlan plan;
  plan.subtasks.push_back({0, GiB(1), {}});
  plan.subtasks.push_back({1, GiB(2), {}});
  plan.subtasks.push_back({3, GiB(1), {}});
  TaskScheduler scheduler(&sim_, &topology_);
  int completions = 0;
  ASSERT_TRUE(scheduler
                  .SubmitPlan(plan, /*compute_ns_per_byte=*/0.0,
                              [&](const ComputeTask&, SimTime) {
                                ++completions;
                              })
                  .ok());
  scheduler.Drain();
  EXPECT_EQ(completions, 3);
  // Makespan set by the 2 GiB sub-task at the per-core cap.
  EXPECT_NEAR(sim_.now(), double(GiB(2)) / 12e9 * kNsPerSec, 1e5);
}

TEST_F(TaskSchedulerTest, InvalidTasksRejected) {
  TaskScheduler scheduler(&sim_, &topology_);
  EXPECT_FALSE(scheduler.Submit(ComputeTask{9, 0, 0}).ok());
  EXPECT_FALSE(scheduler.Submit(ComputeTask{0, -1, 0}).ok());
  EXPECT_FALSE(scheduler.Submit(ComputeTask{0, 0, -1}).ok());
}

TEST_F(TaskSchedulerTest, MakespanTracksFirstSubmitToLastFinish) {
  TaskScheduler scheduler(&sim_, &topology_, 1);
  ASSERT_TRUE(scheduler.Submit(ComputeTask{0, 0, Milliseconds(10)}).ok());
  ASSERT_TRUE(scheduler.Submit(ComputeTask{0, 0, Milliseconds(10)}).ok());
  scheduler.Drain();
  EXPECT_NEAR(scheduler.stats().makespan, Milliseconds(20), 1.0);
}

}  // namespace
}  // namespace lmp::core
