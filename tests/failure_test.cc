// Tests for the failure-domain machinery (§5): replication failover,
// redundancy restoration, and XOR erasure recovery with real bytes.
#include <gtest/gtest.h>

#include "core/erasure.h"
#include "core/pool_manager.h"
#include "core/replication.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig Config(int servers = 4) {
  cluster::ClusterConfig config;
  config.num_servers = servers;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

std::vector<std::byte> Pattern(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xFF);
  }
  return v;
}

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : cluster_(Config()), manager_(&cluster_) {}
  cluster::Cluster cluster_;
  PoolManager manager_;
};

TEST_F(ReplicationTest, ProtectCreatesReplicaOnDistinctServer) {
  ReplicationManager repl(&manager_, 1);
  auto buf = manager_.Allocate(KiB(64), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());
  const SegmentInfo* info =
      manager_.segment_map().Find(manager_.Describe(*buf)->segments[0]);
  ASSERT_EQ(info->replicas.size(), 1u);
  EXPECT_NE(info->replicas[0].server, 0u);
}

TEST_F(ReplicationTest, CrashFailsOverToReplicaWithData) {
  ReplicationManager repl(&manager_, 1);
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  const auto in = Pattern(KiB(32), 5);
  ASSERT_TRUE(manager_.Write(0, *buf, 0, in).ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());

  const auto lost = manager_.OnServerCrash(0);
  ASSERT_TRUE(lost.ok());
  EXPECT_TRUE(lost->empty());  // replica absorbed the failure

  std::vector<std::byte> out(KiB(32));
  ASSERT_TRUE(manager_.Read(1, *buf, 0, out).ok());
  EXPECT_EQ(in, out);
}

TEST_F(ReplicationTest, UnprotectedSegmentsAreLostOnCrash) {
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  const auto lost = manager_.OnServerCrash(0);
  ASSERT_TRUE(lost.ok());
  EXPECT_EQ(lost->size(), 1u);
}

TEST_F(ReplicationTest, RestoreRedundancyAfterFailover) {
  ReplicationManager repl(&manager_, 1);
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());
  ASSERT_TRUE(manager_.OnServerCrash(0).ok());

  auto created = repl.RestoreRedundancy();
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created, 1);
  const SegmentInfo* info =
      manager_.segment_map().Find(manager_.Describe(*buf)->segments[0]);
  EXPECT_EQ(info->replicas.size(), 1u);
  // New replica is on a live server.
  EXPECT_FALSE(
      cluster_.server(info->replicas[0].server).crashed());
}

TEST_F(ReplicationTest, SurvivesTwoSequentialCrashesWithRestore) {
  ReplicationManager repl(&manager_, 1);
  auto buf = manager_.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  const auto in = Pattern(KiB(16), 1);
  ASSERT_TRUE(manager_.Write(0, *buf, 0, in).ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());

  ASSERT_TRUE(manager_.OnServerCrash(0).ok());
  ASSERT_TRUE(repl.RestoreRedundancy().ok());
  const SegmentInfo* info =
      manager_.segment_map().Find(manager_.Describe(*buf)->segments[0]);
  const auto second_victim = info->home.server;
  ASSERT_TRUE(manager_.OnServerCrash(second_victim).ok());

  std::vector<std::byte> out(KiB(16));
  ASSERT_TRUE(manager_.Read(3, *buf, 0, out).ok());
  EXPECT_EQ(in, out);
}

TEST_F(ReplicationTest, ReplicationFactorTwoUsesThreeServers) {
  ReplicationManager repl(&manager_, 2);
  auto buf = manager_.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());
  const SegmentInfo* info =
      manager_.segment_map().Find(manager_.Describe(*buf)->segments[0]);
  ASSERT_EQ(info->replicas.size(), 2u);
  EXPECT_NE(info->replicas[0].server, info->replicas[1].server);
  EXPECT_DOUBLE_EQ(repl.CapacityOverhead(), 3.0);
}

TEST_F(ReplicationTest, ProtectIsIdempotent) {
  ReplicationManager repl(&manager_, 1);
  auto buf = manager_.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());
  const SegmentInfo* info =
      manager_.segment_map().Find(manager_.Describe(*buf)->segments[0]);
  EXPECT_EQ(info->replicas.size(), 1u);
}

TEST_F(ReplicationTest, NoEligibleHostIsOutOfMemory) {
  cluster::Cluster small(Config(1));  // a 1-server "cluster"
  PoolManager manager(&small);
  ReplicationManager repl(&manager, 1);
  auto buf = manager.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_TRUE(IsOutOfMemory(repl.ProtectBuffer(*buf)));
}

// --- XOR erasure coding ---------------------------------------------------------

class ErasureTest : public ::testing::Test {
 protected:
  ErasureTest() : cluster_(Config(5)), manager_(&cluster_) {}

  // Allocates one segment of `size` on each of servers [0, k).
  std::vector<SegmentId> AllocStripe(int k, Bytes size) {
    std::vector<SegmentId> segments;
    for (int s = 0; s < k; ++s) {
      auto buf = manager_.Allocate(size, static_cast<cluster::ServerId>(s));
      EXPECT_TRUE(buf.ok());
      buffers_.push_back(*buf);
      segments.push_back(manager_.Describe(*buf)->segments[0]);
    }
    return segments;
  }

  cluster::Cluster cluster_;
  PoolManager manager_;
  std::vector<BufferId> buffers_;
};

TEST_F(ErasureTest, ParityPlacedOffGroupServers) {
  XorErasureManager erasure(&manager_, 3);
  const auto segments = AllocStripe(3, KiB(16));
  ASSERT_TRUE(erasure.ProtectSegments(segments).ok());
  // Parity segment exists and is homed on server 3 or 4.
  bool found_parity = false;
  manager_.segment_map().ForEach([&](const SegmentInfo& info) {
    if (info.id >= (1u << 23)) {
      found_parity = true;
      EXPECT_GE(info.home.server, 3u);
    }
  });
  EXPECT_TRUE(found_parity);
}

TEST_F(ErasureTest, RecoversLostMemberBitExact) {
  XorErasureManager erasure(&manager_, 3);
  const auto segments = AllocStripe(3, KiB(16));
  std::vector<std::vector<std::byte>> data;
  for (int s = 0; s < 3; ++s) {
    data.push_back(Pattern(KiB(16), s));
    ASSERT_TRUE(manager_.Write(static_cast<cluster::ServerId>(s),
                               buffers_[s], 0, data[s]).ok());
  }
  ASSERT_TRUE(erasure.ProtectSegments(segments).ok());

  ASSERT_TRUE(manager_.OnServerCrash(1).ok());
  ASSERT_EQ(manager_.segment_map().Find(segments[1])->state,
            SegmentState::kLost);
  ASSERT_TRUE(erasure.RecoverSegment(segments[1]).ok());
  EXPECT_EQ(manager_.segment_map().Find(segments[1])->state,
            SegmentState::kActive);

  std::vector<std::byte> out(KiB(16));
  ASSERT_TRUE(manager_.Read(0, buffers_[1], 0, out).ok());
  EXPECT_EQ(out, data[1]);
}

TEST_F(ErasureTest, RecoverAllLostSweepsEveryGroup) {
  XorErasureManager erasure(&manager_, 2);
  const auto segments = AllocStripe(4, KiB(8));
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(manager_.Write(static_cast<cluster::ServerId>(s),
                               buffers_[s], 0, Pattern(KiB(8), s)).ok());
  }
  ASSERT_TRUE(erasure.ProtectSegments(segments).ok());
  ASSERT_TRUE(manager_.OnServerCrash(0).ok());
  // Server 0 hosted segment 0 AND (by the most-free placement heuristic)
  // the parity of the second group — both must be rebuilt.
  auto recovered = erasure.RecoverAllLost();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, 2);
  std::vector<std::byte> out(KiB(8));
  EXPECT_TRUE(manager_.Read(1, buffers_[0], 0, out).ok());
}

TEST_F(ErasureTest, DoubleLossInGroupIsDataLoss) {
  XorErasureManager erasure(&manager_, 3);
  const auto segments = AllocStripe(3, KiB(8));
  ASSERT_TRUE(erasure.ProtectSegments(segments).ok());
  ASSERT_TRUE(manager_.OnServerCrash(0).ok());
  ASSERT_TRUE(manager_.OnServerCrash(1).ok());
  EXPECT_EQ(erasure.RecoverSegment(segments[0]).code(),
            StatusCode::kDataLoss);
}

TEST_F(ErasureTest, UnequalSizesRejected) {
  XorErasureManager erasure(&manager_, 2);
  auto a = manager_.Allocate(KiB(8), 0);
  auto b = manager_.Allocate(KiB(16), 1);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::vector<SegmentId> segments{
      manager_.Describe(*a)->segments[0],
      manager_.Describe(*b)->segments[0]};
  EXPECT_EQ(erasure.ProtectSegments(segments).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ErasureTest, ActiveSegmentCannotBeRecovered) {
  XorErasureManager erasure(&manager_, 2);
  const auto segments = AllocStripe(2, KiB(8));
  ASSERT_TRUE(erasure.ProtectSegments(segments).ok());
  EXPECT_EQ(erasure.RecoverSegment(segments[0]).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ErasureTest, CapacityOverheadIsOneOverK) {
  XorErasureManager e2(&manager_, 2);
  XorErasureManager e4(&manager_, 4);
  EXPECT_DOUBLE_EQ(e2.CapacityOverhead(), 1.5);
  EXPECT_DOUBLE_EQ(e4.CapacityOverhead(), 1.25);
}

TEST_F(ErasureTest, UnprotectedSegmentNotRecoverable) {
  XorErasureManager erasure(&manager_, 2);
  const auto segments = AllocStripe(1, KiB(8));
  EXPECT_TRUE(IsNotFound(erasure.RecoverSegment(segments[0])));
}

}  // namespace
}  // namespace lmp::core

namespace lmp::core {
namespace {

// Regression (found by the randomized integration sweep): migrating a
// segment onto a server that already holds its replica must promote the
// replica (zero-copy) instead of colliding in the frame map.
TEST_F(ReplicationTest, MigrationToReplicaHostPromotesInPlace) {
  ReplicationManager repl(&manager_, 1);
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  const auto in = Pattern(KiB(32), 9);
  ASSERT_TRUE(manager_.Write(0, *buf, 0, in).ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());

  const SegmentId seg = manager_.Describe(*buf)->segments[0];
  const SegmentInfo* info = manager_.segment_map().Find(seg);
  ASSERT_EQ(info->replicas.size(), 1u);
  const auto replica_host = info->replicas[0].server;

  auto rec = manager_.MigrateSegment(seg, replica_host);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->bytes, 0u);  // zero-copy promotion
  EXPECT_EQ(rec->to.server, replica_host);

  // Home and replica swapped; data still correct from everywhere.
  info = manager_.segment_map().Find(seg);
  EXPECT_EQ(info->home.server, replica_host);
  ASSERT_EQ(info->replicas.size(), 1u);
  EXPECT_EQ(info->replicas[0].server, 0u);
  std::vector<std::byte> out(KiB(32));
  ASSERT_TRUE(manager_.Read(2, *buf, 0, out).ok());
  EXPECT_EQ(in, out);

  // The swapped layout still tolerates a crash of the new home.
  ASSERT_TRUE(manager_.OnServerCrash(replica_host).ok());
  ASSERT_TRUE(manager_.Read(2, *buf, 0, out).ok());
  EXPECT_EQ(in, out);
}

// Regression: freeing a protected buffer used to leave its segment ids in
// the replication manager's protected list forever — every later
// RestoreRedundancy rescanned the stale ids, and repeated protect/free
// cycles grew the list without bound.
TEST_F(ReplicationTest, FreePrunesProtectedList) {
  ReplicationManager repl(&manager_, 1);
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());
  EXPECT_EQ(repl.protected_count(), 1u);

  ASSERT_TRUE(manager_.Free(*buf).ok());
  // Pruning is lazy (Free does not know about protection layers); the next
  // restoration pass must both skip and drop the dead id.
  auto created = repl.RestoreRedundancy();
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created, 0);
  EXPECT_EQ(repl.protected_count(), 0u);
}

TEST_F(ReplicationTest, ProtectedListStaysBoundedAcrossProtectFreeCycles) {
  ReplicationManager repl(&manager_, 1);
  for (int i = 0; i < 16; ++i) {
    auto buf = manager_.Allocate(KiB(32), 0);
    ASSERT_TRUE(buf.ok());
    ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());
    ASSERT_TRUE(manager_.Free(*buf).ok());
    auto created = repl.RestoreRedundancy();
    ASSERT_TRUE(created.ok());
  }
  EXPECT_EQ(repl.protected_count(), 0u);
}

TEST_F(ReplicationTest, LostSegmentsArePrunedAfterRestore) {
  // Unreplicated neighbor lost in a crash: RestoreRedundancy can never
  // help it, so it must not stay on the protected list; the protected
  // (replicated) segment fails over and gets a fresh replica.
  ReplicationManager repl(&manager_, 1);
  auto protected_buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(protected_buf.ok());
  ASSERT_TRUE(repl.ProtectBuffer(*protected_buf).ok());
  EXPECT_EQ(repl.protected_count(), 1u);

  const auto lost = manager_.OnServerCrash(0);
  ASSERT_TRUE(lost.ok());
  EXPECT_TRUE(lost->empty());  // replica absorbed the crash
  auto created = repl.RestoreRedundancy();
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created, 1);
  EXPECT_EQ(repl.protected_count(), 1u);  // still live, still protected

  // Double-protecting must not duplicate the list entry.
  const SegmentId seg = manager_.Describe(*protected_buf)->segments[0];
  ASSERT_TRUE(repl.ProtectSegment(seg).ok());
  EXPECT_EQ(repl.protected_count(), 1u);
}

// Regression: crash scrubs replica records pointing at the dead host, so
// redundancy restoration reports the truth.
TEST_F(ReplicationTest, CrashScrubsReplicaRecords) {
  ReplicationManager repl(&manager_, 1);
  auto buf = manager_.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(repl.ProtectBuffer(*buf).ok());
  const SegmentId seg = manager_.Describe(*buf)->segments[0];
  const auto replica_host =
      manager_.segment_map().Find(seg)->replicas[0].server;

  // Crash the REPLICA's host: the primary survives, the record must go.
  ASSERT_TRUE(manager_.OnServerCrash(replica_host).ok());
  EXPECT_TRUE(manager_.segment_map().Find(seg)->replicas.empty());
  auto created = repl.RestoreRedundancy();
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created, 1);
}

}  // namespace
}  // namespace lmp::core
