// Chaos × control plane: a server crash mid-epoch triggers an out-of-band
// re-solve, the pool re-balances onto the survivors, and the observed
// local fraction recovers to its SLO by the end of the run.  The same
// scenario replayed twice produces byte-identical ctrl.* metrics and
// kCtrl trace JSON — the controller adds no nondeterminism on top of the
// fault injector's.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/trace.h"
#include "core/pool_manager.h"
#include "ctrl/admission.h"
#include "ctrl/controller.h"
#include "ctrl/slo_ledger.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::ctrl {
namespace {

constexpr int kServers = 4;
constexpr SimTime kShift = Milliseconds(30);
constexpr SimTime kEnd = Milliseconds(120);
constexpr int kBuffers = 6;
constexpr Bytes kBufferBytes = MiB(1);

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config;
  config.num_servers = kServers;
  config.server_total_memory = MiB(32);
  config.server_shared_memory = MiB(32);
  config.frame_size = KiB(64);
  config.with_backing = true;
  return config;
}

struct RunResult {
  std::string trace_json;
  std::string metrics_json;
  std::string slo_json;
  double local_fraction = 0;
  double fresh_optimum = 0;
  ControllerStats stats;
  SloAttainment lease_slo;  // "tenant-a" as recorded by the controller
};

// The bench_ctrl crash scenario in miniature: tenant traffic shifts from
// server 0 to server 1 at kShift, server 3 crashes at 50ms and recovers
// at 80ms, and the closed loop follows both disruptions.
RunResult RunCrashScenario() {
  sim::FluidSimulator sim;
  auto topo = fabric::Topology::MakeLogical(&sim, kServers,
                                            fabric::LinkProfile::Link1());
  cluster::Cluster cluster(Config());
  core::PoolManager manager(&cluster);
  manager.access_tracker().set_half_life(Milliseconds(20));

  RunResult run;
  trace::TraceCollector collector;
  MetricsRegistry metrics;
  collector.set_clock([&sim] { return sim.now(); });
  sim.set_trace(&collector);
  manager.set_trace(&collector);
  manager.set_metrics(&metrics);

  chaos::FaultInjector injector(chaos::FaultInjector::Bindings{
      .sim = &sim, .topology = &topo, .manager = &manager});
  injector.set_trace(&collector);
  injector.set_metrics(&metrics);
  chaos::FaultPlan plan;
  plan.CrashAt(Milliseconds(50), 3).RecoverAt(Milliseconds(80), 3);
  EXPECT_TRUE(injector.SchedulePlan(plan).ok());

  std::vector<core::BufferId> buffers;
  for (int i = 0; i < kBuffers; ++i) {
    auto buf = manager.Allocate(kBufferBytes, 0);
    EXPECT_TRUE(buf.ok());
    buffers.push_back(*buf);
  }

  ControllerConfig config;
  config.period = Milliseconds(2);
  config.cooldown = Milliseconds(4);
  config.min_step = KiB(256);
  config.horizon = kEnd;
  config.estimator.time_constant = Milliseconds(5);
  config.estimator.headroom_factor = 1.25;
  auto controller = std::make_unique<SizingController>(
      SizingController::Bindings{.sim = &sim,
                                 .manager = &manager,
                                 .topology = &topo,
                                 .injector = &injector},
      config);
  controller->set_metrics(&metrics);
  controller->set_trace(&collector);
  // SLO accounting: the controller records each active lease's observed
  // local fraction every epoch.  Server 1 is where the traffic shifts to,
  // so "tenant-a"'s attainment climbs as migration catches up.
  SloLedger ledger;
  SloTargets targets;
  targets.local_fraction_floor = 0.5;
  ledger.Register("tenant-a", targets);
  controller->set_slo_ledger(&ledger);
  auto lease = controller->admission().RequestAdmission(
      {"tenant-a", MiB(2), 1.0, cluster::ServerId{1}});
  EXPECT_TRUE(lease.ok());
  controller->Start();

  for (SimTime t = 0; t < kEnd; t += Milliseconds(1)) {
    sim.ScheduleAt(t, [&](SimTime now) {
      const cluster::ServerId accessor = now < kShift ? 0 : 1;
      for (const core::BufferId buf : buffers) {
        auto spans = manager.Spans(buf, 0, kBufferBytes);
        if (!spans.ok()) continue;  // crashed home: skip this tick
        for (const core::LocatedSpan& span : *spans) {
          manager.access_tracker().RecordAccess(
              span.segment, accessor, static_cast<double>(span.bytes), now);
        }
      }
    });
  }
  sim.Run();

  run.local_fraction = controller->estimator().ObservedLocalFraction(kEnd);
  run.fresh_optimum =
      core::SizingOptimizer::Solve(cluster,
                                   controller->estimator().Estimate(kEnd))
          .LocalFraction();
  run.stats = controller->stats();
  run.trace_json = collector.ToChromeJson();
  run.metrics_json = trace::MetricsJson(metrics);
  run.slo_json = ledger.Json();
  if (const SloAttainment* a = ledger.Find("tenant-a"); a != nullptr) {
    run.lease_slo = *a;
  }
  return run;
}

TEST(CtrlChaosTest, CrashTriggersOutOfBandResolveAndPoolRecovers) {
  const RunResult run = RunCrashScenario();
  // Crash and recovery each fire the chaos listener.
  EXPECT_GE(run.stats.oob_resolves, 2u);
  EXPECT_GT(run.stats.epochs, run.stats.oob_resolves);
  // The shift was followed: server 0 shrank via at least one drain and the
  // loop kept converging through the crash window.
  EXPECT_GE(run.stats.drains_completed, 1u);
  EXPECT_GE(run.stats.grows, 1u);
  // SLO: by the end of the run the observed local fraction is close to
  // what a fresh offline solve of the final demand would plan.  The
  // tolerance absorbs pre-shift traffic that was remote by construction.
  EXPECT_GE(run.fresh_optimum, 0.99);
  EXPECT_GE(run.local_fraction, run.fresh_optimum - 0.15);
}

TEST(CtrlChaosTest, SloLedgerTracksLeaseAttainmentThroughCrash) {
  const RunResult run = RunCrashScenario();
  // The controller sampled the lease every epoch (including through the
  // crash window) — the epoch count bounds the sample count because
  // out-of-band re-solves also export telemetry.
  EXPECT_GT(run.lease_slo.local_samples, 0u);
  EXPECT_GE(run.stats.epochs + run.stats.oob_resolves,
            run.lease_slo.local_samples);
  // Before the shift server 1 originates no traffic (vacuously local);
  // after it, migration pulls the hot set next to it — most epoch samples
  // clear the 0.5 floor, and the attainment math stays within [0, 1].
  EXPECT_GE(run.lease_slo.LocalAttainment(), 0.5);
  EXPECT_LE(run.lease_slo.LocalAttainment(), 1.0);
  EXPECT_NE(run.slo_json.find("tenant-a"), std::string::npos);
  EXPECT_NE(run.slo_json.find("\"local\""), std::string::npos);
}

TEST(CtrlChaosTest, ReplayIsByteIdentical) {
  const RunResult a = RunCrashScenario();
  const RunResult b = RunCrashScenario();
  EXPECT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.slo_json, b.slo_json);
  EXPECT_DOUBLE_EQ(a.local_fraction, b.local_fraction);
  EXPECT_EQ(a.stats.resize_bytes, b.stats.resize_bytes);
  EXPECT_EQ(a.stats.drain_bytes, b.stats.drain_bytes);
  EXPECT_EQ(a.stats.epochs, b.stats.epochs);
}

}  // namespace
}  // namespace lmp::ctrl
