// Tests for buffer Grow/Shrink and the pool snapshot.
#include <gtest/gtest.h>

#include "core/pool_manager.h"

namespace lmp::core {
namespace {

cluster::ClusterConfig Config() {
  cluster::ClusterConfig config;
  config.num_servers = 4;
  config.server_total_memory = MiB(4);
  config.server_shared_memory = MiB(4);
  config.frame_size = KiB(4);
  config.with_backing = true;
  return config;
}

class GrowShrinkTest : public ::testing::Test {
 protected:
  GrowShrinkTest() : cluster_(Config()), manager_(&cluster_) {}
  cluster::Cluster cluster_;
  PoolManager manager_;
};

TEST_F(GrowShrinkTest, GrowPreservesExistingData) {
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  std::vector<std::byte> data(KiB(32), std::byte{0x77});
  ASSERT_TRUE(manager_.Write(0, *buf, 0, data).ok());

  ASSERT_TRUE(manager_.Grow(*buf, KiB(32), 1).ok());
  auto info = manager_.Describe(*buf);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, KiB(64));

  // Old range intact; new range writable.
  std::vector<std::byte> out(KiB(32));
  ASSERT_TRUE(manager_.Read(2, *buf, 0, out).ok());
  EXPECT_EQ(out, data);
  std::vector<std::byte> tail(KiB(32), std::byte{0x11});
  ASSERT_TRUE(manager_.Write(1, *buf, KiB(32), tail).ok());
}

TEST_F(GrowShrinkTest, GrowBeyondPoolIsOutOfMemory) {
  auto buf = manager_.Allocate(MiB(1), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_TRUE(IsOutOfMemory(manager_.Grow(*buf, MiB(16), 0)));
  // Original buffer untouched.
  EXPECT_EQ(manager_.Describe(*buf)->size, MiB(1));
}

TEST_F(GrowShrinkTest, ShrinkAtSegmentBoundaryFreesTail) {
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(manager_.Grow(*buf, KiB(32), 1).ok());  // 2 segments
  const Bytes free_before = cluster_.PooledFreeBytes();
  ASSERT_TRUE(manager_.Shrink(*buf, KiB(32)).ok());
  EXPECT_EQ(manager_.Describe(*buf)->size, KiB(32));
  EXPECT_EQ(cluster_.PooledFreeBytes(), free_before + KiB(32));
}

TEST_F(GrowShrinkTest, ShrinkInsideSegmentNeedsSplit) {
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(manager_.Shrink(*buf, KiB(16)).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(manager_.SplitSegmentAt(*buf, KiB(16)).ok());
  EXPECT_TRUE(manager_.Shrink(*buf, KiB(16)).ok());
  EXPECT_EQ(manager_.Describe(*buf)->size, KiB(16));
}

TEST_F(GrowShrinkTest, ShrinkValidation) {
  auto buf = manager_.Allocate(KiB(32), 0);
  ASSERT_TRUE(buf.ok());
  EXPECT_FALSE(manager_.Shrink(*buf, 0).ok());
  EXPECT_FALSE(manager_.Shrink(*buf, KiB(64)).ok());
  EXPECT_TRUE(manager_.Shrink(*buf, KiB(32)).ok());  // no-op
  EXPECT_FALSE(manager_.Shrink(999, KiB(1)).ok());
  EXPECT_FALSE(manager_.Grow(999, KiB(1), 0).ok());
  EXPECT_FALSE(manager_.Grow(*buf, 0, 0).ok());
}

TEST_F(GrowShrinkTest, GrowShrinkRoundTripConservesCapacity) {
  const Bytes before = cluster_.PooledFreeBytes();
  auto buf = manager_.Allocate(KiB(16), 0);
  ASSERT_TRUE(buf.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(manager_.Grow(*buf, KiB(16), std::nullopt).ok());
  }
  ASSERT_TRUE(manager_.Shrink(*buf, KiB(16)).ok());
  ASSERT_TRUE(manager_.Free(*buf).ok());
  EXPECT_EQ(cluster_.PooledFreeBytes(), before);
}

TEST_F(GrowShrinkTest, SnapshotReportsCapacityAndBacklog) {
  auto local = manager_.Allocate(MiB(1), 0);
  auto contested = manager_.Allocate(MiB(2), 1);
  ASSERT_TRUE(local.ok() && contested.ok());
  // Server 3 hammers the buffer homed on server 1.
  ASSERT_TRUE(manager_.Touch(3, *contested, 0, MiB(2), Seconds(1)).ok());

  const auto snap = manager_.Snapshot(Seconds(1));
  EXPECT_EQ(snap.buffers, 2u);
  EXPECT_EQ(snap.segments, 2u);
  ASSERT_EQ(snap.servers.size(), 4u);
  EXPECT_EQ(snap.servers[0].used, MiB(1));
  EXPECT_EQ(snap.servers[1].used, MiB(2));
  EXPECT_EQ(snap.servers[1].remote_hot, MiB(2));  // balancer backlog
  EXPECT_EQ(snap.servers[0].remote_hot, 0u);      // untouched
  EXPECT_FALSE(snap.servers[0].crashed);
}

TEST_F(GrowShrinkTest, SnapshotMarksCrashedServers) {
  ASSERT_TRUE(manager_.OnServerCrash(2).ok());
  const auto snap = manager_.Snapshot(0);
  EXPECT_TRUE(snap.servers[2].crashed);
}

}  // namespace
}  // namespace lmp::core
