#include "chaos/fault_injector.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/trace.h"
#include "obs/flight_recorder.h"

namespace lmp::chaos {

FaultInjector::FaultInjector(Bindings bindings, InjectorOptions options)
    : sim_(bindings.sim),
      topology_(bindings.topology),
      manager_(bindings.manager),
      cluster_(bindings.cluster),
      replication_(bindings.replication),
      erasure_(bindings.erasure),
      options_(options) {
  LMP_CHECK(sim_ != nullptr);
  LMP_CHECK(topology_ != nullptr);
  LMP_CHECK(manager_ != nullptr || cluster_ != nullptr)
      << "need a PoolManager or a Cluster to crash servers";
  LMP_CHECK(options_.max_transfer_retries >= 0);
  LMP_CHECK(options_.retry_backoff > 0);
}

void FaultInjector::set_metrics(MetricsRegistry* registry) {
  LMP_CHECK(registry != nullptr);
  metrics_ = registry;
}

cluster::Cluster* FaultInjector::cluster_ptr() const {
  return manager_ != nullptr ? &manager_->cluster() : cluster_;
}

bool FaultInjector::ServerCrashed(cluster::ServerId server) const {
  const cluster::Cluster* c = cluster_ptr();
  if (c == nullptr ||
      server >= static_cast<cluster::ServerId>(c->num_servers())) {
    return false;
  }
  return c->server(server).crashed();
}

cluster::ServerId FaultInjector::PickLiveSource(cluster::ServerId dst) const {
  const int n = topology_->num_servers();
  for (int s = 0; s < n; ++s) {
    const auto id = static_cast<cluster::ServerId>(s);
    if (id != dst && !ServerCrashed(id)) return id;
  }
  return dst;  // no live peer; caller prices the transfer as free
}

Status FaultInjector::SchedulePlan(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events()) {
    if (event.at < sim_->now()) {
      return InvalidArgumentError("plan event in the past");
    }
    sim_->ScheduleAt(event.at, [this, event](SimTime) {
      const Status st = Apply(event);
      if (!st.ok() && apply_error_.ok()) apply_error_ = st;
    });
  }
  return Status::Ok();
}

Status FaultInjector::Apply(const FaultEvent& event) {
  const Status st = Dispatch(event);
  if (st.ok() && listener_) listener_(event);
  return st;
}

Status FaultInjector::Dispatch(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kServerCrash:
      if (event.servers.size() != 1) {
        return InvalidArgumentError("crash wants one server");
      }
      return ApplyCrash(event.servers[0]);
    case FaultKind::kServerRecover:
      if (event.servers.size() != 1) {
        return InvalidArgumentError("recover wants one server");
      }
      return ApplyRecover(event.servers[0]);
    case FaultKind::kLinkDegrade:
      return ApplyDegrade(event);
    case FaultKind::kLinkRestore:
      return ApplyRestore(event);
    case FaultKind::kLinkFlap: {
      if (event.servers.size() != 1) {
        return InvalidArgumentError("flap wants one server");
      }
      // Expand relative to now: `count` outages of `down` every `period`.
      for (int i = 0; i < event.flap_count; ++i) {
        FaultEvent down = event;
        down.kind = FaultKind::kLinkDegrade;
        FaultEvent up = event;
        up.kind = FaultKind::kLinkRestore;
        const SimTime start =
            static_cast<SimTime>(i) * event.period_ns;
        sim_->ScheduleAfter(start, [this, down](SimTime) {
          const Status st = ApplyDegrade(down);
          if (!st.ok() && apply_error_.ok()) apply_error_ = st;
        });
        sim_->ScheduleAfter(start + event.down_ns, [this, up](SimTime) {
          const Status st = ApplyRestore(up);
          if (!st.ok() && apply_error_.ok()) apply_error_ = st;
        });
      }
      return Status::Ok();
    }
    case FaultKind::kRackFail:
      if (flight_ != nullptr) {
        flight_->Record(sim_->now(), "fault.rack",
                        std::to_string(event.servers.size()) +
                            " servers failing together");
      }
      for (cluster::ServerId s : event.servers) {
        LMP_RETURN_IF_ERROR(ApplyCrash(s));
      }
      return Status::Ok();
  }
  return InternalError("unhandled fault kind");
}

Status FaultInjector::ApplyCrash(cluster::ServerId server) {
  const SimTime now = sim_->now();
  ++report_.crashes;
  metrics_->Increment("chaos.crashes");
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kChaos, "fault_crash", now,
                    {trace::Arg("server", static_cast<std::uint64_t>(server))});
  }
  if (flight_ != nullptr) {
    flight_->Record(now, "fault.crash",
                    "server s" + std::to_string(server));
  }
  if (manager_ == nullptr) {
    // Timing-only / physical deployment: the cluster records the crash;
    // pooled data lives on the pool box and survives (the paper's §5
    // argument for why the blast radius differs between deployments).
    const Status st = cluster_->server(server).Crash();
    if (st.ok() && flight_ != nullptr) {
      flight_->SnapshotPostmortem("server_crash:s" + std::to_string(server),
                                  now);
    }
    return st;
  }
  LMP_ASSIGN_OR_RETURN(const std::vector<core::SegmentId> lost,
                       manager_->OnServerCrash(server));
  // A segment re-lost while its rebuild transfer is in flight is one
  // rebuild obligation, not two: segments_lost counts obligations so that
  // segments_rebuilt + rebuilds_abandoned accounts for every one of them.
  int newly_lost = 0;
  for (const core::SegmentId seg : lost) {
    if (rebuilding_.count(seg) == 0) ++newly_lost;
  }
  report_.segments_lost += newly_lost;
  metrics_->Increment("chaos.segments_lost",
                      static_cast<std::uint64_t>(newly_lost));
  OpenWindows(lost);
  const Status st = RecoverAfterCrash(server, lost);
  // Snapshot after recovery kicks off, so the postmortem shows both the
  // context leading up to the crash and the transfers it triggered.
  if (st.ok() && flight_ != nullptr) {
    flight_->SnapshotPostmortem("server_crash:s" + std::to_string(server),
                                now);
  }
  return st;
}

Status FaultInjector::ApplyRecover(cluster::ServerId server) {
  ++report_.recoveries;
  metrics_->Increment("chaos.recoveries");
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kChaos, "fault_recover", sim_->now(),
                    {trace::Arg("server", static_cast<std::uint64_t>(server))});
  }
  if (flight_ != nullptr) {
    flight_->Record(sim_->now(), "fault.recover",
                    "server s" + std::to_string(server));
  }
  if (manager_ == nullptr) return cluster_->server(server).Recover();
  return manager_->OnServerRecover(server);
}

double FaultInjector::DegradedBytesBaseline(const FaultEvent& event) const {
  if (event.pool_link) {
    double served = 0;
    for (int p = 0; p < topology_->pool_port_count(); ++p) {
      served += sim_->BytesServed(topology_->pool_port(p));
    }
    return served;
  }
  return sim_->BytesServed(topology_->port(event.servers[0]));
}

Status FaultInjector::ApplyDegrade(const FaultEvent& event) {
  const SimTime now = sim_->now();
  const int key =
      event.pool_link ? -1 : static_cast<int>(event.servers[0]);
  // Re-degrading an already-degraded link folds the bytes served so far
  // at the old severity before re-baselining (multipliers are absolute).
  auto it = degrade_baseline_.find(key);
  if (it != degrade_baseline_.end()) {
    report_.degraded_bytes_served += DegradedBytesBaseline(event) - it->second;
  }
  if (event.pool_link) {
    LMP_RETURN_IF_ERROR(topology_->SetPoolLinkHealth(event.bandwidth_mult,
                                                     event.latency_mult));
  } else {
    if (event.servers.size() != 1) {
      return InvalidArgumentError("degrade wants one server or pool");
    }
    LMP_RETURN_IF_ERROR(topology_->SetLinkHealth(
        event.servers[0], event.bandwidth_mult, event.latency_mult));
  }
  degrade_baseline_[key] = DegradedBytesBaseline(event);
  ++report_.link_degrades;
  metrics_->Increment("chaos.link_degrades");
  if (flight_ != nullptr) {
    flight_->Record(now, "link.degrade",
                    (event.pool_link
                         ? std::string("pool link")
                         : "link s" + std::to_string(event.servers[0])) +
                        " bw x" + trace::JsonNumber(event.bandwidth_mult));
  }
  if (trace_ != nullptr) {
    trace_->Instant(
        trace::Category::kChaos, "link_degrade", now,
        {trace::Arg("target", event.pool_link
                                  ? std::string("pool")
                                  : "s" + std::to_string(event.servers[0])),
         trace::Arg("bw_mult", event.bandwidth_mult),
         trace::Arg("lat_mult", event.latency_mult)});
  }
  return Status::Ok();
}

Status FaultInjector::ApplyRestore(const FaultEvent& event) {
  const SimTime now = sim_->now();
  const int key =
      event.pool_link ? -1 : static_cast<int>(event.servers[0]);
  auto it = degrade_baseline_.find(key);
  if (it != degrade_baseline_.end()) {
    report_.degraded_bytes_served += DegradedBytesBaseline(event) - it->second;
    degrade_baseline_.erase(it);
  }
  if (event.pool_link) {
    LMP_RETURN_IF_ERROR(topology_->RestorePoolLink());
  } else {
    if (event.servers.size() != 1) {
      return InvalidArgumentError("restore wants one server or pool");
    }
    LMP_RETURN_IF_ERROR(topology_->RestoreLink(event.servers[0]));
  }
  ++report_.link_restores;
  metrics_->Increment("chaos.link_restores");
  if (flight_ != nullptr) {
    flight_->Record(now, "link.restore",
                    event.pool_link
                        ? std::string("pool link")
                        : "link s" + std::to_string(event.servers[0]));
  }
  if (trace_ != nullptr) {
    trace_->Instant(
        trace::Category::kChaos, "link_restore", now,
        {trace::Arg("target", event.pool_link
                                  ? std::string("pool")
                                  : "s" + std::to_string(event.servers[0]))});
  }
  return Status::Ok();
}

Status FaultInjector::RecoverAfterCrash(
    cluster::ServerId server, const std::vector<core::SegmentId>& lost) {
  // Functional recovery happens NOW (this is the repo's functional face);
  // the bytes it moved are then priced as fabric flows whose completions
  // define redundancy/availability (the timing face).
  if (erasure_ != nullptr) {
    for (core::SegmentId seg : lost) {
      const bool already_rebuilding = rebuilding_.count(seg) > 0;
      const Status st = erasure_->RecoverSegment(seg);
      if (!st.ok()) {
        if (IsDataLoss(st) || IsNotFound(st)) {
          // Double loss in the group, or never protected: unrecoverable.
          AbandonRecoveryTransfer(seg);
          continue;
        }
        return st;
      }
      // A re-lost segment whose rebuild transfer is still in flight was
      // functionally re-rebuilt just now, but its bytes are already being
      // priced — don't start (and charge) a second transfer.
      if (already_rebuilding) continue;
      const core::SegmentInfo* info = manager_->segment_map().Find(seg);
      LMP_CHECK(info != nullptr && !info->home.is_pool());
      // Rebuild reads all k surviving group members into the new home.
      const Bytes transfer =
          info->size * static_cast<Bytes>(erasure_->group_size());
      rebuilding_.emplace(seg, info->size);
      StartRecoveryTransfer(PickLiveSource(info->home.server),
                            info->home.server, transfer, seg, 0);
    }
  }
  if (replication_ != nullptr) {
    std::vector<core::ReplicaRecord> records;
    LMP_ASSIGN_OR_RETURN(const int created,
                         replication_->RestoreRedundancy(&records));
    (void)server;
    report_.replicas_recreated += created;
    metrics_->Increment("chaos.replicas_recreated",
                        static_cast<std::uint64_t>(created));
    for (const core::ReplicaRecord& rec : records) {
      LMP_CHECK(!rec.from.is_pool() && !rec.to.is_pool());
      StartRecoveryTransfer(rec.from.server, rec.to.server, rec.bytes,
                            rec.segment, 0);
    }
  }
  MaybeCloseWindows();
  return Status::Ok();
}

void FaultInjector::StartRecoveryTransfer(cluster::ServerId src,
                                          cluster::ServerId dst, Bytes bytes,
                                          core::SegmentId segment,
                                          int attempt) {
  if (attempt == 0) {
    if (outstanding_ == 0) window_start_ = sim_->now();
    ++outstanding_;
  }
  // The source may have crashed since the transfer was first scheduled.
  if (ServerCrashed(src)) src = PickLiveSource(dst);
  const bool endpoint_down = ServerCrashed(src) || ServerCrashed(dst);
  const bool link_down =
      topology_->link_bandwidth_mult(src) <= options_.down_threshold ||
      topology_->link_bandwidth_mult(dst) <= options_.down_threshold;
  if (endpoint_down || link_down) {
    if (attempt >= options_.max_transfer_retries) {
      AbandonRecoveryTransfer(segment);
      --outstanding_;
      // No TTR is recorded for a window that ends in abandonment —
      // redundancy was never reached — but the window must still close so
      // a later crash starts its own.
      if (outstanding_ == 0) window_start_ = -1;
      MaybeCloseWindows();
      return;
    }
    ++report_.transfer_retries;
    metrics_->Increment("chaos.transfer_retries");
    if (trace_ != nullptr) {
      trace_->Instant(trace::Category::kChaos, "transfer_retry", sim_->now(),
                      {trace::Arg("segment", segment),
                       trace::Arg("attempt", attempt + 1)});
    }
    if (flight_ != nullptr) {
      flight_->Record(sim_->now(), "recovery.retry",
                      "segment " + std::to_string(segment) + " attempt " +
                          std::to_string(attempt + 1));
    }
    const SimTime delay =
        options_.retry_backoff * static_cast<double>(1u << attempt);
    sim_->ScheduleAfter(delay,
                        [this, src, dst, bytes, segment, attempt](SimTime) {
                          StartRecoveryTransfer(src, dst, bytes, segment,
                                                attempt + 1);
                        });
    return;
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kChaos, "recovery_transfer_start",
                    sim_->now(),
                    {trace::Arg("segment", segment),
                     trace::Arg("src", static_cast<std::uint64_t>(src)),
                     trace::Arg("dst", static_cast<std::uint64_t>(dst)),
                     trace::Arg("bytes", bytes)});
  }
  if (flight_ != nullptr) {
    flight_->Record(sim_->now(), "recovery.start",
                    "segment " + std::to_string(segment) + " s" +
                        std::to_string(src) + "->s" + std::to_string(dst) +
                        " " + std::to_string(bytes) + "B");
  }
  // With no live peer to read from, the copy is intra-host: free in the
  // fabric model (empty path completes via a zero-delay timer).
  const std::vector<sim::ResourceId> path =
      src == dst ? std::vector<sim::ResourceId>{}
                 : topology_->DmaRemotePath(src, dst);
  sim_->StartFlow(static_cast<double>(bytes), path,
                  [this, segment, bytes](sim::FlowId f, SimTime) {
                    (void)sim_->ReleaseRecord(f);
                    FinishRecoveryTransfer(segment, bytes);
                  });
}

void FaultInjector::FinishRecoveryTransfer(core::SegmentId segment,
                                           Bytes bytes) {
  report_.bytes_rereplicated += bytes;
  metrics_->Increment("chaos.bytes_rereplicated", bytes);
  if (rebuilding_.count(segment) > 0) {
    // If the segment is lost AGAIN (its group suffered a double loss while
    // this transfer was in flight), the rebuild did not succeed: the
    // obligation stays open and the abandonment was already recorded.
    const core::SegmentInfo* info =
        manager_ != nullptr ? manager_->segment_map().Find(segment) : nullptr;
    if (info == nullptr || info->state != core::SegmentState::kLost) {
      rebuilding_.erase(segment);
      ++report_.segments_rebuilt;
      metrics_->Increment("chaos.segments_rebuilt");
    }
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kChaos, "recovery_transfer_done",
                    sim_->now(),
                    {trace::Arg("segment", segment),
                     trace::Arg("bytes", bytes)});
  }
  if (flight_ != nullptr) {
    flight_->Record(sim_->now(), "recovery.done",
                    "segment " + std::to_string(segment) + " " +
                        std::to_string(bytes) + "B");
  }
  --outstanding_;
  if (outstanding_ == 0 && window_start_ >= 0) {
    const SimTime ttr = sim_->now() - window_start_;
    report_.max_time_to_redundancy =
        std::max(report_.max_time_to_redundancy, ttr);
    metrics_->SetGauge("chaos.max_time_to_redundancy_ns",
                       report_.max_time_to_redundancy);
    metrics_->RecordValue("chaos.time_to_redundancy_ns",
                          static_cast<std::uint64_t>(ttr));
    window_start_ = -1;
  }
  MaybeCloseWindows();
}

void FaultInjector::AbandonRecoveryTransfer(core::SegmentId segment) {
  // The segment stays in rebuilding_, so a watched buffer holding it
  // remains unavailable: an abandoned rebuild is an outage that did not
  // end, not one that quietly succeeded.
  ++report_.rebuilds_abandoned;
  metrics_->Increment("chaos.rebuilds_abandoned");
  if (flight_ != nullptr) {
    flight_->Record(sim_->now(), "recovery.abandoned",
                    "segment " + std::to_string(segment));
  }
  if (trace_ != nullptr) {
    trace_->Instant(trace::Category::kChaos, "recovery_abandoned",
                    sim_->now(), {trace::Arg("segment", segment)});
  }
}

Status FaultInjector::WatchBuffer(core::BufferId buffer) {
  if (manager_ == nullptr) {
    return FailedPreconditionError(
        "buffer watching needs a PoolManager binding");
  }
  LMP_ASSIGN_OR_RETURN(const core::BufferInfo info,
                       manager_->Describe(buffer));
  WatchedBuffer watched;
  watched.size = info.size;
  watched.segments = info.segments;
  watched_.emplace(buffer, std::move(watched));
  return Status::Ok();
}

void FaultInjector::OpenWindows(
    const std::vector<core::SegmentId>& segments) {
  if (segments.empty()) return;
  const SimTime now = sim_->now();
  for (auto& [id, watched] : watched_) {
    const bool hit = std::any_of(
        watched.segments.begin(), watched.segments.end(),
        [&](core::SegmentId seg) {
          return std::find(segments.begin(), segments.end(), seg) !=
                 segments.end();
        });
    if (!hit) continue;
    watched.ever_affected = true;
    if (watched.unavailable_since < 0) watched.unavailable_since = now;
  }
}

void FaultInjector::MaybeCloseWindows() {
  const SimTime now = sim_->now();
  for (auto& [id, watched] : watched_) {
    if (watched.unavailable_since < 0) continue;
    const bool still_unavailable = std::any_of(
        watched.segments.begin(), watched.segments.end(),
        [&](core::SegmentId seg) {
          if (rebuilding_.count(seg) > 0) return true;
          const core::SegmentInfo* info = manager_->segment_map().Find(seg);
          return info != nullptr &&
                 info->state == core::SegmentState::kLost;
        });
    if (still_unavailable) continue;
    watched.total_unavailable += now - watched.unavailable_since;
    watched.unavailable_since = -1;
    if (trace_ != nullptr) {
      trace_->Instant(trace::Category::kChaos, "buffer_available", now,
                      {trace::Arg("buffer", id)});
    }
  }
}

ChaosReport FaultInjector::report() const {
  ChaosReport out = report_;
  const SimTime now = sim_->now();
  for (const auto& [id, watched] : watched_) {
    out.total_unavailability += watched.total_unavailable;
    if (watched.unavailable_since >= 0) {
      out.total_unavailability += now - watched.unavailable_since;
    }
    if (watched.ever_affected) ++out.buffers_affected;
  }
  // Links still degraded: fold the bytes served since their baselines.
  for (const auto& [key, baseline] : degrade_baseline_) {
    FaultEvent probe;
    probe.pool_link = key < 0;
    if (key >= 0) probe.servers = {static_cast<cluster::ServerId>(key)};
    out.degraded_bytes_served += DegradedBytesBaseline(probe) - baseline;
  }
  return out;
}

}  // namespace lmp::chaos
