#include "chaos/fault_plan.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

namespace lmp::chaos {

namespace {

// "100ms" / "2s" / "500" (ns) -> SimTime.  Rejects negatives and garbage.
StatusOr<SimTime> ParseTime(std::string_view token) {
  double value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || value < 0) {
    return InvalidArgumentError("bad time value '" + std::string(token) +
                                "'");
  }
  const std::string_view suffix(ptr, static_cast<std::size_t>(end - ptr));
  if (suffix.empty() || suffix == "ns") return value;
  if (suffix == "us") return value * 1e3;
  if (suffix == "ms") return value * 1e6;
  if (suffix == "s") return value * 1e9;
  return InvalidArgumentError("bad time suffix '" + std::string(suffix) +
                              "'");
}

StatusOr<double> ParseDouble(std::string_view token) {
  double value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("bad number '" + std::string(token) + "'");
  }
  return value;
}

// "s3" -> 3.
StatusOr<cluster::ServerId> ParseServer(std::string_view token) {
  if (token.size() < 2 || token[0] != 's') {
    return InvalidArgumentError("bad server '" + std::string(token) +
                                "' (want s<N>)");
  }
  std::uint32_t id = 0;
  auto [ptr, ec] =
      std::from_chars(token.data() + 1, token.data() + token.size(), id);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return InvalidArgumentError("bad server '" + std::string(token) + "'");
  }
  return static_cast<cluster::ServerId>(id);
}

std::vector<std::string_view> SplitOn(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const std::size_t pos = s.find(sep);
    parts.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return parts;
}

// "bw=0.25,lat=2.0,down=10ms,count=3,period=50ms" applied onto `event`.
Status ApplyParams(std::string_view params, FaultEvent* event) {
  for (std::string_view kv : SplitOn(params, ',')) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError("bad param '" + std::string(kv) +
                                  "' (want key=value)");
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string_view value = kv.substr(eq + 1);
    if (key == "bw") {
      LMP_ASSIGN_OR_RETURN(event->bandwidth_mult, ParseDouble(value));
    } else if (key == "lat") {
      LMP_ASSIGN_OR_RETURN(event->latency_mult, ParseDouble(value));
    } else if (key == "down") {
      LMP_ASSIGN_OR_RETURN(event->down_ns, ParseTime(value));
    } else if (key == "period") {
      LMP_ASSIGN_OR_RETURN(event->period_ns, ParseTime(value));
    } else if (key == "count") {
      LMP_ASSIGN_OR_RETURN(const double count, ParseDouble(value));
      event->flap_count = static_cast<int>(count);
    } else {
      return InvalidArgumentError("unknown param '" + std::string(key) +
                                  "'");
    }
  }
  return Status::Ok();
}

// TARGET is "pool" or "s<K>[+s<M>...]".
Status ApplyTarget(std::string_view target, FaultEvent* event) {
  if (target == "pool") {
    event->pool_link = true;
    return Status::Ok();
  }
  for (std::string_view one : SplitOn(target, '+')) {
    LMP_ASSIGN_OR_RETURN(const cluster::ServerId id, ParseServer(one));
    event->servers.push_back(id);
  }
  return Status::Ok();
}

StatusOr<FaultEvent> ParseSpec(std::string_view spec) {
  const std::vector<std::string_view> parts = SplitOn(spec, ':');
  if (parts.size() < 2) {
    return InvalidArgumentError("bad event '" + std::string(spec) +
                                "' (want TIME:KIND[:TARGET[:PARAMS]])");
  }
  FaultEvent event;
  LMP_ASSIGN_OR_RETURN(event.at, ParseTime(parts[0]));
  const std::string_view kind = parts[1];
  if (kind == "crash") {
    event.kind = FaultKind::kServerCrash;
  } else if (kind == "recover") {
    event.kind = FaultKind::kServerRecover;
  } else if (kind == "degrade") {
    event.kind = FaultKind::kLinkDegrade;
  } else if (kind == "restore") {
    event.kind = FaultKind::kLinkRestore;
  } else if (kind == "flap") {
    event.kind = FaultKind::kLinkFlap;
  } else if (kind == "rack") {
    event.kind = FaultKind::kRackFail;
  } else {
    return InvalidArgumentError("unknown fault kind '" + std::string(kind) +
                                "'");
  }
  if (parts.size() >= 3) LMP_RETURN_IF_ERROR(ApplyTarget(parts[2], &event));
  if (parts.size() >= 4) LMP_RETURN_IF_ERROR(ApplyParams(parts[3], &event));
  if (parts.size() > 4) {
    return InvalidArgumentError("trailing fields in '" + std::string(spec) +
                                "'");
  }

  // Per-kind validation, so a bad plan fails at parse time rather than
  // halfway through a sweep.
  const bool needs_server = !event.pool_link;
  switch (event.kind) {
    case FaultKind::kServerCrash:
    case FaultKind::kServerRecover:
      if (event.pool_link || event.servers.size() != 1) {
        return InvalidArgumentError("crash/recover wants exactly one s<N>");
      }
      break;
    case FaultKind::kLinkDegrade:
      if (needs_server && event.servers.size() != 1) {
        return InvalidArgumentError("degrade wants one s<N> or pool");
      }
      if (event.bandwidth_mult <= 0.0 || event.bandwidth_mult > 1.0 ||
          event.latency_mult < 1.0) {
        return InvalidArgumentError(
            "degrade wants bw in (0,1] and lat >= 1");
      }
      break;
    case FaultKind::kLinkRestore:
      if (needs_server && event.servers.size() != 1) {
        return InvalidArgumentError("restore wants one s<N> or pool");
      }
      break;
    case FaultKind::kLinkFlap:
      if (event.pool_link || event.servers.size() != 1) {
        return InvalidArgumentError("flap wants exactly one s<N>");
      }
      if (event.flap_count <= 0 || event.down_ns <= 0 ||
          event.period_ns <= event.down_ns) {
        return InvalidArgumentError(
            "flap wants count>0, down>0, period>down");
      }
      break;
    case FaultKind::kRackFail:
      if (event.pool_link || event.servers.empty()) {
        return InvalidArgumentError("rack wants s<K>+s<M>+...");
      }
      break;
  }
  return event;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kServerCrash:
      return "crash";
    case FaultKind::kServerRecover:
      return "recover";
    case FaultKind::kLinkDegrade:
      return "degrade";
    case FaultKind::kLinkRestore:
      return "restore";
    case FaultKind::kLinkFlap:
      return "flap";
    case FaultKind::kRackFail:
      return "rack";
  }
  return "unknown";
}

void FaultPlan::Add(FaultEvent event) {
  // Stable by time: ties keep insertion order, so a plan file's listing
  // order is the execution order within one instant.
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), event.at,
      [](SimTime at, const FaultEvent& e) { return at < e.at; });
  events_.insert(pos, std::move(event));
}

StatusOr<FaultPlan> FaultPlan::FromConfig(const Config& config) {
  FaultPlan plan;
  for (int i = 0;; ++i) {
    const std::string key = "e" + std::to_string(i);
    if (!config.Has(key)) break;
    LMP_ASSIGN_OR_RETURN(const std::string spec, config.GetString(key));
    auto event_or = ParseSpec(spec);
    if (!event_or.ok()) {
      return Status(event_or.status().code(),
                    key + ": " + event_or.status().message());
    }
    plan.Add(std::move(event_or).value());
  }
  return plan;
}

StatusOr<FaultPlan> FaultPlan::Parse(std::string_view text) {
  LMP_ASSIGN_OR_RETURN(const Config config, Config::Parse(text));
  return FromConfig(config);
}

StatusOr<FaultPlan> FaultPlan::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open fault plan '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str());
}

FaultPlan& FaultPlan::CrashAt(SimTime at, cluster::ServerId server) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kServerCrash;
  e.servers = {server};
  Add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::RecoverAt(SimTime at, cluster::ServerId server) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kServerRecover;
  e.servers = {server};
  Add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::DegradeLinkAt(SimTime at, cluster::ServerId server,
                                    double bandwidth_mult,
                                    double latency_mult) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDegrade;
  e.servers = {server};
  e.bandwidth_mult = bandwidth_mult;
  e.latency_mult = latency_mult;
  Add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::RestoreLinkAt(SimTime at, cluster::ServerId server) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkRestore;
  e.servers = {server};
  Add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::DegradePoolLinkAt(SimTime at, double bandwidth_mult,
                                        double latency_mult) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDegrade;
  e.pool_link = true;
  e.bandwidth_mult = bandwidth_mult;
  e.latency_mult = latency_mult;
  Add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::RestorePoolLinkAt(SimTime at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkRestore;
  e.pool_link = true;
  Add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::FlapLinkAt(SimTime at, cluster::ServerId server,
                                 SimTime down, int count, SimTime period,
                                 double bandwidth_mult, double latency_mult) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkFlap;
  e.servers = {server};
  e.down_ns = down;
  e.flap_count = count;
  e.period_ns = period;
  e.bandwidth_mult = bandwidth_mult;
  e.latency_mult = latency_mult;
  Add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::RackFailAt(SimTime at,
                                 std::vector<cluster::ServerId> servers) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRackFail;
  e.servers = std::move(servers);
  Add(std::move(e));
  return *this;
}

std::vector<cluster::ServerId> FaultPlan::CrashVictims() const {
  std::vector<cluster::ServerId> victims;
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kServerCrash && e.kind != FaultKind::kRackFail) {
      continue;
    }
    for (cluster::ServerId s : e.servers) {
      if (std::find(victims.begin(), victims.end(), s) == victims.end()) {
        victims.push_back(s);
      }
    }
  }
  return victims;
}

}  // namespace lmp::chaos
