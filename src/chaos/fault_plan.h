// FaultPlan: a declarative, deterministic schedule of failures (§5
// "Failure domains").
//
// A plan is an ordered list of FaultEvents pinned to simulated time —
// server crashes/recoveries, link degradations/restorations/flaps, and
// correlated rack failures.  Plans come from three places: programmatic
// builders (tests), lmp::Config text (benches, `--fault-plan=`), and plan
// files under examples/.  Identical plan + seed must reproduce identical
// traces byte-for-byte, so nothing here consults wall clocks or global
// state.
//
// Text syntax: each event is one `e<N>=SPEC` pair, N counting up from 0
// with no gaps (lmp::Config values cannot contain spaces, so a SPEC is a
// single compact token):
//
//   e0=100ms:crash:s1
//   e1=150ms:degrade:s2:bw=0.25,lat=2.0
//   e2=300ms:restore:s2
//   e3=400ms:degrade:pool:bw=0.5
//   e4=500ms:recover:s1
//   e5=600ms:flap:s3:down=10ms,count=3,period=50ms,bw=0.05,lat=4.0
//   e6=900ms:rack:s0+s1
//
// Times take ns/us/ms/s suffixes (bare numbers are ns).  `pool` targets
// the physical pool box's ports; `s<K>+s<M>+...` names a correlated group.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cluster/server.h"
#include "common/config.h"
#include "common/status.h"
#include "common/units.h"

namespace lmp::chaos {

enum class FaultKind {
  kServerCrash,
  kServerRecover,
  kLinkDegrade,
  kLinkRestore,
  kLinkFlap,  // expanded to degrade/restore pairs when scheduled
  kRackFail,  // correlated crash of every listed server
};

std::string_view FaultKindName(FaultKind kind);

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kServerCrash;
  // Victims.  Crash/recover/degrade/restore use servers[0]; rack failures
  // list the whole blast radius.  Empty when pool_link is set.
  std::vector<cluster::ServerId> servers;
  bool pool_link = false;  // degrade/restore the pool box instead
  // Link health while degraded (absolute vs the healthy profile).
  double bandwidth_mult = 1.0;
  double latency_mult = 1.0;
  // Flap shape: `count` outages of `down_ns` each, starting `period_ns`
  // apart (period must exceed down).
  SimTime down_ns = 0;
  int flap_count = 0;
  SimTime period_ns = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // Parses plan text (see file header).  Events may be listed in any
  // order; the plan keeps them sorted by time (stable on ties).
  static StatusOr<FaultPlan> Parse(std::string_view text);
  // Reads events e0..eN from an already-parsed Config (the form benches
  // get from --fault-plan= files).
  static StatusOr<FaultPlan> FromConfig(const Config& config);
  // Loads and parses a plan file.
  static StatusOr<FaultPlan> ParseFile(const std::string& path);

  // Programmatic builders (chainable) --------------------------------------
  FaultPlan& CrashAt(SimTime at, cluster::ServerId server);
  FaultPlan& RecoverAt(SimTime at, cluster::ServerId server);
  FaultPlan& DegradeLinkAt(SimTime at, cluster::ServerId server,
                           double bandwidth_mult, double latency_mult = 1.0);
  FaultPlan& RestoreLinkAt(SimTime at, cluster::ServerId server);
  FaultPlan& DegradePoolLinkAt(SimTime at, double bandwidth_mult,
                               double latency_mult = 1.0);
  FaultPlan& RestorePoolLinkAt(SimTime at);
  FaultPlan& FlapLinkAt(SimTime at, cluster::ServerId server, SimTime down,
                        int count, SimTime period,
                        double bandwidth_mult = 0.05,
                        double latency_mult = 4.0);
  FaultPlan& RackFailAt(SimTime at, std::vector<cluster::ServerId> servers);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  // Servers crashed by this plan (crash + rack events), deduplicated in
  // first-crash order — what bench_failure uses to pick victims.
  std::vector<cluster::ServerId> CrashVictims() const;

 private:
  void Add(FaultEvent event);  // stable insertion by event time

  std::vector<FaultEvent> events_;
};

}  // namespace lmp::chaos
