// FaultInjector: replays a FaultPlan against a live deployment and
// measures recovery SLOs.
//
// The injector sits across the repo's two faces (ARCHITECTURE.md): when a
// server crashes it drives the FUNCTIONAL recovery immediately —
// PoolManager::OnServerCrash failover, ReplicationManager redundancy
// restoration, XOR-erasure rebuilds — then prices the bytes those
// recoveries moved as TIMING flows on the fluid simulator's fabric.  A
// recovered segment is functionally readable at once (the paper's instant
// failover), but counts as "not yet redundant"/"unavailable" until its
// priced transfer completes, which is what time-to-redundancy and
// unavailability windows report.
//
// Recovery transfers race the plan's link degradations: a transfer whose
// endpoint is crashed or whose link bandwidth is at/below
// `down_threshold` retries with bounded exponential backoff before being
// abandoned.
//
// Everything is driven by sim time (timers + flow completions), so the
// same plan and seed reproduce byte-identical traces and metrics.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "chaos/fault_plan.h"
#include "cluster/cluster.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "core/erasure.h"
#include "core/pool_manager.h"
#include "core/replication.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::trace {
class TraceCollector;
}

namespace lmp::obs {
class FlightRecorder;
}

namespace lmp::chaos {

struct InjectorOptions {
  // Retry-with-backoff bound for recovery transfers racing a degradation
  // window: attempt, then retry after backoff, 2x backoff, 4x backoff, ...
  // up to max_transfer_retries retries before the transfer is abandoned.
  int max_transfer_retries = 4;
  SimTime retry_backoff = Milliseconds(1);
  // A link whose bandwidth multiplier is at/below this is treated as down
  // for new recovery transfers (starting a flow through it would still
  // "work" in the fluid model, just glacially).
  double down_threshold = 0.05;
};

// Recovery SLOs and bookkeeping, also exported as chaos.* metrics.
struct ChaosReport {
  int crashes = 0;
  int recoveries = 0;
  int link_degrades = 0;
  int link_restores = 0;
  int segments_lost = 0;      // no replica to fail over to at crash time
  int segments_rebuilt = 0;   // erasure rebuilds whose transfer completed
  int rebuilds_abandoned = 0; // double loss or retry budget exhausted
  int replicas_recreated = 0;
  Bytes bytes_rereplicated = 0;  // replication + erasure recovery traffic
  int transfer_retries = 0;
  // Max over recovery windows of (last recovery transfer done - crash).
  SimTime max_time_to_redundancy = 0;
  // Summed unavailability across watched buffers; windows still open are
  // closed at the report's query time.
  SimTime total_unavailability = 0;
  int buffers_affected = 0;
  // Bytes served by degraded ports while degraded.
  double degraded_bytes_served = 0;
};

class FaultInjector {
 public:
  // sim + topology are required; the rest are optional layers the injector
  // drives when present.  With no PoolManager (e.g. the physical baseline)
  // crashes only mark cluster state — pooled data on the pool box survives
  // server crashes, which is exactly the contrast bench_chaos shows.
  struct Bindings {
    sim::FluidSimulator* sim = nullptr;
    fabric::Topology* topology = nullptr;
    core::PoolManager* manager = nullptr;
    cluster::Cluster* cluster = nullptr;  // required when manager is null
    core::ReplicationManager* replication = nullptr;
    core::XorErasureManager* erasure = nullptr;
  };

  explicit FaultInjector(Bindings bindings, InjectorOptions options = {});

  // Applies one event now (at sim->now(); the event's `at` is ignored).
  Status Apply(const FaultEvent& event);

  // Schedules every plan event on the simulator's timer queue; flaps are
  // expanded into degrade/restore pairs.  Apply errors surface on the
  // first ApplyError() query rather than aborting the run.
  Status SchedulePlan(const FaultPlan& plan);

  // Tracks a buffer's unavailability windows (time any of its segments is
  // lost or awaiting a rebuild transfer).  Logical deployments only.
  Status WatchBuffer(core::BufferId buffer);

  // Recovery transfers still in flight or awaiting retry.
  int pending_recoveries() const { return outstanding_; }

  // First error hit by a timer-driven Apply (Ok when none).
  const Status& ApplyError() const { return apply_error_; }

  // Snapshot of the SLOs at the current sim time (open unavailability
  // windows are closed at now for the copy; state is not disturbed).
  ChaosReport report() const;

  void set_trace(trace::TraceCollector* collector) { trace_ = collector; }
  void set_metrics(MetricsRegistry* registry);
  // With a recorder bound, every fault and recovery step is logged into
  // its ring, and each server crash (rack failures crash several servers,
  // snapshotting once per victim) freezes a postmortem of the events
  // leading up to it.  The recorder must outlive the injector.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }
  const InjectorOptions& options() const { return options_; }

  // Invoked after every successfully applied event (flaps notify once when
  // their degrade/restore pairs are scheduled).  The control plane
  // subscribes here to trigger out-of-band re-solves on crash/recover.
  // One listener; setting replaces the previous one.
  using EventListener = std::function<void(const FaultEvent&)>;
  void set_event_listener(EventListener listener) {
    listener_ = std::move(listener);
  }

 private:
  struct WatchedBuffer {
    Bytes size = 0;
    std::vector<core::SegmentId> segments;
    SimTime unavailable_since = -1;  // < 0: currently available
    SimTime total_unavailable = 0;
    bool ever_affected = false;
  };

  Status Dispatch(const FaultEvent& event);
  Status ApplyCrash(cluster::ServerId server);
  Status ApplyRecover(cluster::ServerId server);
  Status ApplyDegrade(const FaultEvent& event);
  Status ApplyRestore(const FaultEvent& event);

  // Functional recovery after a crash, then pricing of the moved bytes.
  Status RecoverAfterCrash(cluster::ServerId server,
                           const std::vector<core::SegmentId>& lost);
  // Starts (or schedules a retry of) one recovery transfer.
  void StartRecoveryTransfer(cluster::ServerId src, cluster::ServerId dst,
                             Bytes bytes, core::SegmentId segment,
                             int attempt);
  void FinishRecoveryTransfer(core::SegmentId segment, Bytes bytes);
  void AbandonRecoveryTransfer(core::SegmentId segment);

  bool ServerCrashed(cluster::ServerId server) const;
  cluster::Cluster* cluster_ptr() const;
  // Deterministic live source server != dst, or dst itself when none.
  cluster::ServerId PickLiveSource(cluster::ServerId dst) const;

  void OpenWindows(const std::vector<core::SegmentId>& segments);
  void MaybeCloseWindows();
  double DegradedBytesBaseline(const FaultEvent& event) const;

  sim::FluidSimulator* sim_;
  fabric::Topology* topology_;
  core::PoolManager* manager_;
  cluster::Cluster* cluster_;
  core::ReplicationManager* replication_;
  core::XorErasureManager* erasure_;
  InjectorOptions options_;

  ChaosReport report_;
  Status apply_error_;

  // Recovery-window tracking: the earliest unresolved crash opens the
  // window; it closes when no transfers remain outstanding.
  int outstanding_ = 0;
  SimTime window_start_ = -1;

  // Segments whose rebuild transfer has not completed; reads succeed
  // functionally but the buffer counts as unavailable until drained.
  std::unordered_map<core::SegmentId, Bytes> rebuilding_;

  std::unordered_map<core::BufferId, WatchedBuffer> watched_;

  // BytesServed() baseline per degraded port owner (server index, or -1
  // for the pool), taken at degrade time and folded in at restore.
  std::unordered_map<int, double> degrade_baseline_;

  trace::TraceCollector* trace_ = nullptr;
  MetricsRegistry* metrics_ = &MetricsRegistry::Global();
  obs::FlightRecorder* flight_ = nullptr;
  EventListener listener_;
};

}  // namespace lmp::chaos
