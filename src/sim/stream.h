// SpanStream: a sequence of dependent transfers over a FluidSimulator.
//
// Models one hardware context (a core, a DMA engine) working through an
// ordered list of memory spans: span i+1 starts only when span i finishes.
// The vector-sum microbenchmark runs 14 of these concurrently, one per core,
// each walking its slice of the vector (local spans at DRAM speed, remote
// spans through the fabric link).  The request/op engine (src/ops) chains
// one SpanStream per priced access, advancing op state machines from the
// stream's completion callback.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/units.h"
#include "sim/fluid.h"

namespace lmp::sim {

struct Span {
  double bytes = 0;
  std::vector<ResourceId> path;
  double weight = 1.0;  // weighted max-min share under contention

  friend bool operator==(const Span& a, const Span& b) {
    return a.bytes == b.bytes && a.path == b.path && a.weight == b.weight;
  }
};

class SpanStream {
 public:
  using CompletionCallback = std::function<void(SpanStream&)>;

  // The stream registers its own continuation callbacks with `sim`; the
  // object must outlive the simulation run.  Completed span records are
  // released back to the simulator (the stream tracks its own start/end
  // times), so long runs stay bounded by the number of in-flight spans.
  SpanStream(FluidSimulator* sim, std::vector<Span> spans);

  SpanStream(const SpanStream&) = delete;
  SpanStream& operator=(const SpanStream&) = delete;

  // Completion callback, fired once when the last span finishes.  ALWAYS
  // deferred through a zero-delay timer — never invoked synchronously from
  // inside Start(), even for degenerate chains (empty span lists, zero-byte
  // spans, single-span chains) — so the callback may freely start new
  // streams, destroy this one, or re-enter the simulator.  Set before
  // Start(); a callback set on an already-done stream is also deferred.
  void set_on_complete(CompletionCallback cb);

  // Begins the first span at the simulator's current time.
  void Start();

  bool done() const { return done_; }
  SimTime start_time() const { return start_time_; }
  SimTime end_time() const { return end_time_; }
  double total_bytes() const { return total_bytes_; }
  std::size_t span_count() const { return spans_.size(); }

 private:
  void StartNext();
  void Complete();

  FluidSimulator* sim_;
  std::vector<Span> spans_;
  std::size_t next_ = 0;
  bool started_ = false;
  bool done_ = false;
  SimTime start_time_ = 0;
  SimTime end_time_ = 0;
  double total_bytes_ = 0;
  CompletionCallback on_complete_;
};

struct ParallelRunResult {
  SimTime start = 0;
  SimTime end = 0;
  double bytes = 0;
  double gbps = 0;
  // Solver work done during this run (delta of the simulator's counters).
  SolverStats solver;
};

// Starts every stream at the current simulated time, runs the simulator to
// completion, and reports the aggregate bandwidth (total bytes over the
// makespan) — the quantity the paper's Figures 2–5 plot.
ParallelRunResult RunStreams(FluidSimulator* sim,
                             std::vector<std::unique_ptr<SpanStream>> streams);

}  // namespace lmp::sim
