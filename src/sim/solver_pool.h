// SolverPool: a fixed-size work crew for the sharded fluid solver.
//
// The pool owns `threads - 1` long-lived worker threads; Run(count, fn)
// executes fn(0..count-1) across the workers *and* the calling thread, and
// returns only when every index has completed.  Tasks are claimed from a
// shared atomic cursor, so the assignment of task -> thread is arbitrary —
// callers must hand the pool tasks whose writes are disjoint (the solver
// guarantees this by partitioning flows into connected components that
// share no resource).  Determinism therefore does not depend on the
// schedule: every task computes the same bytes no matter which thread runs
// it or in what order.
//
// The pool never spins between Run() calls (workers block on a condition
// variable), so an idle pool costs nothing but memory.  Run() is not
// reentrant and must always be called from the same owner thread — the
// simulator, which is itself single-threaded at the API surface.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lmp::sim {

class SolverPool {
 public:
  // threads >= 1; spawns threads - 1 workers (Run always uses the caller
  // as the remaining worker, so threads == 1 degenerates to inline calls).
  explicit SolverPool(int threads);
  ~SolverPool();

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  int threads() const { return threads_; }

  // Invokes fn(i) exactly once for every i in [0, count), across workers
  // plus the calling thread; blocks until all invocations return.
  void Run(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  // Claims tasks from next_ until the batch is drained; returns the number
  // of tasks this thread ran.
  std::size_t DrainTasks();

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new batch
  std::condition_variable done_cv_;  // Run() waits for batch completion
  std::uint64_t generation_ = 0;     // bumped per Run() batch (guarded by mu_)
  bool stop_ = false;                // guarded by mu_

  // Batch state, published under mu_ before generation_ is bumped.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::atomic<std::size_t> next_{0};     // task claim cursor
  std::atomic<std::size_t> pending_{0};  // tasks not yet finished
};

}  // namespace lmp::sim
