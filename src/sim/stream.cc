#include "sim/stream.h"

#include "common/logging.h"

namespace lmp::sim {

SpanStream::SpanStream(FluidSimulator* sim, std::vector<Span> spans)
    : sim_(sim), spans_(std::move(spans)) {
  LMP_CHECK(sim_ != nullptr);
  for (const Span& s : spans_) total_bytes_ += s.bytes;
}

void SpanStream::set_on_complete(CompletionCallback cb) {
  LMP_CHECK(!on_complete_) << "SpanStream completion callback set twice";
  on_complete_ = std::move(cb);
  if (done_ && on_complete_) Complete();
}

void SpanStream::Start() {
  LMP_CHECK(!started_) << "SpanStream started twice";
  started_ = true;
  start_time_ = sim_->now();
  StartNext();
}

void SpanStream::StartNext() {
  if (next_ >= spans_.size()) {
    done_ = true;
    end_time_ = sim_->now();
    Complete();
    return;
  }
  const Span& s = spans_[next_++];
  // Zero-byte spans and empty paths complete inside StartFlow, but their
  // callback — like every flow callback — arrives via a deferred timer, so
  // a chain of degenerate spans never recurses through StartNext.
  sim_->StartFlow(s.bytes, s.path,
                  [this](FlowId f, SimTime) {
                    // The stream keeps its own aggregates; retire the
                    // record so memory tracks in-flight, not total, spans.
                    (void)sim_->ReleaseRecord(f);
                    StartNext();
                  },
                  s.weight);
}

void SpanStream::Complete() {
  if (!on_complete_) return;
  // Defer through a zero-delay timer: for an empty span list StartNext()
  // completes synchronously inside Start(), and even a completion arriving
  // from a flow callback sits inside the simulator's dispatch loop.  The
  // deferral lets the callback destroy this stream or start new ones
  // without re-entering either context.  The callable is moved into the
  // timer so destroying the stream before it fires cannot free it, but the
  // stream itself must stay alive until the timer runs (op layers keep the
  // stream inside the op it completes).
  auto cb = std::move(on_complete_);
  on_complete_ = nullptr;
  sim_->ScheduleAt(sim_->now(), [this, cb = std::move(cb)](SimTime) {
    cb(*this);
  });
}

ParallelRunResult RunStreams(
    FluidSimulator* sim, std::vector<std::unique_ptr<SpanStream>> streams) {
  ParallelRunResult result;
  const SolverStats before = sim->solver_stats();
  result.start = sim->now();
  for (auto& s : streams) s->Start();
  // Step until every stream completes rather than draining the simulator:
  // with no external timers this is identical to Run(), but when a fault
  // plan has timers scheduled past the workload, Run() would credit their
  // idle tail to the streams' elapsed time.
  auto all_done = [&] {
    for (const auto& s : streams) {
      if (!s->done()) return false;
    }
    return true;
  };
  while (!all_done() && sim->Step()) {
  }
  result.end = sim->now();
  const SolverStats& after = sim->solver_stats();
  result.solver.recompute_calls =
      after.recompute_calls - before.recompute_calls;
  result.solver.flows_touched = after.flows_touched - before.flows_touched;
  result.solver.full_solves = after.full_solves - before.full_solves;
  result.solver.solve_ns = after.solve_ns - before.solve_ns;
  for (auto& s : streams) {
    LMP_CHECK(s->done()) << "stream did not finish";
    result.bytes += s->total_bytes();
  }
  result.gbps = ToGBps(result.bytes, result.end - result.start);
  return result;
}

}  // namespace lmp::sim
