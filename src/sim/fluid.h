// Fluid-flow network simulator.
//
// Memory traffic is modelled as fluid flows: a Flow moves a byte count
// through an ordered set of Resources (a core's load port, a DRAM device, a
// CXL/UPI link).  At any instant, active flows share each resource's
// capacity max-min fairly (progressive filling); rates are piecewise
// constant between events, and events are flow arrivals/completions and
// explicit timers.  This reproduces the aggregate-bandwidth behaviour the
// paper measures (14 cores saturating local DRAM at 97 GB/s, or a remote
// link at 34.5/21 GB/s) while staying deterministic and fast.
//
// Rate recomputation is incremental: each resource keeps an index of the
// flows crossing it, and an arrival/completion/capacity change re-solves
// only the connected component of flows that share a resource (directly or
// transitively) with the change.  Components never interact — a freeze in
// one component touches no accumulator of another — so the component solve
// is bit-exact with a full progressive-filling pass (enforceable with
// set_solver_crosscheck).  Scratch buffers persist across solves, so the
// steady path allocates nothing.
//
// The simulator is single-threaded and owned by one experiment; it is not
// thread-safe by design (CP.1 does not apply: no concurrency is shared).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp {
class MetricsRegistry;
}

namespace lmp::trace {
class TraceCollector;
}

namespace lmp::sim {

using ResourceId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr FlowId kInvalidFlow = 0;

struct FlowRecord {
  SimTime start = 0;
  SimTime end = 0;       // valid once done
  double bytes = 0;
  bool done = false;
};

// Solver introspection: how much work rate recomputation is doing.
struct SolverStats {
  std::uint64_t recompute_calls = 0;  // solver invocations (any scope)
  std::uint64_t flows_touched = 0;    // flows re-rated, summed over calls
  std::uint64_t full_solves = 0;      // calls that re-rated every active flow
  std::uint64_t solve_ns = 0;         // wall ns in the solver (needs
                                      // set_solver_timing(true); else 0)
};

// What happens to a FlowRecord once its flow completes.  Long-running
// experiments that never query history should drop completed records so
// memory stays bounded by the number of *active* flows.
enum class RecordRetention {
  kKeepAll,        // records live until ReleaseRecord() (default)
  kDropCompleted,  // records are erased right after the completion callback
};

class FluidSimulator {
 public:
  using FlowCallback = std::function<void(FlowId, SimTime)>;
  using TimerCallback = std::function<void(SimTime)>;

  FluidSimulator() = default;

  // Resources -------------------------------------------------------------

  // capacity is in bytes per simulated second; must be > 0.
  ResourceId AddResource(std::string name, BytesPerSec capacity);

  // Dynamically rescale a resource (used to model uncore-frequency changes
  // and degraded links).  Takes effect at the current simulated time.
  Status SetCapacity(ResourceId id, BytesPerSec capacity);

  BytesPerSec capacity(ResourceId id) const;

  // Name given to AddResource (for trace/diagnostic labels).
  const std::string& ResourceName(ResourceId id) const;

  // Instantaneous utilization in [0, 1]: sum of allocated rates / capacity.
  double Utilization(ResourceId id) const;

  // Exponentially-weighted average utilization, updated as time advances.
  // Latency models use this rather than the instantaneous value so short
  // gaps between back-to-back flows do not read as an idle link.
  double SmoothedUtilization(ResourceId id) const;

  // Flows ------------------------------------------------------------------

  // Starts a flow of `bytes` through `path` at the current time.  An empty
  // path or zero bytes completes immediately (the record is final when
  // StartFlow returns) but its callback is deferred through a zero-delay
  // timer, so callbacks never re-enter the simulator from inside StartFlow.
  // `weight` sets the flow's share under contention (weighted max-min:
  // a weight-2 flow gets twice a weight-1 flow's allocation at a shared
  // bottleneck) — the mechanism behind priority-aware experiments.
  FlowId StartFlow(double bytes, const std::vector<ResourceId>& path,
                   FlowCallback on_done = nullptr, double weight = 1.0);

  // Timers -----------------------------------------------------------------

  void ScheduleAt(SimTime when, TimerCallback cb);
  void ScheduleAfter(SimTime delay, TimerCallback cb);

  // Execution ---------------------------------------------------------------

  SimTime now() const { return now_; }

  // Advances until the next event (flow completion or timer) and processes
  // it.  Returns false when nothing remains.  A timer scheduled exactly at a
  // flow's completion instant fires first; the completion sweeps next step.
  bool Step();

  // Runs until no active flows or pending timers remain.
  void Run();

  // Runs until the given flow completes (and possibly others with it).
  Status RunUntilFlowDone(FlowId id);

  // Introspection -----------------------------------------------------------

  std::size_t active_flow_count() const { return active_.size(); }
  const FlowRecord* record(FlowId id) const;
  double FlowRate(FlowId id) const;  // current allocated rate, 0 if inactive

  // Total bytes that have fully traversed each resource so far.
  double BytesServed(ResourceId id) const;

  // Records -----------------------------------------------------------------

  // Drops the record of a completed flow (bounds memory in long runs where
  // the caller tracks its own history).  Fails on active or unknown flows.
  Status ReleaseRecord(FlowId id);

  void set_record_retention(RecordRetention policy) { retention_ = policy; }
  std::size_t record_count() const { return records_.size(); }

  // Solver ------------------------------------------------------------------

  // Incremental (component-scoped) rate recomputation is the default; turn
  // it off to force a full progressive-filling pass per event (baseline for
  // bench_solver; results are bit-identical either way).
  void set_incremental(bool on) { incremental_ = on; }
  bool incremental() const { return incremental_; }

  // Debug cross-check: after every incremental solve, run a full reference
  // solve and LMP_CHECK the rate vectors match bit-exactly.  Expensive —
  // tests only.
  void set_solver_crosscheck(bool on) { crosscheck_ = on; }

  // Accumulate wall-clock spent inside the solver into solver_stats().
  // Off by default (two clock reads per event); bench_solver turns it on.
  void set_solver_timing(bool on) { solver_timing_ = on; }

  const SolverStats& solver_stats() const { return stats_; }

  // Adds the stats accumulated since the previous export to `registry` as
  // counters fluid.solver.{recompute_calls,flows_touched,full_solves}.
  void ExportSolverMetrics(MetricsRegistry& registry);

  // Tracing -----------------------------------------------------------------

  // Optional event sink: flow begin/end spans (one track per flow id) and
  // per-solve rate-change instants.  Null (the default) disables emission
  // entirely; simulated results are identical either way.
  void set_trace(trace::TraceCollector* collector) { trace_ = collector; }
  trace::TraceCollector* trace() const { return trace_; }

 private:
  struct Resource {
    std::string name;
    BytesPerSec capacity = 0;
    double rate_sum = 0;       // sum of currently allocated flow rates
    double bytes_served = 0;
    // EWMA of utilization with time constant kUtilTau.
    double smoothed_util = 0;
    SimTime smoothed_at = 0;
  };

  struct Flow {
    double remaining = 0;
    std::vector<ResourceId> path;
    double rate = 0;
    double weight = 1.0;
    FlowCallback on_done;
    std::uint64_t visit_epoch = 0;  // component-BFS visited stamp
  };

  // Per-resource index entry: flows are stored in ascending-id order (ids
  // are issued monotonically) with one entry per path occurrence.  Flow
  // pointers stay valid because active_ is a node-based map.
  struct FlowEntry {
    FlowId id;
    Flow* flow;
  };

  struct Work {
    FlowId id;
    Flow* flow;
    bool frozen = false;
  };

  struct Timer {
    SimTime when;
    std::uint64_t seq;  // FIFO tiebreak
    TimerCallback cb;
    bool operator<(const Timer& o) const {
      return when == o.when ? seq < o.seq : when < o.when;
    }
  };

  static constexpr SimTime kUtilTau = Microseconds(10);

  // After this many consecutive whole-graph components, skip the component
  // BFS and solve fully for kFullSolveCooldown events before re-probing.
  static constexpr std::uint32_t kFullStreakThreshold = 4;
  static constexpr std::uint32_t kFullSolveCooldown = 32;

  // Rate solver.  SolveSeeded() re-rates the connected component(s) of the
  // resources in seed_res_ (or everything when incremental mode is off);
  // RecomputeAll() is the classic full pass; SolveWork() is the progressive
  // filling core both share, operating on work_ / comp_res_ / headroom_ /
  // unfrozen_.
  void SolveSeeded();
  void SolveSeededImpl();
  void RecomputeAll();
  void SolveWork();
  void CheckAgainstFullSolve() const;

  void IndexFlow(FlowId id, Flow& flow);
  void UnindexFlow(FlowId id, const std::vector<ResourceId>& path);

  void AdvanceTo(SimTime t);
  // Folded EWMA at time t without mutating the resource (no copies).
  double FoldedSmoothedUtil(const Resource& r, SimTime t) const;
  void UpdateSmoothedUtil(Resource& r, SimTime t) const;
  // Shortest remaining duration among active flows (the Zeno guard works in
  // durations, not absolute times); the single source of truth for Step().
  SimTime MinRemainingDuration() const;
  SimTime NextCompletionTime() const;
  void FinishRecord(FlowId id);

  std::vector<Resource> resources_;
  std::map<FlowId, Flow> active_;
  std::map<FlowId, FlowRecord> records_;
  std::vector<Timer> timers_;  // heap ordered by (when, seq)
  std::uint64_t next_flow_id_ = 1;
  std::uint64_t next_timer_seq_ = 0;
  SimTime now_ = 0;

  // Incremental-solver state: per-resource crossing-flow index plus
  // persistent scratch reused by every solve (no steady-state allocation).
  std::vector<std::vector<FlowEntry>> flows_at_;
  std::vector<double> headroom_;
  std::vector<double> unfrozen_;
  std::vector<std::uint64_t> res_epoch_;
  std::vector<ResourceId> seed_res_;
  std::vector<ResourceId> comp_res_;
  std::vector<Work> work_;
  std::uint64_t solve_epoch_ = 0;
  std::uint32_t full_solve_streak_ = 0;
  std::uint32_t full_solve_cooldown_ = 0;

  bool incremental_ = true;
  bool crosscheck_ = false;
  bool solver_timing_ = false;
  RecordRetention retention_ = RecordRetention::kKeepAll;
  trace::TraceCollector* trace_ = nullptr;
  SolverStats stats_;
  SolverStats exported_;  // high-water mark of the last ExportSolverMetrics
};

}  // namespace lmp::sim
