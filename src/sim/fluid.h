// Fluid-flow network simulator.
//
// Memory traffic is modelled as fluid flows: a Flow moves a byte count
// through an ordered set of Resources (a core's load port, a DRAM device, a
// CXL/UPI link).  At any instant, active flows share each resource's
// capacity max-min fairly (progressive filling); rates are piecewise
// constant between events, and events are flow arrivals/completions and
// explicit timers.  This reproduces the aggregate-bandwidth behaviour the
// paper measures (14 cores saturating local DRAM at 97 GB/s, or a remote
// link at 34.5/21 GB/s) while staying deterministic and fast.
//
// Rate recomputation is incremental: each resource keeps an index of the
// flows crossing it, and an arrival/completion/capacity change re-solves
// only the connected component of flows that share a resource (directly or
// transitively) with the change.  Components never interact — a freeze in
// one component touches no accumulator of another — so the component solve
// is bit-exact with a full progressive-filling pass (enforceable with
// set_solver_crosscheck).  Scratch buffers persist across solves, so the
// steady path allocates nothing.
//
// Sharded parallel solving: resources can carry a shard hint (one shard per
// rack; see fabric::Topology::AssignRackShards).  A shard crossed by no
// active cross-shard flow is *closed*: its connected components cannot
// extend past it, so an event that touches many closed shards (a completion
// sweep over a whole cluster, a batched wave of arrivals) partitions into
// independent per-shard solves that run concurrently on a fixed-size worker
// pool (set_threads).  Every task writes only its own shard's flows and
// resources and performs the same arithmetic in the same order no matter
// which thread runs it, so results — rates, byte counters, traces, metrics
// — are byte-identical for any thread count, including 1.  Unsharded
// resources and open shards fall back to a single sequential "spill" task,
// preserving the pre-shard behaviour bit-exactly.
//
// The simulator's API surface is single-threaded and owned by one
// experiment; worker threads exist only inside a solve and never touch
// state two tasks share.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp {
class Histogram;
class MetricsRegistry;
}

namespace lmp::trace {
class TraceCollector;
}

namespace lmp::sim {

class SolverPool;

using ResourceId = std::uint32_t;
using FlowId = std::uint64_t;
using ShardId = std::uint32_t;

inline constexpr FlowId kInvalidFlow = 0;

// Resources without an assigned shard solve on the sequential spill path.
inline constexpr ShardId kNoShard = std::numeric_limits<ShardId>::max();

struct FlowRecord {
  SimTime start = 0;
  SimTime end = 0;       // valid once done
  double bytes = 0;
  bool done = false;
};

// Solver introspection: how much work rate recomputation is doing.
struct SolverStats {
  std::uint64_t recompute_calls = 0;  // solver invocations (any scope)
  std::uint64_t flows_touched = 0;    // flows re-rated, summed over calls
  std::uint64_t full_solves = 0;      // calls that re-rated every active flow
  std::uint64_t shard_tasks = 0;      // solve tasks dispatched by the
                                      // partitioned path (full solves add 0)
  std::uint64_t parallel_solves = 0;  // solves that partitioned into > 1
                                      // task.  Counted even at threads == 1
                                      // so stats are thread-count-invariant.
  std::uint64_t solve_ns = 0;         // wall ns in the solver (needs
                                      // set_solver_timing(true); else 0)
};

// What happens to a FlowRecord once its flow completes.  Long-running
// experiments that never query history should drop completed records so
// memory stays bounded by the number of *active* flows.
enum class RecordRetention {
  kKeepAll,        // records live until ReleaseRecord() (default)
  kDropCompleted,  // records are erased right after the completion callback
};

class FluidSimulator {
 public:
  using FlowCallback = std::function<void(FlowId, SimTime)>;
  using TimerCallback = std::function<void(SimTime)>;

  FluidSimulator();
  ~FluidSimulator();

  // Resources -------------------------------------------------------------

  // capacity is in bytes per simulated second; must be > 0.
  ResourceId AddResource(std::string name, BytesPerSec capacity);

  // Dynamically rescale a resource (used to model uncore-frequency changes
  // and degraded links).  Takes effect at the current simulated time; the
  // utilization EWMA is folded at the old capacity first, so the elapsed
  // window is priced as it actually ran.
  Status SetCapacity(ResourceId id, BytesPerSec capacity);

  BytesPerSec capacity(ResourceId id) const;

  // Name given to AddResource (for trace/diagnostic labels).
  const std::string& ResourceName(ResourceId id) const;

  // Instantaneous utilization in [0, 1]: sum of allocated rates / capacity.
  double Utilization(ResourceId id) const;

  // Exponentially-weighted average utilization, updated as time advances.
  // Latency models use this rather than the instantaneous value so short
  // gaps between back-to-back flows do not read as an idle link.
  double SmoothedUtilization(ResourceId id) const;

  // Sharding ---------------------------------------------------------------

  // Tags a resource with a shard (e.g. its rack).  A hint, not a topology
  // constraint: flows may still cross shards, and the solver detects that
  // and routes the affected shards to the sequential spill path.  Must be
  // called while no flows are active (deployment setup time).
  void SetResourceShard(ResourceId id, ShardId shard);
  ShardId resource_shard(ResourceId id) const;

  // Fixed-size worker pool for solving independent shard components
  // concurrently.  n == 1 (default) solves inline; any n produces
  // byte-identical results.  Call at setup time, not mid-solve.
  void set_threads(int n);
  int threads() const { return threads_; }

  // Flows ------------------------------------------------------------------

  // Starts a flow of `bytes` through `path` at the current time.  An empty
  // path or zero bytes completes immediately (the record is final when
  // StartFlow returns) but its callback is deferred through a zero-delay
  // timer, so callbacks never re-enter the simulator from inside StartFlow.
  // `weight` sets the flow's share under contention (weighted max-min:
  // a weight-2 flow gets twice a weight-1 flow's allocation at a shared
  // bottleneck) — the mechanism behind priority-aware experiments.
  FlowId StartFlow(double bytes, const std::vector<ResourceId>& path,
                   FlowCallback on_done = nullptr, double weight = 1.0);

  // Batched arrivals: between BeginBatch and EndBatch, StartFlow and
  // SetCapacity defer rate recomputation; EndBatch runs one (sharded,
  // possibly parallel) solve over everything the batch touched.  Since no
  // simulated time passes inside a batch, the post-EndBatch state is
  // identical to per-call solving — the batch only amortizes solver work
  // (one component solve per shard instead of one per arrival).  Rates of
  // flows started inside the batch read 0 until EndBatch.  Batches cannot
  // nest and must be closed before Step/Run.
  void BeginBatch();
  void EndBatch();
  bool in_batch() const { return in_batch_; }

  // Timers -----------------------------------------------------------------

  void ScheduleAt(SimTime when, TimerCallback cb);
  void ScheduleAfter(SimTime delay, TimerCallback cb);

  // Execution ---------------------------------------------------------------

  SimTime now() const { return now_; }

  // Advances until the next event and processes it.  Returns false when
  // nothing remains.  A timer scheduled exactly at a flow's completion
  // instant fires first; the completion sweeps next step.  All timers due
  // at the same instant dispatch in one Step (FIFO within the batch);
  // timers a callback schedules at that same instant run on the next Step.
  bool Step();

  // Runs until no active flows or pending timers remain.
  void Run();

  // Runs until the given flow completes (and possibly others with it).
  Status RunUntilFlowDone(FlowId id);

  // Introspection -----------------------------------------------------------

  std::size_t active_flow_count() const { return active_.size(); }
  const FlowRecord* record(FlowId id) const;
  double FlowRate(FlowId id) const;  // current allocated rate, 0 if inactive

  // Total bytes that have fully traversed each resource so far.
  double BytesServed(ResourceId id) const;

  // Records -----------------------------------------------------------------

  // Drops the record of a completed flow (bounds memory in long runs where
  // the caller tracks its own history).  Fails on active or unknown flows.
  Status ReleaseRecord(FlowId id);

  void set_record_retention(RecordRetention policy) { retention_ = policy; }
  std::size_t record_count() const { return records_.size(); }

  // Solver ------------------------------------------------------------------

  // Incremental (component-scoped) rate recomputation is the default; turn
  // it off to force a full progressive-filling pass per event (baseline for
  // bench_solver; results are bit-identical either way).
  void set_incremental(bool on) { incremental_ = on; }
  bool incremental() const { return incremental_; }

  // Debug cross-check: after every incremental solve, run a full reference
  // solve and LMP_CHECK the rate vectors match bit-exactly.  Expensive —
  // tests only.
  void set_solver_crosscheck(bool on) { crosscheck_ = on; }

  // Accumulate wall-clock spent inside the solver into solver_stats().
  // Off by default (two clock reads per event); bench_solver turns it on.
  void set_solver_timing(bool on) { solver_timing_ = on; }

  const SolverStats& solver_stats() const { return stats_; }

  // Adds the stats accumulated since the previous export to `registry` as
  // counters fluid.solver.{recompute_calls,flows_touched,full_solves,
  // shard_tasks,parallel_solves}.  solve_ns is wall clock, so it exports
  // as wall.fluid.solver.solve_ns — excluded from the deterministic
  // metrics JSON (see MetricsRegistry::kWallPrefix).
  void ExportSolverMetrics(MetricsRegistry& registry);

  // Optional distribution sink: completed flows record their sim-time
  // duration into the registry's "fluid.flow_duration_ns" histogram.
  // Null (the default) records nothing; rates and events are identical
  // either way.
  void set_metrics(MetricsRegistry* registry);

  // Tracing -----------------------------------------------------------------

  // Optional event sink: flow begin/end spans (one track per flow id) and
  // per-solve rate-change instants.  Null (the default) disables emission
  // entirely; simulated results are identical either way.
  void set_trace(trace::TraceCollector* collector) { trace_ = collector; }
  trace::TraceCollector* trace() const { return trace_; }

 private:
  struct Resource {
    std::string name;
    BytesPerSec capacity = 0;
    double rate_sum = 0;       // sum of currently allocated flow rates
    double bytes_served = 0;
    // EWMA of utilization with time constant kUtilTau.  Invariant: the EWMA
    // is folded *before* rate_sum or capacity changes, so each elapsed
    // window is priced at the rate and capacity it actually ran with.
    double smoothed_util = 0;
    SimTime smoothed_at = 0;
  };

  struct Flow {
    double remaining = 0;
    std::vector<ResourceId> path;
    double rate = 0;
    double weight = 1.0;
    FlowCallback on_done;
    std::uint64_t visit_epoch = 0;  // component-BFS visited stamp
  };

  // Per-resource index entry: flows are stored in ascending-id order (ids
  // are issued monotonically) with one entry per path occurrence.  Flow
  // pointers stay valid because active_ is a node-based map.
  struct FlowEntry {
    FlowId id;
    Flow* flow;
  };

  struct Work {
    FlowId id;
    Flow* flow;
    double rate = 0;  // rate assigned by ProgressiveFill
    bool frozen = false;
  };

  // One solver task: the seed resources routed to it, plus the connected
  // component(s) it grew from them.  Tasks touch disjoint flows/resources,
  // so they can run on different pool threads without synchronization; the
  // vectors persist across solves as per-task scratch.
  struct ShardTask {
    std::vector<ResourceId> seeds;
    std::vector<ResourceId> comp_res;
    std::vector<Work> work;
  };

  struct Timer {
    SimTime when;
    std::uint64_t seq;  // FIFO tiebreak
    TimerCallback cb;
    bool operator<(const Timer& o) const {
      return when == o.when ? seq < o.seq : when < o.when;
    }
  };

  static constexpr SimTime kUtilTau = Microseconds(10);

  // After this many consecutive whole-graph components, skip the component
  // BFS and solve fully for kFullSolveCooldown events before re-probing.
  static constexpr std::uint32_t kFullStreakThreshold = 4;
  static constexpr std::uint32_t kFullSolveCooldown = 32;

  // Rate solver.  SolveSeeded() re-rates the connected component(s) of the
  // resources in seed_res_ (or everything when incremental mode is off):
  // SolveSeededImpl() partitions the seeds into per-closed-shard tasks plus
  // a spill task and runs SolveTask on each (on the pool when >1 task);
  // RecomputeAll() is the classic full pass.  ProgressiveFill() is the
  // weighted-max-min core every path shares — including the
  // CheckAgainstFullSolve oracle, so the reference cannot drift from the
  // production solver.
  void SolveSeeded();
  void SolveSeededImpl();
  void RecomputeAll();
  void SolveTask(ShardTask& task);
  static void ProgressiveFill(std::vector<Work>& work,
                              const std::vector<ResourceId>& comp_res,
                              std::vector<double>& headroom,
                              std::vector<double>& unfrozen);
  void CheckAgainstFullSolve() const;

  void IndexFlow(FlowId id, Flow& flow);
  void UnindexFlow(FlowId id, const std::vector<ResourceId>& path);
  // Maintains shard_cross_flows_ when a flow is indexed (+1) / removed (-1).
  void UpdateShardCrossings(const std::vector<ResourceId>& path, int delta);

  void AdvanceTo(SimTime t);
  // Folded EWMA at time t without mutating the resource (no copies).
  double FoldedSmoothedUtil(const Resource& r, SimTime t) const;
  void UpdateSmoothedUtil(Resource& r, SimTime t) const;
  // Shortest remaining duration among active flows (the Zeno guard works in
  // durations, not absolute times); the single source of truth for Step().
  SimTime MinRemainingDuration() const;
  SimTime NextCompletionTime() const;
  void FinishRecord(FlowId id);

  std::vector<Resource> resources_;
  std::map<FlowId, Flow> active_;
  std::map<FlowId, FlowRecord> records_;
  std::vector<Timer> timers_;  // heap ordered by (when, seq)
  std::uint64_t next_flow_id_ = 1;
  std::uint64_t next_timer_seq_ = 0;
  SimTime now_ = 0;

  // Incremental-solver state: per-resource crossing-flow index plus
  // persistent scratch reused by every solve (no steady-state allocation).
  // headroom_/unfrozen_ are indexed by ResourceId and shared by all tasks
  // of a solve — tasks touch disjoint resources, so there are no races.
  std::vector<std::vector<FlowEntry>> flows_at_;
  std::vector<double> headroom_;
  std::vector<double> unfrozen_;
  std::vector<std::uint64_t> res_epoch_;
  std::vector<ResourceId> seed_res_;
  std::vector<ShardTask> tasks_;
  std::uint64_t solve_epoch_ = 0;
  std::uint32_t full_solve_streak_ = 0;
  std::uint32_t full_solve_cooldown_ = 0;

  // Shard hints and bookkeeping.  shard_cross_flows_[s] counts active flows
  // that touch shard s and at least one resource outside it; zero means the
  // shard is closed and its components can solve in parallel.
  std::vector<ShardId> resource_shard_;
  std::vector<std::uint32_t> shard_cross_flows_;
  std::vector<std::size_t> shard_task_;        // shard -> task idx this solve
  std::vector<std::uint64_t> shard_task_epoch_;
  std::vector<ShardId> path_shards_;           // UpdateShardCrossings scratch

  std::unique_ptr<SolverPool> pool_;
  int threads_ = 1;

  // Event-loop scratch, reused across Steps to amortize heap churn at high
  // flow counts (moved out/in so a re-entrant Step degrades gracefully).
  std::vector<Timer> timer_batch_;
  std::vector<Flow*> tied_scratch_;
  std::vector<std::pair<FlowId, FlowCallback>> done_scratch_;

  // Batched-arrival state.
  bool in_batch_ = false;
  std::vector<ResourceId> batch_seed_;

  bool incremental_ = true;
  bool crosscheck_ = false;
  bool solver_timing_ = false;
  RecordRetention retention_ = RecordRetention::kKeepAll;
  Histogram* flow_duration_hist_ = nullptr;  // owned by the metrics registry
  trace::TraceCollector* trace_ = nullptr;
  SolverStats stats_;
  SolverStats exported_;  // high-water mark of the last ExportSolverMetrics
};

}  // namespace lmp::sim
