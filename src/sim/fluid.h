// Fluid-flow network simulator.
//
// Memory traffic is modelled as fluid flows: a Flow moves a byte count
// through an ordered set of Resources (a core's load port, a DRAM device, a
// CXL/UPI link).  At any instant, active flows share each resource's
// capacity max-min fairly (progressive filling); rates are piecewise
// constant between events, and events are flow arrivals/completions and
// explicit timers.  This reproduces the aggregate-bandwidth behaviour the
// paper measures (14 cores saturating local DRAM at 97 GB/s, or a remote
// link at 34.5/21 GB/s) while staying deterministic and fast.
//
// The simulator is single-threaded and owned by one experiment; it is not
// thread-safe by design (CP.1 does not apply: no concurrency is shared).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp::sim {

using ResourceId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr FlowId kInvalidFlow = 0;

struct FlowRecord {
  SimTime start = 0;
  SimTime end = 0;       // valid once done
  double bytes = 0;
  bool done = false;
};

class FluidSimulator {
 public:
  using FlowCallback = std::function<void(FlowId, SimTime)>;
  using TimerCallback = std::function<void(SimTime)>;

  FluidSimulator() = default;

  // Resources -------------------------------------------------------------

  // capacity is in bytes per simulated second; must be > 0.
  ResourceId AddResource(std::string name, BytesPerSec capacity);

  // Dynamically rescale a resource (used to model uncore-frequency changes
  // and degraded links).  Takes effect at the current simulated time.
  Status SetCapacity(ResourceId id, BytesPerSec capacity);

  BytesPerSec capacity(ResourceId id) const;

  // Instantaneous utilization in [0, 1]: sum of allocated rates / capacity.
  double Utilization(ResourceId id) const;

  // Exponentially-weighted average utilization, updated as time advances.
  // Latency models use this rather than the instantaneous value so short
  // gaps between back-to-back flows do not read as an idle link.
  double SmoothedUtilization(ResourceId id) const;

  // Flows ------------------------------------------------------------------

  // Starts a flow of `bytes` through `path` at the current time.  An empty
  // path or zero bytes completes immediately (callback still fires).
  // `weight` sets the flow's share under contention (weighted max-min:
  // a weight-2 flow gets twice a weight-1 flow's allocation at a shared
  // bottleneck) — the mechanism behind priority-aware experiments.
  FlowId StartFlow(double bytes, const std::vector<ResourceId>& path,
                   FlowCallback on_done = nullptr, double weight = 1.0);

  // Timers -----------------------------------------------------------------

  void ScheduleAt(SimTime when, TimerCallback cb);
  void ScheduleAfter(SimTime delay, TimerCallback cb);

  // Execution ---------------------------------------------------------------

  SimTime now() const { return now_; }

  // Advances until the next event (flow completion or timer) and processes
  // it.  Returns false when nothing remains.
  bool Step();

  // Runs until no active flows or pending timers remain.
  void Run();

  // Runs until the given flow completes (and possibly others with it).
  Status RunUntilFlowDone(FlowId id);

  // Introspection -----------------------------------------------------------

  std::size_t active_flow_count() const { return active_.size(); }
  const FlowRecord* record(FlowId id) const;
  double FlowRate(FlowId id) const;  // current allocated rate, 0 if inactive

  // Total bytes that have fully traversed each resource so far.
  double BytesServed(ResourceId id) const;

 private:
  struct Resource {
    std::string name;
    BytesPerSec capacity = 0;
    double rate_sum = 0;       // sum of currently allocated flow rates
    double bytes_served = 0;
    // EWMA of utilization with time constant kUtilTau.
    double smoothed_util = 0;
    SimTime smoothed_at = 0;
  };

  struct Flow {
    double remaining = 0;
    std::vector<ResourceId> path;
    double rate = 0;
    double weight = 1.0;
    FlowCallback on_done;
  };

  struct Timer {
    SimTime when;
    std::uint64_t seq;  // FIFO tiebreak
    TimerCallback cb;
    bool operator<(const Timer& o) const {
      return when == o.when ? seq < o.seq : when < o.when;
    }
  };

  static constexpr SimTime kUtilTau = Microseconds(10);

  void RecomputeRates();
  void AdvanceTo(SimTime t);
  void UpdateSmoothedUtil(Resource& r, SimTime t) const;
  SimTime NextCompletionTime() const;

  std::vector<Resource> resources_;
  std::map<FlowId, Flow> active_;
  std::map<FlowId, FlowRecord> records_;
  std::vector<Timer> timers_;  // heap ordered by (when, seq)
  std::uint64_t next_flow_id_ = 1;
  std::uint64_t next_timer_seq_ = 0;
  SimTime now_ = 0;
};

}  // namespace lmp::sim
