#include "sim/fluid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.h"

namespace lmp::sim {
namespace {

// Flows with fewer remaining bytes than this are considered complete;
// protects against double round-off never quite reaching zero.
constexpr double kByteEpsilon = 1e-6;
constexpr SimTime kTimeEpsilon = 1e-9;

}  // namespace

ResourceId FluidSimulator::AddResource(std::string name,
                                       BytesPerSec capacity) {
  LMP_CHECK(capacity > 0) << "resource " << name << " needs capacity > 0";
  resources_.push_back(Resource{std::move(name), capacity, 0, 0, 0, now_});
  return static_cast<ResourceId>(resources_.size() - 1);
}

Status FluidSimulator::SetCapacity(ResourceId id, BytesPerSec capacity) {
  if (id >= resources_.size()) {
    return InvalidArgumentError("no such resource");
  }
  if (capacity <= 0) return InvalidArgumentError("capacity must be > 0");
  resources_[id].capacity = capacity;
  RecomputeRates();
  return Status::Ok();
}

BytesPerSec FluidSimulator::capacity(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].capacity;
}

double FluidSimulator::Utilization(ResourceId id) const {
  assert(id < resources_.size());
  const Resource& r = resources_[id];
  return r.capacity > 0 ? r.rate_sum / r.capacity : 0.0;
}

double FluidSimulator::SmoothedUtilization(ResourceId id) const {
  assert(id < resources_.size());
  const Resource& r = resources_[id];
  // Fold in the time since the last update at the current rate.
  Resource copy = r;
  UpdateSmoothedUtil(copy, now_);
  return copy.smoothed_util;
}

void FluidSimulator::UpdateSmoothedUtil(Resource& r, SimTime t) const {
  const SimTime dt = t - r.smoothed_at;
  if (dt <= 0) return;
  const double inst = r.capacity > 0 ? r.rate_sum / r.capacity : 0.0;
  const double alpha = 1.0 - std::exp(-dt / kUtilTau);
  r.smoothed_util += alpha * (inst - r.smoothed_util);
  r.smoothed_at = t;
}

FlowId FluidSimulator::StartFlow(double bytes,
                                 const std::vector<ResourceId>& path,
                                 FlowCallback on_done, double weight) {
  const FlowId id = next_flow_id_++;
  records_[id] = FlowRecord{now_, now_, bytes, false};

  LMP_CHECK(weight > 0) << "flow weight must be positive";
  for (ResourceId r : path) {
    LMP_CHECK(r < resources_.size()) << "flow references unknown resource";
  }

  if (bytes <= kByteEpsilon || path.empty()) {
    // Degenerate flow: completes instantly.
    records_[id].done = true;
    records_[id].end = now_;
    for (ResourceId r : path) resources_[r].bytes_served += bytes;
    if (on_done) on_done(id, now_);
    return id;
  }

  active_[id] = Flow{bytes, path, 0.0, weight, std::move(on_done)};
  RecomputeRates();
  return id;
}

void FluidSimulator::ScheduleAt(SimTime when, TimerCallback cb) {
  LMP_CHECK(when + kTimeEpsilon >= now_) << "timer scheduled in the past";
  timers_.push_back(Timer{std::max(when, now_), next_timer_seq_++,
                          std::move(cb)});
  std::push_heap(timers_.begin(), timers_.end(),
                 [](const Timer& a, const Timer& b) { return b < a; });
}

void FluidSimulator::ScheduleAfter(SimTime delay, TimerCallback cb) {
  ScheduleAt(now_ + delay, std::move(cb));
}

void FluidSimulator::RecomputeRates() {
  // Progressive filling: repeatedly find the resource whose equal share for
  // still-unfrozen flows is smallest, freeze those flows at that share.
  for (auto& r : resources_) {
    UpdateSmoothedUtil(r, now_);
    r.rate_sum = 0;
  }
  if (active_.empty()) return;

  struct Work {
    FlowId id;
    Flow* flow;
    bool frozen = false;
  };
  std::vector<Work> work;
  work.reserve(active_.size());
  for (auto& [id, f] : active_) {
    f.rate = 0;
    work.push_back(Work{id, &f, false});
  }

  // Remaining capacity and unfrozen WEIGHT per resource (weighted max-min:
  // the fair share is per unit of weight).
  std::vector<double> headroom(resources_.size());
  std::vector<double> unfrozen(resources_.size(), 0);
  for (std::size_t i = 0; i < resources_.size(); ++i) {
    headroom[i] = resources_[i].capacity;
  }
  for (auto& w : work) {
    for (ResourceId r : w.flow->path) unfrozen[r] += w.flow->weight;
  }

  std::size_t frozen_count = 0;
  while (frozen_count < work.size()) {
    // Find the bottleneck resource (smallest per-weight share).
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_res = resources_.size();
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      if (unfrozen[r] <= 0) continue;
      const double share = headroom[r] / unfrozen[r];
      if (share < best_share) {
        best_share = share;
        best_res = r;
      }
    }
    if (best_res == resources_.size()) {
      // Some flows traverse no constrained resource (cannot happen: flows
      // with empty paths complete instantly), but guard anyway by giving
      // them effectively unbounded rate.
      for (auto& w : work) {
        if (!w.frozen) {
          w.flow->rate = std::numeric_limits<double>::max();
          w.frozen = true;
          ++frozen_count;
        }
      }
      break;
    }

    // Freeze every unfrozen flow crossing the bottleneck at the fair share.
    for (auto& w : work) {
      if (w.frozen) continue;
      bool crosses = false;
      for (ResourceId r : w.flow->path) {
        if (r == best_res) {
          crosses = true;
          break;
        }
      }
      if (!crosses) continue;
      w.flow->rate = best_share * w.flow->weight;
      w.frozen = true;
      ++frozen_count;
      for (ResourceId r : w.flow->path) {
        unfrozen[r] -= w.flow->weight;
        headroom[r] -= w.flow->rate;
        if (headroom[r] < 0) headroom[r] = 0;  // round-off guard
      }
    }
  }

  for (auto& [id, f] : active_) {
    for (ResourceId r : f.path) resources_[r].rate_sum += f.rate;
  }
}

SimTime FluidSimulator::NextCompletionTime() const {
  // Durations (not absolute times) so precision is independent of now_.
  SimTime best = std::numeric_limits<SimTime>::infinity();
  for (const auto& [id, f] : active_) {
    if (f.rate <= 0) continue;
    best = std::min(best, f.remaining / f.rate * kNsPerSec);
  }
  return std::isfinite(best)
             ? now_ + best
             : std::numeric_limits<SimTime>::infinity();
}

void FluidSimulator::AdvanceTo(SimTime t) {
  assert(t + kTimeEpsilon >= now_);
  const SimTime dt = std::max<SimTime>(0, t - now_);
  if (dt > 0) {
    const double secs = dt / kNsPerSec;
    for (auto& [id, f] : active_) {
      const double moved = f.rate * secs;
      f.remaining -= moved;
      for (ResourceId r : f.path) resources_[r].bytes_served += moved;
    }
    for (auto& r : resources_) UpdateSmoothedUtil(r, t);
  }
  now_ = t;
}

bool FluidSimulator::Step() {
  // Shortest remaining duration among active flows, plus the flows that
  // achieve it (within a relative tolerance).  Working in durations and
  // force-completing the event-defining flows guarantees progress even when
  // now_ is large enough that absolute-time rounding would otherwise strand
  // sub-epsilon residues (a Zeno deadlock).
  SimTime min_dt = std::numeric_limits<SimTime>::infinity();
  for (const auto& [id, f] : active_) {
    if (f.rate <= 0) continue;
    min_dt = std::min(min_dt, f.remaining / f.rate * kNsPerSec);
  }
  const SimTime completion =
      std::isfinite(min_dt) ? now_ + min_dt
                            : std::numeric_limits<SimTime>::infinity();
  const SimTime timer = timers_.empty()
                            ? std::numeric_limits<SimTime>::infinity()
                            : timers_.front().when;
  if (!std::isfinite(completion) && !std::isfinite(timer)) return false;

  if (timer <= completion) {
    AdvanceTo(timer);
    std::pop_heap(timers_.begin(), timers_.end(),
                  [](const Timer& a, const Timer& b) { return b < a; });
    Timer t = std::move(timers_.back());
    timers_.pop_back();
    t.cb(now_);
    if (!active_.empty()) RecomputeRates();
    return true;
  }

  // Flows whose remaining duration is (within tolerance) the minimum are
  // the ones this event completes; zero them before the epsilon sweep.
  const SimTime dt_tolerance = min_dt * 1e-9 + kTimeEpsilon;
  for (auto& [id, f] : active_) {
    if (f.rate <= 0) continue;
    if (f.remaining / f.rate * kNsPerSec <= min_dt + dt_tolerance) {
      f.remaining = 0;
    }
  }
  AdvanceTo(completion);

  // Collect every flow that finished at this instant.
  std::vector<std::pair<FlowId, FlowCallback>> done;
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.remaining <= kByteEpsilon ||
        (it->second.rate > 0 &&
         it->second.remaining / it->second.rate * kNsPerSec < kTimeEpsilon)) {
      auto& rec = records_[it->first];
      rec.done = true;
      rec.end = now_;
      done.emplace_back(it->first, std::move(it->second.on_done));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  RecomputeRates();
  // Callbacks run after rates are consistent; they may start new flows.
  for (auto& [id, cb] : done) {
    if (cb) cb(id, now_);
  }
  return true;
}

void FluidSimulator::Run() {
  while (Step()) {
  }
}

Status FluidSimulator::RunUntilFlowDone(FlowId id) {
  auto it = records_.find(id);
  if (it == records_.end()) return NotFoundError("unknown flow");
  while (!records_[id].done) {
    if (!Step()) {
      return InternalError("simulation drained before flow completed");
    }
  }
  return Status::Ok();
}

const FlowRecord* FluidSimulator::record(FlowId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

double FluidSimulator::FlowRate(FlowId id) const {
  auto it = active_.find(id);
  return it == active_.end() ? 0.0 : it->second.rate;
}

double FluidSimulator::BytesServed(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].bytes_served;
}

}  // namespace lmp::sim
