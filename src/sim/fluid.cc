#include "sim/fluid.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "sim/solver_pool.h"

namespace lmp::sim {
namespace {

// Flows with fewer remaining bytes than this are considered complete;
// protects against double round-off never quite reaching zero.
constexpr double kByteEpsilon = 1e-6;
constexpr SimTime kTimeEpsilon = 1e-9;

constexpr ResourceId kNoResource = std::numeric_limits<ResourceId>::max();
constexpr std::size_t kNoTask = std::numeric_limits<std::size_t>::max();

}  // namespace

FluidSimulator::FluidSimulator() = default;
FluidSimulator::~FluidSimulator() = default;

ResourceId FluidSimulator::AddResource(std::string name,
                                       BytesPerSec capacity) {
  LMP_CHECK(capacity > 0) << "resource " << name << " needs capacity > 0";
  resources_.push_back(Resource{std::move(name), capacity, 0, 0, 0, now_});
  flows_at_.emplace_back();
  headroom_.push_back(0);
  unfrozen_.push_back(0);
  res_epoch_.push_back(0);
  resource_shard_.push_back(kNoShard);
  return static_cast<ResourceId>(resources_.size() - 1);
}

Status FluidSimulator::SetCapacity(ResourceId id, BytesPerSec capacity) {
  if (id >= resources_.size()) {
    return InvalidArgumentError("no such resource");
  }
  if (capacity <= 0) return InvalidArgumentError("capacity must be > 0");
  // Fold the utilization EWMA *before* the capacity changes: the elapsed
  // window ran at the old capacity, and folding after the write would
  // retroactively reprice it.  (The solve below folds again at dt == 0,
  // which is a no-op.)
  UpdateSmoothedUtil(resources_[id], now_);
  resources_[id].capacity = capacity;
  if (in_batch_) {
    batch_seed_.push_back(id);
    return Status::Ok();
  }
  seed_res_.clear();
  seed_res_.push_back(id);
  SolveSeeded();
  return Status::Ok();
}

BytesPerSec FluidSimulator::capacity(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].capacity;
}

const std::string& FluidSimulator::ResourceName(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].name;
}

double FluidSimulator::Utilization(ResourceId id) const {
  assert(id < resources_.size());
  const Resource& r = resources_[id];
  return r.capacity > 0 ? r.rate_sum / r.capacity : 0.0;
}

double FluidSimulator::SmoothedUtilization(ResourceId id) const {
  assert(id < resources_.size());
  // Fold in the time since the last update at the current rate, without
  // copying the resource (this is called per latency sample).
  return FoldedSmoothedUtil(resources_[id], now_);
}

double FluidSimulator::FoldedSmoothedUtil(const Resource& r, SimTime t) const {
  const SimTime dt = t - r.smoothed_at;
  if (dt <= 0) return r.smoothed_util;
  const double inst = r.capacity > 0 ? r.rate_sum / r.capacity : 0.0;
  const double alpha = 1.0 - std::exp(-dt / kUtilTau);
  return r.smoothed_util + alpha * (inst - r.smoothed_util);
}

void FluidSimulator::UpdateSmoothedUtil(Resource& r, SimTime t) const {
  if (t - r.smoothed_at <= 0) return;
  r.smoothed_util = FoldedSmoothedUtil(r, t);
  r.smoothed_at = t;
}

void FluidSimulator::SetResourceShard(ResourceId id, ShardId shard) {
  LMP_CHECK(id < resources_.size()) << "no such resource";
  LMP_CHECK(shard != kNoShard) << "reserved shard id";
  LMP_CHECK(active_.empty()) << "assign shards before starting flows";
  resource_shard_[id] = shard;
  if (shard >= shard_cross_flows_.size()) {
    shard_cross_flows_.resize(shard + 1, 0);
    shard_task_.resize(shard + 1, 0);
    shard_task_epoch_.resize(shard + 1, 0);
  }
}

ShardId FluidSimulator::resource_shard(ResourceId id) const {
  assert(id < resources_.size());
  return resource_shard_[id];
}

void FluidSimulator::set_threads(int n) {
  LMP_CHECK(n >= 1) << "thread count must be >= 1";
  threads_ = n;
  pool_.reset();
  if (n > 1) pool_ = std::make_unique<SolverPool>(n);
}

void FluidSimulator::FinishRecord(FlowId id) {
  auto it = records_.find(id);
  if (it == records_.end()) return;
  it->second.done = true;
  it->second.end = now_;
  if (flow_duration_hist_ != nullptr) {
    flow_duration_hist_->Record(
        static_cast<std::uint64_t>(now_ - it->second.start));
  }
  if (trace_ != nullptr) {
    trace_->End(trace::Category::kFlow, "flow", id, now_);
  }
}

void FluidSimulator::set_metrics(MetricsRegistry* registry) {
  flow_duration_hist_ =
      registry == nullptr
          ? nullptr
          : &registry->GetHistogram("fluid.flow_duration_ns");
}

FlowId FluidSimulator::StartFlow(double bytes,
                                 const std::vector<ResourceId>& path,
                                 FlowCallback on_done, double weight) {
  const FlowId id = next_flow_id_++;
  records_[id] = FlowRecord{now_, now_, bytes, false};

  LMP_CHECK(weight > 0) << "flow weight must be positive";
  for (ResourceId r : path) {
    LMP_CHECK(r < resources_.size()) << "flow references unknown resource";
  }
  if (trace_ != nullptr) {
    trace_->Begin(trace::Category::kFlow, "flow", id, now_,
                  {trace::Arg("bytes", bytes),
                   trace::Arg("hops", static_cast<std::uint64_t>(path.size())),
                   trace::Arg("weight", weight)});
  }

  if (bytes <= kByteEpsilon || path.empty()) {
    // Degenerate flow: completes instantly.  The record is final here, but
    // the callback is deferred through a zero-delay timer so it cannot
    // re-enter the simulator (start flows, query records) mid-StartFlow.
    FinishRecord(id);
    for (ResourceId r : path) resources_[r].bytes_served += bytes;
    if (on_done) {
      ScheduleAt(now_, [this, id, cb = std::move(on_done)](SimTime t) {
        cb(id, t);
        if (retention_ == RecordRetention::kDropCompleted) records_.erase(id);
      });
    } else if (retention_ == RecordRetention::kDropCompleted) {
      records_.erase(id);
    }
    return id;
  }

  Flow& flow =
      active_
          .emplace(id, Flow{bytes, path, 0.0, weight, std::move(on_done),
                            /*visit_epoch=*/0})
          .first->second;
  IndexFlow(id, flow);
  if (in_batch_) {
    batch_seed_.insert(batch_seed_.end(), path.begin(), path.end());
    return id;
  }
  seed_res_.clear();
  seed_res_.insert(seed_res_.end(), path.begin(), path.end());
  SolveSeeded();
  return id;
}

void FluidSimulator::BeginBatch() {
  LMP_CHECK(!in_batch_) << "BeginBatch inside an open batch";
  in_batch_ = true;
  batch_seed_.clear();
}

void FluidSimulator::EndBatch() {
  LMP_CHECK(in_batch_) << "EndBatch without BeginBatch";
  in_batch_ = false;
  if (batch_seed_.empty()) return;
  std::swap(seed_res_, batch_seed_);
  batch_seed_.clear();
  SolveSeeded();
}

void FluidSimulator::IndexFlow(FlowId id, Flow& flow) {
  // Ids are issued monotonically, so push_back keeps each per-resource
  // index sorted; one entry per path occurrence mirrors the solver's
  // per-occurrence accounting.
  for (ResourceId r : flow.path) {
    flows_at_[r].push_back(FlowEntry{id, &flow});
  }
  UpdateShardCrossings(flow.path, +1);
}

void FluidSimulator::UnindexFlow(FlowId id,
                                 const std::vector<ResourceId>& path) {
  for (ResourceId r : path) {
    auto& entries = flows_at_[r];
    const auto cmp = [](const FlowEntry& e, const FlowEntry& v) {
      return e.id < v.id;
    };
    auto [lo, hi] = std::equal_range(entries.begin(), entries.end(),
                                     FlowEntry{id, nullptr}, cmp);
    entries.erase(lo, hi);
  }
  UpdateShardCrossings(path, -1);
}

void FluidSimulator::UpdateShardCrossings(const std::vector<ResourceId>& path,
                                          int delta) {
  if (shard_cross_flows_.empty()) return;  // no shards assigned
  // Collect the distinct shards on the path (paths are a handful of hops;
  // a linear dedupe beats any set).  A flow confined to one shard closes
  // nothing; any other mix — two shards, or a shard plus unsharded
  // resources — holds every shard it touches open until the flow retires.
  path_shards_.clear();
  bool touches_unsharded = false;
  for (ResourceId r : path) {
    const ShardId s = resource_shard_[r];
    if (s == kNoShard) {
      touches_unsharded = true;
      continue;
    }
    if (std::find(path_shards_.begin(), path_shards_.end(), s) ==
        path_shards_.end()) {
      path_shards_.push_back(s);
    }
  }
  if (path_shards_.empty()) return;  // fully unsharded: spill-only
  if (path_shards_.size() == 1 && !touches_unsharded) return;  // internal
  for (ShardId s : path_shards_) {
    if (delta > 0) {
      ++shard_cross_flows_[s];
    } else {
      LMP_CHECK(shard_cross_flows_[s] > 0) << "cross-flow underflow";
      --shard_cross_flows_[s];
    }
  }
}

void FluidSimulator::ScheduleAt(SimTime when, TimerCallback cb) {
  LMP_CHECK(when + kTimeEpsilon >= now_) << "timer scheduled in the past";
  timers_.push_back(Timer{std::max(when, now_), next_timer_seq_++,
                          std::move(cb)});
  std::push_heap(timers_.begin(), timers_.end(),
                 [](const Timer& a, const Timer& b) { return b < a; });
}

void FluidSimulator::ScheduleAfter(SimTime delay, TimerCallback cb) {
  ScheduleAt(now_ + delay, std::move(cb));
}

void FluidSimulator::ProgressiveFill(std::vector<Work>& work,
                                     const std::vector<ResourceId>& comp_res,
                                     std::vector<double>& headroom,
                                     std::vector<double>& unfrozen) {
  // Progressive filling: repeatedly find the resource whose equal share for
  // still-unfrozen flows is smallest, freeze those flows at that share.
  // comp_res is sorted ascending so bottleneck ties break exactly as a
  // full scan over all resources would.  This is the single weighted
  // max-min core: the incremental solver, the full solver, every shard
  // task, and the CheckAgainstFullSolve oracle all run this code, so none
  // of them can drift from the others.  Rates land in Work::rate; nothing
  // is written through Work::flow.
  std::size_t frozen_count = 0;
  while (frozen_count < work.size()) {
    double best_share = std::numeric_limits<double>::infinity();
    ResourceId best_res = kNoResource;
    for (ResourceId r : comp_res) {
      if (unfrozen[r] <= 0) continue;
      const double share = headroom[r] / unfrozen[r];
      if (share < best_share) {
        best_share = share;
        best_res = r;
      }
    }
    if (best_res == kNoResource) {
      // Some flows traverse no constrained resource (cannot happen: flows
      // with empty paths complete instantly), but guard anyway by giving
      // them effectively unbounded rate.
      for (auto& w : work) {
        if (!w.frozen) {
          w.rate = std::numeric_limits<double>::max();
          w.frozen = true;
          ++frozen_count;
        }
      }
      break;
    }

    // Freeze every unfrozen flow crossing the bottleneck at the fair share.
    for (auto& w : work) {
      if (w.frozen) continue;
      bool crosses = false;
      for (ResourceId r : w.flow->path) {
        if (r == best_res) {
          crosses = true;
          break;
        }
      }
      if (!crosses) continue;
      w.rate = best_share * w.flow->weight;
      w.frozen = true;
      ++frozen_count;
      for (ResourceId r : w.flow->path) {
        unfrozen[r] -= w.flow->weight;
        headroom[r] -= w.rate;
        if (headroom[r] < 0) headroom[r] = 0;  // round-off guard
      }
    }
  }
}

void FluidSimulator::RecomputeAll() {
  ++stats_.recompute_calls;
  ++stats_.full_solves;
  stats_.flows_touched += active_.size();
  for (auto& r : resources_) {
    UpdateSmoothedUtil(r, now_);
    r.rate_sum = 0;
  }
  if (active_.empty()) return;

  if (tasks_.empty()) tasks_.emplace_back();
  ShardTask& task = tasks_[0];  // scratch reuse; full solves never overlap
  task.work.clear();
  task.comp_res.clear();
  for (auto& [id, f] : active_) {
    task.work.push_back(Work{id, &f, 0.0, false});
  }

  // Remaining capacity and unfrozen WEIGHT per resource (weighted max-min:
  // the fair share is per unit of weight).
  for (ResourceId r = 0; r < resources_.size(); ++r) {
    task.comp_res.push_back(r);
    headroom_[r] = resources_[r].capacity;
    unfrozen_[r] = 0;
  }
  for (const Work& w : task.work) {
    for (ResourceId r : w.flow->path) unfrozen_[r] += w.flow->weight;
  }

  ProgressiveFill(task.work, task.comp_res, headroom_, unfrozen_);

  for (const Work& w : task.work) {
    w.flow->rate = w.rate;
    for (ResourceId r : w.flow->path) resources_[r].rate_sum += w.rate;
  }
}

void FluidSimulator::SolveSeeded() {
  const std::uint64_t touched_before = stats_.flows_touched;
  if (!solver_timing_) {
    SolveSeededImpl();
  } else {
    const auto t0 = std::chrono::steady_clock::now();
    SolveSeededImpl();
    const auto t1 = std::chrono::steady_clock::now();
    stats_.solve_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  }
  if (trace_ != nullptr) {
    // Sim-time only: the number of flows re-rated, never the wall cost.
    trace_->Instant(
        trace::Category::kSolver, "rate_change", now_,
        {trace::Arg("flows", stats_.flows_touched - touched_before)});
  }
}

void FluidSimulator::SolveSeededImpl() {
  if (!incremental_) {
    RecomputeAll();
    return;
  }
  // Adaptive fallback: when the connected component keeps spanning every
  // active flow (heavily bridged topologies — incast, all-remote), the
  // component BFS is pure overhead on top of an unavoidable full solve.
  // After a streak of whole-graph components, solve fully for a cooldown
  // window, then probe incrementally again in case locality returned.
  if (full_solve_cooldown_ > 0) {
    --full_solve_cooldown_;
    RecomputeAll();
    return;
  }
  ++stats_.recompute_calls;
  ++solve_epoch_;

  // Partition the seed resources into solver tasks.  A shard with zero
  // cross-shard flows is *closed*: every flow touching it lies entirely
  // inside it, so its connected components cannot extend past the shard
  // boundary and its BFS + solve is independent of every other task.  Seeds
  // in open shards or on unsharded resources funnel into one sequential
  // "spill" task; spill components may span open shards but can never reach
  // into a closed one (any flow that could bridge them would have held the
  // shard open).  With no shards assigned, everything spills and the solve
  // is exactly the classic single-component pass.
  std::size_t num_tasks = 0;
  std::size_t spill = kNoTask;
  const auto task_index_for = [&](ResourceId r) -> std::size_t {
    const ShardId shard = resource_shard_[r];
    if (shard == kNoShard || shard_cross_flows_[shard] != 0) {
      if (spill == kNoTask) {
        spill = num_tasks++;
        if (spill == tasks_.size()) tasks_.emplace_back();
        tasks_[spill].seeds.clear();
      }
      return spill;
    }
    if (shard_task_epoch_[shard] != solve_epoch_) {
      shard_task_epoch_[shard] = solve_epoch_;
      shard_task_[shard] = num_tasks++;
      if (shard_task_[shard] == tasks_.size()) tasks_.emplace_back();
      tasks_[shard_task_[shard]].seeds.clear();
    }
    return shard_task_[shard];
  };
  if (shard_cross_flows_.empty()) {
    // Fast path: no shards assigned, single spill task.
    spill = num_tasks++;
    if (tasks_.empty()) tasks_.emplace_back();
    tasks_[0].seeds.clear();
    tasks_[0].seeds.insert(tasks_[0].seeds.end(), seed_res_.begin(),
                           seed_res_.end());
  } else {
    for (ResourceId r : seed_res_) {
      tasks_[task_index_for(r)].seeds.push_back(r);
    }
  }

  // Solve every task.  Tasks grow disjoint components and write disjoint
  // flows/resources, and each performs identical arithmetic in identical
  // order regardless of which thread runs it — results are byte-identical
  // for any thread count.  The shared epoch stamps (res_epoch_,
  // visit_epoch) are written at most once per solve per element, always by
  // the single task owning that element.
  stats_.shard_tasks += num_tasks;
  if (num_tasks > 1) ++stats_.parallel_solves;
  if (num_tasks > 1 && pool_ != nullptr) {
    pool_->Run(num_tasks, [this](std::size_t i) { SolveTask(tasks_[i]); });
  } else {
    for (std::size_t i = 0; i < num_tasks; ++i) SolveTask(tasks_[i]);
  }

  // Deterministic merge: aggregate stats in task order (task order is a
  // pure function of seed_res_ and the shard map, never of the schedule).
  std::size_t touched = 0;
  for (std::size_t i = 0; i < num_tasks; ++i) touched += tasks_[i].work.size();
  stats_.flows_touched += touched;
  if (touched == active_.size()) {
    ++stats_.full_solves;
    // The full-solve cooldown exists to skip BFS overhead when the graph
    // keeps collapsing into one whole-cluster component.  A *partitioned*
    // whole-graph solve is the opposite case: the BFS is what split it into
    // small per-shard tasks, and falling back to RecomputeAll would replace
    // them with one sequential cluster-wide fill.  Only single-task streaks
    // arm the cooldown.
    if (num_tasks > 1) {
      full_solve_streak_ = 0;
    } else {
      if (full_solve_streak_ < kFullStreakThreshold) ++full_solve_streak_;
      if (full_solve_streak_ >= kFullStreakThreshold) {
        full_solve_cooldown_ = kFullSolveCooldown;
      }
    }
  } else {
    full_solve_streak_ = 0;
  }

  if (crosscheck_) CheckAgainstFullSolve();
}

void FluidSimulator::SolveTask(ShardTask& task) {
  // Connected component(s) of the task's seed resources: alternate
  // resource -> its crossing flows -> their paths until closed.  Epoch
  // stamps make the visited sets allocation-free and are safe to share
  // across concurrent tasks because components are disjoint.
  task.comp_res.clear();
  task.work.clear();
  const auto add_res = [&](ResourceId r) {
    if (res_epoch_[r] != solve_epoch_) {
      res_epoch_[r] = solve_epoch_;
      task.comp_res.push_back(r);
    }
  };
  for (ResourceId r : task.seeds) add_res(r);
  for (std::size_t i = 0; i < task.comp_res.size(); ++i) {
    for (const FlowEntry& e : flows_at_[task.comp_res[i]]) {
      if (e.flow->visit_epoch == solve_epoch_) continue;
      e.flow->visit_epoch = solve_epoch_;
      task.work.push_back(Work{e.id, e.flow, 0.0, false});
      for (ResourceId r : e.flow->path) add_res(r);
    }
  }
  // Restore the deterministic orders the full pass iterates in: resources
  // by index (bottleneck tie-break), flows by id (freeze and rate_sum
  // accumulation order).  Required for bit-exact parity with RecomputeAll.
  std::sort(task.comp_res.begin(), task.comp_res.end());
  std::sort(task.work.begin(), task.work.end(),
            [](const Work& a, const Work& b) { return a.id < b.id; });

  for (ResourceId r : task.comp_res) {
    UpdateSmoothedUtil(resources_[r], now_);
    headroom_[r] = resources_[r].capacity;
    unfrozen_[r] = 0;
    resources_[r].rate_sum = 0;
  }
  for (const Work& w : task.work) {
    for (ResourceId r : w.flow->path) unfrozen_[r] += w.flow->weight;
  }

  ProgressiveFill(task.work, task.comp_res, headroom_, unfrozen_);

  for (const Work& w : task.work) {
    w.flow->rate = w.rate;
    for (ResourceId r : w.flow->path) resources_[r].rate_sum += w.rate;
  }
}

void FluidSimulator::CheckAgainstFullSolve() const {
  // Reference full pass over private scratch (the simulator state is
  // untouched), compared bit-exactly against the rates the incremental
  // solve left behind.  Runs the same ProgressiveFill core as production —
  // the parity being checked is component decomposition, not arithmetic.
  // Debug/test-only: allocates.
  std::vector<Work> work;
  work.reserve(active_.size());
  for (const auto& [id, f] : active_) {
    // ProgressiveFill only reads path/weight through the pointer and
    // writes rates into Work::rate, so the const_cast is sound.
    work.push_back(Work{id, const_cast<Flow*>(&f), 0.0, false});
  }
  std::vector<ResourceId> comp_res(resources_.size());
  std::iota(comp_res.begin(), comp_res.end(), 0);
  std::vector<double> headroom(resources_.size());
  std::vector<double> unfrozen(resources_.size(), 0);
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    headroom[r] = resources_[r].capacity;
  }
  for (const Work& w : work) {
    for (ResourceId r : w.flow->path) unfrozen[r] += w.flow->weight;
  }

  ProgressiveFill(work, comp_res, headroom, unfrozen);

  for (const Work& w : work) {
    LMP_CHECK(w.rate == w.flow->rate)
        << "incremental solver diverged from full solve: rate "
        << w.flow->rate << " vs reference " << w.rate;
  }
  std::vector<double> rate_sum(resources_.size(), 0);
  for (const Work& w : work) {
    for (ResourceId r : w.flow->path) rate_sum[r] += w.rate;
  }
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    LMP_CHECK(rate_sum[r] == resources_[r].rate_sum)
        << "incremental solver diverged on rate_sum of resource " << r << ": "
        << resources_[r].rate_sum << " vs reference " << rate_sum[r];
  }
}

SimTime FluidSimulator::MinRemainingDuration() const {
  // Durations (not absolute times) so precision is independent of now_ —
  // the Zeno guard Step() relies on lives here and only here.
  SimTime best = std::numeric_limits<SimTime>::infinity();
  for (const auto& [id, f] : active_) {
    if (f.rate <= 0) continue;
    best = std::min(best, f.remaining / f.rate * kNsPerSec);
  }
  return best;
}

SimTime FluidSimulator::NextCompletionTime() const {
  const SimTime best = MinRemainingDuration();
  return std::isfinite(best)
             ? now_ + best
             : std::numeric_limits<SimTime>::infinity();
}

void FluidSimulator::AdvanceTo(SimTime t) {
  assert(t + kTimeEpsilon >= now_);
  const SimTime dt = std::max<SimTime>(0, t - now_);
  if (dt > 0) {
    const double secs = dt / kNsPerSec;
    for (auto& [id, f] : active_) {
      // Clamp to the flow's remaining bytes: the event-defining flows run
      // out exactly here, and crediting rate * dt past that point
      // over-counted bytes_served by up to the Zeno tolerance per
      // completion (historical bug).  Residue the clamp leaves on
      // force-completed flows is settled by Step().
      const double moved = std::min(f.rate * secs, f.remaining);
      f.remaining -= moved;
      for (ResourceId r : f.path) resources_[r].bytes_served += moved;
    }
    for (auto& r : resources_) UpdateSmoothedUtil(r, t);
  }
  now_ = t;
}

bool FluidSimulator::Step() {
  LMP_CHECK(!in_batch_) << "Step inside an open flow batch";
  // Shortest remaining duration among active flows, plus the flows that
  // achieve it (within a relative tolerance).  Working in durations and
  // force-completing the event-defining flows guarantees progress even when
  // now_ is large enough that absolute-time rounding would otherwise strand
  // sub-epsilon residues (a Zeno deadlock).
  const SimTime min_dt = MinRemainingDuration();
  const SimTime completion =
      std::isfinite(min_dt) ? now_ + min_dt
                            : std::numeric_limits<SimTime>::infinity();
  const SimTime timer = timers_.empty()
                            ? std::numeric_limits<SimTime>::infinity()
                            : timers_.front().when;
  if (!std::isfinite(completion) && !std::isfinite(timer)) return false;

  if (timer <= completion) {
    AdvanceTo(timer);
    // Batched dispatch: drain every timer due at this instant before
    // running any callback, so a wave of same-time timers costs one Step
    // (and one heap drain) instead of one Step each.  Timers a callback
    // schedules at this same instant have larger seq values and would sort
    // after the drained batch anyway; they run on the next Step.  The
    // scratch is moved out so a re-entrant Step cannot clobber it.
    auto batch = std::move(timer_batch_);
    batch.clear();
    const auto heap_cmp = [](const Timer& a, const Timer& b) { return b < a; };
    while (!timers_.empty() && timers_.front().when == timer) {
      std::pop_heap(timers_.begin(), timers_.end(), heap_cmp);
      batch.push_back(std::move(timers_.back()));
      timers_.pop_back();
    }
    // Anything a callback changes (StartFlow, SetCapacity) re-solves its
    // own component; no blanket recompute is needed afterwards.
    for (Timer& t : batch) t.cb(now_);
    batch.clear();
    timer_batch_ = std::move(batch);
    return true;
  }

  // Flows whose remaining duration is (within tolerance) the minimum are
  // the ones this event completes.  Collect them *before* advancing:
  // AdvanceTo clamps what it credits to each flow's remaining bytes, and
  // whatever residue the clamp leaves on these flows (the event definer can
  // round either way) is settled here, so per-resource BytesServed totals
  // are exact per flow rather than off by up to the Zeno tolerance.
  const SimTime dt_tolerance = min_dt * 1e-9 + kTimeEpsilon;
  auto tied = std::move(tied_scratch_);
  tied.clear();
  for (auto& [id, f] : active_) {
    if (f.rate <= 0) continue;
    if (f.remaining / f.rate * kNsPerSec <= min_dt + dt_tolerance) {
      tied.push_back(&f);
    }
  }
  AdvanceTo(completion);
  for (Flow* f : tied) {
    if (f->remaining > 0) {
      for (ResourceId r : f->path) resources_[r].bytes_served += f->remaining;
      f->remaining = 0;
    }
  }
  tied.clear();
  tied_scratch_ = std::move(tied);

  // Collect every flow that finished at this instant.
  auto done = std::move(done_scratch_);
  done.clear();
  seed_res_.clear();
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.remaining <= kByteEpsilon ||
        (it->second.rate > 0 &&
         it->second.remaining / it->second.rate * kNsPerSec < kTimeEpsilon)) {
      FinishRecord(it->first);
      done.emplace_back(it->first, std::move(it->second.on_done));
      seed_res_.insert(seed_res_.end(), it->second.path.begin(),
                       it->second.path.end());
      UnindexFlow(it->first, it->second.path);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  SolveSeeded();
  // Callbacks run after rates are consistent; they may start new flows.
  for (auto& [id, cb] : done) {
    if (cb) cb(id, now_);
    if (retention_ == RecordRetention::kDropCompleted) records_.erase(id);
  }
  done.clear();
  done_scratch_ = std::move(done);
  return true;
}

void FluidSimulator::Run() {
  while (Step()) {
  }
}

Status FluidSimulator::RunUntilFlowDone(FlowId id) {
  if (id == kInvalidFlow || id >= next_flow_id_) {
    return NotFoundError("unknown flow");
  }
  // One lookup per iteration (records can be released mid-run); a missing
  // record for a known id means it was already retired, i.e. completed.
  while (true) {
    const auto it = records_.find(id);
    if (it == records_.end() || it->second.done) return Status::Ok();
    if (!Step()) {
      return InternalError("simulation drained before flow completed");
    }
  }
}

const FlowRecord* FluidSimulator::record(FlowId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

Status FluidSimulator::ReleaseRecord(FlowId id) {
  auto it = records_.find(id);
  if (it == records_.end()) return NotFoundError("no record for flow");
  if (!it->second.done) {
    return FailedPreconditionError("flow is still active");
  }
  records_.erase(it);
  return Status::Ok();
}

double FluidSimulator::FlowRate(FlowId id) const {
  auto it = active_.find(id);
  return it == active_.end() ? 0.0 : it->second.rate;
}

double FluidSimulator::BytesServed(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].bytes_served;
}

void FluidSimulator::ExportSolverMetrics(MetricsRegistry& registry) {
  registry.Increment("fluid.solver.recompute_calls",
                     stats_.recompute_calls - exported_.recompute_calls);
  registry.Increment("fluid.solver.flows_touched",
                     stats_.flows_touched - exported_.flows_touched);
  registry.Increment("fluid.solver.full_solves",
                     stats_.full_solves - exported_.full_solves);
  registry.Increment("fluid.solver.shard_tasks",
                     stats_.shard_tasks - exported_.shard_tasks);
  registry.Increment("fluid.solver.parallel_solves",
                     stats_.parallel_solves - exported_.parallel_solves);
  // Wall clock, not sim time: the wall. namespace keeps it out of the
  // byte-deterministic metrics JSON.
  registry.Increment("wall.fluid.solver.solve_ns",
                     stats_.solve_ns - exported_.solve_ns);
  exported_ = stats_;
}

}  // namespace lmp::sim
