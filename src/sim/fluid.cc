#include "sim/fluid.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace lmp::sim {
namespace {

// Flows with fewer remaining bytes than this are considered complete;
// protects against double round-off never quite reaching zero.
constexpr double kByteEpsilon = 1e-6;
constexpr SimTime kTimeEpsilon = 1e-9;

constexpr ResourceId kNoResource = std::numeric_limits<ResourceId>::max();

}  // namespace

ResourceId FluidSimulator::AddResource(std::string name,
                                       BytesPerSec capacity) {
  LMP_CHECK(capacity > 0) << "resource " << name << " needs capacity > 0";
  resources_.push_back(Resource{std::move(name), capacity, 0, 0, 0, now_});
  flows_at_.emplace_back();
  headroom_.push_back(0);
  unfrozen_.push_back(0);
  res_epoch_.push_back(0);
  return static_cast<ResourceId>(resources_.size() - 1);
}

Status FluidSimulator::SetCapacity(ResourceId id, BytesPerSec capacity) {
  if (id >= resources_.size()) {
    return InvalidArgumentError("no such resource");
  }
  if (capacity <= 0) return InvalidArgumentError("capacity must be > 0");
  resources_[id].capacity = capacity;
  seed_res_.clear();
  seed_res_.push_back(id);
  SolveSeeded();
  return Status::Ok();
}

BytesPerSec FluidSimulator::capacity(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].capacity;
}

const std::string& FluidSimulator::ResourceName(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].name;
}

double FluidSimulator::Utilization(ResourceId id) const {
  assert(id < resources_.size());
  const Resource& r = resources_[id];
  return r.capacity > 0 ? r.rate_sum / r.capacity : 0.0;
}

double FluidSimulator::SmoothedUtilization(ResourceId id) const {
  assert(id < resources_.size());
  // Fold in the time since the last update at the current rate, without
  // copying the resource (this is called per latency sample).
  return FoldedSmoothedUtil(resources_[id], now_);
}

double FluidSimulator::FoldedSmoothedUtil(const Resource& r, SimTime t) const {
  const SimTime dt = t - r.smoothed_at;
  if (dt <= 0) return r.smoothed_util;
  const double inst = r.capacity > 0 ? r.rate_sum / r.capacity : 0.0;
  const double alpha = 1.0 - std::exp(-dt / kUtilTau);
  return r.smoothed_util + alpha * (inst - r.smoothed_util);
}

void FluidSimulator::UpdateSmoothedUtil(Resource& r, SimTime t) const {
  if (t - r.smoothed_at <= 0) return;
  r.smoothed_util = FoldedSmoothedUtil(r, t);
  r.smoothed_at = t;
}

void FluidSimulator::FinishRecord(FlowId id) {
  auto it = records_.find(id);
  if (it == records_.end()) return;
  it->second.done = true;
  it->second.end = now_;
  if (trace_ != nullptr) {
    trace_->End(trace::Category::kFlow, "flow", id, now_);
  }
}

FlowId FluidSimulator::StartFlow(double bytes,
                                 const std::vector<ResourceId>& path,
                                 FlowCallback on_done, double weight) {
  const FlowId id = next_flow_id_++;
  records_[id] = FlowRecord{now_, now_, bytes, false};

  LMP_CHECK(weight > 0) << "flow weight must be positive";
  for (ResourceId r : path) {
    LMP_CHECK(r < resources_.size()) << "flow references unknown resource";
  }
  if (trace_ != nullptr) {
    trace_->Begin(trace::Category::kFlow, "flow", id, now_,
                  {trace::Arg("bytes", bytes),
                   trace::Arg("hops", static_cast<std::uint64_t>(path.size())),
                   trace::Arg("weight", weight)});
  }

  if (bytes <= kByteEpsilon || path.empty()) {
    // Degenerate flow: completes instantly.  The record is final here, but
    // the callback is deferred through a zero-delay timer so it cannot
    // re-enter the simulator (start flows, query records) mid-StartFlow.
    FinishRecord(id);
    for (ResourceId r : path) resources_[r].bytes_served += bytes;
    if (on_done) {
      ScheduleAt(now_, [this, id, cb = std::move(on_done)](SimTime t) {
        cb(id, t);
        if (retention_ == RecordRetention::kDropCompleted) records_.erase(id);
      });
    } else if (retention_ == RecordRetention::kDropCompleted) {
      records_.erase(id);
    }
    return id;
  }

  Flow& flow =
      active_
          .emplace(id, Flow{bytes, path, 0.0, weight, std::move(on_done),
                            /*visit_epoch=*/0})
          .first->second;
  IndexFlow(id, flow);
  seed_res_.clear();
  seed_res_.insert(seed_res_.end(), path.begin(), path.end());
  SolveSeeded();
  return id;
}

void FluidSimulator::IndexFlow(FlowId id, Flow& flow) {
  // Ids are issued monotonically, so push_back keeps each per-resource
  // index sorted; one entry per path occurrence mirrors the solver's
  // per-occurrence accounting.
  for (ResourceId r : flow.path) {
    flows_at_[r].push_back(FlowEntry{id, &flow});
  }
}

void FluidSimulator::UnindexFlow(FlowId id,
                                 const std::vector<ResourceId>& path) {
  for (ResourceId r : path) {
    auto& entries = flows_at_[r];
    const auto cmp = [](const FlowEntry& e, const FlowEntry& v) {
      return e.id < v.id;
    };
    auto [lo, hi] = std::equal_range(entries.begin(), entries.end(),
                                     FlowEntry{id, nullptr}, cmp);
    entries.erase(lo, hi);
  }
}

void FluidSimulator::ScheduleAt(SimTime when, TimerCallback cb) {
  LMP_CHECK(when + kTimeEpsilon >= now_) << "timer scheduled in the past";
  timers_.push_back(Timer{std::max(when, now_), next_timer_seq_++,
                          std::move(cb)});
  std::push_heap(timers_.begin(), timers_.end(),
                 [](const Timer& a, const Timer& b) { return b < a; });
}

void FluidSimulator::ScheduleAfter(SimTime delay, TimerCallback cb) {
  ScheduleAt(now_ + delay, std::move(cb));
}

void FluidSimulator::SolveWork() {
  // Progressive filling: repeatedly find the resource whose equal share for
  // still-unfrozen flows is smallest, freeze those flows at that share.
  // comp_res_ is sorted ascending so bottleneck ties break exactly as a
  // full scan over all resources would.
  std::size_t frozen_count = 0;
  while (frozen_count < work_.size()) {
    double best_share = std::numeric_limits<double>::infinity();
    ResourceId best_res = kNoResource;
    for (ResourceId r : comp_res_) {
      if (unfrozen_[r] <= 0) continue;
      const double share = headroom_[r] / unfrozen_[r];
      if (share < best_share) {
        best_share = share;
        best_res = r;
      }
    }
    if (best_res == kNoResource) {
      // Some flows traverse no constrained resource (cannot happen: flows
      // with empty paths complete instantly), but guard anyway by giving
      // them effectively unbounded rate.
      for (auto& w : work_) {
        if (!w.frozen) {
          w.flow->rate = std::numeric_limits<double>::max();
          w.frozen = true;
          ++frozen_count;
        }
      }
      break;
    }

    // Freeze every unfrozen flow crossing the bottleneck at the fair share.
    for (auto& w : work_) {
      if (w.frozen) continue;
      bool crosses = false;
      for (ResourceId r : w.flow->path) {
        if (r == best_res) {
          crosses = true;
          break;
        }
      }
      if (!crosses) continue;
      w.flow->rate = best_share * w.flow->weight;
      w.frozen = true;
      ++frozen_count;
      for (ResourceId r : w.flow->path) {
        unfrozen_[r] -= w.flow->weight;
        headroom_[r] -= w.flow->rate;
        if (headroom_[r] < 0) headroom_[r] = 0;  // round-off guard
      }
    }
  }
}

void FluidSimulator::RecomputeAll() {
  ++stats_.recompute_calls;
  ++stats_.full_solves;
  stats_.flows_touched += active_.size();
  for (auto& r : resources_) {
    UpdateSmoothedUtil(r, now_);
    r.rate_sum = 0;
  }
  if (active_.empty()) return;

  work_.clear();
  for (auto& [id, f] : active_) {
    f.rate = 0;
    work_.push_back(Work{id, &f, false});
  }

  // Remaining capacity and unfrozen WEIGHT per resource (weighted max-min:
  // the fair share is per unit of weight).
  comp_res_.clear();
  for (ResourceId r = 0; r < resources_.size(); ++r) {
    comp_res_.push_back(r);
    headroom_[r] = resources_[r].capacity;
    unfrozen_[r] = 0;
  }
  for (auto& w : work_) {
    for (ResourceId r : w.flow->path) unfrozen_[r] += w.flow->weight;
  }

  SolveWork();

  for (auto& w : work_) {
    for (ResourceId r : w.flow->path) resources_[r].rate_sum += w.flow->rate;
  }
}

void FluidSimulator::SolveSeeded() {
  const std::uint64_t touched_before = stats_.flows_touched;
  if (!solver_timing_) {
    SolveSeededImpl();
  } else {
    const auto t0 = std::chrono::steady_clock::now();
    SolveSeededImpl();
    const auto t1 = std::chrono::steady_clock::now();
    stats_.solve_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  }
  if (trace_ != nullptr) {
    // Sim-time only: the number of flows re-rated, never the wall cost.
    trace_->Instant(
        trace::Category::kSolver, "rate_change", now_,
        {trace::Arg("flows", stats_.flows_touched - touched_before)});
  }
}

void FluidSimulator::SolveSeededImpl() {
  if (!incremental_) {
    RecomputeAll();
    return;
  }
  // Adaptive fallback: when the connected component keeps spanning every
  // active flow (heavily bridged topologies — incast, all-remote), the
  // component BFS is pure overhead on top of an unavoidable full solve.
  // After a streak of whole-graph components, solve fully for a cooldown
  // window, then probe incrementally again in case locality returned.
  if (full_solve_cooldown_ > 0) {
    --full_solve_cooldown_;
    RecomputeAll();
    return;
  }
  ++stats_.recompute_calls;

  // Connected component of the seed resources: alternate resource -> its
  // crossing flows -> their paths until closed.  Epoch stamps make the
  // visited sets allocation-free.
  ++solve_epoch_;
  comp_res_.clear();
  work_.clear();
  const auto add_res = [this](ResourceId r) {
    if (res_epoch_[r] != solve_epoch_) {
      res_epoch_[r] = solve_epoch_;
      comp_res_.push_back(r);
    }
  };
  for (ResourceId r : seed_res_) add_res(r);
  const std::size_t num_active = active_.size();
  for (std::size_t i = 0; i < comp_res_.size() && work_.size() < num_active;
       ++i) {
    for (const FlowEntry& e : flows_at_[comp_res_[i]]) {
      if (e.flow->visit_epoch == solve_epoch_) continue;
      e.flow->visit_epoch = solve_epoch_;
      work_.push_back(Work{e.id, e.flow, false});
      for (ResourceId r : e.flow->path) add_res(r);
    }
  }
  // Restore the deterministic orders the full pass iterates in: resources
  // by index (bottleneck tie-break), flows by id (freeze and rate_sum
  // accumulation order).  Required for bit-exact parity with RecomputeAll.
  std::sort(comp_res_.begin(), comp_res_.end());
  if (work_.size() == active_.size()) {
    // The component spans every active flow (heavily bridged topologies);
    // the map is already in id order, so rebuild instead of sorting.
    work_.clear();
    for (auto& [id, f] : active_) work_.push_back(Work{id, &f, false});
  } else {
    std::sort(work_.begin(), work_.end(),
              [](const Work& a, const Work& b) { return a.id < b.id; });
  }

  stats_.flows_touched += work_.size();
  if (work_.size() == active_.size()) {
    ++stats_.full_solves;
    if (full_solve_streak_ < kFullStreakThreshold) ++full_solve_streak_;
    if (full_solve_streak_ >= kFullStreakThreshold) {
      full_solve_cooldown_ = kFullSolveCooldown;
    }
  } else {
    full_solve_streak_ = 0;
  }

  for (ResourceId r : comp_res_) {
    UpdateSmoothedUtil(resources_[r], now_);
    headroom_[r] = resources_[r].capacity;
    unfrozen_[r] = 0;
    resources_[r].rate_sum = 0;
  }
  for (auto& w : work_) {
    w.flow->rate = 0;
    for (ResourceId r : w.flow->path) unfrozen_[r] += w.flow->weight;
  }

  SolveWork();

  for (auto& w : work_) {
    for (ResourceId r : w.flow->path) resources_[r].rate_sum += w.flow->rate;
  }

  if (crosscheck_) CheckAgainstFullSolve();
}

void FluidSimulator::CheckAgainstFullSolve() const {
  // Reference full progressive-filling pass over private scratch (the
  // simulator state is untouched), compared bit-exactly against the rates
  // the incremental solve left behind.  Debug/test-only: allocates.
  struct Ref {
    const Flow* flow;
    double rate = 0;
    bool frozen = false;
  };
  std::vector<Ref> ref;
  ref.reserve(active_.size());
  for (const auto& [id, f] : active_) ref.push_back(Ref{&f});
  std::vector<double> headroom(resources_.size());
  std::vector<double> unfrozen(resources_.size(), 0);
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    headroom[r] = resources_[r].capacity;
  }
  for (const Ref& w : ref) {
    for (ResourceId r : w.flow->path) unfrozen[r] += w.flow->weight;
  }
  std::size_t frozen_count = 0;
  while (frozen_count < ref.size()) {
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_res = resources_.size();
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      if (unfrozen[r] <= 0) continue;
      const double share = headroom[r] / unfrozen[r];
      if (share < best_share) {
        best_share = share;
        best_res = r;
      }
    }
    if (best_res == resources_.size()) {
      for (auto& w : ref) {
        if (!w.frozen) {
          w.rate = std::numeric_limits<double>::max();
          w.frozen = true;
          ++frozen_count;
        }
      }
      break;
    }
    for (auto& w : ref) {
      if (w.frozen) continue;
      bool crosses = false;
      for (ResourceId r : w.flow->path) {
        if (r == best_res) {
          crosses = true;
          break;
        }
      }
      if (!crosses) continue;
      w.rate = best_share * w.flow->weight;
      w.frozen = true;
      ++frozen_count;
      for (ResourceId r : w.flow->path) {
        unfrozen[r] -= w.flow->weight;
        headroom[r] -= w.rate;
        if (headroom[r] < 0) headroom[r] = 0;
      }
    }
  }
  for (const Ref& w : ref) {
    LMP_CHECK(w.rate == w.flow->rate)
        << "incremental solver diverged from full solve: rate "
        << w.flow->rate << " vs reference " << w.rate;
  }
  std::vector<double> rate_sum(resources_.size(), 0);
  for (const Ref& w : ref) {
    for (ResourceId r : w.flow->path) rate_sum[r] += w.rate;
  }
  for (std::size_t r = 0; r < resources_.size(); ++r) {
    LMP_CHECK(rate_sum[r] == resources_[r].rate_sum)
        << "incremental solver diverged on rate_sum of resource " << r << ": "
        << resources_[r].rate_sum << " vs reference " << rate_sum[r];
  }
}

SimTime FluidSimulator::MinRemainingDuration() const {
  // Durations (not absolute times) so precision is independent of now_ —
  // the Zeno guard Step() relies on lives here and only here.
  SimTime best = std::numeric_limits<SimTime>::infinity();
  for (const auto& [id, f] : active_) {
    if (f.rate <= 0) continue;
    best = std::min(best, f.remaining / f.rate * kNsPerSec);
  }
  return best;
}

SimTime FluidSimulator::NextCompletionTime() const {
  const SimTime best = MinRemainingDuration();
  return std::isfinite(best)
             ? now_ + best
             : std::numeric_limits<SimTime>::infinity();
}

void FluidSimulator::AdvanceTo(SimTime t) {
  assert(t + kTimeEpsilon >= now_);
  const SimTime dt = std::max<SimTime>(0, t - now_);
  if (dt > 0) {
    const double secs = dt / kNsPerSec;
    for (auto& [id, f] : active_) {
      const double moved = f.rate * secs;
      f.remaining -= moved;
      for (ResourceId r : f.path) resources_[r].bytes_served += moved;
    }
    for (auto& r : resources_) UpdateSmoothedUtil(r, t);
  }
  now_ = t;
}

bool FluidSimulator::Step() {
  // Shortest remaining duration among active flows, plus the flows that
  // achieve it (within a relative tolerance).  Working in durations and
  // force-completing the event-defining flows guarantees progress even when
  // now_ is large enough that absolute-time rounding would otherwise strand
  // sub-epsilon residues (a Zeno deadlock).
  const SimTime min_dt = MinRemainingDuration();
  const SimTime completion =
      std::isfinite(min_dt) ? now_ + min_dt
                            : std::numeric_limits<SimTime>::infinity();
  const SimTime timer = timers_.empty()
                            ? std::numeric_limits<SimTime>::infinity()
                            : timers_.front().when;
  if (!std::isfinite(completion) && !std::isfinite(timer)) return false;

  if (timer <= completion) {
    AdvanceTo(timer);
    std::pop_heap(timers_.begin(), timers_.end(),
                  [](const Timer& a, const Timer& b) { return b < a; });
    Timer t = std::move(timers_.back());
    timers_.pop_back();
    // Anything the callback changes (StartFlow, SetCapacity) re-solves its
    // own component; no blanket recompute is needed afterwards.
    t.cb(now_);
    return true;
  }

  // Flows whose remaining duration is (within tolerance) the minimum are
  // the ones this event completes; zero them before the epsilon sweep.
  const SimTime dt_tolerance = min_dt * 1e-9 + kTimeEpsilon;
  for (auto& [id, f] : active_) {
    if (f.rate <= 0) continue;
    if (f.remaining / f.rate * kNsPerSec <= min_dt + dt_tolerance) {
      f.remaining = 0;
    }
  }
  AdvanceTo(completion);

  // Collect every flow that finished at this instant.
  std::vector<std::pair<FlowId, FlowCallback>> done;
  seed_res_.clear();
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.remaining <= kByteEpsilon ||
        (it->second.rate > 0 &&
         it->second.remaining / it->second.rate * kNsPerSec < kTimeEpsilon)) {
      FinishRecord(it->first);
      done.emplace_back(it->first, std::move(it->second.on_done));
      seed_res_.insert(seed_res_.end(), it->second.path.begin(),
                       it->second.path.end());
      UnindexFlow(it->first, it->second.path);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  SolveSeeded();
  // Callbacks run after rates are consistent; they may start new flows.
  for (auto& [id, cb] : done) {
    if (cb) cb(id, now_);
    if (retention_ == RecordRetention::kDropCompleted) records_.erase(id);
  }
  return true;
}

void FluidSimulator::Run() {
  while (Step()) {
  }
}

Status FluidSimulator::RunUntilFlowDone(FlowId id) {
  if (id == kInvalidFlow || id >= next_flow_id_) {
    return NotFoundError("unknown flow");
  }
  // One lookup per iteration (records can be released mid-run); a missing
  // record for a known id means it was already retired, i.e. completed.
  while (true) {
    const auto it = records_.find(id);
    if (it == records_.end() || it->second.done) return Status::Ok();
    if (!Step()) {
      return InternalError("simulation drained before flow completed");
    }
  }
}

const FlowRecord* FluidSimulator::record(FlowId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

Status FluidSimulator::ReleaseRecord(FlowId id) {
  auto it = records_.find(id);
  if (it == records_.end()) return NotFoundError("no record for flow");
  if (!it->second.done) {
    return FailedPreconditionError("flow is still active");
  }
  records_.erase(it);
  return Status::Ok();
}

double FluidSimulator::FlowRate(FlowId id) const {
  auto it = active_.find(id);
  return it == active_.end() ? 0.0 : it->second.rate;
}

double FluidSimulator::BytesServed(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].bytes_served;
}

void FluidSimulator::ExportSolverMetrics(MetricsRegistry& registry) {
  registry.Increment("fluid.solver.recompute_calls",
                     stats_.recompute_calls - exported_.recompute_calls);
  registry.Increment("fluid.solver.flows_touched",
                     stats_.flows_touched - exported_.flows_touched);
  registry.Increment("fluid.solver.full_solves",
                     stats_.full_solves - exported_.full_solves);
  registry.Increment("fluid.solver.solve_ns",
                     stats_.solve_ns - exported_.solve_ns);
  exported_ = stats_;
}

}  // namespace lmp::sim
