#include "sim/solver_pool.h"

#include "common/logging.h"

namespace lmp::sim {

SolverPool::SolverPool(int threads) : threads_(threads) {
  LMP_CHECK(threads >= 1) << "SolverPool needs at least one thread";
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 0; t < threads - 1; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SolverPool::~SolverPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t SolverPool::DrainTasks() {
  std::size_t ran = 0;
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_count_) break;
    (*job_)(i);
    ++ran;
  }
  return ran;
}

void SolverPool::Run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    pending_.store(count, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  const std::size_t ran = DrainTasks();
  std::unique_lock<std::mutex> lk(mu_);
  if (ran > 0 &&
      pending_.fetch_sub(ran, std::memory_order_acq_rel) == ran) {
    // Caller finished the last tasks itself; nothing to wait for.
  } else {
    done_cv_.wait(lk, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  job_ = nullptr;
  job_count_ = 0;
}

void SolverPool::WorkerLoop() {
  std::uint64_t seen = 0;
  while (true) {
    std::unique_lock<std::mutex> lk(mu_);
    work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lk.unlock();

    const std::size_t ran = DrainTasks();

    if (ran > 0 &&
        pending_.fetch_sub(ran, std::memory_order_acq_rel) == ran) {
      std::lock_guard<std::mutex> done_lk(mu_);
      done_cv_.notify_one();
    }
  }
}

}  // namespace lmp::sim
