#include "common/metrics.h"

#include <chrono>
#include <sstream>

namespace lmp {
namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void MetricsRegistry::Increment(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::RecordValue(std::string_view name, std::uint64_t value,
                                  std::uint64_t max_value) {
  GetHistogram(name, max_value).Record(value);
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::uint64_t max_value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(max_value)).first;
  }
  return it->second;
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::Counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::Gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::Has(std::string_view name) const {
  return counters_.find(name) != counters_.end() ||
         gauges_.find(name) != gauges_.end() ||
         histograms_.find(name) != histograms_.end();
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::Report() const {
  TablePrinter table({"Metric", "Value", "Kind"});
  for (const auto& [name, value] : counters_) {
    table.AddRow({name, std::to_string(value), "counter"});
  }
  for (const auto& [name, value] : gauges_) {
    table.AddRow({name, TablePrinter::Num(value, 3), "gauge"});
  }
  for (const auto& [name, hist] : histograms_) {
    table.AddRow({name, hist.Summary(), "histogram"});
  }
  return table.ToString();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

ScopedTimer::ScopedTimer(MetricsRegistry* registry, std::string name)
    : registry_(registry),
      name_(MetricsRegistry::IsWallMetric(name)
                ? std::move(name)
                : std::string(MetricsRegistry::kWallPrefix) + name),
      start_ns_(NowNs()) {}

ScopedTimer::~ScopedTimer() {
  if (registry_ != nullptr) {
    registry_->SetGauge(name_, static_cast<double>(NowNs() - start_ns_));
  }
}

}  // namespace lmp
