#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lmp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row,
                      std::ostringstream& os) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  emit_row(header_, os);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row, os);
  return os.str();
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace lmp
