// Deterministic random number generation.
//
// All stochastic behaviour in the simulator and workloads flows through Rng
// so experiments are reproducible from a seed.  ZipfGenerator produces the
// skewed access patterns used by the migration and placement ablations.
#pragma once

#include <cstdint>
#include <vector>

namespace lmp {

// xoshiro256** — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // True with probability p.
  bool NextBernoulli(double p);

  // Exponentially distributed with the given mean.
  double NextExponential(double mean);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

// Zipf-distributed integers over [0, n).  theta in (0, 1) is the usual
// YCSB-style skew parameter (0.99 ~ heavily skewed).  Uses the Gray et al.
// rejection-free method with precomputed constants; O(1) per sample.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 42);

  std::uint64_t Next();

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(std::uint64_t n, double theta) const;

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace lmp
