// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with
// linear sub-buckets).  Used to report loaded-latency distributions for the
// Table 2 reproduction, and as the distribution instrument behind
// MetricsRegistry::GetHistogram (flow durations, drain completion times,
// recovery TTR) exported into the metrics JSON with p50/p99/p999.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmp {

class Histogram {
 public:
  // Tracks values in [1, max_value] with ~1.5% relative error.
  explicit Histogram(std::uint64_t max_value = 1ull << 40);

  void Record(std::uint64_t value);
  void RecordMany(std::uint64_t value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const;
  std::uint64_t max() const;
  double mean() const;

  // p in [0, 100].  The target rank is interpolated linearly inside its
  // bucket (ranks spread uniformly over [low, high]), then clamped to the
  // recorded [min, max] so a single value reports itself exactly.
  std::uint64_t Percentile(double p) const;

  std::uint64_t p50() const { return Percentile(50); }
  std::uint64_t p99() const { return Percentile(99); }
  std::uint64_t p999() const { return Percentile(99.9); }

  void Merge(const Histogram& other);
  void Reset();

  // "count=... mean=... p50=... p99=... max=..."
  std::string Summary() const;

  // Non-empty buckets, ascending, for structured exporters.  `high` is the
  // largest value the bucket can hold (inclusive).
  struct Bucket {
    std::uint64_t low = 0;
    std::uint64_t high = 0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> NonZeroBuckets() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 linear sub-buckets/octave
  std::size_t BucketIndex(std::uint64_t value) const;
  std::uint64_t BucketLow(std::size_t index) const;
  std::uint64_t BucketHigh(std::size_t index) const;

  std::uint64_t max_value_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace lmp
