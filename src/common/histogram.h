// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with
// linear sub-buckets).  Used to report loaded-latency distributions for the
// Table 2 reproduction and the translation/coherence microbenchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmp {

class Histogram {
 public:
  // Tracks values in [1, max_value] with ~1.5% relative error.
  explicit Histogram(std::uint64_t max_value = 1ull << 40);

  void Record(std::uint64_t value);
  void RecordMany(std::uint64_t value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const;
  std::uint64_t max() const;
  double mean() const;

  // p in [0, 100].
  std::uint64_t Percentile(double p) const;

  void Merge(const Histogram& other);
  void Reset();

  // "count=... mean=... p50=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 linear sub-buckets/octave
  std::size_t BucketIndex(std::uint64_t value) const;
  std::uint64_t BucketLow(std::size_t index) const;

  std::uint64_t max_value_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace lmp
