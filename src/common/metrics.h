// Metrics: a lightweight named counter/gauge/histogram registry.
//
// The runtime's components export operational counters (allocations,
// migrations, coherence messages, recovery bytes) through a shared
// registry so operators — and the example binaries — can dump one table
// instead of spelunking component stats structs.  Counters are monotonic;
// gauges are set-to-value; histograms are log-bucketed distribution
// instruments (flow durations, drain completion times, recovery TTR).
// Lookup is by name; creation is idempotent.
//
// Determinism contract: everything recorded here is expected to derive
// from simulated time and simulation state, because the registry feeds the
// byte-deterministic metrics JSON (trace::MetricsJson).  The one sanctioned
// escape hatch is the "wall." namespace: metrics named "wall.*" hold
// wall-clock measurements (ScopedTimer, solver timing), show up in
// Report() for operators, and are EXCLUDED from the deterministic export.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/histogram.h"
#include "common/table.h"

namespace lmp {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  // Metrics under this prefix carry wall-clock readings: visible in
  // Report(), skipped by deterministic exporters.
  static constexpr std::string_view kWallPrefix = "wall.";
  static bool IsWallMetric(std::string_view name) {
    return name.substr(0, kWallPrefix.size()) == kWallPrefix;
  }

  // Monotonic counter; created on first use.
  void Increment(std::string_view name, std::uint64_t delta = 1);
  // Point-in-time gauge; created on first use.
  void SetGauge(std::string_view name, double value);
  // Distribution sample; the histogram is created on first use with
  // `max_value` (later calls reuse the existing instrument).
  void RecordValue(std::string_view name, std::uint64_t value,
                   std::uint64_t max_value = 1ull << 40);

  // Named histogram instrument, created on first use.  Callers on hot
  // paths cache the reference instead of looking it up per sample.
  Histogram& GetHistogram(std::string_view name,
                          std::uint64_t max_value = 1ull << 40);
  // Null when no such histogram exists.
  const Histogram* FindHistogram(std::string_view name) const;

  std::uint64_t Counter(std::string_view name) const;
  double Gauge(std::string_view name) const;
  bool Has(std::string_view name) const;
  std::size_t size() const { return counters_.size() + gauges_.size(); }

  void Reset();

  // All metrics as an aligned table, sorted by name.
  std::string Report() const;

  // Sorted-by-name iteration, for structured exporters (trace::MetricsJson).
  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // A process-wide registry for components without an injected one.
  static MetricsRegistry& Global();

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Scoped timer that records elapsed wall nanoseconds into a gauge on
// destruction (for coarse operator-facing timings, not benchmarks).  The
// gauge lands in the "wall." namespace — "elapsed" becomes "wall.elapsed"
// unless the name is already prefixed — so wall time never leaks into the
// deterministic metrics export.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::uint64_t start_ns_;
};

}  // namespace lmp
