// Metrics: a lightweight named counter/gauge registry.
//
// The runtime's components export operational counters (allocations,
// migrations, coherence messages, recovery bytes) through a shared
// registry so operators — and the example binaries — can dump one table
// instead of spelunking component stats structs.  Counters are monotonic;
// gauges are set-to-value.  Lookup is by name; creation is idempotent.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/table.h"

namespace lmp {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  // Monotonic counter; created on first use.
  void Increment(std::string_view name, std::uint64_t delta = 1);
  // Point-in-time gauge; created on first use.
  void SetGauge(std::string_view name, double value);

  std::uint64_t Counter(std::string_view name) const;
  double Gauge(std::string_view name) const;
  bool Has(std::string_view name) const;
  std::size_t size() const { return counters_.size() + gauges_.size(); }

  void Reset();

  // All metrics as an aligned table, sorted by name.
  std::string Report() const;

  // Sorted-by-name iteration, for structured exporters (trace::MetricsJson).
  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }

  // A process-wide registry for components without an injected one.
  static MetricsRegistry& Global();

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

// Scoped timer that records elapsed wall nanoseconds into a gauge on
// destruction (for coarse operator-facing timings, not benchmarks).
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::uint64_t start_ns_;
};

}  // namespace lmp
