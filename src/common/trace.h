// Deterministic sim-time event tracing and metrics export (lmp::trace).
//
// The paper's §5 challenges — shared-region sizing, locality balancing,
// failure handling — are tuned from *measurement*.  This subsystem records
// what the runtime does and when (in simulated time): span events with
// begin/end timestamps (flows, shipped tasks), instant events (migrations,
// crashes, replica creation), and counter samples (link utilization).  The
// export format is Chrome trace_event JSON, loadable in chrome://tracing
// or https://ui.perfetto.dev, plus a structured JSON dump of every
// MetricsRegistry counter and gauge.
//
// Determinism contract: event payloads contain ONLY simulated time and
// values derived from simulation state — never wall clock — so two runs of
// the same experiment produce byte-identical trace files.  Components hold
// a nullable TraceCollector* and skip emission entirely when it is null,
// so tracing is near-zero-cost when disabled.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp {
class MetricsRegistry;
}

namespace lmp::trace {

// Event categories: the "cat" field of the exported events.  Stable names
// (see CategoryName) so trace consumers can filter.
enum class Category : std::uint8_t {
  kFlow,         // fluid-simulator flows (begin/end spans per flow id)
  kSolver,       // rate recomputation events
  kMigration,    // balancer rounds and per-segment moves
  kReplication,  // replica creation / redundancy restoration
  kCrash,        // server crashes, failovers, lost segments
  kTask,         // shipped-compute task execution spans
  kLink,         // link/DRAM utilization counter samples
  kHarness,      // bench-harness markers (per-deployment runs)
  kChaos,        // injected faults and chaos-driven recovery transfers
  kCtrl,         // control-plane epochs, resizes, drains, admission
};

std::string_view CategoryName(Category cat);

// Deterministic JSON building blocks, shared by every sidecar exporter
// (trace, metrics, time series, SLO ledger, flight recorder) so all of
// them render numbers and strings identically.
//
// JsonEscape: escapes for embedding inside a JSON string literal (no
// surrounding quotes).  JsonNumber: renders a double byte-stably — %.17g
// round-trips, integral values print without exponent or fraction.
std::string JsonEscape(std::string_view s);
std::string JsonNumber(double v);
// Writes `contents` to `path` (wb), reporting short writes as errors.
Status WriteTextFile(const std::string& path, const std::string& contents);

// One key/value argument attached to an event.  The value is stored
// pre-rendered as JSON (numbers unquoted, strings quoted and escaped), so
// emission is a single append at export time.
struct Arg {
  Arg(std::string_view k, std::string_view v);
  Arg(std::string_view k, const char* v) : Arg(k, std::string_view(v)) {}
  Arg(std::string_view k, double v);
  Arg(std::string_view k, std::uint64_t v);
  Arg(std::string_view k, std::int64_t v);
  Arg(std::string_view k, int v) : Arg(k, static_cast<std::int64_t>(v)) {}
  Arg(std::string_view k, unsigned v)
      : Arg(k, static_cast<std::uint64_t>(v)) {}

  std::string key;
  std::string json_value;
};

class TraceCollector {
 public:
  TraceCollector() = default;

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // Optional sim-time source for emitters that do not carry a timestamp in
  // their call signature (PoolManager, ReplicationManager).  Must return
  // simulated time; never wire a wall clock here.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  // Current simulated time from the clock source (0 when none is set).
  SimTime now() const { return clock_ ? clock_() : 0; }

  // Starts a new "process" (Perfetto top-level group): subsequent events
  // carry the new pid.  Use one process per independent simulation timeline
  // so restarts at t=0 (e.g. one sim per scheme in bench_failure) do not
  // interleave on shared tracks.
  void BeginProcess(std::string_view name);

  // Span events: Begin/End pairs on a caller-chosen track (the "tid").
  // Give each concurrent entity its own track (flow id, server*slots+slot)
  // so spans nest trivially and per-track timestamps stay monotonic.
  void Begin(Category cat, std::string_view name, std::uint64_t track,
             SimTime ts, std::initializer_list<Arg> args = {});
  void End(Category cat, std::string_view name, std::uint64_t track,
           SimTime ts);

  // Instant event (a point in time) on `track` (default 0).
  void Instant(Category cat, std::string_view name, SimTime ts,
               std::initializer_list<Arg> args = {},
               std::uint64_t track = 0);

  // Counter sample: renders as a value-over-time track in the viewer.
  void Counter(Category cat, std::string_view name, SimTime ts,
               double value);

  std::size_t event_count() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void Clear() { events_.clear(); }

  // Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ns"}.
  // Timestamps are exported in microseconds (the format's unit) with
  // fixed-precision formatting, so output is byte-deterministic.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'B', 'E', 'i', 'C', or 'M' (metadata)
    Category cat;
    std::string name;
    std::uint64_t pid;
    std::uint64_t tid;
    SimTime ts_ns;
    std::string args_json;  // rendered "k":v,... (no braces), may be empty
  };

  void Push(char phase, Category cat, std::string_view name,
            std::uint64_t track, SimTime ts,
            std::initializer_list<Arg> args);

  std::vector<Event> events_;
  std::function<SimTime()> clock_;
  std::uint64_t pid_ = 1;
};

// Structured JSON dump of `registry`:
// {"counters":{name:value,...},"gauges":{name:value,...},
//  "histograms":{name:{count,min,max,mean,p50,p99,p999,
//                      buckets:[[low,high,count],...]},...}}
// with keys in sorted (map) order.  Every registered metric appears EXCEPT
// the "wall." namespace: those carry wall-clock readings (ScopedTimer,
// solver timing) and would break the byte-determinism contract, so they
// stay operator-only (MetricsRegistry::Report).
std::string MetricsJson(const MetricsRegistry& registry);
Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace lmp::trace
