// Byte-size and simulated-time units used throughout the library.
//
// Simulated time is kept in double-precision nanoseconds (the fluid solver
// needs fractional event times); byte quantities are unsigned 64-bit.
// The paper quotes capacities in GB and bandwidth in GB/s; we follow its
// convention that 1 GB = 2^30 bytes for capacities (DIMM sizes) and
// 10^9 bytes/s for bandwidth, matching how Pond/UPI numbers are reported.
#pragma once

#include <cstdint>

namespace lmp {

using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024ull;
inline constexpr Bytes kMiB = 1024ull * kKiB;
inline constexpr Bytes kGiB = 1024ull * kMiB;

constexpr Bytes KiB(std::uint64_t n) { return n * kKiB; }
constexpr Bytes MiB(std::uint64_t n) { return n * kMiB; }
constexpr Bytes GiB(std::uint64_t n) { return n * kGiB; }

// Simulated time in nanoseconds.
using SimTime = double;
inline constexpr SimTime kNsPerUs = 1e3;
inline constexpr SimTime kNsPerMs = 1e6;
inline constexpr SimTime kNsPerSec = 1e9;

constexpr SimTime Nanoseconds(double n) { return n; }
constexpr SimTime Microseconds(double n) { return n * kNsPerUs; }
constexpr SimTime Milliseconds(double n) { return n * kNsPerMs; }
constexpr SimTime Seconds(double n) { return n * kNsPerSec; }

// Bandwidth in bytes per simulated second.
using BytesPerSec = double;

// Decimal giga, used for bandwidth figures (97 GB/s == 97e9 B/s).
constexpr BytesPerSec GBps(double n) { return n * 1e9; }

// Convert a byte count moved over a duration into GB/s (decimal).
constexpr double ToGBps(double bytes, SimTime elapsed_ns) {
  return elapsed_ns > 0 ? (bytes / elapsed_ns) : 0.0;  // B/ns == GB/s
}

}  // namespace lmp
