#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>

namespace lmp {

Histogram::Histogram(std::uint64_t max_value) : max_value_(max_value) {
  assert(max_value >= 1);
  buckets_.resize(BucketIndex(max_value_) + 1, 0);
}

std::size_t Histogram::BucketIndex(std::uint64_t value) const {
  if (value == 0) value = 1;
  // Octave = position of the highest set bit; linear sub-bucket inside it.
  const int octave = 63 - std::countl_zero(value);
  if (octave <= kSubBucketBits) {
    // Small values resolve exactly.
    return static_cast<std::size_t>(value);
  }
  const int shift = octave - kSubBucketBits;
  const auto sub = static_cast<std::size_t>(value >> shift) -
                   (1ull << kSubBucketBits);
  const std::size_t base =
      (1ull << kSubBucketBits) +
      static_cast<std::size_t>(octave - kSubBucketBits) *
          (1ull << (kSubBucketBits - 1));
  // Each octave above the exact range contributes 2^(bits-1) buckets
  // (the top half of the sub-bucket range).
  return base + (sub >> 1);
}

std::uint64_t Histogram::BucketLow(std::size_t index) const {
  const std::size_t exact = 1ull << kSubBucketBits;
  if (index <= exact) return index;
  const std::size_t per_octave = 1ull << (kSubBucketBits - 1);
  const std::size_t rel = index - exact;
  const std::size_t octave = rel / per_octave;
  const std::size_t sub = rel % per_octave;
  const int shift = static_cast<int>(octave) + 1;
  const std::uint64_t base = 1ull << (kSubBucketBits + octave);
  return base + (static_cast<std::uint64_t>(sub) << shift);
}

std::uint64_t Histogram::BucketHigh(std::size_t index) const {
  // The bucket holds [low(i), low(i+1) - 1]; the last bucket is capped at
  // max_value_ (RecordMany clamps values there).
  if (index + 1 >= buckets_.size()) return max_value_;
  return BucketLow(index + 1) - 1;
}

void Histogram::Record(std::uint64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  value = std::min(value, max_value_);
  const std::size_t idx = BucketIndex(value);
  buckets_[idx] += n;
  count_ += n;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value) * static_cast<double>(n);
}

std::uint64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }
std::uint64_t Histogram::max() const { return max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const auto prev = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      const std::uint64_t low = BucketLow(i);
      const std::uint64_t high = BucketHigh(i);
      const double frac = std::clamp(
          (target - prev) / static_cast<double>(buckets_[i]), 0.0, 1.0);
      const auto value = static_cast<std::uint64_t>(
          static_cast<double>(low) +
          frac * static_cast<double>(high - low) + 0.5);
      return std::clamp(value, min(), max());
    }
  }
  return max_;
}

std::vector<Histogram::Bucket> Histogram::NonZeroBuckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    out.push_back(Bucket{BucketLow(i), BucketHigh(i), buckets_[i]});
  }
  return out;
}

void Histogram::Merge(const Histogram& other) {
  assert(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
  sum_ = 0.0;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " p50=" << Percentile(50)
     << " p99=" << Percentile(99) << " max=" << max();
  return os.str();
}

}  // namespace lmp
