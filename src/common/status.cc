#include "common/status.h"

namespace lmp {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfMemoryError(std::string message) {
  return Status(StatusCode::kOutOfMemory, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}

bool IsInvalidArgument(const Status& s) {
  return s.code() == StatusCode::kInvalidArgument;
}
bool IsOutOfMemory(const Status& s) {
  return s.code() == StatusCode::kOutOfMemory;
}
bool IsNotFound(const Status& s) { return s.code() == StatusCode::kNotFound; }
bool IsUnavailable(const Status& s) {
  return s.code() == StatusCode::kUnavailable;
}
bool IsFailedPrecondition(const Status& s) {
  return s.code() == StatusCode::kFailedPrecondition;
}
bool IsDataLoss(const Status& s) { return s.code() == StatusCode::kDataLoss; }

}  // namespace lmp
