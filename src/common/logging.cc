#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lmp {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kFatal: return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace lmp
