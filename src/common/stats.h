// Small statistics helpers: Welford running moments and a byte-rate meter.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/units.h"

namespace lmp {

// Numerically stable running mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }

  void Reset() { *this = RunningStats(); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Accumulates bytes moved against simulated time; reports GB/s.
class RateMeter {
 public:
  void Add(double bytes, SimTime start, SimTime end) {
    bytes_ += bytes;
    if (!started_ || start < first_) first_ = start;
    if (!started_ || end > last_) last_ = end;
    started_ = true;
  }

  double bytes() const { return bytes_; }
  SimTime elapsed() const { return started_ ? last_ - first_ : 0.0; }
  double gbps() const { return ToGBps(bytes_, elapsed()); }

  void Reset() { *this = RateMeter(); }

 private:
  double bytes_ = 0.0;
  SimTime first_ = 0.0;
  SimTime last_ = 0.0;
  bool started_ = false;
};

}  // namespace lmp
