#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace lmp {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four lanes via SplitMix64 as recommended by the xoshiro authors.
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's method without bias correction is fine for simulation use,
  // but the debiased loop is cheap; keep it exact.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(std::uint64_t n, double theta) const {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto idx = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

}  // namespace lmp
