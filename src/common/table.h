// ASCII table printer: used by benches to print the paper's tables/figures
// as aligned rows a reader can diff against the published numbers.
#pragma once

#include <string>
#include <vector>

namespace lmp {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: format doubles with the given precision.
  static std::string Num(double v, int precision = 1);

  // Render with column alignment and a header separator.
  std::string ToString() const;

  void Print() const;  // to stdout

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lmp
