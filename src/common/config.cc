#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

namespace lmp {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

Status ParsePair(std::string_view token, Config* config) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return InvalidArgumentError("expected key=value, got '" +
                                std::string(token) + "'");
  }
  config->Set(std::string(Trim(token.substr(0, eq))),
              std::string(Trim(token.substr(eq + 1))));
  return Status::Ok();
}

}  // namespace

StatusOr<Config> Config::Parse(std::string_view text) {
  Config config;
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Strip comments line by line.
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    // Tokenize on whitespace.
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      std::size_t j = i;
      while (j < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      if (j > i) {
        LMP_RETURN_IF_ERROR(ParsePair(line.substr(i, j - i), &config));
      }
      i = j;
    }
  }
  return config;
}

StatusOr<Config> Config::FromArgs(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    LMP_RETURN_IF_ERROR(ParsePair(argv[i], &config));
  }
  return config;
}

void Config::Set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::Has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

StatusOr<std::string> Config::GetString(std::string_view key,
                                        std::string fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

StatusOr<std::int64_t> Config::GetInt(std::string_view key,
                                      std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t out = 0;
  const auto& v = it->second;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    return InvalidArgumentError("bad integer for '" + std::string(key) +
                                "': " + v);
  }
  return out;
}

StatusOr<double> Config::GetDouble(std::string_view key,
                                   double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double out = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) {
      return InvalidArgumentError("bad double for '" + std::string(key) +
                                  "'");
    }
    return out;
  } catch (const std::exception&) {
    return InvalidArgumentError("bad double for '" + std::string(key) +
                                "': " + it->second);
  }
}

StatusOr<bool> Config::GetBool(std::string_view key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return InvalidArgumentError("bad bool for '" + std::string(key) + "': " +
                              it->second);
}

StatusOr<Bytes> Config::GetBytes(std::string_view key,
                                 Bytes fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string_view v = it->second;
  Bytes multiplier = 1;
  if (!v.empty()) {
    switch (std::tolower(static_cast<unsigned char>(v.back()))) {
      case 'k': multiplier = kKiB; v.remove_suffix(1); break;
      case 'm': multiplier = kMiB; v.remove_suffix(1); break;
      case 'g': multiplier = kGiB; v.remove_suffix(1); break;
      default: break;
    }
  }
  std::uint64_t out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    return InvalidArgumentError("bad size for '" + std::string(key) +
                                "': " + it->second);
  }
  return out * multiplier;
}

std::string Config::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : values_) {
    if (!first) os << " ";
    os << k << "=" << v;
    first = false;
  }
  return os.str();
}

}  // namespace lmp
