// Minimal leveled logger.
//
// Severity is filtered globally; the default (kWarning) keeps tests and
// benchmarks quiet.  LMP_CHECK aborts on violated runtime invariants — used
// for programmer errors only, never for data-dependent conditions (those
// return Status).
#pragma once

#include <sstream>
#include <string_view>

namespace lmp {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is filtered out.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace lmp

#define LMP_LOG_IS_ON(level) \
  (::lmp::LogLevel::level >= ::lmp::GetLogLevel())

#define LMP_LOG(level)                                              \
  !LMP_LOG_IS_ON(level)                                             \
      ? (void)0                                                     \
      : ::lmp::internal::LogMessageVoidify() &                      \
            ::lmp::internal::LogMessage(::lmp::LogLevel::level,     \
                                        __FILE__, __LINE__)

#define LMP_CHECK(cond)                                             \
  (cond) ? (void)0                                                  \
         : ::lmp::internal::LogMessageVoidify() &                   \
               ::lmp::internal::LogMessage(::lmp::LogLevel::kFatal, \
                                           __FILE__, __LINE__)      \
                   << "Check failed: " #cond " "

#define LMP_CHECK_OK(expr)                                          \
  do {                                                              \
    const ::lmp::Status lmp_check_status_ = (expr);                 \
    LMP_CHECK(lmp_check_status_.ok()) << lmp_check_status_;         \
  } while (0)
