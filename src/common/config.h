// Minimal key=value configuration with typed getters.
//
// Benches and examples take overrides like `vector_gib=64 link=link1`
// either from a config string/file or argv, so experiments are
// reproducible from a recorded command line.  Size values accept unit
// suffixes: 4k / 16m / 2g (binary multiples).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/units.h"

namespace lmp {

class Config {
 public:
  Config() = default;

  // Parses "a=1 b=foo  c=2g" (whitespace- or newline-separated pairs;
  // '#' starts a comment until end of line).
  static StatusOr<Config> Parse(std::string_view text);

  // Parses argv-style tokens ("key=value"); non-matching tokens error.
  static StatusOr<Config> FromArgs(int argc, const char* const* argv);

  void Set(std::string key, std::string value);
  bool Has(std::string_view key) const;

  // Typed getters return the fallback when the key is absent and an error
  // only when the value is present but malformed.
  StatusOr<std::string> GetString(std::string_view key,
                                  std::string fallback = "") const;
  StatusOr<std::int64_t> GetInt(std::string_view key,
                                std::int64_t fallback = 0) const;
  StatusOr<double> GetDouble(std::string_view key,
                             double fallback = 0) const;
  StatusOr<bool> GetBool(std::string_view key, bool fallback = false) const;
  // Accepts raw bytes or k/m/g suffixes (KiB/MiB/GiB).
  StatusOr<Bytes> GetBytes(std::string_view key, Bytes fallback = 0) const;

  std::size_t size() const { return values_.size(); }
  std::string ToString() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace lmp
