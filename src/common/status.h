// Status / StatusOr<T>: lightweight error propagation for the LMP library.
//
// The runtime avoids exceptions on hot paths (allocation, translation,
// migration); fallible operations return Status or StatusOr<T>.  The set of
// codes is deliberately small and maps onto the failure classes the paper's
// runtime must surface: capacity exhaustion (§4.5), addressing faults (§5),
// and crashed hosts (§5 "Failure domains").
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace lmp {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // no such segment / server / key
  kAlreadyExists,     // duplicate registration
  kOutOfMemory,       // capacity exhausted (the Figure-5 "infeasible" case)
  kFailedPrecondition,// operation illegal in current state
  kUnavailable,       // target server crashed / unreachable
  kDataLoss,          // unrecoverable loss (insufficient replicas)
  kInternal,          // invariant violation inside the runtime
  kUnimplemented,
};

std::string_view StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Factory helpers, mirroring absl naming so call sites read naturally.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfMemoryError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

bool IsInvalidArgument(const Status& s);
bool IsOutOfMemory(const Status& s);
bool IsNotFound(const Status& s);
bool IsUnavailable(const Status& s);
bool IsFailedPrecondition(const Status& s);
bool IsDataLoss(const Status& s);

// StatusOr<T>: either an OK status with a value, or a non-OK status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lmp

// Propagate a non-OK Status from an expression.
#define LMP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::lmp::Status lmp_status_ = (expr);            \
    if (!lmp_status_.ok()) return lmp_status_;     \
  } while (0)

// Assign the value of a StatusOr expression or propagate its error.
#define LMP_ASSIGN_OR_RETURN(lhs, expr)            \
  LMP_ASSIGN_OR_RETURN_IMPL_(                      \
      LMP_STATUS_CONCAT_(statusor_, __LINE__), lhs, expr)

#define LMP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define LMP_STATUS_CONCAT_(a, b) LMP_STATUS_CONCAT_IMPL_(a, b)
#define LMP_STATUS_CONCAT_IMPL_(a, b) a##b
