#include "common/trace.h"

#include <cinttypes>
#include <cstdio>

#include "common/metrics.h"

namespace lmp::trace {

// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Renders a double as a JSON number deterministically.  %.17g round-trips
// doubles exactly; integral values print without an exponent or fraction.
std::string JsonNumber(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v >= -9.2e18 && v <= 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open " + path + " for writing");
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), f);
  const int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return InternalError("short write to " + path);
  }
  return Status::Ok();
}

namespace {

// Timestamp in microseconds (the trace_event unit) from sim nanoseconds.
// Fixed three decimal places keep full ns resolution and byte-stable
// output.
std::string TimestampJson(SimTime ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e3);
  return buf;
}

std::string RenderArgs(std::initializer_list<Arg> args) {
  std::string out;
  for (const Arg& a : args) {
    if (!out.empty()) out += ',';
    out += '"';
    out += JsonEscape(a.key);
    out += "\":";
    out += a.json_value;
  }
  return out;
}

}  // namespace

std::string_view CategoryName(Category cat) {
  switch (cat) {
    case Category::kFlow:
      return "flow";
    case Category::kSolver:
      return "solver";
    case Category::kMigration:
      return "migration";
    case Category::kReplication:
      return "replication";
    case Category::kCrash:
      return "crash";
    case Category::kTask:
      return "task";
    case Category::kLink:
      return "link";
    case Category::kHarness:
      return "harness";
    case Category::kChaos:
      return "chaos";
    case Category::kCtrl:
      return "ctrl";
  }
  return "unknown";
}

Arg::Arg(std::string_view k, std::string_view v)
    : key(k), json_value('"' + JsonEscape(v) + '"') {}

Arg::Arg(std::string_view k, double v) : key(k), json_value(JsonNumber(v)) {}

Arg::Arg(std::string_view k, std::uint64_t v) : key(k) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  json_value = buf;
}

Arg::Arg(std::string_view k, std::int64_t v) : key(k) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  json_value = buf;
}

void TraceCollector::BeginProcess(std::string_view name) {
  ++pid_;
  events_.push_back(Event{'M', Category::kHarness, "process_name", pid_, 0,
                          0,
                          "\"name\":\"" + JsonEscape(name) + '"'});
}

void TraceCollector::Push(char phase, Category cat, std::string_view name,
                          std::uint64_t track, SimTime ts,
                          std::initializer_list<Arg> args) {
  events_.push_back(Event{phase, cat, std::string(name), pid_, track, ts,
                          RenderArgs(args)});
}

void TraceCollector::Begin(Category cat, std::string_view name,
                           std::uint64_t track, SimTime ts,
                           std::initializer_list<Arg> args) {
  Push('B', cat, name, track, ts, args);
}

void TraceCollector::End(Category cat, std::string_view name,
                         std::uint64_t track, SimTime ts) {
  Push('E', cat, name, track, ts, {});
}

void TraceCollector::Instant(Category cat, std::string_view name, SimTime ts,
                             std::initializer_list<Arg> args,
                             std::uint64_t track) {
  Push('i', cat, name, track, ts, args);
}

void TraceCollector::Counter(Category cat, std::string_view name, SimTime ts,
                             double value) {
  Push('C', cat, name, 0, ts, {Arg("value", value)});
}

std::string TraceCollector::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(e.name);
    out += "\",\"cat\":\"";
    out += CategoryName(e.cat);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    out += TimestampJson(e.ts_ns);
    std::snprintf(buf, sizeof(buf), ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64,
                  e.pid, e.tid);
    out += buf;
    if (!e.args_json.empty()) {
      out += ",\"args\":{";
      out += e.args_json;
      out += '}';
    }
    // Instant events: scoped to the thread (track) they are recorded on.
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  return WriteTextFile(path, ToChromeJson());
}

std::string MetricsJson(const MetricsRegistry& registry) {
  char buf[32];
  const auto u64 = [&buf](std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return std::string(buf);
  };
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    if (MetricsRegistry::IsWallMetric(name)) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += u64(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    if (MetricsRegistry::IsWallMetric(name)) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += JsonNumber(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : registry.histograms()) {
    if (MetricsRegistry::IsWallMetric(name)) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":{\"count\":";
    out += u64(hist.count());
    out += ",\"min\":";
    out += u64(hist.min());
    out += ",\"max\":";
    out += u64(hist.max());
    out += ",\"mean\":";
    out += JsonNumber(hist.mean());
    out += ",\"p50\":";
    out += u64(hist.p50());
    out += ",\"p99\":";
    out += u64(hist.p99());
    out += ",\"p999\":";
    out += u64(hist.p999());
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (const Histogram::Bucket& b : hist.NonZeroBuckets()) {
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '[';
      out += u64(b.low);
      out += ',';
      out += u64(b.high);
      out += ',';
      out += u64(b.count);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path) {
  return WriteTextFile(path, MetricsJson(registry));
}

}  // namespace lmp::trace
