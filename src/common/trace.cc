#include "common/trace.h"

#include <cinttypes>
#include <cstdio>

#include "common/metrics.h"

namespace lmp::trace {
namespace {

// Escapes a string for embedding inside a JSON string literal.
std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Renders a double as a JSON number deterministically.  %.17g round-trips
// doubles exactly; integral values print without an exponent or fraction.
std::string NumberJson(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v >= -9.2e18 && v <= 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Timestamp in microseconds (the trace_event unit) from sim nanoseconds.
// Fixed three decimal places keep full ns resolution and byte-stable
// output.
std::string TimestampJson(SimTime ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e3);
  return buf;
}

std::string RenderArgs(std::initializer_list<Arg> args) {
  std::string out;
  for (const Arg& a : args) {
    if (!out.empty()) out += ',';
    out += '"';
    out += EscapeJson(a.key);
    out += "\":";
    out += a.json_value;
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open " + path + " for writing");
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), f);
  const int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return InternalError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace

std::string_view CategoryName(Category cat) {
  switch (cat) {
    case Category::kFlow:
      return "flow";
    case Category::kSolver:
      return "solver";
    case Category::kMigration:
      return "migration";
    case Category::kReplication:
      return "replication";
    case Category::kCrash:
      return "crash";
    case Category::kTask:
      return "task";
    case Category::kLink:
      return "link";
    case Category::kHarness:
      return "harness";
    case Category::kChaos:
      return "chaos";
    case Category::kCtrl:
      return "ctrl";
  }
  return "unknown";
}

Arg::Arg(std::string_view k, std::string_view v)
    : key(k), json_value('"' + EscapeJson(v) + '"') {}

Arg::Arg(std::string_view k, double v) : key(k), json_value(NumberJson(v)) {}

Arg::Arg(std::string_view k, std::uint64_t v) : key(k) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  json_value = buf;
}

Arg::Arg(std::string_view k, std::int64_t v) : key(k) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  json_value = buf;
}

void TraceCollector::BeginProcess(std::string_view name) {
  ++pid_;
  events_.push_back(Event{'M', Category::kHarness, "process_name", pid_, 0,
                          0,
                          "\"name\":\"" + EscapeJson(name) + '"'});
}

void TraceCollector::Push(char phase, Category cat, std::string_view name,
                          std::uint64_t track, SimTime ts,
                          std::initializer_list<Arg> args) {
  events_.push_back(Event{phase, cat, std::string(name), pid_, track, ts,
                          RenderArgs(args)});
}

void TraceCollector::Begin(Category cat, std::string_view name,
                           std::uint64_t track, SimTime ts,
                           std::initializer_list<Arg> args) {
  Push('B', cat, name, track, ts, args);
}

void TraceCollector::End(Category cat, std::string_view name,
                         std::uint64_t track, SimTime ts) {
  Push('E', cat, name, track, ts, {});
}

void TraceCollector::Instant(Category cat, std::string_view name, SimTime ts,
                             std::initializer_list<Arg> args,
                             std::uint64_t track) {
  Push('i', cat, name, track, ts, args);
}

void TraceCollector::Counter(Category cat, std::string_view name, SimTime ts,
                             double value) {
  Push('C', cat, name, 0, ts, {Arg("value", value)});
}

std::string TraceCollector::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += EscapeJson(e.name);
    out += "\",\"cat\":\"";
    out += CategoryName(e.cat);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    out += TimestampJson(e.ts_ns);
    std::snprintf(buf, sizeof(buf), ",\"pid\":%" PRIu64 ",\"tid\":%" PRIu64,
                  e.pid, e.tid);
    out += buf;
    if (!e.args_json.empty()) {
      out += ",\"args\":{";
      out += e.args_json;
      out += '}';
    }
    // Instant events: scoped to the thread (track) they are recorded on.
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  return WriteFile(path, ToChromeJson());
}

std::string MetricsJson(const MetricsRegistry& registry) {
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[32];
  for (const auto& [name, value] : registry.counters()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += EscapeJson(name);
    out += "\":";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += EscapeJson(name);
    out += "\":";
    out += NumberJson(value);
  }
  out += "}}";
  return out;
}

Status WriteMetricsJson(const MetricsRegistry& registry,
                        const std::string& path) {
  return WriteFile(path, MetricsJson(registry));
}

}  // namespace lmp::trace
