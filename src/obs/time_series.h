// Deterministic time-series telemetry (lmp::obs).
//
// The trace subsystem (common/trace.h) records *events*; this records
// *state over time*: a TimeSeriesRecorder snapshots a set of registered
// probes — gauges (doubles read from simulation state: local fraction,
// link utilization) and counters (monotonic uint64s: solver shard tasks,
// degraded bytes) — at a fixed simulated-time interval, driven by the
// fluid simulator's own timer wheel.  The samples export as a structured
// JSON sidecar so experiments can plot controller convergence, recovery
// ramps, and utilization without parsing stdout tables.
//
// Determinism contract (same as lmp::trace): sample instants come from
// sim timers and sampled values from simulation state only, so two runs
// of the same experiment — at any --threads= setting — produce
// byte-identical series files.  Probes are sampled in registration order
// at each tick; export renders series in sorted name order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp::sim {
class FluidSimulator;
}

namespace lmp::obs {

// Samples registered probes every `interval` ns of simulated time, from
// `Start()` until `horizon` (inclusive).  A finite horizon is required:
// the recorder schedules itself on the simulator's timer wheel, and an
// unbounded recorder would keep an otherwise-idle simulation alive
// forever.
class TimeSeriesRecorder {
 public:
  struct Config {
    SimTime interval = Milliseconds(1);
    // Last instant at which a sample may fire.  Samples stop once the
    // next tick would land past this.
    SimTime horizon = 0;
    // Prepended to every probe name in the export, so one sidecar can
    // hold series from several runs ("scheme/metric").
    std::string prefix;
  };

  TimeSeriesRecorder(sim::FluidSimulator* sim, Config config);

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  // Probe registration.  Callbacks must read simulation state only (never
  // wall clock) and stay valid until the recorder is destroyed or the
  // simulation drains.  Register before Start().
  void AddGauge(std::string name, std::function<double()> fn);
  void AddCounter(std::string name, std::function<std::uint64_t()> fn);

  // Takes one sample immediately (at sim->now()) and schedules sampling
  // every `interval` until `horizon`.  No-op if already running.
  void Start();
  void Stop();
  bool running() const { return running_; }

  // Takes one out-of-band sample at the current sim time (also usable
  // without Start() for caller-driven cadences).
  void SampleNow();

  std::size_t probe_count() const { return probes_.size(); }
  std::size_t sample_count() const { return timestamps_.size(); }
  const std::string& prefix() const { return config_.prefix; }

 private:
  friend std::string SeriesJson(
      const std::vector<const TimeSeriesRecorder*>& recorders);

  enum class ProbeKind : std::uint8_t { kGauge, kCounter };

  struct Probe {
    std::string name;  // without prefix
    ProbeKind kind;
    std::function<double()> gauge_fn;
    std::function<std::uint64_t()> counter_fn;
    // Parallel to timestamps_: gauge samples in doubles, counter samples
    // in counters (stored bit-exact as uint64).
    std::vector<double> gauge_values;
    std::vector<std::uint64_t> counter_values;
  };

  void ScheduleNext();

  sim::FluidSimulator* sim_;
  Config config_;
  std::vector<Probe> probes_;
  std::vector<SimTime> timestamps_;
  bool running_ = false;
  bool tick_scheduled_ = false;
};

// Renders the union of all recorders' series as one JSON document:
//   {"series":{"<prefix><name>":{"kind":"gauge"|"counter",
//                                "interval_ns":<n>,
//                                "points":[[ts_ns,value],...]},...}}
// Series keys are emitted in sorted order.  Callers must keep full names
// unique across recorders (distinct prefixes per run); a duplicate keeps
// the first occurrence.
std::string SeriesJson(const std::vector<const TimeSeriesRecorder*>& recorders);

Status WriteSeriesJson(const std::vector<const TimeSeriesRecorder*>& recorders,
                       const std::string& path);

}  // namespace lmp::obs
