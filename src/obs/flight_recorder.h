// Chaos flight recorder (lmp::obs).
//
// A bounded ring of recent notable events (fault injections, recovery
// transfers, control-plane actions).  When something catastrophic happens
// — a server crash, a rack failure — the owner snapshots the ring into a
// postmortem: "what were the last N things the system did before this?".
// All postmortems accumulated over a run export as one JSON document, so
// a fault plan with several crashes yields several dated snapshots.
//
// Determinism contract: timestamps are simulated time and details are
// caller-rendered strings derived from simulation state, so the
// postmortem file is byte-identical across runs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one event; the oldest event is dropped once the ring is full.
  // `kind` is a short stable tag ("fault.crash", "recovery.start");
  // `detail` is free-form human-readable context.
  void Record(SimTime ts, std::string_view kind, std::string_view detail);

  // Freezes the current ring contents (plus the trigger itself) into a
  // postmortem labelled `reason`.  The ring keeps running afterwards, so
  // later crashes capture later context.
  void SnapshotPostmortem(std::string_view reason, SimTime ts);

  std::size_t capacity() const { return capacity_; }
  std::size_t event_count() const { return ring_.size(); }
  std::uint64_t total_recorded() const { return next_seq_; }
  std::size_t postmortem_count() const { return postmortems_.size(); }

  // {"capacity":N,"postmortems":[{"reason":...,"ts_ns":...,
  //   "events":[{"seq":...,"ts_ns":...,"kind":...,"detail":...},...]},...]}
  // Sequence numbers are global across the run, so consumers can see how
  // many events fell off the ring between snapshots.
  std::string PostmortemJson() const;
  Status WritePostmortem(const std::string& path) const;

 private:
  struct Event {
    std::uint64_t seq;
    SimTime ts;
    std::string kind;
    std::string detail;
  };

  struct Postmortem {
    std::string reason;
    SimTime ts;
    std::vector<Event> events;
  };

  std::size_t capacity_;
  std::deque<Event> ring_;
  std::uint64_t next_seq_ = 0;
  std::vector<Postmortem> postmortems_;
};

}  // namespace lmp::obs
