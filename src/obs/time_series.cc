#include "obs/time_series.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "common/trace.h"
#include "sim/fluid.h"

namespace lmp::obs {

TimeSeriesRecorder::TimeSeriesRecorder(sim::FluidSimulator* sim,
                                       Config config)
    : sim_(sim), config_(std::move(config)) {}

void TimeSeriesRecorder::AddGauge(std::string name,
                                  std::function<double()> fn) {
  Probe p;
  p.name = std::move(name);
  p.kind = ProbeKind::kGauge;
  p.gauge_fn = std::move(fn);
  probes_.push_back(std::move(p));
}

void TimeSeriesRecorder::AddCounter(std::string name,
                                    std::function<std::uint64_t()> fn) {
  Probe p;
  p.name = std::move(name);
  p.kind = ProbeKind::kCounter;
  p.counter_fn = std::move(fn);
  probes_.push_back(std::move(p));
}

void TimeSeriesRecorder::Start() {
  if (running_) return;
  running_ = true;
  SampleNow();
  ScheduleNext();
}

void TimeSeriesRecorder::Stop() { running_ = false; }

void TimeSeriesRecorder::SampleNow() {
  timestamps_.push_back(sim_->now());
  for (Probe& p : probes_) {
    if (p.kind == ProbeKind::kGauge) {
      p.gauge_values.push_back(p.gauge_fn());
    } else {
      p.counter_values.push_back(p.counter_fn());
    }
  }
}

void TimeSeriesRecorder::ScheduleNext() {
  if (!running_ || tick_scheduled_) return;
  const SimTime next = sim_->now() + config_.interval;
  if (next > config_.horizon) {
    running_ = false;
    return;
  }
  tick_scheduled_ = true;
  sim_->ScheduleAt(next, [this](SimTime) {
    tick_scheduled_ = false;
    if (!running_) return;
    SampleNow();
    ScheduleNext();
  });
}

std::string SeriesJson(
    const std::vector<const TimeSeriesRecorder*>& recorders) {
  // Render each series body first, keyed by full name, so emission order
  // is sorted regardless of recorder or registration order.
  std::map<std::string, std::string> bodies;
  char buf[32];
  for (const TimeSeriesRecorder* rec : recorders) {
    for (const auto& p : rec->probes_) {
      std::string body = "{\"kind\":\"";
      body += p.kind == TimeSeriesRecorder::ProbeKind::kGauge ? "gauge"
                                                              : "counter";
      body += "\",\"interval_ns\":";
      body += trace::JsonNumber(rec->config_.interval);
      body += ",\"points\":[";
      const std::size_t n = rec->timestamps_.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (i != 0) body += ',';
        body += '[';
        body += trace::JsonNumber(rec->timestamps_[i]);
        body += ',';
        if (p.kind == TimeSeriesRecorder::ProbeKind::kGauge) {
          body += trace::JsonNumber(p.gauge_values[i]);
        } else {
          std::snprintf(buf, sizeof(buf), "%" PRIu64, p.counter_values[i]);
          body += buf;
        }
        body += ']';
      }
      body += "]}";
      bodies.emplace(rec->config_.prefix + p.name, std::move(body));
    }
  }
  std::string out = "{\"series\":{";
  bool first = true;
  for (const auto& [name, body] : bodies) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += trace::JsonEscape(name);
    out += "\":";
    out += body;
  }
  out += "}}";
  return out;
}

Status WriteSeriesJson(
    const std::vector<const TimeSeriesRecorder*>& recorders,
    const std::string& path) {
  return trace::WriteTextFile(path, SeriesJson(recorders));
}

}  // namespace lmp::obs
