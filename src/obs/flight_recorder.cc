#include "obs/flight_recorder.h"

#include <cinttypes>
#include <cstdio>

#include "common/trace.h"

namespace lmp::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::Record(SimTime ts, std::string_view kind,
                            std::string_view detail) {
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(
      Event{next_seq_++, ts, std::string(kind), std::string(detail)});
}

void FlightRecorder::SnapshotPostmortem(std::string_view reason, SimTime ts) {
  Postmortem pm;
  pm.reason = std::string(reason);
  pm.ts = ts;
  pm.events.assign(ring_.begin(), ring_.end());
  postmortems_.push_back(std::move(pm));
}

std::string FlightRecorder::PostmortemJson() const {
  char buf[32];
  std::string out = "{\"capacity\":";
  std::snprintf(buf, sizeof(buf), "%zu", capacity_);
  out += buf;
  out += ",\"postmortems\":[";
  bool first_pm = true;
  for (const Postmortem& pm : postmortems_) {
    if (!first_pm) out += ',';
    first_pm = false;
    out += "{\"reason\":\"";
    out += trace::JsonEscape(pm.reason);
    out += "\",\"ts_ns\":";
    out += trace::JsonNumber(pm.ts);
    out += ",\"events\":[";
    bool first_ev = true;
    for (const Event& e : pm.events) {
      if (!first_ev) out += ',';
      first_ev = false;
      out += "{\"seq\":";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, e.seq);
      out += buf;
      out += ",\"ts_ns\":";
      out += trace::JsonNumber(e.ts);
      out += ",\"kind\":\"";
      out += trace::JsonEscape(e.kind);
      out += "\",\"detail\":\"";
      out += trace::JsonEscape(e.detail);
      out += "\"}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Status FlightRecorder::WritePostmortem(const std::string& path) const {
  return trace::WriteTextFile(path, PostmortemJson());
}

}  // namespace lmp::obs
