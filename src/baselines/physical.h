// Physical-pool baselines (§4.1): a separate 64 GB memory box behind the
// fabric switch, 8 GB of local DRAM per server.
//
// Two variants, as in the paper:
//  * PhysicalNoCache — every pool access crosses the fabric, every time.
//  * PhysicalCache   — local DRAM caches pool data ("caching incurs an
//    upfront memcpy() overhead but provides faster subsequent reads").
//
// The cache supports two policies:
//  * kPinned (default, matches the paper's memcpy-a-prefix behaviour): the
//    first min(cache, vector) bytes of the vector are copied local on first
//    touch and hit thereafter.  Steady-state hit rate = cache/vector.
//  * kLru: classic page-granularity LRU.  A sequential sweep larger than
//    the cache degenerates to a 0% hit rate — the thrash ablation.
//
// Feasibility: the vector must fit the pool box's 64 GB.  A 96 GB vector
// fails allocation — Figure 5's result — because no software knob can move
// DIMMs out of the servers into the box.
#pragma once

#include <memory>

#include "baselines/deployment.h"
#include "cluster/cluster.h"
#include "fabric/topology.h"
#include "mem/lru_cache.h"
#include "sim/fluid.h"

namespace lmp::baselines {

enum class CachePolicy { kPinned, kLru };

class PhysicalDeployment : public MemoryDeployment {
 public:
  // use_cache=false gives the "Physical no-cache" baseline.
  PhysicalDeployment(const fabric::LinkProfile& link, bool use_cache,
                     CachePolicy policy = CachePolicy::kPinned,
                     const cluster::ClusterConfig& config =
                         cluster::ClusterConfig::PaperPhysical(),
                     int pool_ports = 1);

  std::string_view name() const override {
    return use_cache_ ? "Physical cache" : "Physical no-cache";
  }
  const fabric::LinkProfile& link() const override { return link_; }

  StatusOr<VectorSumResult> RunVectorSum(
      const VectorSumParams& params) override;

  // Chaos-aware run.  The physical pool's failure story is the paper's §5
  // contrast: a server crash loses no pooled data (it lives on the pool
  // box), but every pool access rides the pool link, so degrading it
  // throttles the whole workload.  No replication layer exists here.
  StatusOr<WorkloadResult> RunWorkload(const WorkloadSpec& spec) override;
  Status ApplyFault(const chaos::FaultEvent& event) override;

  // Lazily-created injector bound to sim/topology/cluster (no manager:
  // crashes only mark cluster state).
  chaos::FaultInjector& injector(const chaos::InjectorOptions& options = {});

  sim::FluidSimulator& simulator() { return sim_; }
  fabric::Topology& topology() { return *topology_; }
  cluster::Cluster& cluster() { return *cluster_; }

 private:
  StatusOr<VectorSumResult> RunNoCache(const VectorSumParams& params);
  StatusOr<VectorSumResult> RunPinnedCache(const VectorSumParams& params);
  StatusOr<VectorSumResult> RunLruCache(const VectorSumParams& params);

  fabric::LinkProfile link_;
  bool use_cache_;
  CachePolicy policy_;
  sim::FluidSimulator sim_;
  std::unique_ptr<fabric::Topology> topology_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<chaos::FaultInjector> injector_;
};

}  // namespace lmp::baselines
