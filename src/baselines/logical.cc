#include "baselines/logical.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/stream.h"

namespace lmp::baselines {

std::vector<CoreSlice> SliceForCores(Bytes total, int cores) {
  LMP_CHECK(cores > 0);
  std::vector<CoreSlice> slices;
  slices.reserve(cores);
  const Bytes base = total / cores;
  Bytes pos = 0;
  for (int c = 0; c < cores; ++c) {
    // Last core absorbs the remainder.
    const Bytes len = (c + 1 == cores) ? (total - pos) : base;
    slices.push_back(CoreSlice{pos, len});
    pos += len;
  }
  return slices;
}

LogicalDeployment::LogicalDeployment(
    const fabric::LinkProfile& link, const cluster::ClusterConfig& config,
    std::unique_ptr<core::PlacementPolicy> placement)
    : link_(link) {
  fabric::MachineProfile machine;
  machine.cores_per_server = config.cores_per_server;
  topology_ = std::make_unique<fabric::Topology>(fabric::Topology::MakeLogical(
      &sim_, config.num_servers, link, machine));
  cluster_ = std::make_unique<cluster::Cluster>(config);
  manager_ = std::make_unique<core::PoolManager>(cluster_.get(),
                                                 std::move(placement));
}

StatusOr<VectorSumResult> LogicalDeployment::RunVectorSum(
    const VectorSumParams& params) {
  VectorSumResult result;

  auto buffer_or = manager_->Allocate(
      params.vector_bytes,
      static_cast<cluster::ServerId>(params.runner));
  if (!buffer_or.ok()) {
    if (IsOutOfMemory(buffer_or.status())) {
      result.feasible = false;
      result.infeasible_reason = buffer_or.status().message();
      return result;
    }
    return buffer_or.status();
  }
  const core::BufferId buffer = buffer_or.value();

  LMP_ASSIGN_OR_RETURN(
      result.local_fraction,
      manager_->LocalFraction(buffer,
                              static_cast<cluster::ServerId>(params.runner)));

  const auto runner = static_cast<fabric::ServerIndex>(params.runner);
  const std::vector<CoreSlice> slices =
      SliceForCores(params.vector_bytes, params.cores);

  // Path for one located span as seen from (runner, core).
  auto path_for = [&](const core::LocatedSpan& ls, int c) {
    LMP_CHECK(!ls.location.is_pool());
    return ls.location.server == runner
               ? topology_->LocalPath(runner, c)
               : topology_->RemotePath(runner, c, ls.location.server);
  };

  // Per-core span lists.  Contiguous: core c walks its own 1/Nth of the
  // vector.  Balanced: every core takes a proportional share of each
  // located span, so all cores see the same local/remote mix.
  std::vector<std::vector<sim::Span>> per_core(params.cores);
  if (!params.balanced_slices) {
    for (int c = 0; c < params.cores; ++c) {
      const CoreSlice& slice = slices[c];
      if (slice.length == 0) continue;
      LMP_ASSIGN_OR_RETURN(
          auto located,
          manager_->Spans(buffer, slice.offset, slice.length));
      for (const core::LocatedSpan& ls : located) {
        per_core[c].push_back(sim::Span{static_cast<double>(ls.bytes),
                                        path_for(ls, c)});
      }
    }
  } else {
    LMP_ASSIGN_OR_RETURN(auto located,
                         manager_->Spans(buffer, 0, params.vector_bytes));
    for (const core::LocatedSpan& ls : located) {
      const double share =
          static_cast<double>(ls.bytes) / params.cores;
      for (int c = 0; c < params.cores; ++c) {
        per_core[c].push_back(sim::Span{share, path_for(ls, c)});
      }
    }
  }

  const SimTime start = sim_.now();
  double first_rep = 0, last_rep = 0;
  for (int rep = 0; rep < params.repetitions; ++rep) {
    std::vector<std::unique_ptr<sim::SpanStream>> streams;
    for (int c = 0; c < params.cores; ++c) {
      if (per_core[c].empty()) continue;
      streams.push_back(
          std::make_unique<sim::SpanStream>(&sim_, per_core[c]));
    }
    const sim::ParallelRunResult rep_result =
        sim::RunStreams(&sim_, std::move(streams));
    if (rep == 0) first_rep = rep_result.gbps;
    last_rep = rep_result.gbps;
  }

  const SimTime elapsed = sim_.now() - start;
  result.total_time_ns = elapsed;
  result.avg_bandwidth_gbps =
      ToGBps(static_cast<double>(params.vector_bytes) * params.repetitions,
             elapsed);
  result.first_rep_gbps = first_rep;
  result.steady_rep_gbps = last_rep;
  LMP_CHECK_OK(manager_->Free(buffer));
  return result;
}

Status LogicalDeployment::EnableReplication(int factor) {
  if (factor <= 0) return InvalidArgumentError("replication factor must be > 0");
  if (replication_ != nullptr) {
    if (replication_->replication_factor() != factor) {
      return FailedPreconditionError("replication already enabled at factor " +
                                     std::to_string(
                                         replication_->replication_factor()));
    }
    return Status::Ok();
  }
  if (injector_ != nullptr) {
    return FailedPreconditionError(
        "enable replication before the injector binds (its recovery traffic "
        "would not be priced)");
  }
  replication_ = std::make_unique<core::ReplicationManager>(manager_.get(),
                                                            factor);
  return Status::Ok();
}

chaos::FaultInjector& LogicalDeployment::injector(
    const chaos::InjectorOptions& options) {
  if (injector_ == nullptr) {
    chaos::FaultInjector::Bindings b;
    b.sim = &sim_;
    b.topology = topology_.get();
    b.manager = manager_.get();
    b.replication = replication_.get();
    injector_ = std::make_unique<chaos::FaultInjector>(b, options);
  }
  return *injector_;
}

Status LogicalDeployment::ApplyFault(const chaos::FaultEvent& event) {
  return injector().Apply(event);
}

StatusOr<WorkloadResult> LogicalDeployment::RunWorkload(
    const WorkloadSpec& spec) {
  WorkloadResult out;
  const VectorSumParams& params = spec.vector;

  if (spec.replication_factor > 0) {
    LMP_RETURN_IF_ERROR(EnableReplication(spec.replication_factor));
  }

  auto buffer_or = manager_->Allocate(
      params.vector_bytes, static_cast<cluster::ServerId>(params.runner));
  if (!buffer_or.ok()) {
    if (IsOutOfMemory(buffer_or.status())) {
      out.vector.feasible = false;
      out.vector.infeasible_reason = buffer_or.status().message();
      return out;
    }
    return buffer_or.status();
  }
  const core::BufferId buffer = buffer_or.value();

  if (replication_ != nullptr) {
    LMP_RETURN_IF_ERROR(replication_->ProtectBuffer(buffer));
  }
  chaos::FaultInjector& inj = injector(spec.injector);
  if (spec.flight_recorder != nullptr) {
    inj.set_flight_recorder(spec.flight_recorder);
  }
  LMP_RETURN_IF_ERROR(inj.WatchBuffer(buffer));
  if (!spec.faults.empty()) {
    LMP_RETURN_IF_ERROR(inj.SchedulePlan(spec.faults));
  }

  LMP_ASSIGN_OR_RETURN(
      out.vector.local_fraction,
      manager_->LocalFraction(buffer,
                              static_cast<cluster::ServerId>(params.runner)));

  const auto runner = static_cast<fabric::ServerIndex>(params.runner);
  const std::vector<CoreSlice> slices =
      SliceForCores(params.vector_bytes, params.cores);
  auto path_for = [&](const core::LocatedSpan& ls, int c) {
    LMP_CHECK(!ls.location.is_pool());
    return ls.location.server == runner
               ? topology_->LocalPath(runner, c)
               : topology_->RemotePath(runner, c, ls.location.server);
  };

  // Unlike RunVectorSum, span lists are rebuilt EVERY repetition: a crash
  // during rep N fails segments over to new homes, and rep N+1 must read
  // them from where they live now.
  auto spans_for_rep =
      [&](std::vector<std::vector<sim::Span>>* per_core) -> Status {
    per_core->assign(params.cores, {});
    if (!params.balanced_slices) {
      for (int c = 0; c < params.cores; ++c) {
        const CoreSlice& slice = slices[c];
        if (slice.length == 0) continue;
        LMP_ASSIGN_OR_RETURN(
            auto located, manager_->Spans(buffer, slice.offset, slice.length));
        for (const core::LocatedSpan& ls : located) {
          (*per_core)[c].push_back(
              sim::Span{static_cast<double>(ls.bytes), path_for(ls, c)});
        }
      }
    } else {
      LMP_ASSIGN_OR_RETURN(auto located,
                           manager_->Spans(buffer, 0, params.vector_bytes));
      for (const core::LocatedSpan& ls : located) {
        const double share = static_cast<double>(ls.bytes) / params.cores;
        for (int c = 0; c < params.cores; ++c) {
          (*per_core)[c].push_back(sim::Span{share, path_for(ls, c)});
        }
      }
    }
    return Status::Ok();
  };

  auto fabric_degraded = [&] {
    for (int s = 0; s < topology_->num_servers(); ++s) {
      if (topology_->link_degraded(static_cast<fabric::ServerIndex>(s))) {
        return true;
      }
    }
    return false;
  };

  const SimTime start = sim_.now();
  int reps_served = 0;
  double first_rep = 0, last_rep = 0;
  std::vector<std::vector<sim::Span>> per_core;
  for (int rep = 0; rep < params.repetitions; ++rep) {
    const Status span_status = spans_for_rep(&per_core);
    if (IsDataLoss(span_status)) {
      // Part of the buffer is gone and nothing can rebuild it; this
      // repetition cannot run.  Sim time does not advance, so the
      // unavailability is charged to the open window, not the workload.
      ++out.reps_unavailable;
      continue;
    }
    LMP_RETURN_IF_ERROR(span_status);
    if (fabric_degraded()) ++out.reps_degraded;
    std::vector<std::unique_ptr<sim::SpanStream>> streams;
    for (int c = 0; c < params.cores; ++c) {
      if (per_core[c].empty()) continue;
      streams.push_back(
          std::make_unique<sim::SpanStream>(&sim_, per_core[c]));
    }
    const sim::ParallelRunResult rep_result =
        sim::RunStreams(&sim_, std::move(streams));
    if (reps_served == 0) first_rep = rep_result.gbps;
    last_rep = rep_result.gbps;
    ++reps_served;
  }

  const SimTime elapsed = sim_.now() - start;
  out.vector.total_time_ns = elapsed;
  if (elapsed > 0) {
    out.vector.avg_bandwidth_gbps =
        ToGBps(static_cast<double>(params.vector_bytes) * reps_served,
               elapsed);
  }
  out.vector.first_rep_gbps = first_rep;
  out.vector.steady_rep_gbps = last_rep;

  // Let outstanding recovery transfers (and any plan tail) finish so
  // time-to-redundancy reflects actual completion, then snapshot SLOs.
  if (spec.drain_recovery) sim_.Run();
  LMP_RETURN_IF_ERROR(inj.ApplyError());
  out.chaos = inj.report();
  LMP_RETURN_IF_ERROR(manager_->Free(buffer));
  return out;
}

StatusOr<VectorSumResult> LogicalDeployment::RunDistributedSum(
    const VectorSumParams& params) {
  VectorSumResult result;

  auto buffer_or = manager_->Allocate(
      params.vector_bytes,
      static_cast<cluster::ServerId>(params.runner));
  if (!buffer_or.ok()) {
    if (IsOutOfMemory(buffer_or.status())) {
      result.feasible = false;
      result.infeasible_reason = buffer_or.status().message();
      return result;
    }
    return buffer_or.status();
  }
  const core::BufferId buffer = buffer_or.value();

  // Every server processes exactly the spans it hosts, with its own cores:
  // computation shipping makes all accesses local (§4.4).
  LMP_ASSIGN_OR_RETURN(auto located,
                       manager_->Spans(buffer, 0, params.vector_bytes));
  // Group bytes per hosting server.
  std::vector<Bytes> per_server(cluster_->num_servers(), 0);
  for (const core::LocatedSpan& ls : located) {
    LMP_CHECK(!ls.location.is_pool());
    per_server[ls.location.server] += ls.bytes;
  }

  const SimTime start = sim_.now();
  for (int rep = 0; rep < params.repetitions; ++rep) {
    std::vector<std::unique_ptr<sim::SpanStream>> streams;
    for (int s = 0; s < cluster_->num_servers(); ++s) {
      if (per_server[s] == 0) continue;
      const auto host = static_cast<fabric::ServerIndex>(s);
      const std::vector<CoreSlice> slices =
          SliceForCores(per_server[s], params.cores);
      for (int c = 0; c < params.cores; ++c) {
        if (slices[c].length == 0) continue;
        std::vector<sim::Span> spans{
            sim::Span{static_cast<double>(slices[c].length),
                      topology_->LocalPath(host, c)}};
        streams.push_back(
            std::make_unique<sim::SpanStream>(&sim_, std::move(spans)));
      }
    }
    (void)sim::RunStreams(&sim_, std::move(streams));
  }

  const SimTime elapsed = sim_.now() - start;
  result.total_time_ns = elapsed;
  result.avg_bandwidth_gbps =
      ToGBps(static_cast<double>(params.vector_bytes) * params.repetitions,
             elapsed);
  result.local_fraction = 1.0;  // by construction
  result.first_rep_gbps = result.avg_bandwidth_gbps;
  result.steady_rep_gbps = result.avg_bandwidth_gbps;
  LMP_CHECK_OK(manager_->Free(buffer));
  return result;
}

}  // namespace lmp::baselines
