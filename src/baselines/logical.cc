#include "baselines/logical.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/stream.h"

namespace lmp::baselines {

std::vector<CoreSlice> SliceForCores(Bytes total, int cores) {
  LMP_CHECK(cores > 0);
  std::vector<CoreSlice> slices;
  slices.reserve(cores);
  const Bytes base = total / cores;
  Bytes pos = 0;
  for (int c = 0; c < cores; ++c) {
    // Last core absorbs the remainder.
    const Bytes len = (c + 1 == cores) ? (total - pos) : base;
    slices.push_back(CoreSlice{pos, len});
    pos += len;
  }
  return slices;
}

LogicalDeployment::LogicalDeployment(
    const fabric::LinkProfile& link, const cluster::ClusterConfig& config,
    std::unique_ptr<core::PlacementPolicy> placement)
    : link_(link) {
  fabric::MachineProfile machine;
  machine.cores_per_server = config.cores_per_server;
  topology_ = std::make_unique<fabric::Topology>(fabric::Topology::MakeLogical(
      &sim_, config.num_servers, link, machine));
  cluster_ = std::make_unique<cluster::Cluster>(config);
  manager_ = std::make_unique<core::PoolManager>(cluster_.get(),
                                                 std::move(placement));
}

StatusOr<VectorSumResult> LogicalDeployment::RunVectorSum(
    const VectorSumParams& params) {
  VectorSumResult result;

  auto buffer_or = manager_->Allocate(
      params.vector_bytes,
      static_cast<cluster::ServerId>(params.runner));
  if (!buffer_or.ok()) {
    if (IsOutOfMemory(buffer_or.status())) {
      result.feasible = false;
      result.infeasible_reason = buffer_or.status().message();
      return result;
    }
    return buffer_or.status();
  }
  const core::BufferId buffer = buffer_or.value();

  LMP_ASSIGN_OR_RETURN(
      result.local_fraction,
      manager_->LocalFraction(buffer,
                              static_cast<cluster::ServerId>(params.runner)));

  const auto runner = static_cast<fabric::ServerIndex>(params.runner);
  const std::vector<CoreSlice> slices =
      SliceForCores(params.vector_bytes, params.cores);

  // Path for one located span as seen from (runner, core).
  auto path_for = [&](const core::LocatedSpan& ls, int c) {
    LMP_CHECK(!ls.location.is_pool());
    return ls.location.server == runner
               ? topology_->LocalPath(runner, c)
               : topology_->RemotePath(runner, c, ls.location.server);
  };

  // Per-core span lists.  Contiguous: core c walks its own 1/Nth of the
  // vector.  Balanced: every core takes a proportional share of each
  // located span, so all cores see the same local/remote mix.
  std::vector<std::vector<sim::Span>> per_core(params.cores);
  if (!params.balanced_slices) {
    for (int c = 0; c < params.cores; ++c) {
      const CoreSlice& slice = slices[c];
      if (slice.length == 0) continue;
      LMP_ASSIGN_OR_RETURN(
          auto located,
          manager_->Spans(buffer, slice.offset, slice.length));
      for (const core::LocatedSpan& ls : located) {
        per_core[c].push_back(sim::Span{static_cast<double>(ls.bytes),
                                        path_for(ls, c)});
      }
    }
  } else {
    LMP_ASSIGN_OR_RETURN(auto located,
                         manager_->Spans(buffer, 0, params.vector_bytes));
    for (const core::LocatedSpan& ls : located) {
      const double share =
          static_cast<double>(ls.bytes) / params.cores;
      for (int c = 0; c < params.cores; ++c) {
        per_core[c].push_back(sim::Span{share, path_for(ls, c)});
      }
    }
  }

  const SimTime start = sim_.now();
  double first_rep = 0, last_rep = 0;
  for (int rep = 0; rep < params.repetitions; ++rep) {
    std::vector<std::unique_ptr<sim::SpanStream>> streams;
    for (int c = 0; c < params.cores; ++c) {
      if (per_core[c].empty()) continue;
      streams.push_back(
          std::make_unique<sim::SpanStream>(&sim_, per_core[c]));
    }
    const sim::ParallelRunResult rep_result =
        sim::RunStreams(&sim_, std::move(streams));
    if (rep == 0) first_rep = rep_result.gbps;
    last_rep = rep_result.gbps;
  }

  const SimTime elapsed = sim_.now() - start;
  result.total_time_ns = elapsed;
  result.avg_bandwidth_gbps =
      ToGBps(static_cast<double>(params.vector_bytes) * params.repetitions,
             elapsed);
  result.first_rep_gbps = first_rep;
  result.steady_rep_gbps = last_rep;
  LMP_CHECK_OK(manager_->Free(buffer));
  return result;
}

StatusOr<VectorSumResult> LogicalDeployment::RunDistributedSum(
    const VectorSumParams& params) {
  VectorSumResult result;

  auto buffer_or = manager_->Allocate(
      params.vector_bytes,
      static_cast<cluster::ServerId>(params.runner));
  if (!buffer_or.ok()) {
    if (IsOutOfMemory(buffer_or.status())) {
      result.feasible = false;
      result.infeasible_reason = buffer_or.status().message();
      return result;
    }
    return buffer_or.status();
  }
  const core::BufferId buffer = buffer_or.value();

  // Every server processes exactly the spans it hosts, with its own cores:
  // computation shipping makes all accesses local (§4.4).
  LMP_ASSIGN_OR_RETURN(auto located,
                       manager_->Spans(buffer, 0, params.vector_bytes));
  // Group bytes per hosting server.
  std::vector<Bytes> per_server(cluster_->num_servers(), 0);
  for (const core::LocatedSpan& ls : located) {
    LMP_CHECK(!ls.location.is_pool());
    per_server[ls.location.server] += ls.bytes;
  }

  const SimTime start = sim_.now();
  for (int rep = 0; rep < params.repetitions; ++rep) {
    std::vector<std::unique_ptr<sim::SpanStream>> streams;
    for (int s = 0; s < cluster_->num_servers(); ++s) {
      if (per_server[s] == 0) continue;
      const auto host = static_cast<fabric::ServerIndex>(s);
      const std::vector<CoreSlice> slices =
          SliceForCores(per_server[s], params.cores);
      for (int c = 0; c < params.cores; ++c) {
        if (slices[c].length == 0) continue;
        std::vector<sim::Span> spans{
            sim::Span{static_cast<double>(slices[c].length),
                      topology_->LocalPath(host, c)}};
        streams.push_back(
            std::make_unique<sim::SpanStream>(&sim_, std::move(spans)));
      }
    }
    (void)sim::RunStreams(&sim_, std::move(streams));
  }

  const SimTime elapsed = sim_.now() - start;
  result.total_time_ns = elapsed;
  result.avg_bandwidth_gbps =
      ToGBps(static_cast<double>(params.vector_bytes) * params.repetitions,
             elapsed);
  result.local_fraction = 1.0;  // by construction
  result.first_rep_gbps = result.avg_bandwidth_gbps;
  result.steady_rep_gbps = result.avg_bandwidth_gbps;
  LMP_CHECK_OK(manager_->Free(buffer));
  return result;
}

}  // namespace lmp::baselines
