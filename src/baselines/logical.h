// LogicalDeployment: the paper's proposal, on the timing layer.
//
// 4 servers, 24 GB each, every byte shared (§4.1 "Logical").  The vector is
// placed local-first from the running server, so an 8/24 GB vector is fully
// local, a 64 GB vector is 3/8 local, and a 96 GB vector fills the whole
// pool (feasible, unlike the physical pool).  Each repetition streams every
// core's slice through the fluid simulator: local spans ride
// core->local-DRAM, remote spans ride core->port->peer-port->peer-DRAM.
//
// RunDistributedSum implements §4.4: the sum is shipped to every server so
// each sums its own local portion with its own cores — all traffic local.
#pragma once

#include <memory>

#include "baselines/deployment.h"
#include "chaos/fault_injector.h"
#include "cluster/cluster.h"
#include "core/pool_manager.h"
#include "core/replication.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::baselines {

class LogicalDeployment : public MemoryDeployment {
 public:
  explicit LogicalDeployment(
      const fabric::LinkProfile& link,
      const cluster::ClusterConfig& config =
          cluster::ClusterConfig::PaperLogical(),
      std::unique_ptr<core::PlacementPolicy> placement = nullptr);

  std::string_view name() const override { return "Logical"; }
  const fabric::LinkProfile& link() const override { return link_; }

  StatusOr<VectorSumResult> RunVectorSum(
      const VectorSumParams& params) override;

  // §4.4 near-memory computing: every server sums its local part.
  StatusOr<VectorSumResult> RunDistributedSum(const VectorSumParams& params);

  // Chaos-aware run: spans are recomputed every repetition (crash failover
  // moves segment homes mid-run), the fault plan replays on sim time, and
  // the injector's recovery SLOs come back in the result.
  StatusOr<WorkloadResult> RunWorkload(const WorkloadSpec& spec) override;
  Status ApplyFault(const chaos::FaultEvent& event) override;

  // Attaches a replication layer (factor = extra copies per segment).
  // Call before applying faults: the injector binds at first use and a
  // later-attached layer would not have its recovery traffic priced.
  Status EnableReplication(int factor);

  // Lazily-created injector bound to this deployment's stack.
  chaos::FaultInjector& injector(const chaos::InjectorOptions& options = {});

  core::PoolManager& manager() { return *manager_; }
  cluster::Cluster& cluster() { return *cluster_; }
  sim::FluidSimulator& simulator() { return sim_; }
  fabric::Topology& topology() { return *topology_; }
  core::ReplicationManager* replication() { return replication_.get(); }

 private:
  fabric::LinkProfile link_;
  sim::FluidSimulator sim_;
  std::unique_ptr<fabric::Topology> topology_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<core::PoolManager> manager_;
  std::unique_ptr<core::ReplicationManager> replication_;
  std::unique_ptr<chaos::FaultInjector> injector_;
};

}  // namespace lmp::baselines
