#include "baselines/software_swap.h"

#include "common/logging.h"
#include "sim/stream.h"

namespace lmp::baselines {

SoftwareSwapDeployment::SoftwareSwapDeployment(
    const fabric::LinkProfile& link, SoftwareSwapParams swap,
    const cluster::ClusterConfig& config)
    : link_(link), swap_(swap), config_(config) {
  fabric::MachineProfile machine;
  machine.cores_per_server = config.cores_per_server;
  topology_ = std::make_unique<fabric::Topology>(fabric::Topology::MakeLogical(
      &sim_, config.num_servers, link, machine));
  // One fault-handler resource per runner core: a core cannot retire
  // swapped bytes faster than it can process faults.
  const BytesPerSec fault_rate =
      static_cast<double>(swap_.page_size) /
      (swap_.fault_overhead_ns / kNsPerSec);
  for (int c = 0; c < config.cores_per_server; ++c) {
    fault_handlers_.push_back(sim_.AddResource(
        "fault_handler.core" + std::to_string(c), fault_rate));
  }
}

StatusOr<VectorSumResult> SoftwareSwapDeployment::RunVectorSum(
    const VectorSumParams& params) {
  VectorSumResult result;
  // Resident set = the runner's local memory; swapped = the rest, living
  // in peers' memory (one-third on each of the other three servers).
  const Bytes resident =
      std::min<Bytes>(config_.server_total_memory, params.vector_bytes);
  const Bytes swapped = params.vector_bytes - resident;
  if (swapped >
      config_.server_total_memory * (config_.num_servers - 1)) {
    result.feasible = false;
    result.infeasible_reason = "far-memory hosts too small";
    return result;
  }
  result.local_fraction = static_cast<double>(resident) /
                          static_cast<double>(params.vector_bytes);

  const auto runner = static_cast<fabric::ServerIndex>(params.runner);
  const std::vector<CoreSlice> slices =
      SliceForCores(params.vector_bytes, params.cores);

  const SimTime start = sim_.now();
  double first = 0, last = 0;
  for (int rep = 0; rep < params.repetitions; ++rep) {
    std::vector<std::unique_ptr<sim::SpanStream>> streams;
    for (int c = 0; c < params.cores; ++c) {
      const CoreSlice& slice = slices[c];
      if (slice.length == 0) continue;
      std::vector<sim::Span> spans;
      // Resident prefix of this slice.
      const Bytes res_end = std::min<Bytes>(resident, slice.offset +
                                                           slice.length);
      const Bytes res_len =
          res_end > slice.offset ? res_end - slice.offset : 0;
      if (res_len > 0) {
        spans.push_back(sim::Span{static_cast<double>(res_len),
                                  topology_->LocalPath(runner, c)});
      }
      Bytes swap_len = slice.length - res_len;
      if (swap_len > 0) {
        // Swapped bytes spread over the peer hosts; chain the fault
        // handler into each remote path.
        const int peers = config_.num_servers - 1;
        const Bytes per_peer = (swap_len + peers - 1) / peers;
        for (int p = 0; p < peers && swap_len > 0; ++p) {
          const auto host = static_cast<fabric::ServerIndex>(
              (params.runner + 1 + p) % config_.num_servers);
          const Bytes take = std::min<Bytes>(per_peer, swap_len);
          auto path = topology_->RemotePath(runner, c, host);
          path.push_back(fault_handlers_[c]);
          spans.push_back(sim::Span{static_cast<double>(take),
                                    std::move(path)});
          swap_len -= take;
        }
      }
      streams.push_back(
          std::make_unique<sim::SpanStream>(&sim_, std::move(spans)));
    }
    const auto rep_result = sim::RunStreams(&sim_, std::move(streams));
    if (rep == 0) first = rep_result.gbps;
    last = rep_result.gbps;
  }
  const SimTime elapsed = sim_.now() - start;
  result.total_time_ns = elapsed;
  result.avg_bandwidth_gbps =
      ToGBps(static_cast<double>(params.vector_bytes) * params.repetitions,
             elapsed);
  result.first_rep_gbps = first;
  result.steady_rep_gbps = last;
  return result;
}

Status SoftwareSwapDeployment::ApplyFault(const chaos::FaultEvent& event) {
  switch (event.kind) {
    case chaos::FaultKind::kLinkDegrade:
      if (event.pool_link || event.servers.size() != 1) {
        return InvalidArgumentError("degrade wants one server link");
      }
      return topology_->SetLinkHealth(event.servers[0], event.bandwidth_mult,
                                      event.latency_mult);
    case chaos::FaultKind::kLinkRestore:
      if (event.pool_link || event.servers.size() != 1) {
        return InvalidArgumentError("restore wants one server link");
      }
      return topology_->RestoreLink(event.servers[0]);
    default:
      return UnimplementedError(
          "software swap models link faults only (no pooled state to lose)");
  }
}

SimTime SoftwareSwapDeployment::ResidentReadLatency() const {
  return topology_->machine().dram.LoadedLatency(0);
}

SimTime SoftwareSwapDeployment::SwappedReadLatency() const {
  // A dependent swapped read faults: software overhead + one page over the
  // link + the remote DRAM access.
  return swap_.fault_overhead_ns +
         static_cast<double>(swap_.page_size) / link_.bandwidth *
             kNsPerSec +
         link_.LoadedLatency(0);
}

}  // namespace lmp::baselines
