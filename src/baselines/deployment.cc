#include "baselines/deployment.h"

namespace lmp::baselines {

StatusOr<WorkloadResult> MemoryDeployment::RunWorkload(
    const WorkloadSpec& spec) {
  if (!spec.faults.empty() || spec.replication_factor > 0) {
    return UnimplementedError(std::string(name()) +
                              " has no fault-injection support");
  }
  WorkloadResult out;
  LMP_ASSIGN_OR_RETURN(out.vector, RunVectorSum(spec.vector));
  return out;
}

Status MemoryDeployment::ApplyFault(const chaos::FaultEvent& event) {
  (void)event;
  return UnimplementedError(std::string(name()) +
                            " has no fault-injection support");
}

}  // namespace lmp::baselines
