// Software memory disaggregation baseline (§2.1).
//
// Before CXL, far memory was reached by SOFTWARE: the kernel or a runtime
// pages data over RDMA (CFM, Infiniswap) or a library issues explicit IOs
// (AIFM).  Every remote access pays a software fault/IO cost — posting the
// request, handling the completion, updating page tables — that no amount
// of link bandwidth hides.  The paper's §2.1 argument for hardware
// disaggregation is exactly this gap.
//
// Model: the working set's resident portion (the server's local memory)
// runs at DRAM speed; the swapped portion moves at page granularity, and
// each core's fault path is rate-limited to page_size / fault_overhead —
// modelled as a per-core "fault handler" resource in series with the
// normal remote link path, so the fluid simulator composes it with fabric
// contention naturally.
#pragma once

#include <memory>

#include "baselines/deployment.h"
#include "cluster/cluster.h"
#include "fabric/topology.h"
#include "sim/fluid.h"

namespace lmp::baselines {

struct SoftwareSwapParams {
  Bytes page_size = KiB(4);
  // Per-fault software cost: trap, RDMA post, completion, map update.
  // ~microseconds for kernel swap paths in the systems the paper cites.
  SimTime fault_overhead_ns = Microseconds(4);
};

class SoftwareSwapDeployment : public MemoryDeployment {
 public:
  // Same 4-server / 96 GiB shape as the logical deployment: 24 GiB of
  // local (resident) memory on the runner, remainder in far memory.
  explicit SoftwareSwapDeployment(
      const fabric::LinkProfile& link, SoftwareSwapParams swap = {},
      const cluster::ClusterConfig& config =
          cluster::ClusterConfig::PaperLogical());

  std::string_view name() const override { return "Software swap"; }
  const fabric::LinkProfile& link() const override { return link_; }

  StatusOr<VectorSumResult> RunVectorSum(
      const VectorSumParams& params) override;

  // Link faults only: the swap baseline has no pooled data to lose, but a
  // degraded fabric slows its paging traffic like everyone else's.  Crash
  // events return kUnimplemented.
  Status ApplyFault(const chaos::FaultEvent& event) override;

  // Average latency of one 64-byte dependent read, resident vs swapped.
  SimTime ResidentReadLatency() const;
  SimTime SwappedReadLatency() const;

 private:
  fabric::LinkProfile link_;
  SoftwareSwapParams swap_;
  cluster::ClusterConfig config_;
  sim::FluidSimulator sim_;
  std::unique_ptr<fabric::Topology> topology_;
  std::vector<sim::ResourceId> fault_handlers_;  // one per runner core
};

}  // namespace lmp::baselines
