// MemoryDeployment: the experiment-facing interface over a deployment.
//
// §4.1's microbenchmark: one server sums a large vector that lives in
// disaggregated memory, using all 14 cores (each core sums a contiguous
// slice), repeated 10 times; the metric is average bandwidth.  Every
// deployment — Logical, Physical cache, Physical no-cache — implements
// RunVectorSum over the shared fluid simulator so Figures 2–5 are produced
// by one harness.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/status.h"
#include "common/units.h"
#include "fabric/link.h"

namespace lmp::obs {
class FlightRecorder;
}

namespace lmp::baselines {

struct VectorSumParams {
  Bytes vector_bytes = GiB(8);
  int repetitions = 10;   // the paper repeats 10x and averages
  int runner = 0;         // server executing the sum
  int cores = 14;         // cores used by the runner
  // Work assignment across cores.  false = contiguous 1/Nth slices (the
  // paper's natural reading: cores over the local prefix finish early and
  // the makespan is remote-bound).  true = every core gets a proportional
  // share of each location (balanced local/remote mix per core), which
  // makes the logical pool's advantage grow as the link slows — the
  // slicing ablation explores the difference.
  bool balanced_slices = false;
  // Treat accesses as stores: cached pages become dirty and their eviction
  // charges a writeback transfer to the pool (physical LRU cache only).
  // The paper's sum is read-only, so this defaults off.
  bool write = false;
};

struct VectorSumResult {
  bool feasible = true;
  std::string infeasible_reason;
  double avg_bandwidth_gbps = 0;    // total bytes / total time
  double first_rep_gbps = 0;        // includes cold cache fills
  double steady_rep_gbps = 0;       // last repetition
  double local_fraction = 0;        // fraction of vector local to runner
  double cache_hit_rate = 0;        // physical-cache only
  Bytes writeback_bytes = 0;        // dirty-eviction traffic to the pool
  SimTime total_time_ns = 0;
};

// The unified workload description: the vector-sum microbenchmark plus an
// optional fault schedule replayed (in sim time) while it runs.  This is
// the one entry point benches use for both healthy and chaos runs, so the
// logical/physical comparison is apples-to-apples.
struct WorkloadSpec {
  VectorSumParams vector;
  // Failures injected while the workload runs (empty = healthy run).
  chaos::FaultPlan faults;
  chaos::InjectorOptions injector;
  // > 0: protect the workload buffer with this many extra replicas before
  // faults fire.  Only the logical deployment has a replication layer.
  int replication_factor = 0;
  // Run the simulator to idle after the last repetition so in-flight
  // recovery transfers (and any plan events past the workload) complete —
  // time-to-redundancy needs the recovery tail, not just the workload
  // window.  total_time_ns still covers only the repetitions.
  bool drain_recovery = true;
  // Optional chaos flight recorder bound to the injector for this run:
  // fault/recovery events land in its ring and each crash freezes a
  // postmortem.  Passed through the spec (rather than set on the injector
  // directly) because deployments create their injector lazily inside
  // RunWorkload, after the replication layer exists.  Must outlive the
  // deployment.
  obs::FlightRecorder* flight_recorder = nullptr;
};

struct WorkloadResult {
  VectorSumResult vector;
  // Recovery SLOs measured by the injector (all zeros for healthy runs).
  chaos::ChaosReport chaos;
  // Repetitions skipped because the buffer had unrecoverable lost
  // segments, and repetitions that started on a degraded fabric.
  int reps_unavailable = 0;
  int reps_degraded = 0;
};

class MemoryDeployment {
 public:
  virtual ~MemoryDeployment() = default;
  virtual std::string_view name() const = 0;
  virtual const fabric::LinkProfile& link() const = 0;

  // Runs the paper's aggregation microbenchmark.  An infeasible workload
  // (vector larger than the pool — Figure 5's physical case) reports
  // feasible=false rather than an error: infeasibility IS the result.
  virtual StatusOr<VectorSumResult> RunVectorSum(
      const VectorSumParams& params) = 0;

  // Unified entry point: run `spec.vector` while replaying `spec.faults`.
  // The base implementation handles the healthy case by dispatching to
  // RunVectorSum and returns kUnimplemented when a fault plan or
  // replication is requested; deployments with a failure model override.
  virtual StatusOr<WorkloadResult> RunWorkload(const WorkloadSpec& spec);

  // Applies one fault event immediately (outside any plan).  The base
  // implementation returns kUnimplemented.
  virtual Status ApplyFault(const chaos::FaultEvent& event);
};

// Contiguous per-core slices of [0, total): core i gets
// [i*total/cores, (i+1)*total/cores).
struct CoreSlice {
  Bytes offset = 0;
  Bytes length = 0;
};
std::vector<CoreSlice> SliceForCores(Bytes total, int cores);

}  // namespace lmp::baselines
