#include "baselines/physical.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/stream.h"

namespace lmp::baselines {
namespace {

// Flow batching for the LRU variant: pages are classified individually but
// adjacent same-class pages coalesce into one simulator span.
constexpr Bytes kLruPage = KiB(64);

}  // namespace

chaos::FaultInjector& PhysicalDeployment::injector(
    const chaos::InjectorOptions& options) {
  if (injector_ == nullptr) {
    chaos::FaultInjector::Bindings b;
    b.sim = &sim_;
    b.topology = topology_.get();
    b.cluster = cluster_.get();
    injector_ = std::make_unique<chaos::FaultInjector>(b, options);
  }
  return *injector_;
}

Status PhysicalDeployment::ApplyFault(const chaos::FaultEvent& event) {
  return injector().Apply(event);
}

StatusOr<WorkloadResult> PhysicalDeployment::RunWorkload(
    const WorkloadSpec& spec) {
  if (spec.replication_factor > 0) {
    return FailedPreconditionError(
        "physical pool has no replication layer to protect buffers with");
  }
  WorkloadResult out;
  chaos::FaultInjector& inj = injector(spec.injector);
  if (spec.flight_recorder != nullptr) {
    inj.set_flight_recorder(spec.flight_recorder);
  }
  if (!spec.faults.empty()) {
    LMP_RETURN_IF_ERROR(inj.SchedulePlan(spec.faults));
  }
  // The fault timers fire inside RunVectorSum's stream loops; pooled data
  // survives server crashes by construction, so no span recomputation is
  // needed between repetitions.
  LMP_ASSIGN_OR_RETURN(out.vector, RunVectorSum(spec.vector));
  if (spec.drain_recovery) sim_.Run();
  LMP_RETURN_IF_ERROR(inj.ApplyError());
  out.chaos = inj.report();
  return out;
}

PhysicalDeployment::PhysicalDeployment(const fabric::LinkProfile& link,
                                       bool use_cache, CachePolicy policy,
                                       const cluster::ClusterConfig& config,
                                       int pool_ports)
    : link_(link), use_cache_(use_cache), policy_(policy) {
  LMP_CHECK(config.physical_pool) << "physical deployment needs a pool box";
  fabric::MachineProfile machine;
  machine.cores_per_server = config.cores_per_server;
  topology_ =
      std::make_unique<fabric::Topology>(fabric::Topology::MakePhysical(
          &sim_, config.num_servers, link, machine, pool_ports));
  cluster_ = std::make_unique<cluster::Cluster>(config);
}

StatusOr<VectorSumResult> PhysicalDeployment::RunVectorSum(
    const VectorSumParams& params) {
  // Feasibility gate: the vector must fit the pool box.
  auto& alloc = cluster_->pool().allocator();
  auto frames_or = alloc.Allocate(mem::AllocRequest::Of(
      mem::FramesForBytes(params.vector_bytes, cluster_->config().frame_size)));
  if (!frames_or.ok()) {
    if (IsOutOfMemory(frames_or.status())) {
      VectorSumResult result;
      result.feasible = false;
      result.infeasible_reason =
          "vector does not fit the physical pool (" +
          std::to_string(cluster_->pool().capacity() / kGiB) +
          " GiB) and the local/pool ratio is fixed in hardware";
      return result;
    }
    return frames_or.status();
  }

  StatusOr<VectorSumResult> result =
      !use_cache_ ? RunNoCache(params)
                  : (policy_ == CachePolicy::kPinned ? RunPinnedCache(params)
                                                     : RunLruCache(params));
  LMP_CHECK_OK(alloc.Free(frames_or.value()));
  return result;
}

StatusOr<VectorSumResult> PhysicalDeployment::RunNoCache(
    const VectorSumParams& params) {
  VectorSumResult result;
  result.local_fraction = 0.0;
  const auto runner = static_cast<fabric::ServerIndex>(params.runner);
  const std::vector<CoreSlice> slices =
      SliceForCores(params.vector_bytes, params.cores);

  const SimTime start = sim_.now();
  double first = 0, last = 0;
  for (int rep = 0; rep < params.repetitions; ++rep) {
    std::vector<std::unique_ptr<sim::SpanStream>> streams;
    for (int c = 0; c < params.cores; ++c) {
      if (slices[c].length == 0) continue;
      std::vector<sim::Span> spans{
          sim::Span{static_cast<double>(slices[c].length),
                    topology_->PoolPath(runner, c)}};
      streams.push_back(
          std::make_unique<sim::SpanStream>(&sim_, std::move(spans)));
    }
    const auto rep_result = sim::RunStreams(&sim_, std::move(streams));
    if (rep == 0) first = rep_result.gbps;
    last = rep_result.gbps;
  }
  const SimTime elapsed = sim_.now() - start;
  result.total_time_ns = elapsed;
  result.avg_bandwidth_gbps =
      ToGBps(static_cast<double>(params.vector_bytes) * params.repetitions,
             elapsed);
  result.first_rep_gbps = first;
  result.steady_rep_gbps = last;
  return result;
}

StatusOr<VectorSumResult> PhysicalDeployment::RunPinnedCache(
    const VectorSumParams& params) {
  VectorSumResult result;
  const Bytes cache_capacity =
      cluster_->config().server_total_memory;  // local DRAM acts as cache
  const Bytes pinned = std::min(cache_capacity, params.vector_bytes);
  result.cache_hit_rate = static_cast<double>(pinned) /
                          static_cast<double>(params.vector_bytes);
  result.local_fraction = 0.0;  // pool-homed; locality comes from the cache

  const auto runner = static_cast<fabric::ServerIndex>(params.runner);
  const std::vector<CoreSlice> slices =
      SliceForCores(params.vector_bytes, params.cores);

  // Fill path: pool -> fabric -> local DRAM write, consumed by the core as
  // it copies (the paper's "upfront memcpy overhead").
  auto fill_path = [&](int c) {
    std::vector<sim::ResourceId> path = topology_->PoolPath(runner, c);
    path.push_back(topology_->dram(runner));
    return path;
  };

  const SimTime start = sim_.now();
  double first = 0, last = 0;
  for (int rep = 0; rep < params.repetitions; ++rep) {
    std::vector<std::unique_ptr<sim::SpanStream>> streams;
    for (int c = 0; c < params.cores; ++c) {
      const CoreSlice& slice = slices[c];
      if (slice.length == 0) continue;
      // Overlap of this slice with the pinned prefix [0, pinned).
      const Bytes cached_end = std::min<Bytes>(pinned, slice.offset +
                                                            slice.length);
      const Bytes cached_len =
          cached_end > slice.offset ? cached_end - slice.offset : 0;
      const Bytes uncached_len = slice.length - cached_len;

      std::vector<sim::Span> spans;
      if (cached_len > 0) {
        if (rep == 0) {
          spans.push_back(sim::Span{static_cast<double>(cached_len),
                                    fill_path(c)});
        } else {
          spans.push_back(sim::Span{static_cast<double>(cached_len),
                                    topology_->LocalPath(runner, c)});
        }
      }
      if (uncached_len > 0) {
        spans.push_back(sim::Span{static_cast<double>(uncached_len),
                                  topology_->PoolPath(runner, c)});
      }
      streams.push_back(
          std::make_unique<sim::SpanStream>(&sim_, std::move(spans)));
    }
    const auto rep_result = sim::RunStreams(&sim_, std::move(streams));
    if (rep == 0) first = rep_result.gbps;
    last = rep_result.gbps;
  }
  const SimTime elapsed = sim_.now() - start;
  result.total_time_ns = elapsed;
  result.avg_bandwidth_gbps =
      ToGBps(static_cast<double>(params.vector_bytes) * params.repetitions,
             elapsed);
  result.first_rep_gbps = first;
  result.steady_rep_gbps = last;
  return result;
}

StatusOr<VectorSumResult> PhysicalDeployment::RunLruCache(
    const VectorSumParams& params) {
  VectorSumResult result;
  const Bytes cache_capacity = cluster_->config().server_total_memory;
  mem::LruCache cache(std::max<std::uint64_t>(1, cache_capacity / kLruPage));
  result.local_fraction = 0.0;

  const auto runner = static_cast<fabric::ServerIndex>(params.runner);
  const std::vector<CoreSlice> slices =
      SliceForCores(params.vector_bytes, params.cores);

  auto fill_path = [&](int c) {
    std::vector<sim::ResourceId> path = topology_->PoolPath(runner, c);
    path.push_back(topology_->dram(runner));
    return path;
  };
  // Dirty evictions flush back to the pool box by DMA: local DRAM read,
  // then the same fabric hops a fill takes, in reverse.  No core
  // constraint — a writeback engine does the copy.
  std::vector<sim::ResourceId> writeback_path = topology_->DmaPoolPath(runner);
  writeback_path.insert(writeback_path.begin(), topology_->dram(runner));

  const SimTime start = sim_.now();
  double first = 0, last = 0;
  for (int rep = 0; rep < params.repetitions; ++rep) {
    std::vector<std::unique_ptr<sim::SpanStream>> streams;
    // Classify pages core-by-core in an interleaved page order so the
    // shared cache sees roughly concurrent streams, then coalesce runs of
    // equal outcome into spans.
    std::vector<std::vector<sim::Span>> core_spans(params.cores);
    std::vector<Bytes> cursor(params.cores, 0);
    Bytes rep_writeback = 0;
    bool work_left = true;
    while (work_left) {
      work_left = false;
      for (int c = 0; c < params.cores; ++c) {
        const CoreSlice& slice = slices[c];
        if (cursor[c] >= slice.length) continue;
        work_left = true;
        const Bytes off = slice.offset + cursor[c];
        const Bytes take = std::min<Bytes>(kLruPage, slice.length -
                                                          cursor[c]);
        const bool hit = cache.Access(off / kLruPage, params.write);
        for (const auto& ev : cache.TakeEvicted()) {
          if (ev.dirty) rep_writeback += kLruPage;
        }
        auto& spans = core_spans[c];
        auto path = hit ? topology_->LocalPath(runner, c) : fill_path(c);
        if (!spans.empty() && spans.back().path == path) {
          spans.back().bytes += static_cast<double>(take);
        } else {
          spans.push_back(sim::Span{static_cast<double>(take), path});
        }
        cursor[c] += take;
      }
    }
    for (int c = 0; c < params.cores; ++c) {
      if (core_spans[c].empty()) continue;
      streams.push_back(std::make_unique<sim::SpanStream>(
          &sim_, std::move(core_spans[c])));
    }
    if (rep_writeback > 0) {
      // One coalesced writeback stream per repetition, contending with the
      // fills for the server port, pool port, and pool DRAM.
      streams.push_back(std::make_unique<sim::SpanStream>(
          &sim_, std::vector<sim::Span>{sim::Span{
                     static_cast<double>(rep_writeback), writeback_path}}));
      result.writeback_bytes += rep_writeback;
    }
    const auto rep_result = sim::RunStreams(&sim_, std::move(streams));
    if (rep == 0) first = rep_result.gbps;
    last = rep_result.gbps;
  }
  const SimTime elapsed = sim_.now() - start;
  result.total_time_ns = elapsed;
  result.avg_bandwidth_gbps =
      ToGBps(static_cast<double>(params.vector_bytes) * params.repetitions,
             elapsed);
  result.first_rep_gbps = first;
  result.steady_rep_gbps = last;
  result.cache_hit_rate = cache.stats().HitRate();
  return result;
}

}  // namespace lmp::baselines
