#include "mem/frame_allocator.h"

#include <algorithm>

#include "common/logging.h"

namespace lmp::mem {

FrameAllocator::FrameAllocator(std::uint64_t num_frames, Bytes frame_size)
    : bitmap_(num_frames, false),
      free_frames_(num_frames),
      frame_size_(frame_size) {
  LMP_CHECK(frame_size > 0);
}

StatusOr<std::vector<FrameRun>> FrameAllocator::Allocate(
    std::uint64_t frames) {
  if (frames == 0) return std::vector<FrameRun>{};
  if (frames > free_frames_) {
    return OutOfMemoryError("need " + std::to_string(frames) +
                            " frames, only " + std::to_string(free_frames_) +
                            " free");
  }

  std::vector<FrameRun> runs;
  std::uint64_t remaining = frames;
  const std::uint64_t n = bitmap_.size();
  // Next-fit scan from the hint, wrapping once; coalesce into runs.
  std::uint64_t scanned = 0;
  FrameNumber pos = hint_;
  while (remaining > 0 && scanned < n) {
    if (!bitmap_[pos]) {
      // Extend a run if contiguous with the previous grab.
      if (!runs.empty() && runs.back().end() == pos) {
        ++runs.back().count;
      } else {
        runs.push_back(FrameRun{pos, 1});
      }
      bitmap_[pos] = true;
      --free_frames_;
      --remaining;
    }
    pos = (pos + 1) % n;
    ++scanned;
  }
  LMP_CHECK(remaining == 0) << "free count disagreed with bitmap";
  hint_ = pos;
  return runs;
}

Status FrameAllocator::Free(const std::vector<FrameRun>& runs) {
  // Validate first so a bad request leaves state untouched.
  for (const FrameRun& r : runs) {
    if (r.end() > bitmap_.size()) {
      return InvalidArgumentError("frame run out of range");
    }
    for (FrameNumber f = r.first; f < r.end(); ++f) {
      if (!bitmap_[f]) return InvalidArgumentError("double free of frame");
    }
  }
  for (const FrameRun& r : runs) {
    for (FrameNumber f = r.first; f < r.end(); ++f) {
      bitmap_[f] = false;
      ++free_frames_;
    }
  }
  return Status::Ok();
}

Status FrameAllocator::Resize(std::uint64_t new_num_frames) {
  const std::uint64_t old = bitmap_.size();
  if (new_num_frames >= old) {
    bitmap_.resize(new_num_frames, false);
    free_frames_ += new_num_frames - old;
    return Status::Ok();
  }
  for (FrameNumber f = new_num_frames; f < old; ++f) {
    if (bitmap_[f]) {
      return FailedPreconditionError(
          "cannot shrink: frame " + std::to_string(f) + " still allocated");
    }
  }
  bitmap_.resize(new_num_frames);
  free_frames_ -= old - new_num_frames;
  if (hint_ >= new_num_frames) hint_ = 0;
  return Status::Ok();
}

bool FrameAllocator::IsAllocated(FrameNumber f) const {
  return f < bitmap_.size() && bitmap_[f];
}

FrameNumber FrameAllocator::HighestAllocatedEnd() const {
  for (FrameNumber f = bitmap_.size(); f > 0; --f) {
    if (bitmap_[f - 1]) return f;
  }
  return 0;
}

StatusOr<std::vector<FrameRun>> FrameAllocator::AllocateBelow(
    std::uint64_t frames, FrameNumber bound) {
  if (frames == 0) return std::vector<FrameRun>{};
  const FrameNumber limit = std::min<FrameNumber>(bound, bitmap_.size());
  std::vector<FrameRun> runs;
  std::uint64_t remaining = frames;
  for (FrameNumber pos = 0; pos < limit && remaining > 0; ++pos) {
    if (bitmap_[pos]) continue;
    if (!runs.empty() && runs.back().end() == pos) {
      ++runs.back().count;
    } else {
      runs.push_back(FrameRun{pos, 1});
    }
    bitmap_[pos] = true;
    --free_frames_;
    --remaining;
  }
  if (remaining > 0) {
    LMP_CHECK_OK(Free(runs));  // roll back the partial grab
    return OutOfMemoryError("need " + std::to_string(frames) +
                            " frames below " + std::to_string(bound) +
                            ", short by " + std::to_string(remaining));
  }
  return runs;
}

std::uint64_t FrameAllocator::AllocatedFramesFrom(FrameNumber from) const {
  std::uint64_t count = 0;
  for (FrameNumber f = from; f < bitmap_.size(); ++f) {
    if (bitmap_[f]) ++count;
  }
  return count;
}

}  // namespace lmp::mem
