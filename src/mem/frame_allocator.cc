#include "mem/frame_allocator.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace lmp::mem {
namespace {

// A placement computed against the free index but not yet committed:
// `count` frames at `start`, carved out of the free run beginning at
// `run_start`.  Commit order never invalidates later entries because each
// take touches a distinct free run (or a distinct piece of one).
struct Take {
  FrameNumber run_start = 0;
  FrameNumber start = 0;
  std::uint64_t count = 0;
};

}  // namespace

FrameAllocator::FrameAllocator(std::uint64_t num_frames, Bytes frame_size)
    : num_frames_(num_frames), free_frames_(num_frames),
      frame_size_(frame_size) {
  LMP_CHECK(frame_size > 0);
  if (num_frames > 0) {
    free_runs_.emplace(0, num_frames);
    buckets_[BucketOf(num_frames)].insert(0);
  }
  // The default locus: legacy next-fit placement, never buffered.
  loci_.push_back(LocusState{LocusSpec{"", Mobility::kMobile, 0}, 0, 0, {}});
  locus_by_name_.emplace("", kDefaultLocus);
}

unsigned FrameAllocator::BucketOf(std::uint64_t count) {
  LMP_CHECK(count > 0);
  return static_cast<unsigned>(std::bit_width(count) - 1);
}

void FrameAllocator::InsertFreeRun(FrameNumber start, std::uint64_t count) {
  if (count == 0) return;
  free_frames_ += count;
  auto next = free_runs_.lower_bound(start);
  if (next != free_runs_.begin()) {
    auto prev = std::prev(next);
    LMP_CHECK(prev->first + prev->second <= start)
        << "free-run insert overlaps an existing run";
    if (prev->first + prev->second == start) {  // coalesce left
      buckets_[BucketOf(prev->second)].erase(prev->first);
      start = prev->first;
      count += prev->second;
      free_runs_.erase(prev);
    }
  }
  if (next != free_runs_.end() && start + count == next->first) {  // right
    buckets_[BucketOf(next->second)].erase(next->first);
    count += next->second;
    free_runs_.erase(next);
  }
  free_runs_.emplace(start, count);
  buckets_[BucketOf(count)].insert(start);
}

void FrameAllocator::CarveFreeRun(FrameNumber run_start, FrameNumber start,
                                  std::uint64_t count) {
  auto it = free_runs_.find(run_start);
  LMP_CHECK(it != free_runs_.end()) << "carve from a missing free run";
  const std::uint64_t len = it->second;
  LMP_CHECK(start >= run_start && start + count <= run_start + len);
  buckets_[BucketOf(len)].erase(run_start);
  free_runs_.erase(it);
  const std::uint64_t left = start - run_start;
  const std::uint64_t right = (run_start + len) - (start + count);
  if (left > 0) {
    free_runs_.emplace(run_start, left);
    buckets_[BucketOf(left)].insert(run_start);
  }
  if (right > 0) {
    free_runs_.emplace(start + count, right);
    buckets_[BucketOf(right)].insert(start + count);
  }
  free_frames_ -= count;
}

LocusId FrameAllocator::RegisterLocus(const LocusSpec& spec) {
  auto it = locus_by_name_.find(spec.name);
  if (it != locus_by_name_.end()) return it->second;
  const LocusId id = static_cast<LocusId>(loci_.size());
  loci_.push_back(LocusState{spec, 0, 0, {}});
  locus_by_name_.emplace(spec.name, id);
  return id;
}

const LocusSpec& FrameAllocator::locus_spec(LocusId id) const {
  LMP_CHECK(id < loci_.size());
  return loci_[id].spec;
}

const LocusStats& FrameAllocator::locus_stats(LocusId id) const {
  LMP_CHECK(id < loci_.size());
  return loci_[id].stats;
}

std::uint64_t FrameAllocator::buffered_frames() const {
  std::uint64_t total = 0;
  for (const LocusState& locus : loci_) total += locus.buf_end - locus.buf_next;
  return total;
}

void FrameAllocator::FlushLocusBuffers() {
  for (LocusState& locus : loci_) {
    if (locus.buf_next < locus.buf_end) {
      InsertFreeRun(locus.buf_next, locus.buf_end - locus.buf_next);
    }
    locus.buf_next = locus.buf_end = 0;
  }
}

// Reproduces the original next-fit bitmap scan exactly: free frames are
// taken in scan order starting at the hint, wrapping once, and the hint
// advances to one past the last frame taken.  Identical request sequences
// therefore produce identical layouts to the bitmap implementation.
StatusOr<std::vector<FrameRun>> FrameAllocator::NextFit(std::uint64_t frames) {
  if (frames > free_frames_) {
    return OutOfMemoryError("need " + std::to_string(frames) +
                            " frames, only " + std::to_string(free_frames_) +
                            " free");
  }
  std::vector<FrameRun> runs;
  std::uint64_t remaining = frames;
  FrameNumber cursor = hint_;
  bool wrapped = false;
  while (remaining > 0) {
    // First free run with end > cursor.
    auto it = free_runs_.upper_bound(cursor);
    if (it != free_runs_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second > cursor) it = prev;
    }
    if (it == free_runs_.end()) {
      LMP_CHECK(!wrapped) << "free count disagreed with run index";
      wrapped = true;
      cursor = 0;
      continue;
    }
    const FrameNumber take_start = std::max(it->first, cursor);
    const std::uint64_t avail = it->first + it->second - take_start;
    const std::uint64_t take = std::min(avail, remaining);
    runs.push_back(FrameRun{take_start, take});
    cursor = take_start + take;
    CarveFreeRun(it->first, take_start, take);
    remaining -= take;
  }
  hint_ = cursor % num_frames_;
  return runs;
}

// First-fit ascending, every frame strictly below `bound` (clipped to the
// region).  The take list is computed first and committed only when the
// request is fully covered, so shortage leaves state untouched — the old
// bitmap implementation grabbed as it scanned and had to roll back.
StatusOr<std::vector<FrameRun>> FrameAllocator::FitAscending(
    std::uint64_t frames, FrameNumber bound) {
  const FrameNumber limit = std::min<FrameNumber>(bound, num_frames_);
  std::vector<Take> takes;
  std::uint64_t remaining = frames;
  for (auto it = free_runs_.begin();
       it != free_runs_.end() && it->first < limit && remaining > 0; ++it) {
    const std::uint64_t avail = std::min(it->second, limit - it->first);
    const std::uint64_t take = std::min(avail, remaining);
    takes.push_back(Take{it->first, it->first, take});
    remaining -= take;
  }
  if (remaining > 0) {
    return OutOfMemoryError("need " + std::to_string(frames) +
                            " frames below " + std::to_string(bound) +
                            ", short by " + std::to_string(remaining));
  }
  std::vector<FrameRun> runs;
  runs.reserve(takes.size());
  for (const Take& t : takes) {
    CarveFreeRun(t.run_start, t.start, t.count);
    runs.push_back(FrameRun{t.start, t.count});
  }
  return runs;
}

// First-fit descending from the top of the region, taking the high end of
// each run: the pinned-cohort policy.  Pinned data packs away from the
// shrink cut so mobile cohorts and compaction own the low frames.
StatusOr<std::vector<FrameRun>> FrameAllocator::FitDescending(
    std::uint64_t frames) {
  if (frames > free_frames_) {
    return OutOfMemoryError("need " + std::to_string(frames) +
                            " frames, only " + std::to_string(free_frames_) +
                            " free");
  }
  std::vector<Take> takes;
  std::uint64_t remaining = frames;
  for (auto it = free_runs_.rbegin(); it != free_runs_.rend() && remaining > 0;
       ++it) {
    const std::uint64_t take = std::min(it->second, remaining);
    takes.push_back(Take{it->first, it->first + it->second - take, take});
    remaining -= take;
  }
  LMP_CHECK(remaining == 0) << "free count disagreed with run index";
  std::vector<FrameRun> runs;
  runs.reserve(takes.size());
  for (const Take& t : takes) {
    CarveFreeRun(t.run_start, t.start, t.count);
    runs.push_back(FrameRun{t.start, t.count});
  }
  return runs;
}

std::optional<FrameRun> FrameAllocator::TakeContiguous(std::uint64_t frames,
                                                       Mobility mobility,
                                                       bool directional) {
  if (frames == 0 || frames > free_frames_) return std::nullopt;
  // Only the request's own size class can contain runs that are too
  // short; every run in a higher bucket qualifies.
  const unsigned first_bucket = BucketOf(frames);
  std::optional<FrameNumber> best;
  for (unsigned b = first_bucket; b < buckets_.size(); ++b) {
    const std::set<FrameNumber>& bucket = buckets_[b];
    if (mobility == Mobility::kMobile) {
      // Lowest qualifying run in this bucket (starts ascend in the set).
      for (FrameNumber start : bucket) {
        if (best.has_value() && start >= *best) break;
        if (free_runs_.at(start) < frames) continue;
        best = start;
        break;
      }
    } else {
      // Highest qualifying run in this bucket.
      for (auto it = bucket.rbegin(); it != bucket.rend(); ++it) {
        if (best.has_value() && *it <= *best) break;
        if (free_runs_.at(*it) < frames) continue;
        best = *it;
        break;
      }
    }
    // Best fit: stop at the snuggest size class that had a qualifying
    // run.  Directional: keep looking — a bigger run further out in the
    // packing direction wins over a snug one in the middle.
    if (!directional && best.has_value()) break;
  }
  if (!best.has_value()) return std::nullopt;
  const FrameNumber start = *best;
  const std::uint64_t len = free_runs_.at(start);
  if (mobility == Mobility::kMobile) {
    CarveFreeRun(start, start, frames);
    return FrameRun{start, frames};
  }
  CarveFreeRun(start, start + len - frames, frames);
  return FrameRun{start + len - frames, frames};
}

StatusOr<std::vector<FrameRun>> FrameAllocator::AllocateInLocus(
    const AllocRequest& request, LocusState& locus) {
  const std::uint64_t frames = request.frames;
  const Mobility mobility = locus.spec.mobility;

  // Bump-pointer buffered path: small grabs come out of a per-locus
  // contiguous reservation, amortizing index work and keeping cohort data
  // clustered.  Mobile buffers bump upward, pinned buffers bump downward —
  // the same outward packing the unbuffered policies produce.
  if (locus.spec.buffer_frames > 0 && frames <= locus.spec.buffer_frames &&
      !request.prefer_contiguous) {
    if (locus.buf_end - locus.buf_next < frames) {
      if (locus.buf_next < locus.buf_end) {  // flush the stub, then refill
        InsertFreeRun(locus.buf_next, locus.buf_end - locus.buf_next);
        locus.buf_next = locus.buf_end = 0;
      }
      if (auto chunk = TakeContiguous(locus.spec.buffer_frames, mobility,
                                      /*directional=*/true)) {
        locus.buf_next = chunk->first;
        locus.buf_end = chunk->end();
        ++locus.stats.buffer_refills;
        if (metrics_ != nullptr) metrics_->Increment("mem.alloc.refills");
      }
    }
    if (locus.buf_end - locus.buf_next >= frames) {
      FrameRun run;
      if (mobility == Mobility::kMobile) {
        run = FrameRun{locus.buf_next, frames};
        locus.buf_next += frames;
      } else {
        run = FrameRun{locus.buf_end - frames, frames};
        locus.buf_end -= frames;
      }
      if (metrics_ != nullptr) metrics_->Increment("mem.alloc.buffered");
      return std::vector<FrameRun>{run};
    }
    // No contiguous chunk for a refill: fall through and scatter.
  }

  if (request.prefer_contiguous) {
    if (auto run = TakeContiguous(frames, mobility, /*directional=*/true)) {
      if (metrics_ != nullptr) metrics_->Increment("mem.alloc.contiguous");
      return std::vector<FrameRun>{*run};
    }
  }
  return mobility == Mobility::kMobile ? FitAscending(frames, num_frames_)
                                       : FitDescending(frames);
}

StatusOr<std::vector<FrameRun>> FrameAllocator::Allocate(
    const AllocRequest& request) {
  if (request.locus >= loci_.size()) {
    return InvalidArgumentError("unknown locus");
  }
  if (request.frames == 0) return std::vector<FrameRun>{};

  StatusOr<std::vector<FrameRun>> runs_or = [&] {
    if (request.bound.has_value()) {
      // Bounded requests override cohort placement: compaction needs the
      // frames below the cut wherever they are.
      return FitAscending(request.frames, *request.bound);
    }
    if (request.locus == kDefaultLocus) {
      if (request.prefer_contiguous) {
        if (auto run = TakeContiguous(request.frames, Mobility::kMobile,
                                      /*directional=*/false)) {
          if (metrics_ != nullptr) metrics_->Increment("mem.alloc.contiguous");
          return StatusOr<std::vector<FrameRun>>(std::vector<FrameRun>{*run});
        }
      }
      return NextFit(request.frames);
    }
    return AllocateInLocus(request, loci_[request.locus]);
  }();
  if (!runs_or.ok()) return runs_or;

  LocusStats& stats = loci_[request.locus].stats;
  ++stats.allocs;
  stats.frames += request.frames;
  if (metrics_ != nullptr) {
    metrics_->Increment("mem.alloc.requests");
    metrics_->Increment("mem.alloc.frames", request.frames);
    metrics_->Increment("mem.alloc.runs", runs_or->size());
    metrics_->SetGauge("mem.alloc.free_runs",
                       static_cast<double>(free_runs_.size()));
  }
  return runs_or;
}

Status FrameAllocator::Free(const std::vector<FrameRun>& runs) {
  // Validate everything first so a bad request leaves state untouched.
  std::uint64_t total = 0;
  for (const FrameRun& r : runs) {
    if (r.end() > num_frames_) {
      return InvalidArgumentError("frame run out of range");
    }
    if (r.count == 0) continue;
    total += r.count;
    // Any overlap with the free index is a double free.
    auto it = free_runs_.upper_bound(r.first);
    if (it != free_runs_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second > r.first) {
        return InvalidArgumentError("double free of frame");
      }
    }
    if (it != free_runs_.end() && it->first < r.end()) {
      return InvalidArgumentError("double free of frame");
    }
    // Frames parked in a locus buffer were never handed out.
    for (const LocusState& locus : loci_) {
      if (locus.buf_next < locus.buf_end && r.first < locus.buf_end &&
          locus.buf_next < r.end()) {
        return InvalidArgumentError("freeing reserved locus-buffer frame");
      }
    }
  }
  // Overlap within the request itself is also a double free (the bitmap
  // implementation silently corrupted its free count here).
  std::vector<FrameRun> sorted;
  sorted.reserve(runs.size());
  for (const FrameRun& r : runs) {
    if (r.count > 0) sorted.push_back(r);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const FrameRun& a, const FrameRun& b) {
              return a.first < b.first;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].first < sorted[i - 1].end()) {
      return InvalidArgumentError("double free of frame");
    }
  }

  for (const FrameRun& r : sorted) InsertFreeRun(r.first, r.count);
  if (metrics_ != nullptr) {
    metrics_->Increment("mem.alloc.frees");
    metrics_->Increment("mem.alloc.freed_frames", total);
    metrics_->SetGauge("mem.alloc.free_runs",
                       static_cast<double>(free_runs_.size()));
  }
  return Status::Ok();
}

Status FrameAllocator::Resize(std::uint64_t new_num_frames) {
  if (new_num_frames >= num_frames_) {
    InsertFreeRun(num_frames_, new_num_frames - num_frames_);
    num_frames_ = new_num_frames;
    return Status::Ok();
  }
  // Unconsumed reservations would read as allocated tail frames; give them
  // back before judging the cut.
  FlushLocusBuffers();
  // The tail [new_num_frames, num_frames_) must be one free piece: a run
  // covering the cut and reaching the end of the region.
  auto it = free_runs_.upper_bound(new_num_frames);
  const auto prev = it == free_runs_.begin() ? free_runs_.end() : std::prev(it);
  const bool covers_cut = prev != free_runs_.end() &&
                          prev->first + prev->second > new_num_frames;
  if (!covers_cut || prev->first + prev->second < num_frames_) {
    const FrameNumber first_live =
        covers_cut ? prev->first + prev->second : new_num_frames;
    return FailedPreconditionError("cannot shrink: frame " +
                                   std::to_string(first_live) +
                                   " still allocated");
  }
  CarveFreeRun(prev->first, new_num_frames, num_frames_ - new_num_frames);
  num_frames_ = new_num_frames;
  if (hint_ >= new_num_frames) hint_ = 0;
  return Status::Ok();
}

bool FrameAllocator::IsAllocated(FrameNumber f) const {
  if (f >= num_frames_) return false;
  auto it = free_runs_.upper_bound(f);
  if (it == free_runs_.begin()) return true;
  const auto prev = std::prev(it);
  return prev->first + prev->second <= f;
}

FrameNumber FrameAllocator::HighestAllocatedEnd() const {
  if (num_frames_ == 0) return 0;
  const auto last = free_runs_.rbegin();
  if (last == free_runs_.rend()) return num_frames_;  // fully allocated
  // When the last free run touches the end of the region the tail above
  // its start is clear; otherwise the final frame itself is live.
  return last->first + last->second == num_frames_ ? last->first : num_frames_;
}

std::uint64_t FrameAllocator::AllocatedFramesFrom(FrameNumber from) const {
  if (from >= num_frames_) return 0;
  std::uint64_t free_after = 0;
  auto it = free_runs_.upper_bound(from);
  if (it != free_runs_.begin()) {
    const auto prev = std::prev(it);
    if (prev->first + prev->second > from) {
      free_after += prev->first + prev->second - from;
    }
  }
  for (; it != free_runs_.end(); ++it) free_after += it->second;
  return (num_frames_ - from) - free_after;
}

}  // namespace lmp::mem
