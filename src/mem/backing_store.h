// BackingStore: real memory behind the functional layer.
//
// The pool manager operates on real bytes — reads, writes, and migrations
// actually move data, so correctness (address-stable migration, coherence,
// recovery) is testable.  Benchmarks that sweep paper-scale capacities
// (96 GB) run the timing layer against frame *accounting* only and create
// no BackingStore; functional tests use small frame counts.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "mem/frame_allocator.h"

namespace lmp::mem {

class BackingStore {
 public:
  BackingStore(std::uint64_t num_frames, Bytes frame_size)
      : frame_size_(frame_size), data_(num_frames * frame_size) {
    LMP_CHECK(frame_size > 0);
  }

  std::uint64_t num_frames() const { return data_.size() / frame_size_; }
  Bytes frame_size() const { return frame_size_; }

  std::span<std::byte> Frame(FrameNumber f) {
    LMP_CHECK(f < num_frames());
    return std::span<std::byte>(data_.data() + f * frame_size_, frame_size_);
  }
  std::span<const std::byte> Frame(FrameNumber f) const {
    LMP_CHECK(f < num_frames());
    return std::span<const std::byte>(data_.data() + f * frame_size_,
                                      frame_size_);
  }

  // Byte-addressed accessors; [offset, offset+len) may span frames.
  void Read(Bytes offset, std::span<std::byte> out) const {
    LMP_CHECK(offset + out.size() <= data_.size());
    std::memcpy(out.data(), data_.data() + offset, out.size());
  }
  void Write(Bytes offset, std::span<const std::byte> in) {
    LMP_CHECK(offset + in.size() <= data_.size());
    std::memcpy(data_.data() + offset, in.data(), in.size());
  }

  // Grow to match a resized FrameAllocator.  Never shrinks (the allocator
  // guarantees the shrunk tail holds no live data, so keeping the bytes is
  // harmless and avoids invalidating outstanding spans).
  void EnsureFrames(std::uint64_t num_frames) {
    if (num_frames * frame_size_ > data_.size()) {
      data_.resize(num_frames * frame_size_);
    }
  }

 private:
  Bytes frame_size_;
  std::vector<std::byte> data_;
};

}  // namespace lmp::mem
