// Page-granularity LRU cache.
//
// Implements the "Physical cache" baseline from §4.1 of the paper: a
// physical-pool deployment that uses each server's 8 GB of local DRAM as a
// cache for pooled memory.  Caching "incurs an upfront memcpy() overhead
// but provides faster subsequent reads" — the deployment layer charges a
// fill transfer per miss and a local read per hit.  The classic LRU
// pathology the paper's Figures 3–4 expose (a sequential sweep larger than
// the cache yields a 0% hit rate) falls out of this implementation
// naturally rather than being assumed.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace lmp::mem {

using PageId = std::uint64_t;

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  double HitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity_pages);

  // Touches `page`; returns true on hit.  On miss the page is inserted
  // (possibly evicting the LRU page — see TakeEvicted()).
  bool Access(PageId page, bool write = false);

  // True without changing recency or stats (probe).
  bool Contains(PageId page) const;

  // Invalidate one page (e.g., pool-side write by another server).
  void Invalidate(PageId page);
  void Clear();

  // Evicted pages queue up (in eviction order) until drained here, so a
  // multi-page SetCapacity() shrink loses nothing.  Callers that charge
  // writeback traffic must drain after every Access()/SetCapacity().
  struct Evicted {
    PageId page;
    bool dirty;
  };
  std::vector<Evicted> TakeEvicted();
  std::size_t pending_evictions() const { return evicted_.size(); }

  // Dynamically resize (shared-region flexing).  Shrinking evicts LRU pages.
  void SetCapacity(std::uint64_t capacity_pages);

  std::uint64_t size() const { return map_.size(); }
  std::uint64_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

 private:
  struct Entry {
    PageId page;
    bool dirty;
  };

  void EvictOne();

  std::uint64_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<Entry>::iterator> map_;
  CacheStats stats_;
  std::vector<Evicted> evicted_;  // pending, in eviction order
};

}  // namespace lmp::mem
