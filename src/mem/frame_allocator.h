// Physical frame allocator.
//
// Each server's DRAM (and the physical pool box) is divided into fixed-size
// frames; the allocator hands out frame sets for segment backing.  Frames
// need not be contiguous — the per-server fine-grained map (address
// translation step 2, §5 of the paper) handles scatter — but the allocator
// prefers runs to keep maps small.  Capacity accounting is exact: this is
// what makes the Figure-5 "infeasible on a physical pool" experiment fall
// out of the allocator rather than being hard-coded.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp::mem {

using FrameNumber = std::uint64_t;

struct FrameRun {
  FrameNumber first = 0;
  std::uint64_t count = 0;
  FrameNumber end() const { return first + count; }
};

class FrameAllocator {
 public:
  FrameAllocator(std::uint64_t num_frames, Bytes frame_size);

  // Allocates exactly `frames` frames, as few runs as first-fit finds.
  // Fails with kOutOfMemory if fewer than `frames` are free.
  StatusOr<std::vector<FrameRun>> Allocate(std::uint64_t frames);

  // Frees previously allocated runs.  Double-free is an error.
  Status Free(const std::vector<FrameRun>& runs);

  // Grow/shrink the managed frame count (shared-region resizing, §5).
  // Shrinking fails with kFailedPrecondition if any frame in the removed
  // tail is still allocated.
  Status Resize(std::uint64_t new_num_frames);

  std::uint64_t num_frames() const { return bitmap_.size(); }
  std::uint64_t free_frames() const { return free_frames_; }
  std::uint64_t used_frames() const { return num_frames() - free_frames_; }
  Bytes frame_size() const { return frame_size_; }
  Bytes capacity_bytes() const { return num_frames() * frame_size_; }
  Bytes free_bytes() const { return free_frames_ * frame_size_; }

  bool IsAllocated(FrameNumber f) const;

  // Allocated frames at positions >= `from` — the frames a Resize(`from`)
  // would have to reclaim.  This is what a deferred shrink strands: the
  // sizing layer reports it so a drain knows how many bytes must move.
  std::uint64_t AllocatedFramesFrom(FrameNumber from) const;

  // One past the highest allocated frame — the smallest frame count a
  // Resize() can shrink to right now.  0 when nothing is allocated.
  FrameNumber HighestAllocatedEnd() const;

  // First-fit allocation restricted to frames < `bound`: the compaction
  // primitive.  A shrink to `bound` frames needs live data packed below
  // the cut; next-fit Allocate() can land anywhere, this cannot.  Fails
  // with kOutOfMemory when fewer than `frames` frames are free below
  // `bound`; the hint is untouched.
  StatusOr<std::vector<FrameRun>> AllocateBelow(std::uint64_t frames,
                                                FrameNumber bound);

 private:
  // One bool per frame; small enough at our scales (96 GiB / 64 KiB pages =
  // 1.5M frames) that a plain bitmap beats cleverer structures.
  std::vector<bool> bitmap_;
  std::uint64_t free_frames_;
  Bytes frame_size_;
  FrameNumber hint_ = 0;  // next-fit start position
};

// Frame size used across the library: 64 KiB keeps metadata tractable at
// 96 GiB scale while staying fine-grained enough for migration units.
inline constexpr Bytes kDefaultFrameSize = KiB(64);

constexpr std::uint64_t FramesForBytes(Bytes bytes, Bytes frame_size) {
  return (bytes + frame_size - 1) / frame_size;
}

}  // namespace lmp::mem
