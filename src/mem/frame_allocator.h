// Physical frame allocator.
//
// Each server's DRAM (and the physical pool box) is divided into fixed-size
// frames; the allocator hands out frame sets for segment backing.  Frames
// need not be contiguous — the per-server fine-grained map (address
// translation step 2, §5 of the paper) handles scatter — but the allocator
// prefers runs to keep maps small.  Capacity accounting is exact: this is
// what makes the Figure-5 "infeasible on a physical pool" experiment fall
// out of the allocator rather than being hard-coded.
//
// Internally the allocator is run-indexed: free space lives in an ordered
// map of coalescing free runs keyed by start frame, with a size-bucketed
// index (runs grouped by floor(log2(length))) for best-fit lookups.
// Allocate/Free are amortized O(runs · log n); HighestAllocatedEnd and
// AllocatedFramesFrom are queries over the run set instead of bitmap
// scans.  The default placement policy byte-for-byte reproduces the
// original next-fit bitmap scan, so identical request sequences produce
// identical frame layouts.
//
// Loci (MPS-style allocation cohorts): callers may register named cohorts
// carrying a mobility hint.  Mobile cohorts pack low (first-fit ascending —
// cheap future CompactSegment/shrink cuts), pinned cohorts pack high
// (first-fit descending from the top of the region), and each locus may
// reserve a bump-pointer buffer so small grabs are amortized O(1) and land
// contiguously.  The default locus (id 0) keeps the legacy next-fit policy
// and never buffers.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"

namespace lmp::mem {

using FrameNumber = std::uint64_t;

struct FrameRun {
  FrameNumber first = 0;
  std::uint64_t count = 0;
  FrameNumber end() const { return first + count; }
  friend bool operator==(const FrameRun&, const FrameRun&) = default;
};

// Allocation cohorts.  Id 0 is the always-present default locus (legacy
// next-fit placement, unbuffered); ids are dense and assigned in
// registration order, so identical registration sequences give identical
// ids — determinism does not depend on names hashing anywhere.
using LocusId = std::uint32_t;
inline constexpr LocusId kDefaultLocus = 0;

enum class Mobility : std::uint8_t {
  kMobile,  // may be compacted/migrated; packs low
  kPinned,  // never moved by drains; packs high, away from shrink cuts
};

struct LocusSpec {
  std::string name;
  Mobility mobility = Mobility::kMobile;
  // Frames reserved per bump-pointer refill; 0 disables buffering and the
  // locus falls back to unbuffered first-fit (ascending or descending per
  // mobility).  Requests larger than the buffer always bypass it.
  std::uint64_t buffer_frames = 0;
};

// Cumulative per-locus counters (monotonic; frames freed later still count
// as allocated-through-the-locus here).
struct LocusStats {
  std::uint64_t allocs = 0;
  std::uint64_t frames = 0;
  std::uint64_t buffer_refills = 0;
};

// One request struct instead of a growing tail of positional parameters:
// new placement knobs become fields with defaults, and every call site
// reads as named options.  (See DESIGN.md, "request structs".)
struct AllocRequest {
  std::uint64_t frames = 0;
  // When set, every frame must land strictly below `bound` (first-fit from
  // frame 0): the compaction primitive.  A shrink to `bound` frames needs
  // live data packed below the cut; default next-fit can land anywhere,
  // this cannot.  The next-fit hint is untouched.  Overrides locus policy.
  std::optional<FrameNumber> bound;
  LocusId locus = kDefaultLocus;
  // Try a single contiguous run via the size-bucketed best-fit index
  // before falling back to the locus policy (which may scatter).
  bool prefer_contiguous = false;

  static AllocRequest Of(std::uint64_t frames) {
    AllocRequest request;
    request.frames = frames;
    return request;
  }
  static AllocRequest Below(std::uint64_t frames, FrameNumber bound) {
    AllocRequest request;
    request.frames = frames;
    request.bound = bound;
    return request;
  }
};

class FrameAllocator {
 public:
  FrameAllocator(std::uint64_t num_frames, Bytes frame_size);

  // Registers (or looks up, by name) an allocation cohort.  Re-registering
  // an existing name returns the original id; the spec is not updated.
  LocusId RegisterLocus(const LocusSpec& spec);
  const LocusSpec& locus_spec(LocusId id) const;
  const LocusStats& locus_stats(LocusId id) const;
  std::size_t num_loci() const { return loci_.size(); }

  // Allocates exactly `request.frames` frames, as few runs as the placement
  // policy finds.  Fails with kOutOfMemory when they cannot be found (for
  // bounded requests: below the bound).  Placement is computed against the
  // free-run index and committed only when the request is fully satisfied,
  // so failure never mutates state — there is no partial grab to roll back.
  StatusOr<std::vector<FrameRun>> Allocate(const AllocRequest& request);

  // Frees previously allocated runs.  Double-free (any frame already free,
  // sitting in a locus buffer, or repeated within `runs`) is an error and
  // leaves state untouched.  O(runs · log n) via the run index.
  Status Free(const std::vector<FrameRun>& runs);

  // Grow/shrink the managed frame count (shared-region resizing, §5).
  // Shrinking flushes locus buffers (unconsumed reservations return to the
  // free index), then fails with kFailedPrecondition if any frame in the
  // removed tail is still allocated.
  Status Resize(std::uint64_t new_num_frames);

  std::uint64_t num_frames() const { return num_frames_; }
  std::uint64_t free_frames() const { return free_frames_; }
  std::uint64_t used_frames() const { return num_frames_ - free_frames_; }
  Bytes frame_size() const { return frame_size_; }
  Bytes capacity_bytes() const { return num_frames_ * frame_size_; }
  Bytes free_bytes() const { return free_frames_ * frame_size_; }

  // Number of runs in the free index — the external fragmentation measure
  // bench_alloc reports.
  std::size_t free_run_count() const { return free_runs_.size(); }

  // Frames reserved into locus bump buffers but not yet handed out.  They
  // read as allocated (not in the free index) until flushed.
  std::uint64_t buffered_frames() const;

  // Returns unconsumed locus-buffer reservations to the free index.
  void FlushLocusBuffers();

  bool IsAllocated(FrameNumber f) const;

  // Allocated frames at positions >= `from` — the frames a Resize(`from`)
  // would have to reclaim.  This is what a deferred shrink strands: the
  // sizing layer reports it so a drain knows how many bytes must move.
  // O(log n + free runs past `from`).
  std::uint64_t AllocatedFramesFrom(FrameNumber from) const;

  // One past the highest allocated frame — the smallest frame count a
  // Resize() can shrink to right now.  0 when nothing is allocated.
  // O(log n).
  FrameNumber HighestAllocatedEnd() const;

  // Optional counters (mem.alloc.*); null (the default) disables emission
  // so existing metrics sidecars are unchanged unless a caller opts in.
  void set_metrics(MetricsRegistry* registry) { metrics_ = registry; }

 private:
  struct LocusState {
    LocusSpec spec;
    // Unconsumed bump-pointer reservation [buf_next, buf_end); empty when
    // buf_next == buf_end.  Reserved frames are absent from the free index.
    FrameNumber buf_next = 0;
    FrameNumber buf_end = 0;
    LocusStats stats;
  };

  // Free-run index maintenance.  Insert coalesces with both neighbours;
  // Carve removes [start, start+count) from the run at `run_start`,
  // splitting when the cut is interior.  Both keep the size buckets and
  // free_frames_ in sync.
  void InsertFreeRun(FrameNumber start, std::uint64_t count);
  void CarveFreeRun(FrameNumber run_start, FrameNumber start,
                    std::uint64_t count);
  static unsigned BucketOf(std::uint64_t count);

  // Placement policies.  All compute the full take list against the free
  // index and commit only on success.
  StatusOr<std::vector<FrameRun>> NextFit(std::uint64_t frames);
  StatusOr<std::vector<FrameRun>> FitAscending(std::uint64_t frames,
                                               FrameNumber bound);
  StatusOr<std::vector<FrameRun>> FitDescending(std::uint64_t frames);
  // Single contiguous run via the bucket index; nullopt when no run fits.
  // `directional` makes address direction dominate (mobile: lowest
  // qualifying run, pinned: highest) — the cohort-packing invariant —
  // while non-directional picks the snuggest size class first (best fit,
  // the default-locus prefer_contiguous policy).
  std::optional<FrameRun> TakeContiguous(std::uint64_t frames,
                                         Mobility mobility, bool directional);
  StatusOr<std::vector<FrameRun>> AllocateInLocus(const AllocRequest& request,
                                                  LocusState& locus);

  std::uint64_t num_frames_;
  std::uint64_t free_frames_;
  Bytes frame_size_;
  FrameNumber hint_ = 0;  // next-fit start position (default locus)

  // start frame -> run length; runs never touch (coalesced on insert).
  std::map<FrameNumber, std::uint64_t> free_runs_;
  // Run start frames grouped by floor(log2(length)): the best-fit index.
  std::array<std::set<FrameNumber>, 64> buckets_;

  std::vector<LocusState> loci_;  // [0] = default locus
  std::map<std::string, LocusId> locus_by_name_;

  MetricsRegistry* metrics_ = nullptr;
};

// Frame size used across the library: 64 KiB keeps metadata tractable at
// 96 GiB scale while staying fine-grained enough for migration units.
inline constexpr Bytes kDefaultFrameSize = KiB(64);

constexpr std::uint64_t FramesForBytes(Bytes bytes, Bytes frame_size) {
  return (bytes + frame_size - 1) / frame_size;
}

}  // namespace lmp::mem
