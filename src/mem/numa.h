// NUMA-style distance matrix between servers.
//
// §6 of the paper frames an LMP as a datacenter-scale NUMA system; placement
// and migration policies consult relative distances (e.g., same rack vs.
// cross-rack in a PBR-routed CXL 3 fabric) when several servers could host a
// segment.  Follows the Linux SLIT convention: self distance 10, default
// remote distance 20.
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace lmp::mem {

class NumaDistanceMatrix {
 public:
  explicit NumaDistanceMatrix(int num_nodes, int remote_distance = 20)
      : n_(num_nodes),
        dist_(static_cast<std::size_t>(num_nodes) * num_nodes,
              remote_distance) {
    LMP_CHECK(num_nodes > 0);
    for (int i = 0; i < n_; ++i) At(i, i) = kSelfDistance;
  }

  static constexpr int kSelfDistance = 10;

  int num_nodes() const { return n_; }

  int Distance(int from, int to) const {
    LMP_CHECK(from >= 0 && from < n_ && to >= 0 && to < n_);
    return dist_[static_cast<std::size_t>(from) * n_ + to];
  }

  void SetDistance(int from, int to, int d) {
    LMP_CHECK(from >= 0 && from < n_ && to >= 0 && to < n_);
    LMP_CHECK(d >= kSelfDistance);
    At(from, to) = d;
    At(to, from) = d;
  }

  // The candidate nearest to `from` (ties broken by lowest index).
  int Nearest(int from, const std::vector<int>& candidates) const {
    LMP_CHECK(!candidates.empty());
    int best = candidates.front();
    for (int c : candidates) {
      if (Distance(from, c) < Distance(from, best)) best = c;
    }
    return best;
  }

 private:
  int& At(int from, int to) {
    return dist_[static_cast<std::size_t>(from) * n_ + to];
  }

  int n_;
  std::vector<int> dist_;
};

}  // namespace lmp::mem
