#include "mem/lru_cache.h"

namespace lmp::mem {

LruCache::LruCache(std::uint64_t capacity_pages) : capacity_(capacity_pages) {
  LMP_CHECK(capacity_pages > 0);
}

bool LruCache::Access(PageId page, bool write) {
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++stats_.hits;
    it->second->dirty = it->second->dirty || write;
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++stats_.misses;
  if (map_.size() >= capacity_) EvictOne();
  lru_.push_front(Entry{page, write});
  map_[page] = lru_.begin();
  return false;
}

bool LruCache::Contains(PageId page) const { return map_.contains(page); }

void LruCache::Invalidate(PageId page) {
  auto it = map_.find(page);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void LruCache::Clear() {
  lru_.clear();
  map_.clear();
  evicted_.clear();
}

std::vector<LruCache::Evicted> LruCache::TakeEvicted() {
  std::vector<Evicted> out;
  out.swap(evicted_);
  return out;
}

void LruCache::EvictOne() {
  LMP_CHECK(!lru_.empty());
  const Entry& victim = lru_.back();
  ++stats_.evictions;
  if (victim.dirty) ++stats_.dirty_evictions;
  evicted_.push_back(Evicted{victim.page, victim.dirty});
  map_.erase(victim.page);
  lru_.pop_back();
}

void LruCache::SetCapacity(std::uint64_t capacity_pages) {
  LMP_CHECK(capacity_pages > 0);
  capacity_ = capacity_pages;
  while (map_.size() > capacity_) EvictOne();
}

}  // namespace lmp::mem
