// PoolManager: the LMP runtime's allocation and data plane.
//
// Owns the global SegmentMap, the per-location fine-grained frame maps, and
// the hotness profile.  Allocations are split into segments by a placement
// policy; reads and writes resolve through the two-step translation path
// and (when the cluster has backing stores) move real bytes.  Migration
// re-homes a segment without changing its logical address — the property
// §5 calls out as the point of the addressing scheme.
//
// Buffers: an application allocation may span several segments (one per
// placement chunk).  A Buffer is an ordered list of segments; buffer
// offsets resolve to (segment, offset) pairs by prefix sums.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "core/hotness.h"
#include "core/local_map.h"
#include "core/logical_address.h"
#include "core/placement.h"
#include "core/segment.h"
#include "core/segment_map.h"
#include "core/translation.h"

namespace lmp::trace {
class TraceCollector;
}

namespace lmp::core {

using BufferId = std::uint64_t;
inline constexpr BufferId kInvalidBuffer = 0;

struct BufferInfo {
  BufferId id = kInvalidBuffer;
  Bytes size = 0;
  std::vector<SegmentId> segments;  // in logical order
};

// A contiguous piece of a buffer homed at one location; what the timing
// layer consumes to build simulator flows.
struct LocatedSpan {
  Location location;
  Bytes bytes = 0;
  SegmentId segment = kInvalidSegment;
};

struct MigrationRecord {
  SegmentId segment = kInvalidSegment;
  Location from;
  Location to;
  Bytes bytes = 0;
};

// Options for PoolManager::Allocate/Grow — a request struct instead of a
// growing positional-parameter tail (see DESIGN.md, "request structs").
// The implicit ServerId constructors keep the historical call shape
// `Allocate(bytes, server)` working while letting tenant-aware callers
// (ctrl::AdmissionController) attach cohort identity.
struct AllocOptions {
  // Server whose shared region placement should prefer.
  std::optional<cluster::ServerId> preferred;
  // Allocation cohort name threaded down to mem::FrameAllocator loci;
  // empty uses the default cohort (legacy next-fit placement).
  std::string locus;
  mem::Mobility mobility = mem::Mobility::kMobile;
  // Tenant priority recorded on the segments; drains evict low first.
  double priority = 1.0;

  AllocOptions() = default;
  AllocOptions(cluster::ServerId preferred_server)  // NOLINT(runtime/explicit)
      : preferred(preferred_server) {}
  AllocOptions(  // NOLINT(runtime/explicit)
      std::optional<cluster::ServerId> preferred_server)
      : preferred(preferred_server) {}
  AllocOptions(std::nullopt_t) {}  // NOLINT(runtime/explicit)
};

class PoolManager {
 public:
  // The cluster must outlive the manager.  The default policy is the
  // paper's local-first placement.
  explicit PoolManager(cluster::Cluster* cluster,
                       std::unique_ptr<PlacementPolicy> policy = nullptr);

  cluster::Cluster& cluster() { return *cluster_; }
  const SegmentMap& segment_map() const { return segments_; }
  AccessTracker& access_tracker() { return tracker_; }
  PlacementPolicy& placement() { return *policy_; }
  void set_placement(std::unique_ptr<PlacementPolicy> policy);

  // Allocation --------------------------------------------------------------

  // Allocates `bytes` from the pool, preferring `options.preferred`'s
  // shared region; cohort fields steer frame placement inside each chosen
  // allocator.  Fails with kOutOfMemory when the pool cannot hold it
  // (Figure 5).
  StatusOr<BufferId> Allocate(Bytes bytes, const AllocOptions& options = {});

  Status Free(BufferId buffer);

  // Grows `buffer` by `delta` bytes: new segments are placed by the
  // current policy (honouring `options`) and appended, so existing
  // offsets — and RemoteRefs — stay valid.
  Status Grow(BufferId buffer, Bytes delta, const AllocOptions& options = {});

  // Shrinks `buffer` to `new_size`, releasing whole tail segments (use
  // SplitSegmentAt first for byte-precise trims).  Fails with
  // kFailedPrecondition if the cut lands inside a segment.
  Status Shrink(BufferId buffer, Bytes new_size);

  StatusOr<BufferInfo> Describe(BufferId buffer) const;

  // Point-in-time view of pool health: per-server capacity and how many
  // bytes of each server's shared region hold segments whose dominant
  // accessor is remote (the balancer's backlog).
  struct PoolSnapshot {
    struct ServerEntry {
      cluster::ServerId server = 0;
      Bytes shared = 0;
      Bytes used = 0;
      Bytes remote_hot = 0;  // resident bytes another server wants more
      bool crashed = false;
    };
    std::vector<ServerEntry> servers;
    std::size_t buffers = 0;
    std::size_t segments = 0;
  };
  PoolSnapshot Snapshot(SimTime now) const;

  // The located spans covering [offset, offset+len) of a buffer, merged
  // per contiguous location.  This is the locality picture Figures 2–5 are
  // built from.
  StatusOr<std::vector<LocatedSpan>> Spans(BufferId buffer, Bytes offset,
                                           Bytes len) const;

  // Fraction of the buffer homed at `server` (0 when absent).
  StatusOr<double> LocalFraction(BufferId buffer,
                                 cluster::ServerId server) const;

  // Data plane ----------------------------------------------------------------

  // Real-data read/write (requires cluster backing stores).  Accesses are
  // recorded against `from` in the hotness profile at simulated time `now`.
  Status Read(cluster::ServerId from, BufferId buffer, Bytes offset,
              std::span<std::byte> out, SimTime now = 0);
  Status Write(cluster::ServerId from, BufferId buffer, Bytes offset,
               std::span<const std::byte> in, SimTime now = 0);

  // Accounting-only access (timing experiments without backing): records
  // hotness exactly like Read/Write.
  Status Touch(cluster::ServerId from, BufferId buffer, Bytes offset,
               Bytes len, SimTime now);

  // Migration ------------------------------------------------------------------

  // Re-homes one segment.  Copies real bytes when backing exists.  The
  // segment's logical address is unchanged; its generation is bumped.
  StatusOr<MigrationRecord> MigrateSegment(SegmentId seg,
                                           cluster::ServerId dst);

  // Moves `seg`'s frames below the `bound_bytes` cut on its CURRENT home
  // server — the intra-server half of a drain.  A shrink can be blocked by
  // pure fragmentation (live frames past the cut while the region below it
  // has room); compaction unblocks it without exiling the segment to a
  // peer, which matters when the draining server is also the segment's
  // dominant accessor.  Returns a record with from == to; bytes == 0 when
  // the segment already sat below the cut.  kOutOfMemory when the region
  // below the cut cannot hold it; kFailedPrecondition for pool-homed or
  // busy segments.
  StatusOr<MigrationRecord> CompactSegment(SegmentId seg, Bytes bound_bytes);

  // Splits one segment of `buffer` at `offset` bytes into its owning
  // segment, producing two adjacent segments with the same combined
  // contents and locations.  Buffer addresses, spans, and data are
  // unchanged — only the migration/replication granularity becomes finer,
  // so a balancer can move the hot half of a huge allocation without
  // paying to copy the cold half.  The segment must be unreplicated (split
  // replicas would need a parallel split on every copy).
  Status SplitSegmentAt(BufferId buffer, Bytes offset);

  // Failure handling ------------------------------------------------------------

  // Marks the server crashed.  Segments homed there fail over to a replica
  // when one exists (see ReplicationManager) or transition to kLost.
  // Returns the segments that were lost; fails with kNotFound for an
  // unknown server and kFailedPrecondition for a double crash.
  StatusOr<std::vector<SegmentId>> OnServerCrash(cluster::ServerId server);

  // Brings a crashed server back.  Its shared region rejoins the pool
  // empty: prior contents are gone, and segments lost in the crash stay
  // kLost until a recovery layer (erasure) rebuilds them.  Fails with
  // kNotFound / kFailedPrecondition like OnServerCrash.
  Status OnServerRecover(cluster::ServerId server);

  // Translation -------------------------------------------------------------------

  // Per-server translator (lazily created); exposes TLB-style stats.
  AddressTranslator& translator(cluster::ServerId server);

  // Operational counters (lmp.alloc.*, lmp.migrate.*, ...); defaults to
  // the process-global registry.
  MetricsRegistry& metrics() { return *metrics_; }
  void set_metrics(MetricsRegistry* registry) {
    LMP_CHECK(registry != nullptr);
    metrics_ = registry;
  }

  // Optional trace sink for migration / crash / replication events; null
  // (the default) disables emission.  Timestamps come from the collector's
  // clock (set_clock), since the functional layer carries no sim time.
  void set_trace(trace::TraceCollector* collector) { trace_ = collector; }
  trace::TraceCollector* trace() const { return trace_; }

  // Internals used by the replication/erasure layer ---------------------------

  StatusOr<std::vector<mem::FrameRun>> AllocateFramesAt(
      const Location& loc, Bytes bytes, const AllocOptions& options = {});

  // The cohort a segment was allocated under, for re-homing paths that
  // must keep it in the same locus at the destination.
  static AllocOptions CohortOf(const SegmentInfo& info) {
    AllocOptions options;
    options.locus = info.locus;
    options.mobility = info.mobility;
    options.priority = info.priority;
    return options;
  }
  Status FreeFramesAt(const Location& loc,
                      const std::vector<mem::FrameRun>& runs);
  LocalFrameMap& local_map(const Location& loc);
  Status CopySegmentData(SegmentId seg, const Location& from,
                         const std::vector<mem::FrameRun>& from_runs,
                         const Location& to,
                         const std::vector<mem::FrameRun>& to_runs,
                         Bytes size);
  mem::BackingStore* BackingAt(const Location& loc);
  SegmentMap& mutable_segment_map() { return segments_; }

 private:
  struct ResolvedPiece {
    SegmentId segment;
    Bytes seg_offset;
    Bytes len;
  };

  StatusOr<std::vector<ResolvedPiece>> ResolveRange(BufferId buffer,
                                                    Bytes offset,
                                                    Bytes len) const;

  Status AccessImpl(cluster::ServerId from, BufferId buffer, Bytes offset,
                    Bytes len, std::span<std::byte> read_out,
                    std::span<const std::byte> write_in, SimTime now);

  cluster::Cluster* cluster_;
  std::unique_ptr<PlacementPolicy> policy_;
  SegmentMap segments_;
  AccessTracker tracker_;
  std::unordered_map<Location, LocalFrameMap> local_maps_;
  std::unordered_map<BufferId, BufferInfo> buffers_;
  std::unordered_map<cluster::ServerId, std::unique_ptr<AddressTranslator>>
      translators_;
  SegmentId next_segment_ = 0;
  BufferId next_buffer_ = 1;
  MetricsRegistry* metrics_ = &MetricsRegistry::Global();
  trace::TraceCollector* trace_ = nullptr;
};

}  // namespace lmp::core
