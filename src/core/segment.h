// Segment metadata shared by the maps, placement, migration, and recovery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/server.h"
#include "common/units.h"
#include "core/logical_address.h"
#include "mem/frame_allocator.h"

namespace lmp::core {

// Where a segment (or replica) physically lives.
struct Location {
  enum class Kind : std::uint8_t { kServer, kPool };
  Kind kind = Kind::kServer;
  cluster::ServerId server = 0;  // meaningful for kServer

  static Location OnServer(cluster::ServerId s) {
    return Location{Kind::kServer, s};
  }
  static Location OnPool() { return Location{Kind::kPool, 0}; }

  bool is_pool() const { return kind == Kind::kPool; }

  friend bool operator==(const Location&, const Location&) = default;

  std::string ToString() const {
    return is_pool() ? "pool" : "server" + std::to_string(server);
  }
};

enum class SegmentState : std::uint8_t {
  kActive,
  kMigrating,  // data in flight; reads still served from the old home
  kLost,       // home crashed and no replica available
};

struct SegmentInfo {
  SegmentId id = kInvalidSegment;
  Bytes size = 0;
  Location home;
  SegmentState state = SegmentState::kActive;
  // Bumped on every migration; stale cached translations are detected by
  // comparing generations.
  std::uint64_t generation = 0;
  // Replica homes (excluding the primary).  Maintained by ReplicationManager.
  std::vector<Location> replicas;
  // Allocation cohort (mem::LocusSpec name; empty = the default cohort).
  // Carried so re-homing keeps the segment in the same cohort on the
  // destination allocator.
  std::string locus;
  // Pinned segments pack high in their home allocator and are never chosen
  // as drain/compaction victims.
  mem::Mobility mobility = mem::Mobility::kMobile;
  // Tenant priority from admission; drains prefer low-priority victims.
  double priority = 1.0;
};

}  // namespace lmp::core

template <>
struct std::hash<lmp::core::Location> {
  std::size_t operator()(const lmp::core::Location& l) const noexcept {
    return (l.is_pool() ? 1ull << 32 : 0ull) ^ l.server;
  }
};
