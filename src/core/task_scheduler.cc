#include "core/task_scheduler.h"

#include "common/logging.h"
#include "common/trace.h"

namespace lmp::core {

TaskScheduler::TaskScheduler(sim::FluidSimulator* sim,
                             fabric::Topology* topology,
                             int slots_per_server)
    : sim_(sim), topology_(topology) {
  LMP_CHECK(sim != nullptr && topology != nullptr);
  const int slots = slots_per_server > 0
                        ? slots_per_server
                        : topology->machine().cores_per_server;
  servers_.resize(topology->num_servers());
  for (auto& s : servers_) s.slot_busy.assign(slots, false);
}

Status TaskScheduler::Submit(ComputeTask task, DoneCallback on_done) {
  if (task.target >= servers_.size()) {
    return InvalidArgumentError("no such server");
  }
  if (task.input_bytes < 0 || task.compute_ns < 0) {
    return InvalidArgumentError("negative task cost");
  }
  ++stats_.submitted;
  if (first_submit_ < 0) first_submit_ = sim_->now();
  servers_[task.target].queue.push_back(
      Pending{std::move(task), std::move(on_done)});
  TryDispatch(task.target);
  return Status::Ok();
}

Status TaskScheduler::SubmitPlan(const ShipPlan& plan,
                                 double compute_ns_per_byte,
                                 DoneCallback on_done) {
  for (const ShipPlan::SubTask& sub : plan.subtasks) {
    ComputeTask task;
    task.target = sub.server;
    task.input_bytes = static_cast<double>(sub.bytes);
    task.compute_ns =
        compute_ns_per_byte * static_cast<double>(sub.bytes);
    LMP_RETURN_IF_ERROR(Submit(std::move(task), on_done));
  }
  return Status::Ok();
}

void TaskScheduler::TryDispatch(cluster::ServerId server) {
  ServerState& state = servers_[server];
  while (!state.queue.empty()) {
    int slot = -1;
    for (std::size_t i = 0; i < state.slot_busy.size(); ++i) {
      if (!state.slot_busy[i]) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) return;  // all slots busy; a Finish will re-dispatch
    Pending pending = std::move(state.queue.front());
    state.queue.pop_front();
    state.slot_busy[slot] = true;
    RunOn(server, slot, std::move(pending));
  }
}

std::uint64_t TaskScheduler::TaskTrack(cluster::ServerId server,
                                       int slot) const {
  const auto slots = static_cast<std::uint64_t>(
      servers_.empty() ? 0 : servers_[0].slot_busy.size());
  return (std::uint64_t{1} << 40) +
         static_cast<std::uint64_t>(server) * slots +
         static_cast<std::uint64_t>(slot);
}

void TaskScheduler::RunOn(cluster::ServerId server, int slot,
                          Pending pending) {
  const auto target = static_cast<fabric::ServerIndex>(server);
  const double input_bytes = pending.task.input_bytes;
  if (trace_ != nullptr) {
    trace_->Begin(trace::Category::kTask, "task", TaskTrack(server, slot),
                  sim_->now(),
                  {trace::Arg("server", static_cast<std::uint64_t>(server)),
                   trace::Arg("slot", slot),
                   trace::Arg("input_bytes", input_bytes),
                   trace::Arg("compute_ns", pending.task.compute_ns)});
  }
  auto p = std::make_shared<Pending>(std::move(pending));
  // Phase 2 (after input arrives): occupy the slot for the compute time.
  auto continue_to_compute = [this, server, slot, p](SimTime) {
    sim_->ScheduleAfter(p->task.compute_ns,
                        [this, server, slot, p](SimTime) {
                          Finish(server, slot, *p);
                        });
  };
  if (input_bytes <= 0) {
    continue_to_compute(sim_->now());
    return;
  }
  // Phase 1: stream the input from local DRAM on this slot's core.
  sim_->StartFlow(input_bytes, topology_->LocalPath(target, slot),
                  [this, cont = std::move(continue_to_compute)](sim::FlowId f,
                                                                SimTime t) {
                    // Nothing reads these records; retire them so long
                    // schedules run in bounded memory.
                    (void)sim_->ReleaseRecord(f);
                    cont(t);
                  });
}

void TaskScheduler::Drain() {
  while (stats_.completed < stats_.submitted) {
    LMP_CHECK(sim_->Step()) << "simulator idle with tasks outstanding";
  }
}

void TaskScheduler::Finish(cluster::ServerId server, int slot,
                           Pending& pending) {
  if (trace_ != nullptr) {
    trace_->End(trace::Category::kTask, "task", TaskTrack(server, slot),
                sim_->now());
  }
  servers_[server].slot_busy[slot] = false;
  ++stats_.completed;
  stats_.makespan = sim_->now() - first_submit_;
  if (pending.on_done) pending.on_done(pending.task, sim_->now());
  TryDispatch(server);
}

int TaskScheduler::BusySlots(cluster::ServerId server) const {
  LMP_CHECK(server < servers_.size());
  int busy = 0;
  for (bool b : servers_[server].slot_busy) busy += b ? 1 : 0;
  return busy;
}

std::size_t TaskScheduler::QueuedTasks(cluster::ServerId server) const {
  LMP_CHECK(server < servers_.size());
  return servers_[server].queue.size();
}

}  // namespace lmp::core
