// Access-bit sampling (§5 "Locality balancing").
//
// The paper proposes two profiling mechanisms: performance counters (our
// AccessTracker models their exact byte counts) and page-table ACCESS BITS
// — one sticky bit per page per observer, set by hardware on touch and
// cleared by a periodic scan.  Access bits are cheap but lossy: a scan
// reveals only WHETHER a page was touched since the last scan, not how
// often or how much.  AccessBitSampler implements the scan-and-clear
// protocol and produces per-segment hotness estimates; the migration
// ablation can compare policies fed by exact counters vs sampled bits.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/server.h"
#include "common/units.h"
#include "core/logical_address.h"

namespace lmp::core {

class AccessBitSampler {
 public:
  // `page_size` is the tracking granularity (typically the frame size).
  explicit AccessBitSampler(Bytes page_size);

  // Hardware path: mark pages of [offset, offset+len) in `seg` touched by
  // `server`.  Cheap: sets bits only.
  void OnAccess(SegmentId seg, cluster::ServerId server, Bytes offset,
                Bytes len);

  // Scan-and-clear: returns, per (segment, server), the number of pages
  // whose bit was set since the previous scan, then clears all bits.
  struct ScanEntry {
    SegmentId segment = kInvalidSegment;
    cluster::ServerId server = 0;
    std::uint64_t touched_pages = 0;
  };
  std::vector<ScanEntry> ScanAndClear();

  // Estimated bytes touched by `server` on `seg` in the LAST completed
  // scan interval (touched pages x page size) — the lossy analogue of
  // AccessTracker::AccessedBytes.
  double EstimatedBytes(SegmentId seg, cluster::ServerId server) const;

  // The server with the most touched pages on `seg` in the last interval.
  struct Dominant {
    cluster::ServerId server = 0;
    double share = 0;
    double bytes = 0;
  };
  bool DominantAccessor(SegmentId seg, Dominant* out) const;

  Bytes page_size() const { return page_size_; }
  std::uint64_t scans() const { return scans_; }

 private:
  struct Key {
    SegmentId segment;
    cluster::ServerId server;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.segment) << 32) | k.server);
    }
  };

  Bytes page_size_;
  std::uint64_t scans_ = 0;
  // Current interval: per (seg, server), the set of touched page indexes.
  std::unordered_map<Key, std::vector<bool>, KeyHash> bits_;
  // Last completed interval: per (seg, server), touched page count.
  std::unordered_map<Key, std::uint64_t, KeyHash> last_scan_;
};

}  // namespace lmp::core
