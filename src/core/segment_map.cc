#include "core/segment_map.h"

namespace lmp::core {

Status SegmentMap::Insert(const SegmentInfo& info) {
  if (info.id == kInvalidSegment) {
    return InvalidArgumentError("invalid segment id");
  }
  if (info.size == 0 || info.size > kMaxSegmentSize) {
    return InvalidArgumentError("segment size out of range");
  }
  auto [it, inserted] = map_.emplace(info.id, info);
  if (!inserted) {
    return AlreadyExistsError("segment " + std::to_string(info.id));
  }
  return Status::Ok();
}

Status SegmentMap::Remove(SegmentId id) {
  if (map_.erase(id) == 0) {
    return NotFoundError("segment " + std::to_string(id));
  }
  return Status::Ok();
}

StatusOr<Location> SegmentMap::Lookup(SegmentId id) const {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return NotFoundError("segment " + std::to_string(id));
  }
  return it->second.home;
}

const SegmentInfo* SegmentMap::Find(SegmentId id) const {
  auto it = map_.find(id);
  return it == map_.end() ? nullptr : &it->second;
}

SegmentInfo* SegmentMap::FindMutable(SegmentId id) {
  auto it = map_.find(id);
  return it == map_.end() ? nullptr : &it->second;
}

Status SegmentMap::UpdateHome(SegmentId id, Location new_home) {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return NotFoundError("segment " + std::to_string(id));
  }
  it->second.home = new_home;
  ++it->second.generation;
  return Status::Ok();
}

Status SegmentMap::SetState(SegmentId id, SegmentState state) {
  auto it = map_.find(id);
  if (it == map_.end()) {
    return NotFoundError("segment " + std::to_string(id));
  }
  it->second.state = state;
  return Status::Ok();
}

std::vector<SegmentId> SegmentMap::SegmentsAt(const Location& loc) const {
  std::vector<SegmentId> out;
  for (const auto& [id, info] : map_) {
    if (info.home == loc) out.push_back(id);
  }
  return out;
}

}  // namespace lmp::core
