#include "core/replication.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"

namespace lmp::core {

ReplicationManager::ReplicationManager(PoolManager* manager,
                                       int replication_factor)
    : manager_(manager), replication_factor_(replication_factor) {
  LMP_CHECK(manager != nullptr);
  LMP_CHECK(replication_factor >= 1);
}

StatusOr<cluster::ServerId> ReplicationManager::PickReplicaHost(
    const SegmentInfo& info) const {
  auto& cluster = manager_->cluster();
  cluster::ServerId best = 0;
  Bytes best_free = 0;
  bool found = false;
  for (int s = 0; s < cluster.num_servers(); ++s) {
    const auto id = static_cast<cluster::ServerId>(s);
    const auto& srv = cluster.server(id);
    if (srv.crashed()) continue;
    if (!info.home.is_pool() && info.home.server == id) continue;
    bool is_replica = false;
    for (const Location& rep : info.replicas) {
      if (!rep.is_pool() && rep.server == id) {
        is_replica = true;
        break;
      }
    }
    if (is_replica) continue;
    const Bytes free = srv.shared_allocator().free_bytes();
    if (free < info.size) continue;
    if (!found || free > best_free) {
      best = id;
      best_free = free;
      found = true;
    }
  }
  if (!found) {
    return OutOfMemoryError("no eligible replica host for segment " +
                            std::to_string(info.id));
  }
  return best;
}

Status ReplicationManager::CreateReplica(SegmentInfo* info,
                                         cluster::ServerId host) {
  const Location loc = Location::OnServer(host);
  LMP_ASSIGN_OR_RETURN(auto runs,
                       manager_->AllocateFramesAt(loc, info->size));
  // Copy primary bytes into the replica.
  auto src_runs_or = manager_->local_map(info->home).RunsOf(info->id);
  if (src_runs_or.ok()) {
    const Status st = manager_->CopySegmentData(
        info->id, info->home, src_runs_or.value(), loc, runs, info->size);
    if (!st.ok()) {
      LMP_CHECK_OK(manager_->FreeFramesAt(loc, runs));
      return st;
    }
  }
  LMP_RETURN_IF_ERROR(
      manager_->local_map(loc).Bind(info->id, info->size, runs));
  info->replicas.push_back(loc);
  if (trace::TraceCollector* t = manager_->trace(); t != nullptr) {
    t->Instant(trace::Category::kReplication, "replica_create", t->now(),
               {trace::Arg("segment", info->id),
                trace::Arg("host", static_cast<std::uint64_t>(host)),
                trace::Arg("bytes", info->size)});
  }
  return Status::Ok();
}

Status ReplicationManager::ProtectSegment(SegmentId seg) {
  SegmentInfo* info = manager_->mutable_segment_map().FindMutable(seg);
  if (info == nullptr) return NotFoundError("unknown segment");
  if (info->state != SegmentState::kActive) {
    return FailedPreconditionError("segment not active");
  }
  while (static_cast<int>(info->replicas.size()) < replication_factor_) {
    LMP_ASSIGN_OR_RETURN(cluster::ServerId host, PickReplicaHost(*info));
    LMP_RETURN_IF_ERROR(CreateReplica(info, host));
  }
  if (std::find(protected_.begin(), protected_.end(), seg) ==
      protected_.end()) {
    protected_.push_back(seg);
  }
  return Status::Ok();
}

Status ReplicationManager::ProtectBuffer(BufferId buffer) {
  LMP_ASSIGN_OR_RETURN(BufferInfo info, manager_->Describe(buffer));
  for (SegmentId seg : info.segments) {
    LMP_RETURN_IF_ERROR(ProtectSegment(seg));
  }
  return Status::Ok();
}

StatusOr<int> ReplicationManager::RestoreRedundancy(
    std::vector<ReplicaRecord>* records) {
  int created = 0;
  // Compact into `alive` as we scan: freed segments (no longer in the map)
  // and crash-lost ones can never regain redundancy, so carrying them
  // forward would make every future restoration rescan dead ids.  On an
  // error return protected_ is left untouched; the next successful pass
  // prunes.
  std::vector<SegmentId> alive;
  alive.reserve(protected_.size());
  for (SegmentId seg : protected_) {
    SegmentInfo* info = manager_->mutable_segment_map().FindMutable(seg);
    if (info == nullptr || info->state == SegmentState::kLost) continue;
    alive.push_back(seg);
    if (info->state != SegmentState::kActive) continue;
    // Drop replica records that point at crashed hosts.
    std::erase_if(info->replicas, [&](const Location& rep) {
      return !rep.is_pool() &&
             manager_->cluster().server(rep.server).crashed();
    });
    while (static_cast<int>(info->replicas.size()) < replication_factor_) {
      auto host_or = PickReplicaHost(*info);
      if (!host_or.ok()) break;  // not enough live capacity right now
      LMP_RETURN_IF_ERROR(CreateReplica(info, host_or.value()));
      ++created;
      if (records != nullptr) {
        records->push_back(ReplicaRecord{seg, info->home,
                                         info->replicas.back(), info->size});
      }
    }
  }
  const std::size_t pruned = protected_.size() - alive.size();
  protected_ = std::move(alive);
  if (trace::TraceCollector* t = manager_->trace(); t != nullptr) {
    t->Instant(trace::Category::kReplication, "restore_redundancy",
               t->now(),
               {trace::Arg("created", created),
                trace::Arg("pruned", static_cast<std::uint64_t>(pruned))});
  }
  return created;
}

}  // namespace lmp::core
