// Software-managed directory coherence for the coherent region (§3.2, §5).
//
// LMPs deliberately do NOT make the whole pool cache-coherent — hardware
// multi-host coherence is the scalability trap prior DSM work fell into.
// Instead a few GBs of *coherent memory* exist for coordination, and the
// paper notes software-managed coherency may track state "at a granularity
// finer than a cache line to avoid false sharing".
//
// CoherenceDirectory implements MSI over fixed-size blocks.  The block
// granularity is a constructor parameter: the coherence bench compares a
// 64 B cache-line directory against 8/16 B sub-line tracking under a
// false-sharing workload (adjacent counters written by different servers).
// Every state transition counts the coherence messages it would generate,
// which is the currency the §5 discussion cares about.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace lmp::core {

enum class BlockState : std::uint8_t { kInvalid, kShared, kModified };

struct CoherenceStats {
  std::uint64_t shared_acquires = 0;
  std::uint64_t exclusive_acquires = 0;
  std::uint64_t invalidation_msgs = 0;  // M/S copies killed at other hosts
  std::uint64_t downgrade_msgs = 0;     // M -> S writebacks
  std::uint64_t fills = 0;              // data transfers to the requester
  std::uint64_t hits = 0;               // access already permitted locally

  std::uint64_t TotalMessages() const {
    return invalidation_msgs + downgrade_msgs + fills;
  }
};

class CoherenceDirectory {
 public:
  // Tracks [0, region_size) in blocks of `granularity` bytes for up to 64
  // hosts.  granularity must divide region_size.
  CoherenceDirectory(Bytes region_size, Bytes granularity, int num_hosts);

  // Ensures `host` may read [offset, offset+len).  Returns the number of
  // coherence messages generated (0 on a pure hit).
  StatusOr<int> AcquireShared(int host, Bytes offset, Bytes len);

  // Ensures `host` may write [offset, offset+len), invalidating all other
  // copies of the touched blocks.
  StatusOr<int> AcquireExclusive(int host, Bytes offset, Bytes len);

  // Drops every copy held by `host` (crash, eviction).  Modified blocks
  // writeback (counted as downgrades).
  void ReleaseHost(int host);

  BlockState StateOf(int host, Bytes offset) const;
  int SharerCount(Bytes offset) const;

  Bytes granularity() const { return granularity_; }
  std::uint64_t num_blocks() const { return blocks_.size(); }
  const CoherenceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CoherenceStats{}; }

 private:
  struct Block {
    std::uint64_t sharers = 0;  // bitmask
    int owner = -1;             // valid when state == kModified
    BlockState state = BlockState::kInvalid;
  };

  Status CheckRange(int host, Bytes offset, Bytes len) const;

  Bytes region_size_;
  Bytes granularity_;
  int num_hosts_;
  std::vector<Block> blocks_;
  CoherenceStats stats_;
};

}  // namespace lmp::core
