// ReplicationManager — failure masking by replication (§5 "Failure
// domains": "LMPs can take advantage of similar solutions proposed for
// physical pools, such as failure masking through replication or erasure
// coding").
//
// Each protected segment keeps `replication_factor` extra copies on
// distinct live servers.  PoolManager::OnServerCrash promotes a surviving
// replica to primary; RestoreRedundancy() then re-creates the missing
// copies so a second crash is survivable too.
//
// Replicas are write-through: PoolManager::Write mirrors the bytes into
// every replica's frames, so a promoted replica (crash failover or the
// migration fast path) is always byte-identical to the primary it
// replaces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/pool_manager.h"

namespace lmp::core {

// One replica copy made during redundancy restoration; what the timing
// layer (and the chaos injector) consumes to price the re-replication
// traffic as fabric flows.
struct ReplicaRecord {
  SegmentId segment = kInvalidSegment;
  Location from;  // source of the copy (the current primary)
  Location to;    // new replica host
  Bytes bytes = 0;
};

class ReplicationManager {
 public:
  // replication_factor = number of EXTRA copies (1 => tolerate one crash).
  ReplicationManager(PoolManager* manager, int replication_factor = 1);

  // Creates the missing replicas for one segment, on live servers that hold
  // neither the primary nor another replica.  Copies real bytes when
  // backing exists.
  Status ProtectSegment(SegmentId seg);

  // Protects every segment of a buffer.
  Status ProtectBuffer(BufferId buffer);

  // Re-establishes the configured redundancy for every protected segment
  // (after crashes/promotions).  Returns the number of replicas created.
  // Segments that were freed or lost since protection are pruned from the
  // protected list here, so repeated restoration never rescans dead ids.
  // The overload appends one ReplicaRecord per copy made to `records`.
  StatusOr<int> RestoreRedundancy() { return RestoreRedundancy(nullptr); }
  StatusOr<int> RestoreRedundancy(std::vector<ReplicaRecord>* records);

  // Storage overhead factor for this configuration (1 + factor).
  double CapacityOverhead() const { return 1.0 + replication_factor_; }

  int replication_factor() const { return replication_factor_; }

  // Number of segments currently tracked for redundancy restoration
  // (protected and not yet pruned as freed/lost).
  std::size_t protected_count() const { return protected_.size(); }

 private:
  StatusOr<cluster::ServerId> PickReplicaHost(const SegmentInfo& info) const;
  Status CreateReplica(SegmentInfo* info, cluster::ServerId host);

  PoolManager* manager_;
  int replication_factor_;
  std::vector<SegmentId> protected_;
};

}  // namespace lmp::core
