#include "core/lmp.h"

namespace lmp {

PoolOptions PoolOptions::Paper() {
  PoolOptions opts;
  opts.cluster = cluster::ClusterConfig::PaperLogical();
  return opts;
}

PoolOptions PoolOptions::Small() {
  PoolOptions opts;
  opts.cluster.num_servers = 4;
  opts.cluster.cores_per_server = 4;
  opts.cluster.server_total_memory = MiB(64);
  opts.cluster.server_shared_memory = MiB(64);
  opts.cluster.frame_size = KiB(4);
  opts.cluster.with_backing = true;
  opts.coherent_bytes = KiB(64);
  return opts;
}

Pool::Pool(const PoolOptions& options) {
  cluster_ = std::make_unique<cluster::Cluster>(options.cluster);
  manager_ = std::make_unique<core::PoolManager>(cluster_.get());
  runtime_ = std::make_unique<core::LmpRuntime>(manager_.get(),
                                                options.runtime);
  coherent_ = std::make_unique<core::CoherentRegion>(
      options.coherent_bytes, options.coherence_granularity,
      options.cluster.num_servers);
  shipper_ = std::make_unique<core::ComputeShipper>(manager_.get());
  replication_ = std::make_unique<core::ReplicationManager>(
      manager_.get(), options.replication_factor);
}

StatusOr<std::unique_ptr<Pool>> Pool::Create(const PoolOptions& options) {
  if (options.cluster.num_servers <= 0) {
    return InvalidArgumentError("need at least one server");
  }
  if (options.cluster.num_servers > 64) {
    return InvalidArgumentError(
        "coherence directory supports at most 64 hosts");
  }
  if (options.coherent_bytes == 0 ||
      options.coherent_bytes % options.coherence_granularity != 0) {
    return InvalidArgumentError(
        "coherent region must be a multiple of the tracking granularity");
  }
  return std::unique_ptr<Pool>(new Pool(options));
}

StatusOr<core::BufferId> Pool::Allocate(
    Bytes bytes, std::optional<cluster::ServerId> preferred) {
  return manager_->Allocate(bytes, preferred);
}

Status Pool::Free(core::BufferId buffer) { return manager_->Free(buffer); }

}  // namespace lmp
