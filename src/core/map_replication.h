// ReplicatedSegmentMap: the distributed realization of translation step 1.
//
// §5's two-step design assumes every server holds a copy of the coarse
// segment→server map, so step-1 lookups never cross the fabric.  That
// only works if the copies are cheap to keep in sync; this module makes
// the synchronization explicit: one authority publishes a DELTA LOG of
// map changes (insert / re-home / remove), and each server's replica
// applies deltas when it syncs.  Between syncs a replica may be stale —
// exactly the staleness the generation-validated translation cache
// already tolerates: a lookup that lands on the old home is detected by
// generation mismatch and retried after a sync.
//
// The delta log is the control-plane traffic an LMP would actually put on
// the wire: a handful of bytes per migration, instead of per-access
// directory lookups (the flat-directory design §5 rejects).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/segment_map.h"

namespace lmp::core {

struct MapDelta {
  enum class Kind : std::uint8_t { kInsert, kRehome, kRemove };
  Kind kind = Kind::kInsert;
  SegmentId segment = kInvalidSegment;
  Bytes size = 0;          // kInsert
  Location home;           // kInsert / kRehome
  std::uint64_t generation = 0;
  std::uint64_t sequence = 0;  // position in the authority's log

  // Wire size of one delta (fixed-width encoding).
  static constexpr Bytes kWireBytes = 24;
};

// The authoritative map plus its published delta log.
class MapAuthority {
 public:
  MapAuthority() = default;

  Status Insert(const SegmentInfo& info);
  Status Rehome(SegmentId segment, Location new_home);
  Status Remove(SegmentId segment);

  const SegmentMap& map() const { return map_; }
  std::uint64_t log_head() const { return next_sequence_; }

  // Deltas with sequence >= `from` (what a replica at `from` is missing).
  std::vector<MapDelta> DeltasSince(std::uint64_t from) const;

  // Control-plane bytes a replica at `from` must transfer to catch up.
  Bytes SyncCost(std::uint64_t from) const;

 private:
  SegmentMap map_;
  std::vector<MapDelta> log_;
  std::uint64_t next_sequence_ = 0;
};

// One server's replica: applies deltas in order; detects staleness.
class MapReplica {
 public:
  explicit MapReplica(const MapAuthority* authority);

  // Pulls and applies all outstanding deltas; returns how many applied.
  StatusOr<int> Sync();

  // Local step-1 lookup against the (possibly stale) replica.
  StatusOr<Location> Lookup(SegmentId segment) const;
  const SegmentInfo* Find(SegmentId segment) const;

  // True when the replica has seen every published delta.
  bool IsCurrent() const;
  std::uint64_t applied_sequence() const { return applied_; }
  std::uint64_t stale_lookups() const { return stale_lookups_; }

  // Validates a previous lookup: true iff the generation still matches
  // the authority (what a failed remote access would reveal).  A false
  // result counts a stale lookup; the caller should Sync() and retry.
  bool Validate(SegmentId segment, std::uint64_t generation);

 private:
  const MapAuthority* authority_;
  SegmentMap map_;
  std::uint64_t applied_ = 0;
  std::uint64_t stale_lookups_ = 0;
};

}  // namespace lmp::core
