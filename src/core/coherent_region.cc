#include "core/coherent_region.h"

#include "common/logging.h"

namespace lmp::core {

CoherentRegion::CoherentRegion(Bytes size, Bytes granularity, int num_hosts)
    : num_hosts_(num_hosts),
      directory_(size, granularity, num_hosts),
      data_(size / sizeof(std::uint64_t), 0) {
  LMP_CHECK(size % sizeof(std::uint64_t) == 0);
}

Status CoherentRegion::CheckCell(Bytes offset) const {
  if (offset % sizeof(std::uint64_t) != 0) {
    return InvalidArgumentError("cell offset must be 8-aligned");
  }
  if (offset + sizeof(std::uint64_t) > size()) {
    return InvalidArgumentError("cell beyond coherent region");
  }
  return Status::Ok();
}

StatusOr<std::uint64_t> CoherentRegion::Load(int host, Bytes offset) {
  LMP_RETURN_IF_ERROR(CheckCell(offset));
  LMP_ASSIGN_OR_RETURN(int msgs, directory_.AcquireShared(
                                     host, offset, sizeof(std::uint64_t)));
  (void)msgs;
  return data_[offset / sizeof(std::uint64_t)];
}

Status CoherentRegion::Store(int host, Bytes offset, std::uint64_t value) {
  LMP_RETURN_IF_ERROR(CheckCell(offset));
  LMP_ASSIGN_OR_RETURN(int msgs, directory_.AcquireExclusive(
                                     host, offset, sizeof(std::uint64_t)));
  (void)msgs;
  data_[offset / sizeof(std::uint64_t)] = value;
  return Status::Ok();
}

StatusOr<std::uint64_t> CoherentRegion::FetchAdd(int host, Bytes offset,
                                                 std::uint64_t delta) {
  LMP_RETURN_IF_ERROR(CheckCell(offset));
  LMP_ASSIGN_OR_RETURN(int msgs, directory_.AcquireExclusive(
                                     host, offset, sizeof(std::uint64_t)));
  (void)msgs;
  std::uint64_t& cell = data_[offset / sizeof(std::uint64_t)];
  const std::uint64_t prev = cell;
  cell += delta;
  return prev;
}

StatusOr<std::uint64_t> CoherentRegion::CompareExchange(
    int host, Bytes offset, std::uint64_t expected, std::uint64_t desired,
    bool* exchanged) {
  LMP_RETURN_IF_ERROR(CheckCell(offset));
  LMP_ASSIGN_OR_RETURN(int msgs, directory_.AcquireExclusive(
                                     host, offset, sizeof(std::uint64_t)));
  (void)msgs;
  std::uint64_t& cell = data_[offset / sizeof(std::uint64_t)];
  const std::uint64_t prev = cell;
  const bool ok = (prev == expected);
  if (ok) cell = desired;
  if (exchanged != nullptr) *exchanged = ok;
  return prev;
}

DistributedLock::DistributedLock(CoherentRegion* region, Bytes cell_offset)
    : region_(region), offset_(cell_offset) {
  LMP_CHECK(region != nullptr);
}

StatusOr<bool> DistributedLock::TryLock(int host) {
  // Test (shared read) ...
  LMP_ASSIGN_OR_RETURN(std::uint64_t cur, region_->Load(host, offset_));
  if (cur != 0) {
    ++failed_attempts_;
    return false;
  }
  // ... and test-and-set (exclusive CAS).  Encode holder as host+1.
  bool exchanged = false;
  LMP_ASSIGN_OR_RETURN(
      std::uint64_t prev,
      region_->CompareExchange(host, offset_, 0,
                               static_cast<std::uint64_t>(host) + 1,
                               &exchanged));
  (void)prev;
  if (!exchanged) {
    ++failed_attempts_;
    return false;
  }
  holder_ = host;
  ++acquisitions_;
  return true;
}

Status DistributedLock::Unlock(int host) {
  LMP_ASSIGN_OR_RETURN(std::uint64_t cur, region_->Load(host, offset_));
  if (cur != static_cast<std::uint64_t>(host) + 1) {
    return FailedPreconditionError("unlock by non-holder");
  }
  LMP_RETURN_IF_ERROR(region_->Store(host, offset_, 0));
  holder_ = -1;
  return Status::Ok();
}

CoherentBarrier::CoherentBarrier(CoherentRegion* region, Bytes cells_offset,
                                 int participants)
    : region_(region),
      count_offset_(cells_offset),
      gen_offset_(cells_offset + sizeof(std::uint64_t)),
      participants_(participants) {
  LMP_CHECK(region != nullptr);
  LMP_CHECK(participants > 0);
}

StatusOr<bool> CoherentBarrier::Arrive(int host) {
  LMP_ASSIGN_OR_RETURN(std::uint64_t prev,
                       region_->FetchAdd(host, count_offset_, 1));
  if (prev + 1 == static_cast<std::uint64_t>(participants_)) {
    // Last arrival: reset the count and bump the generation.
    LMP_RETURN_IF_ERROR(region_->Store(host, count_offset_, 0));
    LMP_ASSIGN_OR_RETURN(std::uint64_t gen,
                         region_->FetchAdd(host, gen_offset_, 1));
    (void)gen;
    return true;
  }
  return false;
}

StatusOr<std::uint64_t> CoherentBarrier::Generation(int host) {
  return region_->Load(host, gen_offset_);
}

}  // namespace lmp::core
