#include "core/hotness.h"

namespace lmp::core {

void AccessTracker::RecordAccess(SegmentId seg, cluster::ServerId from,
                                 double bytes, SimTime now) {
  Counter& c = table_[seg][from];
  c.bytes = Decayed(c, now) + bytes;
  c.updated = now;
}

double AccessTracker::AccessedBytes(SegmentId seg, cluster::ServerId from,
                                    SimTime now) const {
  auto seg_it = table_.find(seg);
  if (seg_it == table_.end()) return 0;
  auto it = seg_it->second.find(from);
  if (it == seg_it->second.end()) return 0;
  return Decayed(it->second, now);
}

double AccessTracker::TotalBytes(SegmentId seg, SimTime now) const {
  auto seg_it = table_.find(seg);
  if (seg_it == table_.end()) return 0;
  double total = 0;
  for (const auto& [server, counter] : seg_it->second) {
    total += Decayed(counter, now);
  }
  return total;
}

bool AccessTracker::Dominant(SegmentId seg, SimTime now,
                             DominantAccessor* out) const {
  auto seg_it = table_.find(seg);
  if (seg_it == table_.end()) return false;
  double total = 0;
  double best = 0;
  cluster::ServerId best_server = 0;
  for (const auto& [server, counter] : seg_it->second) {
    const double b = Decayed(counter, now);
    total += b;
    if (b > best) {
      best = b;
      best_server = server;
    }
  }
  if (total <= 0) return false;
  out->server = best_server;
  out->share = best / total;
  out->bytes = best;
  return true;
}

void AccessTracker::Forget(SegmentId seg) { table_.erase(seg); }

}  // namespace lmp::core
