#include "core/compute_ship.h"

#include <algorithm>

#include "common/logging.h"

namespace lmp::core {

ComputeShipper::ComputeShipper(PoolManager* manager) : manager_(manager) {
  LMP_CHECK(manager != nullptr);
}

StatusOr<ShipPlan> ComputeShipper::Plan(BufferId buffer, Bytes offset,
                                        Bytes len,
                                        cluster::ServerId requester) const {
  LMP_ASSIGN_OR_RETURN(auto spans, manager_->Spans(buffer, offset, len));
  ShipPlan plan;
  std::unordered_map<cluster::ServerId, std::size_t> index;
  Bytes pos = offset;
  for (const LocatedSpan& s : spans) {
    if (s.location.is_pool()) {
      return FailedPreconditionError(
          "compute shipping needs server-homed data (physical pools have no "
          "compute — the paper's point)");
    }
    const cluster::ServerId host = s.location.server;
    auto it = index.find(host);
    if (it == index.end()) {
      index[host] = plan.subtasks.size();
      plan.subtasks.push_back(ShipPlan::SubTask{host, 0, {}});
      it = index.find(host);
    }
    ShipPlan::SubTask& task = plan.subtasks[it->second];
    task.bytes += s.bytes;
    task.ranges.emplace_back(pos, s.bytes);
    if (host != requester) plan.remote_bytes_unshipped += s.bytes;
    pos += s.bytes;
  }
  plan.total_bytes = len;
  return plan;
}

StatusOr<double> ComputeShipper::ShipAndReduce(BufferId buffer, Bytes offset,
                                               Bytes len, const MapFn& map,
                                               SimTime now) const {
  // Plan from the perspective of each chunk's own host, so every read below
  // is local by construction.
  LMP_ASSIGN_OR_RETURN(ShipPlan plan, Plan(buffer, offset, len,
                                           /*requester=*/0));
  double acc = 0.0;
  std::vector<std::byte> scratch;
  for (const ShipPlan::SubTask& task : plan.subtasks) {
    for (const auto& [range_off, range_len] : task.ranges) {
      scratch.resize(range_len);
      LMP_RETURN_IF_ERROR(manager_->Read(task.server, buffer, range_off,
                                         std::span<std::byte>(scratch), now));
      acc += map(task.server, range_off,
                 std::span<const std::byte>(scratch));
    }
  }
  return acc;
}

}  // namespace lmp::core
