// Shared-region sizing (§5 "Sizing the shared regions").
//
// The paper frames the private/shared split as a periodically solved global
// optimization: maximize local accesses while prioritizing high-value
// applications, without letting remote servers monopolise anyone's local
// memory.  SizingOptimizer implements a greedy solver over per-server
// demand declarations:
//
//   1. Reserve each server's private floor (its own non-pool working set —
//      oversizing the shared region must not evict local workloads).
//   2. Satisfy each server's pool demand from its *own* shared region first:
//      those bytes become local accesses, the whole point of an LMP.
//   3. Place overflow demand on peers with slack, highest priority first,
//      most-slack peer first (overflow is remote wherever it lands, so the
//      tie-break only balances headroom).
//   4. If capacity is short, shed lowest-priority demand and report it.
//
// The resulting plan is applied through Server::ResizeShared; shrinks that
// would strand live data are deferred (kept at current size) rather than
// forced — migration drains frames first in a real deployment.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/units.h"

namespace lmp::core {

struct ServerDemand {
  cluster::ServerId server = 0;
  Bytes private_demand = 0;  // bytes the server's own processes need
  Bytes pool_demand = 0;     // bytes of pool memory its apps want
  double priority = 1.0;     // higher = served first under pressure
};

struct SizingPlan {
  struct Entry {
    cluster::ServerId server = 0;
    Bytes shared_bytes = 0;
    Bytes expected_local = 0;   // pool demand served from its own region
    Bytes expected_remote = 0;  // pool demand served by peers
  };
  std::vector<Entry> entries;
  Bytes unmet_demand = 0;  // shed because the deployment is too small

  // Aggregate expected local-access fraction across served demand.
  double LocalFraction() const;
};

// What SizingOptimizer::Apply actually did.  Deferred shrinks are reported
// structurally — which server, how far it is from the plan, and how many
// bytes of live frames stand in the way — so a control loop can schedule
// the drain that unblocks them instead of guessing from a bare count.
struct SizingApplyResult {
  struct DeferredShrink {
    cluster::ServerId server = 0;
    Bytes current_bytes = 0;   // size the server was left at
    Bytes target_bytes = 0;    // size the plan wanted
    Bytes stranded_bytes = 0;  // allocated bytes in the would-be-removed tail
    bool crashed = false;      // skipped because the server is down
  };
  int applied = 0;  // resizes that landed
  std::vector<DeferredShrink> deferred;

  int deferred_count() const { return static_cast<int>(deferred.size()); }
};

class SizingOptimizer {
 public:
  // `total_memory` per server comes from the cluster; demands from the
  // runtime's monitoring.  Every server must appear in `demands`.
  static SizingPlan Solve(const cluster::Cluster& cluster,
                          std::vector<ServerDemand> demands);

  // Applies a plan.  Per-server shrink failures (live frames in the way)
  // and crashed servers leave that server at its current size; each such
  // deferral is reported with the stranded byte count a drain must move.
  static SizingApplyResult Apply(cluster::Cluster& cluster,
                                 const SizingPlan& plan);
};

}  // namespace lmp::core
