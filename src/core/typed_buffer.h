// TypedBuffer<T> / RemoteRef<T>: the application-library view of pool
// memory (§3.2: "an application library for allocating, controlling, and
// setting up disaggregated memory access").
//
// A TypedBuffer is an array of T living in the pool; element accesses
// resolve through the pool manager, so they are recorded in the hotness
// profile and keep working across migrations.  A RemoteRef<T> is a
// pointer-like handle to one element — the §5 addressing property made
// concrete: holding a RemoteRef while the segment migrates is safe, the
// next Load simply resolves to the new home.
#pragma once

#include <span>

#include "core/lmp.h"

namespace lmp {

template <typename T>
class RemoteRef;

template <typename T>
class TypedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "pool elements must be trivially copyable");

 public:
  TypedBuffer() = default;

  static StatusOr<TypedBuffer<T>> Create(
      Pool* pool, std::uint64_t count,
      std::optional<cluster::ServerId> preferred = {}) {
    if (pool == nullptr) return InvalidArgumentError("null pool");
    if (count == 0) return InvalidArgumentError("empty buffer");
    LMP_ASSIGN_OR_RETURN(core::BufferId id,
                         pool->Allocate(count * sizeof(T), preferred));
    return TypedBuffer<T>(pool, id, count);
  }

  std::uint64_t size() const { return count_; }
  core::BufferId id() const { return buffer_; }
  bool valid() const { return pool_ != nullptr; }

  StatusOr<T> At(cluster::ServerId from, std::uint64_t index,
                 SimTime now = 0) const {
    LMP_RETURN_IF_ERROR(CheckIndex(index));
    T value{};
    LMP_RETURN_IF_ERROR(pool_->manager().Read(
        from, buffer_, index * sizeof(T),
        std::span<std::byte>(reinterpret_cast<std::byte*>(&value),
                             sizeof(T)),
        now));
    return value;
  }

  // Set/WriteRange are const: they mutate pool data, not this handle.
  Status Set(cluster::ServerId from, std::uint64_t index, const T& value,
             SimTime now = 0) const {
    LMP_RETURN_IF_ERROR(CheckIndex(index));
    return pool_->manager().Write(
        from, buffer_, index * sizeof(T),
        std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(&value), sizeof(T)),
        now);
  }

  Status ReadRange(cluster::ServerId from, std::uint64_t first,
                   std::span<T> out, SimTime now = 0) const {
    LMP_RETURN_IF_ERROR(CheckRange(first, out.size()));
    return pool_->manager().Read(from, buffer_, first * sizeof(T),
                                 std::as_writable_bytes(out), now);
  }

  Status WriteRange(cluster::ServerId from, std::uint64_t first,
                    std::span<const T> in, SimTime now = 0) const {
    LMP_RETURN_IF_ERROR(CheckRange(first, in.size()));
    return pool_->manager().Write(from, buffer_, first * sizeof(T),
                                  std::as_bytes(in), now);
  }

  // Pointer-like handle to element `index`; see RemoteRef below.
  RemoteRef<T> Ref(std::uint64_t index) const;

  // Fraction of the array homed at `server` right now.
  StatusOr<double> LocalFraction(cluster::ServerId server) const {
    return pool_->manager().LocalFraction(buffer_, server);
  }

  Status Release() {
    if (pool_ == nullptr) return FailedPreconditionError("not valid");
    const Status st = pool_->Free(buffer_);
    pool_ = nullptr;
    return st;
  }

 private:
  friend class RemoteRef<T>;

  TypedBuffer(Pool* pool, core::BufferId buffer, std::uint64_t count)
      : pool_(pool), buffer_(buffer), count_(count) {}

  Status CheckIndex(std::uint64_t index) const {
    if (pool_ == nullptr) return FailedPreconditionError("not valid");
    if (index >= count_) return InvalidArgumentError("index out of range");
    return Status::Ok();
  }
  Status CheckRange(std::uint64_t first, std::uint64_t n) const {
    if (pool_ == nullptr) return FailedPreconditionError("not valid");
    if (first + n > count_) return InvalidArgumentError("range too long");
    return Status::Ok();
  }

  Pool* pool_ = nullptr;
  core::BufferId buffer_ = core::kInvalidBuffer;
  std::uint64_t count_ = 0;
};

// A migration-stable element handle.  Copyable, cheap, and never
// invalidated by data movement: each Load/Store re-resolves through the
// two-step translation path.
template <typename T>
class RemoteRef {
 public:
  RemoteRef() = default;

  StatusOr<T> Load(cluster::ServerId from, SimTime now = 0) const {
    if (buffer_ == nullptr) return FailedPreconditionError("null ref");
    return buffer_->At(from, index_, now);
  }
  Status Store(cluster::ServerId from, const T& value, SimTime now = 0) {
    if (buffer_ == nullptr) return FailedPreconditionError("null ref");
    return buffer_->Set(from, index_, value, now);
  }

  std::uint64_t index() const { return index_; }

 private:
  friend class TypedBuffer<T>;
  RemoteRef(const TypedBuffer<T>* buffer, std::uint64_t index)
      : buffer_(buffer), index_(index) {}

  const TypedBuffer<T>* buffer_ = nullptr;
  std::uint64_t index_ = 0;
};

template <typename T>
RemoteRef<T> TypedBuffer<T>::Ref(std::uint64_t index) const {
  return RemoteRef<T>(this, index);
}

}  // namespace lmp
