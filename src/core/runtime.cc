#include "core/runtime.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"

namespace lmp::core {

LmpRuntime::LmpRuntime(PoolManager* manager, RuntimeConfig config)
    : manager_(manager), config_(config), migrator_(manager,
                                                    config.migration) {
  LMP_CHECK(manager != nullptr);
}

void LmpRuntime::SetDemand(const ServerDemand& demand) {
  demands_[demand.server] = demand;
}

void LmpRuntime::RunSizing() {
  if (demands_.empty()) return;
  std::vector<ServerDemand> demands;
  demands.reserve(demands_.size());
  for (const auto& [server, d] : demands_) demands.push_back(d);
  const SizingPlan plan =
      SizingOptimizer::Solve(manager_->cluster(), std::move(demands));
  stats_.sizing_deferred +=
      SizingOptimizer::Apply(manager_->cluster(), plan).deferred_count();
  ++stats_.sizing_rounds;
}

std::vector<MigrationRecord> LmpRuntime::Tick(SimTime now) {
  std::vector<MigrationRecord> records;
  if (config_.enable_migration &&
      (last_migration_ < 0 ||
       now - last_migration_ >= config_.migration_period)) {
    // A failed round leaves default (zero) stats; the error concerns the
    // segment it tripped on, and the next tick retries the rest.
    const MigrationRoundStats round =
        migrator_.RunOnce(now, &records).value_or(MigrationRoundStats{});
    ++stats_.migration_rounds;
    stats_.migrations += round.migrated;
    stats_.bytes_migrated += round.bytes_moved;
    last_migration_ = now;
  }
  if (config_.enable_sizing &&
      (last_sizing_ < 0 || now - last_sizing_ >= config_.sizing_period)) {
    RunSizing();
    last_sizing_ = now;
  }
  return records;
}

std::vector<DrainVictim> BlockedResidents(PoolManager& manager,
                                          cluster::ServerId server,
                                          Bytes target_bytes, SimTime now) {
  // The shrink is blocked by segments holding frames in the region being
  // removed (the allocator trims from the tail).  Those — and only those —
  // must leave; evict coldest first.
  const std::uint64_t target_frames = mem::FramesForBytes(
      target_bytes, manager.cluster().server(server).frame_size());
  std::vector<DrainVictim> residents;
  const Location here = Location::OnServer(server);
  manager.segment_map().ForEach([&](const SegmentInfo& info) {
    if (info.home != here || info.state != SegmentState::kActive) return;
    auto runs_or = manager.local_map(here).RunsOf(info.id);
    if (!runs_or.ok()) return;
    for (const mem::FrameRun& run : runs_or.value()) {
      if (run.end() > target_frames) {
        residents.push_back(DrainVictim{
            info.id, info.size,
            manager.access_tracker().TotalBytes(info.id, now),
            info.mobility == mem::Mobility::kPinned, info.priority});
        return;
      }
    }
  });
  // Mobile cohorts first, then cheapest tenants, then coldest.  Tie-break
  // on segment id: ForEach order is hash-map order, and the drain sequence
  // feeds deterministic traces.
  std::sort(residents.begin(), residents.end(),
            [](const DrainVictim& a, const DrainVictim& b) {
              return std::tie(a.pinned, a.priority, a.heat, a.seg) <
                     std::tie(b.pinned, b.priority, b.heat, b.seg);
            });
  return residents;
}

StatusOr<std::vector<MigrationRecord>> LmpRuntime::DrainServer(
    cluster::ServerId server, Bytes target_bytes, SimTime now) {
  auto& cluster = manager_->cluster();
  auto& srv = cluster.server(server);
  std::vector<MigrationRecord> records;

  // Shrink may already be possible.
  if (srv.ResizeShared(target_bytes).ok()) return records;

  const std::vector<DrainVictim> residents =
      BlockedResidents(*manager_, server, target_bytes, now);
  for (const DrainVictim& r : residents) {
    if (r.pinned) {
      // Pinned cohorts are never exiled; with victims sorted mobile-first
      // the remaining ones are all pinned and the drain cannot complete.
      return FailedPreconditionError("pinned segments block the drain");
    }
    // Move to the live peer with the most free shared capacity.
    cluster::ServerId best = server;
    Bytes best_free = 0;
    for (int s = 0; s < cluster.num_servers(); ++s) {
      const auto id = static_cast<cluster::ServerId>(s);
      if (id == server || cluster.server(id).crashed()) continue;
      const Bytes free = cluster.server(id).shared_allocator().free_bytes();
      if (free >= r.size && free > best_free) {
        best = id;
        best_free = free;
      }
    }
    if (best == server) {
      return OutOfMemoryError("peers cannot absorb drained segments");
    }
    LMP_ASSIGN_OR_RETURN(MigrationRecord rec,
                         manager_->MigrateSegment(r.seg, best));
    stats_.bytes_migrated += rec.bytes;
    ++stats_.migrations;
    records.push_back(rec);
  }

  LMP_RETURN_IF_ERROR(srv.ResizeShared(target_bytes));
  return records;
}

std::vector<MigrationRecord> LmpRuntime::RunAllNow(SimTime now) {
  std::vector<MigrationRecord> records;
  const MigrationRoundStats round =
      migrator_.RunOnce(now, &records).value_or(MigrationRoundStats{});
  ++stats_.migration_rounds;
  stats_.migrations += round.migrated;
  stats_.bytes_migrated += round.bytes_moved;
  last_migration_ = now;
  RunSizing();
  last_sizing_ = now;
  return records;
}

}  // namespace lmp::core
