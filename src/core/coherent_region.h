// CoherentRegion: the small coherent slice of the pool plus the
// coordination primitives the paper says it exists for (§3.2: "a few GBs of
// coherent memory that can be used for coordination and synchronization").
//
// The region holds real bytes; every load/store goes through the
// CoherenceDirectory so tests and benches observe true MSI traffic.  On top
// of the raw cells sit a spin lock, a sense-reversing barrier, and a
// fetch-add counter — the NUMA-aware-coordination building blocks §5 points
// at.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/coherence.h"

namespace lmp::core {

class CoherentRegion {
 public:
  CoherentRegion(Bytes size, Bytes granularity, int num_hosts);

  CoherenceDirectory& directory() { return directory_; }
  const CoherenceDirectory& directory() const { return directory_; }
  Bytes size() const { return data_.size() * sizeof(std::uint64_t); }
  int num_hosts() const { return num_hosts_; }

  // 8-byte cell accessors; offset must be 8-aligned and in range.
  StatusOr<std::uint64_t> Load(int host, Bytes offset);
  Status Store(int host, Bytes offset, std::uint64_t value);
  StatusOr<std::uint64_t> FetchAdd(int host, Bytes offset,
                                   std::uint64_t delta);
  // Atomic compare-and-swap; returns the previous value.
  StatusOr<std::uint64_t> CompareExchange(int host, Bytes offset,
                                          std::uint64_t expected,
                                          std::uint64_t desired,
                                          bool* exchanged);

 private:
  Status CheckCell(Bytes offset) const;

  int num_hosts_;
  CoherenceDirectory directory_;
  std::vector<std::uint64_t> data_;
};

// Test-and-test-and-set lock on one coherent cell.  TryLock/Unlock —
// callers are logical hosts interleaved by the (single-threaded) harness.
class DistributedLock {
 public:
  DistributedLock(CoherentRegion* region, Bytes cell_offset);

  StatusOr<bool> TryLock(int host);
  Status Unlock(int host);
  bool IsHeld() const { return holder_ >= 0; }
  int holder() const { return holder_; }

  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t failed_attempts() const { return failed_attempts_; }

 private:
  CoherentRegion* region_;
  Bytes offset_;
  int holder_ = -1;  // mirror for assertions; truth lives in the region
  std::uint64_t acquisitions_ = 0;
  std::uint64_t failed_attempts_ = 0;
};

// Sense-reversing barrier over two coherent cells (count, generation).
class CoherentBarrier {
 public:
  CoherentBarrier(CoherentRegion* region, Bytes cells_offset,
                  int participants);

  // Returns true for the arrival that releases the barrier.
  StatusOr<bool> Arrive(int host);
  StatusOr<std::uint64_t> Generation(int host);

 private:
  CoherentRegion* region_;
  Bytes count_offset_;
  Bytes gen_offset_;
  int participants_;
};

}  // namespace lmp::core
